(* The observability layer: the golden-file guard on the registry-
   derived CSV schema, the probe/metric reconciliation property, and
   the trace exporter + validator.

   Ordering matters within this suite: the golden test must run
   before anything calls [Probe.enable_hist], because enabling the
   histogram adds retire_age columns to the registry (by design — the
   --hist flag widens the CSV), and the golden fixture pins the
   default column set. *)

open Ibr_harness

(* ---- golden CSV ---------------------------------------------------- *)

(* The three fixture rows, regenerated with the exact configurations
   that produced test/golden/stats.csv (see the file header there);
   the comparison is byte-for-byte, so any drift in the registry
   column set, the column order, or the simulation itself fails. *)
let golden_run ~rideable ~tracker ~threads ~horizon ~seed ~retire ~faults =
  let spec = Workload.spec_for ~mix:Workload.write_dominated rideable in
  let base =
    Runner_sim.default_config ~threads ~horizon ~cores:8 ~seed
      ~faults:(Cli.parse_faults faults) ~spec ()
  in
  let cfg =
    { base with
      tracker_cfg =
        { base.tracker_cfg with
          retire_backend = Cli.parse_retire_backend retire } }
  in
  Option.get (Runner_sim.run_named ~tracker_name:tracker ~ds_name:rideable cfg)

let test_golden_csv () =
  let rows =
    [
      golden_run ~rideable:"hashmap" ~tracker:"2GEIBR" ~threads:4
        ~horizon:50_000 ~seed:42 ~retire:"list" ~faults:"none";
      golden_run ~rideable:"hashmap" ~tracker:"EBR" ~threads:4
        ~horizon:50_000 ~seed:42 ~retire:"list" ~faults:"none";
      golden_run ~rideable:"list" ~tracker:"HP" ~threads:3 ~horizon:40_000
        ~seed:7 ~retire:"gated" ~faults:"crash";
    ]
  in
  let got =
    String.concat ""
      (List.map (fun line -> line ^ "\n")
         (Stats.csv_header () :: List.map Stats.to_csv_row rows))
  in
  let fixture =
    (* dune runtest stages the fixture next to the test binary; a bare
       `dune exec test/test_main.exe` runs from the project root. *)
    if Sys.file_exists "golden/stats.csv" then "golden/stats.csv"
    else "test/golden/stats.csv"
  in
  let ic = open_in fixture in
  let want = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Alcotest.(check string) "CSV byte-for-byte vs golden fixture" want got

(* ---- probe / stats reconciliation --------------------------------- *)

let traced_run ~seed =
  (* Capacity sized so nothing is dropped: the property needs the
     complete stream. *)
  Ibr_obs.Probe.start ~capacity:(1 lsl 17) ~threads:6 ();
  let spec = { (Workload.spec_for "hashmap") with key_range = 256 } in
  let cfg =
    Runner_sim.default_config ~threads:4 ~horizon:20_000 ~cores:4 ~seed
      ~spec ()
  in
  let r =
    Option.get
      (Runner_sim.run_named ~tracker_name:"2GEIBR" ~ds_name:"hashmap" cfg)
  in
  let per_thread = Ibr_obs.Probe.per_thread () in
  let events = Ibr_obs.Probe.events () in
  let dropped = Ibr_obs.Probe.dropped () in
  Ibr_obs.Probe.stop ();
  (r, per_thread, events, dropped)

(* Replay the event stream against the run's registry snapshot: every
   counted thing must be counted the same way twice — once by the
   probes, once by the subsystems' own bookkeeping. *)
let qcheck_trace_reconciles =
  QCheck.Test.make ~name:"traced sim run reconciles with Stats" ~count:3
    (QCheck.make QCheck.Gen.(int_range 0 10_000))
    (fun seed ->
       let r, per_thread, events, dropped = traced_run ~seed in
       if dropped <> 0 then
         QCheck.Test.fail_reportf "dropped %d records" dropped;
       (* Per-track timestamps are non-decreasing (oldest first). *)
       List.iter
         (fun (tid, arr) ->
            Array.iteri
              (fun i (rec_ : Ibr_obs.Probe.record) ->
                 if i > 0 && rec_.ts < arr.(i - 1).Ibr_obs.Probe.ts then
                   QCheck.Test.fail_reportf
                     "tid %d: ts %d after %d" tid rec_.ts
                     arr.(i - 1).Ibr_obs.Probe.ts)
              arr)
         per_thread;
       (* Event counts = subsystem counters.  The probes cover the
          structure's whole life (tracing starts before prefill), so
          they match the absolute allocator gauges. *)
       let count p = List.length (List.filter p events) in
       let allocs =
         count (fun e ->
           match e.Ibr_obs.Probe.ev with Alloc _ -> true | _ -> false)
       and reclaims =
         count (fun e ->
           match e.Ibr_obs.Probe.ev with Reclaim _ -> true | _ -> false)
       and scans =
         count (fun e ->
           match e.Ibr_obs.Probe.ev with
           | Sweep_end { phase = Scan; _ } -> true
           | _ -> false)
       and scan_begins =
         count (fun e ->
           match e.Ibr_obs.Probe.ev with
           | Sweep_begin { phase = Scan } -> true
           | _ -> false)
       and op_begins =
         count (fun e ->
           match e.Ibr_obs.Probe.ev with Op_begin -> true | _ -> false)
       and op_ends =
         count (fun e ->
           match e.Ibr_obs.Probe.ev with Op_end -> true | _ -> false)
       in
       let m = Stats.metric r in
       if allocs <> m "allocated" then
         QCheck.Test.fail_reportf "alloc events %d <> allocated %d" allocs
           (m "allocated");
       if reclaims <> m "freed" then
         QCheck.Test.fail_reportf "reclaim events %d <> freed %d" reclaims
           (m "freed");
       (* No prefill retires happen (pure inserts of fresh keys), so
          every Scan span falls inside the measured window.  The
          horizon stop can truncate one sweep per thread between its
          examination walk (which counts the sweep) and the span
          close (emitted after the free loop, whose frees are
          preemption points), so the counter is bracketed by the
          completed and the started spans rather than pinned. *)
       if not (scans <= m "sweeps" && m "sweeps" <= scan_begins) then
         QCheck.Test.fail_reportf
           "sweeps %d outside scan spans [completed %d, started %d]"
           (m "sweeps") scans scan_begins;
       (* [Ds_common.with_op] closes its span on both the value and
          the unwind path, so spans balance even across the horizon. *)
       if op_begins <> op_ends then
         QCheck.Test.fail_reportf "op spans unbalanced: %d begins, %d ends"
           op_begins op_ends;
       (* Every published reclaim closes an open retire: the
          Retired -> Reclaimed transition, replayed block by block.
          (Unpublished reclaims are speculative nodes that were never
          retired.) *)
       let open_retires = Hashtbl.create 256 in
       List.iter
         (fun (e : Ibr_obs.Probe.record) ->
            match e.ev with
            | Retire { block } ->
              if Hashtbl.mem open_retires block then
                QCheck.Test.fail_reportf "block %d retired twice" block;
              Hashtbl.replace open_retires block ()
            | Reclaim { block; unpublished = false } ->
              if not (Hashtbl.mem open_retires block) then
                QCheck.Test.fail_reportf
                  "block %d reclaimed without a prior retire" block;
              Hashtbl.remove open_retires block
            | _ -> ())
         events;
       true)

(* Tracing must not perturb the simulation: the virtual-time results
   of a traced and an untraced run of the same seed are identical. *)
let test_trace_is_free () =
  let go ~traced =
    if traced then Ibr_obs.Probe.start ~capacity:4096 ~threads:6 ();
    let spec = { (Workload.spec_for "list") with key_range = 64 } in
    let cfg =
      Runner_sim.default_config ~threads:3 ~horizon:15_000 ~cores:2
        ~seed:99 ~spec ()
    in
    let r =
      Option.get
        (Runner_sim.run_named ~tracker_name:"EBR" ~ds_name:"list" cfg)
    in
    if traced then Ibr_obs.Probe.stop ();
    r
  in
  let off = go ~traced:false and on = go ~traced:true in
  Alcotest.(check int) "same ops" off.ops on.ops;
  Alcotest.(check int) "same makespan" off.makespan on.makespan;
  Alcotest.(check (float 0.0)) "same unreclaimed" off.avg_unreclaimed
    on.avg_unreclaimed

(* ---- trace export + validator ------------------------------------- *)

let test_trace_export_validates () =
  let _, _, _, _ = traced_run ~seed:5 in
  (* traced_run stopped the probe; restart, rerun, keep it live for
     the export. *)
  Ibr_obs.Probe.start ~capacity:(1 lsl 16) ~threads:6 ();
  let spec = { (Workload.spec_for "hashmap") with key_range = 128 } in
  let cfg =
    Runner_sim.default_config ~threads:3 ~horizon:10_000 ~cores:2 ~seed:11
      ~spec ()
  in
  ignore
    (Option.get
       (Runner_sim.run_named ~tracker_name:"2GEIBR" ~ds_name:"hashmap" cfg));
  let path = Filename.temp_file "ibr_trace" ".json" in
  Ibr_obs.Trace_export.write_file path;
  Ibr_obs.Probe.stop ();
  (match Ibr_obs.Trace_export.validate_file path with
   | Ok n -> Alcotest.(check bool) "events validated" true (n > 0)
   | Error msg -> Alcotest.fail ("trace invalid: " ^ msg));
  Sys.remove path

let test_validator_rejects_garbage () =
  let reject s what =
    match Ibr_obs.Trace_export.validate s with
    | Ok _ -> Alcotest.fail ("validator accepted " ^ what)
    | Error _ -> ()
  in
  reject "not json" "non-JSON";
  reject "{\"traceEvents\":42}" "non-array traceEvents";
  reject "{\"other\":[]}" "missing traceEvents";
  reject
    "{\"traceEvents\":[{\"ph\":\"i\",\"pid\":1,\"tid\":0,\"ts\":5},\
     {\"ph\":\"i\",\"pid\":1,\"tid\":0,\"ts\":3}]}"
    "non-monotone timestamps";
  match
    Ibr_obs.Trace_export.validate
      "{\"traceEvents\":[{\"name\":\"x\",\"ph\":\"i\",\"pid\":1,\
       \"tid\":0,\"ts\":1}]}"
  with
  | Ok 1 -> ()
  | Ok n -> Alcotest.failf "expected 1 event, validator saw %d" n
  | Error msg -> Alcotest.fail ("minimal trace rejected: " ^ msg)

let test_json_parser () =
  let open Ibr_obs.Json in
  (match parse "  {\"a\": [1, -2.5, true, null, \"s\\n\"]} " with
   | Error e -> Alcotest.fail e
   | Ok v ->
     (match member "a" v with
      | Some (Arr [ Num 1.0; Num -2.5; Bool true; Null; Str "s\n" ]) -> ()
      | _ -> Alcotest.fail "parse shape"));
  (match parse "[1,]" with
   | Ok _ -> Alcotest.fail "trailing comma accepted"
   | Error _ -> ());
  match parse "{\"a\":1" with
  | Ok _ -> Alcotest.fail "unterminated object accepted"
  | Error _ -> ()

(* ---- registry + histograms (column-widening: keep these last) ----- *)

let test_registry_gauges () =
  let baseline = Ibr_obs.Metrics.begin_run () in
  Ibr_core.Epoch.publish 42;
  let snap = Ibr_obs.Metrics.collect baseline in
  Alcotest.(check int) "published gauge" 42
    (Ibr_obs.Metrics.get snap "epoch");
  Alcotest.(check int) "zero row" 0
    (Ibr_obs.Metrics.get (Ibr_obs.Metrics.zero ()) "epoch");
  Alcotest.(check int) "unknown column defaults to 0" 0
    (Ibr_obs.Metrics.get snap "no_such_metric");
  (* Column order follows the explicit order keys, not link order. *)
  let cols = Ibr_obs.Metrics.columns () in
  let pos name =
    let rec go i = function
      | [] -> Alcotest.failf "column %s missing" name
      | c :: _ when c = name -> i
      | _ :: tl -> go (i + 1) tl
    in
    go 0 cols
  in
  Alcotest.(check bool) "allocated before epoch" true
    (pos "allocated" < pos "epoch");
  Alcotest.(check bool) "epoch before sweeps" true
    (pos "epoch" < pos "sweeps");
  Alcotest.(check bool) "sweeps before peak_footprint" true
    (pos "sweeps" < pos "peak_footprint")

let test_hist_summary () =
  Ibr_obs.Probe.enable_hist ();
  let h = Option.get (Ibr_obs.Probe.age_hist ()) in
  let baseline = Ibr_obs.Metrics.begin_run () in
  for i = 1 to 100 do
    Ibr_obs.Metrics.observe h i
  done;
  let n, p50, p90, p99, mx = Ibr_obs.Metrics.summary h in
  Alcotest.(check int) "n" 100 n;
  Alcotest.(check int) "p50" 51 p50;
  Alcotest.(check int) "p90" 91 p90;
  Alcotest.(check int) "p99" 100 p99;
  Alcotest.(check int) "max" 100 mx;
  (* The histogram's four derived columns land in the snapshot. *)
  let snap = Ibr_obs.Metrics.collect baseline in
  Alcotest.(check int) "retire_age_p50 column" 51
    (Ibr_obs.Metrics.get snap "retire_age_p50");
  Alcotest.(check int) "retire_age_max column" 100
    (Ibr_obs.Metrics.get snap "retire_age_max");
  (* begin_run clears it. *)
  ignore (Ibr_obs.Metrics.begin_run ());
  let n, _, _, _, _ = Ibr_obs.Metrics.summary h in
  Alcotest.(check int) "cleared by begin_run" 0 n;
  Ibr_obs.Probe.stop ()

let suite =
  [
    Alcotest.test_case "golden CSV is byte-for-byte stable" `Slow
      test_golden_csv;
    QCheck_alcotest.to_alcotest qcheck_trace_reconciles;
    Alcotest.test_case "tracing leaves virtual time untouched" `Quick
      test_trace_is_free;
    Alcotest.test_case "trace export passes the validator" `Quick
      test_trace_export_validates;
    Alcotest.test_case "validator rejects malformed traces" `Quick
      test_validator_rejects_garbage;
    Alcotest.test_case "json parser round-trips" `Quick test_json_parser;
    Alcotest.test_case "registry gauges and ordering" `Quick
      test_registry_gauges;
    Alcotest.test_case "histogram summary and columns" `Quick
      test_hist_summary;
  ]
