(* The background-reclamation service end to end (DESIGN.md §9):
   the handoff service's drain/flush/pending contract through the
   public TRACKER API, and shutdown quiescence on both runner
   backends — after a run with [background_reclaim] on, every pushed
   block has been drained (the queues are empty) and the allocator's
   books balance, including under a crash fault that abandons the
   drain lock mid-run. *)

open Ibr_core
open Ibr_harness

let bg_cfg ~threads =
  { (Tracker_intf.default_config ~threads ()) with
    Tracker_intf.background_reclaim = true }

(* ---- the service contract, single-threaded ---- *)

let test_service_drain_flush () =
  let module T = (val (Registry.find_exn "EBR").tracker
                   : Tracker_intf.TRACKER)
  in
  Handoff.Stats.reset ();
  let t = T.create ~threads:1 (bg_cfg ~threads:1) in
  let h = T.register t ~tid:0 in
  let svc =
    match T.reclaim_service t with
    | Some svc -> svc
    | None -> Alcotest.fail "background_reclaim on, but no service"
  in
  let n = 10 in
  T.start_op h;
  for i = 1 to n do
    let b = T.alloc h i in
    T.retire h b
  done;
  T.end_op h;
  (* Retires were queue appends: nothing reclaimed yet, all pending. *)
  Alcotest.(check int) "all retires pending" n (svc.Handoff.pending ());
  Alcotest.(check int) "nothing freed before drain" 0
    (Alloc.stats (T.allocator t)).Alloc.freed;
  (* Drain moves every queued block into the service reclaimer; they
     stay pending (held, not yet swept). *)
  Alcotest.(check int) "drain moves the batch" n (svc.Handoff.drain ());
  Alcotest.(check int) "drained blocks still held" n
    (svc.Handoff.pending ());
  Alcotest.(check int) "second drain finds nothing" 0
    (svc.Handoff.drain ());
  (* Flush sweeps; no reservation is live, so everything frees. *)
  svc.Handoff.flush ();
  Alcotest.(check int) "flush empties the service" 0
    (svc.Handoff.pending ());
  Alcotest.(check int) "every block freed" n
    (Alloc.stats (T.allocator t)).Alloc.freed;
  Alcotest.(check int) "telemetry: pushed" n
    (Atomic.get Handoff.Stats.pushed);
  Alcotest.(check int) "telemetry: drained" n
    (Atomic.get Handoff.Stats.drained)

let test_no_service_when_off () =
  let check name cfg expect =
    let module T = (val (Registry.find_exn name).tracker
                     : Tracker_intf.TRACKER)
    in
    let t = T.create ~threads:1 cfg in
    Alcotest.(check bool)
      (Printf.sprintf "%s service present" name)
      expect
      (Option.is_some (T.reclaim_service t))
  in
  (* Off by default; on with the flag; never for the schemes that do
     not sweep. *)
  check "EBR" (Tracker_intf.default_config ~threads:1 ()) false;
  check "HP" (bg_cfg ~threads:1) true;
  check "NoMM" (bg_cfg ~threads:1) false;
  check "UnsafeFree" (bg_cfg ~threads:1) false

(* ---- shutdown quiescence through the runners ---- *)

let small_spec = { (Workload.spec_for "hashmap") with key_range = 256 }

let quiescent (r : Stats.t) =
  let m = Stats.metric r in
  Alcotest.(check bool) "retires were handed off" true
    (m "handoff_pushed" > 0);
  Alcotest.(check int) "every push drained by shutdown"
    (m "handoff_pushed") (m "handoff_drained");
  Alcotest.(check int) "books balance" (m "live")
    (m "allocated" - m "freed")

let sim_run ~tracker ~faults ~seed =
  let cfg =
    Runner_sim.default_config ~threads:4 ~cores:4 ~horizon:20_000 ~seed
      ~faults ~spec:small_spec ()
  in
  let cfg =
    { cfg with
      Runner_sim.tracker_cfg =
        { cfg.Runner_sim.tracker_cfg with
          Tracker_intf.background_reclaim = true } }
  in
  Option.get (Runner_sim.run_named ~tracker_name:tracker ~ds_name:"hashmap" cfg)

let test_sim_quiescence () =
  List.iter
    (fun tracker ->
       quiescent (sim_run ~tracker ~faults:Runner_sim.No_faults ~seed:0xb6))
    [ "EBR"; "HP"; "2GEIBR" ]

(* A crash can abandon a fiber inside the drain lock; the post-run
   [shutdown_flush] seizes it, so quiescence must hold regardless of
   where the crash landed. *)
let test_sim_quiescence_under_crash () =
  let faults = Runner_sim.Crash { crash_prob = 0.25; max_crashes = 1 } in
  let r, _ =
    Ibr_core.Fault.with_counting (fun () ->
      sim_run ~tracker:"EBR" ~faults ~seed:0xc0)
  in
  Alcotest.(check int) "a thread crashed" 1 (Stats.metric r "crashes");
  quiescent r

let test_domains_quiescence () =
  let spec = Workload.spec_for "hashmap" in
  let cfg = Runner_domains.default_config ~threads:2 ~duration_s:0.05 ~spec () in
  let cfg =
    { cfg with
      Runner_domains.tracker_cfg =
        { cfg.Runner_domains.tracker_cfg with
          Tracker_intf.background_reclaim = true } }
  in
  quiescent
    (Option.get
       (Runner_domains.run_named ~tracker_name:"EBR" ~ds_name:"hashmap" cfg))

(* Batched handoff (handoff_batch > 1): retires buffer in per-thread
   scratch and publish k at a time; quiescence and determinism must
   survive the batching, and the batch counter must show it ran. *)
let test_sim_quiescence_batched () =
  let run () =
    let cfg =
      Runner_sim.default_config ~threads:4 ~cores:4 ~horizon:20_000
        ~seed:0xb6 ~spec:small_spec ()
    in
    let cfg =
      { cfg with
        Runner_sim.tracker_cfg =
          { cfg.Runner_sim.tracker_cfg with
            Tracker_intf.background_reclaim = true; handoff_batch = 4 } }
    in
    Option.get
      (Runner_sim.run_named ~tracker_name:"EBR" ~ds_name:"hashmap" cfg)
  in
  let r = run () in
  quiescent r;
  Alcotest.(check bool) "batched publishes happened" true
    (Stats.metric r "handoff_batches" > 0);
  Alcotest.(check string) "reproducible row" (Stats.to_csv_row r)
    (Stats.to_csv_row (run ()))

(* Virtual time must not move when the feature is off: same seed, same
   makespan and op count as ever (the golden CSV pins the full row;
   this pins the off-by-default contract from inside the suite). *)
let test_off_by_default_is_inert () =
  let base =
    Runner_sim.default_config ~threads:4 ~cores:4 ~horizon:20_000 ~seed:0xb6
      ~spec:small_spec ()
  in
  let off =
    Option.get (Runner_sim.run_named ~tracker_name:"EBR" ~ds_name:"hashmap" base)
  in
  Alcotest.(check int) "no handoff traffic when off" 0
    (Stats.metric off "handoff_pushed");
  let again =
    Option.get (Runner_sim.run_named ~tracker_name:"EBR" ~ds_name:"hashmap" base)
  in
  Alcotest.(check int) "deterministic ops" off.Stats.ops again.Stats.ops;
  Alcotest.(check int) "deterministic makespan" off.Stats.makespan
    again.Stats.makespan

let suite =
  [
    Alcotest.test_case "service drain/flush/pending contract" `Quick
      test_service_drain_flush;
    Alcotest.test_case "service only exists when configured" `Quick
      test_no_service_when_off;
    Alcotest.test_case "sim shutdown quiescence (EBR/HP/2GEIBR)" `Quick
      test_sim_quiescence;
    Alcotest.test_case "sim quiescence with a crashed thread" `Quick
      test_sim_quiescence_under_crash;
    Alcotest.test_case "domains shutdown quiescence" `Quick
      test_domains_quiescence;
    Alcotest.test_case "batched handoff: quiescent and deterministic" `Quick
      test_sim_quiescence_batched;
    Alcotest.test_case "off by default: no handoff, deterministic" `Quick
      test_off_by_default_is_inert;
  ]
