(* Model tests for the capability surface and the rideables that ride
   outside the map family (ISSUE 10):

   1. MS queue vs a functional two-list queue oracle (qcheck), plus
      concurrent FIFO conservation + per-producer order.
   2. Resizable hashmap: migrations interleaved with map ops keep
      sorted-list equivalence with a model (qcheck) and actually grow
      the table; concurrent inserts racing a dedicated migrator lose
      nothing.
   3. Range linearization spot-check: under insert-only concurrency a
      single scanner's successive scans are sorted, bounded, and
      monotonically non-decreasing (the set only grows, so each
      linearized scan must contain its predecessor).
   4. Capability matrix: every registry maker's advertised caps equal
      the instantiated module's, and every workload profile has at
      least one rideable supporting it. *)

open Ibr_core
open Ibr_runtime
open Ibr_ds

let cfg ?(threads = 1) () =
  { (Tracker_intf.default_config ~threads ()) with
    reuse = false; epoch_freq = 2; empty_freq = 4 }

let entry name =
  match List.find_opt (fun (e : Registry.entry) -> e.name = name)
          Registry.all with
  | Some e -> e
  | None -> Alcotest.failf "no tracker named %s" name

(* --- 1. MS queue vs functional queue oracle ----------------------- *)

(* Two-list functional queue: push to back, pop from front. *)
module Model_queue = struct
  type t = int list * int list

  let empty = ([], [])
  let enqueue (f, b) v = (f, v :: b)

  let norm = function [], b -> (List.rev b, []) | q -> q

  let dequeue q =
    match norm q with
    | [], _ -> (None, q)
    | x :: f, b -> (Some x, (f, b))

  let peek q = match norm q with [], _ -> None | x :: _, _ -> Some x
  let to_list (f, b) = f @ List.rev b
end

let qcheck_msqueue (e : Registry.entry) =
  QCheck.Test.make
    ~name:(Printf.sprintf "ms-queue/%s matches functional queue" e.name)
    ~count:30
    QCheck.(make Gen.(list_size (int_bound 200) (pair (int_bound 2) nat)))
    (fun ops ->
       let (module S : Ds_intf.RIDEABLE) =
         Ds_registry.msqueue_maker.instantiate e.tracker in
       let q = Option.get S.queue in
       let t = S.create ~threads:1 (cfg ()) in
       let h = S.register t ~tid:0 in
       let model = ref Model_queue.empty in
       List.for_all
         (fun (op, v) ->
            match op with
            | 0 ->
              q.Ds_intf.enqueue h v;
              model := Model_queue.enqueue !model v;
              true
            | 1 ->
              let expected, model' = Model_queue.dequeue !model in
              model := model';
              q.Ds_intf.dequeue h = expected
            | _ -> q.Ds_intf.peek h = Model_queue.peek !model)
         ops
       && q.Ds_intf.to_seq_list t = Model_queue.to_list !model)

let test_queue_concurrent (e : Registry.entry) () =
  let (module S : Ds_intf.RIDEABLE) =
    Ds_registry.msqueue_maker.instantiate e.tracker in
  let q = Option.get S.queue in
  Fault.set_mode Fault.Raise;
  let producers = 3 in
  let threads = producers + 1 in
  let t = S.create ~threads (cfg ~threads ()) in
  let sched =
    Sched.create
      { (Sched.test_config ~cores:3 ~seed:41 ()) with
        stall_prob = 0.02; stall_len = 1500; quantum = 90 } in
  let dequeued = ref [] in
  (* Consumer on tid 0: per-producer order at a single consumer is the
     FIFO property made checkable without a global clock. *)
  ignore
    (Sched.spawn sched (fun tid ->
       let h = S.register t ~tid in
       for _ = 1 to producers * 300 do
         match q.Ds_intf.dequeue h with
         | Some v -> dequeued := v :: !dequeued
         | None -> ()
       done));
  for _ = 1 to producers do
    ignore
      (Sched.spawn sched (fun tid ->
         let h = S.register t ~tid in
         for j = 1 to 200 do
           q.Ds_intf.enqueue h ((tid * 1_000_000) + j)
         done))
  done;
  Sched.run sched;
  let dequeued = List.rev !dequeued in
  let remaining = q.Ds_intf.to_seq_list t in
  let enqueued =
    List.concat_map
      (fun p -> List.init 200 (fun j -> (p * 1_000_000) + j + 1))
      (List.init producers (fun i -> i + 1))
  in
  Alcotest.(check (list int)) "conservation"
    (List.sort compare enqueued)
    (List.sort compare (dequeued @ remaining));
  (* FIFO per producer: each producer's values reach the consumer (and
     the residue) in the order they were enqueued. *)
  List.iter
    (fun p ->
       let mine =
         List.filter (fun v -> v / 1_000_000 = p) (dequeued @ remaining)
       in
       Alcotest.(check (list int))
         (Printf.sprintf "producer %d order" p)
         (List.sort compare mine) mine)
    (List.init producers (fun i -> i + 1));
  S.check_invariants t

(* --- 2. resizable hashmap migrations vs model --------------------- *)

let qcheck_rhashmap_migrate (e : Registry.entry) =
  QCheck.Test.make
    ~name:
      (Printf.sprintf "resizable-hashmap/%s migrations keep the model"
         e.name)
    ~count:20
    QCheck.(make Gen.(list_size (int_bound 250)
                        (pair (int_bound 9) (int_bound 63))))
    (fun ops ->
       let (module T : Tracker_intf.TRACKER) = e.tracker in
       let module RH = Resizable_hashmap.Make (T) in
       (* Tiny initial table so the op stream crosses several growths. *)
       let t = RH.create_sized ~lg:1 ~max_lg:8 ~threads:1 (cfg ()) in
       let h = RH.register t ~tid:0 in
       let m = Option.get RH.map in
       let b = Option.get RH.bulk in
       let model = Hashtbl.create 16 in
       List.for_all
         (fun (op, k) ->
            match op with
            | 0 | 1 | 2 ->
              let expected = not (Hashtbl.mem model k) in
              let got = m.Ds_intf.insert h ~key:k ~value:(k * 7) in
              if got then Hashtbl.replace model k (k * 7);
              got = expected
            | 3 | 4 ->
              let expected = Hashtbl.mem model k in
              let got = m.Ds_intf.remove h ~key:k in
              if got then Hashtbl.remove model k;
              got = expected
            | 5 ->
              (* Forced bulk migration: retires the whole table. *)
              ignore (b.Ds_intf.migrate h);
              true
            | _ -> m.Ds_intf.get h ~key:k = Hashtbl.find_opt model k)
         ops
       &&
       (RH.check_invariants t;
        m.Ds_intf.to_sorted_list t
        = (Hashtbl.fold (fun k v acc -> (k, v) :: acc) model []
           |> List.sort compare)))

let test_rhashmap_concurrent_migrate (e : Registry.entry) () =
  let (module T : Tracker_intf.TRACKER) = e.tracker in
  let module RH = Resizable_hashmap.Make (T) in
  Fault.set_mode Fault.Raise;
  let writers = 3 in
  let threads = writers + 1 in
  let t = RH.create_sized ~lg:1 ~max_lg:10 ~threads (cfg ~threads ()) in
  let m = Option.get RH.map in
  let b = Option.get RH.bulk in
  let initial_len = b.Ds_intf.table_length t in
  let sched =
    Sched.create
      { (Sched.test_config ~cores:3 ~seed:57 ()) with
        stall_prob = 0.02; stall_len = 1500; quantum = 90 } in
  (* Dedicated migrator racing the writers: every migration retires
     the live bucket-shortcut array under them. *)
  ignore
    (Sched.spawn sched (fun tid ->
       let h = RH.register t ~tid in
       for _ = 1 to 6 do ignore (b.Ds_intf.migrate h) done));
  for w = 1 to writers do
    ignore
      (Sched.spawn sched (fun tid ->
         let h = RH.register t ~tid in
         for j = 0 to 149 do
           ignore
             (m.Ds_intf.insert h ~key:((j * writers) + w) ~value:(tid + j))
         done;
         ignore w))
  done;
  Sched.run sched;
  (* Disjoint key spaces, no removes: nothing may be lost across the
     migrations. *)
  let keys = List.map fst (m.Ds_intf.to_sorted_list t) in
  let expected =
    List.concat_map
      (fun w -> List.init 150 (fun j -> (j * writers) + w))
      (List.init writers (fun i -> i + 1))
    |> List.sort compare
  in
  Alcotest.(check (list int)) "no key lost across migrations"
    expected keys;
  Alcotest.(check bool) "table grew" true
    (b.Ds_intf.table_length t > initial_len);
  RH.check_invariants t

(* --- 3. range scans: linearization spot-check --------------------- *)

let test_range_monotone (maker : Ds_registry.maker)
    (e : Registry.entry) () =
  let (module S : Ds_intf.RIDEABLE) = maker.instantiate e.tracker in
  let m = Option.get S.map in
  let r = Option.get S.range in
  Fault.set_mode Fault.Raise;
  let writers = 3 in
  let threads = writers + 1 in
  let t = S.create ~threads (cfg ~threads ()) in
  let sched =
    Sched.create
      { (Sched.test_config ~cores:3 ~seed:73 ()) with
        stall_prob = 0.02; stall_len = 1500; quantum = 90 } in
  let lo = 32 and hi = 96 in
  let violations = ref [] in
  ignore
    (Sched.spawn sched (fun tid ->
       let h = S.register t ~tid in
       let prev = ref [] in
       for _ = 1 to 40 do
         let scan = r.Ds_intf.range h ~lo ~hi in
         let keys = List.map fst scan in
         (* Sorted, strictly increasing, inside the bounds. *)
         let rec sorted = function
           | a :: (b :: _ as rest) -> a < b && sorted rest
           | _ -> true
         in
         if not (sorted keys) then
           violations := "unsorted scan" :: !violations;
         if List.exists (fun k -> k < lo || k > hi) keys then
           violations := "out-of-bounds key" :: !violations;
         (* Insert-only world: the set only grows, so a later scan must
            contain every key an earlier one returned. *)
         if not
              (List.for_all (fun k -> List.mem k keys) !prev)
         then violations := "scan lost a key" :: !violations;
         prev := keys
       done));
  for w = 1 to writers do
    ignore
      (Sched.spawn sched (fun tid ->
         let h = S.register t ~tid in
         let rng = Rng.stream ~seed:(400 + w) ~index:w in
         for _ = 1 to 150 do
           let k = Rng.int rng 128 in
           ignore (m.Ds_intf.insert h ~key:k ~value:(tid + k))
         done))
  done;
  Sched.run sched;
  (match !violations with
   | [] -> ()
   | v :: _ -> Alcotest.failf "range linearization violated: %s" v);
  (* Quiescent: the scan equals the model filter of the final dump. *)
  let h = S.register t ~tid:0 in
  let final = r.Ds_intf.range h ~lo ~hi in
  let expected =
    List.filter (fun (k, _) -> lo <= k && k <= hi)
      (m.Ds_intf.to_sorted_list t)
  in
  Alcotest.(check (list (pair int int))) "quiescent scan = model filter"
    expected final;
  S.check_invariants t

(* --- 4. capability matrix ----------------------------------------- *)

let test_caps_consistent () =
  List.iter
    (fun (maker : Ds_registry.maker) ->
       match
         List.find_opt
           (fun (e : Registry.entry) ->
             Ds_registry.compatible maker e.tracker)
           Registry.all
       with
       | None ->
         Alcotest.failf "%s: no compatible tracker at all" maker.ds_name
       | Some e ->
         let s = maker.instantiate e.tracker in
         let derived = Ds_intf.caps_of s in
         if derived <> maker.caps then
           Alcotest.failf "%s: registry advertises %s, module exports %s"
             maker.ds_name
             (Ds_intf.caps_to_string maker.caps)
             (Ds_intf.caps_to_string derived))
    Ds_registry.all

let test_profiles_runnable () =
  List.iter
    (fun mix ->
       let need = Ibr_harness.Workload.required mix in
       match Ds_registry.supporting need with
       | [] ->
         Alcotest.failf "profile %s (%s): no rideable supports it"
           (Ibr_harness.Workload.mix_name mix)
           (Ds_intf.caps_to_string need)
       | _ -> ())
    Ibr_harness.Workload.profiles

let queue_entries =
  List.filter
    (fun (e : Registry.entry) ->
      Ds_registry.compatible Ds_registry.msqueue_maker e.tracker)
    Registry.all

let rhashmap_entries =
  List.filter
    (fun (e : Registry.entry) ->
      Ds_registry.compatible Ds_registry.rhashmap_maker e.tracker)
    Registry.all

let suite =
  List.map
    (fun (e : Registry.entry) ->
       QCheck_alcotest.to_alcotest (qcheck_msqueue e))
    (List.filter (fun (e : Registry.entry) ->
         e.name = "EBR" || e.name = "HP" || e.name = "2GEIBR")
        queue_entries)
  @ List.map
      (fun (e : Registry.entry) ->
         Alcotest.test_case
           (Printf.sprintf "ms-queue/%s: concurrent FIFO" e.name)
           `Quick (test_queue_concurrent e))
      queue_entries
  @ List.map
      (fun (e : Registry.entry) ->
         QCheck_alcotest.to_alcotest (qcheck_rhashmap_migrate e))
      (List.filter (fun (e : Registry.entry) ->
           e.name = "EBR" || e.name = "HP" || e.name = "2GEIBR")
          rhashmap_entries)
  @ List.map
      (fun (e : Registry.entry) ->
         Alcotest.test_case
           (Printf.sprintf "resizable-hashmap/%s: concurrent migrations"
              e.name)
           `Quick (test_rhashmap_concurrent_migrate e))
      rhashmap_entries
  @ List.concat_map
      (fun (maker : Ds_registry.maker) ->
         List.filter_map
           (fun (e : Registry.entry) ->
              if
                Ds_registry.compatible maker e.tracker
                && (e.name = "EBR" || e.name = "2GEIBR" || e.name = "HE")
              then
                Some
                  (Alcotest.test_case
                     (Printf.sprintf "%s/%s: range monotone" maker.ds_name
                        e.name)
                     `Quick
                     (test_range_monotone maker e))
              else None)
           Registry.all)
      (List.filter
         (fun (m : Ds_registry.maker) ->
           m.caps.Ds_intf.range && m.caps.Ds_intf.map)
         Ds_registry.all)
  @ [
      Alcotest.test_case "registry caps = module caps" `Quick
        test_caps_consistent;
      Alcotest.test_case "every profile has a rideable" `Quick
        test_profiles_runnable;
    ]
