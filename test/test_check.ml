(* The model checker checking itself: suite expectations (every sound
   tracker certifies, every oracle yields a witness), minimality and
   replay of the witnesses, trace round-tripping, and the shrinker's
   contract — all within the budgets recorded in EXPERIMENTS.md §7
   (preemption bound <= 3, <= 50k schedules, witnesses <= 10
   preemptions). *)

open Ibr_check

let case_exn name =
  match Scenarios.find name with
  | Some c -> c
  | None -> Alcotest.failf "no scenario named %s" name

(* ---- suite expectations: one test per scenario ---- *)

let run_case (c : Scenarios.case) () =
  let name = c.scenario.Scenario.name in
  match Check.explore ~bound:c.bound c.scenario, c.expect with
  | Check.Certified { schedules; _ }, Scenarios.Safe ->
    Alcotest.(check bool)
      (Printf.sprintf "%s certified within budget (%d schedules)" name
         schedules)
      true
      (schedules <= Check.default_budget)
  | Check.Witness w, Scenarios.Faulty ->
    Alcotest.(check bool)
      (Printf.sprintf "%s witness uses few preemptions (%d)" name
         w.preemptions)
      true (w.preemptions <= 10)
  | Check.Certified _, Scenarios.Faulty ->
    Alcotest.failf "%s: expected a fault witness, got certified" name
  | Check.Witness w, Scenarios.Safe ->
    Alcotest.failf "%s: spurious witness: %s" name w.failure
  | Check.Exhausted { schedules }, _ ->
    Alcotest.failf "%s: budget exhausted after %d schedules" name schedules

let expectation_cases =
  List.map
    (fun (c : Scenarios.case) ->
       Alcotest.test_case
         (Printf.sprintf "explore %s" c.scenario.Scenario.name)
         `Quick (run_case c))
    (Scenarios.cases ())

(* ---- the two paper-bug witnesses: found, minimal, replayable ---- *)

let witness_pipeline name ~insufficient_bound ~needed_preemptions () =
  let case = case_exn name in
  (* One bound below: certified, i.e. the bug *needs* this many
     preemptions. *)
  (match Check.explore ~bound:insufficient_bound case.scenario with
   | Check.Certified _ -> ()
   | Check.Witness w ->
     Alcotest.failf "%s faults at bound %d already: %s" name
       insufficient_bound w.failure
   | Check.Exhausted _ -> Alcotest.failf "%s: budget exhausted" name);
  match Check.check ~bound:case.bound case.scenario with
  | { verdict = Check.Witness w; minimal = Some (tr, stats) } ->
    Alcotest.(check int)
      (name ^ " found at its minimal preemption count")
      needed_preemptions w.preemptions;
    Alcotest.(check bool) (name ^ " shrunk to <= 10 preemptions") true
      (Trace.switches tr <= 10);
    Alcotest.(check bool) (name ^ " shrink preserved the fault kind") true
      (stats.Shrink.kept_failure = w.failure);
    Alcotest.(check bool) (name ^ " shrunk trace is a sub-trace") true
      (Shrink.is_sub_trace ~original:w.trace ~shrunk:tr);
    Alcotest.(check bool) (name ^ " shrunk trace is locally minimal") true
      (Shrink.locally_minimal case.scenario tr);
    (* Deterministic replay: same decisions, same fault, twice. *)
    let r1 = Engine.replay case.scenario tr in
    let r2 = Engine.replay case.scenario tr in
    Alcotest.(check bool) (name ^ " replay faults") true (r1.failure <> None);
    Alcotest.(check bool) (name ^ " replay is deterministic") true
      (r1.Engine.failure = r2.Engine.failure
       && r1.Engine.decisions = r2.Engine.decisions)
  | { verdict = v; _ } ->
    Alcotest.failf "%s: expected witness+minimal, got %s" name
      (Fmt.str "%a" Check.pp_verdict v)

(* ---- checked-in witness traces replay deterministically ---- *)

let checked_in_traces =
  [ "reader_writer_UnsafeFree.trace";
    "reader_writer_2GEIBR-unfenced.trace";
    "advance_race_QSBR-noncas.trace";
    "thread_churn_EBR-noflush.trace";
    "queue_dequeue_churn_2GEIBR-unfenced.trace" ]

let test_checked_in_traces () =
  List.iter
    (fun file ->
       let path = Filename.concat "traces" file in
       match Trace.of_file path with
       | Error msg -> Alcotest.failf "%s: %s" path msg
       | Ok tr ->
         let case = case_exn tr.Trace.scenario in
         let r = Engine.replay case.scenario tr in
         (match r.Engine.failure with
          | Some _ -> ()
          | None -> Alcotest.failf "%s did not reproduce its fault" path))
    checked_in_traces

(* ---- random walk cross-check ---- *)

let test_random_walk_finds_unsafe_free () =
  let case = case_exn "reader_writer/UnsafeFree" in
  match Check.random_walk ~runs:2_000 ~seed:7 case.scenario with
  | Check.Witness _ -> ()
  | v ->
    Alcotest.failf "random walk missed the UnsafeFree fault: %s"
      (Fmt.str "%a" Check.pp_verdict v)

let test_random_walk_never_certifies () =
  let case = case_exn "reader_writer/EBR" in
  match Check.random_walk ~runs:50 ~seed:3 case.scenario with
  | Check.Exhausted { schedules } -> Alcotest.(check int) "runs" 50 schedules
  | v ->
    Alcotest.failf "random walk on a sound tracker: %s"
      (Fmt.str "%a" Check.pp_verdict v)

(* ---- trace round-tripping ---- *)

let trace_testable =
  Alcotest.testable Trace.pp Trace.equal

let test_trace_roundtrip_example () =
  let t =
    Trace.v ~scenario:"reader_writer/EBR" ~threads:2
      [ (0, 6); (1, 8); (0, 2); (1, 1) ]
  in
  match Trace.of_string (Trace.to_string t) with
  | Ok t' -> Alcotest.check trace_testable "round trip" t t'
  | Error msg -> Alcotest.failf "round trip failed: %s" msg

let test_trace_rejects_garbage () =
  let bad =
    [ "";                                           (* no scenario *)
      "scenario x\n";                               (* no threads *)
      "scenario x\nthreads 2\nseg 2 1\n";           (* tid out of range *)
      "scenario x\nthreads 2\nseg 0 0\n";           (* zero steps *)
      "scenario x\nthreads 2\nseg 0\n";             (* malformed seg *)
      "scenario x\nthreads 0\n";                    (* bad thread count *)
      "scenario x\nthreads 2\nwibble 3\n" ]         (* unknown line *)
  in
  List.iter
    (fun s ->
       match Trace.of_string s with
       | Error _ -> ()
       | Ok t -> Alcotest.failf "accepted %S as %s" s (Trace.to_string t))
    bad

let trace_gen =
  let open QCheck.Gen in
  let* threads = int_range 1 4 in
  let* segs =
    list_size (int_range 0 12)
      (pair (int_range 0 (threads - 1)) (int_range 1 50))
  in
  let* name = oneofl [ "a"; "rw/X"; "scenario_1"; "advance_race/QSBR" ] in
  return (Trace.v ~scenario:name ~threads segs)

let trace_arb =
  QCheck.make trace_gen ~print:(fun t -> Trace.to_string t)

let prop_trace_roundtrip =
  QCheck.Test.make ~name:"Trace.of_string inverts to_string" ~count:300
    trace_arb (fun t ->
      match Trace.of_string (Trace.to_string t) with
      | Ok t' -> Trace.equal t t'
      | Error _ -> false)

(* ---- shrinker contract on randomized failing traces ---- *)

(* Random schedules for the UnsafeFree scenario; a good fraction
   fault, and each failing one must shrink to a locally minimal
   sub-trace that still faults. *)
let unsafe_trace_gen =
  let open QCheck.Gen in
  let* segs =
    list_size (int_range 1 10) (pair (int_range 0 1) (int_range 1 6))
  in
  return (Trace.v ~scenario:"reader_writer/UnsafeFree" ~threads:2 segs)

let prop_shrink_contract =
  let exercised = ref 0 in
  let scenario = (case_exn "reader_writer/UnsafeFree").scenario in
  QCheck.Test.make ~name:"Shrink.minimize contract on failing traces"
    ~count:120
    (QCheck.make unsafe_trace_gen ~print:Trace.to_string)
    (fun tr ->
       if (Engine.replay scenario tr).Engine.failure = None then true
       else begin
         incr exercised;
         let mini, stats = Shrink.minimize scenario tr in
         (Engine.replay scenario mini).Engine.failure
           = Some stats.Shrink.kept_failure
         && Shrink.is_sub_trace ~original:tr ~shrunk:mini
         && Shrink.locally_minimal scenario mini
       end)

(* Hand-padded variants of the checked-in minimal witness must shrink
   back down to something no larger. *)
let test_shrink_padded_witness () =
  let case = case_exn "reader_writer/UnsafeFree" in
  let padded =
    Trace.v ~scenario:case.scenario.Scenario.name ~threads:2
      [ (1, 2); (1, 1); (0, 2); (1, 3); (0, 10); (1, 5) ]
  in
  (match (Engine.replay case.scenario padded).Engine.failure with
   | None -> Alcotest.fail "padded witness should fault"
   | Some _ -> ());
  let mini, _ = Shrink.minimize case.scenario padded in
  Alcotest.(check bool) "shrunk below padded size" true
    (Trace.total_steps mini < Trace.total_steps padded
     && Trace.switches mini <= Trace.switches padded);
  Alcotest.(check bool) "still a sub-trace" true
    (Shrink.is_sub_trace ~original:padded ~shrunk:mini)

let suite =
  expectation_cases
  @ [
      Alcotest.test_case "2GEIBR-unfenced witness pipeline" `Quick
        (witness_pipeline "reader_writer/2GEIBR-unfenced"
           ~insufficient_bound:2 ~needed_preemptions:3);
      Alcotest.test_case "QSBR-noncas witness pipeline" `Quick
        (witness_pipeline "advance_race/QSBR-noncas" ~insufficient_bound:1
           ~needed_preemptions:2);
      Alcotest.test_case "checked-in traces reproduce" `Quick
        test_checked_in_traces;
      Alcotest.test_case "random walk finds UnsafeFree" `Quick
        test_random_walk_finds_unsafe_free;
      Alcotest.test_case "random walk never certifies" `Quick
        test_random_walk_never_certifies;
      Alcotest.test_case "trace round-trip example" `Quick
        test_trace_roundtrip_example;
      Alcotest.test_case "trace parser rejects garbage" `Quick
        test_trace_rejects_garbage;
      QCheck_alcotest.to_alcotest prop_trace_roundtrip;
      QCheck_alcotest.to_alcotest prop_shrink_contract;
      Alcotest.test_case "padded witness shrinks" `Quick
        test_shrink_padded_witness;
    ]
