(* The fault model end to end (DESIGN.md §7): the capped allocator's
   backpressure contract and counter reconciliation, and crash faults
   driven through the simulator runner — a robust scheme survives a
   capped heap that a crashed EBR thread exhausts. *)

open Ibr_core
open Ibr_harness

(* ---- allocator-level properties ---- *)

(* Random alloc/retire/free traffic against a capped heap, run in
   counting mode so exhaustion is an exception we can tally.  The
   books must balance exactly: every alloc is fresh or reused, every
   [Exhausted] is one oom event, and the footprint never exceeds the
   cap (peak included — backpressure, not overcommit). *)
let qcheck_capped_alloc_reconciles =
  QCheck.Test.make ~name:"capped allocator: counters reconcile, cap holds"
    ~count:200
    (QCheck.make
       QCheck.Gen.(triple (int_range 2 24) (int_range 10 400) (int_range 0 9999)))
    (fun (capacity, nops, seed) ->
       let (ok, _), _ =
         Fault.with_counting (fun () ->
           let a = Alloc.create ~capacity ~threads:1 () in
           let rng = Ibr_runtime.Rng.create seed in
           let live = ref [] and nlive = ref 0 in
           let caught = ref 0 and frees = ref 0 in
           let cap_ok = ref true in
           for _ = 1 to nops do
             (if !nlive > 0 && Ibr_runtime.Rng.chance rng 0.4 then begin
                match !live with
                | [] -> ()
                | b :: rest ->
                  live := rest;
                  decr nlive;
                  Block.transition_retire b;
                  Alloc.free a ~tid:0 b;
                  incr frees
              end
              else
                match Alloc.alloc a ~tid:0 0 with
                | b -> live := b :: !live; incr nlive
                | exception Alloc.Exhausted -> incr caught);
             if Alloc.footprint a > capacity then cap_ok := false
           done;
           let st = Alloc.stats a in
           (!cap_ok
            && st.allocated = st.fresh + st.reused
            && st.oom_events = !caught
            && st.freed = !frees
            && st.live = st.allocated - st.freed
            && st.peak_footprint <= capacity,
            st))
       in
       ok)

(* The admission race, with real parallelism: N domains hammer a
   capped allocator with mixed alloc/free traffic.  Admission is a
   reservation (fetch-and-add, undone on overshoot), so the peak
   footprint — taken only from successful reservations — can never
   exceed the cap, no matter how the admitters interleave; a
   check-then-increment admission lets N racing threads overshoot by
   N - 1 and this test catches it.  Books must still balance across
   domains once everyone joins. *)
let qcheck_concurrent_admission_cap_holds =
  QCheck.Test.make ~name:"capped allocator: cap holds under concurrent admitters"
    ~count:20
    (QCheck.make
       QCheck.Gen.(triple (int_range 2 4) (int_range 2 32) (int_range 0 9999)))
    (fun (domains, capacity, seed) ->
       let (ok, _), _ =
         Fault.with_counting (fun () ->
           let a =
             Alloc.create ~capacity ~retry_budget:1 ~threads:domains ()
           in
           let worker tid =
             Domain.spawn (fun () ->
               let rng = Ibr_runtime.Rng.stream ~seed ~index:tid in
               let live = ref [] in
               let drop b =
                 Block.transition_retire b;
                 Alloc.free a ~tid b
               in
               for _ = 1 to 300 do
                 match !live with
                 | b :: rest when Ibr_runtime.Rng.chance rng 0.5 ->
                   live := rest;
                   drop b
                 | _ ->
                   (match Alloc.alloc a ~tid 0 with
                    | b -> live := b :: !live
                    | exception Alloc.Exhausted -> ())
               done;
               List.iter drop !live)
           in
           List.iter Domain.join (List.init domains worker);
           let st = Alloc.stats a in
           (st.peak_footprint <= capacity
            && st.peak_footprint > 0
            && st.live = st.allocated - st.freed
            && st.allocated = st.fresh + st.reused
            && Alloc.footprint a = 0,
            st))
       in
       ok)

let test_pressure_hook_rescues () =
  (* A hook that can actually free something turns a would-be oom into
     a retried success: the backpressure ladder is observable
     ([pressure_retries] > 0) and no fault is reported. *)
  let (), faults =
    Fault.with_counting (fun () ->
      let a = Alloc.create ~capacity:2 ~threads:1 () in
      let b1 = Alloc.alloc a ~tid:0 0 in
      let b2 = Alloc.alloc a ~tid:0 0 in
      ignore b1;
      Block.transition_retire b2;
      let pending = ref (Some b2) in
      Alloc.set_pressure_hook a ~tid:0 (fun () ->
        match !pending with
        | Some b ->
          pending := None;
          Alloc.free a ~tid:0 b
        | None -> ());
      let b3 = Alloc.alloc a ~tid:0 0 in
      ignore b3;
      let st = Alloc.stats a in
      Alcotest.(check bool) "retried under pressure" true
        (st.pressure_retries >= 1);
      Alcotest.(check int) "no oom" 0 st.oom_events;
      Alcotest.(check int) "footprint back at cap" 2 st.live)
  in
  Alcotest.(check int) "no faults reported" 0 faults

let test_exhaustion_reports_fault () =
  let before = Fault.count Fault.Alloc_exhausted in
  let (), _ =
    Fault.with_counting (fun () ->
      let a = Alloc.create ~capacity:1 ~retry_budget:2 ~threads:1 () in
      ignore (Alloc.alloc a ~tid:0 0);
      (match Alloc.alloc a ~tid:0 0 with
       | _ -> Alcotest.fail "alloc beyond capacity must raise"
       | exception Alloc.Exhausted -> ());
      let st = Alloc.stats a in
      Alcotest.(check int) "one oom event" 1 st.oom_events;
      Alcotest.(check int) "retry budget was spent" 2 st.pressure_retries)
  in
  Alcotest.(check int) "Alloc_exhausted counted" 1
    (Fault.count Fault.Alloc_exhausted - before)

(* ---- crash faults through the simulator runner ---- *)

let small_spec = { (Workload.spec_for "hashmap") with key_range = 256 }

let crash_run ~tracker ~faults ~seed ~horizon =
  let cfg =
    Runner_sim.default_config ~threads:4 ~cores:4 ~horizon ~seed ~faults
      ~spec:small_spec ()
  in
  let r, _ =
    Fault.with_counting (fun () ->
      Runner_sim.run_named ~tracker_name:tracker ~ds_name:"hashmap" cfg)
  in
  Option.get r

(* The headline robustness property, as a seed-randomised test at CI
   scale: under one crashed thread and a capped heap, a robust scheme
   (HP) finishes with zero exhaustion events while EBR — whose crashed
   reservation pins every later retirement — runs out.  Books balance
   on every run. *)
let qcheck_capped_crash_separates =
  let faults =
    Runner_sim.Crash_capped
      { crash_prob = 0.5; max_crashes = 1; slack_per_thread = 24 }
  in
  QCheck.Test.make ~name:"crash+capped: HP survives where EBR exhausts"
    ~count:5
    (QCheck.make QCheck.Gen.(int_range 0 10_000))
    (fun seed ->
       let hp = crash_run ~tracker:"HP" ~faults ~seed ~horizon:40_000 in
       let ebr = crash_run ~tracker:"EBR" ~faults ~seed ~horizon:40_000 in
       let books (r : Stats.t) =
         let m = Stats.metric r in
         m "allocated" - m "freed" = m "live"
       in
       books hp && books ebr
       && Stats.metric hp "oom_events" = 0
       && (Stats.metric ebr "crashes" = 0
           || Stats.metric ebr "oom_events" > 0))

let test_crash_pins_ebr_not_hp () =
  let faults = Runner_sim.Crash { crash_prob = 0.5; max_crashes = 1 } in
  let ebr = crash_run ~tracker:"EBR" ~faults ~seed:0xc4a5 ~horizon:60_000 in
  let hp = crash_run ~tracker:"HP" ~faults ~seed:0xc4a5 ~horizon:60_000 in
  Alcotest.(check int) "EBR run crashed a thread" 1
    (Stats.metric ebr "crashes");
  Alcotest.(check int) "HP run crashed a thread" 1
    (Stats.metric hp "crashes");
  Alcotest.(check bool)
    (Printf.sprintf "EBR peak (%d) dwarfs HP peak (%d)"
       ebr.peak_unreclaimed hp.peak_unreclaimed)
    true
    (ebr.peak_unreclaimed > 4 * hp.peak_unreclaimed)

let suite =
  [
    QCheck_alcotest.to_alcotest qcheck_capped_alloc_reconciles;
    QCheck_alcotest.to_alcotest qcheck_concurrent_admission_cap_holds;
    Alcotest.test_case "pressure hook rescues a full heap" `Quick
      test_pressure_hook_rescues;
    Alcotest.test_case "exhaustion reports Alloc_exhausted" `Quick
      test_exhaustion_reports_fault;
    QCheck_alcotest.to_alcotest qcheck_capped_crash_separates;
    Alcotest.test_case "crash pins EBR, not HP" `Quick
      test_crash_pins_ebr_not_hp;
  ]
