(* The capability-based runner engine (DESIGN.md §11): one surface for
   both execution backends.  The sim declares every capability and
   stays bit-for-bit deterministic (the golden CSV pins the full row;
   here we pin the new profile and the provenance tag); domains runs
   the declared subset and fails fast with [Unsupported] on the rest —
   never a silent no-op. *)

open Ibr_harness

let small_spec = { (Workload.spec_for "hashmap") with key_range = 256 }

(* An exec that can never run anything: only the capability gate is
   exercised, so no closure should ever be reached. *)
let dummy_exec caps =
  {
    Runner_intf.backend = "dummy";
    caps;
    spawn = (fun _ -> assert false);
    spawn_aux = (fun _ -> assert false);
    launch = (fun () -> assert false);
    now = (fun () -> 0);
    wait = (fun _ -> ());
    worker_running = (fun () -> false);
    aux_running = (fun () -> false);
    worker_tick = (fun ~tid:_ -> false);
    neutralize = (fun ~eject:_ ~tid:_ -> assert false);
    makespan = (fun () -> 0);
    publish_crashes = (fun () -> ());
  }

(* ---- the capability matrix, profile by profile ---- *)

let test_capability_matrix () =
  List.iter
    (fun (name, f) ->
       Alcotest.(check (list string))
         (name ^ " runnable on sim") []
         (Runner_intf.missing Run_engine.sim_caps f);
       let expected_on_domains =
         List.filter
           (fun c -> not (Runner_intf.has Run_engine.domains_caps c))
           (Runner_intf.required_caps f)
       in
       Alcotest.(check (list string))
         (name ^ " on domains") expected_on_domains
         (Runner_intf.missing Run_engine.domains_caps f))
    Runner_intf.fault_profiles;
  (* The crash family is exactly what domains cannot honor. *)
  List.iter
    (fun name ->
       let f = Option.get (Runner_intf.faults_of_string name) in
       Alcotest.(check bool)
         (name ^ " blocked on domains") true
         (List.mem "crash_faults"
            (Runner_intf.missing Run_engine.domains_caps f)))
    [ "crash"; "crash+capped"; "crash+watchdog" ];
  List.iter
    (fun name ->
       let f = Option.get (Runner_intf.faults_of_string name) in
       Alcotest.(check (list string))
         (name ^ " honored on domains") []
         (Runner_intf.missing Run_engine.domains_caps f))
    [ "none"; "stall-storm"; "stall+watchdog"; "stall+neutralize" ]

(* Random capability records: [missing] must be exactly the required
   set minus what the record holds, and [require] must raise
   [Unsupported] naming the first missing capability. *)
let gen_caps =
  QCheck.Gen.map
    (fun bits ->
       {
         Runner_intf.deterministic = bits land 1 <> 0;
         crash_faults = bits land 2 <> 0;
         stall_faults = bits land 4 <> 0;
         virtual_time = bits land 8 <> 0;
         watchdog = bits land 16 <> 0;
         neutralize = bits land 128 <> 0;
         alloc_capacity = bits land 32 <> 0;
         service = bits land 64 <> 0;
       })
    (QCheck.Gen.int_bound 255)

let qcheck_missing_consistent =
  QCheck.Test.make ~name:"missing = required \\ held; require raises first"
    ~count:300
    (QCheck.make
       QCheck.Gen.(
         pair gen_caps
           (int_bound (List.length Runner_intf.fault_profiles - 1))))
    (fun (caps, i) ->
       let _, f = List.nth Runner_intf.fault_profiles i in
       let miss = Runner_intf.missing caps f in
       let req = Runner_intf.required_caps f in
       let subset_ok =
         List.for_all
           (fun c -> List.mem c req && not (Runner_intf.has caps c))
           miss
         && List.for_all
              (fun c -> Runner_intf.has caps c || List.mem c miss)
              req
       in
       let require_ok =
         match Runner_intf.require (dummy_exec caps) f with
         | () -> miss = []
         | exception Runner_intf.Unsupported { backend; capability } ->
           backend = "dummy" && (match miss with
             | first :: _ -> first = capability
             | [] -> false)
       in
       subset_ok && require_ok)

(* ---- sim: the new profile is deterministic and actually ejects ---- *)

let test_sim_stall_watchdog_deterministic () =
  let go () =
    let faults = Option.get (Runner_intf.faults_of_string "stall+watchdog") in
    let cfg =
      (* Ejection needs grace+1 watchdog checks = 60k cycles; leave a
         period of slack past that. *)
      Runner_sim.default_config ~threads:4 ~cores:4 ~horizon:90_000
        ~seed:0xb6 ~faults ~spec:small_spec ()
    in
    Option.get (Runner_sim.run_named ~tracker_name:"EBR" ~ds_name:"hashmap" cfg)
  in
  let a = go () and b = go () in
  Alcotest.(check string) "bit-identical CSV row" (Stats.to_csv_row a)
    (Stats.to_csv_row b);
  Alcotest.(check string) "provenance tag" "sim" a.Stats.backend;
  Alcotest.(check bool) "parked worker ejected" true
    (Stats.metric a "ejections" >= 1);
  Alcotest.(check int) "no crash was injected" 0 (Stats.metric a "crashes")

let test_tagged_csv_shape () =
  let cfg =
    Runner_sim.default_config ~threads:2 ~cores:2 ~horizon:10_000
      ~spec:small_spec ()
  in
  let r =
    Option.get (Runner_sim.run_named ~tracker_name:"EBR" ~ds_name:"hashmap" cfg)
  in
  Alcotest.(check string) "tagged header = backend, + header"
    ("backend," ^ Stats.csv_header ())
    (Stats.csv_header_tagged ());
  Alcotest.(check string) "tagged row = backend, + row"
    (r.Stats.backend ^ "," ^ Stats.to_csv_row r)
    (Stats.to_csv_row_tagged r);
  (* The untagged layout is pinned by the golden CSV; here just the
     width invariant the tagged variant must keep. *)
  Alcotest.(check int) "tagged width = untagged + 1"
    (List.length (String.split_on_char ',' (Stats.csv_header ())) + 1)
    (List.length (String.split_on_char ',' (Stats.csv_header_tagged ())))

(* ---- domains: honored subset runs, the rest fails fast ---- *)

let test_domains_runs_fault_free () =
  let cfg =
    Runner_domains.default_config ~threads:2 ~duration_s:0.1
      ~spec:small_spec ()
  in
  let r =
    Option.get
      (Runner_domains.run_named ~tracker_name:"2GEIBR" ~ds_name:"hashmap" cfg)
  in
  Alcotest.(check string) "provenance tag" "domains" r.Stats.backend;
  Alcotest.(check bool) "did ops" true (r.Stats.ops > 0);
  Alcotest.(check bool) "wall-clock makespan in us" true (r.Stats.makespan > 0)

let test_domains_stall_watchdog_ejects () =
  let faults = Option.get (Runner_intf.faults_of_string "stall+watchdog") in
  (* period*grace = 45 ms of wall clock; 0.2 s leaves room to eject. *)
  let cfg =
    Runner_domains.default_config ~threads:3 ~duration_s:0.2 ~faults
      ~spec:small_spec ()
  in
  let r =
    Option.get
      (Runner_domains.run_named ~tracker_name:"EBR" ~ds_name:"hashmap" cfg)
  in
  Alcotest.(check bool) "wall-clock watchdog ejected the parked worker" true
    (Stats.metric r "ejections" >= 1);
  Alcotest.(check bool) "survivors made progress" true (r.Stats.ops > 0)

let test_domains_crash_unsupported () =
  List.iter
    (fun name ->
       let faults = Option.get (Runner_intf.faults_of_string name) in
       let cfg =
         Runner_domains.default_config ~threads:2 ~duration_s:0.05 ~faults
           ~spec:small_spec ()
       in
       Alcotest.check_raises (name ^ " refused on domains")
         (Runner_intf.Unsupported
            { backend = "domains"; capability = "crash_faults" })
         (fun () ->
            ignore
              (Runner_domains.run_named ~tracker_name:"EBR"
                 ~ds_name:"hashmap" cfg)))
    [ "crash"; "crash+capped"; "crash+watchdog" ]

(* The gate fires before any work: a backend without the service
   capability cannot even begin an open-loop run (and, load-bearing
   for the test ordering, does not register the svc_* metrics). *)
let test_service_requires_capability () =
  let exec =
    dummy_exec { Run_engine.domains_caps with Runner_intf.service = false }
  in
  let profile =
    Service.default_profile ~workers:2 ~fleet:2 ~cores:2 ~horizon:2_000
      ~spec:small_spec ()
  in
  Alcotest.check_raises "service capability required"
    (Runner_intf.Unsupported { backend = "dummy"; capability = "service" })
    (fun () ->
       ignore
         (Service.run_named_exec ~exec ~tracker_name:"EBR" ~ds_name:"hashmap"
            profile))

let suite =
  [
    Alcotest.test_case "capability matrix (profiles x backends)" `Quick
      test_capability_matrix;
    QCheck_alcotest.to_alcotest qcheck_missing_consistent;
    Alcotest.test_case "sim stall+watchdog: deterministic, ejects" `Quick
      test_sim_stall_watchdog_deterministic;
    Alcotest.test_case "tagged CSV wraps the untagged layout" `Quick
      test_tagged_csv_shape;
    Alcotest.test_case "domains runs fault-free" `Slow
      test_domains_runs_fault_free;
    Alcotest.test_case "domains stall+watchdog ejects on wall clock" `Slow
      test_domains_stall_watchdog_ejects;
    Alcotest.test_case "crash profiles raise Unsupported on domains" `Quick
      test_domains_crash_unsupported;
    Alcotest.test_case "service needs the service capability" `Quick
      test_service_requires_capability;
  ]
