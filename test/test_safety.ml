(* Reclamation safety under adversarial schedules (Theorem 1,
   empirically): across many seeds, with stall injection, allocator
   reuse enabled, and single-step interleaving granularity, every
   correct scheme must complete with zero memory faults and intact
   structural invariants.

   Checker efficacy: the deliberately broken [Unsafe_free] scheme must
   trip the checker under the same schedules — otherwise a silent
   checker would vacuously "pass" everything. *)

open Ibr_core
open Ibr_runtime

let run_adversarial (module T : Tracker_intf.TRACKER) ~seed ~reuse =
  let module L = Ibr_ds.Harris_list.Make (T) in
  let threads = 10 in
  let cfg =
    { (Tracker_intf.default_config ~threads ()) with
      reuse; epoch_freq = 2; empty_freq = 4 } in
  let t = L.create ~threads cfg in
  let sched =
    Sched.create
      { (Sched.test_config ~cores:4 ~seed ()) with
        stall_prob = 0.05; stall_len = 3_000; quantum = 100 } in
  for i = 0 to threads - 1 do
    ignore
      (Sched.spawn sched (fun tid ->
         let h = L.register t ~tid in
         let rng = Rng.stream ~seed:(seed * 31 + i) ~index:i in
         for _ = 1 to 250 do
           let k = Rng.int rng 16 in
           match Rng.int rng 3 with
           | 0 -> ignore (L.insert h ~key:k ~value:k)
           | 1 -> ignore (L.remove h ~key:k)
           | _ -> ignore (L.contains h ~key:k)
         done))
  done;
  Sched.run sched;
  L.check_invariants t

let test_scheme_safe (e : Registry.entry) () =
  Fault.set_mode Fault.Raise;
  for seed = 1 to 25 do
    (* reuse on: exercises reincarnation ABA; reuse off: precise UAF. *)
    run_adversarial e.tracker ~seed ~reuse:true;
    run_adversarial e.tracker ~seed ~reuse:false
  done

let test_unsafe_oracle_faults () =
  (* The broken scheme must produce at least one fault somewhere in
     the same seed range — proof the checker has teeth. *)
  let faults = ref 0 in
  for seed = 1 to 25 do
    match
      Fault.with_counting (fun () ->
        run_adversarial Registry.unsafe_free.tracker ~seed ~reuse:false)
    with
    | (), n -> faults := !faults + n
    | exception _ -> incr faults
  done;
  Alcotest.(check bool)
    (Printf.sprintf "UnsafeFree trips the checker (%d faults)" !faults)
    true (!faults > 0)

(* Safety on the NM tree, whose helping protocol is the subtlest. *)
let run_adversarial_tree (module T : Tracker_intf.TRACKER) ~seed =
  let module D = Ibr_ds.Nm_tree.Make (T) in
  let dm = Option.get D.map in
  let threads = 10 in
  let cfg =
    { (Tracker_intf.default_config ~threads ()) with
      reuse = false; epoch_freq = 2; empty_freq = 4 } in
  let t = D.create ~threads cfg in
  let sched =
    Sched.create
      { (Sched.test_config ~cores:4 ~seed ()) with
        stall_prob = 0.05; stall_len = 3_000; quantum = 100 } in
  for i = 0 to threads - 1 do
    ignore
      (Sched.spawn sched (fun tid ->
         let h = D.register t ~tid in
         let rng = Rng.stream ~seed:(seed * 37 + i) ~index:i in
         for _ = 1 to 200 do
           let k = Rng.int rng 20 in
           match Rng.int rng 3 with
           | 0 -> ignore (dm.insert h ~key:k ~value:k)
           | 1 -> ignore (dm.remove h ~key:k)
           | _ -> ignore (dm.contains h ~key:k)
         done))
  done;
  Sched.run sched;
  D.check_invariants t

let test_tree_safe (e : Registry.entry) () =
  Fault.set_mode Fault.Raise;
  for seed = 1 to 15 do
    run_adversarial_tree e.tracker ~seed
  done

(* A stalled reader must never observe a fault even while the rest of
   the system reclaims aggressively around it. *)
let test_stalled_reader_never_faults (e : Registry.entry) () =
  let (module T : Tracker_intf.TRACKER) = e.tracker in
  let module L = Ibr_ds.Harris_list.Make (T) in
  Fault.set_mode Fault.Raise;
  let threads = 6 in
  let cfg =
    { (Tracker_intf.default_config ~threads ()) with
      reuse = true; epoch_freq = 2; empty_freq = 2 } in
  let t = L.create ~threads cfg in
  let sched = Sched.create (Sched.test_config ~cores:2 ~seed:3 ()) in
  (* Thread 0 is a reader that will be starved of cpu by the stall
     API mid-run; its in-flight traversal state must stay valid. *)
  for i = 0 to threads - 1 do
    ignore
      (Sched.spawn sched (fun tid ->
         let h = L.register t ~tid in
         let rng = Rng.stream ~seed:(100 + i) ~index:i in
         for _ = 1 to 300 do
           let k = Rng.int rng 12 in
           if tid = 0 then ignore (L.contains h ~key:k)
           else if Rng.bool rng then ignore (L.insert h ~key:k ~value:k)
           else ignore (L.remove h ~key:k)
         done))
  done;
  Sched.run sched;
  L.check_invariants t

(* Safety on the persistent Bonsai tree — the pairing POIBR exists
   for (POIBR on a mutable-pointer structure would be illegal and is
   excluded by the compatibility predicate). *)
let run_adversarial_bonsai (module T : Tracker_intf.TRACKER) ~seed =
  let module D = Ibr_ds.Bonsai_tree.Make (T) in
  let dm = Option.get D.map in
  let threads = 8 in
  let cfg =
    { (Tracker_intf.default_config ~threads ()) with
      reuse = false; epoch_freq = 2; empty_freq = 4 } in
  let t = D.create ~threads cfg in
  let sched =
    Sched.create
      { (Sched.test_config ~cores:4 ~seed ()) with
        stall_prob = 0.05; stall_len = 3_000; quantum = 100 } in
  for i = 0 to threads - 1 do
    ignore
      (Sched.spawn sched (fun tid ->
         let h = D.register t ~tid in
         let rng = Rng.stream ~seed:(seed * 41 + i) ~index:i in
         for _ = 1 to 150 do
           let k = Rng.int rng 20 in
           match Rng.int rng 3 with
           | 0 -> ignore (dm.insert h ~key:k ~value:k)
           | 1 -> ignore (dm.remove h ~key:k)
           | _ -> ignore (dm.contains h ~key:k)
         done))
  done;
  Sched.run sched;
  D.check_invariants t

let test_bonsai_safe (e : Registry.entry) () =
  Fault.set_mode Fault.Raise;
  for seed = 1 to 10 do
    run_adversarial_bonsai e.tracker ~seed
  done

let mutable_ok (e : Registry.entry) =
  let (module T : Tracker_intf.TRACKER) = e.tracker in
  T.props.mutable_pointers

let bonsai_ok (e : Registry.entry) =
  let (module T : Tracker_intf.TRACKER) = e.tracker in
  not T.props.bounded_slots

let suite =
  List.filter_map
    (fun (e : Registry.entry) ->
       if mutable_ok e then
         Some
           (Alcotest.test_case ("list safety: " ^ e.name) `Slow
              (test_scheme_safe e))
       else None)
    Registry.all
  @ List.filter_map
      (fun (e : Registry.entry) ->
         if mutable_ok e then
           Some
             (Alcotest.test_case ("nm-tree safety: " ^ e.name) `Slow
                (test_tree_safe e))
         else None)
      Registry.all
  @ List.filter_map
      (fun (e : Registry.entry) ->
         if bonsai_ok e then
           Some
             (Alcotest.test_case ("bonsai safety: " ^ e.name) `Slow
                (test_bonsai_safe e))
         else None)
      Registry.all
  @ List.filter_map
      (fun (e : Registry.entry) ->
         if mutable_ok e then
           Some
             (Alcotest.test_case ("stalled reader: " ^ e.name) `Quick
                (test_stalled_reader_never_faults e))
         else None)
      Registry.all
  @ [ Alcotest.test_case "checker efficacy (UnsafeFree faults)" `Slow
        test_unsafe_oracle_faults ]
