(* Unit tests of reclamation semantics, scheme by scheme, driven
   directly through the tracker API with multiple handles (no
   simulator: everything here is sequential, which makes the
   reservation arithmetic exactly observable). *)

open Ibr_core

let cfg ~threads =
  { (Tracker_intf.default_config ~threads ()) with
    reuse = false; epoch_freq = 1; empty_freq = 1_000_000 }
(* empty_freq huge: reclamation only on force_empty, so tests control
   the sweep points.  epoch_freq 1: every alloc advances the epoch. *)

(* --- generic properties, run against every scheme ----------------- *)

let test_alloc_retire_reclaim (module T : Tracker_intf.TRACKER) () =
  let t = T.create ~threads:1 (cfg ~threads:1) in
  let h = T.register t ~tid:0 in
  for i = 1 to 10 do
    let b = T.alloc h i in
    T.retire h b
  done;
  Alcotest.(check int) "10 retired" 10 (T.retired_count h);
  T.force_empty h;
  if T.name = "NoMM" then
    Alcotest.(check int) "NoMM never reclaims" 10 (T.retired_count h)
  else
    Alcotest.(check int) "all reclaimed when no reservations" 0
      (T.retired_count h)

let test_dealloc_unpublished (module T : Tracker_intf.TRACKER) () =
  let t = T.create ~threads:1 (cfg ~threads:1) in
  let h = T.register t ~tid:0 in
  let b = T.alloc h 42 in
  T.dealloc h b;
  Alcotest.(check bool) "reclaimed immediately" true (Block.is_reclaimed b)

let test_ptr_read_write_cas (module T : Tracker_intf.TRACKER) () =
  let t = T.create ~threads:1 (cfg ~threads:1) in
  let h = T.register t ~tid:0 in
  T.start_op h;
  let b1 = T.alloc h 1 and b2 = T.alloc h 2 in
  let p = T.make_ptr t (Some b1) in
  let v = T.read h ~slot:0 p in
  Alcotest.(check int) "deref" 1 (View.deref_exn v);
  Alcotest.(check bool) "cas with stale expected fails" false
    (T.cas h p ~expected:(View.make (Some b2)) (Some b2));
  Alcotest.(check bool) "cas with read view succeeds" true
    (T.cas h p ~expected:v (Some b2));
  let v2 = T.read h ~slot:0 p in
  Alcotest.(check int) "new target" 2 (View.deref_exn v2);
  T.write h p ~tag:3 (Some b1);
  let v3 = T.read h ~slot:0 p in
  Alcotest.(check int) "tag carried" 3 (View.tag v3);
  Alcotest.(check int) "write target" 1 (View.deref_exn v3);
  T.end_op h

let test_null_ptr (module T : Tracker_intf.TRACKER) () =
  let t = T.create ~threads:1 (cfg ~threads:1) in
  let h = T.register t ~tid:0 in
  T.start_op h;
  let p = T.make_ptr t None in
  let v = T.read h ~slot:0 p in
  Alcotest.(check bool) "null view" true (View.is_null v);
  T.end_op h

(* A reservation posted by a (never-ending) op in thread 1 must keep a
   block alive that thread 1 could be reading; ending the op releases
   it.  This is the core reclamation-safety contract. *)
let test_reservation_blocks_reclaim (module T : Tracker_intf.TRACKER) () =
  let t = T.create ~threads:2 (cfg ~threads:2) in
  let h0 = T.register t ~tid:0 in
  let h1 = T.register t ~tid:1 in
  (* Shared structure: one published block. *)
  let b = T.alloc h0 7 in
  let root = T.make_ptr t (Some b) in
  (* Thread 1 starts an op and reads the block — and then stalls,
     never calling end_op. *)
  T.start_op h1;
  let v = T.read_root h1 root in
  Alcotest.(check int) "reader sees block" 7 (View.deref_exn v);
  (* Thread 0 detaches and retires the block. *)
  T.start_op h0;
  let b2 = T.alloc h0 8 in
  Alcotest.(check bool) "detach" true (T.cas h0 root ~expected:v (Some b2));
  T.retire h0 b;
  T.end_op h0;
  T.force_empty h0;
  if T.name = "UnsafeFree" then
    Alcotest.(check bool) "oracle frees unsafely" true (Block.is_reclaimed b)
  else begin
    Alcotest.(check bool) "block survives while reserved" false
      (Block.is_reclaimed b);
    (* Reader can still access it. *)
    Alcotest.(check int) "stalled reader derefs safely" 7 (View.deref_exn v);
    (* Reader finishes; now it may go. *)
    T.end_op h1;
    T.force_empty h0;
    if T.name <> "NoMM" then
      Alcotest.(check bool) "block reclaimed after release" true
        (Block.is_reclaimed b)
  end

(* Robustness (Thm. 2): a thread stalled mid-op pins only blocks whose
   lifetime intersects its reservation.  Blocks born after the stall
   must remain reclaimable for robust schemes — and must NOT be for
   EBR. *)
let test_robustness (module T : Tracker_intf.TRACKER) () =
  let t = T.create ~threads:2 (cfg ~threads:2) in
  let h0 = T.register t ~tid:0 in
  let h1 = T.register t ~tid:1 in
  let b0 = T.alloc h0 0 in
  let root = T.make_ptr t (Some b0) in
  (* Thread 1 stalls mid-op holding a reservation. *)
  T.start_op h1;
  ignore (T.read_root h1 root);
  (* Thread 0 churns: every alloc advances the epoch (freq 1). *)
  for i = 1 to 100 do
    let b = T.alloc h0 i in
    T.start_op h0;
    let v = T.read h0 ~slot:0 root in
    ignore (T.cas h0 root ~expected:v (Some b));
    T.end_op h0;
    T.retire h0
      (match View.target v with Some old -> old | None -> assert false)
  done;
  T.force_empty h0;
  let pinned = T.retired_count h0 in
  if T.props.robust then
    Alcotest.(check bool)
      (Printf.sprintf "%s: stalled thread pins O(1) blocks (pinned=%d)"
         T.name pinned)
      true (pinned <= 5)
  else if T.name = "EBR" then
    Alcotest.(check bool)
      (Printf.sprintf "EBR pins everything (pinned=%d)" pinned)
      true (pinned >= 95)

(* Epoch bookkeeping: birth and retire epochs bracket the lifetime. *)
let test_epoch_tagging (module T : Tracker_intf.TRACKER) () =
  if T.epoch_value (T.create ~threads:1 (cfg ~threads:1)) = 0 then ()
  else begin
    let t = T.create ~threads:1 (cfg ~threads:1) in
    let h = T.register t ~tid:0 in
    let b = T.alloc h 0 in
    let birth = Block.birth_epoch b in
    Alcotest.(check bool) "birth tagged" true (birth > 0);
    for _ = 1 to 5 do ignore (T.alloc h 0) done;
    T.retire h b;
    Alcotest.(check bool) "retire after birth" true
      (Block.retire_epoch b >= birth);
    Alcotest.(check bool) "retire tagged" true (Block.retire_epoch b < max_int)
  end

(* --- scheme-specific tests ---------------------------------------- *)

let test_hp_unreserve_releases () =
  let module T = Hp in
  let t = T.create ~threads:2 (cfg ~threads:2) in
  let h0 = T.register t ~tid:0 and h1 = T.register t ~tid:1 in
  let b = T.alloc h0 1 in
  let root = T.make_ptr t (Some b) in
  T.start_op h1;
  let v = T.read h1 ~slot:0 root in
  T.start_op h0;
  let b2 = T.alloc h0 2 in
  ignore (T.cas h0 root ~expected:v (Some b2));
  T.retire h0 b;
  T.force_empty h0;
  Alcotest.(check bool) "hazard pins block" false (Block.is_reclaimed b);
  (* Explicit unreserve releases just that slot, mid-op. *)
  T.unreserve h1 ~slot:0;
  T.force_empty h0;
  Alcotest.(check bool) "unreserve frees it" true (Block.is_reclaimed b);
  T.end_op h1;
  T.end_op h0

let test_hp_reassign_keeps_protection () =
  let module T = Hp in
  let t = T.create ~threads:2 (cfg ~threads:2) in
  let h0 = T.register t ~tid:0 and h1 = T.register t ~tid:1 in
  let b = T.alloc h0 1 in
  let root = T.make_ptr t (Some b) in
  T.start_op h1;
  let v = T.read h1 ~slot:2 root in
  T.reassign h1 ~src:2 ~dst:0;
  T.unreserve h1 ~slot:2;
  T.start_op h0;
  ignore (T.cas h0 root ~expected:v None);
  T.retire h0 b;
  T.force_empty h0;
  Alcotest.(check bool) "copied hazard still pins" false (Block.is_reclaimed b);
  T.end_op h1;
  T.force_empty h0;
  Alcotest.(check bool) "end_op clears used slots" true (Block.is_reclaimed b)

let test_tagibr_born_before_monotone () =
  let module T = Tag_ibr.Cas in
  let t = T.create ~threads:1 (cfg ~threads:1) in
  let h = T.register t ~tid:0 in
  T.start_op h;
  let old = T.alloc h 1 in           (* early birth *)
  for _ = 1 to 10 do ignore (T.alloc h 0) done;
  let young = T.alloc h 2 in         (* late birth *)
  let p = T.make_ptr t (Some young) in
  let v = T.read h ~slot:0 p in
  (* Swing the pointer back to the *older* block: born_before must not
     decrease (Fig. 5's monotonic convention), which read tolerates. *)
  Alcotest.(check bool) "swing to older block" true
    (T.cas h p ~expected:v (Some old));
  let v2 = T.read h ~slot:0 p in
  Alcotest.(check int) "read still returns correct target" 1
    (View.deref_exn v2);
  T.end_op h

let test_wcas_exact_birth () =
  (* WCAS keeps born_before exact, so an interval reservation taken
     after reading an old block does not cover younger blocks:
     observable as reclamation precision. *)
  let module T = Tag_ibr_wcas in
  let t = T.create ~threads:2 (cfg ~threads:2) in
  let h0 = T.register t ~tid:0 and h1 = T.register t ~tid:1 in
  let old = T.alloc h0 1 in
  let root = T.make_ptr t (Some old) in
  T.start_op h1;
  ignore (T.read h1 ~slot:0 root);   (* reserve around old's birth *)
  (* Young block, born & retired entirely after h1's reservation. *)
  T.start_op h0;
  for _ = 1 to 5 do ignore (T.alloc h0 0) done;
  let young = T.alloc h0 2 in
  T.retire h0 young;
  T.end_op h0;
  T.force_empty h0;
  Alcotest.(check bool) "younger block reclaims under stalled reader" true
    (Block.is_reclaimed young);
  T.end_op h1

let test_poibr_interior_reads_uninstrumented () =
  (* POIBR's read of a non-root pointer must be a plain read that is
     still safe thanks to the root reservation. *)
  let module T = Po_ibr in
  let t = T.create ~threads:2 (cfg ~threads:2) in
  let h0 = T.register t ~tid:0 and h1 = T.register t ~tid:1 in
  (* Persistent chain root -> a -> b. *)
  let b = T.alloc h0 2 in
  let a = T.alloc h0 1 in
  let interior = T.make_ptr t (Some b) in
  let root = T.make_ptr t (Some a) in
  T.start_op h1;
  ignore (T.read_root h1 root);
  let v = T.read h1 ~slot:0 interior in
  Alcotest.(check int) "interior read" 2 (View.deref_exn v);
  (* Replace the whole version; retire both old nodes. *)
  T.start_op h0;
  let a' = T.alloc h0 10 in
  ignore (T.cas h0 root ~expected:(T.read h0 ~slot:0 root) (Some a'));
  T.retire h0 a;
  T.retire h0 b;
  T.end_op h0;
  T.force_empty h0;
  Alcotest.(check bool) "old version protected by root epoch" false
    (Block.is_reclaimed b);
  T.end_op h1;
  T.force_empty h0;
  Alcotest.(check bool) "reclaimed after reader leaves" true
    (Block.is_reclaimed b)

let test_registry_lookup () =
  Alcotest.(check bool) "find EBR" true (Registry.find "ebr" <> None);
  Alcotest.(check bool) "find tagibr-wcas" true
    (Registry.find "TAGIBR-WCAS" <> None);
  Alcotest.(check bool) "unknown" true (Registry.find "nope" = None);
  Alcotest.(check int) "paper set size" 9 (List.length Registry.paper_set);
  Alcotest.(check int) "all size" 14 (List.length Registry.all)

let test_fig7_rows () =
  let rows = Registry.fig7_rows () in
  Alcotest.(check int) "fig7 rows (all but NoMM)" 13 (List.length rows);
  let ebr = List.assoc "EBR" rows in
  Alcotest.(check bool) "EBR not robust" false ebr.Tracker_intf.robust;
  let debra = List.assoc "DEBRA" rows in
  Alcotest.(check bool) "DEBRA not robust" false debra.Tracker_intf.robust;
  Alcotest.(check bool) "DEBRA mutable pointers" true
    debra.Tracker_intf.mutable_pointers;
  let debra_plus = List.assoc "DEBRA+" rows in
  Alcotest.(check bool) "DEBRA+ not robust" false
    debra_plus.Tracker_intf.robust;
  let hp = List.assoc "HP" rows in
  Alcotest.(check bool) "HP robust" true hp.Tracker_intf.robust;
  Alcotest.(check bool) "HP needs unreserve" true hp.Tracker_intf.needs_unreserve;
  let po = List.assoc "POIBR" rows in
  Alcotest.(check bool) "POIBR immutable pointers" false
    po.Tracker_intf.mutable_pointers

let generic_cases =
  List.concat_map
    (fun (e : Registry.entry) ->
       let (module T : Tracker_intf.TRACKER) = e.tracker in
       [
         Alcotest.test_case (e.name ^ ": alloc/retire/reclaim") `Quick
           (test_alloc_retire_reclaim e.tracker);
         Alcotest.test_case (e.name ^ ": dealloc unpublished") `Quick
           (test_dealloc_unpublished e.tracker);
         Alcotest.test_case (e.name ^ ": ptr ops") `Quick
           (test_ptr_read_write_cas e.tracker);
         Alcotest.test_case (e.name ^ ": null ptr") `Quick
           (test_null_ptr e.tracker);
         Alcotest.test_case (e.name ^ ": reservation blocks reclaim") `Quick
           (test_reservation_blocks_reclaim e.tracker);
         Alcotest.test_case (e.name ^ ": robustness") `Quick
           (test_robustness e.tracker);
         Alcotest.test_case (e.name ^ ": epoch tagging") `Quick
           (test_epoch_tagging e.tracker);
       ])
    Registry.all

let suite =
  generic_cases
  @ [
      Alcotest.test_case "HP: unreserve releases" `Quick test_hp_unreserve_releases;
      Alcotest.test_case "HP: reassign keeps protection" `Quick
        test_hp_reassign_keeps_protection;
      Alcotest.test_case "TagIBR: born_before monotone" `Quick
        test_tagibr_born_before_monotone;
      Alcotest.test_case "WCAS: exact birth precision" `Quick test_wcas_exact_birth;
      Alcotest.test_case "POIBR: interior reads" `Quick
        test_poibr_interior_reads_uninstrumented;
      Alcotest.test_case "registry lookup" `Quick test_registry_lookup;
      Alcotest.test_case "fig7 rows" `Quick test_fig7_rows;
    ]
