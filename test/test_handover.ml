(* Reservation hand-over tests for the slot-based schemes (HP, HE):
   [reassign ~src ~dst] and [unreserve ~slot] exercised mid-traversal,
   with a model-based qcheck differential showing that exactly the
   slots the model says are protecting a block actually block its
   reclamation — in particular, a reassigned slot keeps protecting
   after its source slot is released. *)

open Ibr_core

let cfg ?(retire_backend = Reclaimer.List) ~threads () =
  { (Tracker_intf.default_config ~threads ()) with
    reuse = false; epoch_freq = 1; empty_freq = 1_000_000; retire_backend }

(* Hand-over-hand traversal shape: protect a in slot 0, protect its
   successor b in slot 1, then move b's protection down to slot 0 and
   drop slot 1 — the window where both the old and new protections
   exist must keep both blocks alive; afterwards only b is pinned.
   [precise] is HP's block granularity: the hand-over releases a.  HE
   reserves an *era*, and the surviving era lies inside a's lifetime
   too, so a legitimately stays pinned there. *)
let test_hand_over_hand ~precise (module T : Tracker_intf.TRACKER) () =
  let t = T.create ~threads:2 (cfg ~threads:2 ()) in
  let h0 = T.register t ~tid:0 and h1 = T.register t ~tid:1 in
  let a = T.alloc h0 1 and b = T.alloc h0 2 in
  let pa = T.make_ptr t (Some a) and pb = T.make_ptr t (Some b) in
  T.start_op h1;
  ignore (T.read h1 ~slot:0 pa);
  ignore (T.read h1 ~slot:1 pb);
  (* Advance: b's protection moves to slot 0, slot 1 released. *)
  T.reassign h1 ~src:1 ~dst:0;
  T.unreserve h1 ~slot:1;
  (* Writer detaches and retires both. *)
  T.start_op h0;
  T.write h0 pa None;
  T.write h0 pb None;
  T.retire h0 a;
  T.retire h0 b;
  T.end_op h0;
  T.force_empty h0;
  Alcotest.(check bool) "b still pinned by reassigned slot" false
    (Block.is_reclaimed b);
  Alcotest.(check bool)
    (if precise then "a released by the hand-over"
     else "a pinned by the surviving era")
    precise (Block.is_reclaimed a);
  T.end_op h1;
  T.force_empty h0;
  Alcotest.(check bool) "b reclaimed after end_op" true (Block.is_reclaimed b)

let test_unreserve_mid_op (module T : Tracker_intf.TRACKER) () =
  let t = T.create ~threads:2 (cfg ~threads:2 ()) in
  let h0 = T.register t ~tid:0 and h1 = T.register t ~tid:1 in
  let b = T.alloc h0 7 in
  let root = T.make_ptr t (Some b) in
  T.start_op h1;
  ignore (T.read h1 ~slot:2 root);
  T.start_op h0;
  T.write h0 root None;
  T.retire h0 b;
  T.end_op h0;
  T.force_empty h0;
  Alcotest.(check bool) "slot pins block" false (Block.is_reclaimed b);
  T.unreserve h1 ~slot:2;
  T.force_empty h0;
  Alcotest.(check bool) "unreserve releases mid-op" true
    (Block.is_reclaimed b);
  T.end_op h1

(* Model-based differential: start with the block protected in slot 0,
   apply a random script of reassigns/unreserves while tracking which
   slots the model says still protect it, then retire the block from
   the other thread and check reclamation matches the model exactly.
   Run under every retirement backend: the hand-over semantics must
   not depend on how the retired side stores its blocks. *)
type slot_op = Reassign of int * int | Unreserve of int

let slots = 4

let op_gen =
  QCheck.Gen.(
    int_bound (slots - 1) >>= fun a ->
    int_bound (slots - 1) >>= fun b ->
    oneof [ return (Reassign (a, b)); return (Unreserve a) ])

let script_gen = QCheck.Gen.(list_size (int_bound 12) op_gen)

let print_script ops =
  String.concat ";"
    (List.map
       (function
         | Reassign (s, d) -> Printf.sprintf "r%d->%d" s d
         | Unreserve s -> Printf.sprintf "u%d" s)
       ops)

let run_script (module T : Tracker_intf.TRACKER) ~retire_backend ops =
  let t = T.create ~threads:2 (cfg ~retire_backend ~threads:2 ()) in
  let h0 = T.register t ~tid:0 and h1 = T.register t ~tid:1 in
  let b = T.alloc h0 1 in
  let root = T.make_ptr t (Some b) in
  T.start_op h1;
  ignore (T.read h1 ~slot:0 root);
  let model = Array.make slots false in
  model.(0) <- true;
  List.iter
    (fun op ->
       match op with
       | Reassign (src, dst) ->
         T.reassign h1 ~src ~dst;
         model.(dst) <- model.(src)
       | Unreserve s ->
         T.unreserve h1 ~slot:s;
         model.(s) <- false)
    ops;
  T.start_op h0;
  T.write h0 root None;
  T.retire h0 b;
  T.end_op h0;
  T.force_empty h0;
  let protected_ = Array.exists Fun.id model in
  let ok = Block.is_reclaimed b = not protected_ in
  (* Cleanup so the precise allocator does not see a leak-on-purpose:
     release and re-sweep. *)
  T.end_op h1;
  T.force_empty h0;
  ok && Block.is_reclaimed b

let qcheck_handover (module T : Tracker_intf.TRACKER) =
  QCheck.Test.make
    ~name:
      (Printf.sprintf "%s: reassign/unreserve matches slot model" T.name)
    ~count:300
    (QCheck.make ~print:print_script script_gen)
    (fun ops ->
       List.for_all
         (fun retire_backend ->
            run_script (module T) ~retire_backend ops)
         Reclaimer.all_backends)

let suite =
  [
    Alcotest.test_case "HP: hand-over-hand" `Quick
      (test_hand_over_hand ~precise:true (module Hp));
    Alcotest.test_case "HE: hand-over-hand" `Quick
      (test_hand_over_hand ~precise:false (module He));
    Alcotest.test_case "HP: unreserve mid-op" `Quick
      (test_unreserve_mid_op (module Hp));
    Alcotest.test_case "HE: unreserve mid-op" `Quick
      (test_unreserve_mid_op (module He));
    QCheck_alcotest.to_alcotest (qcheck_handover (module Hp));
    QCheck_alcotest.to_alcotest (qcheck_handover (module He));
  ]
