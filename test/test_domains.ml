(* Real-parallelism stress: the same code on OCaml domains.  With one
   hardware core this still exercises preemptive interleaving of
   actual atomics; assertions are safety (no faults), conservation of
   allocator accounting, and structural invariants at quiescence. *)

open Ibr_core

let run_domains (e : Registry.entry) ds_name () =
  Fault.set_mode Fault.Raise;
  let spec =
    { (Ibr_harness.Workload.spec_for ds_name) with key_range = 512 } in
  let cfg =
    Ibr_harness.Runner_domains.default_config ~threads:4 ~duration_s:0.15
      ~spec () in
  let cfg =
    { cfg with
      tracker_cfg = { cfg.tracker_cfg with reuse = false } } in
  match
    Ibr_harness.Runner_domains.run_named ~tracker_name:e.name ~ds_name cfg
  with
  | None -> ()
  | Some r ->
    Alcotest.(check int) "no faults" 0 (Ibr_harness.Stats.metric r "faults");
    Alcotest.(check bool) "ops happened" true (r.ops > 0);
    Alcotest.(check bool) "freed <= allocated" true
      (Ibr_harness.Stats.metric r "freed"
       <= Ibr_harness.Stats.metric r "allocated")

(* Every rideable crossed with a tracker lineup that covers each
   reservation style: epoch (EBR, Fraser-EBR, QSBR), pointer (HP, HE)
   and interval (POIBR, TagIBR, TagIBR-WCAS, 2GEIBR).  Pairings the
   registry rejects as incompatible are skipped inside [run_domains]. *)
let cases =
  List.concat_map
    (fun ds ->
       List.map
         (fun (e : Registry.entry) ->
            Alcotest.test_case
              (Printf.sprintf "domains %s/%s" ds e.name)
              `Slow (run_domains e ds))
         [ Registry.ebr; Registry.fraser_ebr; Registry.qsbr; Registry.hp;
           Registry.he; Registry.po_ibr; Registry.tag_ibr;
           Registry.tag_ibr_wcas; Registry.two_ge_ibr ])
    [ "list"; "hashmap"; "nmtree"; "bonsai" ]

let suite = cases
