(* Discrete-event scheduler: determinism, preemption, horizon,
   stalls, queueing under oversubscription, unwinding. *)

open Ibr_runtime

let run_trace ?(cores = 3) ?(seed = 7) ?(threads = 5) ?(steps = 30) () =
  let t = Sched.create (Sched.test_config ~cores ~seed ()) in
  let buf = Buffer.create 128 in
  for _ = 1 to threads do
    ignore
      (Sched.spawn t (fun tid ->
         for j = 1 to steps do
           Hooks.step (1 + ((tid + j) mod 5));
           Buffer.add_string buf (string_of_int tid)
         done))
  done;
  Sched.run t;
  (t, Buffer.contents buf)

let test_determinism () =
  let _, a = run_trace () and _, b = run_trace () in
  Alcotest.(check string) "identical traces" a b

let test_all_threads_run () =
  let _, trace = run_trace () in
  for tid = 0 to 4 do
    Alcotest.(check bool)
      (Printf.sprintf "thread %d appears" tid)
      true
      (String.contains trace (Char.chr (Char.code '0' + tid)))
  done

let test_interleaving_happens () =
  let _, trace = run_trace () in
  (* With tiny quanta the trace must not be five solid blocks. *)
  let switches = ref 0 in
  String.iteri
    (fun i c -> if i > 0 && trace.[i - 1] <> c then incr switches)
    trace;
  Alcotest.(check bool) "many context switches" true (!switches > 10)

let test_vtime_accounting () =
  let t = Sched.create (Sched.test_config ~cores:1 ()) in
  let tid =
    Sched.spawn t (fun _ -> for _ = 1 to 10 do Hooks.step 7 done) in
  Sched.run t;
  Alcotest.(check int) "vtime = total cost" 70 (Sched.thread_vtime t tid)

let test_makespan_single_core () =
  (* One core: makespan is the sum of all thread work. *)
  let t = Sched.create { (Sched.test_config ~cores:1 ()) with ctx_switch = 0 } in
  for _ = 1 to 4 do
    ignore (Sched.spawn t (fun _ -> for _ = 1 to 10 do Hooks.step 5 done))
  done;
  Sched.run t;
  Alcotest.(check int) "makespan 4*50" 200 (Sched.makespan t)

let test_makespan_parallel () =
  (* Enough cores: makespan is one thread's work. *)
  let t = Sched.create { (Sched.test_config ~cores:4 ()) with ctx_switch = 0 } in
  for _ = 1 to 4 do
    ignore (Sched.spawn t (fun _ -> for _ = 1 to 10 do Hooks.step 5 done))
  done;
  Sched.run t;
  Alcotest.(check int) "makespan 50" 50 (Sched.makespan t)

let test_horizon_cuts () =
  let t = Sched.create (Sched.test_config ~cores:1 ()) in
  let count = ref 0 in
  ignore
    (Sched.spawn t (fun _ ->
       for _ = 1 to 1_000_000 do Hooks.step 10; incr count done));
  Sched.run ~horizon:500 t;
  Alcotest.(check bool) "stopped early" true (!count < 100);
  Alcotest.(check bool) "did some work" true (!count > 10)

let test_horizon_unwinds_protect () =
  let t = Sched.create (Sched.test_config ~cores:1 ()) in
  let cleaned = ref false in
  ignore
    (Sched.spawn t (fun _ ->
       Fun.protect
         ~finally:(fun () -> cleaned := true)
         (fun () -> for _ = 1 to 1_000_000 do Hooks.step 10 done)));
  Sched.run ~horizon:200 t;
  Alcotest.(check bool) "finally ran on unwind" true !cleaned

let test_stalled_thread_never_runs () =
  let t = Sched.create (Sched.test_config ~cores:2 ()) in
  let ran = Array.make 2 false in
  for i = 0 to 1 do
    ignore (Sched.spawn t (fun tid -> Hooks.step 1; ran.(tid) <- true; ignore i))
  done;
  Sched.stall t 1;
  Sched.run t;
  Alcotest.(check bool) "thread 0 ran" true ran.(0);
  Alcotest.(check bool) "stalled thread did not" false ran.(1)

let test_current_tid_inside_fiber () =
  let t = Sched.create (Sched.test_config ~cores:2 ()) in
  let seen = Array.make 3 (-1) in
  for _ = 0 to 2 do
    ignore
      (Sched.spawn t (fun tid ->
         Hooks.step 1;
         seen.(tid) <- Hooks.current_tid ()))
  done;
  Sched.run t;
  Alcotest.(check (array int)) "hooks report own tid" [| 0; 1; 2 |] seen

let test_now_monotone_in_fiber () =
  let t = Sched.create (Sched.test_config ~cores:2 ()) in
  let ok = ref true in
  ignore
    (Sched.spawn t (fun _ ->
       let last = ref (-1) in
       for _ = 1 to 50 do
         Hooks.step 3;
         let n = Hooks.now () in
         if n < !last then ok := false;
         last := n
       done));
  Sched.run t;
  Alcotest.(check bool) "thread-local time monotone" true !ok

let test_oversubscription_stretches_makespan () =
  let work () =
    fun _tid -> for _ = 1 to 100 do Hooks.step 5 done in
  let m cores threads =
    let t = Sched.create { (Sched.test_config ~cores ()) with ctx_switch = 0 } in
    for _ = 1 to threads do ignore (Sched.spawn t (work ())) done;
    Sched.run t;
    Sched.makespan t
  in
  let dedicated = m 8 8 and oversub = m 4 8 in
  Alcotest.(check bool) "8 threads on 4 cores take ~2x" true
    (oversub >= dedicated * 2)

let test_spawn_after_run_rejected () =
  let t = Sched.create (Sched.test_config ()) in
  ignore (Sched.spawn t (fun _ -> Hooks.step 1));
  Sched.run t;
  Alcotest.check_raises "no spawn after run"
    (Invalid_argument "Sched.spawn: scheduler already ran") (fun () ->
      ignore (Sched.spawn t (fun _ -> ())))

let test_exception_propagates () =
  let t = Sched.create (Sched.test_config ~cores:1 ()) in
  ignore (Sched.spawn t (fun _ -> Hooks.step 1; failwith "boom"));
  Alcotest.check_raises "body exception surfaces" (Failure "boom") (fun () ->
    Sched.run t)

let test_stall_unstall_roundtrip () =
  (* Mid-run round trip: thread 0 stalls thread 1, works a while (the
     stalled thread must make zero progress), then unstalls it; the
     revived thread must finish its full workload. *)
  let t = Sched.create (Sched.test_config ~cores:1 ()) in
  let count1 = ref 0 in
  let at_stall = ref (-1) and at_unstall = ref (-1) in
  let sched = t in
  ignore
    (Sched.spawn t (fun _ ->
       for i = 1 to 40 do
         Hooks.step 2;
         if i = 10 then begin
           Sched.stall sched 1;
           at_stall := !count1
         end;
         if i = 30 then begin
           at_unstall := !count1;
           Sched.unstall sched 1
         end
       done));
  ignore
    (Sched.spawn t (fun _ ->
       for _ = 1 to 25 do
         Hooks.step 3;
         incr count1
       done));
  Sched.run t;
  Alcotest.(check bool) "stall happened mid-run" true (!at_stall >= 0);
  Alcotest.(check int) "no progress while stalled" !at_stall !at_unstall;
  Alcotest.(check int) "revived thread finished" 25 !count1

let test_crash_self_no_unwind () =
  let t = Sched.create (Sched.test_config ~cores:1 ()) in
  let cleaned = ref false and after = ref false in
  let tid =
    Sched.spawn t (fun _ ->
      Fun.protect
        ~finally:(fun () -> cleaned := true)
        (fun () ->
           Hooks.step 1;
           Sched.crash_self ();
           after := true))
  in
  ignore (Sched.spawn t (fun _ -> for _ = 1 to 5 do Hooks.step 1 done));
  Sched.run t;
  Alcotest.(check bool) "no code after crash point" false !after;
  Alcotest.(check bool) "cleanups never ran (contrast Stopped)" false !cleaned;
  Alcotest.(check bool) "thread recorded as crashed" true (Sched.crashed t tid);
  Alcotest.(check int) "one crash fault" 1 (Sched.crashes t)

let test_crash_other_freezes_progress () =
  let t = Sched.create (Sched.test_config ~cores:1 ()) in
  let sched = t in
  let count1 = ref 0 and at_crash = ref (-1) in
  ignore
    (Sched.spawn t (fun _ ->
       (* The crash point sits past the first quantum boundary so the
          victim has demonstrably run before it is killed. *)
       for i = 1 to 60 do
         Hooks.step 2;
         if i = 30 then begin
           Sched.crash sched 1;
           at_crash := !count1
         end
       done));
  ignore
    (Sched.spawn t (fun _ ->
       for _ = 1 to 1_000 do Hooks.step 3; incr count1 done));
  Sched.run t;
  Alcotest.(check bool) "victim had started" true (!at_crash > 0);
  Alcotest.(check int) "victim frozen at the crash point" !at_crash !count1;
  Alcotest.(check bool) "victim marked crashed" true (Sched.crashed t 1)

let test_crash_injection_deterministic () =
  (* Probabilistic injection must be a pure function of the seed, and
     the [max_crashes] cap must hold. *)
  let go () =
    let cfg =
      { (Sched.test_config ~cores:2 ~seed:41 ()) with
        quantum = 20; crash_prob = 0.3; max_crashes = 2 }
    in
    let t = Sched.create cfg in
    let buf = Buffer.create 64 in
    for _ = 1 to 4 do
      ignore
        (Sched.spawn t (fun tid ->
           for _ = 1 to 50 do
             Hooks.step 3;
             Buffer.add_string buf (string_of_int tid)
           done))
    done;
    Sched.run t;
    (Sched.crashes t, Buffer.contents buf)
  in
  let c1, tr1 = go () and c2, tr2 = go () in
  Alcotest.(check int) "same crash count" c1 c2;
  Alcotest.(check string) "same trace" tr1 tr2;
  Alcotest.(check bool) "at least one crash injected" true (c1 >= 1);
  Alcotest.(check bool) "max_crashes respected" true (c1 <= 2)

let test_quanta_counted () =
  let t = Sched.create { (Sched.test_config ~cores:1 ()) with quantum = 10 } in
  let tid = Sched.spawn t (fun _ -> for _ = 1 to 10 do Hooks.step 10 done) in
  Sched.run t;
  Alcotest.(check bool) "multiple quanta" true (Sched.thread_quanta t tid >= 5)

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "all threads run" `Quick test_all_threads_run;
    Alcotest.test_case "interleaving happens" `Quick test_interleaving_happens;
    Alcotest.test_case "vtime accounting" `Quick test_vtime_accounting;
    Alcotest.test_case "makespan single core" `Quick test_makespan_single_core;
    Alcotest.test_case "makespan parallel" `Quick test_makespan_parallel;
    Alcotest.test_case "horizon cuts" `Quick test_horizon_cuts;
    Alcotest.test_case "horizon unwinds Fun.protect" `Quick test_horizon_unwinds_protect;
    Alcotest.test_case "stalled thread never runs" `Quick test_stalled_thread_never_runs;
    Alcotest.test_case "current tid" `Quick test_current_tid_inside_fiber;
    Alcotest.test_case "now monotone" `Quick test_now_monotone_in_fiber;
    Alcotest.test_case "oversubscription stretches makespan" `Quick
      test_oversubscription_stretches_makespan;
    Alcotest.test_case "stall/unstall round-trip" `Quick
      test_stall_unstall_roundtrip;
    Alcotest.test_case "crash_self abandons without unwinding" `Quick
      test_crash_self_no_unwind;
    Alcotest.test_case "crash freezes the victim's progress" `Quick
      test_crash_other_freezes_progress;
    Alcotest.test_case "crash injection deterministic and capped" `Quick
      test_crash_injection_deterministic;
    Alcotest.test_case "spawn after run rejected" `Quick test_spawn_after_run_rejected;
    Alcotest.test_case "body exception propagates" `Quick test_exception_propagates;
    Alcotest.test_case "quanta counted" `Quick test_quanta_counted;
  ]
