(* Differential tests for the sorted-snapshot sweep path: for random
   reservation tables and block lifetimes, the O(log T) conflict
   predicates must agree *exactly* with the original linear-scan
   predicates they replaced, for every tracker family — interval
   reservations (TagIBR/2GEIBR), era/epoch points (HE, POIBR), and the
   epoch threshold (EBR/QSBR/Fraser). *)

open Ibr_core

let epoch_range = 200

(* A reservation slot in any state a sweep can observe: unreserved,
   mid-[clear] (lower already max_int, upper stale), mid-[start]
   (lower fresh, upper still cleared), or fully reserved. *)
let slot_gen =
  QCheck.Gen.(
    int_bound 9 >>= fun shape ->
    int_bound epoch_range >>= fun e ->
    int_bound 40 >>= fun len ->
    match shape with
    | 0 | 1 -> return (max_int, max_int)          (* empty *)
    | 2 -> return (max_int, e)                    (* mid-clear *)
    | 3 -> return (e, max_int)                    (* mid-start *)
    | _ -> return (e, e + len))                   (* reserved interval *)

let block_gen =
  QCheck.Gen.(
    int_bound epoch_range >>= fun birth ->
    int_bound 50 >>= fun len -> return (birth, birth + len))

let table_gen =
  QCheck.Gen.(
    int_range 1 100 >>= fun threads ->
    list_size (return threads) slot_gen >>= fun slots ->
    list_size (int_bound 60) block_gen >>= fun blocks ->
    return (slots, blocks))

let print_case (slots, blocks) =
  Printf.sprintf "slots=%s blocks=%s"
    (String.concat ";"
       (List.map
          (fun (lo, hi) ->
             Printf.sprintf "[%s,%s]"
               (if lo = max_int then "MAX" else string_of_int lo)
               (if hi = max_int then "MAX" else string_of_int hi))
          slots))
    (String.concat ";"
       (List.map (fun (b, r) -> Printf.sprintf "(%d,%d)" b r) blocks))

let mk_block id (birth, retire) =
  let b = Block.make ~id 0 in
  Block.set_birth_epoch b birth;
  Block.set_retire_epoch b retire;
  b

let qcheck_interval_differential =
  QCheck.Test.make
    ~name:"sorted snapshot = linear scan (interval reservations)"
    ~count:1000
    (QCheck.make ~print:print_case table_gen)
    (fun (slots, blocks) ->
       let res = Tracker_common.Interval_res.create (List.length slots) in
       List.iteri
         (fun tid (lo, hi) ->
            Atomic.set res.Tracker_common.Interval_res.lower.(tid) lo;
            Atomic.set res.Tracker_common.Interval_res.upper.(tid) hi)
         slots;
       let oracle = Tracker_common.Interval_res.conflict_with_snapshot res in
       let fast =
         Tracker_common.Conflict.pred
           (Tracker_common.Conflict.Intervals
              (Tracker_common.Interval_res.sweep_snapshot res))
       in
       List.for_all
         (fun lifetime ->
            let b = mk_block 0 lifetime in
            oracle b = fast b)
         blocks)

let qcheck_era_differential =
  (* HE form: single reserved eras, 0 = empty slot. *)
  QCheck.Test.make ~name:"sorted snapshot = linear scan (era points)"
    ~count:1000
    (QCheck.make
       QCheck.Gen.(
         pair
           (list_size (int_range 1 200) (int_bound epoch_range))
           (list_size (int_bound 60) block_gen)))
    (fun (eras, blocks) ->
       let eras = Array.of_list eras in
       let no_era = 0 in
       let reserved =
         Array.to_list eras |> List.filter (fun e -> e <> no_era) in
       let oracle b =
         List.exists
           (fun e -> Block.birth_epoch b <= e && e <= Block.retire_epoch b)
           reserved
       in
       let fast =
         Tracker_common.Conflict.pred
           (Tracker_common.Conflict.Intervals
              (Tracker_common.Sweep_snapshot.of_points ~none:no_era eras))
       in
       List.for_all
         (fun lifetime ->
            let b = mk_block 0 lifetime in
            oracle b = fast b)
         blocks)

let qcheck_threshold_differential =
  (* EBR form: conflict iff retired at or after the oldest
     reservation. *)
  QCheck.Test.make ~name:"threshold conflict = min-reservation scan"
    ~count:500
    (QCheck.make
       QCheck.Gen.(
         pair
           (list_size (int_range 1 100)
              (oneof [ return max_int; int_bound epoch_range ]))
           (list_size (int_bound 60) block_gen)))
    (fun (reservations, blocks) ->
       let max_safe = List.fold_left min max_int reservations in
       let oracle b =
         List.exists (fun r -> Block.retire_epoch b >= r) reservations
       in
       let fast =
         Tracker_common.Conflict.pred
           (Tracker_common.Conflict.Threshold max_safe)
       in
       List.for_all
         (fun lifetime ->
            let b = mk_block 0 lifetime in
            oracle b = fast b)
         blocks)

(* The [legacy_sweep] debug flag must route HE and the interval family
   through the oracle predicate: flipping it mid-run may change cost,
   never the set of blocks freed.  Checked here on a tiny end-to-end
   sweep of each form. *)
let test_legacy_flag_equivalence () =
  let check_form name build_conflict =
    let outcomes use_legacy =
      Tracker_common.legacy_sweep := use_legacy;
      Fun.protect
        ~finally:(fun () -> Tracker_common.legacy_sweep := false)
        (fun () ->
           let conflict = build_conflict () in
           List.init 40 (fun i -> conflict (mk_block i (i * 5, (i * 5) + 20))))
    in
    Alcotest.(check (list bool)) name (outcomes true) (outcomes false)
  in
  let res = Tracker_common.Interval_res.create 8 in
  List.iteri
    (fun tid (lo, hi) ->
       Atomic.set res.Tracker_common.Interval_res.lower.(tid) lo;
       Atomic.set res.Tracker_common.Interval_res.upper.(tid) hi)
    [ (10, 30); (max_int, max_int); (55, 90); (120, 120); (7, 7);
      (max_int, 40); (63, max_int); (150, 180) ];
  check_form "interval family" (fun () ->
    Tracker_common.Interval_res.conflict_fast res)

let test_sweep_stats_accumulate () =
  let before = Tracker_common.Sweep_stats.snap () in
  let retired = Tracker_common.Retired.create () in
  for i = 0 to 9 do
    let b = mk_block i (i, i + 1) in
    Block.transition_retire b;
    Tracker_common.Retired.add retired b
  done;
  (* Keep blocks with even birth epochs, free the rest. *)
  Tracker_common.Retired.sweep retired
    ~conflict:(fun b -> Block.birth_epoch b mod 2 = 0)
    ~free:ignore;
  let d =
    Tracker_common.Sweep_stats.diff before (Tracker_common.Sweep_stats.snap ())
  in
  Alcotest.(check int) "one sweep" 1 d.sweeps;
  Alcotest.(check int) "examined all" 10 d.examined;
  Alcotest.(check int) "freed odd births" 5 d.freed;
  Alcotest.(check int) "kept the rest" 5 (Tracker_common.Retired.count retired)

let test_snapshot_merges () =
  (* Overlapping and adjacent intervals collapse; disjoint ones stay. *)
  let snap =
    Tracker_common.Sweep_snapshot.of_intervals
      ~lower:[| 5; 1; 3; 20; max_int; 22 |]
      ~upper:[| 9; 2; 4; 21; max_int; 30 |]
  in
  (* [1,2]+[3,4]+[5,9] merge (adjacent integers), [20,21]+[22,30] merge. *)
  Alcotest.(check int) "two merged runs" 2
    (Tracker_common.Sweep_snapshot.length snap);
  let conflict birth retire =
    Tracker_common.Sweep_snapshot.conflict snap ~birth ~retire in
  Alcotest.(check bool) "inside first run" true (conflict 2 3);
  Alcotest.(check bool) "gap between runs" false (conflict 10 19);
  Alcotest.(check bool) "inside second run" true (conflict 25 25);
  Alcotest.(check bool) "before everything" false (conflict 0 0);
  Alcotest.(check bool) "after everything" false (conflict 31 99);
  Alcotest.(check bool) "spanning the gap" true (conflict 10 20)

let suite =
  [
    QCheck_alcotest.to_alcotest qcheck_interval_differential;
    QCheck_alcotest.to_alcotest qcheck_era_differential;
    QCheck_alcotest.to_alcotest qcheck_threshold_differential;
    Alcotest.test_case "legacy flag equivalence" `Quick
      test_legacy_flag_equivalence;
    Alcotest.test_case "sweep stats accumulate" `Quick
      test_sweep_stats_accumulate;
    Alcotest.test_case "snapshot merge/conflict" `Quick test_snapshot_merges;
  ]
