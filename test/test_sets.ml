(* Data-structure correctness, generic over (rideable × scheme):

   1. Sequential model equivalence: random op sequences against a
      reference map (also as a qcheck property).
   2. Concurrent per-key balance: for a linearizable set, per key,
        successful inserts - successful removes = final membership.
      This holds in *every* legal history, so it checks concurrent
      correctness without reconstructing a linearization order.
   3. Structural invariants at quiescence (per-structure checkers).

   All concurrent runs use the simulator at single-step granularity
   with stalls injected, no allocator reuse (precise UAF detection),
   and the fault checker in raise mode. *)

open Ibr_core
open Ibr_runtime
open Ibr_ds

(* Only map-capable rideables run the set-semantics suite; the queue
   rideables have their own model tests in test_rideables.ml. *)
let pairs =
  List.concat_map
    (fun (maker : Ds_registry.maker) ->
       List.filter_map
         (fun (e : Registry.entry) ->
            if Ds_registry.compatible maker e.tracker then
              Some (maker, e)
            else None)
         Registry.all)
    (List.filter (fun (m : Ds_registry.maker) -> m.caps.Ds_intf.map)
       Ds_registry.all)

(* --- 1. sequential model equivalence ------------------------------ *)

let sequential_model_run (module S : Ds_intf.RIDEABLE) ~seed ~ops ~key_range
  =
  let m = Option.get S.map in
  let cfg =
    { (Tracker_intf.default_config ~threads:1 ()) with
      reuse = false; epoch_freq = 2; empty_freq = 4 } in
  let t = S.create ~threads:1 cfg in
  let h = S.register t ~tid:0 in
  let model = Hashtbl.create 64 in
  let rng = Rng.create seed in
  for _ = 1 to ops do
    let k = Rng.int rng key_range in
    match Rng.int rng 4 with
    | 0 | 1 ->
      let expected = not (Hashtbl.mem model k) in
      let got = m.insert h ~key:k ~value:(k * 3) in
      if got <> expected then
        Alcotest.failf "insert %d: expected %b got %b" k expected got;
      if got then Hashtbl.replace model k (k * 3)
    | 2 ->
      let expected = Hashtbl.mem model k in
      let got = m.remove h ~key:k in
      if got <> expected then
        Alcotest.failf "remove %d: expected %b got %b" k expected got;
      if got then Hashtbl.remove model k
    | _ ->
      let expected = Hashtbl.find_opt model k in
      let got = m.get h ~key:k in
      if got <> expected then Alcotest.failf "get %d mismatch" k
  done;
  (* Final contents match the model exactly. *)
  let dumped = m.to_sorted_list t in
  let modeled =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) model []
    |> List.sort compare
  in
  if dumped <> modeled then
    Alcotest.failf "final contents differ: %d vs %d entries"
      (List.length dumped) (List.length modeled);
  S.check_invariants t

let test_sequential (maker : Ds_registry.maker) (e : Registry.entry) () =
  let s = maker.instantiate e.tracker in
  sequential_model_run s ~seed:0xabc ~ops:2000 ~key_range:64

(* --- 2. concurrent per-key balance -------------------------------- *)

type op_log = { mutable ins_ok : int array; mutable rem_ok : int array }

let concurrent_balance_run (module S : Ds_intf.RIDEABLE) ~seed ~threads
    ~key_range ~ops_per_thread =
  let m = Option.get S.map in
  let cfg =
    { (Tracker_intf.default_config ~threads ()) with
      reuse = false; epoch_freq = 2; empty_freq = 8 } in
  let t = S.create ~threads cfg in
  let sched =
    Sched.create
      { (Sched.test_config ~cores:3 ~seed ()) with
        stall_prob = 0.02; stall_len = 2_000; quantum = 150 }
  in
  let logs =
    Array.init threads (fun _ ->
      { ins_ok = Array.make key_range 0; rem_ok = Array.make key_range 0 })
  in
  for i = 0 to threads - 1 do
    ignore
      (Sched.spawn sched (fun tid ->
         let h = S.register t ~tid in
         let rng = Rng.stream ~seed:(seed * 131 + i) ~index:i in
         for _ = 1 to ops_per_thread do
           let k = Rng.int rng key_range in
           match Rng.int rng 3 with
           | 0 ->
             if m.insert h ~key:k ~value:k then
               logs.(tid).ins_ok.(k) <- logs.(tid).ins_ok.(k) + 1
           | 1 ->
             if m.remove h ~key:k then
               logs.(tid).rem_ok.(k) <- logs.(tid).rem_ok.(k) + 1
           | _ -> ignore (m.contains h ~key:k)
         done))
  done;
  Sched.run sched;
  let final = m.to_sorted_list t in
  for k = 0 to key_range - 1 do
    let ins =
      Array.fold_left (fun n l -> n + l.ins_ok.(k)) 0 logs in
    let rem =
      Array.fold_left (fun n l -> n + l.rem_ok.(k)) 0 logs in
    let present = List.mem_assoc k final in
    let expected = ins - rem in
    let actual = if present then 1 else 0 in
    if expected <> actual then
      Alcotest.failf
        "key %d: %d successful inserts, %d successful removes, present=%b"
        k ins rem present
  done;
  S.check_invariants t

let test_concurrent_balance (maker : Ds_registry.maker) (e : Registry.entry)
    () =
  let s = maker.instantiate e.tracker in
  concurrent_balance_run s ~seed:0x5e7 ~threads:8 ~key_range:24
    ~ops_per_thread:250

(* --- 3. duplicate-insert / value semantics ------------------------ *)

let test_insert_semantics (maker : Ds_registry.maker) (e : Registry.entry) ()
  =
  let (module S : Ds_intf.RIDEABLE) = maker.instantiate e.tracker in
  let m = Option.get S.map in
  let cfg = { (Tracker_intf.default_config ()) with reuse = false } in
  let t = S.create ~threads:1 cfg in
  let h = S.register t ~tid:0 in
  Alcotest.(check bool) "insert new" true (m.insert h ~key:5 ~value:50);
  Alcotest.(check bool) "insert dup" false (m.insert h ~key:5 ~value:51);
  Alcotest.(check (option int)) "value kept" (Some 50) (m.get h ~key:5);
  Alcotest.(check bool) "remove" true (m.remove h ~key:5);
  Alcotest.(check bool) "remove absent" false (m.remove h ~key:5);
  Alcotest.(check (option int)) "gone" None (m.get h ~key:5);
  Alcotest.(check bool) "reinsert" true (m.insert h ~key:5 ~value:52);
  Alcotest.(check (option int)) "new value" (Some 52) (m.get h ~key:5)

(* --- qcheck: sequential equivalence on arbitrary op lists ---------- *)

let op_gen key_range =
  QCheck.Gen.(
    pair (int_bound 2) (int_bound (key_range - 1)))

let qcheck_sequential (maker : Ds_registry.maker) (e : Registry.entry) =
  QCheck.Test.make
    ~name:(Printf.sprintf "%s/%s matches model" maker.ds_name e.name)
    ~count:30
    QCheck.(make Gen.(list_size (int_bound 200) (op_gen 16)))
    (fun ops ->
       let (module S : Ds_intf.RIDEABLE) = maker.instantiate e.tracker in
       let m = Option.get S.map in
       let cfg =
         { (Tracker_intf.default_config ()) with
           reuse = false; epoch_freq = 2; empty_freq = 4 } in
       let t = S.create ~threads:1 cfg in
       let h = S.register t ~tid:0 in
       let model = Hashtbl.create 16 in
       List.for_all
         (fun (op, k) ->
            match op with
            | 0 ->
              let expected = not (Hashtbl.mem model k) in
              let got = m.insert h ~key:k ~value:k in
              if got then Hashtbl.replace model k k;
              got = expected
            | 1 ->
              let expected = Hashtbl.mem model k in
              let got = m.remove h ~key:k in
              if got then Hashtbl.remove model k;
              got = expected
            | _ -> m.get h ~key:k = Hashtbl.find_opt model k)
         ops
       && m.to_sorted_list t
          = (Hashtbl.fold (fun k v acc -> (k, v) :: acc) model []
             |> List.sort compare))

(* One qcheck per rideable (using a representative tracker each, plus
   one slow scheme), to keep runtime sane. *)
let qcheck_cases =
  List.filter_map
    (fun (maker, (e : Registry.entry)) ->
       if e.name = "2GEIBR" || e.name = "HP" || e.name = "POIBR" then
         Some (QCheck_alcotest.to_alcotest (qcheck_sequential maker e))
       else None)
    pairs

let suite =
  List.concat_map
    (fun ((maker : Ds_registry.maker), (e : Registry.entry)) ->
       let name suffix =
         Printf.sprintf "%s/%s: %s" maker.ds_name e.name suffix in
       [
         Alcotest.test_case (name "sequential model") `Quick
           (test_sequential maker e);
         Alcotest.test_case (name "insert semantics") `Quick
           (test_insert_semantics maker e);
         Alcotest.test_case (name "concurrent balance") `Slow
           (test_concurrent_balance maker e);
       ])
    pairs
  @ qcheck_cases
