(* Entry point aggregating every suite; `dune runtest` runs it. *)

let () =
  Alcotest.run "ibr"
    [
      ("rng", Test_rng.suite);
      ("sched", Test_sched.suite);
      ("block-alloc", Test_block_alloc.suite);
      ("epoch-view", Test_epoch_view.suite);
      ("trackers", Test_trackers.suite);
      ("sweep", Test_sweep.suite);
      ("sets", Test_sets.suite);
      ("stack", Test_stack.suite);
      ("rideables", Test_rideables.suite);
      ("safety", Test_safety.suite);
      ("unsound", Test_unsound.suite);
      ("check", Test_check.suite);
      ("linearizability", Test_linearizability.suite);
      ("harness", Test_harness.suite);
      ("domains", Test_domains.suite);
      ("more", Test_more.suite);
      ("handover", Test_handover.suite);
      ("retire-backends", Test_retire_backends.suite);
      ("background", Test_background.suite);
      ("robustness", Test_robustness.suite);
      ("engine", Test_engine.suite);
      ("obs", Test_obs.suite);
      (* Last on purpose: a service run lazily registers svc_* metrics,
         which widens the registry CSV layout test_obs pins. *)
      ("service", Test_service.suite);
      (* After service for the same reason: a Neutralize watchdog
         lazily registers the neutralizations/recovered gauges. *)
      ("neutralize", Test_neutralize.suite);
    ]
