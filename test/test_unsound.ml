(* Demonstration that Fig. 6's *literal* pseudocode ordering is racy,
   and that the sound implementation closes the race.

   The primary demonstration replays checked-in minimal witness traces
   found by the model checker ([Ibr_check], test/traces/*.trace):
   deterministic, instant, and readable — the 2GEIBR-unfenced witness
   is four schedule segments.  The same segment sequence is also
   replayed against the sound tracker, where it must be harmless.

   The historical padding-grid choreography is kept below as a `Slow
   cross-check: two threads phased by virtual-time padding on a 2-core
   simulated machine, a grid of paddings sliding the writer's
   detach/retire/sweep across the reader's read window.  It predates
   the model checker and finds the same race the hard way (hand-tuned
   offsets, an asymmetric cost model to widen the window) — evidence
   that the fault is not an artifact of the checker's uniform-cost
   decision alignment. *)

open Ibr_core
open Ibr_runtime

(* ---- replay of model-checker witnesses ---- *)

let load_trace name =
  let path = Filename.concat "traces" name in
  match Ibr_check.Trace.of_file path with
  | Ok t -> t
  | Error msg -> Alcotest.failf "%s: %s" path msg

let test_replay_unfenced_witness () =
  let tr = load_trace "reader_writer_2GEIBR-unfenced.trace" in
  match Ibr_check.Scenarios.find tr.scenario with
  | None -> Alcotest.failf "unknown scenario %s" tr.scenario
  | Some case ->
    let r = Ibr_check.Engine.replay case.scenario tr in
    (match r.failure with
     | None ->
       Alcotest.fail "checked-in minimal witness did not reproduce the UAF"
     | Some msg ->
       Alcotest.(check bool)
         (Printf.sprintf "failure is a use-after-free (%s)" msg)
         true
         (Astring_contains.contains msg "use-after-free"))

(* The very same segment sequence against the sound publish-fence-
   reread implementation: harmless. *)
let test_sound_immune_to_witness () =
  let tr = load_trace "reader_writer_2GEIBR-unfenced.trace" in
  let sound = Ibr_check.Scenarios.reader_writer Registry.two_ge_ibr in
  let segs =
    List.map
      (fun (s : Ibr_check.Trace.segment) -> (s.tid, s.steps))
      tr.segments
  in
  let tr' =
    Ibr_check.Trace.v ~scenario:sound.name ~threads:tr.threads segs in
  let r = Ibr_check.Engine.replay sound tr' in
  Alcotest.(check (option string))
    "witness schedule is harmless under sound 2GEIBR" None r.failure

(* ---- neutralization-without-reprotect witness (DESIGN.md §12) ---- *)

(* DEBRA-norestart drops reservations on [recover] but retries the
   read without re-protecting: the checked-in 2-switch witness drives
   the victim into the restart handler, lets the writer unlink +
   retire + force-free, and the retry dereferences the freed block. *)
let test_replay_norestart_witness () =
  let tr = load_trace "neutralize_mid_op_DEBRA-norestart.trace" in
  match Ibr_check.Scenarios.find tr.scenario with
  | None -> Alcotest.failf "unknown scenario %s" tr.scenario
  | Some case ->
    let r = Ibr_check.Engine.replay case.scenario tr in
    (match r.failure with
     | None ->
       Alcotest.fail "checked-in minimal witness did not reproduce the UAF"
     | Some msg ->
       Alcotest.(check bool)
         (Printf.sprintf "failure is a use-after-free (%s)" msg)
         true
         (Astring_contains.contains msg "use-after-free"))

(* The same schedule against full DEBRA+ (recover re-protects before
   the retry): harmless. *)
let test_debra_plus_immune_to_witness () =
  let tr = load_trace "neutralize_mid_op_DEBRA-norestart.trace" in
  let sound = Ibr_check.Scenarios.neutralize_mid_op Registry.debra_plus in
  let segs =
    List.map
      (fun (s : Ibr_check.Trace.segment) -> (s.tid, s.steps))
      tr.segments
  in
  let tr' =
    Ibr_check.Trace.v ~scenario:sound.name ~threads:tr.threads segs in
  let r = Ibr_check.Engine.replay sound tr' in
  Alcotest.(check (option string))
    "witness schedule is harmless under DEBRA+" None r.failure

(* ---- the padding-grid cross-check (pre-model-checker) ---- *)

let race_costs =
  { Ibr_runtime.Cost.default with
    hot_read = 200; write = 60; scan_reservation = 1; free = 1;
    alloc_fresh = 5; faa = 2 }

let attempt (module T : Tracker_intf.TRACKER) ~pr ~p2 ~p3 =
  let cfg =
    { (Tracker_intf.default_config ~threads:2 ()) with
      reuse = false; epoch_freq = 1; empty_freq = 1_000_000 } in
  let t = T.create ~threads:2 cfg in
  let h0 = T.register t ~tid:0 in
  let a = T.alloc h0 1 in
  let ptr = T.make_ptr t (Some a) in
  let scfg =
    { (Sched.test_config ~cores:2 ~seed:1 ()) with
      quantum = 1; ctx_switch = 0 } in
  let sched = Sched.create scfg in
  (* R: reserve at E0, then read-and-dereference. *)
  ignore
    (Sched.spawn sched (fun _ ->
       Hooks.step 1000;
       let h = T.register t ~tid:0 in
       T.start_op h;
       Hooks.step (1 + pr);
       let v = T.read h ~slot:0 ptr in
       (match View.target v with
        | Some blk -> ignore (Block.get blk)
        | None -> ());
       T.end_op h));
  (* W: birth a young block after R's reservation, publish it into the
     cell, then detach + retire + sweep. *)
  ignore
    (Sched.spawn sched (fun _ ->
       let h = T.register t ~tid:1 in
       T.start_op h;
       let c = T.alloc h 99 in
       Hooks.step (1 + p2);
       let b = T.alloc h 7 in
       T.write h ptr (Some b);
       Hooks.step (1 + p3);
       T.write h ptr (Some c);
       T.retire h b;
       T.force_empty h;
       T.end_op h));
  let (), faults = Fault.with_counting (fun () -> Sched.run sched) in
  faults

let scan tracker =
  let saved = !Prim.costs in
  Fun.protect ~finally:(fun () -> Prim.set_costs saved) (fun () ->
    Prim.set_costs race_costs;
    let hits = ref 0 and total = ref 0 in
    for pr = 4 to 7 do
      for p2 = 12 to 16 do
        for p3 = 0 to 13 do
          total := !total + 1;
          if attempt tracker ~pr:(pr * 50) ~p2:(p2 * 50) ~p3:(p3 * 10) > 0
          then incr hits
        done
      done
    done;
    (!hits, !total))

let test_unfenced_races () =
  let hits, total = scan Registry.two_ge_unfenced.tracker in
  Alcotest.(check bool)
    (Printf.sprintf
       "literal Fig. 6 ordering produces UAF (%d of %d schedules)" hits total)
    true (hits > 0)

let test_sound_does_not () =
  let hits, total = scan Registry.two_ge_ibr.tracker in
  Alcotest.(check int)
    (Printf.sprintf "sound 2GEIBR is clean over the same %d schedules" total)
    0 hits

(* The same grid against the other robust schemes: nobody else races
   either (their read protocols all publish before trusting). *)
let test_other_schemes_clean () =
  List.iter
    (fun (e : Registry.entry) ->
       let hits, _ = scan e.tracker in
       Alcotest.(check int) (e.name ^ " clean on race grid") 0 hits)
    [ Registry.he; Registry.tag_ibr; Registry.tag_ibr_wcas;
      Registry.tag_ibr_tpa; Registry.hp ]

let suite =
  [
    Alcotest.test_case "replay minimal Fig.6 witness" `Quick
      test_replay_unfenced_witness;
    Alcotest.test_case "sound 2GEIBR immune to witness schedule" `Quick
      test_sound_immune_to_witness;
    Alcotest.test_case "replay minimal DEBRA-norestart witness" `Quick
      test_replay_norestart_witness;
    Alcotest.test_case "DEBRA+ immune to norestart witness schedule" `Quick
      test_debra_plus_immune_to_witness;
    Alcotest.test_case "literal Fig.6 ordering races (grid)" `Slow
      test_unfenced_races;
    Alcotest.test_case "sound 2GEIBR does not race (grid)" `Slow
      test_sound_does_not;
    Alcotest.test_case "other schemes clean on grid" `Slow
      test_other_schemes_clean;
  ]
