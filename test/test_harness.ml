(* Harness components: workload generation, stats arithmetic, CSV,
   chart rendering, experiment wiring, and the simulator runner. *)

open Ibr_harness

let test_mix_rates () =
  let rng = Ibr_runtime.Rng.create 5 in
  let count mix n =
    let ins = ref 0 and rem = ref 0 and get = ref 0 and other = ref 0 in
    ignore other;
    for _ = 1 to n do
      match Workload.pick_op rng mix with
      | Workload.Insert -> incr ins
      | Workload.Remove -> incr rem
      | Workload.Get -> incr get
      | Workload.Scan | Workload.Enqueue | Workload.Dequeue
      | Workload.Migrate -> incr other
    done;
    (!ins, !rem, !get)
  in
  let ins, rem, get = count Workload.write_dominated 10_000 in
  Alcotest.(check bool) "write-dominated ~50/50/0" true
    (abs (ins - 5000) < 300 && abs (rem - 5000) < 300 && get = 0);
  let ins, rem, get = count Workload.read_dominated 10_000 in
  Alcotest.(check bool) "read-dominated ~5/5/90" true
    (abs (ins - 500) < 150 && abs (rem - 500) < 150 && abs (get - 9000) < 300)

let test_mix_names () =
  Alcotest.(check string) "write name" "write-dominated"
    (Workload.mix_name Workload.write_dominated);
  Alcotest.(check string) "read name" "read-dominated"
    (Workload.mix_name Workload.read_dominated)

let test_prefill_fraction () =
  let rng = Ibr_runtime.Rng.create 7 in
  let spec = { Workload.key_range = 10_000; prefill_fraction = 0.75;
               mix = Workload.write_dominated } in
  let n = ref 0 in
  Workload.prefill ~rng ~spec ~insert:(fun ~key:_ ~value:_ -> incr n; true);
  Alcotest.(check bool) "~75% of keys" true (abs (!n - 7500) < 300)

let test_key_in_range () =
  let rng = Ibr_runtime.Rng.create 9 in
  let spec = Workload.spec_for "list" in
  for _ = 1 to 1000 do
    let k = Workload.pick_key rng spec in
    Alcotest.(check bool) "key in range" true (k >= 0 && k < spec.key_range)
  done

let test_throughput_math () =
  Alcotest.(check (float 0.001)) "1000 ops / 1M cycles" 1000.0
    (Stats.throughput ~ops:1000 ~makespan:1_000_000);
  Alcotest.(check (float 0.001)) "zero makespan" 0.0
    (Stats.throughput ~ops:10 ~makespan:0)

let test_sampler () =
  let s = Stats.make_sampler () in
  List.iter (Stats.sample s) [ 1; 2; 3; 10 ];
  Alcotest.(check (float 0.001)) "mean" 4.0 (Stats.mean s);
  Alcotest.(check int) "peak" 10 s.peak;
  let merged = Stats.merge_samplers [ s; s ] in
  Alcotest.(check int) "merged n" 8 merged.n;
  Alcotest.(check (float 0.001)) "merged mean" 4.0 (Stats.mean merged)

let test_csv_row_shape () =
  let row = {
    Stats.tracker = "EBR"; ds = "list"; threads = 4; mix = "write-dominated";
    backend = "sim";
    ops = 100; makespan = 1000; throughput = 1.5; avg_unreclaimed = 2.25;
    peak_unreclaimed = 7; samples = 100;
    metrics = Ibr_obs.Metrics.zero ();
  } in
  let cells = String.split_on_char ',' (Stats.to_csv_row row) in
  let headers = String.split_on_char ',' (Stats.csv_header ()) in
  Alcotest.(check int) "row matches header width" (List.length headers)
    (List.length cells);
  Alcotest.(check string) "first cell" "EBR" (List.hd cells)

let test_chart_render () =
  let fig = {
    Chart.fig_id = "t"; title = "test"; ylabel = "y";
    series =
      [ { Chart.label = "a"; points = [ (1, 1.0); (2, 4.0) ] };
        { Chart.label = "b"; points = [ (1, 2.0) ] } ];
  } in
  let s = Chart.to_string fig in
  Alcotest.(check bool) "contains labels" true
    (Astring_contains.contains s "a" && Astring_contains.contains s "threads")

let test_experiment_lineup () =
  let names lineup = List.map (fun (e : Ibr_core.Registry.entry) -> e.name) lineup in
  let bonsai = names (Experiment.lineup "bonsai") in
  Alcotest.(check bool) "bonsai excludes HP" true (not (List.mem "HP" bonsai));
  Alcotest.(check bool) "bonsai excludes HE" true (not (List.mem "HE" bonsai));
  Alcotest.(check bool) "bonsai includes POIBR" true (List.mem "POIBR" bonsai);
  let list_lineup = names (Experiment.lineup "list") in
  Alcotest.(check bool) "list excludes POIBR" true
    (not (List.mem "POIBR" list_lineup));
  Alcotest.(check bool) "list includes HP" true (List.mem "HP" list_lineup)

let test_runner_sim_basic () =
  let spec = { (Workload.spec_for "hashmap") with key_range = 256 } in
  let cfg =
    Runner_sim.default_config ~threads:4 ~horizon:20_000 ~cores:4 ~spec () in
  match Runner_sim.run_named ~tracker_name:"EBR" ~ds_name:"hashmap" cfg with
  | None -> Alcotest.fail "EBR/hashmap should be compatible"
  | Some r ->
    Alcotest.(check bool) "did ops" true (r.ops > 100);
    Alcotest.(check bool) "throughput positive" true (r.throughput > 0.0);
    Alcotest.(check bool) "no faults" true (Stats.metric r "faults" = 0);
    Alcotest.(check string) "tracker name" "EBR" r.tracker;
    Alcotest.(check int) "threads recorded" 4 r.threads

let test_runner_sim_deterministic () =
  let spec = { (Workload.spec_for "list") with key_range = 32 } in
  let go () =
    let cfg =
      Runner_sim.default_config ~threads:3 ~horizon:15_000 ~cores:2
        ~seed:77 ~spec () in
    Option.get (Runner_sim.run_named ~tracker_name:"2GEIBR" ~ds_name:"list" cfg)
  in
  let a = go () and b = go () in
  Alcotest.(check int) "same ops" a.ops b.ops;
  Alcotest.(check int) "same makespan" a.makespan b.makespan;
  Alcotest.(check (float 0.0001)) "same unreclaimed" a.avg_unreclaimed
    b.avg_unreclaimed

let test_runner_sim_incompatible_pair () =
  let spec = Workload.spec_for "list" in
  let cfg = Runner_sim.default_config ~threads:2 ~horizon:5_000 ~spec () in
  Alcotest.(check bool) "POIBR/list rejected" true
    (Runner_sim.run_named ~tracker_name:"POIBR" ~ds_name:"list" cfg = None)

let test_fig7_table_text () =
  let s = Experiment.fig7_table () in
  List.iter
    (fun name ->
       Alcotest.(check bool) (name ^ " in fig7") true
         (Astring_contains.contains s name))
    [ "EBR"; "HP"; "HE"; "POIBR"; "TagIBR"; "2GEIBR" ]

let suite =
  [
    Alcotest.test_case "mix rates" `Quick test_mix_rates;
    Alcotest.test_case "mix names" `Quick test_mix_names;
    Alcotest.test_case "prefill fraction" `Quick test_prefill_fraction;
    Alcotest.test_case "key range" `Quick test_key_in_range;
    Alcotest.test_case "throughput math" `Quick test_throughput_math;
    Alcotest.test_case "sampler" `Quick test_sampler;
    Alcotest.test_case "csv row shape" `Quick test_csv_row_shape;
    Alcotest.test_case "chart render" `Quick test_chart_render;
    Alcotest.test_case "experiment lineup" `Quick test_experiment_lineup;
    Alcotest.test_case "runner_sim basic" `Quick test_runner_sim_basic;
    Alcotest.test_case "runner_sim deterministic" `Quick
      test_runner_sim_deterministic;
    Alcotest.test_case "incompatible pair rejected" `Quick
      test_runner_sim_incompatible_pair;
    Alcotest.test_case "fig7 table" `Quick test_fig7_table_text;
  ]
