(* Differential and unit tests for the retirement backends.

   The three backends must agree on *what* is freed, differing only in
   cost and timing: List and Buckets free identical block sets after
   every single sweep (step equality, arbitrary conflict scripts);
   Gated may defer frees while its gate is closed but must converge to
   the same set — checked here with monotone threshold scripts, where
   the ever-freed set is determined by the final threshold alone, plus
   a closing [force] on all three. *)

open Ibr_core

let mk_block id ~birth ~retire =
  let b = Block.make ~id 0 in
  Block.set_birth_epoch b birth;
  Block.transition_retire b;
  Block.set_retire_epoch b retire;
  b

(* One backend instance driven by a shared script: the conflict source
   reads mutable refs the script updates, frees record block ids. *)
type harness = {
  rc : int Reclaimer.t;
  freed : (int, unit) Hashtbl.t;
}

let freed_set h =
  Hashtbl.fold (fun id () acc -> id :: acc) h.freed []
  |> List.sort Int.compare

(* ---- threshold scripts: all three backends converge ---------------- *)

type th_event = Retire | Advance | Raise of int | Sweep

let th_event_gen =
  QCheck.Gen.(
    frequency
      [ (4, return Retire); (2, return Advance);
        (2, map (fun d -> Raise d) (int_range 1 3)); (3, return Sweep) ])

let th_script_gen = QCheck.Gen.(list_size (int_range 1 60) th_event_gen)

let print_th_script evs =
  String.concat ";"
    (List.map
       (function
         | Retire -> "ret"
         | Advance -> "adv"
         | Raise d -> Printf.sprintf "thr+%d" d
         | Sweep -> "swp")
       evs)

let run_threshold_script evs =
  let epoch = ref 1 and threshold = ref 0 and next_id = ref 0 in
  let make backend =
    let freed = Hashtbl.create 64 in
    let rc =
      Reclaimer.create ~backend ~empty_freq:0
        ~current_epoch:(fun () -> !epoch)
        ~source:(fun () ->
          Reclaimer.Shape (Tracker_common.Conflict.Threshold !threshold))
        ~free:(fun b -> Hashtbl.replace freed (Block.id b) ())
        ()
    in
    { rc; freed }
  in
  let list = make Reclaimer.List
  and buckets = make Reclaimer.Buckets
  and gated = make Reclaimer.Gated in
  let all = [ list; buckets; gated ] in
  let step_equal = ref true in
  List.iter
    (fun ev ->
       (match ev with
        | Retire ->
          let id = !next_id in
          incr next_id;
          List.iter
            (fun h ->
               Reclaimer.add h.rc (mk_block id ~birth:!epoch ~retire:!epoch))
            all
        | Advance -> incr epoch
        | Raise d -> threshold := !threshold + d
        | Sweep -> List.iter (fun h -> Reclaimer.sweep h.rc) all);
       (* List and Buckets are step-equal; Gated only lags. *)
       if freed_set list <> freed_set buckets then step_equal := false;
       if
         not
           (List.for_all
              (fun id -> Hashtbl.mem list.freed id)
              (freed_set gated))
       then step_equal := false)
    evs;
  (* Converge: threshold past every retire epoch, then force. *)
  threshold := !epoch + 1;
  List.iter (fun h -> Reclaimer.force h.rc) all;
  !step_equal
  && freed_set list = freed_set buckets
  && freed_set list = freed_set gated
  && Reclaimer.total_reclaimed list.rc = Reclaimer.total_reclaimed buckets.rc
  && Reclaimer.total_reclaimed list.rc = Reclaimer.total_reclaimed gated.rc
  && Reclaimer.count list.rc = 0
  && Reclaimer.count buckets.rc = 0
  && Reclaimer.count gated.rc = 0

let qcheck_threshold_backends =
  QCheck.Test.make
    ~name:"backends free identical sets (threshold scripts, final force)"
    ~count:500
    (QCheck.make ~print:print_th_script th_script_gen)
    run_threshold_script

(* ---- interval scripts: List vs Buckets are step-equal -------------- *)

type iv_event =
  | IRetire of int * int        (* birth, length *)
  | ISlots of (int * int) list  (* reserved intervals *)
  | ISweep

let iv_event_gen =
  QCheck.Gen.(
    frequency
      [ (4,
         map2 (fun b l -> IRetire (b, l)) (int_bound 50) (int_bound 10));
        (2,
         map
           (fun l -> ISlots l)
           (list_size (int_bound 6)
              (map2 (fun lo len -> (lo, lo + len)) (int_bound 50)
                 (int_bound 12))));
        (3, return ISweep) ])

let iv_script_gen = QCheck.Gen.(list_size (int_range 1 60) iv_event_gen)

let print_iv_script evs =
  String.concat ";"
    (List.map
       (function
         | IRetire (b, l) -> Printf.sprintf "ret(%d,%d)" b (b + l)
         | ISlots s ->
           Printf.sprintf "slots[%s]"
             (String.concat ","
                (List.map (fun (lo, hi) -> Printf.sprintf "%d-%d" lo hi) s))
         | ISweep -> "swp")
       evs)

let run_interval_script evs =
  let slots = ref [] and next_id = ref 0 in
  let snapshot () =
    let lower = Array.of_list (List.map fst !slots)
    and upper = Array.of_list (List.map snd !slots) in
    Tracker_common.Sweep_snapshot.of_intervals ~lower ~upper
  in
  let make backend =
    let freed = Hashtbl.create 64 in
    let rc =
      Reclaimer.create ~backend ~empty_freq:0
        ~current_epoch:(fun () -> 0)
        ~source:(fun () ->
          Reclaimer.Shape (Tracker_common.Conflict.Intervals (snapshot ())))
        ~free:(fun b -> Hashtbl.replace freed (Block.id b) ())
        ()
    in
    { rc; freed }
  in
  let list = make Reclaimer.List and buckets = make Reclaimer.Buckets in
  let ok = ref true in
  List.iter
    (fun ev ->
       (match ev with
        | IRetire (birth, len) ->
          let id = !next_id in
          incr next_id;
          (* Out-of-order retire epochs on purpose: they exercise the
             bucket splice path a monotone epoch never reaches. *)
          List.iter
            (fun h ->
               Reclaimer.add h.rc (mk_block id ~birth ~retire:(birth + len)))
            [ list; buckets ]
        | ISlots s -> slots := s
        | ISweep ->
          List.iter (fun h -> Reclaimer.sweep h.rc) [ list; buckets ]);
       if freed_set list <> freed_set buckets then ok := false;
       if Reclaimer.count list.rc <> Reclaimer.count buckets.rc then
         ok := false)
    evs;
  slots := [];
  List.iter (fun h -> Reclaimer.force h.rc) [ list; buckets ];
  !ok
  && freed_set list = freed_set buckets
  && Reclaimer.count list.rc = 0
  && Reclaimer.count buckets.rc = 0

let qcheck_interval_backends =
  QCheck.Test.make
    ~name:"List = Buckets step-by-step (interval scripts)"
    ~count:500
    (QCheck.make ~print:print_iv_script iv_script_gen)
    run_interval_script

(* ---- gating semantics ---------------------------------------------- *)

let gated_harness ?(prepare = fun () -> ()) ~epoch ~threshold () =
  let freed = Hashtbl.create 16 in
  let rc =
    Reclaimer.create ~backend:Reclaimer.Gated ~empty_freq:0 ~prepare
      ~current_epoch:(fun () -> !epoch)
      ~source:(fun () ->
        Reclaimer.Shape (Tracker_common.Conflict.Threshold !threshold))
      ~free:(fun b -> Hashtbl.replace freed (Block.id b) ())
      ()
  in
  { rc; freed }

let test_gate_arms_and_skips () =
  let epoch = ref 5 and threshold = ref 0 in
  let h = gated_harness ~epoch ~threshold () in
  Reclaimer.add h.rc (mk_block 0 ~birth:5 ~retire:5);
  let before = Tracker_common.Sweep_stats.snap () in
  Reclaimer.sweep h.rc;
  Alcotest.(check bool) "zero-free sweep arms the gate" true
    (Reclaimer.gate h.rc <> None);
  Reclaimer.sweep h.rc;
  Reclaimer.sweep h.rc;
  let d =
    Tracker_common.Sweep_stats.diff before (Tracker_common.Sweep_stats.snap ())
  in
  Alcotest.(check int) "only the first sweep ran" 1 d.sweeps;
  Alcotest.(check int) "two skips while gated" 2 d.skipped;
  (* Epoch movement reopens the gate. *)
  incr epoch;
  threshold := 10;
  Reclaimer.sweep h.rc;
  Alcotest.(check (list int)) "reopened sweep frees" [ 0 ] (freed_set h);
  Alcotest.(check bool) "gate open after freeing sweep" true
    (Reclaimer.gate h.rc = None)

let test_force_bypasses_gate () =
  let epoch = ref 3 and threshold = ref 0 in
  let h = gated_harness ~epoch ~threshold () in
  Reclaimer.add h.rc (mk_block 1 ~birth:3 ~retire:3);
  Reclaimer.sweep h.rc;
  Alcotest.(check bool) "gate armed" true (Reclaimer.gate h.rc <> None);
  threshold := 99;
  Reclaimer.force h.rc;
  Alcotest.(check (list int)) "force frees through the gate" [ 1 ]
    (freed_set h)

let test_prepare_runs_while_gated () =
  (* QSBR/Fraser shape: the epoch only moves through [prepare].  If the
     gate suppressed it, the gate would wait on an epoch that can no
     longer advance. *)
  let epoch = ref 1 and threshold = ref 0 in
  let preps = ref 0 in
  let h =
    gated_harness
      ~prepare:(fun () ->
        incr preps;
        if !preps >= 3 then begin
          epoch := 2;
          threshold := 10
        end)
      ~epoch ~threshold ()
  in
  Reclaimer.add h.rc (mk_block 2 ~birth:1 ~retire:1);
  Reclaimer.sweep h.rc;   (* arms the gate *)
  Reclaimer.sweep h.rc;   (* gated, but prepare still runs *)
  Reclaimer.sweep h.rc;   (* prepare moves the epoch: gate opens *)
  Alcotest.(check int) "prepare ran on every attempt" 3 !preps;
  Alcotest.(check (list int)) "freed once the epoch moved" [ 2 ]
    (freed_set h)

let test_epochless_never_gates () =
  let epoch = ref 0 and threshold = ref 0 in
  let h = gated_harness ~epoch ~threshold () in
  Reclaimer.add h.rc (mk_block 3 ~birth:1 ~retire:1);
  Reclaimer.sweep h.rc;
  Alcotest.(check bool) "current_epoch = 0 disables gating" true
    (Reclaimer.gate h.rc = None)

(* ---- bucket mechanics ---------------------------------------------- *)

let test_threshold_examines_no_blocks () =
  let epoch = ref 1 and threshold = ref 0 in
  let freed = Hashtbl.create 16 in
  let rc =
    Reclaimer.create ~backend:Reclaimer.Buckets ~empty_freq:0
      ~current_epoch:(fun () -> !epoch)
      ~source:(fun () ->
        Reclaimer.Shape (Tracker_common.Conflict.Threshold !threshold))
      ~free:(fun b -> Hashtbl.replace freed (Block.id b) ())
      ()
  in
  for i = 0 to 29 do
    Reclaimer.add rc (mk_block i ~birth:(i / 3) ~retire:(i / 3))
  done;
  Alcotest.(check int) "one bucket per distinct epoch" 10
    (Reclaimer.bucket_count rc);
  threshold := 5;
  let before = Tracker_common.Sweep_stats.snap () in
  Reclaimer.sweep rc;
  let d =
    Tracker_common.Sweep_stats.diff before (Tracker_common.Sweep_stats.snap ())
  in
  (* Epochs 0..4 free wholesale (15 blocks), 5..9 kept wholesale: the
     threshold sweep never conflict-tests an individual block. *)
  Alcotest.(check int) "threshold sweep examines zero blocks" 0 d.examined;
  Alcotest.(check int) "freed the old buckets wholesale" 15 d.freed;
  Alcotest.(check int) "bucket occupancy recorded" 10 d.buckets;
  Alcotest.(check int) "kept buckets" 5 (Reclaimer.bucket_count rc);
  Alcotest.(check int) "kept blocks" 15 (Reclaimer.count rc)

let test_empty_freq_cadence () =
  let epoch = ref 1 and threshold = ref 100 in
  let freed = Hashtbl.create 16 in
  let sweeps_before = (Tracker_common.Sweep_stats.snap ()).sweeps in
  let rc =
    Reclaimer.create ~backend:Reclaimer.Buckets ~empty_freq:3
      ~current_epoch:(fun () -> !epoch)
      ~source:(fun () ->
        Reclaimer.Shape (Tracker_common.Conflict.Threshold !threshold))
      ~free:(fun b -> Hashtbl.replace freed (Block.id b) ())
      ()
  in
  for i = 0 to 8 do
    Reclaimer.add rc (mk_block i ~birth:1 ~retire:1)
  done;
  let sweeps_after = (Tracker_common.Sweep_stats.snap ()).sweeps in
  Alcotest.(check int) "a sweep every empty_freq retires" 3
    (sweeps_after - sweeps_before);
  Alcotest.(check int) "everything below threshold freed" 9
    (Hashtbl.length freed)

let suite =
  [
    QCheck_alcotest.to_alcotest qcheck_threshold_backends;
    QCheck_alcotest.to_alcotest qcheck_interval_backends;
    Alcotest.test_case "gate arms and skips" `Quick test_gate_arms_and_skips;
    Alcotest.test_case "force bypasses gate" `Quick test_force_bypasses_gate;
    Alcotest.test_case "prepare runs while gated" `Quick
      test_prepare_runs_while_gated;
    Alcotest.test_case "epoch-less schemes never gate" `Quick
      test_epochless_never_gates;
    Alcotest.test_case "threshold sweep examines no blocks" `Quick
      test_threshold_examines_no_blocks;
    Alcotest.test_case "empty_freq cadence" `Quick test_empty_freq_cadence;
  ]
