(* Linearizability checking of concurrent histories.

   The simulator provides a machine-wide virtual clock
   ([Hooks.global_now]), so each operation gets a real-time interval
   [invoke, response].  Set operations on distinct keys commute, so a
   history is linearizable iff each per-key subhistory is linearizable
   against boolean-register-with-membership semantics:

     insert -> true iff absent (then present)
     remove -> true iff present (then absent)
     contains -> reports the current state

   Each per-key subhistory is checked with Wing–Gong DFS: repeatedly
   linearize some minimal-by-real-time pending operation whose result
   is consistent with the abstract state, memoizing (done-set, state)
   pairs.  Keys receive few enough operations for the bitmask to fit
   an int.

   This subsumes the balance test in test_sets: it additionally
   catches ordering anomalies (e.g. a contains that misses a key
   which was continuously present). *)

open Ibr_core
open Ibr_runtime
open Ibr_ds

type op_kind = Ins | Rem | Has

type event = {
  kind : op_kind;
  result : bool;
  t_inv : int;
  t_resp : int;
}

(* Wing–Gong over one key's events (must be <= 62 of them). *)
let check_key events =
  let n = Array.length events in
  assert (n <= 62);
  let full = (1 lsl n) - 1 in
  let memo = Hashtbl.create 256 in
  (* An event is eligible to linearize next if no *pending* event
     finished strictly before it began. *)
  let rec go mask state =
    if mask = full then true
    else
      let key = (mask * 2) + Bool.to_int state in
      match Hashtbl.find_opt memo key with
      | Some r -> r
      | None ->
        let min_resp = ref max_int in
        for i = 0 to n - 1 do
          if mask land (1 lsl i) = 0 && events.(i).t_resp < !min_resp then
            min_resp := events.(i).t_resp
        done;
        let ok = ref false in
        for i = 0 to n - 1 do
          if (not !ok)
             && mask land (1 lsl i) = 0
             && events.(i).t_inv <= !min_resp
          then begin
            let e = events.(i) in
            let fits, state' =
              match e.kind, e.result with
              | Ins, true -> (not state, true)
              | Ins, false -> (state, state)
              | Rem, true -> (state, false)
              | Rem, false -> (not state, state)
              | Has, r -> (r = state, state)
            in
            if fits && go (mask lor (1 lsl i)) state' then ok := true
          end
        done;
        Hashtbl.add memo key !ok;
        !ok
  in
  go 0 false

(* Run a concurrent workload recording a history; check every key. *)
let run_and_check (module S : Ds_intf.RIDEABLE) ~prefill ~seed ~threads
    ~key_range ~ops_per_thread =
  let m = Option.get S.map in
  let cfg =
    { (Tracker_intf.default_config ~threads ()) with
      reuse = false; epoch_freq = 2; empty_freq = 8 } in
  let t = S.create ~threads cfg in
  (* Optional sequential prefill, recorded as instantaneous history
     prefix so the checker knows the initial state. *)
  let history : (int * event) list ref = ref [] in
  if prefill then begin
    let h0 = S.register t ~tid:0 in
    for key = 0 to key_range - 1 do
      if key mod 2 = 0 then begin
        ignore (m.insert h0 ~key ~value:key);
        history :=
          (key, { kind = Ins; result = true; t_inv = -2; t_resp = -1 })
          :: !history
      end
    done
  end;
  let sched =
    Sched.create
      { (Sched.test_config ~cores:3 ~seed ()) with
        stall_prob = 0.02; stall_len = 1_500; quantum = 120 } in
  let logs = Array.make threads [] in
  for i = 0 to threads - 1 do
    ignore
      (Sched.spawn sched (fun tid ->
         let h = S.register t ~tid in
         let rng = Rng.stream ~seed:(seed * 1299721 + i) ~index:i in
         for _ = 1 to ops_per_thread do
           let key = Rng.int rng key_range in
           let t_inv = Hooks.global_now () in
           let kind, result =
             match Rng.int rng 3 with
             | 0 -> (Ins, m.insert h ~key ~value:key)
             | 1 -> (Rem, m.remove h ~key)
             | _ -> (Has, m.contains h ~key)
           in
           let t_resp = Hooks.global_now () in
           logs.(tid) <- (key, { kind; result; t_inv; t_resp }) :: logs.(tid)
         done))
  done;
  Sched.run sched;
  Array.iter (fun l -> history := l @ !history) logs;
  (* Per-key check. *)
  for key = 0 to key_range - 1 do
    let events =
      List.filter_map
        (fun (k, e) -> if k = key then Some e else None)
        !history
      |> Array.of_list
    in
    if Array.length events > 62 then
      Alcotest.failf "key %d has %d events; shrink the workload" key
        (Array.length events);
    if not (check_key events) then
      Alcotest.failf "history of key %d is not linearizable (%d events)" key
        (Array.length events)
  done

let test_pair (maker : Ds_registry.maker) (e : Registry.entry) () =
  let s = maker.instantiate e.tracker in
  (* Two configurations: cold structure and prefilled structure. *)
  run_and_check s ~prefill:false ~seed:11 ~threads:6 ~key_range:48
    ~ops_per_thread:160;
  run_and_check s ~prefill:true ~seed:23 ~threads:6 ~key_range:48
    ~ops_per_thread:160

(* The checker itself must reject broken histories (meta-test). *)
let test_checker_rejects () =
  let ev kind result t_inv t_resp = { kind; result; t_inv; t_resp } in
  (* contains=true on a key never inserted *)
  Alcotest.(check bool) "phantom contains rejected" false
    (check_key [| ev Has true 0 1 |]);
  (* double successful insert with no remove between *)
  Alcotest.(check bool) "double insert rejected" false
    (check_key [| ev Ins true 0 1; ev Ins true 2 3 |]);
  (* remove=true after remove=true *)
  Alcotest.(check bool) "double remove rejected" false
    (check_key [| ev Ins true 0 1; ev Rem true 2 3; ev Rem true 4 5 |]);
  (* contains=false while provably present *)
  Alcotest.(check bool) "stale contains rejected" false
    (check_key [| ev Ins true 0 1; ev Has false 2 3 |]);
  (* ...but overlapping operations may order either way *)
  Alcotest.(check bool) "overlap accepted" true
    (check_key [| ev Ins true 0 5; ev Has false 1 2 |]);
  Alcotest.(check bool) "sequential happy path" true
    (check_key
       [| ev Ins true 0 1; ev Has true 2 3; ev Rem true 4 5;
          ev Has false 6 7; ev Ins true 8 9 |])

let pairs =
  (* Representative cross-section: every rideable, several schemes. *)
  List.concat_map
    (fun (maker : Ds_registry.maker) ->
       List.filter_map
         (fun (e : Registry.entry) ->
            if Ds_registry.compatible maker e.tracker then Some (maker, e)
            else None)
         [ Registry.ebr; Registry.hp; Registry.he; Registry.po_ibr;
           Registry.tag_ibr; Registry.tag_ibr_wcas; Registry.two_ge_ibr;
           Registry.qsbr ])
    (List.filter (fun (m : Ds_registry.maker) -> m.caps.Ds_intf.map)
       Ds_registry.all)

let suite =
  Alcotest.test_case "checker rejects broken histories" `Quick
    test_checker_rejects
  :: List.map
       (fun ((maker : Ds_registry.maker), (e : Registry.entry)) ->
          Alcotest.test_case
            (Printf.sprintf "linearizable: %s/%s" maker.ds_name e.name)
            `Slow (test_pair maker e))
       pairs
