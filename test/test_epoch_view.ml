(* Epoch counter and view cells. *)

open Ibr_core

let test_epoch_starts_at_one () =
  Alcotest.(check int) "initial" 1 (Epoch.peek (Epoch.create ()))

let test_epoch_advance () =
  let e = Epoch.create () in
  Epoch.advance e;
  Epoch.advance e;
  Alcotest.(check int) "advanced twice" 3 (Epoch.peek e)

let test_epoch_tick_frequency () =
  let e = Epoch.create () in
  let counter = ref 0 in
  for _ = 1 to 10 do Epoch.tick e ~counter ~freq:3 done;
  (* Ticks at 3, 6, 9. *)
  Alcotest.(check int) "3 advances in 10 ticks" 4 (Epoch.peek e)

(* A non-positive freq used to be a silent no-advance guard — an epoch
   that never moves starves every epoch-based scheme's bound, so it is
   a configuration error now. *)
let test_epoch_tick_zero_freq () =
  let e = Epoch.create () in
  let counter = ref 0 in
  Alcotest.check_raises "freq 0 rejected"
    (Invalid_argument "Epoch.tick: epoch_freq must be positive")
    (fun () -> Epoch.tick e ~counter ~freq:0);
  Alcotest.check_raises "negative freq rejected"
    (Invalid_argument "Epoch.tick: epoch_freq must be positive")
    (fun () -> Epoch.tick e ~counter ~freq:(-1))

let test_epoch_tick_counter_resets () =
  let e = Epoch.create () in
  let counter = ref 0 in
  for _ = 1 to 1_000 do Epoch.tick e ~counter ~freq:4 done;
  (* The counter is reset on every advance, so it stays below [freq]
     forever instead of growing without bound. *)
  Alcotest.(check bool) "counter bounded" true (!counter < 4);
  Alcotest.(check int) "250 advances" 251 (Epoch.peek e)

let test_epoch_read_equals_peek () =
  let e = Epoch.create () in
  Epoch.advance e;
  Alcotest.(check int) "read = peek" (Epoch.peek e) (Epoch.read e)

let test_view_make_defaults () =
  let v : int View.t = View.make None in
  Alcotest.(check bool) "null" true (View.is_null v);
  Alcotest.(check int) "tag 0" 0 (View.tag v)

let test_view_deref () =
  let b = Block.make ~id:0 99 in
  let v = View.make ~tag:2 (Some b) in
  Alcotest.(check int) "deref" 99 (View.deref_exn v);
  Alcotest.(check int) "tag" 2 (View.tag v);
  Alcotest.check_raises "null deref"
    (Invalid_argument "View.deref_exn: null pointer") (fun () ->
      ignore (View.deref_exn (View.make None)))

let test_view_equal_contents () =
  let b = Block.make ~id:0 1 in
  let v1 = View.make ~tag:1 (Some b) and v2 = View.make ~tag:1 (Some b) in
  Alcotest.(check bool) "same contents, different boxes" true
    (View.equal_contents v1 v2);
  Alcotest.(check bool) "physical inequality" true (v1 != v2);
  Alcotest.(check bool) "tag matters" false
    (View.equal_contents v1 (View.make ~tag:0 (Some b)));
  Alcotest.(check bool) "null vs target" false
    (View.equal_contents v1 (View.make None))

let test_plain_ptr_cas_by_identity () =
  let b1 = Block.make ~id:1 1 and b2 = Block.make ~id:2 2 in
  let p = Plain_ptr.make (Some b1) in
  let v = Plain_ptr.read p in
  (* An equal-content but distinct view must NOT satisfy the CAS. *)
  Alcotest.(check bool) "content-equal expected fails" false
    (Plain_ptr.cas p ~expected:(View.make (Some b1)) (Some b2));
  Alcotest.(check bool) "identical expected succeeds" true
    (Plain_ptr.cas p ~expected:v (Some b2))

let qcheck_interval_conflict =
  (* The interval-overlap rule used by empty() must agree with a
     brute-force lifetime intersection check. *)
  QCheck.Test.make ~name:"interval conflict = lifetime intersection"
    ~count:1000
    QCheck.(quad (int_bound 50) (int_bound 50) (int_bound 50) (int_bound 50))
    (fun (birth, len, lower, len2) ->
       let retire = birth + len in
       let upper = lower + len2 in
       let rule = birth <= upper && retire >= lower in
       (* brute force over the discrete epochs *)
       let brute = ref false in
       for e = lower to upper do
         if birth <= e && e <= retire then brute := true
       done;
       rule = !brute)

let suite =
  [
    Alcotest.test_case "epoch starts at 1" `Quick test_epoch_starts_at_one;
    Alcotest.test_case "epoch advance" `Quick test_epoch_advance;
    Alcotest.test_case "epoch tick freq" `Quick test_epoch_tick_frequency;
    Alcotest.test_case "epoch tick freq 0" `Quick test_epoch_tick_zero_freq;
    Alcotest.test_case "epoch tick counter resets" `Quick
      test_epoch_tick_counter_resets;
    Alcotest.test_case "epoch read" `Quick test_epoch_read_equals_peek;
    Alcotest.test_case "view defaults" `Quick test_view_make_defaults;
    Alcotest.test_case "view deref" `Quick test_view_deref;
    Alcotest.test_case "view equal_contents" `Quick test_view_equal_contents;
    Alcotest.test_case "plain ptr CAS identity" `Quick
      test_plain_ptr_cas_by_identity;
    QCheck_alcotest.to_alcotest qcheck_interval_conflict;
  ]
