(* Neutralization with recovery (DESIGN.md §12), end to end:

   - scheduler delivery semantics: the restart signal is only
     delivered while the victim's restart window is open, and a
     [Ds_common.committed] bracket defers it past the masked section;
   - the watchdog's healing state machine: neutralize instead of
     eject, count a recovery when the victim moves again, re-deliver
     after a fresh grace window, and re-arm ejected slots whose
     counter moves (no permanent blind spots);
   - restart idempotence: model-based linearizability of the hashmap
     under a barrage of injected mid-op neutralizations — a restarted
     attempt must never double-apply an operation;
   - handoff hygiene: batched retire scratch is flushed by [recover],
     so pushed = drained balances across mid-op restarts;
   - reproducibility: the stall+neutralize fault profile is
     bit-deterministic in the seed and never ejects. *)

open Ibr_core
open Ibr_runtime
open Ibr_harness

(* ---- scheduler delivery semantics ---- *)

let test_delivery_requires_open_window () =
  let sched = Sched.create (Sched.test_config ~cores:2 ~seed:7 ()) in
  let closed_survived = ref false and delivered = ref false in
  ignore
    (Sched.spawn sched (fun _ ->
       (* Window closed: the peer's signal stays pending across these
          resumptions. *)
       Hooks.step 40;
       Hooks.step 40;
       closed_survived := true;
       let prev = Hooks.restart_window true in
       (match Hooks.step 40 with
        | () -> ()
        | exception Fault.Neutralized -> delivered := true);
       ignore (Hooks.restart_window prev)));
  ignore (Sched.spawn sched (fun _ -> Sched.neutralize_peer 0));
  Sched.run sched;
  Alcotest.(check bool) "no unwind while the window is closed" true
    !closed_survived;
  Alcotest.(check bool) "pending signal lands at first open resumption" true
    !delivered

let test_committed_masks_delivery () =
  let sched = Sched.create (Sched.test_config ~cores:2 ~seed:7 ()) in
  let mask_survived = ref false and delivered_after = ref false in
  ignore
    (Sched.spawn sched (fun _ ->
       let prev = Hooks.restart_window true in
       Ibr_ds.Ds_common.committed (fun () ->
         Hooks.step 60;
         Hooks.step 60;
         mask_survived := true);
       (match Hooks.step 40 with
        | () -> ()
        | exception Fault.Neutralized -> delivered_after := true);
       ignore (Hooks.restart_window prev)));
  ignore
    (Sched.spawn sched (fun _ ->
       Hooks.step 20;
       Sched.neutralize_peer 0));
  Sched.run sched;
  Alcotest.(check bool) "masked section runs to completion" true
    !mask_survived;
  Alcotest.(check bool) "signal delivered once the mask lifts" true
    !delivered_after

(* ---- watchdog healing state machine ---- *)

let neutralize_dog ~sched ~signals ~progress ~active =
  Watchdog.spawn ~sched ~period:10 ~grace:2 ~threads:1
    ~remedy:(Watchdog.Neutralize (fun tid -> signals := tid :: !signals))
    ~active:(fun _ -> !active)
    ~progress:(fun _ -> !progress)
    ~footprint:(fun () -> 0)
    ~eject:(fun _ -> Alcotest.fail "a neutralize watchdog must not eject")
    ()

let test_watchdog_heals_and_counts_recovery () =
  let sched = Sched.create (Sched.test_config ~cores:2 ()) in
  let progress = ref 0 and active = ref true and signals = ref [] in
  let w = neutralize_dog ~sched ~signals ~progress ~active in
  ignore
    (Sched.spawn sched (fun _ ->
       progress := 1;                                (* arm *)
       while !signals = [] do Hooks.step 5 done;     (* frozen until hit *)
       (* The signal "worked": keep progressing for several watchdog
          rounds (dispatch interleaves at quantum granularity, so a
          single short observation window could be reordered past the
          scan that should see it). *)
       for i = 2 to 21 do
         progress := i;
         Hooks.step 5
       done;
       active := false));
  Sched.run ~horizon:300 sched;
  (* The exact delivery count depends on dispatch granularity (a
     victim frozen across several scans may be re-signalled); what is
     contractual: signals flowed, each was counted, and the single
     recovery was observed. *)
  Alcotest.(check bool) "at least one signal delivered" true
    (List.length !signals >= 1);
  Alcotest.(check int) "every delivery counted"
    (List.length !signals) (Watchdog.neutralizations w);
  Alcotest.(check bool) "recovery counted" true (Watchdog.recovered w >= 1);
  Alcotest.(check bool) "recoveries never exceed deliveries" true
    (Watchdog.recovered w <= Watchdog.neutralizations w);
  Alcotest.(check bool) "recovery no longer pending" false
    (Watchdog.neutralized w 0);
  Alcotest.(check int) "healed, not ejected" 0 (Watchdog.ejections w)

let test_watchdog_redelivers_after_grace () =
  let sched = Sched.create (Sched.test_config ~cores:2 ()) in
  let progress = ref 0 and active = ref true and signals = ref [] in
  let w = neutralize_dog ~sched ~signals ~progress ~active in
  ignore
    (Sched.spawn sched (fun _ ->
       progress := 1;
       Hooks.step 300 (* frozen for the whole run *)));
  Sched.run ~horizon:120 sched;
  Alcotest.(check bool)
    (Printf.sprintf "frozen victim is re-signalled (%d deliveries)"
       (Watchdog.neutralizations w))
    true
    (Watchdog.neutralizations w >= 2);
  Alcotest.(check int) "every delivery went through the remedy"
    (Watchdog.neutralizations w) (List.length !signals);
  Alcotest.(check bool) "recovery still pending" true
    (Watchdog.neutralized w 0);
  Alcotest.(check int) "no recovery without progress" 0
    (Watchdog.recovered w)

(* Satellite: an ejected slot whose counter moves again is re-armed
   and re-ejectable — no permanent blind spot (the pre-§12 watchdog
   wrote a slot off forever on first ejection). *)
let test_watchdog_rearms_ejected_slot () =
  let sched = Sched.create (Sched.test_config ~cores:2 ()) in
  let progress = ref 0 in
  let ejected_tids = ref [] in
  let w =
    Watchdog.spawn ~sched ~period:10 ~grace:2 ~threads:1
      ~progress:(fun _ -> !progress)
      ~footprint:(fun () -> 0)
      ~eject:(fun tid -> ejected_tids := tid :: !ejected_tids)
      ()
  in
  ignore
    (Sched.spawn sched (fun _ ->
       progress := 1;
       (* Frozen until the first ejection lands... *)
       while !ejected_tids = [] do Hooks.step 5 done;
       progress := 2;    (* ...then the "dead" thread was merely slow *)
       Hooks.step 200    (* frozen again → must be re-ejectable *)));
  Sched.run ~horizon:300 sched;
  Alcotest.(check int) "slow thread ejected, re-armed, ejected again" 2
    (Watchdog.ejections w);
  Alcotest.(check int) "both ejections reached the tracker hook" 2
    (List.length !ejected_tids)

(* ---- restart idempotence: linearizability under injected signals ---- *)

(* The linearizability harness from [Test_linearizability], plus a
   chaos fiber firing restart signals at random workers mid-operation.
   A [with_op] restart that re-applied a landed insert/remove would
   surface as a non-linearizable per-key history (double successful
   insert, phantom remove, ...). *)
let run_and_check_neutralized (module S : Ibr_ds.Ds_intf.RIDEABLE) ~seed
    ~threads ~key_range ~ops_per_thread =
  let m = Option.get S.map in
  let cfg =
    { (Tracker_intf.default_config ~threads ()) with
      reuse = false; epoch_freq = 2; empty_freq = 8 } in
  let t = S.create ~threads cfg in
  let sched =
    Sched.create
      { (Sched.test_config ~cores:3 ~seed ()) with quantum = 120 } in
  let logs = Array.make threads [] in
  let finished = ref 0 in
  for i = 0 to threads - 1 do
    ignore
      (Sched.spawn sched (fun tid ->
         let h = S.register t ~tid in
         let rng = Rng.stream ~seed:(seed * 1299721 + i) ~index:i in
         for _ = 1 to ops_per_thread do
           let key = Rng.int rng key_range in
           let t_inv = Hooks.global_now () in
           let kind, result =
             match Rng.int rng 3 with
             | 0 -> (Test_linearizability.Ins, m.insert h ~key ~value:key)
             | 1 -> (Test_linearizability.Rem, m.remove h ~key)
             | _ -> (Test_linearizability.Has, m.contains h ~key)
           in
           let t_resp = Hooks.global_now () in
           logs.(tid) <-
             (key, { Test_linearizability.kind; result; t_inv; t_resp })
             :: logs.(tid)
         done;
         incr finished))
  done;
  ignore
    (Sched.spawn sched (fun _ ->
       let rng = Rng.stream ~seed:(seed + 77) ~index:threads in
       let rec loop n =
         if n > 0 && !finished < threads then begin
           Hooks.step (100 + Rng.int rng 300);
           Sched.neutralize_peer (Rng.int rng threads);
           loop (n - 1)
         end
       in
       loop 96));
  Sched.run sched;
  let history = ref [] in
  Array.iter (fun l -> history := l @ !history) logs;
  let ok = ref true in
  for key = 0 to key_range - 1 do
    let events =
      List.filter_map
        (fun (k, e) -> if k = key then Some e else None)
        !history
      |> Array.of_list
    in
    if Array.length events > 62 then
      QCheck.Test.fail_reportf "key %d has %d events; shrink the workload"
        key (Array.length events);
    if not (Test_linearizability.check_key events) then begin
      ok := false;
      QCheck.Test.fail_reportf
        "history of key %d not linearizable under neutralization (%d events)"
        key (Array.length events)
    end
  done;
  !ok

let qcheck_restart_idempotent =
  QCheck.Test.make
    ~name:"hashmap linearizable under injected neutralizations" ~count:4
    (QCheck.make QCheck.Gen.(int_range 0 10_000))
    (fun seed ->
       let maker = Ibr_ds.Ds_registry.find_exn "hashmap" in
       List.for_all
         (fun (e : Registry.entry) ->
            run_and_check_neutralized
              (maker.instantiate e.tracker)
              ~seed ~threads:5 ~key_range:48 ~ops_per_thread:120)
         [ Registry.debra_plus; Registry.debra; Registry.ebr ])

(* ---- handoff hygiene across mid-op restarts (satellite) ---- *)

(* With [handoff_batch > 1] a worker accumulates retirements in a
   private scratch buffer; [recover] must flush it (like eject does)
   or blocks sit stranded in an unwound attempt's buffer forever.
   After the run and a shutdown flush, every block ever pushed to the
   queue must have been drained. *)
let test_handoff_balanced_after_neutralization () =
  Handoff.Stats.reset ();
  let threads = 3 in
  let cfg =
    { (Tracker_intf.default_config ~threads ()) with
      background_reclaim = true; handoff_batch = 4;
      epoch_freq = 2; empty_freq = 4 } in
  let maker = Ibr_ds.Ds_registry.find_exn "hashmap" in
  let (module S) =
    maker.instantiate Registry.debra_plus.tracker in
  let sm = Option.get S.map in
  let t = S.create ~threads cfg in
  let sched = Sched.create (Sched.test_config ~cores:3 ~seed:0x42 ()) in
  let finished = ref 0 in
  for i = 0 to threads - 1 do
    ignore
      (Sched.spawn sched (fun _ ->
         match S.attach t with
         | None -> Alcotest.fail "census unexpectedly full"
         | Some h ->
           let rng = Rng.stream ~seed:0x42 ~index:i in
           for _ = 1 to 150 do
             let key = Rng.int rng 32 in
             match Rng.int rng 2 with
             | 0 -> ignore (sm.insert h ~key ~value:key)
             | _ -> ignore (sm.remove h ~key)
           done;
           S.detach h;
           incr finished))
  done;
  let svc = Option.get (S.reclaim_service t) in
  ignore
    (Sched.spawn sched (fun _ ->
       let rec loop () =
         if !finished < threads then begin
           ignore (svc.Handoff.drain ());
           Hooks.step 400;
           loop ()
         end
       in
       loop ()));
  ignore
    (Sched.spawn sched (fun _ ->
       let rng = Rng.stream ~seed:7 ~index:9 in
       let rec loop n =
         if n > 0 && !finished < threads then begin
           Hooks.step (150 + Rng.int rng 300);
           Sched.neutralize_peer (Rng.int rng threads);
           loop (n - 1)
         end
       in
       loop 48));
  Sched.run sched;
  svc.Handoff.shutdown_flush ();
  let pushed = Atomic.get Handoff.Stats.pushed in
  let drained = Atomic.get Handoff.Stats.drained in
  Alcotest.(check bool) "retirements flowed through the queue" true
    (pushed > 0);
  Alcotest.(check int) "handoff pushed = drained after restarts" pushed
    drained

(* ---- stall+neutralize profile: deterministic, never ejects ---- *)

let small_spec = { (Workload.spec_for "hashmap") with key_range = 256 }

let stall_neutralize =
  match Runner_sim.faults_of_string "stall+neutralize" with
  | Some f -> f
  | None -> Alcotest.fail "stall+neutralize profile missing"

let neutralize_run ~tracker ~seed =
  let cfg =
    Runner_sim.default_config ~threads:4 ~cores:4 ~horizon:150_000 ~seed
      ~faults:stall_neutralize ~spec:small_spec ()
  in
  let r, _ =
    Fault.with_counting (fun () ->
      Runner_sim.run_named ~tracker_name:tracker ~ds_name:"hashmap" cfg)
  in
  Option.get r

let test_stall_neutralize_deterministic () =
  let a = neutralize_run ~tracker:"DEBRA+" ~seed:0xbeef in
  let b = neutralize_run ~tracker:"DEBRA+" ~seed:0xbeef in
  Alcotest.(check string) "same seed, bit-identical CSV row"
    (Stats.to_csv_row a) (Stats.to_csv_row b);
  Alcotest.(check int) "the healing watchdog never ejects" 0
    (Stats.metric a "ejections")

let test_stall_neutralize_signals_flow () =
  (* A hotter variant of the preset (stalls near-certain per quantum,
     short grace) so a small horizon reliably drives deliveries: the
     stall length dwarfs grace × period, every stalled worker draws a
     restart signal, and EBR — no recovery protocol of its own beyond
     [with_op]'s generic drop-and-reprotect — survives fault-free. *)
  let hot =
    Runner_sim.Stall_neutralize
      { stall_prob = 0.5; stall_len = 480_000; period = 5_000; grace = 2 }
  in
  let cfg =
    Runner_sim.default_config ~threads:4 ~cores:4 ~horizon:150_000
      ~seed:0x5ea1 ~faults:hot ~spec:small_spec ()
  in
  let r, faults =
    Fault.with_counting (fun () ->
      Runner_sim.run_named ~tracker_name:"EBR" ~ds_name:"hashmap" cfg)
  in
  let r = Option.get r in
  Alcotest.(check int) "no memory faults under neutralization" 0 faults;
  Alcotest.(check bool)
    (Printf.sprintf "stalled workers were signalled (%d)"
       (Stats.metric r "neutralizations"))
    true
    (Stats.metric r "neutralizations" > 0);
  Alcotest.(check int) "zero ejections: nobody is written off" 0
    (Stats.metric r "ejections")

(* ---- the stall+neutralize campaign: checks hold, bit-reproducible ---- *)

let focused_campaign () =
  Experiment.robustness_sweep
    ~trackers:[ "EBR"; "DEBRA" ]
    ~profiles:[ "stall-storm"; "stall+neutralize" ]
    ()

let test_campaign_checks_hold () =
  let rows = focused_campaign () in
  let checks = Experiment.robustness_checks rows in
  Alcotest.(check bool) "campaign produced the neutralize claims" true
    (List.length checks >= 4);
  List.iter
    (fun (c : Experiment.check) ->
       Alcotest.(check bool)
         (Printf.sprintf "%s (%s)" c.claim c.detail)
         true c.holds)
    checks

let test_campaign_reproducible () =
  let csv rows = List.map Stats.to_csv_row rows in
  let a = csv (focused_campaign ()) in
  let b = csv (focused_campaign ()) in
  Alcotest.(check (list string)) "campaign rows bit-identical on rerun" a b

(* ---- service leg: neutralization keeps the worker (smoke) ---- *)

let test_service_neutralize_smoke () =
  let p =
    Service.default_profile ~workers:3 ~fleet:4 ~cores:4 ~horizon:60_000
      ~seed:0x5e12 ~watchdog:(500, 2) ~neutralize:true ~session_ops:12
      ~away:800 ~spec:(Workload.spec_for "hashmap") ()
  in
  let r =
    Option.get
      (Service.run_named ~tracker_name:"DEBRA+" ~ds_name:"hashmap" p)
  in
  Alcotest.(check bool) "requests served" true (r.Service.completed > 0);
  Alcotest.(check int) "healing watchdog ejects nobody" 0
    r.Service.ejections;
  let r' =
    Option.get
      (Service.run_named ~tracker_name:"DEBRA+" ~ds_name:"hashmap" p)
  in
  Alcotest.(check string) "service CSV row deterministic"
    (Service.to_csv_row r) (Service.to_csv_row r')

let suite =
  [
    Alcotest.test_case "signal delivered only in an open window" `Quick
      test_delivery_requires_open_window;
    Alcotest.test_case "committed bracket defers delivery" `Quick
      test_committed_masks_delivery;
    Alcotest.test_case "watchdog heals and counts recovery" `Quick
      test_watchdog_heals_and_counts_recovery;
    Alcotest.test_case "watchdog re-delivers after a fresh grace" `Quick
      test_watchdog_redelivers_after_grace;
    Alcotest.test_case "ejected slot re-armed on progress" `Quick
      test_watchdog_rearms_ejected_slot;
    QCheck_alcotest.to_alcotest qcheck_restart_idempotent;
    Alcotest.test_case "handoff pushed = drained across restarts" `Quick
      test_handoff_balanced_after_neutralization;
    Alcotest.test_case "stall+neutralize is seed-deterministic" `Quick
      test_stall_neutralize_deterministic;
    Alcotest.test_case "stall+neutralize delivers signals, ejects none"
      `Quick test_stall_neutralize_signals_flow;
    Alcotest.test_case "campaign acceptance checks hold" `Quick
      test_campaign_checks_hold;
    Alcotest.test_case "campaign rows bit-reproducible" `Quick
      test_campaign_reproducible;
    Alcotest.test_case "service neutralize leg (smoke)" `Quick
      test_service_neutralize_smoke;
  ]
