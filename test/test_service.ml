(* Dynamic census (attach/detach) and the open-loop service simulation
   (DESIGN.md §10).

   - Census model test: random join/leave interleavings against a
     naive reference census (lowest-free-slot discipline, exclusive
     occupancy, monotone generations).
   - Tracker-level churn semantics, scheme family by scheme family: a
     detached thread's reservation is never consulted by a later
     sweep, slot reuse never aliases the leaver's reservation, and
     QSBR's attach publishes a quiescent epoch (the reused slot would
     otherwise read the "always quiescent" detach sentinel — a
     grace-period skip).
   - Allocator magazine ownership across detach ([Alloc.flush_magazines]).
   - Watchdog census-awareness (inactive slots are not monitored and
     re-arm fresh).
   - The service harness itself: arrival-schedule determinism, Zipf
     skew, bit-identical CSV + SLO verdicts across reruns of one
     profile, and a smoke run per scheme family.

   This suite must be registered LAST in [test_main]: a service run
   lazily registers its [svc_*] metrics, which widens the registry CSV
   layout that test_obs pins against a golden file. *)

open Ibr_core
open Ibr_harness

let cfg ~threads =
  { (Tracker_intf.default_config ~threads ()) with
    reuse = false; epoch_freq = 1; empty_freq = 1_000_000 }

(* ---- census: unit + qcheck model ---------------------------------- *)

let test_census_basics () =
  let c = Registry.Census.create 3 in
  Alcotest.(check int) "capacity" 3 (Registry.Census.capacity c);
  let slot ~make = Registry.Census.try_attach c ~make in
  let s0 = slot ~make:(fun i -> i * 10) in
  let s1 = slot ~make:(fun i -> i * 10) in
  let s2 = slot ~make:(fun i -> i * 10) in
  Alcotest.(check (option (pair int int))) "lowest slot first"
    (Some (0, 0)) s0;
  Alcotest.(check (option (pair int int))) "then next" (Some (1, 10)) s1;
  Alcotest.(check (option (pair int int))) "then last" (Some (2, 20)) s2;
  Alcotest.(check (option (pair int int))) "full census refuses" None
    (slot ~make:(fun i -> i * 10));
  Alcotest.(check int) "all active" 3 (Registry.Census.active_count c);
  Registry.Census.detach c ~tid:1;
  Alcotest.(check bool) "slot 1 free" false
    (Registry.Census.is_active c ~tid:1);
  (* Reuse adopts the persistent payload instead of rebuilding it. *)
  Alcotest.(check (option (pair int int))) "lowest free slot reused"
    (Some (1, 10))
    (slot ~make:(fun _ -> Alcotest.fail "payload must be adopted"));
  Alcotest.(check int) "generation counts occupancies" 2
    (Registry.Census.generation c ~tid:1);
  Alcotest.(check int) "attaches" 4 (Registry.Census.attaches c);
  Alcotest.(check int) "detaches" 1 (Registry.Census.detaches c);
  (match Registry.Census.detach c ~tid:1; Registry.Census.detach c ~tid:1 with
   | exception Invalid_argument _ -> ()
   | () -> Alcotest.fail "detach of an inactive slot must raise");
  match Registry.Census.detach c ~tid:7 with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "detach out of range must raise"

(* Random interleavings of joins and leaves against a naive reference:
   a bool occupancy array with lowest-free-slot attach.  Checks, after
   every step: occupancy agrees slot by slot, attach grants exactly
   the reference slot (or None exactly when the reference is full),
   generations only grow, and a granted slot was free in the reference
   (no aliasing of a live occupant). *)
type census_op = Join | Leave of int

let census_op_gen cap =
  QCheck.Gen.(
    frequency
      [ (3, return Join); (2, map (fun i -> Leave i) (int_bound (cap - 1))) ])

let census_scenario_gen =
  QCheck.Gen.(
    let* cap = int_range 1 5 in
    let* ops = list_size (int_range 1 40) (census_op_gen cap) in
    return (cap, ops))

let census_scenario_print (cap, ops) =
  Printf.sprintf "cap=%d [%s]" cap
    (String.concat "; "
       (List.map
          (function Join -> "join" | Leave i -> Printf.sprintf "leave %d" i)
          ops))

let prop_census_model =
  QCheck.Test.make ~name:"Census matches the naive lowest-free-slot model"
    ~count:300
    (QCheck.make census_scenario_gen ~print:census_scenario_print)
    (fun (cap, ops) ->
       let c = Registry.Census.create cap in
       let model = Array.make cap false in
       let gens = Array.make cap 0 in
       let model_attach () =
         let rec go i =
           if i >= cap then None
           else if not model.(i) then Some i
           else go (i + 1)
         in
         go 0
       in
       let agree () =
         Array.for_all Fun.id
           (Array.init cap (fun i ->
              model.(i) = Registry.Census.is_active c ~tid:i
              && Registry.Census.generation c ~tid:i >= gens.(i)))
       in
       List.for_all
         (fun op ->
            (match op with
             | Join ->
               let expect = model_attach () in
               let got = Registry.Census.try_attach c ~make:(fun i -> i) in
               (match expect, got with
                | None, None -> true
                | Some i, Some (j, _) when i = j ->
                  model.(i) <- true;
                  let g = Registry.Census.generation c ~tid:i in
                  let ok = g > gens.(i) in
                  gens.(i) <- g;
                  ok
                | _ -> false)
             | Leave i ->
               if model.(i) then begin
                 Registry.Census.detach c ~tid:i;
                 model.(i) <- false;
                 true
               end
               else (
                 match Registry.Census.detach c ~tid:i with
                 | exception Invalid_argument _ -> true
                 | () -> false))
            && agree ())
         ops)

(* ---- detached reservations are never consulted --------------------- *)

(* Epoch-family shape: a reader mid-operation pins a retired block;
   after it ends its op AND detaches, the next sweep must free the
   block — i.e. the departed slot's reservation has stopped counting
   toward grace periods (advance quorum tolerates census changes). *)
let test_detach_unblocks_sweep (module T : Tracker_intf.TRACKER) () =
  let t = T.create ~threads:2 (cfg ~threads:2) in
  let attach_exn () =
    match T.attach t with
    | Some h -> h
    | None -> Alcotest.fail "attach refused on a non-full census"
  in
  (* Sweep repeatedly: epoch schemes need a few helped advances before
     a retired block's grace period can elapse. *)
  let pump h = for _ = 1 to 4 do T.force_empty h done in
  let reader = attach_exn () in
  let writer = attach_exn () in
  T.start_op reader;
  let b = T.alloc writer 1 in
  let p = T.make_ptr t (Some b) in
  let v = T.read_root reader p in
  ignore (View.target v);
  T.write writer p None;
  T.retire writer b;
  pump writer;
  Alcotest.(check bool) "pinned while the reader is mid-interval" false
    (Block.is_reclaimed b);
  T.end_op reader;
  T.detach reader;
  pump writer;
  Alcotest.(check bool) "freed once the reader detached" true
    (Block.is_reclaimed b);
  T.detach writer

(* Slot reuse must not resurrect the leaver's reservation: a joiner
   occupying the departed reader's slot (and not yet inside an
   operation) must not pin anything for the epoch-publishing schemes.
   (QSBR is intentionally different — see the next test.) *)
let test_slot_reuse_no_alias (module T : Tracker_intf.TRACKER) () =
  let t = T.create ~threads:2 (cfg ~threads:2) in
  let attach_exn () =
    match T.attach t with
    | Some h -> h
    | None -> Alcotest.fail "attach refused on a non-full census"
  in
  let pump h = for _ = 1 to 4 do T.force_empty h done in
  let reader = attach_exn () in
  let writer = attach_exn () in
  T.start_op reader;
  let slot = T.handle_tid reader in
  T.end_op reader;
  T.detach reader;
  let joiner = attach_exn () in
  Alcotest.(check int) "joiner reuses the leaver's slot" slot
    (T.handle_tid joiner);
  let b = T.alloc writer 2 in
  let p = T.make_ptr t (Some b) in
  T.write writer p None;
  T.retire writer b;
  pump writer;
  Alcotest.(check bool)
    "an idle joiner on a reused slot pins nothing" true
    (Block.is_reclaimed b);
  (* ...but its own fresh reservation works. *)
  T.start_op joiner;
  let b2 = T.alloc writer 3 in
  let p2 = T.make_ptr t (Some b2) in
  let v = T.read_root joiner p2 in
  ignore (View.target v);
  T.write writer p2 None;
  T.retire writer b2;
  pump writer;
  Alcotest.(check bool) "joiner's own reservation pins" false
    (Block.is_reclaimed b2);
  T.end_op joiner;
  T.detach joiner;
  pump writer;
  T.detach writer

(* QSBR's detach parks the slot at the "always quiescent" sentinel, so
   attach must publish the then-current epoch: a joiner that has not
   quiesced since attaching pins everything retired after that point.
   If attach left the sentinel in place, two helped advances would
   race past the joiner's first operation and free under it (the
   grace-period skip this test would catch as [b] being reclaimed). *)
let test_qsbr_attach_publishes_quiescence () =
  let module T = Qsbr in
  let t = T.create ~threads:2 (cfg ~threads:2) in
  let attach_exn () =
    match T.attach t with
    | Some h -> h
    | None -> Alcotest.fail "attach refused on a non-full census"
  in
  let pump h = for _ = 1 to 4 do T.force_empty h done in
  let first = attach_exn () in
  T.detach first;                       (* slot 0 parked at the sentinel *)
  let joiner = attach_exn () in
  Alcotest.(check int) "sentinel slot reused" 0 (T.handle_tid joiner);
  let writer = attach_exn () in
  let b = T.alloc writer 4 in
  let p = T.make_ptr t (Some b) in
  T.write writer p None;
  T.retire writer b;
  pump writer;
  Alcotest.(check bool)
    "joiner pins from attach until its first quiescence" false
    (Block.is_reclaimed b);
  (* A few op cycles: each announces the joiner's quiescence at the
     then-current epoch while the writer's sweeps help the epoch
     forward, so the grace period elapses. *)
  for _ = 1 to 4 do
    T.start_op joiner;
    T.end_op joiner;
    T.force_empty writer
  done;
  Alcotest.(check bool) "freed after the joiner quiesced" true
    (Block.is_reclaimed b);
  T.detach joiner;
  T.detach writer

(* The detach path must hand the leaver's pending retirements to the
   slot's persistent path (not leak them): a joiner that reuses the
   slot adopts them and its own sweep frees them. *)
let test_detach_hands_over_retirements () =
  let module T = Ebr in
  let t = T.create ~threads:2 (cfg ~threads:2) in
  let attach_exn () =
    match T.attach t with
    | Some h -> h
    | None -> Alcotest.fail "attach refused on a non-full census"
  in
  let pump h = for _ = 1 to 4 do T.force_empty h done in
  let reader = attach_exn () in
  let leaver = attach_exn () in
  T.start_op reader;
  let b = T.alloc leaver 5 in
  let p = T.make_ptr t (Some b) in
  let v = T.read_root reader p in
  ignore (View.target v);
  T.write leaver p None;
  T.retire leaver b;
  let slot = T.handle_tid leaver in
  T.detach leaver;                 (* reader still pins b: stays pending *)
  Alcotest.(check bool) "still pinned across the detach" false
    (Block.is_reclaimed b);
  T.end_op reader;
  let joiner = attach_exn () in
  Alcotest.(check int) "adopted the leaver's slot" slot
    (T.handle_tid joiner);
  pump joiner;
  Alcotest.(check bool) "joiner's sweep frees the inherited block" true
    (Block.is_reclaimed b);
  T.detach joiner;
  T.detach reader

(* ---- allocator: magazine ownership across detach ------------------- *)

let test_flush_magazines () =
  let a = Alloc.create ~threads:2 ~magazine_size:8 () in
  let blocks = List.init 6 (fun i -> Alloc.alloc a ~tid:0 i) in
  List.iter
    (fun b ->
       Block.transition_retire b;
       Alloc.free a ~tid:0 b)
    blocks;
  let st = Alloc.stats a in
  Alcotest.(check int) "six blocks cached" 6 st.cached;
  (* Partial magazines are invisible to other threads... *)
  let b1 = Alloc.alloc a ~tid:1 100 in
  Alcotest.(check int) "tid 1 cannot see tid 0's magazines"
    (st.fresh + 1) (Alloc.stats a).fresh;
  (* ...until the owner flushes them to the depot. *)
  Alloc.flush_magazines a ~tid:0;
  Alcotest.(check int) "flush moves blocks, not counts" 6
    (Alloc.stats a).cached;
  let b2 = Alloc.alloc a ~tid:1 101 in
  let st2 = Alloc.stats a in
  Alcotest.(check int) "no fresh block needed" (st.fresh + 1) st2.fresh;
  Alcotest.(check bool) "reuse happened" true (st2.reused > st.reused);
  Alcotest.(check int) "live accounting consistent"
    (st2.allocated - st2.freed) st2.live;
  (* Idempotent / empty flush is a no-op. *)
  Alloc.flush_magazines a ~tid:0;
  Alloc.flush_magazines a ~tid:0;
  Alcotest.(check int) "cached unchanged by empty flushes"
    st2.cached (Alloc.stats a).cached;
  ignore b1;
  ignore b2

(* ---- watchdog: inactive slots are not monitored -------------------- *)

let watchdog_run ~active ~horizon body =
  let open Ibr_runtime in
  let sched = Sched.create (Sched.test_config ~cores:2 ()) in
  let progress = ref 1 in   (* armed, then permanently stalled *)
  let w =
    Watchdog.spawn ~sched ~period:10 ~grace:2 ~threads:1
      ~active:(fun _ -> active ())
      ~progress:(fun _ -> !progress)
      ~footprint:(fun () -> 0)
      ~eject:(fun _ -> ())
      ()
  in
  ignore (Sched.spawn sched (fun _ -> body ()));
  Sched.run ~horizon sched;
  w

let test_watchdog_ejects_active_staller () =
  let open Ibr_runtime in
  let w =
    watchdog_run ~active:(fun () -> true) ~horizon:200 (fun () ->
      Hooks.step 200)
  in
  Alcotest.(check int) "stalled active slot ejected" 1
    (Watchdog.ejections w)

let test_watchdog_ignores_inactive_slot () =
  let open Ibr_runtime in
  let w =
    watchdog_run ~active:(fun () -> false) ~horizon:200 (fun () ->
      Hooks.step 200)
  in
  Alcotest.(check int) "inactive slot never ejected" 0
    (Watchdog.ejections w)

let test_watchdog_rearms_on_detach () =
  let open Ibr_runtime in
  let active = ref true in
  let w =
    watchdog_run ~active:(fun () -> !active) ~horizon:400 (fun () ->
      (* Stall long enough to be ejected, then "detach". *)
      Hooks.step 100;
      active := false;
      Hooks.step 300)
  in
  Alcotest.(check int) "ejected while active" 1 (Watchdog.ejections w);
  Alcotest.(check bool) "ejection state reset once the slot freed" false
    (Watchdog.ejected w 0)

(* ---- service: arrivals, zipf, determinism, smoke ------------------- *)

let small_profile ?arrival ?watchdog () =
  Service.default_profile ~workers:3 ~fleet:5 ~cores:4 ~horizon:60_000
    ~seed:0x5e11 ?arrival ?watchdog ~session_ops:12 ~away:800
    ~spec:(Workload.spec_for "hashmap") ()

let test_arrivals_deterministic () =
  let p = small_profile () in
  let a1, capped1 = Service.gen_arrivals p in
  let a2, _ = Service.gen_arrivals p in
  Alcotest.(check bool) "same schedule twice" true (a1 = a2);
  Alcotest.(check bool) "not truncated" false capped1;
  Alcotest.(check bool) "non-empty" true (Array.length a1 > 0);
  let sorted = ref true in
  Array.iteri
    (fun i t -> if i > 0 && t < a1.(i - 1) then sorted := false)
    a1;
  Alcotest.(check bool) "timestamps non-decreasing" true !sorted;
  Array.iter
    (fun t ->
       if t < 0 || t >= p.Service.horizon then
         Alcotest.failf "arrival %d outside horizon" t)
    a1;
  (* A different seed moves the schedule. *)
  let a3, _ = Service.gen_arrivals { p with Service.seed = 1 } in
  Alcotest.(check bool) "seed changes the schedule" false (a1 = a3)

let test_rate_modulation () =
  let p = small_profile () in
  let flat = { p with Service.diurnal = false; spikes = 0 } in
  for t = 0 to flat.Service.horizon do
    if Service.rate_permille flat ~t <> 1000 then
      Alcotest.failf "flat profile must be 1000 permille at %d" t
  done;
  let lo = ref max_int and hi = ref 0 in
  for t = 0 to p.Service.horizon do
    let r = Service.rate_permille p ~t in
    lo := min !lo r;
    hi := max !hi r
  done;
  Alcotest.(check int) "diurnal trough" 600 !lo;
  Alcotest.(check bool) "spike peak above plain diurnal" true (!hi > 1500);
  Alcotest.(check bool) "spike peak bounded by 3x peak rate" true
    (!hi <= 4500);
  (* Bursty processes add arrivals at unchanged timestamps. *)
  let pb =
    { p with Service.arrival = Service.Bursty { burst = 4; prob = 0.1 } }
  in
  let plain, _ = Service.gen_arrivals p in
  let bursty, capped = Service.gen_arrivals pb in
  Alcotest.(check bool) "bursts add arrivals" true
    (Array.length bursty > Array.length plain || capped)

let test_zipf_skew () =
  let rng = Ibr_runtime.Rng.create 99 in
  let z = Workload.zipf ~theta:1.1 ~key_range:64 in
  let counts = Array.make 64 0 in
  for _ = 1 to 4_000 do
    let k = Workload.zipf_pick z rng in
    if k < 0 || k >= 64 then Alcotest.failf "zipf key %d out of range" k;
    counts.(k) <- counts.(k) + 1
  done;
  Alcotest.(check bool) "hot key dominates the uniform share" true
    (counts.(0) > 3 * (4_000 / 64));
  Alcotest.(check bool) "hot key beats the coldest" true
    (counts.(0) > 10 * (counts.(63) + 1));
  (* theta = 0 degenerates to uniform: the head cannot dominate. *)
  let u = Workload.zipf ~theta:0.0 ~key_range:64 in
  let uc = Array.make 64 0 in
  for _ = 1 to 4_000 do
    let k = Workload.zipf_pick u rng in
    uc.(k) <- uc.(k) + 1
  done;
  Alcotest.(check bool) "uniform head is unexceptional" true
    (uc.(0) < 3 * (4_000 / 64))

let test_service_deterministic () =
  let p = small_profile () in
  let r1 = Service.run_named ~tracker_name:"TagIBR" ~ds_name:"hashmap" p in
  let r2 = Service.run_named ~tracker_name:"TagIBR" ~ds_name:"hashmap" p in
  match r1, r2 with
  | Some r1, Some r2 ->
    Alcotest.(check string) "bit-identical CSV rows"
      (Service.to_csv_row r1) (Service.to_csv_row r2);
    Alcotest.(check string) "identical SLO verdicts"
      (Service.verdicts_csv r1) (Service.verdicts_csv r2)
  | _ -> Alcotest.fail "service run refused a compatible pairing"

let smoke_schemes =
  (* One representative per scheme family. *)
  [ "EBR"; "QSBR"; "HP"; "HE"; "TagIBR"; "2GEIBR"; "NoMM" ]

let test_service_smoke tracker () =
  match
    Service.run_named ~tracker_name:tracker ~ds_name:"hashmap"
      (small_profile ())
  with
  | None -> Alcotest.failf "%s should run the hashmap" tracker
  | Some r ->
    Alcotest.(check int) "every arrival accounted for" r.Service.arrivals
      (r.Service.completed + r.Service.aborted + r.Service.unserved);
    Alcotest.(check bool) "served most of the demand" true
      (r.Service.completed > r.Service.arrivals / 2);
    Alcotest.(check bool) "churn happened" true (r.Service.attaches > 2);
    Alcotest.(check bool) "leavers detached" true
      (r.Service.detaches > 0 && r.Service.detaches <= r.Service.attaches);
    Alcotest.(check bool) "tails are ordered" true
      (r.Service.p50 <= r.Service.p99
       && r.Service.p99 <= r.Service.p999
       && r.Service.p999 <= r.Service.max_latency);
    Alcotest.(check int) "four SLO verdicts" 4
      (List.length r.Service.verdicts);
    Alcotest.(check bool) "default SLO holds" true r.Service.slo_pass

let test_service_bursty_watchdog () =
  let p =
    small_profile
      ~arrival:(Service.Bursty { burst = 6; prob = 0.05 })
      ~watchdog:(15_000, 3) ()
  in
  match Service.run_named ~tracker_name:"EBR" ~ds_name:"hashmap" p with
  | None -> Alcotest.fail "EBR should run the hashmap"
  | Some r ->
    Alcotest.(check bool) "bursty demand served" true
      (r.Service.completed > 0);
    (* No stalls are injected, so churn alone must never look like
       death to the census-aware watchdog. *)
    Alcotest.(check int) "no spurious ejections under churn" 0
      r.Service.ejections

let suite =
  [
    Alcotest.test_case "census basics" `Quick test_census_basics;
    QCheck_alcotest.to_alcotest prop_census_model;
  ]
  @ List.concat_map
      (fun name ->
         let e = Registry.find_exn name in
         let module T = (val e.Registry.tracker) in
         [
           Alcotest.test_case
             (Printf.sprintf "detach unblocks sweeps (%s)" name)
             `Quick
             (test_detach_unblocks_sweep (module T));
           Alcotest.test_case
             (Printf.sprintf "slot reuse aliases nothing (%s)" name)
             `Quick
             (test_slot_reuse_no_alias (module T));
         ])
      [ "EBR"; "EBR-Fraser"; "TagIBR"; "2GEIBR"; "HP"; "HE"; "POIBR" ]
  @ [
      Alcotest.test_case "QSBR attach publishes quiescence" `Quick
        test_qsbr_attach_publishes_quiescence;
      Alcotest.test_case "detach hands retirements to the slot path"
        `Quick test_detach_hands_over_retirements;
      Alcotest.test_case "flush_magazines" `Quick test_flush_magazines;
      Alcotest.test_case "watchdog ejects an active staller" `Quick
        test_watchdog_ejects_active_staller;
      Alcotest.test_case "watchdog ignores inactive slots" `Quick
        test_watchdog_ignores_inactive_slot;
      Alcotest.test_case "watchdog re-arms on detach" `Quick
        test_watchdog_rearms_on_detach;
      Alcotest.test_case "arrival schedule deterministic" `Quick
        test_arrivals_deterministic;
      Alcotest.test_case "rate modulation" `Quick test_rate_modulation;
      Alcotest.test_case "zipf skew" `Quick test_zipf_skew;
      Alcotest.test_case "service run is bit-reproducible" `Quick
        test_service_deterministic;
    ]
  @ List.map
      (fun tracker ->
         Alcotest.test_case
           (Printf.sprintf "service smoke (%s)" tracker)
           `Quick (test_service_smoke tracker))
      smoke_schemes
  @ [
      Alcotest.test_case "bursty arrivals + census-aware watchdog" `Quick
        test_service_bursty_watchdog;
    ]
