(* Additional coverage: the headline Fig. 9 shape at test scale,
   hash-map structure specifics, Bonsai balance under qcheck op
   sequences, the op wrapper's restart accounting, and assorted
   small-surface behaviours. *)

open Ibr_core
open Ibr_runtime

(* --- the robustness headline, pinned at test scale ----------------- *)

(* Oversubscribed machine with stall injection: EBR's retired-but-
   unreclaimed population must exceed 2GEIBR's by a clear factor, and
   HP must stay near-flat.  This is Fig. 9's claim in miniature. *)
let test_fig9_shape () =
  let run tracker_name =
    let spec =
      { (Ibr_harness.Workload.spec_for "hashmap") with key_range = 1024 } in
    let cfg =
      Ibr_harness.Runner_sim.default_config ~threads:24 ~horizon:400_000
        ~cores:8 ~seed:5 ~spec ()
    in
    let cfg =
      { cfg with
        sched =
          { cfg.sched with stall_prob = 0.03; stall_len = 150_000 } }
    in
    (Option.get
       (Ibr_harness.Runner_sim.run_named ~tracker_name ~ds_name:"hashmap"
          cfg)).avg_unreclaimed
  in
  let ebr = run "EBR" and ibr = run "2GEIBR" and hp = run "HP" in
  Alcotest.(check bool)
    (Printf.sprintf "EBR (%.0f) > 1.5x IBR (%.0f) when oversubscribed" ebr ibr)
    true
    (ebr > 1.5 *. ibr);
  Alcotest.(check bool)
    (Printf.sprintf "IBR (%.0f) bounded well above HP (%.1f)" ibr hp)
    true
    (hp < 50.0 && ibr < ebr)

(* Throughput ordering at test scale (Fig. 8's claim in miniature). *)
let test_fig8_shape () =
  let run tracker_name =
    let spec = Ibr_harness.Workload.spec_for "hashmap" in
    let cfg =
      Ibr_harness.Runner_sim.default_config ~threads:8 ~horizon:120_000
        ~cores:8 ~seed:9 ~spec ()
    in
    (Option.get
       (Ibr_harness.Runner_sim.run_named ~tracker_name ~ds_name:"hashmap"
          cfg)).throughput
  in
  let nomm = run "NoMM" and ebr = run "EBR" and ibr = run "2GEIBR"
  and he = run "HE" and hp = run "HP" in
  Alcotest.(check bool) "NoMM >= EBR" true (nomm >= ebr);
  Alcotest.(check bool) "EBR >= 2GEIBR" true (ebr >= ibr);
  Alcotest.(check bool) "2GEIBR > 2x HE" true (ibr > 2.0 *. he);
  Alcotest.(check bool) "HE >= HP" true (he >= hp)

(* --- hash map specifics -------------------------------------------- *)

module HM = Ibr_ds.Michael_hashmap.Make (Ebr)

let hm_ops = Option.get HM.map

let hm_cfg = { (Tracker_intf.default_config ()) with reuse = false }

let test_hashmap_bucket_validation () =
  Alcotest.check_raises "non-power-of-two rejected"
    (Invalid_argument "Michael_hashmap.create: buckets must be a power of two")
    (fun () -> ignore (HM.create_sized ~buckets:48 ~threads:1 hm_cfg))

let test_hashmap_tiny_table () =
  (* One bucket: the map degenerates to a list and must still work. *)
  let t = HM.create_sized ~buckets:1 ~threads:1 hm_cfg in
  let h = HM.register t ~tid:0 in
  for k = 0 to 99 do
    Alcotest.(check bool) "insert" true (hm_ops.insert h ~key:k ~value:(k * 2))
  done;
  for k = 0 to 99 do
    Alcotest.(check (option int)) "get" (Some (k * 2)) (hm_ops.get h ~key:k)
  done;
  Alcotest.(check int) "size" 100 (List.length (hm_ops.to_sorted_list t));
  HM.check_invariants t

let test_hashmap_spread () =
  (* Sequential keys must not all land in one bucket. *)
  let t = HM.create_sized ~buckets:64 ~threads:1 hm_cfg in
  let h = HM.register t ~tid:0 in
  for k = 0 to 255 do ignore (hm_ops.insert h ~key:k ~value:k) done;
  (* Count non-empty buckets through the dump (indirectly): the
     longest chain should be far below 256. *)
  let dump = hm_ops.to_sorted_list t in
  Alcotest.(check int) "all present" 256 (List.length dump)

let test_hashmap_negative_like_keys () =
  (* Large keys exercise the hash's bit mixing. *)
  let t = HM.create_sized ~buckets:16 ~threads:1 hm_cfg in
  let h = HM.register t ~tid:0 in
  let keys = [ 0; 1; max_int / 2; max_int - 1; 123456789 ] in
  List.iter (fun k ->
    Alcotest.(check bool) "insert big key" true (hm_ops.insert h ~key:k ~value:k))
    keys;
  List.iter (fun k ->
    Alcotest.(check bool) "find big key" true (hm_ops.contains h ~key:k))
    keys

(* --- Bonsai balance under arbitrary op sequences -------------------- *)

let qcheck_bonsai_balanced =
  QCheck.Test.make ~name:"bonsai stays weight-balanced" ~count:40
    QCheck.(make Gen.(list_size (int_bound 300) (pair bool (int_bound 127))))
    (fun ops ->
       let module B = Ibr_ds.Bonsai_tree.Make (Po_ibr) in
       let bm = Option.get B.map in
       let t =
         B.create ~threads:1
           { (Tracker_intf.default_config ()) with reuse = false } in
       let h = B.register t ~tid:0 in
       List.iter
         (fun (ins, k) ->
            if ins then ignore (bm.insert h ~key:k ~value:k)
            else ignore (bm.remove h ~key:k))
         ops;
       B.check_invariants t;
       true)

(* Bonsai speculative allocations are reclaimed on CAS failure: after
   a contended run the allocator must not leak unpublished nodes. *)
let test_bonsai_speculation_reclaimed () =
  let module B = Ibr_ds.Bonsai_tree.Make (Ebr) in
  let bm = Option.get B.map in
  let threads = 6 in
  let cfg =
    { (Tracker_intf.default_config ~threads ()) with
      reuse = false; epoch_freq = 2; empty_freq = 4 } in
  let t = B.create ~threads cfg in
  let sched = Sched.create (Sched.test_config ~cores:4 ~seed:3 ()) in
  for i = 0 to threads - 1 do
    ignore
      (Sched.spawn sched (fun tid ->
         let h = B.register t ~tid in
         let rng = Rng.stream ~seed:(60 + i) ~index:i in
         for _ = 1 to 200 do
           let k = Rng.int rng 32 in
           if Rng.bool rng then ignore (bm.insert h ~key:k ~value:k)
           else ignore (bm.remove h ~key:k)
         done))
  done;
  Sched.run sched;
  (* Sweep all handles' leftovers. *)
  let h = B.register t ~tid:0 in
  B.force_empty h;
  let s = B.allocator_stats t in
  let reachable = List.length (bm.to_sorted_list t) in
  (* live = reachable + retired-on-other-handles' lists; the latter is
     bounded by retire lists, not by total allocations. *)
  Alcotest.(check bool)
    (Printf.sprintf "no mass leak: live=%d reachable=%d alloc=%d" s.live
       reachable s.allocated)
    true
    (s.live < reachable + 2000 && s.allocated > 1000)

(* --- the op wrapper ------------------------------------------------- *)

let test_with_op_restart_accounting () =
  let stats = Ibr_ds.Ds_common.make_op_stats () in
  let starts = ref 0 and ends = ref 0 in
  let tries = ref 0 in
  let result =
    Ibr_ds.Ds_common.with_op ~stats
      ~start_op:(fun () -> incr starts)
      ~end_op:(fun () -> incr ends)
      ~on_neutralize:(fun () -> ())
      ~max_cas_failures:3
      (fun () ->
         incr tries;
         if !tries <= 7 then raise Ibr_ds.Ds_common.Restart else "done")
  in
  Alcotest.(check string) "result" "done" result;
  Alcotest.(check int) "restarts" 7 stats.restarts;
  (* 7 failures with threshold 3: refreshes after the 3rd and 6th. *)
  Alcotest.(check int) "reservation refreshes" 2 stats.reservation_refreshes;
  Alcotest.(check int) "balanced start/end" !starts !ends;
  Alcotest.(check int) "ops counted" 1 stats.ops

let test_with_op_exception_safe () =
  let stats = Ibr_ds.Ds_common.make_op_stats () in
  let ends = ref 0 in
  (try
     Ibr_ds.Ds_common.with_op ~stats
       ~start_op:(fun () -> ())
       ~end_op:(fun () -> incr ends)
       ~on_neutralize:(fun () -> ())
       ~max_cas_failures:0
       (fun () -> failwith "inner")
   with Failure _ -> ());
  Alcotest.(check int) "end_op ran on exception" 1 !ends

(* --- assorted small surfaces --------------------------------------- *)

let test_cost_pp_and_fence () =
  let c = Ibr_runtime.Cost.with_fence Ibr_runtime.Cost.default 99 in
  Alcotest.(check int) "fence overridden" 99 c.fence;
  let s = Fmt.str "%a" Ibr_runtime.Cost.pp c in
  Alcotest.(check bool) "pp mentions fence" true
    (Astring_contains.contains s "fence=99")

let test_sparkline () =
  Alcotest.(check string) "empty" "" (Ibr_harness.Chart.sparkline []);
  let s = Ibr_harness.Chart.sparkline [ 0.0; 1.0 ] in
  Alcotest.(check bool) "two glyphs" true (String.length s > 0)

let test_run_threads_helper () =
  let hits = Atomic.make 0 in
  let t =
    Sched.run_threads ~cfg:(Sched.test_config ~cores:2 ()) ~n:5
      (fun ~tid:_ ~index:_ ->
         Hooks.step 3;
         Atomic.incr hits)
  in
  Alcotest.(check int) "all bodies ran" 5 (Atomic.get hits);
  Alcotest.(check bool) "makespan positive" true (Sched.makespan t > 0)

let test_registry_oracles () =
  Alcotest.(check int) "five oracles" 5 (List.length Registry.oracles);
  Alcotest.(check bool) "norestart debra findable" true
    (Registry.find "debra-norestart" <> None);
  Alcotest.(check bool) "oracle findable" true
    (Registry.find "unsafefree" <> None);
  Alcotest.(check bool) "unfenced findable" true
    (Registry.find "2geibr-unfenced" <> None);
  Alcotest.(check bool) "noncas qsbr findable" true
    (Registry.find "qsbr-noncas" <> None);
  Alcotest.(check bool) "noflush ebr findable" true
    (Registry.find "ebr-noflush" <> None);
  List.iter
    (fun (o : Registry.entry) ->
       Alcotest.(check bool) "oracles not in all" true
         (not (List.exists (fun (e : Registry.entry) -> e.name = o.name)
                 Registry.all)))
    Registry.oracles

let test_sim_key_ranges () =
  List.iter
    (fun ds ->
       Alcotest.(check bool) (ds ^ " range positive") true
         (Ibr_harness.Workload.sim_key_range ds > 0))
    [ "list"; "hashmap"; "nmtree"; "bonsai"; "unknown" ]

let suite =
  [
    Alcotest.test_case "fig9 shape (robustness headline)" `Slow test_fig9_shape;
    Alcotest.test_case "fig8 shape (throughput headline)" `Slow test_fig8_shape;
    Alcotest.test_case "hashmap bucket validation" `Quick
      test_hashmap_bucket_validation;
    Alcotest.test_case "hashmap one bucket" `Quick test_hashmap_tiny_table;
    Alcotest.test_case "hashmap spread" `Quick test_hashmap_spread;
    Alcotest.test_case "hashmap big keys" `Quick test_hashmap_negative_like_keys;
    QCheck_alcotest.to_alcotest qcheck_bonsai_balanced;
    Alcotest.test_case "bonsai speculation reclaimed" `Slow
      test_bonsai_speculation_reclaimed;
    Alcotest.test_case "with_op restart accounting" `Quick
      test_with_op_restart_accounting;
    Alcotest.test_case "with_op exception safety" `Quick
      test_with_op_exception_safe;
    Alcotest.test_case "cost pp / with_fence" `Quick test_cost_pp_and_fence;
    Alcotest.test_case "sparkline" `Quick test_sparkline;
    Alcotest.test_case "run_threads helper" `Quick test_run_threads_helper;
    Alcotest.test_case "registry oracles" `Quick test_registry_oracles;
    Alcotest.test_case "sim key ranges" `Quick test_sim_key_ranges;
  ]
