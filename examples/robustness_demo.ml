(* Robustness (§4.3.1, DESIGN.md §7) made visible.

   Act 1 — a thread stalls forever in the middle of an operation while
   the others keep working.  Under EBR the stalled reservation pins
   every block retired from then on: dead memory grows without bound.
   Under the IBR schemes (and HP/HE) the stalled thread pins only a
   bounded set; reclamation keeps pace.

   Act 2 — what reclamation safety is *for*: the same workload under
   the deliberately broken UnsafeFree scheme (free on retire), with
   the fault checker in counting mode: dangling reads happen and are
   counted.  Under every real scheme the count is zero.

   Act 3 — a thread *crashes* mid-operation (the continuation is
   abandoned, cleanups never run) and the ejection watchdog detects
   the silence and expires the dead reservation: EBR's dead memory
   stops growing the moment the ejection lands.

   Act 4 — allocator backpressure: the same crash against a capped
   heap.  2GEIBR's frozen interval pins only pre-crash blocks, fits
   under the cap, and finishes clean; EBR's one-sided reservation pins
   everything and runs the heap dry (`Alloc_exhausted`).

   Each act asserts its claim; the demo exits nonzero if any fails.

     dune exec examples/robustness_demo.exe
*)

open Ibr_core
open Ibr_runtime

let failures : string list ref = ref []

let check what ok =
  if not ok then failures := what :: !failures;
  Fmt.pr "   %s %s@." (if ok then "[ok]" else "[FAILED]") what

let churn_with_stalled_reader tracker_name =
  let entry = Registry.find_exn tracker_name in
  let (module T : Tracker_intf.TRACKER) = entry.tracker in
  let module L = Ibr_ds.Harris_list.Make (T) in
  let threads = 9 in
  let cfg =
    { (Tracker_intf.default_config ~threads ()) with
      epoch_freq = 2 * threads; empty_freq = 8 } in
  let t = L.create ~threads cfg in
  (* Prefill. *)
  let h0 = L.register t ~tid:0 in
  for k = 0 to 63 do ignore (L.insert h0 ~key:k ~value:k) done;
  let sched = Sched.create (Sched.test_config ~cores:8 ~seed:3 ()) in
  (* Thread 0: posts a reservation at the tracker level and "stalls"
     by returning without end_op — exactly the state a preempted
     thread is in, held for the rest of the run. *)
  ignore
    (Sched.spawn sched (fun tid ->
       let h = L.register t ~tid in
       let th = L.tracker_handle h in
       T.start_op th;
       ignore (T.read_root th (L.head t))));
  (* Eight workers churn. *)
  for i = 1 to 8 do
    ignore
      (Sched.spawn sched (fun tid ->
         let h = L.register t ~tid in
         let rng = Rng.stream ~seed:77 ~index:i in
         for _ = 1 to 1500 do
           let k = Rng.int rng 64 in
           if Rng.bool rng then ignore (L.insert h ~key:k ~value:k)
           else ignore (L.remove h ~key:k)
         done))
  done;
  Sched.run sched;
  let st = L.allocator_stats t in
  (st.allocated, st.live, st.freed)

let act1 () =
  Fmt.pr "== Act 1: one thread stalls mid-operation forever ==@.";
  Fmt.pr "   (8 workers churn a 64-key list; list itself holds ~48 nodes)@.@.";
  Fmt.pr "   %-12s %10s %10s %12s@." "scheme" "allocated" "freed"
    "dead+live";
  List.iter
    (fun name ->
       let allocated, live, freed = churn_with_stalled_reader name in
       Fmt.pr "   %-12s %10d %10d %12d%s@." name allocated freed live
         (if name = "EBR" then "   <- grows with run length" else ""))
    [ "EBR"; "HP"; "HE"; "TagIBR"; "2GEIBR" ];
  Fmt.pr "@."

let act2 () =
  Fmt.pr "== Act 2: why deferred reclamation matters at all ==@.";
  let run name =
    let entry = Registry.find_exn name in
    let (module T : Tracker_intf.TRACKER) = entry.tracker in
    let module L = Ibr_ds.Harris_list.Make (T) in
    let threads = 8 in
    let cfg =
      { (Tracker_intf.default_config ~threads ()) with
        reuse = false; epoch_freq = 2; empty_freq = 2 } in
    let t = L.create ~threads cfg in
    let sched =
      Sched.create
        { (Sched.test_config ~cores:4 ~seed:13 ()) with
          stall_prob = 0.05; stall_len = 2_000; quantum = 100 } in
    let (), faults =
      Fault.with_counting (fun () ->
        for i = 0 to threads - 1 do
          ignore
            (Sched.spawn sched (fun tid ->
               let h = L.register t ~tid in
               let rng = Rng.stream ~seed:1 ~index:i in
               for _ = 1 to 400 do
                 let k = Rng.int rng 16 in
                 if Rng.bool rng then ignore (L.insert h ~key:k ~value:k)
                 else ignore (L.remove h ~key:k)
               done))
        done;
        Sched.run sched)
    in
    Fmt.pr "   %-12s dangling-access faults: %d@." name faults
  in
  List.iter run [ "UnsafeFree"; "EBR"; "2GEIBR"; "HP" ];
  Fmt.pr
    "@.   UnsafeFree frees at retire — readers observe garbage; every real@.";
  Fmt.pr "   scheme defers until reservations allow, and the count is 0.@."

(* Acts 3/4 share one rig: a 64-key list, one worker that crashes
   mid-operation after [crash_at] completed ops (start_op + guarded
   read, then [Sched.crash_self] — end_op never runs), and eight
   workers that churn.  Early crash keeps the pre-crash block
   population — all a frozen interval can pin — small. *)
let crashed_churn ?capacity ?(watchdog = false) tracker_name =
  let entry = Registry.find_exn tracker_name in
  let (module T : Tracker_intf.TRACKER) = entry.tracker in
  let module L = Ibr_ds.Harris_list.Make (T) in
  let threads = 9 and crash_at = 20 in
  let cfg =
    { (Tracker_intf.default_config ~threads ()) with
      epoch_freq = 2 * threads; empty_freq = 8 } in
  let t = L.create ~threads cfg in
  let h0 = L.register t ~tid:0 in
  for k = 0 to 63 do ignore (L.insert h0 ~key:k ~value:k) done;
  (match capacity with
   | Some slack ->
     L.set_capacity t (Some ((L.allocator_stats t).live + slack))
   | None -> ());
  let sched = Sched.create (Sched.test_config ~cores:8 ~seed:3 ()) in
  let ops = Array.make threads 0 in
  let work h rng tid n =
    for _ = 1 to n do
      let k = Rng.int rng 64 in
      (try
         if Rng.bool rng then ignore (L.insert h ~key:k ~value:k)
         else ignore (L.remove h ~key:k)
       with Alloc.Exhausted | Fault.Memory_fault (Fault.Alloc_exhausted, _)
         -> ());
      ops.(tid) <- ops.(tid) + 1
    done
  in
  (* The victim: a few real ops, then death inside an operation. *)
  ignore
    (Sched.spawn sched (fun tid ->
       let h = L.register t ~tid in
       let rng = Rng.stream ~seed:77 ~index:0 in
       work h rng tid crash_at;
       let th = L.tracker_handle h in
       T.start_op th;
       ignore (T.read_root th (L.head t));
       Sched.crash_self ()));
  (* Workers churn until the horizon cuts the run (so the watchdog
     never mistakes a *finished* thread for a dead one). *)
  for i = 1 to 8 do
    ignore
      (Sched.spawn sched (fun tid ->
         let h = L.register t ~tid in
         work h (Rng.stream ~seed:77 ~index:i) tid max_int))
  done;
  let dog =
    if not watchdog then None
    else
      (* Period spans several scheduling quanta so every live thread
         provably gets core time between checks, with headroom for the
         longest legitimate gap between completed ops — a sweep burst
         plus a magazine depot flush, charged to the freeing thread
         (DESIGN.md §7c, §9b). *)
      Some
        (Ibr_harness.Watchdog.spawn ~sched ~period:500 ~grace:3 ~threads
           ~progress:(fun tid -> ops.(tid))
           ~footprint:(fun () -> (L.allocator_stats t).live)
           ~eject:(fun tid -> L.eject t ~tid)
           ())
  in
  Sched.run ~horizon:600_000 sched;
  let st = L.allocator_stats t in
  (st, Option.fold ~none:0 ~some:Ibr_harness.Watchdog.ejections dog)

let act3 () =
  Fmt.pr "== Act 3: a crashed thread, with and without the watchdog ==@.";
  Fmt.pr "   (the victim dies between start_op and end_op; its fiber is@.";
  Fmt.pr "    abandoned, so nothing ever releases its reservation)@.@.";
  let report name (st : Alloc.stats) ejections =
    Fmt.pr "   %-22s %10s %10d %12d %5d@." name "" st.freed st.live ejections
  in
  Fmt.pr "   %-22s %10s %10s %12s %5s@." "scheme" "" "freed" "dead+live"
    "ejct";
  let ebr, _ = crashed_churn "EBR" in
  report "EBR (crash)" ebr 0;
  let ebr_dog, ejections = crashed_churn ~watchdog:true "EBR" in
  report "EBR (crash+watchdog)" ebr_dog ejections;
  let ibr, _ = crashed_churn "2GEIBR" in
  report "2GEIBR (crash)" ibr 0;
  Fmt.pr "@.";
  check "watchdog ejected exactly the dead thread" (ejections = 1);
  check "ejection shrinks EBR's dead memory" (ebr_dog.live < ebr.live);
  check "2GEIBR bounded even without a watchdog" (ibr.live < ebr.live);
  Fmt.pr "@."

let act4 () =
  Fmt.pr "== Act 4: the same crash against a capped heap ==@.";
  Fmt.pr "   (capacity = post-prefill live + 300; alloc sweeps, backs@.";
  Fmt.pr "    off, and only then reports Alloc_exhausted)@.@.";
  let run name =
    let (st : Alloc.stats), _ =
      let r, _ =
        Fault.with_counting (fun () -> crashed_churn ~capacity:300 name) in
      r
    in
    Fmt.pr "   %-12s oom_events: %3d   pressure retries: %4d   peak: %d@."
      name st.oom_events st.pressure_retries st.peak_footprint;
    st
  in
  let ebr = run "EBR" in
  let ibr = run "2GEIBR" in
  Fmt.pr "@.";
  check "EBR runs the capped heap dry" (ebr.oom_events > 0);
  check "2GEIBR finishes with zero oom events" (ibr.oom_events = 0);
  Fmt.pr "@."

let () =
  act1 ();
  act2 ();
  act3 ();
  act4 ();
  match !failures with
  | [] -> ()
  | fs ->
    Fmt.pr "@.%d robustness claim(s) FAILED:@." (List.length fs);
    List.iter (fun f -> Fmt.pr "  - %s@." f) fs;
    exit 1
