(* A concurrent key-value cache on Michael's lock-free hash map with
   interval-based reclamation — the paper's motivating deployment:
   many more application threads than cores ("multiprogramming or
   large numbers of application threads", §7), where EBR bleeds
   memory whenever a thread is preempted mid-operation and IBR does
   not.

   We run the same cache workload (oversubscribed 3x) under EBR and
   under 2GEIBR and compare the retired-but-unreclaimed footprint.

     dune exec examples/concurrent_cache.exe
*)


let run_cache tracker_name =
  let threads = 48 in       (* 3x oversubscribed on 16 cores *)
  let spec =
    { (Ibr_harness.Workload.spec_for "hashmap") with key_range = 4096 } in
  let cfg =
    Ibr_harness.Runner_sim.default_config ~threads ~horizon:400_000
      ~cores:16 ~seed:7 ~spec ()
  in
  (* More aggressive stalls: a busy, noisy machine. *)
  let cfg =
    { cfg with
      sched = { cfg.sched with stall_prob = 0.01; stall_len = 120_000 } }
  in
  Option.get
    (Ibr_harness.Runner_sim.run_named ~tracker_name ~ds_name:"hashmap" cfg)

let () =
  Fmt.pr "cache workload: 48 threads on 16 cores, 4096 keys, 50/50 mix@.@.";
  let report (r : Ibr_harness.Stats.t) =
    Fmt.pr
      "  %-8s throughput %8.0f ops/Mcycle | avg unreclaimed %7.1f blocks \
       | peak %6d | faults %d@."
      r.tracker r.throughput r.avg_unreclaimed r.peak_unreclaimed
      (Ibr_harness.Stats.metric r "faults")
  in
  let ebr = run_cache "EBR" in
  let ibr = run_cache "2GEIBR" in
  let hp = run_cache "HP" in
  report ebr;
  report ibr;
  report hp;
  Fmt.pr "@.";
  Fmt.pr "2GEIBR holds %.1fx less dead memory than EBR at %.0f%% of its \
          throughput;@."
    (ebr.avg_unreclaimed /. ibr.avg_unreclaimed)
    (100.0 *. ibr.throughput /. ebr.throughput);
  Fmt.pr "HP's footprint is minimal but costs %.1fx the throughput of \
          2GEIBR.@."
    (ibr.throughput /. hp.throughput)
