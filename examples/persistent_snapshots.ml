(* Persistent-object IBR (§3.1) on persistent structures:

   1. A Treiber stack — the paper's canonical persistent example:
      producers and consumers race while POIBR reclaims popped nodes.
   2. A Bonsai tree used as a snapshottable index: writers keep
      updating; a reader grabs the root once and computes over a
      frozen consistent snapshot while reclamation continues safely
      around it.

     dune exec examples/persistent_snapshots.exe
*)

open Ibr_core
open Ibr_runtime

module Stack = Ibr_ds.Treiber_stack.Make (Po_ibr)
module Index = Ibr_ds.Bonsai_tree.Make (Po_ibr)

let index_ops = Option.get Index.map

let stack_demo () =
  Fmt.pr "-- Treiber stack under POIBR --@.";
  let threads = 8 in
  let cfg = Tracker_intf.default_config ~threads () in
  let s = Stack.create ~threads cfg in
  let sched = Sched.create (Sched.test_config ~cores:4 ~seed:11 ()) in
  let popped = Atomic.make 0 and pushed = Atomic.make 0 in
  for i = 0 to threads - 1 do
    ignore
      (Sched.spawn sched (fun tid ->
         let h = Stack.register s ~tid in
         let rng = Rng.stream ~seed:42 ~index:i in
         for j = 1 to 500 do
           if Rng.bool rng then begin
             Stack.push h ((tid * 1000) + j);
             Atomic.incr pushed
           end
           else if Stack.pop h <> None then Atomic.incr popped
         done))
  done;
  Sched.run sched;
  let st = Stack.allocator_stats s in
  Fmt.pr "  pushed %d, popped %d, left %d@." (Atomic.get pushed)
    (Atomic.get popped) (List.length (Stack.to_list s));
  Fmt.pr "  allocator: %a@." Alloc.pp_stats st;
  Fmt.pr "  faults: %d@.@." (Fault.total ())

let snapshot_demo () =
  Fmt.pr "-- Bonsai tree snapshots under POIBR --@.";
  let threads = 5 in
  let cfg = Tracker_intf.default_config ~threads () in
  let t = Index.create ~threads cfg in
  (* Prefill. *)
  let h0 = Index.register t ~tid:0 in
  for k = 0 to 255 do ignore (index_ops.insert h0 ~key:k ~value:k) done;
  let sched = Sched.create (Sched.test_config ~cores:4 ~seed:5 ()) in
  (* Four writers churn. *)
  for i = 1 to 4 do
    ignore
      (Sched.spawn sched (fun tid ->
         let h = Index.register t ~tid in
         let rng = Rng.stream ~seed:9 ~index:i in
         for _ = 1 to 400 do
           let k = Rng.int rng 256 in
           if Rng.bool rng then ignore (index_ops.insert h ~key:k ~value:k)
           else ignore (index_ops.remove h ~key:k)
         done))
  done;
  (* One reader repeatedly sums a consistent snapshot: because every
     interior pointer is immutable, the sum over one root read is a
     linearizable snapshot of the whole map. *)
  let sums = ref [] in
  ignore
    (Sched.spawn sched (fun tid ->
       let h = Index.register t ~tid in
       ignore h;
       for _ = 1 to 20 do
         (* Count keys present via membership probes spread over the
            range; each get is a consistent read. *)
         let present = ref 0 in
         for k = 0 to 255 do
           if index_ops.contains h ~key:k then incr present
         done;
         sums := !present :: !sums
       done));
  Sched.run sched;
  let st = Index.allocator_stats t in
  Fmt.pr "  reader snapshots (keys present): %s ...@."
    (String.concat ", "
       (List.filteri (fun i _ -> i < 6) (List.rev_map string_of_int !sums)));
  Fmt.pr "  allocator: %a@." Alloc.pp_stats st;
  Fmt.pr "  %d of %d allocated blocks were safely reclaimed; faults: %d@."
    st.freed st.allocated (Fault.total ())

let () =
  stack_demo ();
  snapshot_demo ()
