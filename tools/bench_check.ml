(* CI gate for BENCH_6.json (bench/main.exe --bench-json).

     dune exec tools/bench_check.exe -- NEW.json [BASELINE.json]

   Fails (exit 1) when NEW is malformed — not JSON, missing fields,
   non-finite numbers — or when any (tracker, background) row
   regresses more than 10% in throughput against the same row of
   BASELINE.  The simulator is deterministic, so a committed baseline
   is exactly reproducible in CI: any drift is a real change.  Rows
   present in only one file are reported but do not fail the check
   (schemes come and go across PRs). *)

let fail fmt = Printf.ksprintf (fun s -> prerr_endline ("FAIL: " ^ s); exit 1) fmt

let read_file path =
  let ic = try open_in path with Sys_error e -> fail "%s" e in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let parse path =
  match Ibr_obs.Json.parse (read_file path) with
  | Ok j -> j
  | Error e -> fail "%s: malformed JSON: %s" path e

type row = {
  tracker : string;
  background : bool;
  throughput : float;
  peak_footprint : float;
  retire_p99 : float;
}

let get_mem name j =
  match Ibr_obs.Json.member name j with
  | Some v -> v
  | None -> fail "row missing field %S" name

let get_num path name j =
  match Ibr_obs.Json.to_float (get_mem name j) with
  | Some f when Float.is_finite f -> f
  | Some _ -> fail "%s: field %S is not finite" path name
  | None -> fail "%s: field %S is not a number" path name

let get_str path name j =
  match Ibr_obs.Json.to_string (get_mem name j) with
  | Some s -> s
  | None -> fail "%s: field %S is not a string" path name

let get_bool path name j =
  match get_mem name j with
  | Ibr_obs.Json.Bool b -> b
  | _ -> fail "%s: field %S is not a bool" path name

let rows path j =
  match Option.bind (Ibr_obs.Json.member "rows" j) Ibr_obs.Json.to_list with
  | None | Some [] -> fail "%s: no \"rows\" array" path
  | Some l ->
    List.map
      (fun r ->
         {
           tracker = get_str path "tracker" r;
           background = get_bool path "background" r;
           throughput = get_num path "throughput" r;
           peak_footprint = get_num path "peak_footprint" r;
           retire_p99 = get_num path "retire_p99" r;
         })
      l

let key r = (r.tracker, r.background)

let () =
  let argc = Array.length Sys.argv in
  if argc < 2 || argc > 3 then
    fail "usage: bench_check NEW.json [BASELINE.json]";
  let fresh = rows Sys.argv.(1) (parse Sys.argv.(1)) in
  Printf.printf "%s: %d rows, schema OK\n" Sys.argv.(1) (List.length fresh);
  if argc = 3 then begin
    let base = rows Sys.argv.(2) (parse Sys.argv.(2)) in
    let regressions = ref 0 in
    List.iter
      (fun b ->
         match List.find_opt (fun f -> key f = key b) fresh with
         | None ->
           Printf.printf "  note: row %s/background=%b only in baseline\n"
             b.tracker b.background
         | Some f ->
           let floor = 0.9 *. b.throughput in
           if f.throughput < floor then begin
             incr regressions;
             Printf.printf
               "  REGRESSION %s/background=%b: throughput %.1f < 90%% of \
                baseline %.1f\n"
               b.tracker b.background f.throughput b.throughput
           end)
      base;
    List.iter
      (fun f ->
         if not (List.exists (fun b -> key b = key f) base) then
           Printf.printf "  note: row %s/background=%b only in new file\n"
             f.tracker f.background)
      fresh;
    if !regressions > 0 then
      fail "%d throughput regression(s) vs %s" !regressions Sys.argv.(2);
    Printf.printf "no regressions vs %s\n" Sys.argv.(2)
  end
