(* Regenerate test/golden/stats.csv.

   Runs the exact three fixture configurations of
   test/test_obs.ml:test_golden_csv (keep the two in lockstep!) and
   rewrites the fixture.  Use after an intentional change to the
   registry column set or to simulated virtual time; the test then
   pins the new bytes.

     dune exec tools/regen_golden.exe -- test/golden/stats.csv
*)

open Ibr_harness

let golden_run ~rideable ~tracker ~threads ~horizon ~seed ~retire ~faults =
  let spec = Workload.spec_for ~mix:Workload.write_dominated rideable in
  let base =
    Runner_sim.default_config ~threads ~horizon ~cores:8 ~seed
      ~faults:(Cli.parse_faults faults) ~spec ()
  in
  let cfg =
    { base with
      tracker_cfg =
        { base.tracker_cfg with
          retire_backend = Cli.parse_retire_backend retire } }
  in
  Option.get (Runner_sim.run_named ~tracker_name:tracker ~ds_name:rideable cfg)

let () =
  let path =
    if Array.length Sys.argv > 1 then Sys.argv.(1) else "test/golden/stats.csv"
  in
  let rows =
    [
      golden_run ~rideable:"hashmap" ~tracker:"2GEIBR" ~threads:4
        ~horizon:50_000 ~seed:42 ~retire:"list" ~faults:"none";
      golden_run ~rideable:"hashmap" ~tracker:"EBR" ~threads:4
        ~horizon:50_000 ~seed:42 ~retire:"list" ~faults:"none";
      golden_run ~rideable:"list" ~tracker:"HP" ~threads:3 ~horizon:40_000
        ~seed:7 ~retire:"gated" ~faults:"crash";
    ]
  in
  let oc = open_out path in
  output_string oc (Stats.csv_header ());
  output_char oc '\n';
  List.iter
    (fun r ->
       output_string oc (Stats.to_csv_row r);
       output_char oc '\n')
    rows;
  close_out oc;
  Printf.printf "wrote %s\n" path
