(* Benchmark harness.  Two layers, both printed by one executable:

   1. Bechamel microbenchmarks — *native* wall-clock cost of data-
      structure operations under each reclamation scheme (the
      single-thread instruction-overhead component of Fig. 8), one
      Test.make per (figure panel x scheme), plus ablation kernels
      (empty_freq sweep).  These run the real code with the
      cost-model hooks inactive.

   2. The discrete-event reproduction of every figure: Fig. 7 table,
      Fig. 8a-d and 9a-d sweeps, Fig. 10, the A.6 acceptance checks
      (who wins, by how much, where the curves diverge), and the
      ablation experiments from DESIGN.md §4.

   Output of `dune exec bench/main.exe` is the full reproduction
   record (see EXPERIMENTS.md). *)

open Bechamel
open Toolkit

let ops_per_run = 64

(* A native workload kernel: [ops_per_run] mixed operations against a
   prefilled structure.  The structure persists across runs; the
   balanced mix keeps its size stationary. *)
let make_kernel (module S : Ibr_ds.Ds_intf.RIDEABLE) =
  let m = Option.get S.map in
  let threads = 1 in
  let cfg = Ibr_core.Tracker_intf.default_config ~threads () in
  let t = S.create ~threads cfg in
  let h = S.register t ~tid:0 in
  let key_range = 1024 in
  let rng = Ibr_runtime.Rng.create 0xdead in
  for k = 0 to key_range - 1 do
    if k mod 4 <> 3 then ignore (m.insert h ~key:k ~value:k)
  done;
  Staged.stage (fun () ->
    for _ = 1 to ops_per_run do
      let k = Ibr_runtime.Rng.int rng key_range in
      match Ibr_runtime.Rng.int rng 3 with
      | 0 -> ignore (m.insert h ~key:k ~value:k)
      | 1 -> ignore (m.remove h ~key:k)
      | _ -> ignore (m.contains h ~key:k)
    done)

let figure_tests fig_id ds_name =
  let maker = Ibr_ds.Ds_registry.find_exn ds_name in
  List.filter_map
    (fun (e : Ibr_core.Registry.entry) ->
       if Ibr_ds.Ds_registry.compatible maker e.tracker then
         Some
           (Test.make
              ~name:(Printf.sprintf "%s:%s:%s" fig_id ds_name e.name)
              (make_kernel (maker.instantiate e.tracker)))
       else None)
    Ibr_core.Registry.paper_set

(* Ablation: empty_freq (k) native cost. *)
let ksweep_tests =
  List.map
    (fun k ->
       let maker = Ibr_ds.Ds_registry.find_exn "hashmap" in
       let tracker = (Ibr_core.Registry.find_exn "2GEIBR").tracker in
       let (module S : Ibr_ds.Ds_intf.RIDEABLE) = maker.instantiate tracker
       in
       let m = Option.get S.map in
       let kernel =
         let threads = 1 in
         let cfg =
           { (Ibr_core.Tracker_intf.default_config ~threads ()) with
             empty_freq = k } in
         let t = S.create ~threads cfg in
         let h = S.register t ~tid:0 in
         let rng = Ibr_runtime.Rng.create 3 in
         for key = 0 to 1023 do
           ignore (m.insert h ~key ~value:key)
         done;
         Staged.stage (fun () ->
           for _ = 1 to ops_per_run do
             let key = Ibr_runtime.Rng.int rng 1024 in
             if Ibr_runtime.Rng.bool rng then
               ignore (m.insert h ~key ~value:key)
             else ignore (m.remove h ~key)
           done)
       in
       Test.make ~name:(Printf.sprintf "ablation:empty-freq:k=%d" k) kernel)
    [ 1; 10; 30; 50 ]

(* Ablation: old-vs-new sweep cost.  One kernel = one full sweep over
   [sweep_block_count] retired blocks (snapshot build + per-block
   conflict test), so the printed ns/op is the amortized per-block
   sweep cost.  The retired list is sized for the oversubscribed
   regime the fix targets — Fig. 9 pins ~250 blocks per sweep there.
   The linear predicate rescans the reservation table per block
   (O(threads) each); the sorted snapshot pays one O(T log T) build
   then O(log T) per block — per-block cost stays near-flat in the
   thread count (the residue is the build amortized over the list),
   which is the point of the tentpole change. *)
let sweep_block_count = 256

let sweep_ablation_tests =
  let module TC = Ibr_core.Tracker_common in
  let block_count = sweep_block_count in
  let epoch_range = 10_000 in
  let make_blocks rng =
    Array.init block_count (fun id ->
      let b = Ibr_core.Block.make ~id id in
      let birth = 1 + Ibr_runtime.Rng.int rng epoch_range in
      Ibr_core.Block.set_birth_epoch b birth;
      Ibr_core.Block.set_retire_epoch b (birth + Ibr_runtime.Rng.int rng 64);
      b)
  in
  List.concat_map
    (fun threads ->
       let rng = Ibr_runtime.Rng.create (0x5eeb + threads) in
       (* Interval reservations (TagIBR/2GEIBR family): ~3/4 of the
          threads hold a reservation at sweep time. *)
       let res = TC.Interval_res.create threads in
       for tid = 0 to threads - 1 do
         if Ibr_runtime.Rng.int rng 4 < 3 then begin
           let lo = 1 + Ibr_runtime.Rng.int rng epoch_range in
           Atomic.set res.TC.Interval_res.lower.(tid) lo;
           Atomic.set res.TC.Interval_res.upper.(tid)
             (lo + Ibr_runtime.Rng.int rng 128)
         end
       done;
       (* Era reservations (HE): same density, one era per slot. *)
       let eras =
         Array.init (threads * 4) (fun _ ->
           if Ibr_runtime.Rng.int rng 4 < 3 then
             1 + Ibr_runtime.Rng.int rng epoch_range
           else 0)
       in
       let blocks = make_blocks rng in
       let sweep_with conflict =
         let kept = ref 0 in
         Array.iter (fun b -> if conflict b then incr kept) blocks;
         !kept
       in
       let interval kind mk =
         Test.make
           ~name:(Printf.sprintf "ablation:sweep:interval:%s:t=%d" kind
                    threads)
           (Staged.stage (fun () -> ignore (sweep_with (mk ()))))
       and era kind mk =
         Test.make
           ~name:(Printf.sprintf "ablation:sweep:era:%s:t=%d" kind threads)
           (Staged.stage (fun () -> ignore (sweep_with (mk ()))))
       in
       [ interval "linear" (fun () ->
             TC.Interval_res.conflict_with_snapshot res);
         interval "sorted" (fun () ->
             TC.Conflict.pred
               (TC.Conflict.Intervals (TC.Interval_res.sweep_snapshot res)));
         era "linear" (fun () ->
             let reserved =
               Array.to_list eras |> List.filter (fun e -> e <> 0) in
             fun b ->
               List.exists
                 (fun e ->
                    Ibr_core.Block.birth_epoch b <= e
                    && e <= Ibr_core.Block.retire_epoch b)
                 reserved);
         era "sorted" (fun () ->
             TC.Conflict.pred
               (TC.Conflict.Intervals
                  (TC.Sweep_snapshot.of_points ~none:0 eras))) ])
    [ 8; 72; 100 ]

let all_tests =
  Test.make_grouped ~name:"ibr"
    (figure_tests "fig8a" "list"
     @ figure_tests "fig8b" "hashmap"
     @ figure_tests "fig8c" "nmtree"
     @ figure_tests "fig8d" "bonsai"
     @ ksweep_tests
     @ sweep_ablation_tests)

let run_bechamel () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.3) ~stabilize:false
      ~kde:(Some 500) () in
  let raw = Benchmark.all cfg instances all_tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Fmt.pr "== native per-op cost (Bechamel, monotonic clock) ==@.";
  Fmt.pr "%-32s %14s@." "benchmark" "ns/op";
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result -> rows := (name, ols_result) :: !rows)
    results;
  (* Sweep-ablation kernels iterate over the retired list, not
     [ops_per_run] operations, so they normalize by the list size. *)
  let divisor name =
    let contains ~sub s =
      let n = String.length sub and m = String.length s in
      let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
      go 0
    in
    float_of_int
      (if contains ~sub:"ablation:sweep" name then sweep_block_count
       else ops_per_run)
  in
  List.sort (fun (a, _) (b, _) -> compare a b) !rows
  |> List.iter (fun (name, ols_result) ->
    match Analyze.OLS.estimates ols_result with
    | Some [ est ] ->
      Fmt.pr "%-32s %14.1f@." name (est /. divisor name)
    | _ -> Fmt.pr "%-32s %14s@." name "-");
  Fmt.pr "@."

(* Ablation: retirement backends (DESIGN.md §4).  Same seeded workload
   under List / Buckets / Gated; prints the telemetry table plus the
   CSV rows so CI can archive them. *)
let run_retire_ablation ?(threads_list = [ 16; 32; 48 ]) () =
  let rows =
    Ibr_harness.Experiment.retire_backend_sweep ~threads_list () in
  Fmt.pr "== ablation:retire (backends on hashmap) ==@.%s@."
    (Ibr_harness.Experiment.retire_backend_table rows);
  Fmt.pr "csv:@.%s@." (Ibr_harness.Stats.csv_header_tagged ());
  List.iter
    (fun r -> Fmt.pr "%s@." (Ibr_harness.Stats.to_csv_row_tagged r))
    rows;
  Fmt.pr "@."

(* The robustness campaign (DESIGN.md §7): trackers x fault profiles x
   run lengths; prints the telemetry table, the acceptance checks, and
   the CSV rows so CI can archive them. *)
let run_robustness ?threads ?horizons () =
  let rows = Ibr_harness.Experiment.robustness_sweep ?threads ?horizons () in
  Fmt.pr "== robustness campaign (fault profiles on hashmap) ==@.%s@."
    (Ibr_harness.Experiment.robustness_table rows);
  List.iter
    (fun (c : Ibr_harness.Experiment.check) ->
       Fmt.pr "%s: %s (%s)@."
         (if c.holds then "PASS" else "FAIL")
         c.claim c.detail)
    (Ibr_harness.Experiment.robustness_checks rows);
  Fmt.pr "@.csv:@.%s@." (Ibr_harness.Stats.csv_header_tagged ());
  List.iter
    (fun r -> Fmt.pr "%s@." (Ibr_harness.Stats.to_csv_row_tagged r))
    rows;
  Fmt.pr "@."

(* The hardware leg of the robustness campaign: the profile subset the
   domains backend can honor (no crash injection — a crashed domain
   cannot be simulated, only a stalled one) on a short wall-clock
   ladder.  Rows carry backend=domains so archived CSVs never mix
   machines silently.  Non-deterministic, so no acceptance checks:
   the gate is that every row completes and the watchdog profile
   ejects the parked worker. *)
let run_robustness_domains () =
  let rows =
    Ibr_harness.Experiment.robustness_sweep
      ~backend:Ibr_harness.Experiment.Domains
      ~trackers:[ "EBR"; "HP"; "2GEIBR" ]
      ~profiles:Ibr_harness.Experiment.robustness_profiles_hw ~threads:4
      ~cores:4
      ~horizons:[ 60_000; 120_000 ] (* wall-clock microseconds *)
      ()
  in
  Fmt.pr "== robustness campaign (domains backend, wall clock) ==@.%s@."
    (Ibr_harness.Experiment.robustness_table rows);
  let ejections =
    List.fold_left
      (fun acc (r : Ibr_harness.Stats.t) ->
         acc + Ibr_harness.Stats.metric r "ejections")
      0
      (List.filter
         (fun (r : Ibr_harness.Stats.t) ->
            let n = String.length r.tracker in
            n >= 9 && String.sub r.tracker (n - 9) 9 = "+watchdog")
         rows)
  in
  Fmt.pr "%s: wall-clock watchdog ejected the parked worker (%d ejections)@."
    (if ejections > 0 then "PASS" else "FAIL")
    ejections;
  Fmt.pr "@.csv:@.%s@." (Ibr_harness.Stats.csv_header_tagged ());
  List.iter
    (fun r -> Fmt.pr "%s@." (Ibr_harness.Stats.to_csv_row_tagged r))
    rows;
  Fmt.pr "@.";
  if ejections = 0 then Stdlib.exit 1

(* Ablation: trace overhead.  The observability tentpole's contract is
   zero-cost-when-disabled; this mode measures both halves of it.

   Virtual: the probes never call [Hooks.step], so a traced sim run
   must be *identical* (ops, makespan, throughput) to an untraced one
   — checked exactly, which is far stronger than the <1% acceptance
   bar.  Native: the same bechamel kernel timed with probes disabled
   (the shipping path: one load + branch per emitter) and with tracing
   + histograms enabled, reporting the enabled-state slowdown. *)
let run_trace_overhead () =
  Fmt.pr "== ablation:trace-overhead ==@.";
  let sim_run () =
    let spec =
      { (Ibr_harness.Workload.spec_for "hashmap") with key_range = 512 } in
    let cfg =
      Ibr_harness.Runner_sim.default_config ~threads:8 ~horizon:60_000
        ~cores:8 ~seed:0x7ace ~spec ()
    in
    Option.get
      (Ibr_harness.Runner_sim.run_named ~tracker_name:"2GEIBR"
         ~ds_name:"hashmap" cfg)
  in
  let off = sim_run () in
  Ibr_obs.Probe.start ~threads:10 ();
  Ibr_obs.Probe.enable_hist ();
  let on = sim_run () in
  Ibr_obs.Probe.stop ();
  let identical =
    off.Ibr_harness.Stats.ops = on.Ibr_harness.Stats.ops
    && off.Ibr_harness.Stats.makespan = on.Ibr_harness.Stats.makespan
    && off.Ibr_harness.Stats.throughput = on.Ibr_harness.Stats.throughput
  in
  Fmt.pr "virtual: untraced ops=%d makespan=%d | traced ops=%d makespan=%d@."
    off.Ibr_harness.Stats.ops off.Ibr_harness.Stats.makespan
    on.Ibr_harness.Stats.ops on.Ibr_harness.Stats.makespan;
  Fmt.pr "%s: tracing leaves the virtual-time run bit-identical@."
    (if identical then "PASS" else "FAIL");
  (* Native: one kernel, timed under both probe states. *)
  let measure label =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    let cfg =
      Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:false ()
    in
    let test =
      Test.make ~name:label
        (make_kernel
           ((Ibr_ds.Ds_registry.find_exn "hashmap").instantiate
              (Ibr_core.Registry.find_exn "2GEIBR").tracker))
    in
    let raw = Benchmark.all cfg Instance.[ monotonic_clock ] test in
    let results = Analyze.all ols Instance.monotonic_clock raw in
    let est = ref nan in
    Hashtbl.iter
      (fun _ r ->
         match Analyze.OLS.estimates r with
         | Some [ e ] -> est := e /. float_of_int ops_per_run
         | _ -> ())
      results;
    !est
  in
  let ns_off = measure "trace:off" in
  Ibr_obs.Probe.start ~threads:2 ();
  Ibr_obs.Probe.enable_hist ();
  let ns_on = measure "trace:on" in
  Ibr_obs.Probe.stop ();
  let delta = (ns_on -. ns_off) /. ns_off *. 100.0 in
  Fmt.pr
    "native:  probes disabled %.1f ns/op | tracing+hist enabled %.1f ns/op \
     (%+.1f%%)@."
    ns_off ns_on delta;
  if not identical then Stdlib.exit 1

(* The PR-6 BENCH trajectory: background-reclamation ablation
   (DESIGN.md §9).  Each sweeping paper-set scheme runs the same
   seeded sim workload with reclamation inline (background=false) and
   decoupled through the handoff service (background=true).  A row
   records throughput, the allocator's peak footprint, and the p99
   on-thread retire cost in virtual cycles — the [retire_cost]
   histogram times exactly the mutator-side retire path, which with
   the feature on is a queue append and with it off includes the
   amortized sweep.  Virtual time makes every number deterministic,
   so the committed BENCH_6.json is byte-reproducible and
   tools/bench_check.exe can gate CI on schema and regressions. *)
let run_bench_json ~quick path =
  let schemes = [ "EBR"; "QSBR"; "HP"; "HE"; "TagIBR"; "2GEIBR" ] in
  let threads = if quick then 4 else 8 in
  let horizon = if quick then 30_000 else 100_000 in
  let spec =
    { (Ibr_harness.Workload.spec_for "hashmap") with key_range = 512 } in
  Ibr_obs.Probe.enable_hist ();
  let row tracker background =
    (* One spare core beyond the mutators: the service fiber gets its
       own core, as a dedicated reclaimer thread would, and off-rows
       are unaffected (the mutators never queue either way) — so the
       ablation isolates the retire-path effect from core stealing. *)
    let cfg =
      Ibr_harness.Runner_sim.default_config ~threads ~cores:(threads + 1)
        ~horizon ~seed:0xb6 ~spec ()
    in
    let cfg =
      { cfg with
        Ibr_harness.Runner_sim.tracker_cfg =
          { cfg.Ibr_harness.Runner_sim.tracker_cfg with
            Ibr_core.Tracker_intf.background_reclaim = background } }
    in
    let r =
      Option.get
        (Ibr_harness.Runner_sim.run_named ~tracker_name:tracker
           ~ds_name:"hashmap" cfg)
    in
    (* The histogram was re-baselined by the runner's [begin_run], so
       this summary covers exactly the run above. *)
    let retire_p99 =
      match Ibr_obs.Probe.cost_hist () with
      | Some h ->
        let _, _, _, p99, _ = Ibr_obs.Metrics.summary h in
        p99
      | None -> 0
    in
    Fmt.pr "%-8s background=%-5b thr=%10.0f peak=%6d retire_p99=%4d@."
      tracker background r.Ibr_harness.Stats.throughput
      (Ibr_harness.Stats.metric r "peak_footprint")
      retire_p99;
    Ibr_obs.Json.Obj
      [
        ("tracker", Ibr_obs.Json.Str tracker);
        ("background", Ibr_obs.Json.Bool background);
        ("throughput", Ibr_obs.Json.Num r.Ibr_harness.Stats.throughput);
        ("peak_footprint",
         Ibr_obs.Json.Num
           (float_of_int (Ibr_harness.Stats.metric r "peak_footprint")));
        ("retire_p99", Ibr_obs.Json.Num (float_of_int retire_p99));
      ]
  in
  Fmt.pr "== bench: background-reclaim ablation (sim, deterministic) ==@.";
  let rows =
    List.concat_map
      (fun s ->
         let off = row s false in
         let on = row s true in
         [ off; on ])
      schemes
  in
  Ibr_obs.Probe.stop ();
  let oc = open_out path in
  output_string oc "{\n  \"rows\": [\n";
  let last = List.length rows - 1 in
  List.iteri
    (fun i r ->
       output_string oc ("    " ^ Ibr_obs.Json.encode r);
       output_string oc (if i < last then ",\n" else "\n"))
    rows;
  output_string oc "  ]\n}\n";
  close_out oc;
  Fmt.pr "bench: wrote %d rows -> %s@." (List.length rows) path

(* The PR-7 service campaign (DESIGN.md §10): every sound scheme runs
   the same open-loop profile — Poisson arrivals with the diurnal ramp
   and two spike windows, Zipf-skewed keys, a fleet of six workers
   churning through four census slots — and is held to the same SLO.
   Virtual time makes each row deterministic, so the table in
   EXPERIMENTS.md §8 is byte-reproducible; the exit status gates CI on
   every scheme passing.  The quick variant shrinks the horizon, not
   the shape: churn, spikes and slot reuse all still happen. *)
let run_service_campaign ?(quick = false) () =
  let module Service = Ibr_harness.Service in
  let profile =
    Service.default_profile ~workers:4 ~fleet:6 ~cores:8
      ~horizon:(if quick then 60_000 else 150_000)
      ~seed:0xca11 ~spec:(Ibr_harness.Workload.spec_for "hashmap") ()
  in
  Fmt.pr "== service: open-loop SLO certification (hashmap, churn) ==@.";
  Fmt.pr "%-12s %8s %9s %7s %7s %7s %7s %7s %8s  %s@." "tracker" "arrivals"
    "completed" "att/det" "p50" "p90" "p99" "p999" "peak" "SLO";
  let rows = ref [] and failed = ref 0 in
  List.iter
    (fun (e : Ibr_core.Registry.entry) ->
       match
         Service.run_named ~tracker_name:e.name ~ds_name:"hashmap" profile
       with
       | None -> ()
       | Some r ->
         if not r.Service.slo_pass then incr failed;
         rows := r :: !rows;
         Fmt.pr "%-12s %8d %9d %3d/%-3d %7d %7d %7d %7d %8d  %s@."
           r.Service.tracker r.Service.arrivals r.Service.completed
           r.Service.attaches r.Service.detaches r.Service.p50 r.Service.p90
           r.Service.p99 r.Service.p999 r.Service.peak_footprint
           (if r.Service.slo_pass then "PASS" else "FAIL"))
    Ibr_core.Registry.all;
  Fmt.pr "@.csv:@.%s@." Service.csv_header;
  List.iter (fun r -> Fmt.pr "%s@." (Service.to_csv_row r)) (List.rev !rows);
  Fmt.pr "@.";
  if !failed > 0 then begin
    Fmt.epr "service: %d scheme(s) missed the SLO@." !failed;
    Stdlib.exit 1
  end

(* Remedy comparison under *live* stalls (DESIGN.md §12): the same
   open-loop service on DEBRA+, the same injected stall regime, once
   per watchdog remedy.  Ejection treats a stalled worker as dead,
   but every victim here is alive and resumes — expiring the
   reservations of one caught mid-traversal readmits use-after-free
   (unsound in general: the model checker certifies a minimal UAF
   interleaving in the neutralize_mid_op scenario, replayed in CI).
   Both runs execute in [Fault.Count] mode and print the fault tally;
   whether a fault lands in this one finite window depends on sweep
   timing, so the tally is reported, not gated.  Neutralization
   delivers a restart signal instead: the victim unwinds through
   [Ds_common.with_op], re-protects, and keeps serving — the gate
   demands zero faults, zero ejections, and at least one counted
   recovery.  Virtual time makes both rows deterministic. *)
let run_service_heal () =
  let module Service = Ibr_harness.Service in
  let seed = 0x43a1 and horizon = 150_000 and cores = 4 in
  let run ~neutralize =
    let profile =
      Service.default_profile ~workers:4 ~fleet:6 ~cores ~horizon ~seed
        ~watchdog:(5_000, 2) ~neutralize
        ~spec:(Ibr_harness.Workload.spec_for "list") ()
    in
    (* Stalls fire only when fibers outnumber cores; fleet=6 on 4
       cores keeps the run in the oversubscribed (live-stall)
       regime. *)
    let sched =
      Ibr_runtime.Sched.create
        { Ibr_runtime.Sched.default_config with
          cores; seed; stall_prob = 0.3; stall_len = 30_000 }
    in
    let exec = Ibr_harness.Run_engine.sim_exec ~sched ~horizon in
    Ibr_core.Fault.with_counting (fun () ->
      match
        Service.run_named_exec ~exec ~tracker_name:"DEBRA+"
          ~ds_name:"list" profile
      with
      | Some r -> r
      | None -> assert false (* DEBRA+ runs every rideable *))
  in
  Fmt.pr "== service: watchdog remedy under live stalls (DEBRA+) ==@.";
  Fmt.pr "%-12s %9s %7s %7s %5s %5s %5s %7s@." "remedy" "completed" "p99"
    "p999" "ejct" "ntrl" "rcvr" "faults";
  let row name (r, faults) =
    Fmt.pr "%-12s %9d %7d %7d %5d %5d %5d %7d@." name r.Service.completed
      r.Service.p99 r.Service.p999 r.Service.ejections
      r.Service.neutralizations r.Service.recovered faults
  in
  let ((ej, ej_faults) as eject) = run ~neutralize:false in
  let ((nt, nt_faults) as neut) = run ~neutralize:true in
  row "eject" eject;
  row "neutralize" neut;
  Fmt.pr "@.csv:@.%s@." Service.csv_header;
  Fmt.pr "%s@.%s@.@." (Service.to_csv_row ej) (Service.to_csv_row nt);
  let gate name ok =
    Fmt.pr "%s: %s@." (if ok then "PASS" else "FAIL") name;
    ok
  in
  let ok =
    [
      gate "eject remedy wrote off live workers (ejections > 0)"
        (ej.Service.ejections > 0);
      gate "neutralize remedy never ejected" (nt.Service.ejections = 0);
      gate "neutralize remedy signalled and healed (ntrl > 0, rcvr > 0)"
        (nt.Service.neutralizations > 0 && nt.Service.recovered > 0);
      gate "neutralized run is fault-free" (nt_faults = 0);
    ]
  in
  if ej_faults > 0 then
    Fmt.pr "note: ejecting live workers readmitted %d memory fault(s)@."
      ej_faults;
  Fmt.pr "@.";
  if List.exists not ok then Stdlib.exit 1

(* The workload-diversity campaign (ISSUE 10): scheme x YCSB-like
   profile, each profile on a capability-matched rideable (see
   Experiment.profile_rideables).  Deterministic sim rows; the table
   is the one committed in EXPERIMENTS.md. *)
let run_profiles ?(quick = false) () =
  let threads = if quick then 8 else 16 in
  let horizon = if quick then 30_000 else 60_000 in
  let rows = Ibr_harness.Experiment.profile_sweep ~threads ~horizon () in
  Fmt.pr
    "== workload profiles (scheme x YCSB mix, t=%d, cells thr / space) ==@.%s@."
    threads
    (Ibr_harness.Experiment.profile_table rows);
  Fmt.pr "csv:@.%s@." (Ibr_harness.Stats.csv_header_tagged ());
  List.iter
    (fun r -> Fmt.pr "%s@." (Ibr_harness.Stats.to_csv_row_tagged r))
    rows;
  Fmt.pr "@."

let run_figures () =
  let threads_list = Ibr_harness.Experiment.quick_threads in
  Fmt.pr "== Fig. 7: scheme tradeoffs ==@.%s@."
    (Ibr_harness.Experiment.fig7_table ());
  let all_rows = ref [] in
  List.iter
    (fun ds ->
       let r = Ibr_harness.Experiment.fig8_9 ~threads_list ds in
       print_string (Ibr_harness.Chart.to_string r.throughput_fig);
       print_string (Ibr_harness.Chart.to_string r.space_fig);
       all_rows := (ds, r.rows) :: !all_rows)
    [ "list"; "hashmap"; "nmtree"; "bonsai" ];
  let r10 = Ibr_harness.Experiment.fig10 ~threads_list () in
  print_string (Ibr_harness.Chart.to_string r10.space_fig);
  (* Acceptance checks per mutable-pointer panel. *)
  List.iter
    (fun (ds, rows) ->
       let checks = Ibr_harness.Experiment.headline_checks rows in
       if checks <> [] then begin
         Fmt.pr "== A.6 checks (%s) ==@." ds;
         List.iter
           (fun (c : Ibr_harness.Experiment.check) ->
              Fmt.pr "%s: %s (%s)@."
                (if c.holds then "PASS" else "FAIL")
                c.claim c.detail)
           checks;
         Fmt.pr "@."
       end)
    (List.rev !all_rows);
  (* Ablations (DESIGN.md §4). *)
  let thr, spc, _ = Ibr_harness.Experiment.empty_freq_sweep () in
  print_string (Ibr_harness.Chart.to_string thr);
  print_string (Ibr_harness.Chart.to_string spc);
  print_string
    (Ibr_harness.Chart.to_string (Ibr_harness.Experiment.fence_cost_sweep ()));
  print_string
    (Ibr_harness.Chart.to_string
       (Ibr_harness.Experiment.tagibr_strategy_sweep ()));
  run_profiles ();
  run_retire_ablation ();
  run_robustness ();
  run_service_campaign ()

let () =
  let module Cli = Ibr_harness.Cli in
  let skip_bechamel = Cli.has_flag Sys.argv "--figures-only" in
  let skip_figures = Cli.has_flag Sys.argv "--bechamel-only" in
  let retire_only = Cli.has_flag Sys.argv "--retire-only" in
  let retire_quick = Cli.has_flag Sys.argv "--retire-quick" in
  let robust_only = Cli.has_flag Sys.argv "--robust-only" in
  let robust_quick = Cli.has_flag Sys.argv "--robust-quick" in
  let robust_domains = Cli.has_flag Sys.argv "--robust-domains" in
  let profiles_only = Cli.has_flag Sys.argv "--profiles-only" in
  let profiles_quick = Cli.has_flag Sys.argv "--profiles-quick" in
  let service_only = Cli.has_flag Sys.argv "--service-only" in
  let service_quick = Cli.has_flag Sys.argv "--service-quick" in
  let service_heal = Cli.has_flag Sys.argv "--service-heal" in
  let trace_overhead = Cli.has_flag Sys.argv "--trace-overhead" in
  let bench_json = Cli.find_value Sys.argv "--bench-json" in
  let bench_quick = Cli.has_flag Sys.argv "--bench-quick" in
  (* Same observability switches as bin/: a trace of a whole campaign
     is heavy but Perfetto copes; rings drop-oldest beyond capacity. *)
  let trace_out = Cli.find_value Sys.argv "--trace" in
  if trace_out <> None then Ibr_obs.Probe.start ~threads:16 ();
  if Cli.has_flag Sys.argv "--hist" then Ibr_obs.Probe.enable_hist ();
  if trace_overhead then run_trace_overhead ()
  else if bench_json <> None then
    run_bench_json ~quick:bench_quick (Option.get bench_json)
  else if profiles_quick then run_profiles ~quick:true ()
  else if profiles_only then run_profiles ()
  else if retire_quick then run_retire_ablation ~threads_list:[ 8; 16 ] ()
  else if retire_only then run_retire_ablation ()
  else if service_heal then run_service_heal ()
  else if service_quick then run_service_campaign ~quick:true ()
  else if service_only then run_service_campaign ()
  else if robust_domains then run_robustness_domains ()
  else if robust_quick then
    (* Reduced scale, but the tail of the horizon ladder must still be
       past the robust schemes' pinned-set saturation point or the
       flat-tail checks have nothing to measure. *)
    run_robustness ~threads:8 ~horizons:[ 60_000; 120_000; 240_000 ] ()
  else if robust_only then run_robustness ()
  else begin
    if not skip_bechamel then run_bechamel ();
    if not skip_figures then run_figures ()
  end;
  if Ibr_obs.Probe.hist_enabled () then
    Fmt.pr "%t" Ibr_obs.Trace_export.report_hist;
  match trace_out with
  | None -> ()
  | Some path ->
    Ibr_obs.Trace_export.write_file path;
    (match Ibr_obs.Trace_export.validate_file path with
     | Ok n -> Fmt.pr "trace: %d events -> %s@." n path
     | Error msg ->
       Fmt.epr "trace: INVALID (%s)@." msg;
       Stdlib.exit 1)
