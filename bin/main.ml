(* Command-line microbenchmark runner, mirroring the artifact's
   `bin/main -r <rideable> -t <threads> -i <interval> -d tracker=<mm>`
   workflow (paper appendix A.5) on the simulator or real-domains
   backend, including the parharness-style `--meta` Cartesian sweeps
   (`--meta t:4:16:36 --meta d:EBR:2GEIBR` runs all six combinations).
   Prints one result row per configuration, optionally appending CSV. *)

open Cmdliner
module Cli = Ibr_harness.Cli

let run_one ~(base : Cli.base) ~cores ~seed ~backend ~empty_freq ~epoch_freq
    ~key_range ~background_reclaim ~magazine_size ~handoff_batch ~output
    ~verbose =
  let { Cli.rideable; tracker; threads; interval; mix; retire; faults } =
    base in
  let mix = Cli.parse_mix mix in
  let spec =
    let base = Ibr_harness.Workload.spec_for ~mix rideable in
    match key_range with
    | Some r -> { base with key_range = r }
    | None -> base
  in
  let override_tracker_cfg (cfg : Ibr_core.Tracker_intf.config) =
    let cfg =
      { cfg with retire_backend = Cli.parse_retire_backend retire } in
    let cfg =
      match empty_freq with Some k -> { cfg with empty_freq = k } | None -> cfg
    in
    let cfg =
      match epoch_freq with
      | Some k -> { cfg with epoch_freq = k * threads }
      | None -> cfg
    in
    let cfg =
      if background_reclaim then
        { cfg with Ibr_core.Tracker_intf.background_reclaim = true }
      else cfg
    in
    let cfg =
      match magazine_size with
      | Some m -> { cfg with magazine_size = m }
      | None -> cfg
    in
    match handoff_batch with
    | Some k -> { cfg with handoff_batch = k }
    | None -> cfg
  in
  let result =
    match backend with
    | "sim" ->
      let base =
        Ibr_harness.Runner_sim.default_config ~threads ~horizon:interval
          ~cores ~seed ~faults:(Cli.parse_faults faults) ~spec ()
      in
      let cfg =
        { base with tracker_cfg = override_tracker_cfg base.tracker_cfg } in
      Ibr_harness.Runner_sim.run_named ~tracker_name:tracker
        ~ds_name:rideable cfg
    | "domains" ->
      (* -i is microseconds here: 1 virtual cycle ~ 1 us, so the same
         -i reaches a comparable run length on either backend.  Fault
         profiles the backend cannot honor raise [Unsupported]. *)
      let base =
        Ibr_harness.Runner_domains.default_config ~threads
          ~duration_s:(float_of_int interval /. 1e6) ~seed
          ~faults:(Cli.parse_faults faults) ~spec ()
      in
      let cfg =
        { base with tracker_cfg = override_tracker_cfg base.tracker_cfg } in
      Ibr_harness.Runner_domains.run_named ~tracker_name:tracker
        ~ds_name:rideable cfg
    | s -> failwith (Printf.sprintf "unknown backend %S (sim|domains)" s)
  in
  match result with
  | None ->
    Fmt.epr "error: tracker %s is not compatible with rideable %s@." tracker
      rideable;
    exit 1
  | Some r ->
    if verbose then
      Fmt.pr "cores=%d seed=%d backend=%s costs=%a@." cores seed backend
        Ibr_runtime.Cost.pp !Ibr_core.Prim.costs;
    Fmt.pr "%a@." Ibr_harness.Stats.pp r;
    (match output with
     | None -> ()
     | Some path ->
       let existed = Sys.file_exists path in
       let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
       if not existed then begin
         output_string oc (Ibr_harness.Stats.csv_header ());
         output_char oc '\n'
       end;
       output_string oc (Ibr_harness.Stats.to_csv_row r);
       output_char oc '\n';
       close_out oc;
       Fmt.pr "appended to %s@." path)

(* ---- open-loop service simulation (--service) ---- *)

let run_service ~rideable ~tracker ~threads ~interval ~cores ~seed ~backend
    ~fleet ~period ~arrival ~zipf ~watchdog ~slo_p50 ~slo_p99 ~slo_p999
    ~slo_peak ~key_range ~output ~verbose =
  let module Service = Ibr_harness.Service in
  let spec =
    let base = Ibr_harness.Workload.spec_for rideable in
    match key_range with
    | Some r -> { base with key_range = r }
    | None -> base
  in
  let arrival =
    match Service.arrival_of_string arrival with
    | Some a -> a
    | None ->
      failwith
        (Printf.sprintf "unknown arrival process %S (poisson|bursty)" arrival)
  in
  let slo =
    let d = Service.default_slo in
    {
      Service.p50 = Option.value slo_p50 ~default:d.Service.p50;
      p99 = Option.value slo_p99 ~default:d.Service.p99;
      p999 = Option.value slo_p999 ~default:d.Service.p999;
      peak_footprint = Option.value slo_peak ~default:d.Service.peak_footprint;
    }
  in
  let fleet = Option.value fleet ~default:(threads + 2) in
  let profile =
    Service.default_profile ~workers:threads ~fleet
      ~cores ~horizon:interval ~seed ~arrival ~period ~zipf_theta:zipf
      ?watchdog:(if watchdog then Some (15_000, 3) else None)
      ~slo ~spec ()
  in
  let result =
    match backend with
    | "sim" -> Service.run_named ~tracker_name:tracker ~ds_name:rideable profile
    | "domains" ->
      (* The fleet workers become real domains; -i (the horizon) is a
         wall-clock duration in microseconds under 1 cycle ~ 1 us. *)
      let exec =
        Ibr_harness.Run_engine.domains_exec ~threads:fleet
          ~duration_s:(float_of_int interval /. 1e6) ~seed
          ~faults:Ibr_harness.Runner_intf.No_faults ()
      in
      Service.run_named_exec ~exec ~tracker_name:tracker ~ds_name:rideable
        profile
    | s -> failwith (Printf.sprintf "unknown backend %S (sim|domains)" s)
  in
  match result with
  | None ->
    Fmt.epr "error: tracker %s is not compatible with rideable %s@." tracker
      rideable;
    exit 1
  | Some r ->
    Fmt.pr "%a@." Service.pp r;
    if verbose then Fmt.pr "verdicts: %s@." (Service.verdicts_csv r);
    (match output with
     | None -> ()
     | Some path ->
       let existed = Sys.file_exists path in
       let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
       if not existed then begin
         output_string oc Service.csv_header;
         output_char oc '\n'
       end;
       output_string oc (Service.to_csv_row r);
       output_char oc '\n';
       close_out oc;
       Fmt.pr "appended to %s@." path);
    (* CI gates on the SLO verdict. *)
    if not r.Service.slo_pass then exit 1

(* ---- model checking (--check / --check-replay) ---- *)

let trace_filename name =
  String.map (fun c -> if c = '/' then '_' else c) name ^ ".trace"

(* Run the scenario suite (or one scenario) under bounded systematic
   exploration; shrink and optionally save any witness found.  Exit
   status reflects expectation mismatches, so CI can gate on it. *)
let run_check ~target ~bound ~budget ~out ~verbose =
  let open Ibr_check in
  let cases = Scenarios.cases () in
  let selected =
    if target = "all" then cases
    else
      match Scenarios.find target with
      | Some c -> [ c ]
      | None ->
        failwith
          (Printf.sprintf "unknown scenario %S; known:\n  %s" target
             (String.concat "\n  "
                (List.map
                   (fun (c : Scenarios.case) -> c.scenario.Scenario.name)
                   cases)))
  in
  (match out with
   | Some dir when not (Sys.file_exists dir) -> Sys.mkdir dir 0o755
   | _ -> ());
  let mismatches = ref 0 in
  List.iter
    (fun (c : Scenarios.case) ->
       let name = c.scenario.Scenario.name in
       let bound = Option.value bound ~default:c.bound in
       let outcome = Check.check ~bound ~budget c.scenario in
       Fmt.pr "%-32s %a@." name Check.pp_verdict outcome.verdict;
       (match outcome.minimal with
        | None -> ()
        | Some (tr, stats) ->
          Fmt.pr "  minimal witness: %d switches, %d steps (%d shrink replays)@."
            (Trace.switches tr) (Trace.total_steps tr) stats.Shrink.replays;
          if verbose then Fmt.pr "%a" Trace.pp tr;
          (match out with
           | None -> ()
           | Some dir ->
             let path = Filename.concat dir (trace_filename name) in
             Trace.to_file path tr;
             Fmt.pr "  witness written to %s@." path));
       let ok =
         match outcome.verdict, c.expect with
         | Check.Certified _, Scenarios.Safe
         | Check.Witness _, Scenarios.Faulty -> true
         | (Check.Certified _ | Check.Witness _ | Check.Exhausted _), _ -> false
       in
       if not ok then begin
         incr mismatches;
         Fmt.pr "  EXPECTATION MISMATCH: expected %s@."
           (match c.expect with
            | Scenarios.Safe -> "no fault (certification)"
            | Scenarios.Faulty -> "a fault witness")
       end)
    selected;
  if !mismatches > 0 then begin
    Fmt.epr "%d expectation mismatch(es)@." !mismatches;
    exit 1
  end

(* Deterministically replay a checked-in trace file and report whether
   the recorded fault reproduces. *)
let run_replay ~path =
  let open Ibr_check in
  match Trace.of_file path with
  | Error msg -> failwith (Printf.sprintf "%s: %s" path msg)
  | Ok tr ->
    (match Scenarios.find tr.Trace.scenario with
     | None ->
       failwith (Printf.sprintf "%s: unknown scenario %S" path tr.Trace.scenario)
     | Some c ->
       let result = Engine.replay c.scenario tr in
       (match result.Engine.failure with
        | Some f ->
          Fmt.pr "%s: reproduced: %s (%d dispatches, %d preemptions)@."
            path f result.Engine.dispatches result.Engine.preemptions
        | None ->
          Fmt.epr "%s: trace did NOT reproduce a fault@." path;
          exit 1))

let list_menu () =
  Fmt.pr "rideables:            (capabilities: map, queue, range, bulk)@.";
  List.iter
    (fun (m : Ibr_ds.Ds_registry.maker) ->
       Fmt.pr "  %-20s %s@." m.ds_name
         (Ibr_ds.Ds_intf.caps_to_string m.caps))
    Ibr_ds.Ds_registry.all;
  Fmt.pr "mixes:@.";
  List.iter
    (fun mix ->
       let need = Ibr_harness.Workload.required mix in
       Fmt.pr "  %-20s needs %-15s (%s)@."
         (Ibr_harness.Workload.mix_name mix)
         (Ibr_ds.Ds_intf.caps_to_string need)
         (String.concat ", "
            (List.map
               (fun (m : Ibr_ds.Ds_registry.maker) -> m.ds_name)
               (Ibr_ds.Ds_registry.supporting need))))
    Ibr_harness.Workload.profiles;
  Fmt.pr "trackers:@.";
  List.iter
    (fun (e : Ibr_core.Registry.entry) ->
       let p = Ibr_core.Registry.props e in
       Fmt.pr "  %-12s %s@." e.name p.summary)
    Ibr_core.Registry.all;
  Fmt.pr "retire backends:@.";
  List.iter
    (fun b -> Fmt.pr "  %s@." (Ibr_core.Reclaimer.backend_name b))
    Ibr_core.Reclaimer.all_backends

(* ---- cmdliner wiring ---- *)

let rideable =
  Arg.(value & opt string "hashmap"
       & info [ "r"; "rideable" ] ~docv:"NAME"
           ~doc:"Data structure: list, hashmap, rhashmap, nmtree,                  bonsai, stack, msqueue (see --menu for capabilities).")

let tracker =
  Arg.(value & opt string "2GEIBR"
       & info [ "d"; "tracker" ] ~docv:"NAME"
           ~doc:"Reclamation scheme (see --menu).")

let threads =
  Arg.(value & opt int 16
       & info [ "t"; "threads" ] ~docv:"N" ~doc:"Worker thread count.")

let interval =
  Arg.(value & opt int 200_000
       & info [ "i"; "interval" ] ~docv:"N"
           ~doc:"Run length: virtual cycles (sim) or microseconds                  (domains); 1 cycle ~ 1 us, so the same -i is comparable                  on either backend.")

let mix =
  Arg.(value & opt string "write"
       & info [ "m"; "mix" ] ~docv:"MIX"
           ~doc:"Workload mix: write (50/50 ins/rm), read (90% gets),                  or a YCSB-like profile A-F (A update-heavy, B                  read-mostly, C read-only, D queue churn, E scan-heavy,                  F migration; see --menu for capability needs).")

let retire =
  Arg.(value & opt string "list"
       & info [ "b"; "retire-backend" ] ~docv:"B"
           ~doc:"Retirement backend: list (flat oracle), buckets                  (epoch-bucketed limbo lists), or gated (buckets plus                  sweep gating).")

let faults =
  Arg.(value & opt string "none"
       & info [ "f"; "faults" ] ~docv:"PROFILE"
           ~doc:"Fault profile: none, stall-storm, crash, crash+capped,                  crash+watchdog, stall+watchdog, or stall+neutralize                  (stall storm plus a neutralizing watchdog: stalled                  workers get a restart signal and recover instead of                  being ejected).  The domains backend honors none,                  stall-storm, stall+watchdog and stall+neutralize; crash                  profiles need the simulator and fail fast otherwise.")

let cores =
  Arg.(value & opt int 72
       & info [ "cores" ] ~docv:"N" ~doc:"Simulated hardware threads.")

let background_reclaim =
  Arg.(value & flag
       & info [ "background-reclaim" ]
           ~doc:"Take reclamation off the critical path: retire appends \
                 to a per-thread handoff queue drained by a dedicated \
                 reclaimer (a fiber on sim, a domain on domains).")

let magazine_size =
  Arg.(value & opt (some int) None
       & info [ "magazine-size" ] ~docv:"N"
           ~doc:"Blocks per allocator magazine (per-thread free-block \
                 cache; default 64).")

let handoff_batch =
  Arg.(value & opt (some int) None
       & info [ "handoff-batch" ] ~docv:"K"
           ~doc:"Buffer K retirements per thread before publishing them \
                 to the background reclaimer's handoff queue (default 1 \
                 = publish immediately).")

let seed =
  Arg.(value & opt int 0xbeef & info [ "seed" ] ~docv:"N" ~doc:"PRNG seed.")

let backend =
  Arg.(value & opt string "sim"
       & info [ "backend" ] ~docv:"B"
           ~doc:"Execution backend: sim (discrete-event) or domains (real).")

let empty_freq =
  Arg.(value & opt (some int) None
       & info [ "empty-freq" ] ~docv:"K"
           ~doc:"Reclamation attempt every K retirements (paper: 30).")

let epoch_freq =
  Arg.(value & opt (some int) None
       & info [ "epoch-freq" ] ~docv:"K"
           ~doc:"Epoch advance every K*threads allocations per thread.")

let key_range =
  Arg.(value & opt (some int) None
       & info [ "key-range" ] ~docv:"N" ~doc:"Override the key range.")

let output =
  Arg.(value & opt (some string) None
       & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Append a CSV row to FILE.")

let menu =
  Arg.(value & flag
       & info [ "menu" ] ~doc:"List available rideables and trackers.")

let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Chatty output.")

let check =
  Arg.(value & opt (some string) None
       & info [ "check" ] ~docv:"SCENARIO|all"
           ~doc:"Model-check a scenario (or the whole suite) by bounded                  systematic schedule exploration instead of benchmarking.")

let check_bound =
  Arg.(value & opt (some int) None
       & info [ "check-bound" ] ~docv:"N"
           ~doc:"Preemption bound for --check (default: per-scenario).")

let check_budget =
  Arg.(value & opt int 50_000
       & info [ "check-budget" ] ~docv:"N"
           ~doc:"Schedule budget for --check (default 50000).")

let check_out =
  Arg.(value & opt (some string) None
       & info [ "check-out" ] ~docv:"DIR"
           ~doc:"Write minimized witness traces for --check into DIR.")

let check_replay =
  Arg.(value & opt (some string) None
       & info [ "check-replay" ] ~docv:"FILE"
           ~doc:"Replay a recorded schedule trace and verify the fault                  reproduces.")

let service =
  Arg.(value & flag
       & info [ "service" ]
           ~doc:"Run the open-loop service simulation instead of the \
                 closed-loop microbenchmark: arrivals on a Poisson or \
                 bursty schedule (diurnal ramp + spikes), Zipf-skewed \
                 keys, worker fibers joining and leaving the tracker \
                 census, SLO pass/fail verdicts (exit status 1 on \
                 FAIL).  -t sets the census capacity, -i the horizon.")

let service_fleet =
  Arg.(value & opt (some int) None
       & info [ "service-fleet" ] ~docv:"N"
           ~doc:"Worker fibers sharing the census slots (default \
                 threads + 2, so attach contention and slot reuse \
                 happen constantly).")

let service_period =
  Arg.(value & opt int 60
       & info [ "service-period" ] ~docv:"CYCLES"
           ~doc:"Base mean inter-arrival gap in virtual cycles.")

let service_arrival =
  Arg.(value & opt string "poisson"
       & info [ "service-arrival" ] ~docv:"PROCESS"
           ~doc:"Arrival process: poisson or bursty.")

let service_zipf =
  Arg.(value & opt float 0.9
       & info [ "service-zipf" ] ~docv:"THETA"
           ~doc:"Zipf hot-key skew exponent (0 = uniform).")

let service_watchdog =
  Arg.(value & flag
       & info [ "service-watchdog" ]
           ~doc:"Arm the census-aware ejection watchdog during the \
                 service run.")

let slo_p50 =
  Arg.(value & opt (some int) None
       & info [ "slo-p50" ] ~docv:"CYCLES"
           ~doc:"SLO target for p50 latency (virtual cycles).")

let slo_p99 =
  Arg.(value & opt (some int) None
       & info [ "slo-p99" ] ~docv:"CYCLES"
           ~doc:"SLO target for p99 latency (virtual cycles).")

let slo_p999 =
  Arg.(value & opt (some int) None
       & info [ "slo-p999" ] ~docv:"CYCLES"
           ~doc:"SLO target for p999 latency (virtual cycles).")

let slo_peak =
  Arg.(value & opt (some int) None
       & info [ "slo-peak" ] ~docv:"BLOCKS"
           ~doc:"SLO target for peak allocator footprint (blocks).")

let metas =
  Arg.(value & opt_all string []
       & info [ "meta" ] ~docv:"KEY:V1:V2:..."
           ~doc:(Printf.sprintf
                   "Cartesian sweep over %s; repeatable, parharness style."
                   Cli.meta_key_doc))

let trace =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Record a probe trace of the run(s) and write it as                  Chrome trace-event JSON (load in Perfetto or                  chrome://tracing).")

let hist =
  Arg.(value & flag
       & info [ "hist" ]
           ~doc:"Collect retire-age and per-primitive cost histograms;                  prints a summary and adds retire_age columns to the CSV                  row.")

let cmd =
  let doc = "run one IBR microbenchmark configuration" in
  let term =
    Term.(
      const (fun menu_flag rideable tracker threads interval mix retire
              faults cores seed backend empty_freq epoch_freq key_range
              background_reclaim magazine_size handoff_batch
              output verbose metas trace hist check check_bound check_budget
              check_out check_replay service service_fleet service_period
              service_arrival service_zipf service_watchdog slo_p50 slo_p99
              slo_p999 slo_peak ->
          if menu_flag then list_menu ()
          else
            try
              match check, check_replay with
              | Some target, _ ->
                run_check ~target ~bound:check_bound ~budget:check_budget
                  ~out:check_out ~verbose
              | None, Some path -> run_replay ~path
              | None, None when service ->
                run_service ~rideable ~tracker ~threads ~interval ~cores
                  ~seed ~backend ~fleet:service_fleet ~period:service_period
                  ~arrival:service_arrival ~zipf:service_zipf
                  ~watchdog:service_watchdog ~slo_p50 ~slo_p99 ~slo_p999
                  ~slo_peak ~key_range ~output ~verbose
              | None, None ->
                (* Observability switches.  Rings grow on demand, so
                   the thread hint only sizes the initial table. *)
                if trace <> None then
                  Ibr_obs.Probe.start ~threads:(threads + 2) ();
                if hist then Ibr_obs.Probe.enable_hist ();
                List.iter
                  (fun (base : Cli.base) ->
                     run_one ~base ~cores ~seed ~backend ~empty_freq
                       ~epoch_freq ~key_range ~background_reclaim
                       ~magazine_size ~handoff_batch ~output ~verbose)
                  (Cli.expand_metas metas
                     { Cli.rideable; tracker; threads; interval; mix;
                       retire; faults });
                if hist then Fmt.pr "%t" Ibr_obs.Trace_export.report_hist;
                (match trace with
                 | None -> ()
                 | Some path ->
                   Ibr_obs.Trace_export.write_file path;
                   (match Ibr_obs.Trace_export.validate_file path with
                    | Ok n -> Fmt.pr "trace: %d events -> %s@." n path
                    | Error msg ->
                      Fmt.epr "trace: INVALID (%s)@." msg;
                      Stdlib.exit 1))
            with
            | Failure msg | Invalid_argument msg ->
              Fmt.epr "error: %s@." msg;
              Stdlib.exit 1
            | Ibr_harness.Runner_intf.Unsupported _ as e ->
              Fmt.epr "error: %s@." (Printexc.to_string e);
              Stdlib.exit 1)
      $ menu $ rideable $ tracker $ threads $ interval $ mix $ retire
      $ faults $ cores $ seed $ backend $ empty_freq $ epoch_freq $ key_range
      $ background_reclaim $ magazine_size $ handoff_batch
      $ output $ verbose $ metas $ trace $ hist $ check $ check_bound
      $ check_budget $ check_out $ check_replay $ service $ service_fleet
      $ service_period $ service_arrival $ service_zipf $ service_watchdog
      $ slo_p50 $ slo_p99 $ slo_p999 $ slo_peak)
  in
  Cmd.v (Cmd.info "ibr-bench" ~doc) term

let () = exit (Cmd.eval cmd)
