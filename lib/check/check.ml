(* Bounded systematic exploration of schedules (CHESS-style).

   The exhaustive strategy is a stateless-model-checking DFS over
   dispatch decisions, bounded by the number of *preemptions* — places
   where the schedule switches away from a thread that could have kept
   running.  Switches at a thread's death are free, so bound 0 already
   covers every non-preemptive interleaving of completion orders, and
   small bounds cover the schedules that real races live in (the CHESS
   observation: most concurrency bugs need very few preemptions).

   The search re-executes the scenario once per schedule: a schedule
   is a *forced prefix* of decisions followed by the non-preemptive
   default (continue the current thread; on its death the lowest-tid
   runnable one).  After each run, the decisions the default made
   become new stack frames whose admissible alternatives (remaining
   preemption budget permitting) are pushed for later exploration;
   backtracking takes the deepest frame with an untried alternative,
   truncates the stack there, and reruns.  Scenarios are deterministic
   under a fixed schedule, so re-execution is exact replay — this is
   checked, not assumed.

   Iterative deepening over the bound (0, 1, ..) means the first
   witness found uses the fewest preemptions any witness needs; the
   shrinker then minimizes the trace itself. *)

type verdict =
  | Certified of { schedules : int; bound : int }
    (* Every schedule with at most [bound] preemptions passed. *)
  | Witness of {
      trace : Trace.t;        (* full failing schedule, unshrunk *)
      failure : string;
      schedules : int;        (* schedules executed before it was found *)
      preemptions : int;      (* preemptions the witness run used *)
    }
  | Exhausted of { schedules : int }
    (* Budget ran out before the bound was fully explored. *)

exception Budget
exception Nondeterministic of string

(* One decision point of the last executed run. *)
type frame = {
  mutable chosen : int;           (* tid taken at this point *)
  mutable pre_after : int;        (* preemptions up to and including it *)
  mutable untried : (int * int) list;
    (* (alternative tid, preemptions if taken) not yet explored *)
}

let costs_preemption ~runnable ~current tid =
  current >= 0 && tid <> current && Array.exists (Int.equal current) runnable

(* Execute one schedule: forced prefix, then default.  Returns the
   engine result plus, for each decision at depth >= [skip], the
   (runnable, current, chosen) triple needed to build its frame. *)
let run_schedule scenario ~forced ~skip ~expected =
  let forced = Array.of_list forced in
  let depth = ref 0 in
  let observed = ref [] in
  let decide ~runnable ~current =
    let i = !depth in
    incr depth;
    let tid =
      if i < Array.length forced then forced.(i)
      else Engine.default_choice ~runnable ~current
    in
    if i < skip then begin
      (* Replayed prefix: must match the frame that forced it. *)
      match expected with
      | Some frames when i < Array.length frames
                         && frames.(i).chosen <> tid ->
        raise (Nondeterministic
                 (Printf.sprintf
                    "%s: decision %d chose t%d on replay, t%d before \
                     (uncharged shared access in a body?)"
                    scenario.Scenario.name i tid frames.(i).chosen))
      | _ -> ()
    end
    else observed := (Array.copy runnable, current, tid) :: !observed;
    tid
  in
  let result = Engine.run scenario ~decide in
  (result, List.rev !observed)

(* Admissible alternatives to [chosen] at a decision point, given the
   preemption count [pre] before it. *)
let alternatives ~bound ~runnable ~current ~chosen ~pre =
  Array.to_list runnable
  |> List.filter_map (fun tid ->
       if tid = chosen then None
       else
         let pre' =
           pre + (if costs_preemption ~runnable ~current tid then 1 else 0)
         in
         if pre' <= bound then Some (tid, pre') else None)

(* Exhaustive DFS at one fixed preemption bound.  [schedules] is the
   shared budget counter (iterative deepening shares one budget). *)
let explore_bound scenario ~bound ~budget ~schedules =
  (* Stack of frames for the last executed run, deepest first. *)
  let stack : frame list ref = ref [] in
  let exception Found of Engine.result in
  let execute forced ~skip ~pre0 =
    if !schedules >= budget then raise Budget;
    incr schedules;
    let expected =
      (* Frames of the forced prefix, shallow first, for replay checks. *)
      Some (Array.of_list (List.rev !stack))
    in
    let result, observed = run_schedule scenario ~forced ~skip ~expected in
    (* Build frames for the default-extended suffix.  Default choices
       never preempt, so the preemption count stays [pre0] throughout. *)
    List.iter
      (fun (runnable, current, chosen) ->
         let untried = alternatives ~bound ~runnable ~current ~chosen ~pre:pre0 in
         stack := { chosen; pre_after = pre0; untried } :: !stack)
      observed;
    if result.Engine.failure <> None then raise (Found result)
  in
  let rec backtrack () =
    match !stack with
    | [] -> `Exhausted
    | f :: below -> (
      match f.untried with
      | [] ->
        stack := below;
        backtrack ()
      | (tid, pre') :: rest ->
        f.untried <- rest;
        f.chosen <- tid;
        f.pre_after <- pre';
        let forced = List.rev_map (fun g -> g.chosen) !stack in
        execute forced ~skip:(List.length forced) ~pre0:pre';
        backtrack ())
  in
  try
    execute [] ~skip:0 ~pre0:0;
    backtrack ()
  with Found result ->
    let failure = Option.get result.Engine.failure in
    `Witness
      (Engine.trace_of_decisions scenario result.Engine.decisions,
       failure, result.Engine.preemptions)

let default_bound = 3
let default_budget = 50_000

(* Iterative deepening: bounds 0, 1, .., [bound], one shared schedule
   budget.  The first witness found therefore needs as few preemptions
   as any witness does. *)
let explore ?(bound = default_bound) ?(budget = default_budget) scenario =
  let schedules = ref 0 in
  let rec deepen b =
    if b > bound then Certified { schedules = !schedules; bound }
    else
      match explore_bound scenario ~bound:b ~budget ~schedules with
      | `Witness (trace, failure, preemptions) ->
        Witness { trace; failure; schedules = !schedules; preemptions }
      | `Exhausted -> deepen (b + 1)
  in
  try deepen 0 with Budget -> Exhausted { schedules = !schedules }

(* Uniform random walk: each dispatch picks uniformly among runnable
   threads.  Cheap, embarrassingly parallel in spirit, and a useful
   cross-check on the DFS — but finding nothing certifies nothing, so
   a fault-free walk reports [Exhausted], never [Certified]. *)
let random_walk ?(runs = 1_000) ?(seed = 0) scenario =
  let rng = Random.State.make [| 0x5eed; seed |] in
  let rec go i =
    if i >= runs then Exhausted { schedules = runs }
    else
      let decide ~runnable ~current:_ =
        runnable.(Random.State.int rng (Array.length runnable))
      in
      let result = Engine.run scenario ~decide in
      match result.Engine.failure with
      | Some failure ->
        Witness
          { trace = Engine.trace_of_decisions scenario result.Engine.decisions;
            failure;
            schedules = i + 1;
            preemptions = result.Engine.preemptions }
      | None -> go (i + 1)
  in
  go 0

(* The full pipeline: explore, and if a witness turns up, shrink it to
   a locally minimal replayable trace. *)
type outcome = {
  verdict : verdict;
  minimal : (Trace.t * Shrink.stats) option;
    (* shrunk witness, present iff [verdict] is [Witness] *)
}

let check ?bound ?budget scenario =
  match explore ?bound ?budget scenario with
  | Witness w as verdict ->
    let minimal = Shrink.minimize scenario w.trace in
    { verdict; minimal = Some minimal }
  | verdict -> { verdict; minimal = None }

let pp_verdict ppf = function
  | Certified { schedules; bound } ->
    Fmt.pf ppf "certified: %d schedules, preemption bound %d, no fault"
      schedules bound
  | Witness { failure; schedules; preemptions; trace } ->
    Fmt.pf ppf "FAULT after %d schedules (%d preemptions, %d switches): %s"
      schedules preemptions (Trace.switches trace) failure
  | Exhausted { schedules } ->
    Fmt.pf ppf "budget exhausted after %d schedules, no verdict" schedules
