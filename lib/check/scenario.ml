(* A model-checkable concurrency scenario: a small, fixed choreography
   of 2–4 threads over shared state, re-runnable from scratch once per
   explored schedule.

   [make] must build *fresh* shared state (tracker instance, pointers,
   handles) on every call — the explorer runs it thousands of times —
   and is called outside the simulator, so any primitive it touches is
   uncharged and adds no decision points.  Only the steps performed
   inside [bodies] (under the scheduler's hooks) are scheduled.

   Faults from [Fault] (UAF, double free/retire) are detected by the
   driver; [finish] covers properties the fault checker cannot see
   (e.g. a linearizability or invariant check over recorded history):
   return [Some msg] to fail the schedule. *)

type instance = {
  bodies : (int -> unit) array;   (* thread bodies, index = tid *)
  finish : unit -> string option; (* post-run property check *)
}

type t = {
  name : string;
  threads : int;
  make : unit -> instance;
}

let v ~name ~threads make =
  if threads < 1 then invalid_arg "Scenario.v: threads must be >= 1";
  { name; threads; make }
