(** A model-checkable concurrency scenario: a small fixed choreography
    of 2–4 threads, re-runnable from scratch once per explored
    schedule. *)

type instance = {
  bodies : (int -> unit) array;
  (** Thread bodies, index = tid.  Must equal [threads] in length. *)

  finish : unit -> string option;
  (** Post-run property check for faults the memory checker cannot
      see; [Some msg] fails the schedule. *)
}

type t = {
  name : string;
  threads : int;
  make : unit -> instance;
  (** Builds {e fresh} shared state; called once per explored
      schedule, outside the simulator (its own steps are uncharged and
      add no decision points). *)
}

val v : name:string -> threads:int -> (unit -> instance) -> t
