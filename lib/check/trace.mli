(** Serializable schedule traces — the replayable artifacts of a
    model-checking run.

    A trace is a list of [(tid, steps)] segments: dispatch [tid] for
    [steps] single-primitive quanta, then switch.  Replay is robust to
    drift (segments naming finished threads are skipped; exhausted
    traces fall back to the non-preemptive default schedule), so a
    minimal witness records only the preemptions that matter.  The
    text form is line-based and diff-friendly; witnesses are checked
    into [test/traces/]. *)

type segment = { tid : int; steps : int }

type t = {
  scenario : string;       (** scenario id the trace belongs to *)
  threads : int;           (** thread count, validated at replay *)
  segments : segment list;
}

val v : scenario:string -> threads:int -> (int * int) list -> t
(** [v ~scenario ~threads segs] builds a trace from [(tid, steps)]
    pairs. *)

val equal : t -> t -> bool

val switches : t -> int
(** Number of segment boundaries — an upper bound on preemptions
    (switches onto a finished thread's successor are free). *)

val total_steps : t -> int

val to_string : t -> string
(** Canonical text form; round-trips through {!of_string}. *)

val of_string : string -> (t, string) result
(** Parse the text form.  Blank lines and [#] comments are ignored. *)

val of_file : string -> (t, string) result
val to_file : string -> t -> unit

val pp : t Fmt.t
