(** The checked scenario suite: reclamation-race choreographies
    instantiable for any registered tracker. *)

val reader_writer :
  ?retire_backend:Ibr_core.Reclaimer.backend -> ?empty_freq:int ->
  Ibr_core.Registry.entry -> Scenario.t
(** Two threads: a reader holding a guarded root read against a writer
    that publishes, detaches, retires and reclaims the block.  The
    Fig. 6 shape — [Two_ge_unfenced]'s use-after-free window lives
    here (3 preemptions).  [retire_backend] (default [List]) selects
    the retirement backend and suffixes the scenario name "@backend";
    [empty_freq] (default effectively-never) sets the retire-cadence
    sweep period — pass 1 to sweep inside the explored schedules. *)

val crash_mid_op : Ibr_core.Registry.entry -> Scenario.t
(** Two threads: a reader that crashes mid-operation
    ([Ibr_runtime.Sched.crash_self] — the continuation is abandoned,
    [end_op] never runs) against a writer that detaches, retires and
    force-empties.  Sound trackers must stay fault-free on every
    interleaving AND keep the dead reader's reservation pinning the
    block it observed (DESIGN.md §7); [Unsafe_free] breaks both. *)

val advance_race : Ibr_core.Registry.entry -> Scenario.t
(** Three threads: an un-quiesced reader, a retirer, and a second
    epoch advancer.  The QSBR grace-period-skip shape (DESIGN.md
    §5a.3) — [Qsbr.Noncas]'s use-after-free lives here
    (2 preemptions). *)

val handoff_drain : Ibr_core.Registry.entry -> Scenario.t
(** Three threads under [background_reclaim = true]: a reader holding
    a guarded root read, a writer whose retire is a handoff-queue
    append (in-flight from that moment), and the drain service itself
    (drain + flush through {!Ibr_core.Handoff.service}).  Every
    explored schedule interleaves the push, the take-all exchange, the
    sweep and the deref — a sound tracker's drain must not launder a
    still-reserved block past its conflict test (DESIGN.md §9).
    Trackers without a service fall back to a force-empty third
    thread. *)

val thread_churn : Ibr_core.Registry.entry -> Scenario.t
(** Three bodies on a census of capacity 2 (DESIGN.md §10): a reader
    holding a guarded root read, a churner that retires the block the
    reader may hold and then {e detaches}, and a joiner that reuses a
    leaver's slot (bounded attach retries) for a guarded read of its
    own.  A sound detach's final guarded sweep must honour the
    reader's live reservation and leave the reused slot quiescent;
    [Ebr_noflush] (detach frees pending retirements without that
    sweep) has its use-after-free here (2 preemptions). *)

val neutralize_mid_op : Ibr_core.Registry.entry -> Scenario.t
(** Three threads (DESIGN.md §12): a victim running a guarded read
    under the [with_op] restart protocol (window open per attempt,
    {!Ibr_core.Fault.Neutralized} caught, [recover], retry), a peer
    that delivers the restart signal through the scheduler
    ({!Ibr_runtime.Sched.neutralize_peer}), and a writer that unlinks,
    retires and force-frees the block.  A sound [recover]
    re-establishes protection before the retry reads;
    [Debra_plus.Norestart] (drops without re-protecting) has its
    use-after-free here (2 preemptions). *)

val queue_dequeue_churn : Ibr_core.Registry.entry -> Scenario.t
(** Two threads on the Michael–Scott dequeue shape: a reader performs
    a dequeuer's read phase — guarded head read, deref, guarded
    successor read — against a churner running two enqueue+dequeue
    rounds.  Each enqueue allocates (advancing the epoch under
    [epoch_freq = 1]) and each dequeue retires the node head swings
    past, so the second round retires a node born during the race —
    the reader's head read must extend its upper reservation endpoint
    to cover it.  [Two_ge_unfenced]'s unpublished extension window
    admits the head-of-queue use-after-free (3 preemptions). *)

val bucket_migrate : Ibr_core.Registry.entry -> Scenario.t
(** Two threads on the resizable-hashmap migration shape: a reader
    holds a guarded read of the bucket-shortcut table block and then
    derefs through a bucket cell, against a migrator running two
    back-to-back growths, each publishing a doubled table (allocating
    it advances the epoch) and retiring the superseded table block
    wholesale — the BULK retirement path.  The second growth retires a
    race-born table, so the reader's root read must extend its upper
    endpoint; sound trackers keep every superseded table alive for the
    reader, [Unsafe_free] and [Two_ge_unfenced] free one under the
    reader's feet (3 preemptions). *)

type expectation = Safe | Faulty

type case = {
  scenario : Scenario.t;
  expect : expectation;
  bound : int;  (** preemption bound the expectation is checked at *)
}

val cases : unit -> case list
(** The full suite: [reader_writer] and [crash_mid_op] for every
    correct tracker (Safe) and for the oracles, the reader_writer
    shape re-certified under the Buckets and Gated retirement backends
    with per-retire sweeps, [handoff_drain] for every tracker with
    [Unsafe_free] riding along Faulty, [thread_churn] for every
    tracker with [Unsafe_free] and [Ebr_noflush] riding along Faulty,
    [advance_race] for the QSBR-shaped trackers, [bucket_migrate] for
    every tracker, and [queue_dequeue_churn] for every mutable-pointer
    tracker (the queue's next cells are interior mutation, outside
    POIBR's contract) — [Unsafe_free] and [Two_ge_unfenced] ride along
    Faulty on both new scenarios.  Expectations are what
    {!Check.explore} must conclude within each case's bound. *)

val find : string -> case option
(** Look a case up by its scenario name (e.g. for trace replay). *)
