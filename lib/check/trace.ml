(* A serialized schedule: the replayable artifact of a model-checking
   run.

   A trace is a list of segments [(tid, steps)]: dispatch thread [tid]
   for [steps] single-primitive quanta, then move to the next segment.
   Replay semantics (implemented by [Engine.decider_of_trace]) make
   the format robust to minor drift: a segment whose thread is
   finished is skipped, and once the segments run out the scheduler
   falls back to the non-preemptive default (keep running the current
   thread; on its death, the lowest-tid runnable one).  A minimal
   witness is therefore just the few preemptions that matter, not a
   transcript of the whole run.

   The text form is line-based so witnesses diff well and can be
   checked into the repository:

       # ibr-check trace v1
       scenario read-vs-reclaim:2GEIBR-unfenced
       threads 2
       seg 0 4
       seg 1 11
       ...

   Blank lines and [#] comments are ignored on input; [to_string]
   emits the canonical form above. *)

type segment = { tid : int; steps : int }

type t = {
  scenario : string;  (* scenario id the trace belongs to *)
  threads : int;      (* thread count, for validation at replay time *)
  segments : segment list;
}

let v ~scenario ~threads segments =
  { scenario; threads; segments = List.map (fun (tid, steps) -> { tid; steps }) segments }

let equal a b =
  a.scenario = b.scenario && a.threads = b.threads
  && List.length a.segments = List.length b.segments
  && List.for_all2 (fun x y -> x.tid = y.tid && x.steps = y.steps)
       a.segments b.segments

let switches t = max 0 (List.length t.segments - 1)

let total_steps t =
  List.fold_left (fun acc s -> acc + s.steps) 0 t.segments

let header = "# ibr-check trace v1"

let to_string t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf header;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (Printf.sprintf "scenario %s\n" t.scenario);
  Buffer.add_string buf (Printf.sprintf "threads %d\n" t.threads);
  List.iter
    (fun s -> Buffer.add_string buf (Printf.sprintf "seg %d %d\n" s.tid s.steps))
    t.segments;
  Buffer.contents buf

let of_string text =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let lines =
    String.split_on_char '\n' text
    |> List.map String.trim
    |> List.filter (fun l -> l <> "" && not (String.length l > 0 && l.[0] = '#'))
  in
  let scenario = ref None and threads = ref None and segs = ref [] in
  let parse_line ln =
    match String.split_on_char ' ' ln |> List.filter (fun s -> s <> "") with
    | [ "scenario"; name ] ->
      if !scenario <> None then err "duplicate scenario line"
      else begin scenario := Some name; Ok () end
    | [ "threads"; n ] ->
      (match int_of_string_opt n with
       | Some n when n >= 1 -> threads := Some n; Ok ()
       | _ -> err "bad threads count %S" n)
    | [ "seg"; tid; steps ] ->
      (match int_of_string_opt tid, int_of_string_opt steps with
       | Some tid, Some steps when tid >= 0 && steps >= 1 ->
         segs := { tid; steps } :: !segs;
         Ok ()
       | _ -> err "bad segment %S" ln)
    | _ -> err "unrecognized trace line %S" ln
  in
  let rec go = function
    | [] -> Ok ()
    | ln :: rest -> (match parse_line ln with Ok () -> go rest | Error _ as e -> e)
  in
  match go lines with
  | Error _ as e -> e
  | Ok () ->
    (match !scenario, !threads with
     | None, _ -> err "missing scenario line"
     | _, None -> err "missing threads line"
     | Some scenario, Some threads ->
       let segments = List.rev !segs in
       if List.exists (fun s -> s.tid >= threads) segments then
         err "segment tid out of range (threads %d)" threads
       else Ok { scenario; threads; segments })

let of_file path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
    Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
      of_string (really_input_string ic (in_channel_length ic)))

let to_file path t =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
    output_string oc (to_string t))

let pp ppf t =
  Fmt.pf ppf "%s[%a]" t.scenario
    (Fmt.list ~sep:(Fmt.any " ") (fun ppf s -> Fmt.pf ppf "%d:%d" s.tid s.steps))
    t.segments
