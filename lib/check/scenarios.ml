(* The checked scenario suite: small fixed choreographies that target
   the reclamation races this codebase is about, instantiable for any
   registered tracker.

   [reader_writer] is the Fig. 6 shape: a reader holds a pointer it
   read through the tracker's guarded root read while a writer
   detaches, retires and reclaims the block.  Under a sound tracker no
   interleaving faults; under [Two_ge_unfenced] the window between the
   pointer read and the upper-endpoint publication admits a
   use-after-free (3 preemptions), and under [Unsafe_free] almost any
   unlucky ordering does.

   [advance_race] targets the QSBR grace-period-skip (DESIGN.md
   §5a.3): a reader that has not quiesced, a retirer, and a second
   advancer.  With the sound CAS advance the two racing advancers
   collapse into one epoch step and the reader pins the block; with
   the unconditional advance ([Qsbr.Noncas]) both increments land, a
   grace period is skipped, and the retirer frees the block under the
   reader (2 preemptions).

   Scenario state is built inside [make], outside the simulator, so
   setup contributes no decision points; bodies use only the public
   TRACKER API, so every scenario runs unchanged against every
   scheme. *)

open Ibr_core

let deref v =
  match View.target v with
  | Some b -> ignore (Block.get b)
  | None -> ()

(* reuse = false gives precise use-after-free detection; epoch_freq =
   1 makes the single allocation advance the epoch (opening the
   interval-coverage race); empty_freq large defers all reclamation to
   the explicit [force_empty].  The backend variants instead set
   empty_freq = 1 so the retire itself sweeps — that is the only way
   to drive the bucketed stores and the gate through their
   mid-operation paths ([force_empty] bypasses the gate). *)
let cfg ?(retire_backend = Reclaimer.List) ?(empty_freq = 1_000_000) threads =
  { (Tracker_intf.default_config ~threads ()) with
    reuse = false; epoch_freq = 1; empty_freq; retire_backend }

let backend_suffix = function
  | None -> ""
  | Some b -> "@" ^ Reclaimer.backend_name b

let reader_writer ?retire_backend ?empty_freq (entry : Registry.entry) =
  let module T = (val entry.tracker : Tracker_intf.TRACKER) in
  Scenario.v
    ~name:("reader_writer/" ^ entry.name ^ backend_suffix retire_backend)
    ~threads:2 (fun () ->
    let t = T.create ~threads:2 (cfg ?retire_backend ?empty_freq 2) in
    let h0 = T.register t ~tid:0 and h1 = T.register t ~tid:1 in
    let ptr = T.make_ptr t None in
    let reader _ =
      T.start_op h0;
      let v = T.read_root h0 ptr in
      deref v;
      T.end_op h0
    in
    let writer _ =
      T.start_op h1;
      let b = T.alloc h1 1 in
      T.write h1 ptr (Some b);
      T.write h1 ptr None;
      T.retire h1 b;
      T.end_op h1;
      T.force_empty h1
    in
    { Scenario.bodies = [| reader; writer |]; finish = (fun () -> None) })

(* DESIGN.md §7: a thread that dies mid-operation — [Sched.crash_self]
   abandons the continuation, so [end_op] never runs and the
   reservation published by the guarded read stays up forever.  Two
   properties, over every interleaving: the survivor's retire +
   force-empty never faults, and if the reader's read observed the
   block ([saw]), the dead reservation must go on pinning it — any
   sound scheme whose validated read precedes the retire conflicts
   with it ([Block.is_reclaimed x] must stay false).  [Unsafe_free]
   breaks both. *)
let crash_mid_op (entry : Registry.entry) =
  let module T = (val entry.tracker : Tracker_intf.TRACKER) in
  Scenario.v ~name:("crash_mid_op/" ^ entry.name) ~threads:2 (fun () ->
    let t = T.create ~threads:2 (cfg 2) in
    let h0 = T.register t ~tid:0 and h1 = T.register t ~tid:1 in
    (* Allocated during setup: published before any thread runs. *)
    let x = T.alloc h1 42 in
    let ptr = T.make_ptr t (Some x) in
    let saw = ref false in
    let reader _ =
      T.start_op h0;
      let v = T.read_root h0 ptr in
      (match View.target v with
       | Some b ->
         ignore (Block.get b);
         saw := true
       | None -> ());
      Ibr_runtime.Sched.crash_self ()
    in
    let writer _ =
      T.start_op h1;
      T.write h1 ptr None;
      T.retire h1 x;
      T.end_op h1;
      T.force_empty h1
    in
    { Scenario.bodies = [| reader; writer |];
      finish =
        (fun () ->
           if !saw && Block.is_reclaimed x then
             Some "crashed reservation not honoured: reclaimed a block \
                   the dead reader still guards"
           else None) })

let advance_race (entry : Registry.entry) =
  let module T = (val entry.tracker : Tracker_intf.TRACKER) in
  Scenario.v ~name:("advance_race/" ^ entry.name) ~threads:3 (fun () ->
    let t = T.create ~threads:3 (cfg 3) in
    let h0 = T.register t ~tid:0
    and h1 = T.register t ~tid:1
    and h2 = T.register t ~tid:2 in
    (* Allocated during setup: published before any thread runs. *)
    let x = T.alloc h1 42 in
    let ptr = T.make_ptr t (Some x) in
    let reader _ =
      T.start_op h0;
      let v = T.read_root h0 ptr in
      deref v;
      T.end_op h0
    in
    let retirer _ =
      T.start_op h1;
      T.write h1 ptr None;
      T.retire h1 x;
      T.end_op h1;
      T.force_empty h1
    in
    let advancer _ = T.force_empty h2 in
    { Scenario.bodies = [| reader; retirer; advancer |];
      finish = (fun () -> None) })

(* The background-reclaim shape (DESIGN.md §9): with
   [background_reclaim = true] a retire is only a handoff-queue
   append, and reclamation happens when the service drains the queues
   into its reclaimer and sweeps.  Three threads: a reader holding a
   guarded root read, a writer that detaches and retires (in-flight in
   the queue from that moment), and the drain service itself — so the
   explored schedules interleave the queue push, the take-all
   exchange, the sweep, and the reader's deref in every order the
   bound admits.  A sound tracker must keep the reader safe on all of
   them: the drain must not launder a still-reserved block past its
   conflict test.  Trackers with no service ([reclaim_service] = None:
   NoMM, UnsafeFree) fall back to a force-empty third thread, keeping
   the scenario instantiable for the Faulty oracle. *)
let handoff_drain (entry : Registry.entry) =
  let module T = (val entry.tracker : Tracker_intf.TRACKER) in
  Scenario.v ~name:("handoff_drain/" ^ entry.name) ~threads:3 (fun () ->
    let c = { (cfg 2) with Tracker_intf.background_reclaim = true } in
    let t = T.create ~threads:2 c in
    let h0 = T.register t ~tid:0 and h1 = T.register t ~tid:1 in
    let ptr = T.make_ptr t None in
    let reader _ =
      T.start_op h0;
      let v = T.read_root h0 ptr in
      deref v;
      T.end_op h0
    in
    let writer _ =
      T.start_op h1;
      let b = T.alloc h1 1 in
      T.write h1 ptr (Some b);
      T.write h1 ptr None;
      T.retire h1 b;
      T.end_op h1
    in
    let drainer =
      match T.reclaim_service t with
      | Some svc ->
        fun _ ->
          ignore (svc.Handoff.drain ());
          svc.Handoff.flush ()
      | None -> fun _ -> T.force_empty h1
    in
    { Scenario.bodies = [| reader; writer; drainer |];
      finish = (fun () -> None) })

(* Dynamic-census churn (DESIGN.md §10): the detach protocol raced
   against a reader mid-interval, plus slot reuse by a joiner.  Census
   capacity 2, three bodies:

   - the reader (attached in setup) holds a guarded root read of [x]
     across its deref;
   - the churner (also attached in setup) unlinks and retires [x],
     then detaches — from that moment its slot is reusable and its
     pending retirement must have been either reclaimed by the
     detach's final guarded sweep or handed to the slot's persistent
     path, but never freed *past* the reader's reservation;
   - the joiner tries to attach (bounded retries: a slot only frees
     after a leaver's detach, so an unbounded spin would diverge on
     schedules where no detach has happened yet), and on success runs
     a guarded read on the reused slot and detaches again.

   A sound tracker keeps every interleaving fault-free: detach's final
   sweep honours the reader's live reservation, and the joiner's
   reused slot starts from a quiescent reservation instead of aliasing
   the leaver's.  [Ebr_noflush] — detach frees its pending retirements
   without that final guarded sweep — has its use-after-free here
   (2 preemptions), and [Unsafe_free]'s immediate free needs the same
   bound. *)
let thread_churn (entry : Registry.entry) =
  let module T = (val entry.tracker : Tracker_intf.TRACKER) in
  Scenario.v ~name:("thread_churn/" ^ entry.name) ~threads:3 (fun () ->
    let t = T.create ~threads:2 (cfg 2) in
    (* Setup runs uncharged: both slots are occupied before any body
       is scheduled, so the joiner contends with real leavers. *)
    let h0 = match T.attach t with Some h -> h | None -> assert false in
    let h1 = match T.attach t with Some h -> h | None -> assert false in
    let x = T.alloc h1 42 in
    let ptr = T.make_ptr t (Some x) in
    let reader _ =
      T.start_op h0;
      let v = T.read_root h0 ptr in
      deref v;
      T.end_op h0;
      T.detach h0
    in
    let churner _ =
      T.start_op h1;
      T.write h1 ptr None;
      T.retire h1 x;
      T.end_op h1;
      T.detach h1
    in
    let joiner _ =
      let rec go attempts =
        if attempts > 0 then
          match T.attach t with
          | None -> go (attempts - 1)
          | Some h2 ->
            T.start_op h2;
            let v = T.read_root h2 ptr in
            deref v;
            T.end_op h2;
            T.detach h2
      in
      go 4
    in
    { Scenario.bodies = [| reader; churner; joiner |];
      finish = (fun () -> None) })

(* Neutralization mid-operation (DEBRA+, DESIGN.md §12): a victim runs
   a guarded read under the [Ds_common.with_op] restart protocol
   (emulated inline — this library sits below [ibr_ds]): window open
   around each attempt, [Fault.Neutralized] caught, [T.recover], retry.
   A peer delivers the restart signal through the scheduler
   ([Sched.neutralize_peer]) at whatever point the explored schedule
   admits; a writer concurrently unlinks, retires and force-frees the
   block.

   A sound tracker keeps every interleaving fault-free: [recover]
   drops the interrupted attempt's reservation {e and re-establishes}
   protection before the retry reads, so whatever the retry
   dereferences is covered.  [Debra_plus.Norestart] — recover drops
   but does not re-protect — has its use-after-free here: the signal
   lands after the victim's first read, the retry re-reads the block
   with no reservation up, and the writer frees it under the
   retry's dereference (2 preemptions). *)
let neutralize_mid_op (entry : Registry.entry) =
  let module T = (val entry.tracker : Tracker_intf.TRACKER) in
  Scenario.v ~name:("neutralize_mid_op/" ^ entry.name) ~threads:3
    (fun () ->
      let t = T.create ~threads:2 (cfg 2) in
      let h0 = T.register t ~tid:0 and h1 = T.register t ~tid:1 in
      (* Allocated during setup: published before any thread runs. *)
      let x = T.alloc h1 42 in
      let ptr = T.make_ptr t (Some x) in
      let victim _ =
        T.start_op h0;
        (* Bounded retries keep the explored state space finite; the
           single signal is delivered at most once, so one retry
           always suffices to finish. *)
        let rec attempt n =
          if n <= 2 then begin
            let prev = Ibr_runtime.Hooks.restart_window true in
            match
              let v = T.read_root h0 ptr in
              deref v
            with
            | () -> ignore (Ibr_runtime.Hooks.restart_window prev)
            | exception Fault.Neutralized ->
              ignore (Ibr_runtime.Hooks.restart_window prev);
              T.recover h0;
              attempt (n + 1)
          end
        in
        attempt 0;
        T.end_op h0
      in
      let neutralizer _ = Ibr_runtime.Sched.neutralize_peer 0 in
      let writer _ =
        T.start_op h1;
        T.write h1 ptr None;
        T.retire h1 x;
        T.end_op h1;
        T.force_empty h1
      in
      { Scenario.bodies = [| victim; neutralizer; writer |];
        finish = (fun () -> None) })

(* The Michael–Scott dequeue shape distilled to tracker calls
   (ISSUE 10): the queue's consumer side reads the dummy at [head],
   and every dequeue retires exactly that node.  Blocks carry int
   payloads used as indices into a [next] cell array (the library
   cannot name a per-tracker node type here), so the queue starts as
   the lone dummy(0) at [head].

   The reader is a dequeuer's read phase: guarded head read, deref to
   find its successor cell, guarded next read, deref.  The churner is
   two enqueue+dequeue rounds — each enqueue is a real allocation, so
   with epoch_freq = 1 the epoch advances inside the scenario, and the
   second dequeue retires a node {e born during the race}.  That is
   the shape interval-family bugs need: a reader whose guarded head
   read must extend its upper reservation endpoint to cover the
   race-born node.  A sound tracker keeps every interleaving
   fault-free; the unfenced 2GEIBR variant's window between reading
   the head pointer and publishing the extended endpoint admits the
   head-of-queue use-after-free (3 preemptions), exactly the race the
   MS queue rideable's dequeue-side retirement is about.  (The tail
   half of each enqueue is elided: no body reads [tail], it would only
   pad the schedule space.) *)
let queue_dequeue_churn (entry : Registry.entry) =
  let module T = (val entry.tracker : Tracker_intf.TRACKER) in
  Scenario.v ~name:("queue_dequeue_churn/" ^ entry.name) ~threads:2
    (fun () ->
      let t = T.create ~threads:2 (cfg 2) in
      let h0 = T.register t ~tid:0 and h1 = T.register t ~tid:1 in
      (* Setup (uncharged): the empty queue — head at dummy(0). *)
      let dummy = T.alloc h1 0 in
      let next =
        [| T.make_ptr t None; T.make_ptr t None; T.make_ptr t None |]
      in
      let head = T.make_ptr t (Some dummy) in
      let reader _ =
        T.start_op h0;
        let hv = T.read_root h0 head in
        (match View.target hv with
         | None -> ()
         | Some hb ->
           (* Faults here if the churner freed the head node under
              us. *)
           let i = Block.get hb in
           let nv = T.read h0 ~slot:1 next.(i) in
           (* The dequeue discipline's head re-validation (ms_queue.ml
              does the same): a retired dummy's stale next field may
              point at freed memory, so the successor is only
              dereferenced if head has not moved — for EVERY tracker;
              the races this scenario checks are in the guarded reads
              above, not in skipping that validation. *)
           (match View.target (T.read h0 ~slot:2 head) with
            | Some hb' when hb' == hb -> deref nv
            | _ -> ()));
        T.end_op h0
      in
      let churner _ =
        T.start_op h1;
        (* Enqueue b1: the allocation advances the epoch. *)
        let b1 = T.alloc h1 1 in
        T.write h1 next.(0) (Some b1);
        (* Dequeue: swing head past the dummy and retire it. *)
        T.write h1 head (Some b1);
        T.retire h1 dummy;
        (* Enqueue b2, then dequeue b1 — a race-born retirement. *)
        let b2 = T.alloc h1 2 in
        T.write h1 next.(1) (Some b2);
        T.write h1 head (Some b2);
        T.retire h1 b1;
        T.end_op h1;
        T.force_empty h1
      in
      { Scenario.bodies = [| reader; churner |];
        finish = (fun () -> None) })

(* The resizable hashmap's migration shape distilled to tracker calls
   (ISSUE 10): the bucket-shortcut array lives in a tracker block, a
   reader dereferences it to find a bucket cell and then a node
   through that cell, and a migration publishes a replacement table
   and retires the whole superseded array as one block — bulk
   retirement racing a table-holding reader.  Two back-to-back
   migrations run, so the second retires a table {e born during the
   race} (each replacement-table allocation advances the epoch under
   epoch_freq = 1) — the reader's guarded root read must extend its
   upper reservation endpoint to cover it.  The unfenced 2GEIBR
   variant's publication window admits the use-after-free on the
   reader's table deref (3 preemptions). *)
let bucket_migrate (entry : Registry.entry) =
  let module T = (val entry.tracker : Tracker_intf.TRACKER) in
  Scenario.v ~name:("bucket_migrate/" ^ entry.name) ~threads:2 (fun () ->
    let t = T.create ~threads:2 (cfg 2) in
    let h0 = T.register t ~tid:0 and h1 = T.register t ~tid:1 in
    (* Setup (uncharged): root -> table(0); one bucket cell -> node(1). *)
    let table = T.alloc h1 0 in
    let node = T.alloc h1 1 in
    let root = T.make_ptr t (Some table) in
    let bucket = T.make_ptr t (Some node) in
    let reader _ =
      T.start_op h0;
      let tv = T.read_root h0 root in
      (match View.target tv with
       | None -> ()
       | Some tb ->
         (* Faults here if the migrator freed the table under us. *)
         ignore (Block.get tb);
         let nv = T.read h0 ~slot:1 bucket in
         deref nv);
      T.end_op h0
    in
    let migrator _ =
      T.start_op h1;
      (* First growth: the doubled table's allocation advances the
         epoch; the superseded setup-born table is retired whole. *)
      let table' = T.alloc h1 2 in
      T.write h1 root (Some table');
      T.retire h1 table;
      (* Second growth: retires the race-born [table']. *)
      let table'' = T.alloc h1 3 in
      T.write h1 root (Some table'');
      T.retire h1 table';
      T.end_op h1;
      T.force_empty h1
    in
    { Scenario.bodies = [| reader; migrator |];
      finish = (fun () -> None) })

type expectation = Safe | Faulty

type case = {
  scenario : Scenario.t;
  expect : expectation;
  bound : int; (* preemption bound the expectation is checked at *)
}

(* Sound trackers are certified at the same bound the corresponding
   oracle's witness needs, so the certification is exactly "this bound
   separates sound from unsound".  [Qsbr.Noncas] is Safe under
   [reader_writer]: its bug needs two *racing* advancers, which that
   scenario does not contain — the suite demonstrates witness
   specificity, not just witness existence.

   The backend re-certification runs every sound tracker under the
   Buckets and Gated retirement backends with empty_freq = 1, so the
   retire-cadence sweep (bucket splitting, gate arming and skipping)
   happens inside the explored schedules.  Bound 2 keeps the larger
   step count (a sweep per retire) tractable while still admitting the
   known witness shapes; [Unsafe_free] rides along Faulty to show the
   fault detector sees through the new stores too.

   [handoff_drain] re-certifies every sound tracker with the retire
   path rerouted through the background-reclaim handoff queue, the
   drain and sweep racing the reader inside the explored schedules;
   [Unsafe_free] again rides along Faulty (its immediate free needs no
   queue, so the same bound separates it). *)
let cases () =
  let rw e expect bound = { scenario = reader_writer e; expect; bound } in
  let rwb backend e expect bound =
    { scenario = reader_writer ~retire_backend:backend ~empty_freq:1 e;
      expect; bound }
  in
  let ar e expect bound = { scenario = advance_race e; expect; bound } in
  let cm e expect bound = { scenario = crash_mid_op e; expect; bound } in
  let hd e expect bound = { scenario = handoff_drain e; expect; bound } in
  let tc e expect bound = { scenario = thread_churn e; expect; bound } in
  let nm e expect bound =
    { scenario = neutralize_mid_op e; expect; bound } in
  let qd e expect bound =
    { scenario = queue_dequeue_churn e; expect; bound } in
  let bm e expect bound = { scenario = bucket_migrate e; expect; bound } in
  List.map (fun e -> rw e Safe 3) Registry.all
  @ List.map (fun e -> cm e Safe 3) Registry.all
  @ [ cm Registry.unsafe_free Faulty 3 ]
  @ List.map (fun e -> nm e Safe 2) Registry.all
  @ [ nm Registry.debra_norestart Faulty 2 ]
  @ List.map (fun e -> hd e Safe 2) Registry.all
  @ [ hd Registry.unsafe_free Faulty 2 ]
  @ List.map (fun e -> tc e Safe 2) Registry.all
  @ [ tc Registry.unsafe_free Faulty 2; tc Registry.ebr_noflush Faulty 2 ]
  @ List.concat_map
      (fun backend ->
         List.map (fun e -> rwb backend e Safe 2) Registry.all
         @ [ rwb backend Registry.unsafe_free Faulty 3 ])
      [ Reclaimer.Buckets; Reclaimer.Gated ]
  (* queue_dequeue_churn mutates interior pointers (the next cells),
     which is outside POIBR's immutable-interior contract — the same
     reason the ds registry refuses the MS queue under POIBR — so it
     certifies the mutable-pointer trackers only.  bucket_migrate
     mutates nothing but the root and runs the full registry. *)
  @ List.map
      (fun e -> qd e Safe 3)
      (List.filter
         (fun (e : Registry.entry) ->
           let module T = (val e.tracker : Tracker_intf.TRACKER) in
           T.props.Tracker_intf.mutable_pointers)
         Registry.all)
  @ [
      qd Registry.unsafe_free Faulty 3;
      qd Registry.two_ge_unfenced Faulty 3;
    ]
  @ List.map (fun e -> bm e Safe 3) Registry.all
  @ [
      bm Registry.unsafe_free Faulty 3;
      bm Registry.two_ge_unfenced Faulty 3;
    ]
  @ [
      rw Registry.unsafe_free Faulty 3;
      rw Registry.two_ge_unfenced Faulty 3;
      rw Registry.qsbr_noncas Safe 3;
      ar Registry.qsbr Safe 2;
      ar Registry.fraser_ebr Safe 2;
      ar Registry.qsbr_noncas Faulty 2;
    ]

let find name =
  List.find_opt (fun c -> c.scenario.Scenario.name = name) (cases ())
