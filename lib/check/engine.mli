(** Execution layer shared by every checking strategy: run one
    scenario under one schedule.

    Runs use a single simulated core, one-cost quanta, and suspension
    after every charged primitive, so each shared-memory primitive is
    exactly one dispatch decision; the cost model is pinned to
    {!Ibr_runtime.Cost.uniform} for the duration of a run so
    checked-in traces cannot drift when the calibrated model is
    re-tuned.  Faults are counted rather than raised, so a failing
    schedule runs to completion. *)

val check_config : Ibr_runtime.Sched.config

type result = {
  failure : string option;  (** [None] = the schedule passed *)
  decisions : int list;     (** chosen tid per dispatch, in order *)
  preemptions : int;        (** switches away from a still-runnable thread *)
  dispatches : int;
}

val run : Scenario.t -> decide:Ibr_runtime.Sched.decider -> result
(** One fresh run of the scenario, every dispatch decision taken from
    [decide]. *)

val default_choice : runnable:int array -> current:int -> int
(** The non-preemptive default schedule: continue the current thread;
    on its death the lowest-tid runnable one. *)

val decider_of_trace : Trace.t -> Ibr_runtime.Sched.decider
(** Consume the trace's segments (skipping segments naming finished
    threads), then fall back to {!default_choice}. *)

val replay : Scenario.t -> Trace.t -> result
(** Deterministic replay of a recorded schedule.
    @raise Invalid_argument if the trace's thread count does not match
    the scenario's. *)

val trace_of_decisions : Scenario.t -> int list -> Trace.t
(** Compress a recorded decision list into a segmented trace. *)
