(** Bounded systematic schedule exploration (CHESS-style).

    The exhaustive strategy enumerates, by stateless re-execution,
    every schedule of a scenario with at most [bound] preemptions
    (switches away from a still-runnable thread; switches at thread
    death are free).  Iterative deepening over the bound makes the
    first witness found a fewest-preemptions witness.  A certification
    is always relative to the bound: [Certified] means no schedule
    within it faults. *)

type verdict =
  | Certified of { schedules : int; bound : int }
      (** Every schedule with at most [bound] preemptions passed. *)
  | Witness of {
      trace : Trace.t;   (** full failing schedule, unshrunk *)
      failure : string;
      schedules : int;   (** schedules executed before it was found *)
      preemptions : int; (** preemptions the witness run used *)
    }
  | Exhausted of { schedules : int }
      (** Budget ran out before the bound was fully explored. *)

exception Nondeterministic of string
(** A forced replay prefix diverged from its earlier execution —
    the scenario has scheduling-invisible nondeterminism (e.g. an
    uncharged shared access). *)

val default_bound : int    (** 3 *)

val default_budget : int   (** 50_000 schedules *)

val explore : ?bound:int -> ?budget:int -> Scenario.t -> verdict
(** Exhaustive DFS with iterative deepening over preemption bounds
    [0..bound], all depths drawing on one schedule [budget]. *)

val random_walk : ?runs:int -> ?seed:int -> Scenario.t -> verdict
(** Uniform random walk: each dispatch picks uniformly among runnable
    threads.  A cross-check on the DFS; finding nothing certifies
    nothing, so a fault-free walk reports [Exhausted], never
    [Certified]. *)

type outcome = {
  verdict : verdict;
  minimal : (Trace.t * Shrink.stats) option;
      (** shrunk witness, present iff [verdict] is [Witness] *)
}

val check : ?bound:int -> ?budget:int -> Scenario.t -> outcome
(** [explore], plus {!Shrink.minimize} on the witness if one is
    found. *)

val pp_verdict : Format.formatter -> verdict -> unit
