(** Delta-debugging minimizer for failing schedules.

    Shrinking alternates two greedy passes to a joint fixpoint:
    deleting whole segments (each deletion removes a context switch;
    the replayer's non-preemptive default absorbs the steps) and
    shortening surviving segments one step at a time.  Every candidate
    is validated by a fresh replay, so the fault is never lost and the
    result is locally minimal with respect to real executions: no
    single segment deletion nor single-step shortening preserves the
    fault. *)

type stats = {
  replays : int;          (** candidate executions performed *)
  kept_failure : string;  (** failure reported by the minimal trace *)
}

val minimize : Scenario.t -> Trace.t -> Trace.t * stats
(** [minimize scenario trace] shrinks a failing trace to a locally
    minimal one that still fails.
    @raise Invalid_argument if [trace] does not fail on [scenario]. *)

val is_sub_trace : original:Trace.t -> shrunk:Trace.t -> bool
(** Structural check: [shrunk]'s segments are an order-preserving
    subsequence of [original]'s with pointwise smaller-or-equal step
    counts.  Holds for every [minimize] output. *)

val locally_minimal : Scenario.t -> Trace.t -> bool
(** Brute-force check that no single segment deletion and no
    single-step shortening of [trace] preserves the fault.  Used by
    the property tests; replays O(segments × max steps) schedules. *)
