(* The execution layer under every strategy: run one scenario under
   one schedule and report what happened.

   The scheduler is configured so that every charged shared-memory
   primitive is exactly one dispatch decision: a single simulated
   core, one-cost quanta, suspension after every charge, no random
   stalls.  The cost model is pinned to [Cost.uniform] for the
   duration of a run so that decision-point alignment — and therefore
   checked-in traces — cannot drift when the calibrated cost model is
   re-tuned (a zero-cost primitive would silently stop being a
   decision point).

   Faults are counted, not raised, so a failing schedule runs to
   completion and the recorded decision list covers the whole
   execution; the shrinker then cuts the irrelevant tail. *)

open Ibr_runtime
open Ibr_core

let check_config =
  { (Sched.test_config ~cores:1 ~seed:0 ()) with
    quantum = 1; ctx_switch = 0; perform_threshold = 1 }

type result = {
  failure : string option; (* None = schedule passed *)
  decisions : int list;    (* chosen tid per dispatch, in order *)
  preemptions : int;       (* switches away from a still-runnable thread *)
  dispatches : int;
}

let fault_kinds =
  Fault.[ Use_after_free; Double_free; Double_retire; Retire_unpublished ]

let describe_faults ~before =
  fault_kinds
  |> List.filter_map (fun k ->
       let d = Fault.count k - List.assq k before in
       if d > 0 then Some (Printf.sprintf "%s x%d" (Fault.kind_to_string k) d)
       else None)
  |> String.concat ", "

(* Run [scenario] once, taking every dispatch decision from [decide].
   [decide] sees the same (runnable, current) view the scheduler
   does. *)
let run (scenario : Scenario.t) ~(decide : Sched.decider) : result =
  let inst = scenario.make () in
  if Array.length inst.bodies <> scenario.threads then
    invalid_arg
      (Printf.sprintf "Engine.run: scenario %s has %d bodies for %d threads"
         scenario.name (Array.length inst.bodies) scenario.threads);
  let sched = Sched.create check_config in
  Array.iter (fun body -> ignore (Sched.spawn sched body)) inst.bodies;
  let decisions = ref [] and preempts = ref 0 and n = ref 0 in
  Sched.set_decider sched (fun ~runnable ~current ->
    let tid = decide ~runnable ~current in
    if current >= 0 && tid <> current && Array.exists (Int.equal current) runnable
    then incr preempts;
    decisions := tid :: !decisions;
    incr n;
    tid);
  let saved = !Prim.costs in
  let before = List.map (fun k -> (k, Fault.count k)) fault_kinds in
  let failure =
    Fun.protect ~finally:(fun () -> Prim.set_costs saved) (fun () ->
      Prim.set_costs Cost.uniform;
      match Fault.with_counting (fun () -> Sched.run sched) with
      | (), 0 -> inst.finish ()
      | (), _ -> Some ("memory fault: " ^ describe_faults ~before)
      | exception e -> Some ("exception: " ^ Printexc.to_string e))
  in
  { failure; decisions = List.rev !decisions; preemptions = !preempts;
    dispatches = !n }

(* The non-preemptive default: keep the current thread on core; when
   it dies (or before the first dispatch), the lowest-tid runnable
   one.  Both exploration (past its forced prefix) and replay (past
   its segments) extend schedules this way, which is what lets a
   shrunk trace stay short. *)
let default_choice ~runnable ~current =
  if current >= 0 && Array.exists (Int.equal current) runnable then current
  else runnable.(0)

(* Replay: consume the trace's segments, skipping segments whose
   thread is no longer runnable, then fall back to the default. *)
let decider_of_trace (tr : Trace.t) : Sched.decider =
  let segs = ref tr.segments in
  fun ~runnable ~current ->
    let mem tid = Array.exists (Int.equal tid) runnable in
    let rec pick () =
      match !segs with
      | [] -> default_choice ~runnable ~current
      | ({ Trace.tid; steps } as s) :: rest ->
        if steps <= 0 || not (mem tid) then begin
          segs := rest;
          pick ()
        end
        else begin
          segs := { s with steps = steps - 1 } :: rest;
          tid
        end
    in
    pick ()

let replay scenario (trace : Trace.t) =
  if trace.threads <> scenario.Scenario.threads then
    invalid_arg
      (Printf.sprintf
         "Engine.replay: trace %s has %d threads, scenario %s has %d"
         trace.scenario trace.threads scenario.Scenario.name
         scenario.Scenario.threads);
  run scenario ~decide:(decider_of_trace trace)

(* Compress a decision list into trace segments (consecutive equal
   tids collapse). *)
let trace_of_decisions (scenario : Scenario.t) decisions =
  let segments =
    List.fold_left
      (fun acc tid ->
         match acc with
         | (t, n) :: rest when t = tid -> (t, n + 1) :: rest
         | _ -> (tid, 1) :: acc)
      [] decisions
    |> List.rev
  in
  Trace.v ~scenario:scenario.Scenario.name ~threads:scenario.Scenario.threads
    segments
