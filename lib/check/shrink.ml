(* Delta-debugging minimizer for failing schedules.

   A raw witness from the explorer transcribes the entire run — every
   dispatch, including everything after the fault fired and every
   free switch across a thread's death.  The replayer's trailing
   default (continue current; on death, lowest runnable tid) means
   most of that is redundant: what actually matters is the handful of
   preemptions that line the race window up.  Minimizing is therefore
   (a) deleting segments — each deletion removes a switch, letting the
   default schedule absorb the steps — and (b) shortening the segments
   that remain.

   The result is *locally minimal*: the fault survives the shrunk
   trace, but not the removal of any single segment nor the shortening
   of any single segment by one step.  Each pass replays the candidate
   trace from scratch, so the guarantee is with respect to real
   executions, not a model of them.  Both loops run to a joint
   fixpoint (a shorter segment can make a neighbour deletable and vice
   versa); every accepted candidate still faults, so the procedure
   never loses the bug. *)

type stats = {
  replays : int;      (* candidate executions performed *)
  kept_failure : string; (* failure of the final minimal trace *)
}

let still_fails scenario ~replays segments =
  incr replays;
  let trace =
    Trace.v ~scenario:scenario.Scenario.name
      ~threads:scenario.Scenario.threads segments
  in
  (Engine.replay scenario trace).failure <> None

(* One pass of single-segment deletion, restarting after each
   success so earlier deletions can enable later ones. *)
let drop_segments scenario ~replays segments =
  let rec go segments =
    let rec try_at before after =
      match after with
      | [] -> None
      | s :: rest ->
        let candidate = List.rev_append before rest in
        if candidate <> [] && still_fails scenario ~replays candidate then
          Some candidate
        else try_at (s :: before) rest
    in
    match try_at [] segments with
    | Some shorter -> go shorter
    | None -> segments
  in
  go segments

(* Shorten each segment as far as the fault allows: first try
   collapsing to a single step, then walk down one step at a time
   (the final accepted length L is pinned by a failing L-1 replay, so
   the local-minimality guarantee is direct, not inferred from any
   monotonicity assumption). *)
let shorten_segments scenario ~replays segments =
  let arr = Array.of_list segments in
  let candidate () = Array.to_list arr in
  let changed = ref false in
  Array.iteri
    (fun i (tid, steps) ->
       if steps > 1 then begin
         arr.(i) <- (tid, 1);
         if still_fails scenario ~replays (candidate ()) then changed := true
         else begin
           arr.(i) <- (tid, steps);
           let continue_ = ref true in
           while !continue_ do
             let _, cur = arr.(i) in
             if cur <= 1 then continue_ := false
             else begin
               arr.(i) <- (tid, cur - 1);
               if still_fails scenario ~replays (candidate ()) then
                 changed := true
               else begin
                 arr.(i) <- (tid, cur);
                 continue_ := false
               end
             end
           done
         end
       end)
    arr;
  (candidate (), !changed)

let minimize scenario (trace : Trace.t) =
  let replays = ref 0 in
  let segments =
    List.map (fun s -> (s.Trace.tid, s.Trace.steps)) trace.Trace.segments in
  if not (still_fails scenario ~replays segments) then
    invalid_arg
      (Printf.sprintf "Shrink.minimize: trace for %s does not fail"
         scenario.Scenario.name);
  let rec fixpoint segments =
    let segments = drop_segments scenario ~replays segments in
    let segments, changed = shorten_segments scenario ~replays segments in
    if changed then fixpoint segments else segments
  in
  let segments = fixpoint segments in
  let trace =
    Trace.v ~scenario:scenario.Scenario.name
      ~threads:scenario.Scenario.threads segments
  in
  let final = Engine.replay scenario trace in
  let failure = Option.value ~default:"(vanished?)" final.failure in
  (trace, { replays = !replays; kept_failure = failure })

(* Structural check used by the property tests: is [shrunk] obtained
   from [original] by deleting segments and reducing step counts
   (order preserved)?  *)
let is_sub_trace ~original ~shrunk =
  let rec go os ss =
    match ss, os with
    | [], _ -> true
    | _ :: _, [] -> false
    | s :: ss', o :: os' ->
      if s.Trace.tid = o.Trace.tid && s.Trace.steps <= o.Trace.steps then
        go os' ss'
      else go os' (s :: ss')
  in
  go original.Trace.segments shrunk.Trace.segments

(* Local minimality, checked by brute force: every single-segment
   deletion and every single-step shortening loses the fault. *)
let locally_minimal scenario (trace : Trace.t) =
  let replays = ref 0 in
  let segments =
    List.map (fun s -> (s.Trace.tid, s.Trace.steps)) trace.Trace.segments in
  let n = List.length segments in
  let without i = List.filteri (fun j _ -> j <> i) segments in
  let shortened i =
    List.mapi (fun j (tid, steps) -> if j = i then (tid, steps - 1) else (tid, steps))
      segments
  in
  let deletions_fail =
    List.for_all
      (fun i ->
         let c = without i in
         c = [] || not (still_fails scenario ~replays c))
      (List.init n Fun.id)
  in
  deletions_fail
  && List.for_all
       (fun i ->
          let tid_steps = List.nth segments i in
          snd tid_steps <= 1 || not (still_fails scenario ~replays (shortened i)))
       (List.init n Fun.id)
