(* Discrete-event multiprocessor scheduler.

   Simulated threads are effect-handler coroutines ("fibers").  Every
   shared-memory primitive in tracker / data-structure code calls
   [Hooks.step cost]; inside the simulator this performs the [Step]
   effect, suspending the fiber so the scheduler can charge the cost
   and decide whether to keep the thread on its core or preempt it.

   The machine model: [cores] identical cores, each with a next-free
   virtual timestamp.  A dispatch picks the runnable thread that has
   been ready longest and the earliest-free core; the thread then runs
   for up to one [quantum] of cost units.  When there are more threads
   than cores, threads queue for cores — which is exactly how the
   paper's >72-thread oversubscription region produces stalled
   reservations.  Random involuntary stalls (long preemptions) can be
   injected on top, and tests can pin a thread into a permanent stall
   to measure robustness.

   Determinism: given the same config (including seed) and the same
   thread bodies, a run is bit-reproducible.  Ties are broken by
   thread id and core index. *)

type _ Effect.t += Step : unit Effect.t

type _ Effect.t += Crash : unit Effect.t
(* Performed by a thread crashing *itself* mid-operation.  The handler
   abandons the continuation without resuming or discontinuing it, so
   — unlike [Stopped] unwinding — no cleanup handler runs: whatever
   reservations the thread held stay pinned forever.  That is the
   crash-fault model of the robustness literature (DEBRA+/NBR). *)

type _ Effect.t += Neutralize : int -> unit Effect.t
(* Performed by a thread to flag *another* thread for neutralization
   (DEBRA+ restart signal).  The handler marks the victim and resumes
   the caller immediately; the victim observes [Hooks.Neutralized] at
   its next resumption with the restart window open.  Unlike [Crash],
   the victim is unwound through its cleanup path and keeps working. *)

exception Stopped
(* Raised into still-paused fibers when the run ends, so that their
   cleanup handlers execute.  Thread bodies must not swallow it. *)

type config = {
  cores : int;          (* simulated hardware parallelism *)
  quantum : int;        (* cost units a thread may run before preemption *)
  ctx_switch : int;     (* core-side cost of a thread switch *)
  stall_prob : float;   (* chance per quantum of an involuntary stall *)
  stall_len : int;      (* virtual length of an injected stall *)
  crash_prob : float;   (* chance per quantum of a crash fault *)
  max_crashes : int;    (* cap on injected crashes per run *)
  perform_threshold : int; (* min accumulated cost between suspensions *)
  seed : int;
}

(* Defaults calibrated against the paper's machine regime (see
   DESIGN.md §1): the OS timeslice (quantum) holds a few hundred
   data-structure operations, and an involuntary stall — which is
   injected only when threads outnumber cores, since the paper pins
   one thread per hardware context below that — lasts an order of
   magnitude longer than the global epoch period.  That ratio is what
   produces Fig. 9's divergence beyond 72 threads. *)
let default_config = {
  cores = 72;
  quantum = 15_000;
  ctx_switch = 400;
  stall_prob = 0.002;
  stall_len = 240_000;
  crash_prob = 0.0;
  max_crashes = 1;
  perform_threshold = 12;
  seed = 0xf00d;
}

(* A config for tests that want maximal interleaving: single step per
   suspension, tiny quanta, no injected stalls (tests inject their
   own). *)
let test_config ?(cores = 4) ?(seed = 42) () = {
  cores;
  quantum = 40;
  ctx_switch = 1;
  stall_prob = 0.0;
  stall_len = 0;
  crash_prob = 0.0;
  max_crashes = 1;
  perform_threshold = 1;
  seed;
}

type status = Done | Yielded

(* Pluggable decision source (model checking / replay).  When
   installed, each dispatch choice — which runnable thread receives
   the next quantum — is taken from the decider instead of the
   earliest-ready policy, turning the scheduler into an enumerable
   branching point: with [quantum = 1] and [perform_threshold = 1]
   every shared-memory primitive is one decision.  Injected stalls are
   subsumed (a decider that withholds a thread has stalled it), so
   strategies need no separate stall hook. *)
type decider = runnable:int array -> current:int -> int

type fiber =
  | Not_started of (int -> unit)
  | Paused of (unit, status) Effect.Deep.continuation
  | Finished

type thread = {
  tid : int;
  mutable fiber : fiber;
  mutable ready_at : int;   (* virtual time at which it may next run *)
  mutable vtime : int;      (* total cycles this thread has executed *)
  mutable acc : int;        (* cost accrued since last suspension *)
  mutable stalled : bool;   (* permanently stalled by the harness *)
  mutable crashed : bool;   (* crash-faulted: dead, cleanups never ran *)
  mutable quanta : int;     (* quanta received (observability) *)
  mutable neutralized : bool; (* restart signal pending delivery *)
  mutable restart_ok : bool;  (* restart window open (Hooks.restart_window) *)
}

type t = {
  cfg : config;
  mutable threads : thread list; (* reverse spawn order *)
  mutable n_threads : int;
  rng : Rng.t;
  mutable running : thread option;
  mutable makespan : int;
  mutable ran : bool;
  (* Global event sequence: bumped on every charged step, it gives a
     machine-wide timestamp consistent with the order in which shared
     -memory effects actually execute (virtual per-core times can
     reorder across cores; this cannot).  Used to timestamp
     linearizability histories. *)
  mutable gseq : int;
  mutable decider : decider option;
  mutable last_tid : int; (* last dispatched tid; -1 before the first *)
  mutable crashes : int;  (* crash faults delivered (injected + explicit) *)
}

let create cfg =
  if cfg.cores < 1 then invalid_arg "Sched.create: cores must be >= 1";
  if cfg.quantum < 1 then invalid_arg "Sched.create: quantum must be >= 1";
  { cfg; threads = []; n_threads = 0; rng = Rng.create cfg.seed;
    running = None; makespan = 0; ran = false; gseq = 0;
    decider = None; last_tid = -1; crashes = 0 }

let set_decider t d =
  if t.ran then invalid_arg "Sched.set_decider: scheduler already ran";
  t.decider <- Some d

let spawn t body =
  if t.ran then invalid_arg "Sched.spawn: scheduler already ran";
  let tid = t.n_threads in
  t.threads <- { tid; fiber = Not_started body; ready_at = 0; vtime = 0;
                 acc = 0; stalled = false; crashed = false; quanta = 0;
                 neutralized = false; restart_ok = false }
               :: t.threads;
  t.n_threads <- tid + 1;
  tid

let thread_array t =
  let arr = Array.of_list t.threads in
  (* [t.threads] is in reverse spawn order. *)
  Array.sort (fun a b -> compare a.tid b.tid) arr;
  arr

let find_thread t tid =
  match List.find_opt (fun th -> th.tid = tid) t.threads with
  | Some th -> th
  | None -> invalid_arg "Sched: no such thread"

let stall t tid = (find_thread t tid).stalled <- true
let unstall t tid = (find_thread t tid).stalled <- false

(* Mark a thread crash-faulted.  Crashing the *calling* thread performs
   [Crash] so the fiber dies at this very point (its continuation is
   abandoned, never discontinued — cleanup handlers do not run);
   crashing another thread leaves its paused continuation wherever it
   last suspended, equally without unwinding.  Crashing a thread that
   already finished is a no-op: it released everything at exit. *)
let crash t tid =
  let th = find_thread t tid in
  if not th.crashed && th.fiber <> Finished then begin
    th.crashed <- true;
    t.crashes <- t.crashes + 1;
    Ibr_obs.Probe.crash ~tid;
    match t.running with
    | Some r when r.tid = tid -> Effect.perform Crash
    | _ -> ()
  end

let crash_self () = Effect.perform Crash

(* Flag a thread for neutralization.  The signal is delivered as
   [Hooks.Neutralized] at the victim's next resumption whose restart
   window is open; a pending flag simply waits for that point, so the
   signal can never unwind a section that masked it.  Dead threads
   ignore the signal (nothing to heal). *)
let neutralize t tid =
  let th = find_thread t tid in
  if (not th.crashed) && th.fiber <> Finished then begin
    th.neutralized <- true;
    Ibr_obs.Probe.neutralization ~victim:tid
  end

let neutralize_peer tid = Effect.perform (Neutralize tid)

let crashes t = t.crashes
let crashed t tid = (find_thread t tid).crashed

(* Scheduler instances come and go; the metric is published per run. *)
let crashes_gauge = Ibr_obs.Metrics.register_gauge ~name:"crashes" ~order:500
let publish_crashes t = crashes_gauge := t.crashes

let makespan t = t.makespan
let thread_vtime t tid = (find_thread t tid).vtime
let thread_quanta t tid = (find_thread t tid).quanta

(* Resume a fiber for its next segment.  The deep handler converts the
   fiber's next suspension (or termination) into a [status].  A [Crash]
   abandons the continuation: it is neither resumed nor discontinued,
   so the fiber's cleanup handlers never run — the defining difference
   from [Stopped] unwinding. *)
let resume_segment t th =
  match th.fiber with
  | Finished -> Done
  | Paused k ->
    th.fiber <- Finished; (* overwritten on next suspension *)
    if th.neutralized && th.restart_ok then begin
      (* Deliver the restart signal at the resumption boundary.  This
         is sound without any guard-path poll: fibers interleave only
         at suspension points, and every [Prim] wrapper charges (and
         may suspend) *before* its memory access — so any block freed
         by another thread since this fiber last ran has a delivery
         point strictly before the first instruction that could
         dereference it. *)
      th.neutralized <- false;
      Effect.Deep.discontinue k Hooks.Neutralized
    end
    else Effect.Deep.continue k ()
  | Not_started body ->
    th.fiber <- Finished;
    let handler = {
      Effect.Deep.retc = (fun () -> Done);
      exnc = (function Stopped -> Done | e -> raise e);
      effc = (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Step -> Some (fun (k : (a, status) Effect.Deep.continuation) ->
            th.fiber <- Paused k;
            Yielded)
        | Crash -> Some (fun (_ : (a, status) Effect.Deep.continuation) ->
            if not th.crashed then begin
              th.crashed <- true;
              t.crashes <- t.crashes + 1;
              Ibr_obs.Probe.crash ~tid:th.tid
            end;
            Done)
        | Neutralize victim ->
          Some (fun (k : (a, status) Effect.Deep.continuation) ->
            neutralize t victim;
            Effect.Deep.continue k ())
        | _ -> None);
    } in
    Effect.Deep.match_with (fun () -> body th.tid) () handler

(* Run thread [th] for one quantum starting at virtual time [start].
   Returns the number of cycles consumed. *)
let run_quantum t th ~start:_ =
  let cfg = t.cfg in
  let consumed = ref 0 in
  let continue_ = ref true in
  t.running <- Some th;
  while !continue_ do
    match resume_segment t th with
    | Done ->
      (* Flush trailing accrued cost. *)
      consumed := !consumed + th.acc;
      th.vtime <- th.vtime + th.acc;
      th.acc <- 0;
      th.fiber <- Finished;
      continue_ := false
    | Yielded ->
      consumed := !consumed + th.acc;
      th.vtime <- th.vtime + th.acc;
      th.acc <- 0;
      if !consumed >= cfg.quantum then continue_ := false
  done;
  t.running <- None;
  th.quanta <- th.quanta + 1;
  !consumed

let runnable th =
  (not th.stalled) && (not th.crashed) && th.fiber <> Finished

(* Main loop.  [horizon] bounds *virtual wall-clock* time: no quantum
   is dispatched at or after it, mirroring the paper's fixed-duration
   runs. *)
let run ?(horizon = max_int) t =
  if t.ran then invalid_arg "Sched.run: scheduler already ran";
  t.ran <- true;
  let threads = thread_array t in
  let cores = Array.make t.cfg.cores 0 in
  let hooks = {
    Hooks.step = (fun cost ->
      match t.running with
      | None -> ()
      | Some th ->
        t.gseq <- t.gseq + 1;
        th.acc <- th.acc + cost;
        if th.acc >= t.cfg.perform_threshold then Effect.perform Step);
    current_tid = (fun () ->
      match t.running with Some th -> th.tid | None -> 0);
    now = (fun () ->
      match t.running with Some th -> th.vtime + th.acc | None -> 0);
    global_now = (fun () -> t.gseq);
    restart_window = (fun open_ ->
      match t.running with
      | None -> false
      | Some th ->
        let prev = th.restart_ok in
        th.restart_ok <- open_;
        prev);
    (* Delivery happens at resumption (see [resume_segment]); the
       guard-path poll is only needed by backends without a scheduler
       in the loop. *)
    poll_neutralize = (fun () -> ());
  } in
  Hooks.with_handler hooks (fun () ->
    let continue_loop = ref true in
    while !continue_loop do
      let best =
        match t.decider with
        | None ->
          (* Earliest-ready runnable thread; ties by tid. *)
          let best = ref None in
          Array.iter (fun th ->
            if runnable th then
              match !best with
              | None -> best := Some th
              | Some b -> if th.ready_at < b.ready_at then best := Some th)
            threads;
          !best
        | Some decide ->
          (* Candidate tids in ascending order ([threads] is sorted). *)
          let tids =
            Array.to_list threads
            |> List.filter_map (fun th ->
                 if runnable th then Some th.tid else None)
            |> Array.of_list
          in
          if Array.length tids = 0 then None
          else begin
            let tid = decide ~runnable:tids ~current:t.last_tid in
            if not (Array.exists (Int.equal tid) tids) then
              invalid_arg "Sched: decider chose a non-runnable thread";
            Some threads.(tid)
          end
      in
      match best with
      | None -> continue_loop := false
      | Some th ->
        t.last_tid <- th.tid;
        (* Earliest-free core; ties by index. *)
        let core = ref 0 in
        for i = 1 to Array.length cores - 1 do
          if cores.(i) < cores.(!core) then core := i
        done;
        let start = max th.ready_at cores.(!core) in
        if start >= horizon then begin
          (* Past the horizon: unwind the fiber so cleanups run. *)
          (match th.fiber with
           | Paused k ->
             t.running <- Some th;
             (try ignore (Effect.Deep.discontinue k Stopped)
              with Stopped -> ());
             t.running <- None
           | Not_started _ | Finished -> ());
          th.fiber <- Finished
        end else begin
          let used = run_quantum t th ~start in
          let finish = start + used in
          cores.(!core) <- finish + t.cfg.ctx_switch;
          th.ready_at <- finish;
          if t.makespan < finish then t.makespan <- finish;
          (* Involuntary stall injection: only meaningful when threads
             outnumber cores (below that, the paper's methodology pins
             each thread to a dedicated hardware context). *)
          if
            t.n_threads > t.cfg.cores
            && t.cfg.stall_prob > 0.0
            && Rng.chance t.rng t.cfg.stall_prob
          then th.ready_at <- th.ready_at + t.cfg.stall_len;
          (* Crash injection: the thread dies wherever the quantum left
             it — almost always mid-operation, reservations posted.
             Unlike stalls this needs no oversubscription; a crash is a
             process fault, not a scheduling artifact. *)
          if
            t.crashes < t.cfg.max_crashes
            && t.cfg.crash_prob > 0.0
            && th.fiber <> Finished
            && (not th.crashed)
            && Rng.chance t.rng t.cfg.crash_prob
          then begin
            th.crashed <- true;
            t.crashes <- t.crashes + 1;
            Ibr_obs.Probe.crash ~tid:th.tid
          end
        end
    done;
    (* Unwind permanently stalled / never-dispatched fibers — except
       crashed ones, whose continuations are abandoned unresumed so
       their cleanup handlers (end_op, reservation clears) never run. *)
    Array.iter (fun th ->
      match th.fiber with
      | Paused _ when th.crashed -> th.fiber <- Finished
      | Paused k ->
        t.running <- Some th;
        (try ignore (Effect.Deep.discontinue k Stopped) with Stopped -> ());
        t.running <- None;
        th.fiber <- Finished
      | Not_started _ -> th.fiber <- Finished
      | Finished -> ())
      threads)

(* Convenience: build, spawn [n] copies of [body], run, return sched. *)
let run_threads ?(cfg = default_config) ?horizon ~n body =
  let t = create cfg in
  for i = 0 to n - 1 do
    ignore (spawn t (fun tid -> body ~tid ~index:i))
  done;
  run ?horizon t;
  t
