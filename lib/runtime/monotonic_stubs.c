/* Monotonic clock for the domains backend.
 *
 * CLOCK_MONOTONIC through clock_gettime: unlike gettimeofday, the
 * value never jumps under NTP slew or manual clock adjustment, so
 * durations and latencies measured across it are trustworthy.  The
 * native entry point is unboxed (no allocation, no float round-trip);
 * the bytecode shim boxes the int64 as the FFI requires. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <stdint.h>
#include <time.h>

int64_t ibr_monotonic_ns_native(value unit)
{
  struct timespec ts;
  (void)unit;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return (int64_t)ts.tv_sec * 1000000000 + (int64_t)ts.tv_nsec;
}

value ibr_monotonic_ns_bytecode(value unit)
{
  return caml_copy_int64(ibr_monotonic_ns_native(unit));
}
