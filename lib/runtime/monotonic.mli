(** Monotonic wall clock ([clock_gettime(CLOCK_MONOTONIC)]).

    The domains backend times runs and request latencies against this
    clock instead of [Unix.gettimeofday]: it never jumps under NTP or
    manual clock adjustment, and the native call is unboxed/noalloc
    (no float round-trip), so reading it on the hot path is cheap. *)

val now_ns : unit -> int
(** Nanoseconds since an arbitrary fixed origin (boot, typically).
    Only differences are meaningful.  Fits an OCaml [int] for ~292
    years of uptime. *)

val now_us : unit -> int
(** [now_ns () / 1000]. *)
