(* Bridge between reclamation/data-structure code and the execution
   backend.

   Tracker and data-structure code is written once and runs under two
   backends:
   - the discrete-event simulator ([Sched]), where every shared-memory
     primitive must charge its cost and offer a preemption point; and
   - real OCaml domains, where primitives execute natively and the
     hook is a no-op.

   The hook is domain-local state so that the simulator (which runs in
   one domain) and concurrently running real domains never interfere. *)

exception Neutralized
(* Raised *into* a victim thread to deliver a neutralization signal
   (DEBRA+): the backend unwinds the victim's current operation so
   [Ds_common.with_op] can drop its reservations, re-protect, and
   retry from scratch.  On the simulator the scheduler discontinues
   the victim's continuation at its next resumption; on domains the
   guard path polls a per-slot flag ([poll_neutralize]) and raises.
   Delivery is gated on the victim's restart window (below), so the
   signal never lands after an operation's linearization point. *)

type handler = {
  step : int -> unit;        (* charge [cost] cycles; may deschedule *)
  current_tid : unit -> int; (* logical thread id of the caller *)
  now : unit -> int;         (* caller's elapsed virtual time (cycles) *)
  global_now : unit -> int;  (* machine-wide event-order timestamp *)
  restart_window : bool -> bool;
  (* Open/close the caller's restart window; returns the previous
     state.  [Neutralized] may only be delivered while the window is
     open; [Ds_common.with_op] opens it around each restartable
     attempt and masks it across linearization points. *)
  poll_neutralize : unit -> unit;
  (* Guard-path poll (domains backend): raise [Neutralized] if a
     pending signal exists and the window is open.  No-op on the
     simulator, which delivers at resumption instead. *)
}

let default =
  { step = (fun _ -> ()); current_tid = (fun () -> 0); now = (fun () -> 0);
    global_now = (fun () -> 0); restart_window = (fun _ -> false);
    poll_neutralize = (fun () -> ()) }

let key : handler Domain.DLS.key = Domain.DLS.new_key (fun () -> default)

let set h = Domain.DLS.set key h
let reset () = Domain.DLS.set key default

let step cost = (Domain.DLS.get key).step cost
let current_tid () = (Domain.DLS.get key).current_tid ()
let now () = (Domain.DLS.get key).now ()
let global_now () = (Domain.DLS.get key).global_now ()
let restart_window open_ = (Domain.DLS.get key).restart_window open_
let poll_neutralize () = (Domain.DLS.get key).poll_neutralize ()

(* Run [f] with handler [h] installed, restoring the previous handler
   afterwards (exception-safe). *)
let with_handler h f =
  let old = Domain.DLS.get key in
  Domain.DLS.set key h;
  Fun.protect ~finally:(fun () -> Domain.DLS.set key old) f

(* The observability layer sits below the runtime, so it cannot name
   us; inject its clock and thread-id sources here.  Hooks is linked
   by everything, making this the one reliable wiring point. *)
let () =
  Ibr_obs.Probe.set_clock global_now;
  Ibr_obs.Probe.set_tid current_tid
