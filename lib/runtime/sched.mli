(** Deterministic discrete-event multiprocessor scheduler.

    Simulated threads are effect-handler coroutines; every
    shared-memory primitive calls {!Hooks.step}, which suspends the
    fiber so the scheduler can charge its cost and decide whether to
    keep the thread on its core.  The machine model has [cores]
    identical cores with next-free timestamps; threads beyond the
    core count queue — reproducing the paper's >72-thread
    oversubscription (stalled-reservation) regime.  Runs are
    bit-reproducible from the config. *)

type _ Effect.t += Step : unit Effect.t
(** Performed (via {!Hooks.step}) by code running inside a fiber. *)

exception Stopped
(** Raised into still-running fibers when the run ends so their
    cleanup handlers execute; thread bodies must not swallow it. *)

type config = {
  cores : int;              (** simulated hardware parallelism *)
  quantum : int;            (** cost units per scheduling quantum *)
  ctx_switch : int;         (** core-side cost of a thread switch *)
  stall_prob : float;       (** chance per quantum of an involuntary
                                stall; applied only when threads
                                outnumber cores *)
  stall_len : int;          (** virtual length of an injected stall *)
  perform_threshold : int;  (** min accumulated cost between
                                suspensions (interleaving granularity) *)
  seed : int;
}

val default_config : config
(** Calibrated to the paper's machine regime: 72 cores, quanta holding
    a few hundred operations, stalls an order of magnitude longer than
    the epoch period. *)

val test_config : ?cores:int -> ?seed:int -> unit -> config
(** Maximal interleaving: single-step suspensions, tiny quanta, no
    injected stalls. *)

type t

type decider = runnable:int array -> current:int -> int
(** A pluggable dispatch decision source (model checking / replay).
    Called at every dispatch point with the tids of the runnable
    threads in ascending order (never empty) and the tid of the
    previously dispatched thread ([-1] before the first dispatch);
    must return a member of [runnable].  With [quantum = 1] and
    [perform_threshold = 1] every shared-memory primitive becomes one
    decision point, which is how {!Ibr_check} enumerates
    interleavings.  Injected stalls are subsumed: a decider that
    withholds a thread has stalled it. *)

val create : config -> t

val set_decider : t -> decider -> unit
(** Install a decision source; subsequent dispatch choices (and quota
    of injected stall points) come from it instead of the
    earliest-ready policy and the PRNG.  Must be called before
    {!run}. *)

val spawn : t -> (int -> unit) -> int
(** [spawn t body] registers a thread; [body tid] runs when the
    scheduler dispatches it.  Returns the thread id.  Must be called
    before {!run}. *)

val run : ?horizon:int -> t -> unit
(** Dispatch until every thread finishes or [horizon] (virtual
    wall-clock time) is reached; past the horizon remaining fibers are
    unwound with {!Stopped}.  Single-shot. *)

val stall : t -> int -> unit
(** Permanently prevent a thread from being dispatched (robustness
    experiments). *)

val unstall : t -> int -> unit

val makespan : t -> int
(** Virtual completion time of the run (max over cores). *)

val thread_vtime : t -> int -> int
(** Total virtual cycles executed by one thread. *)

val thread_quanta : t -> int -> int
(** Number of scheduling quanta a thread received. *)

val run_threads :
  ?cfg:config -> ?horizon:int -> n:int ->
  (tid:int -> index:int -> unit) -> t
(** Convenience: create, spawn [n] threads, run, return the
    scheduler. *)
