(** Deterministic discrete-event multiprocessor scheduler.

    Simulated threads are effect-handler coroutines; every
    shared-memory primitive calls {!Hooks.step}, which suspends the
    fiber so the scheduler can charge its cost and decide whether to
    keep the thread on its core.  The machine model has [cores]
    identical cores with next-free timestamps; threads beyond the
    core count queue — reproducing the paper's >72-thread
    oversubscription (stalled-reservation) regime.  Runs are
    bit-reproducible from the config. *)

type _ Effect.t += Step : unit Effect.t
(** Performed (via {!Hooks.step}) by code running inside a fiber. *)

type _ Effect.t += Crash : unit Effect.t
(** Performed by a fiber crashing itself ({!crash_self}); the handler
    abandons the continuation without unwinding, so cleanup handlers
    never run. *)

type _ Effect.t += Neutralize : int -> unit Effect.t
(** Performed by a fiber to flag another thread for neutralization
    ({!neutralize_peer}); the handler marks the victim and resumes the
    caller immediately. *)

exception Stopped
(** Raised into still-running fibers when the run ends so their
    cleanup handlers execute; thread bodies must not swallow it. *)

type config = {
  cores : int;              (** simulated hardware parallelism *)
  quantum : int;            (** cost units per scheduling quantum *)
  ctx_switch : int;         (** core-side cost of a thread switch *)
  stall_prob : float;       (** chance per quantum of an involuntary
                                stall; applied only when threads
                                outnumber cores *)
  stall_len : int;          (** virtual length of an injected stall *)
  crash_prob : float;       (** chance per quantum of a crash fault;
                                [0.0] disables injection (and draws
                                nothing from the PRNG, preserving
                                existing streams) *)
  max_crashes : int;        (** cap on injected crash faults per run *)
  perform_threshold : int;  (** min accumulated cost between
                                suspensions (interleaving granularity) *)
  seed : int;
}

val default_config : config
(** Calibrated to the paper's machine regime: 72 cores, quanta holding
    a few hundred operations, stalls an order of magnitude longer than
    the epoch period. *)

val test_config : ?cores:int -> ?seed:int -> unit -> config
(** Maximal interleaving: single-step suspensions, tiny quanta, no
    injected stalls. *)

type t

type decider = runnable:int array -> current:int -> int
(** A pluggable dispatch decision source (model checking / replay).
    Called at every dispatch point with the tids of the runnable
    threads in ascending order (never empty) and the tid of the
    previously dispatched thread ([-1] before the first dispatch);
    must return a member of [runnable].  With [quantum = 1] and
    [perform_threshold = 1] every shared-memory primitive becomes one
    decision point, which is how {!Ibr_check} enumerates
    interleavings.  Injected stalls are subsumed: a decider that
    withholds a thread has stalled it. *)

val create : config -> t

val set_decider : t -> decider -> unit
(** Install a decision source; subsequent dispatch choices (and quota
    of injected stall points) come from it instead of the
    earliest-ready policy and the PRNG.  Must be called before
    {!run}. *)

val spawn : t -> (int -> unit) -> int
(** [spawn t body] registers a thread; [body tid] runs when the
    scheduler dispatches it.  Returns the thread id.  Must be called
    before {!run}. *)

val run : ?horizon:int -> t -> unit
(** Dispatch until every thread finishes or [horizon] (virtual
    wall-clock time) is reached; past the horizon remaining fibers are
    unwound with {!Stopped}.  Single-shot. *)

val stall : t -> int -> unit
(** Permanently prevent a thread from being dispatched (robustness
    experiments).  Unlike {!crash}, a stalled thread's fiber is still
    unwound with {!Stopped} when the run ends, so its cleanups run.
    May be called before the run or from inside another fiber. *)

val unstall : t -> int -> unit

val crash : t -> int -> unit
(** [crash t tid] delivers a crash fault: the thread is removed from
    dispatch and its continuation is abandoned {e without} unwinding —
    cleanup handlers never execute and any reservations it holds stay
    pinned forever (the DEBRA+/NBR crash model; contrast {!stall}).
    Crashing the calling thread kills it at this very point; crashing
    an already-finished thread is a no-op.  May be called before the
    run, from inside a fiber, or from a {!decider} callback. *)

val crash_self : unit -> unit
(** Crash the calling fiber at this program point (performs {!Crash});
    only valid inside a simulated thread. *)

val neutralize : t -> int -> unit
(** [neutralize t tid] flags a thread for neutralization (the DEBRA+
    restart signal; contrast {!crash}).  The victim observes
    {!Hooks.Neutralized} at its next resumption whose restart window
    is open ({!Hooks.restart_window}): [Ds_common.with_op] then drops
    its reservations, re-protects, and retries the interrupted
    operation from scratch — the thread keeps working.  A signal sent
    while the window is masked stays pending until the next open
    resumption.  Delivery is deterministic given the run's schedule.
    No-op on crashed or finished threads. *)

val neutralize_peer : int -> unit
(** {!neutralize} targeting [tid] from inside a simulated thread
    (performs {!Neutralize}); only valid inside a fiber. *)

val crashes : t -> int
(** Crash faults delivered so far (injected plus explicit). *)

val publish_crashes : t -> unit
(** Publish {!crashes} to the ["crashes"] metric gauge (end of run). *)

val crashed : t -> int -> bool

val makespan : t -> int
(** Virtual completion time of the run (max over cores). *)

val thread_vtime : t -> int -> int
(** Total virtual cycles executed by one thread. *)

val thread_quanta : t -> int -> int
(** Number of scheduling quanta a thread received. *)

val run_threads :
  ?cfg:config -> ?horizon:int -> n:int ->
  (tid:int -> index:int -> unit) -> t
(** Convenience: create, spawn [n] threads, run, return the
    scheduler. *)
