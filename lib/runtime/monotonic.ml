(* Monotonic wall clock (see monotonic_stubs.c).  The int64 external
   is unboxed and noalloc, so a read is one C call with no GC
   interaction — safe on any domain, cheap enough for per-batch
   deadline checks on the real-parallelism backend. *)

external now_ns_int64 : unit -> (int64[@unboxed])
  = "ibr_monotonic_ns_bytecode" "ibr_monotonic_ns_native"
[@@noalloc]

let now_ns () = Int64.to_int (now_ns_int64 ())
let now_us () = Int64.to_int (now_ns_int64 ()) / 1000
