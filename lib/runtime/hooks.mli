(** Bridge between reclamation / data-structure code and the execution
    backend.

    The same tracker and data-structure code runs under the
    discrete-event simulator (where every shared-memory primitive
    charges a cost and yields a preemption point) and on real OCaml
    domains (where the hook is a no-op).  The active handler is
    domain-local state. *)

exception Neutralized
(** Delivered {e into} a victim thread as a neutralization signal
    (DEBRA+): unwinds the victim's current operation so
    [Ds_common.with_op] can drop reservations, re-protect, and retry
    from scratch.  Only ever raised while the victim's restart window
    is open (see {!restart_window}). *)

type handler = {
  step : int -> unit;        (** charge cycles; may deschedule the caller *)
  current_tid : unit -> int; (** logical thread id of the caller *)
  now : unit -> int;         (** caller's elapsed virtual time *)
  global_now : unit -> int;  (** machine-wide virtual wall-clock time *)
  restart_window : bool -> bool;
  (** set the caller's restart window; returns the previous state *)
  poll_neutralize : unit -> unit;
  (** guard-path poll: raise {!Neutralized} if a signal is pending *)
}

val default : handler
(** No-op handler (native execution). *)

val set : handler -> unit
val reset : unit -> unit

val step : int -> unit
(** Charge [cost] cycles through the current handler. *)

val current_tid : unit -> int
val now : unit -> int

val global_now : unit -> int
(** Machine-wide event-sequence timestamp, consistent with the order
    in which shared-memory effects execute (used to timestamp
    linearizability histories). *)

val restart_window : bool -> bool
(** [restart_window b] opens ([true]) or closes ([false]) the calling
    thread's restart window and returns the previous state.
    {!Neutralized} is only delivered while the window is open:
    [Ds_common.with_op] opens it around each restartable attempt, and
    data structures mask it ([Ds_common.committed]) across sections
    that must not be unwound once a linearization point has landed. *)

val poll_neutralize : unit -> unit
(** Guard-path neutralization poll (domains backend): raises
    {!Neutralized} if a signal is pending for the caller and the
    restart window is open.  No-op on the simulator, which delivers
    the signal at the victim's next scheduling point instead. *)

val with_handler : handler -> (unit -> 'a) -> 'a
(** Run with a handler installed; restores the previous one
    (exception-safe). *)
