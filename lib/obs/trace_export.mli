(* Chrome trace-event JSON export of the recorded probe stream, plus
   the validator CI gates on and the --hist console report. *)

val write : out_channel -> unit
val write_file : string -> unit

(* Well-formedness + per-track timestamp monotonicity.  Ok n = number
   of events checked. *)
val validate : string -> (int, string) result
val validate_file : string -> (int, string) result

(* Retire-age percentiles and per-primitive cost attribution. *)
val report_hist : Format.formatter -> unit
