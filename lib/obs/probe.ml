(* Typed event tracing with a zero-cost-when-disabled discipline.

   Every emitter is a function whose body starts with a single load
   and branch on [live]; when tracing and histograms are both off,
   that branch is the entire cost — no allocation, no closure, no
   timestamp read.  Probes never call [Hooks.step], so enabling them
   cannot perturb virtual time: a traced run and an untraced run of
   the same seed produce bit-identical results (the reconciliation
   test and the trace-overhead ablation both lean on this).

   Events land in bounded per-thread ring buffers (drop-oldest; the
   drop count is reported so a truncated trace is never mistaken for
   a complete one).  The clock and thread-id sources are injected by
   [Hooks] at link time — this library sits below the runtime, so it
   cannot name them itself. *)

type sweep_phase = Prepare | Snapshot | Scan

let phase_name = function
  | Prepare -> "prepare"
  | Snapshot -> "snapshot"
  | Scan -> "scan"

type event =
  | Alloc of { block : int; reused : bool }
  | Retire of { block : int }
  | Reclaim of { block : int; unpublished : bool }
  | Reserve of { slot : int }
  | Unreserve of { slot : int }
  | Epoch_advance of { epoch : int }
  | Sweep_begin of { phase : sweep_phase }
  | Sweep_end of { phase : sweep_phase; freed : int }
  | Crash
  | Ejection of { victim : int }
  | Neutralization of { victim : int }
  | Pressure
  | Op_begin
  | Op_end
  | Handoff of { block : int }
  | Drain of { drained : int }

type record = { ts : int; tid : int; ev : event }

(* -- clock / tid injection (wired by Ibr_runtime.Hooks at init) -- *)

let clock : (unit -> int) ref = ref (fun () -> 0)
let tid_source : (unit -> int) ref = ref (fun () -> 0)
let set_clock f = clock := f
let set_tid f = tid_source := f

(* -- state -- *)

type ring = {
  buf : record array;
  mutable head : int;          (* next write position *)
  mutable len : int;
  mutable dropped : int;
}

let dummy = { ts = 0; tid = 0; ev = Crash }

let tracing = ref false
let histing = ref false

(* The one flag every emitter branches on. *)
let live = ref false

let ring_capacity = ref 65_536
let rings : ring array ref = ref [||]

let ring_for tid =
  let n = Array.length !rings in
  if tid >= n then begin
    (* A late registrant (the watchdog fiber, an extra domain): grow. *)
    let grown =
      Array.init (tid + 1) (fun i ->
          if i < n then !rings.(i)
          else
            { buf = Array.make !ring_capacity dummy; head = 0; len = 0;
              dropped = 0 })
    in
    rings := grown
  end;
  !rings.(tid)

let push r rec_ =
  let cap = Array.length r.buf in
  r.buf.(r.head) <- rec_;
  r.head <- (r.head + 1) mod cap;
  if r.len < cap then r.len <- r.len + 1 else r.dropped <- r.dropped + 1

(* -- retire-age histogram (lazy; keeps the golden CSV columns) -- *)

let age_order = 700
let retire_age : Metrics.hist option ref = ref None
let retire_ts : (int, int) Hashtbl.t = Hashtbl.create 1024

(* -- retire-path cost histogram (lazy, same discipline): virtual
   cycles the mutator spends inside one [retire] call, including any
   inline sweep it triggers — the quantity the background reclaimer
   moves off the critical path. *)

let cost_order = 710
let retire_cost : Metrics.hist option ref = ref None

(* -- per-primitive cost attribution, bucketed by the Cost fields -- *)

type cost_kind =
  | K_read | K_hot_read | K_write | K_cas | K_cas_fail | K_faa | K_fence
  | K_alloc_fresh | K_alloc_reuse | K_free | K_scan_reservation | K_local

let cost_kinds =
  [ K_read; K_hot_read; K_write; K_cas; K_cas_fail; K_faa; K_fence;
    K_alloc_fresh; K_alloc_reuse; K_free; K_scan_reservation; K_local ]

let cost_kind_name = function
  | K_read -> "read" | K_hot_read -> "hot_read" | K_write -> "write"
  | K_cas -> "cas" | K_cas_fail -> "cas_fail" | K_faa -> "faa"
  | K_fence -> "fence" | K_alloc_fresh -> "alloc_fresh"
  | K_alloc_reuse -> "alloc_reuse" | K_free -> "free"
  | K_scan_reservation -> "scan_reservation" | K_local -> "local"

let kind_index = function
  | K_read -> 0 | K_hot_read -> 1 | K_write -> 2 | K_cas -> 3 | K_cas_fail -> 4
  | K_faa -> 5 | K_fence -> 6 | K_alloc_fresh -> 7 | K_alloc_reuse -> 8
  | K_free -> 9 | K_scan_reservation -> 10 | K_local -> 11

let charge_count = Array.make 12 0
let charge_cycles = Array.make 12 0

(* -- lifecycle -- *)

let refresh_live () = live := !tracing || !histing

let start ?(capacity = 65_536) ~threads () =
  let cap = max 16 capacity in
  ring_capacity := cap;
  rings :=
    Array.init threads (fun _ ->
        { buf = Array.make cap dummy; head = 0; len = 0; dropped = 0 });
  tracing := true;
  refresh_live ()

let enable_hist () =
  (match !retire_age with
   | Some _ -> ()
   | None ->
     retire_age := Some (Metrics.register_histogram ~name:"retire_age"
                           ~order:age_order));
  (match !retire_cost with
   | Some _ -> ()
   | None ->
     retire_cost := Some (Metrics.register_histogram ~name:"retire_cost"
                            ~order:cost_order));
  Hashtbl.reset retire_ts;
  Array.fill charge_count 0 12 0;
  Array.fill charge_cycles 0 12 0;
  histing := true;
  refresh_live ()

let stop () =
  tracing := false;
  histing := false;
  refresh_live ()

let enabled () = !tracing
let hist_enabled () = !histing

let dropped () =
  Array.fold_left (fun acc r -> acc + r.dropped) 0 !rings

(* Per-thread records, oldest first. *)
let per_thread () =
  Array.to_list !rings
  |> List.mapi (fun tid r ->
      let cap = Array.length r.buf in
      let start = (r.head - r.len + cap * 2) mod cap in
      (tid, Array.init r.len (fun i -> r.buf.((start + i) mod cap))))
  |> List.filter (fun (_, a) -> Array.length a > 0)

(* All records merged in timestamp order (stable across threads). *)
let events () =
  per_thread ()
  |> List.concat_map (fun (_, a) -> Array.to_list a)
  |> List.stable_sort (fun a b -> compare a.ts b.ts)

let age_hist () = !retire_age
let cost_hist () = !retire_cost

let charges () =
  List.filter_map
    (fun k ->
       let i = kind_index k in
       if charge_count.(i) = 0 then None
       else Some (k, charge_count.(i), charge_cycles.(i)))
    cost_kinds

(* -- emitters -- *)

let record ev =
  if !tracing then begin
    let tid = !tid_source () in
    push (ring_for tid) { ts = !clock (); tid; ev }
  end

let record_at ~tid ev =
  if !tracing then push (ring_for tid) { ts = !clock (); tid; ev }

let note_retire block =
  if !histing then Hashtbl.replace retire_ts block (!clock ())

let note_reclaim block =
  if !histing then
    match Hashtbl.find_opt retire_ts block with
    | None -> ()                 (* unpublished free: never retired *)
    | Some t0 ->
      Hashtbl.remove retire_ts block;
      (match !retire_age with
       | Some h -> Metrics.observe h (!clock () - t0)
       | None -> ())

let alloc ~block ~reused =
  if !live then record (Alloc { block; reused })

let retire ~block =
  if !live then begin
    record (Retire { block });
    note_retire block
  end

let reclaim ~block ~unpublished =
  if !live then begin
    record (Reclaim { block; unpublished });
    note_reclaim block
  end

let reserve ~slot = if !live then record (Reserve { slot })
let unreserve ~slot = if !live then record (Unreserve { slot })
let epoch_advance ~epoch = if !live then record (Epoch_advance { epoch })
let sweep_begin ~phase = if !live then record (Sweep_begin { phase })

let sweep_end ~phase ~freed =
  if !live then record (Sweep_end { phase; freed })

let crash ~tid = if !live then record_at ~tid Crash
let ejection ~victim = if !live then record (Ejection { victim })
let neutralization ~victim = if !live then record (Neutralization { victim })
let pressure () = if !live then record Pressure
let op_begin () = if !live then record Op_begin
let op_end () = if !live then record Op_end
let handoff ~block = if !live then record (Handoff { block })
let drain ~drained = if !live then record (Drain { drained })

let note_retire_cost cycles =
  if !histing then
    match !retire_cost with
    | Some h -> Metrics.observe h cycles
    | None -> ()

let charge kind cycles =
  if !live && !histing then begin
    let i = kind_index kind in
    charge_count.(i) <- charge_count.(i) + 1;
    charge_cycles.(i) <- charge_cycles.(i) + cycles
  end
