(* Registry of named metrics.  Subsystems register once (at module
   init for counters/gauges, lazily for histograms); the harness
   snapshots the registry per run and the CSV writer derives its
   header from it.  Column order is the explicit [order] key —
   stable regardless of link order. *)

type hist

(* A counter is read-backed (monotone global); runs report the delta
   across [begin_run]..[collect]. *)
val register_counter : name:string -> order:int -> (unit -> int) -> unit

(* A gauge is published by its owner at end of run; [begin_run] zeroes
   it.  Returns the cell to publish into.  Registering the same name
   twice returns the same cell. *)
val register_gauge : name:string -> order:int -> int ref

(* A histogram snapshots to [name_p50;name_p90;name_p99;name_max]
   columns; cleared by [begin_run].  Register only when the columns
   are wanted — the default column set is golden-file pinned. *)
val register_histogram : name:string -> order:int -> hist
val observe : hist -> int -> unit

(* (n, p50, p90, p99, max) of the current observations. *)
val summary : hist -> int * int * int * int * int

(* Header columns, in order. *)
val columns : unit -> string list

type snapshot = (string * int) list
type baseline

(* Zero gauges and histograms; baseline the counters. *)
val begin_run : unit -> baseline

(* One value per column: counters diffed against the baseline, gauges
   as published, histograms as percentiles. *)
val collect : baseline -> snapshot

(* Every column at zero — rows built outside a runner. *)
val zero : unit -> snapshot

(* Lookup with 0 default for unknown columns. *)
val get : snapshot -> string -> int
