(* Chrome trace-event JSON export (the Perfetto/about:tracing format):
   one track per simulated thread, operations and sweep phases as B/E
   duration spans, lifecycle points as instants, and each block's
   retire→reclaim interval as an async b/e pair — the arrow Perfetto
   draws is exactly the interval the paper's schemes reason about.

   Async pair ids are retire sequence numbers, not block ids: block
   ids are reused on reincarnation, so a block that dies twice needs
   two arrows. *)

let escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string b "\\\""
       | '\\' -> Buffer.add_string b "\\\\"
       | '\n' -> Buffer.add_string b "\\n"
       | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* One event object; [extra] carries pre-rendered fields. *)
let emit oc ~first ~ph ~name ~tid ~ts extra =
  if not !first then output_string oc ",\n";
  first := false;
  Printf.fprintf oc
    "{\"name\":\"%s\",\"ph\":\"%s\",\"pid\":1,\"tid\":%d,\"ts\":%d%s}"
    (escape name) ph tid ts extra

let instant oc ~first ~name ~tid ~ts args =
  let extra =
    ",\"s\":\"t\""
    ^ (if args = [] then ""
       else
         ",\"args\":{"
         ^ String.concat ","
             (List.map (fun (k, v) -> Printf.sprintf "\"%s\":%d" k v) args)
         ^ "}")
  in
  emit oc ~first ~ph:"i" ~name ~tid ~ts extra

let write oc =
  let events = Probe.events () in
  output_string oc "{\"traceEvents\":[\n";
  let first = ref true in
  (* Thread-name metadata, one per track that has events. *)
  List.iter
    (fun (tid, _) ->
       if not !first then output_string oc ",\n";
       first := false;
       Printf.fprintf oc
         "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,\
          \"args\":{\"name\":\"sim thread %d\"}}"
         tid tid)
    (Probe.per_thread ());
  (* Retire→reclaim pairing: latest open retire per block id. *)
  let open_retire : (int, int) Hashtbl.t = Hashtbl.create 1024 in
  let next_seq = ref 0 in
  List.iter
    (fun { Probe.ts; tid; ev } ->
       match ev with
       | Probe.Op_begin -> emit oc ~first ~ph:"B" ~name:"op" ~tid ~ts ""
       | Probe.Op_end -> emit oc ~first ~ph:"E" ~name:"op" ~tid ~ts ""
       | Probe.Sweep_begin { phase } ->
         emit oc ~first ~ph:"B"
           ~name:("sweep:" ^ Probe.phase_name phase)
           ~tid ~ts ""
       | Probe.Sweep_end { phase; freed } ->
         emit oc ~first ~ph:"E"
           ~name:("sweep:" ^ Probe.phase_name phase)
           ~tid ~ts
           (Printf.sprintf ",\"args\":{\"freed\":%d}" freed)
       | Probe.Alloc { block; reused } ->
         instant oc ~first ~name:"alloc" ~tid ~ts
           [ ("block", block); ("reused", if reused then 1 else 0) ]
       | Probe.Retire { block } ->
         let seq = !next_seq in
         incr next_seq;
         Hashtbl.replace open_retire block seq;
         emit oc ~first ~ph:"b" ~name:"retired" ~tid ~ts
           (Printf.sprintf ",\"cat\":\"reclaim\",\"id\":%d" seq)
       | Probe.Reclaim { block; unpublished } ->
         (match Hashtbl.find_opt open_retire block with
          | Some seq when not unpublished ->
            Hashtbl.remove open_retire block;
            emit oc ~first ~ph:"e" ~name:"retired" ~tid ~ts
              (Printf.sprintf ",\"cat\":\"reclaim\",\"id\":%d" seq)
          | _ ->
            (* Unpublished dealloc, or the retire fell out of a full
               ring: a plain instant keeps the track honest. *)
            instant oc ~first ~name:"free" ~tid ~ts [ ("block", block) ])
       | Probe.Reserve { slot } ->
         instant oc ~first ~name:"reserve" ~tid ~ts [ ("slot", slot) ]
       | Probe.Unreserve { slot } ->
         instant oc ~first ~name:"unreserve" ~tid ~ts [ ("slot", slot) ]
       | Probe.Epoch_advance { epoch } ->
         instant oc ~first ~name:"epoch_advance" ~tid ~ts [ ("epoch", epoch) ]
       | Probe.Crash -> instant oc ~first ~name:"crash" ~tid ~ts []
       | Probe.Ejection { victim } ->
         instant oc ~first ~name:"ejection" ~tid ~ts [ ("victim", victim) ]
       | Probe.Neutralization { victim } ->
         instant oc ~first ~name:"neutralization" ~tid ~ts
           [ ("victim", victim) ]
       | Probe.Pressure -> instant oc ~first ~name:"pressure" ~tid ~ts []
       | Probe.Handoff { block } ->
         instant oc ~first ~name:"handoff" ~tid ~ts [ ("block", block) ]
       | Probe.Drain { drained } ->
         instant oc ~first ~name:"drain" ~tid ~ts [ ("drained", drained) ])
    events;
  Printf.fprintf oc "\n],\"displayTimeUnit\":\"ns\",\"otherData\":{\
                     \"dropped\":%d}}\n"
    (Probe.dropped ())

let write_file path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write oc)

(* -- validation (CI, tests): well-formed, monotone per track -- *)

let validate (content : string) : (int, string) result =
  match Json.parse content with
  | Error e -> Error ("not valid JSON: " ^ e)
  | Ok root ->
    (match Option.bind (Json.member "traceEvents" root) Json.to_list with
     | None -> Error "missing traceEvents array"
     | Some events ->
       let last_ts : (int, float) Hashtbl.t = Hashtbl.create 64 in
       let err = ref None in
       let check i ev =
         if !err = None then
           match Option.bind (Json.member "ph" ev) Json.to_string with
           | None -> err := Some (Printf.sprintf "event %d: missing ph" i)
           | Some "M" -> ()
           | Some _ ->
             let num key = Option.bind (Json.member key ev) Json.to_float in
             (match num "tid", num "ts", num "pid" with
              | Some tid, Some ts, Some _ ->
                let tid = int_of_float tid in
                (match Hashtbl.find_opt last_ts tid with
                 | Some prev when ts < prev ->
                   err :=
                     Some
                       (Printf.sprintf
                          "event %d: track %d goes back in time (%g < %g)" i
                          tid ts prev)
                 | _ -> Hashtbl.replace last_ts tid ts)
              | _ ->
                err := Some (Printf.sprintf "event %d: missing pid/tid/ts" i))
       in
       List.iteri check events;
       (match !err with
        | Some e -> Error e
        | None -> Ok (List.length events)))

let validate_file path =
  let ic = open_in_bin path in
  let content =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  validate content

(* -- histogram / attribution report for --hist -- *)

let report_hist ppf =
  (match Probe.age_hist () with
   | None -> Fmt.pf ppf "retire-age: histogram not enabled@."
   | Some h ->
     let n, p50, p90, p99, max = Metrics.summary h in
     Fmt.pf ppf
       "retire-age (cycles from retire to reclaim, %d blocks): p50=%d p90=%d \
        p99=%d max=%d@."
       n p50 p90 p99 max);
  match Probe.charges () with
  | [] -> ()
  | charges ->
    Fmt.pf ppf "cost attribution (per primitive):@.";
    List.iter
      (fun (k, count, cycles) ->
         Fmt.pf ppf "  %-18s %10d calls %12d cycles@."
           (Probe.cost_kind_name k) count cycles)
      charges
