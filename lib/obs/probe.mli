(* Typed event probes.  Every emitter's disabled path is one load and
   one branch; probes never charge simulator cost, so a traced run is
   bit-identical (in virtual time) to an untraced one. *)

type sweep_phase = Prepare | Snapshot | Scan

val phase_name : sweep_phase -> string

type event =
  | Alloc of { block : int; reused : bool }
  | Retire of { block : int }
  | Reclaim of { block : int; unpublished : bool }
  | Reserve of { slot : int }
  | Unreserve of { slot : int }
  | Epoch_advance of { epoch : int }
  | Sweep_begin of { phase : sweep_phase }
  | Sweep_end of { phase : sweep_phase; freed : int }
  | Crash
  | Ejection of { victim : int }
  | Neutralization of { victim : int }
  | Pressure
  | Op_begin
  | Op_end
  | Handoff of { block : int }   (* retire queued for the reclaimer *)
  | Drain of { drained : int }   (* one reclaimer drain batch *)

type record = { ts : int; tid : int; ev : event }

(* Injected by the runtime's [Hooks] at link time: the virtual clock
   ([Hooks.global_now]) and the current thread id. *)
val set_clock : (unit -> int) -> unit
val set_tid : (unit -> int) -> unit

(* Start recording into per-thread ring buffers ([capacity] records
   each, drop-oldest).  Threads beyond [threads] get rings on demand. *)
val start : ?capacity:int -> threads:int -> unit -> unit

(* Additionally track retire-to-reclaim ages (registers the
   [retire_age] histogram metric) and per-primitive cost attribution.
   Independent of [start]: histograms without a trace file is fine. *)
val enable_hist : unit -> unit

val stop : unit -> unit
val enabled : unit -> bool
val hist_enabled : unit -> bool

(* Records dropped across all rings (0 = the trace is complete). *)
val dropped : unit -> int

(* Recorded events: per thread oldest-first, or merged in timestamp
   order. *)
val per_thread : unit -> (int * record array) list
val events : unit -> record list

(* -- emitters (safe to call unconditionally; no-ops when disabled) -- *)

val alloc : block:int -> reused:bool -> unit
val retire : block:int -> unit
val reclaim : block:int -> unpublished:bool -> unit
val reserve : slot:int -> unit
val unreserve : slot:int -> unit
val epoch_advance : epoch:int -> unit
val sweep_begin : phase:sweep_phase -> unit
val sweep_end : phase:sweep_phase -> freed:int -> unit

(* The scheduler's crash injector runs with no fiber current, so the
   victim's tid is explicit. *)
val crash : tid:int -> unit
val ejection : victim:int -> unit
val neutralization : victim:int -> unit
val pressure : unit -> unit
val op_begin : unit -> unit
val op_end : unit -> unit
val handoff : block:int -> unit
val drain : drained:int -> unit

(* Observe one retire call's on-thread cost (virtual cycles) into the
   lazy [retire_cost] histogram; no-op unless [enable_hist] ran. *)
val note_retire_cost : int -> unit

(* -- cost attribution, bucketed by the [Cost] fields -- *)

type cost_kind =
  | K_read | K_hot_read | K_write | K_cas | K_cas_fail | K_faa | K_fence
  | K_alloc_fresh | K_alloc_reuse | K_free | K_scan_reservation | K_local

val cost_kind_name : cost_kind -> string
val charge : cost_kind -> int -> unit

(* Non-zero buckets: (kind, count, total cycles). *)
val charges : unit -> (cost_kind * int * int) list

(* The retire-age and retire-path-cost histograms, once [enable_hist]
   has registered them. *)
val age_hist : unit -> Metrics.hist option
val cost_hist : unit -> Metrics.hist option
