(* Minimal JSON reader for validating exported traces (tests, CI). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result

(* Compact one-line serialization; [parse] inverts it.  Integral
   floats print without a fractional part. *)
val encode : t -> string
val member : string -> t -> t option
val to_list : t -> t list option
val to_float : t -> float option
val to_string : t -> string option
