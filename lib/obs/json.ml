(* A minimal JSON reader, just enough to validate exported traces in
   tests and CI without adding a dependency.  Accepts the subset the
   exporter emits (plus escapes and nesting generally); numbers are
   floats, as in the real grammar. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Bad of string * int

let parse (s : string) : (t, string) result =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then s.[!pos] else '\255' in
  let advance () = incr pos in
  let fail msg = raise (Bad (msg, !pos)) in
  let rec skip_ws () =
    match peek () with
    | ' ' | '\t' | '\n' | '\r' -> advance (); skip_ws ()
    | _ -> ()
  in
  let expect c =
    if peek () = c then advance ()
    else fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    String.iter expect word;
    v
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '"' -> advance (); Buffer.contents b
      | '\\' ->
        advance ();
        (match peek () with
         | '"' -> Buffer.add_char b '"'
         | '\\' -> Buffer.add_char b '\\'
         | '/' -> Buffer.add_char b '/'
         | 'n' -> Buffer.add_char b '\n'
         | 't' -> Buffer.add_char b '\t'
         | 'r' -> Buffer.add_char b '\r'
         | 'b' -> Buffer.add_char b '\b'
         | 'f' -> Buffer.add_char b '\012'
         | 'u' ->
           (* Keep the escape verbatim; the exporter never emits it. *)
           Buffer.add_string b "\\u"
         | c -> fail (Printf.sprintf "bad escape %C" c));
        advance ();
        go ()
      | '\255' -> fail "unterminated string"
      | c -> advance (); Buffer.add_char b c; go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e'
      || c = 'E'
    in
    while num_char (peek ()) do advance () done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '{' ->
      advance ();
      skip_ws ();
      if peek () = '}' then begin advance (); Obj [] end
      else begin
        let rec members acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | ',' -> advance (); members ((key, v) :: acc)
          | '}' -> advance (); Obj (List.rev ((key, v) :: acc))
          | _ -> fail "expected , or } in object"
        in
        members []
      end
    | '[' ->
      advance ();
      skip_ws ();
      if peek () = ']' then begin advance (); Arr [] end
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | ',' -> advance (); elements (v :: acc)
          | ']' -> advance (); Arr (List.rev (v :: acc))
          | _ -> fail "expected , or ] in array"
        in
        elements []
      end
    | '"' -> Str (parse_string ())
    | 't' -> literal "true" (Bool true)
    | 'f' -> literal "false" (Bool false)
    | 'n' -> literal "null" Null
    | c when c = '-' || (c >= '0' && c <= '9') -> parse_number ()
    | c -> fail (Printf.sprintf "unexpected %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad (msg, at) ->
    Error (Printf.sprintf "%s at offset %d" msg at)

(* Serializer for the JSON artifacts the repo emits (the bench
   records); [parse] inverts it.  Integral floats print without a
   fractional part so counters stay readable and diffable. *)
let escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string b "\\\""
       | '\\' -> Buffer.add_string b "\\\\"
       | '\n' -> Buffer.add_string b "\\n"
       | '\t' -> Buffer.add_string b "\\t"
       | '\r' -> Buffer.add_string b "\\r"
       | c when Char.code c < 0x20 ->
         Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let rec encode = function
  | Null -> "null"
  | Bool b -> if b then "true" else "false"
  | Num f ->
    if Float.is_integer f && Float.abs f < 1e15 then
      Printf.sprintf "%.0f" f
    else Printf.sprintf "%.6f" f
  | Str s -> Printf.sprintf "\"%s\"" (escape s)
  | Arr l -> "[" ^ String.concat "," (List.map encode l) ^ "]"
  | Obj l ->
    "{"
    ^ String.concat ", "
        (List.map
           (fun (k, v) -> Printf.sprintf "\"%s\": %s" (escape k) (encode v))
           l)
    ^ "}"

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_list = function Arr l -> Some l | _ -> None
let to_float = function Num f -> Some f | _ -> None
let to_string = function Str s -> Some s | _ -> None
