(* The metric registry: the single place a subsystem declares what it
   measures.  [Stats] snapshots the registry and [Csv_out] derives its
   header from it, so adding a metric touches exactly one file — the
   one that owns the number.

   Three kinds, matching the three lifetimes telemetry actually has
   here:

   - [Counter]: backed by a read function over a monotone global
     (e.g. [Fault.total], the [Sweep_stats] atomics).  A run reports
     the *delta* across its measured phase, so counters are read once
     at [begin_run] and diffed at [collect].

   - [Gauge]: an instance-scoped value with no global to read
     (allocator stats, the final epoch, a scheduler's crash count).
     The owner *publishes* it at end of run; [begin_run] zeroes every
     gauge so a run that never publishes (e.g. the domains backend has
     no watchdog) reports 0 rather than the previous run's value.

   - [Histogram]: a distribution observed during the run (retire-to-
     reclaim age).  Snapshots to four columns (p50/p90/p99/max) and is
     cleared by [begin_run].  Histograms are registered lazily — only
     when tracing asks for them — so the default CSV column set is
     exactly the pre-registry one (the golden-file test pins it).

   Column order is an explicit [order] key, not registration order:
   module initialisation order is a linker artifact we refuse to
   depend on. *)

type hist = {
  mutable obs : int array;     (* growable scratch, unsorted *)
  mutable n : int;
}

type kind =
  | Counter of (unit -> int)
  | Gauge of int ref
  | Histogram of hist

type metric = { name : string; order : int; kind : kind }

let registry : metric list ref = ref []

let find name = List.find_opt (fun m -> m.name = name) !registry

let add m =
  (* Idempotent by name: registration happens at module init, which
     runs once, but lazy registrations (histograms) may be re-enabled. *)
  match find m.name with
  | Some existing -> existing
  | None ->
    registry := m :: !registry;
    m

let register_counter ~name ~order read =
  ignore (add { name; order; kind = Counter read })

let register_gauge ~name ~order =
  match add { name; order; kind = Gauge (ref 0) } with
  | { kind = Gauge cell; _ } -> cell
  | _ -> invalid_arg ("metric " ^ name ^ " already registered with another kind")

let register_histogram ~name ~order =
  match add { name; order; kind = Histogram { obs = Array.make 64 0; n = 0 } }
  with
  | { kind = Histogram h; _ } -> h
  | _ -> invalid_arg ("metric " ^ name ^ " already registered with another kind")

let observe h v =
  if h.n = Array.length h.obs then begin
    let bigger = Array.make (2 * h.n) 0 in
    Array.blit h.obs 0 bigger 0 h.n;
    h.obs <- bigger
  end;
  h.obs.(h.n) <- v;
  h.n <- h.n + 1

let ordered () =
  List.sort (fun a b -> compare (a.order, a.name) (b.order, b.name)) !registry

(* Histograms expand to four columns; everything else to one. *)
let columns_of m =
  match m.kind with
  | Counter _ | Gauge _ -> [ m.name ]
  | Histogram _ ->
    [ m.name ^ "_p50"; m.name ^ "_p90"; m.name ^ "_p99"; m.name ^ "_max" ]

let columns () = List.concat_map columns_of (ordered ())

let percentile sorted n p =
  if n = 0 then 0
  else sorted.(min (n - 1) (int_of_float (float_of_int n *. p)))

let values_of m =
  match m.kind with
  | Counter read -> [ read () ]
  | Gauge cell -> [ !cell ]
  | Histogram h ->
    let sorted = Array.sub h.obs 0 h.n in
    Array.sort compare sorted;
    [ percentile sorted h.n 0.50; percentile sorted h.n 0.90;
      percentile sorted h.n 0.99; (if h.n = 0 then 0 else sorted.(h.n - 1)) ]

(* (n, p50, p90, p99, max) of a histogram's current observations. *)
let summary h =
  let sorted = Array.sub h.obs 0 h.n in
  Array.sort compare sorted;
  ( h.n,
    percentile sorted h.n 0.50,
    percentile sorted h.n 0.90,
    percentile sorted h.n 0.99,
    if h.n = 0 then 0 else sorted.(h.n - 1) )

(* A run snapshot: every registered column, in order, as an int. *)
type snapshot = (string * int) list

(* Opaque counter baseline taken at [begin_run]. *)
type baseline = (string * int) list

let begin_run () : baseline =
  List.iter
    (fun m ->
       match m.kind with
       | Counter _ -> ()
       | Gauge cell -> cell := 0
       | Histogram h -> h.n <- 0)
    !registry;
  List.filter_map
    (fun m ->
       match m.kind with
       | Counter read -> Some (m.name, read ())
       | Gauge _ | Histogram _ -> None)
    !registry

let collect (before : baseline) : snapshot =
  List.concat_map
    (fun m ->
       let base =
         match List.assoc_opt m.name before with Some v -> v | None -> 0
       in
       let vs =
         match m.kind with
         | Counter _ -> List.map (fun v -> v - base) (values_of m)
         | Gauge _ | Histogram _ -> values_of m
       in
       List.combine (columns_of m) vs)
    (ordered ())

(* All registered columns at zero: the row shape for results built
   outside a runner (replaces the old hand-maintained [Stats.no_sweep]). *)
let zero () : snapshot = List.map (fun c -> (c, 0)) (columns ())

let get snapshot name =
  match List.assoc_opt name snapshot with Some v -> v | None -> 0
