(* DEBRA (Brown, "Reclaiming memory for lock-free data structures:
   there has to be a better way", PODC 2015): epoch-based reclamation
   with per-thread limbo bags and *amortized* epoch announcements.

   Two differences from the plain EBR of §2.2:

   - Announcement amortization: a thread re-reads the global epoch
     only every [announce_freq] operations, re-publishing a cached
     value in between.  A cached announcement is at most stale —
     i.e. smaller — which only makes the reservation *more*
     conservative (it pins a superset), so soundness is unaffected
     while the hot path drops the shared epoch load.  Per-operation
     publication and clearing are kept: the reservation slot still
     goes quiescent ([max_int]) at every [end_op], exactly like EBR.

   - Limbo bags: retired blocks go into epoch-bucketed limbo lists
     (the [Buckets] reclaimer backend) rather than a flat list — a
     bag whose epoch precedes every announcement frees as a unit.
     A caller-chosen [Gated] backend is respected; only the default
     flat [List] is remapped.

   DEBRA alone is not robust — a stalled thread still pins everything
   retired after its announcement.  The neutralization that makes it
   robust (DEBRA+) lives in [Debra_plus]; the recovery policy is the
   functor parameter below. *)

module type POLICY = sig
  val name : string
  val summary : string

  val invalidate_cache_on_recover : bool
  (* DEBRA+ promptness: a neutralized thread forgets its cached epoch
     so the restarted operation announces a fresh one, unpinning
     everything the stale announcement held. *)

  val reprotect_on_recover : bool
  (* The soundness half of recovery: re-run [start_op] before the
     operation retries.  [false] is the deliberately unsound
     debra-norestart oracle — the retry runs with a quiescent
     reservation and the model checker exhibits its use-after-free. *)
end

module Make (P : POLICY) : Tracker_intf.TRACKER = struct
  let name = P.name

  let props = {
    Tracker_intf.robust = false;
    needs_unreserve = false;
    mutable_pointers = true;
    bounded_slots = false;
    pointer_tag_words = 0;
    fence_per_read = false;
    summary = P.summary;
  }

  type 'a t = {
    epoch : Epoch.t;
    reservations : int Atomic.t array;
    alloc : 'a Alloc.t;
    cfg : Tracker_intf.config;
    census : 'a Handoff.path Tracker_common.Census.t;
    mutable handoff : 'a Handoff.t option;
  }

  type 'a handle = {
    t : 'a t;
    tid : int;
    alloc_counter : int ref;
    announce_left : int ref; (* fresh epoch read when this hits 0 *)
    cached : int ref;        (* last announced epoch; -1 = none yet *)
    path : 'a Handoff.path;
  }

  type 'a ptr = 'a Plain_ptr.t

  (* Same single-threshold conflict as EBR: reclaim every block
     retired before the oldest announcement. *)
  let make_reclaimer t ~tid =
    Reclaimer.create ~backend:t.cfg.Tracker_intf.retire_backend
      ~empty_freq:t.cfg.Tracker_intf.empty_freq
      ~current_epoch:(fun () -> Epoch.peek t.epoch)
      ~source:(fun () ->
        let reservations =
          Tracker_common.snapshot_reservations t.reservations in
        let max_safe = Array.fold_left min max_int reservations in
        Reclaimer.Shape (Tracker_common.Conflict.Threshold max_safe))
      ~free:(fun b -> Alloc.free t.alloc ~tid b)
      ()

  let create ~threads (cfg : Tracker_intf.config) =
    Tracker_intf.validate ~threads cfg;
    (* Limbo bags are the scheme: remap the default flat list to the
       epoch-bucketed backend (an explicit [Gated] choice stands). *)
    let cfg =
      match cfg.Tracker_intf.retire_backend with
      | Reclaimer.List -> { cfg with retire_backend = Reclaimer.Buckets }
      | Reclaimer.Buckets | Reclaimer.Gated -> cfg
    in
    let t = {
      epoch = Epoch.create ();
      reservations = Array.init threads (fun _ -> Atomic.make max_int);
      alloc =
        Alloc.create ~reuse:cfg.reuse ~magazine_size:cfg.magazine_size
          ~threads:(threads + if cfg.background_reclaim then 1 else 0) ();
      cfg;
      census = Tracker_common.Census.create threads;
      handoff = None;
    } in
    if cfg.background_reclaim then
      t.handoff <-
        Some
          (Handoff.create ~producers:threads ~batch:cfg.handoff_batch
             (make_reclaimer t ~tid:threads));
    t

  let fresh_handle t tid path =
    { t; tid; alloc_counter = ref 0; announce_left = ref 0;
      cached = ref (-1); path }

  let register t ~tid =
    let path =
      match t.handoff with
      | Some h -> Handoff.Queued h
      | None -> Handoff.Direct (make_reclaimer t ~tid)
    in
    Alloc.set_pressure_hook t.alloc ~tid (fun () ->
      Handoff.path_pressure path);
    fresh_handle t tid path

  let attach t =
    match
      Tracker_common.Census.try_attach t.census ~make:(fun tid ->
        match t.handoff with
        | Some h -> Handoff.Queued h
        | None -> Handoff.Direct (make_reclaimer t ~tid))
    with
    | None -> None
    | Some (tid, path) ->
      Alloc.set_pressure_hook t.alloc ~tid (fun () ->
        Handoff.path_pressure path);
      Some (fresh_handle t tid path)

  let handle_tid h = h.tid

  let alloc h payload =
    Epoch.tick h.t.epoch ~counter:h.alloc_counter ~freq:h.t.cfg.epoch_freq;
    let b = Alloc.alloc h.t.alloc ~tid:h.tid payload in
    Block.set_birth_epoch b (Epoch.peek h.t.epoch);
    b

  let dealloc h b = Alloc.free_unpublished h.t.alloc ~tid:h.tid b

  let retire h b =
    Block.transition_retire b;
    (* The retire tag must not be stale (a smaller epoch would let the
       bag free early), so this read is never amortized. *)
    Block.set_retire_epoch b (Epoch.read h.t.epoch);
    Handoff.path_add h.path ~tid:h.tid b

  (* The amortized announcement: a fresh shared-epoch read only every
     [announce_freq] operations; in between, re-publish the cached
     value for the cost of a local decrement.  Staleness is bounded by
     one announcement period and errs conservative. *)
  let announce_epoch h =
    if !(h.cached) < 0 || !(h.announce_left) <= 0 then begin
      h.announce_left := h.t.cfg.announce_freq;
      h.cached := Epoch.read h.t.epoch
    end
    else Prim.local 1;
    h.announce_left := !(h.announce_left) - 1;
    !(h.cached)

  let start_op h =
    Prim.write h.t.reservations.(h.tid) (announce_epoch h);
    Ibr_obs.Probe.reserve ~slot:0

  let end_op h =
    Prim.write h.t.reservations.(h.tid) max_int;
    Ibr_obs.Probe.unreserve ~slot:0

  let make_ptr _ ?tag target = Plain_ptr.make ?tag target
  let read _ ~slot:_ p = Plain_ptr.read p
  let read_root h p = read h ~slot:0 p
  let write _ p ?tag target = Plain_ptr.write p ?tag target
  let cas _ p ~expected ?tag target = Plain_ptr.cas p ~expected ?tag target
  let unreserve _ ~slot:_ = ()
  let reassign _ ~src:_ ~dst:_ = ()

  let retired_count h = Handoff.path_count h.path

  let force_empty h =
    Handoff.path_drain h.path ~tid:h.tid;
    Reclaimer.force (Handoff.path_reclaimer h.path)

  let allocator t = t.alloc
  let epoch_value t = Epoch.peek t.epoch
  let reclaim_service t = Option.map Handoff.service t.handoff

  (* Neutralize a dead (or suspended) thread: clear its announcement,
     flushing its producer-private handoff scratch first so batched
     retires reach the drainer instead of stranding until detach. *)
  let eject t ~tid =
    (match t.handoff with Some h -> Handoff.flush_own h ~tid | None -> ());
    Prim.write t.reservations.(tid) max_int

  (* Neutralization recovery, parameterized by policy: self-expire,
     then (DEBRA+) forget the cached epoch for a prompt fresh
     announcement, then (every sound variant) re-protect as a fresh
     [start_op].  See [POLICY]. *)
  let recover h =
    eject h.t ~tid:h.tid;
    if P.invalidate_cache_on_recover then begin
      h.cached := -1;
      h.announce_left := 0
    end;
    if P.reprotect_on_recover then start_op h

  let detach h =
    force_empty h;
    eject h.t ~tid:h.tid;
    Alloc.flush_magazines h.t.alloc ~tid:h.tid;
    Tracker_common.Census.detach h.t.census ~tid:h.tid
end

include Make (struct
    let name = "DEBRA"
    let summary =
      "EBR with amortized announcements (fresh epoch read every k ops) \
       and epoch-bucketed limbo bags; fast, not robust alone"
    let invalidate_cache_on_recover = false
    let reprotect_on_recover = true
  end)
