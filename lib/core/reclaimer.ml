(* The retirement side of every tracker, as one pluggable layer.

   Every scheme used to own a hand-rolled copy of the same pipeline:
   a per-thread retired list, an [empty_freq] countdown, and a sweep
   that conflict-tests *every* retired block even when nothing can
   possibly be freed.  This module owns that pipeline once, behind a
   backend choice threaded through [Tracker_intf.config]:

   - [List]    — the original single list, swept in full.  Kept as the
                 differential-testing oracle and the ablation baseline.
   - [Buckets] — epoch-bucketed limbo lists (DEBRA's layout): blocks
                 sharing a retire epoch share a bucket, buckets are
                 kept sorted by retire epoch.  A [Threshold] sweep
                 (EBR/QSBR/Fraser) frees or keeps whole buckets without
                 touching their blocks — O(freed + buckets) instead of
                 O(retired) — and an [Intervals] sweep (HE/POIBR/IBR
                 family) frees wholesale every bucket older than the
                 smallest reserved lower endpoint before falling back
                 to per-block tests.
   - [Gated]   — [Buckets] plus sweep gating: after a sweep that freed
                 nothing, the whole sweep (reservation snapshot
                 included) is skipped until the global epoch moves,
                 because the conflict bound that just kept every block
                 is typically still in force.  A heuristic, not a
                 safety property: gating can only defer frees, never
                 admit one, and [force] bypasses it.

   The tracker supplies its conflict source as closures at [create]
   time; the sweep itself — storage walk, wholesale frees, telemetry —
   is shared by all twelve schemes. *)

type backend = List | Buckets | Gated

let backend_name = function
  | List -> "list"
  | Buckets -> "buckets"
  | Gated -> "gated"

let backend_of_string s =
  match String.lowercase_ascii s with
  | "list" -> Some List
  | "buckets" -> Some Buckets
  | "gated" -> Some Gated
  | _ -> None

let all_backends = [ List; Buckets; Gated ]

(* What a sweep tests blocks against: the structured conflicts of
   [Tracker_common.Conflict] (which the bucket walk can exploit), or
   an opaque per-block predicate (HP's hazard-id set, the legacy
   linear-scan oracles) that forces per-block examination. *)
type 'a test =
  | Shape of Tracker_common.Conflict.t
  | Predicate of ('a Block.t -> bool)

let pred_of = function
  | Shape c -> Tracker_common.Conflict.pred c
  | Predicate p -> p

(* One limbo bucket: every block in it was retired in [epoch]. *)
type 'a bucket = {
  epoch : int;
  mutable blocks : 'a Block.t list;
  mutable size : int;
}

type 'a bucketed = {
  mutable newest : 'a bucket list; (* strictly descending retire epoch *)
  mutable count : int;
}

type 'a store =
  | Flat of 'a Tracker_common.Retired.t
  | Bucketed of 'a bucketed

type 'a t = {
  backend : backend;
  empty_freq : int;
  prepare : unit -> unit;
  (* Run at every retire-cadence sweep attempt, *before* the gate is
     consulted (QSBR/Fraser epoch advancement lives here — it must run
     even when the sweep itself is skipped, or the gate could never be
     invalidated). *)
  current_epoch : unit -> int;
  (* Uncharged peek at the global epoch; must return 0 for epoch-less
     schemes (HP), which disables gating. *)
  source : unit -> 'a test;
  (* Build the conflict test; the expensive part (reservation
     snapshot) that [Gated] avoids rebuilding. *)
  free : 'a Block.t -> unit;
  store : 'a store;
  mutable retire_counter : int;
  mutable total_retired : int;
  mutable total_reclaimed : int;
  mutable gate_epoch : int; (* epoch of the last zero-free sweep; -1 = open *)
  mutable gate_bound : int; (* conflict bound cached by that sweep *)
}

let create ~backend ~empty_freq ?(prepare = fun () -> ()) ~current_epoch
    ~source ~free () =
  let store =
    match backend with
    | List -> Flat (Tracker_common.Retired.create ())
    | Buckets | Gated -> Bucketed { newest = []; count = 0 }
  in
  { backend; empty_freq; prepare; current_epoch; source; free; store;
    retire_counter = 0; total_retired = 0; total_reclaimed = 0;
    gate_epoch = -1; gate_bound = max_int }

let count t =
  match t.store with
  | Flat r -> Tracker_common.Retired.count r
  | Bucketed bs -> bs.count

let total_retired t = t.total_retired
let total_reclaimed t = t.total_reclaimed

let gate t = if t.gate_epoch < 0 then None else Some (t.gate_epoch, t.gate_bound)

let bucket_count t =
  match t.store with
  | Flat _ -> 0
  | Bucketed bs -> List.length bs.newest

let iter t f =
  match t.store with
  | Flat r -> Tracker_common.Retired.iter r f
  | Bucketed bs ->
    List.iter (fun bk -> List.iter f bk.blocks) bs.newest

(* Unconditional teardown drain: remove every block from the store and
   hand it to [f] — no conflict test, no gate.  This is exactly the
   "free your limbo list on exit without looking at anyone's
   reservations" mistake; it exists so the Ebr_noflush demonstration
   oracle can model a broken detach precisely (a pure
   reservation-ignoring free, with the store left consistent).  Sound
   code paths never call it. *)
let drain_all t f =
  match t.store with
  | Flat r ->
    let blocks = r.Tracker_common.Retired.blocks in
    let n = r.Tracker_common.Retired.count in
    r.Tracker_common.Retired.blocks <- [];
    r.Tracker_common.Retired.count <- 0;
    r.Tracker_common.Retired.total_reclaimed <-
      r.Tracker_common.Retired.total_reclaimed + n;
    t.total_reclaimed <- t.total_reclaimed + n;
    List.iter f blocks
  | Bucketed bs ->
    let buckets = bs.newest in
    bs.newest <- [];
    t.total_reclaimed <- t.total_reclaimed + bs.count;
    bs.count <- 0;
    List.iter (fun bk -> List.iter f bk.blocks) buckets

(* Retire epochs are non-decreasing (the global epoch is monotone), so
   a new retirement lands in the head bucket or opens a fresh one in
   O(1); the splice loop only runs for out-of-order epochs, which a
   monotone epoch never produces but the structure stays correct for. *)
let bucket_add bs b =
  let e = Block.retire_epoch b in
  Prim.local 1;
  (match bs.newest with
   | bk :: _ when bk.epoch = e ->
     bk.blocks <- b :: bk.blocks;
     bk.size <- bk.size + 1
   | [] -> bs.newest <- [ { epoch = e; blocks = [ b ]; size = 1 } ]
   | bk :: _ when bk.epoch < e ->
     bs.newest <- { epoch = e; blocks = [ b ]; size = 1 } :: bs.newest
   | _ ->
     let rec splice = function
       | bk :: rest when bk.epoch > e -> bk :: splice rest
       | bk :: rest when bk.epoch = e ->
         bk.blocks <- b :: bk.blocks;
         bk.size <- bk.size + 1;
         bk :: rest
       | rest -> { epoch = e; blocks = [ b ]; size = 1 } :: rest
     in
     bs.newest <- splice bs.newest);
  bs.count <- bs.count + 1

(* Sweep the bucketed store.  [examined] counts only per-block conflict
   tests — wholesale bucket decisions charge one local step for the
   bucket header and never look at the blocks, which is exactly the
   O(freed + buckets) the backend exists for. *)
let bucket_sweep t bs test =
  Tracker_common.Sweep_stats.note_buckets (List.length bs.newest);
  (* Decide-then-commit-then-free: the walk only *condemns* blocks
     (accumulating them), the surviving store is committed in one
     mutation, and the frees run last.  The decide phase charges cost
     (preemption points), so a horizon stop or crash that lands inside
     it leaves every block still in the store; one landing inside the
     free loop can only leak condemned blocks — never leave a freed
     block where a later sweep (the background reclaimer's shutdown
     flush, a pressure sweep from another path) would free it again. *)
  let examined = ref 0 and doomed = ref [] and freed = ref 0 in
  let condemn b =
    doomed := b :: !doomed;
    incr freed
  in
  let condemn_whole bk = List.iter condemn bk.blocks in
  (* Per-block fallback inside one bucket; None when it drained. *)
  let filter_bucket pred bk =
    let kept =
      List.filter
        (fun b ->
           Prim.local 1;
           incr examined;
           if pred b then true
           else begin
             condemn b;
             false
           end)
        bk.blocks
    in
    match kept with
    | [] -> None
    | blocks ->
      bk.blocks <- blocks;
      bk.size <- List.length blocks;
      Some bk
  in
  let kept =
    match test with
    | Shape Tracker_common.Conflict.Never ->
      List.iter
        (fun bk ->
           Prim.local 1;
           condemn_whole bk)
        bs.newest;
      []
    | Shape (Tracker_common.Conflict.Threshold n) ->
      (* Descending epochs: the protected buckets (epoch >= n) form a
         prefix, kept without examining a single block; everything
         after the first unprotected bucket frees wholesale. *)
      let rec split = function
        | bk :: rest when bk.epoch >= n ->
          Prim.local 1;
          bk :: split rest
        | old ->
          List.iter
            (fun bk ->
               Prim.local 1;
               condemn_whole bk)
            old;
          []
      in
      split bs.newest
    | Shape (Tracker_common.Conflict.Intervals s) ->
      (* Buckets older than every reserved lower endpoint cannot
         intersect any interval; the rest degenerate to per-block
         tests (birth epochs differ within a bucket). *)
      let lo_min = Tracker_common.Sweep_snapshot.min_lower s in
      let pred =
        Tracker_common.Conflict.pred (Tracker_common.Conflict.Intervals s)
      in
      List.filter_map
        (fun bk ->
           Prim.local 1;
           if bk.epoch < lo_min then begin
             condemn_whole bk;
             None
           end
           else filter_bucket pred bk)
        bs.newest
    | Predicate p ->
      List.filter_map
        (fun bk ->
           Prim.local 1;
           filter_bucket p bk)
        bs.newest
  in
  bs.newest <- kept;
  bs.count <- List.fold_left (fun acc bk -> acc + bk.size) 0 kept;
  Tracker_common.Sweep_stats.note_sweep ~examined:!examined ~freed:!freed;
  List.iter
    (fun b ->
       t.total_reclaimed <- t.total_reclaimed + 1;
       t.free b)
    (List.rev !doomed);
  !freed

(* The gate's observable for re-arming: the bound the failed sweep
   tested against, recorded for diagnostics and tests. *)
let bound_of = function
  | Shape Tracker_common.Conflict.Never -> max_int
  | Shape (Tracker_common.Conflict.Threshold n) -> n
  | Shape (Tracker_common.Conflict.Intervals s) ->
    Tracker_common.Sweep_snapshot.min_lower s
  | Predicate _ -> min_int

let run_sweep t =
  t.gate_epoch <- -1;
  Ibr_obs.Probe.sweep_begin ~phase:Ibr_obs.Probe.Snapshot;
  let test = t.source () in
  Ibr_obs.Probe.sweep_end ~phase:Ibr_obs.Probe.Snapshot ~freed:0;
  Ibr_obs.Probe.sweep_begin ~phase:Ibr_obs.Probe.Scan;
  let freed =
    match t.store with
    | Flat r ->
      let before = Tracker_common.Retired.count r in
      Tracker_common.Retired.sweep r ~conflict:(pred_of test)
        ~free:(fun b ->
          t.free b;
          t.total_reclaimed <- t.total_reclaimed + 1);
      before - Tracker_common.Retired.count r
    | Bucketed bs -> bucket_sweep t bs test
  in
  Ibr_obs.Probe.sweep_end ~phase:Ibr_obs.Probe.Scan ~freed;
  (* Gate invalidation rule: arm only after a zero-free sweep that
     left work behind, and only when there is a real epoch to watch
     (epoch-less schemes report 0 and never gate); the gate opens when
     the epoch moves past the recorded value, when a sweep frees, or
     when [force] bypasses it. *)
  if t.backend = Gated && freed = 0 && count t > 0 then begin
    let e = t.current_epoch () in
    if e > 0 then begin
      t.gate_epoch <- e;
      t.gate_bound <- bound_of test
    end
  end

let prepare t =
  Ibr_obs.Probe.sweep_begin ~phase:Ibr_obs.Probe.Prepare;
  t.prepare ();
  Ibr_obs.Probe.sweep_end ~phase:Ibr_obs.Probe.Prepare ~freed:0

let sweep t =
  prepare t;
  if
    t.backend = Gated && t.gate_epoch >= 0
    && t.current_epoch () = t.gate_epoch
  then Tracker_common.Sweep_stats.note_skip ()
  else run_sweep t

(* Forced sweep ([force_empty]): the tracker has already done its own
   preparation (QSBR drives grace periods first), so no [prepare], and
   the gate is bypassed and cleared. *)
let force t = run_sweep t

(* Memory-pressure sweep (the allocator's backpressure hook): run
   [prepare] — a capped heap must still help the epoch forward, or
   QSBR/Fraser could never free anything under pressure — then sweep
   unconditionally, bypassing the gate. *)
let pressure t =
  prepare t;
  run_sweep t

let add t b =
  Ibr_obs.Probe.retire ~block:(Block.id b);
  (match t.store with
   | Flat r -> Tracker_common.Retired.add r b
   | Bucketed bs -> bucket_add bs b);
  t.total_retired <- t.total_retired + 1;
  t.retire_counter <- t.retire_counter + 1;
  if t.empty_freq > 0 && t.retire_counter mod t.empty_freq = 0 then sweep t
