(* Quiescent-state-based reclamation (Hart et al. [15]; paper §2.2).

   The RCU-style member of the epoch family: instead of posting a
   reservation at operation start, each thread announces *quiescent
   states* — moments when it holds no references (here: operation
   end).  The classic three-epoch construction:

   - a thread copies the global epoch E into its slot at each
     quiescent point;
   - a thread that observes every online slot equal to E advances E;
   - a block retired in epoch e is reclaimable once E >= e + 2: every
     thread has passed a quiescent state since the retirement.

   Like EBR it has zero per-read overhead; like EBR it is not robust —
   one thread that stops announcing quiescent states freezes the
   epoch and pins all future retirements.

   The epoch advance MUST be a conditional e -> e+1 CAS: two racing
   advancers that both increment unconditionally skip a grace period
   and free blocks whose readers have not quiesced (DESIGN.md §5a.3).
   The functor below keeps both advance policies so the buggy variant
   survives as a checked, model-checkable oracle ([Noncas]) alongside
   the sound scheme. *)

module type ADVANCE = sig
  val name : string
  val summary : string

  val advance : Epoch.t -> expected:int -> unit
  (* Advance the epoch, all-quiescent-in-[expected] already checked. *)
end

module Make (A : ADVANCE) = struct
  let name = A.name

  let props = {
    Tracker_intf.robust = false;
    needs_unreserve = false;
    mutable_pointers = true;
    bounded_slots = false;
    pointer_tag_words = 0;
    fence_per_read = false;
    summary = A.summary;
  }

  type 'a t = {
    epoch : Epoch.t;
    (* Last epoch each thread has passed a quiescent state in. *)
    quiescent : int Atomic.t array;
    alloc : 'a Alloc.t;
    cfg : Tracker_intf.config;
    threads : int;
    census : 'a Handoff.path Tracker_common.Census.t;
    mutable handoff : 'a Handoff.t option;
  }

  type 'a handle = {
    t : 'a t;
    tid : int;
    path : 'a Handoff.path;
  }

  type 'a ptr = 'a Plain_ptr.t

  (* Advance the global epoch if every thread has quiesced in it. *)
  let try_advance t =
    let e = Epoch.read t.epoch in
    let all_quiescent =
      Array.for_all
        (fun slot ->
           Prim.charge_scan ();
           Atomic.get slot >= e)
        t.quiescent
    in
    if all_quiescent then A.advance t.epoch ~expected:e

  (* retire_epoch > e - 2, i.e. the two-grace-period threshold.  The
     advance attempt is the reclaimer's [prepare] hook: it must run
     even when the Gated backend skips the sweep, because QSBR's epoch
     only moves through it — a gate that suppressed it would wait on
     an epoch that can no longer advance. *)
  let make_reclaimer t ~tid =
    Reclaimer.create ~backend:t.cfg.Tracker_intf.retire_backend
      ~empty_freq:t.cfg.Tracker_intf.empty_freq
      ~prepare:(fun () -> try_advance t)
      ~current_epoch:(fun () -> Epoch.peek t.epoch)
      ~source:(fun () ->
        let e = Epoch.read t.epoch in
        Reclaimer.Shape (Tracker_common.Conflict.Threshold (e - 1)))
      ~free:(fun b -> Alloc.free t.alloc ~tid b)
      ()

  let create ~threads (cfg : Tracker_intf.config) =
    Tracker_intf.validate ~threads cfg;
    let t = {
      epoch = Epoch.create ();
      (* Initially every thread is quiescent in epoch 1. *)
      quiescent = Array.init threads (fun _ -> Atomic.make 1);
      alloc =
        Alloc.create ~reuse:cfg.reuse ~magazine_size:cfg.magazine_size
          ~threads:(threads + if cfg.background_reclaim then 1 else 0) ();
      cfg;
      threads;
      census = Tracker_common.Census.create threads;
      handoff = None;
    } in
    if cfg.background_reclaim then
      t.handoff <-
        Some
          (Handoff.create ~producers:threads ~batch:cfg.handoff_batch
             (make_reclaimer t ~tid:threads));
    t

  let register t ~tid =
    let path =
      match t.handoff with
      | Some h -> Handoff.Queued h
      | None -> Handoff.Direct (make_reclaimer t ~tid)
    in
    Alloc.set_pressure_hook t.alloc ~tid (fun () ->
      Handoff.path_pressure path);
    { t; tid; path }

  (* Dynamic registration.  A detached slot reads [max_int] ("always
     quiescent"), which must not survive reuse: a joiner is quiescent
     only *up to the attach instant*, so it publishes the current
     epoch before it can touch shared memory — otherwise two advances
     could race past its first operation and free a block it reads. *)
  let attach t =
    match
      Tracker_common.Census.try_attach t.census ~make:(fun tid ->
        match t.handoff with
        | Some h -> Handoff.Queued h
        | None -> Handoff.Direct (make_reclaimer t ~tid))
    with
    | None -> None
    | Some (tid, path) ->
      Prim.write t.quiescent.(tid) (Epoch.read t.epoch);
      Alloc.set_pressure_hook t.alloc ~tid (fun () ->
        Handoff.path_pressure path);
      Some { t; tid; path }

  let handle_tid h = h.tid

  let alloc h payload =
    let b = Alloc.alloc h.t.alloc ~tid:h.tid payload in
    Block.set_birth_epoch b (Epoch.peek h.t.epoch);
    b

  let dealloc h b = Alloc.free_unpublished h.t.alloc ~tid:h.tid b

  let retire h b =
    Block.transition_retire b;
    Block.set_retire_epoch b (Epoch.read h.t.epoch);
    Handoff.path_add h.path ~tid:h.tid b

  let start_op _ = ()

  (* The quiescent state: no references held from here on. *)
  let end_op h =
    let e = Epoch.read h.t.epoch in
    Prim.write h.t.quiescent.(h.tid) e;
    Ibr_obs.Probe.unreserve ~slot:0

  let make_ptr _ ?tag target = Plain_ptr.make ?tag target
  let read _ ~slot:_ p = Plain_ptr.read p
  let read_root h p = read h ~slot:0 p
  let write _ p ?tag target = Plain_ptr.write p ?tag target
  let cas _ p ~expected ?tag target = Plain_ptr.cas p ~expected ?tag target
  let unreserve _ ~slot:_ = ()
  let reassign _ ~src:_ ~dst:_ = ()

  let retired_count h = Handoff.path_count h.path

  (* The caller of force_empty is between operations, i.e. quiescent:
     announce that, then drive up to two grace periods so that blocks
     whose other readers have all quiesced become reclaimable. *)
  let force_empty h =
    Handoff.path_drain h.path ~tid:h.tid;
    end_op h;
    try_advance h.t;
    end_op h;
    try_advance h.t;
    Reclaimer.force (Handoff.path_reclaimer h.path)

  let allocator t = t.alloc
  let epoch_value t = Epoch.peek t.epoch
  let reclaim_service t = Option.map Handoff.service t.handoff

  (* Neutralize a dead thread: a slot of [max_int] reads as quiescent
     in every future epoch, so the thread never blocks an advance
     again.  The scratch flush unstrands batched handoff retires. *)
  let eject t ~tid =
    (match t.handoff with Some h -> Handoff.flush_own h ~tid | None -> ());
    Prim.write t.quiescent.(tid) max_int

  (* Neutralization recovery.  QSBR protection lives in the
     quiescence announcement, not [start_op] (a no-op here): like
     [attach], re-publish the current epoch so the retried operation
     does not read as "always quiescent" while it holds references. *)
  let recover h =
    eject h.t ~tid:h.tid;
    Prim.write h.t.quiescent.(h.tid) (Epoch.read h.t.epoch);
    start_op h

  (* Dynamic deregistration: [force_empty] already announces the
     quiescent state and helps the epoch forward, then the slot is
     parked at [max_int] so it never blocks an advance while free. *)
  let detach h =
    force_empty h;
    eject h.t ~tid:h.tid;
    Alloc.flush_magazines h.t.alloc ~tid:h.tid;
    Tracker_common.Census.detach h.t.census ~tid:h.tid
end

(* The sound scheme: strictly e -> e+1 by CAS, so racing advancers
   collapse into one grace period. *)
include Make (struct
    let name = "QSBR"
    let summary =
      "RCU-style quiescent states at op end; zero read overhead, epoch \
       frozen by any non-quiescing thread"
    let advance epoch ~expected =
      ignore (Epoch.advance_cas epoch ~expected)
  end)

(* The grace-period-skip oracle of DESIGN.md §5a.3: an unconditional
   increment lets two advancers that both validated against the same
   epoch move it twice, freeing blocks a non-quiescent reader still
   holds.  Demonstration only — [Ibr_check] finds the use-after-free
   as a minimal schedule witness. *)
module Noncas = struct
  include Make (struct
      let name = "QSBR-noncas"
      let summary =
        "UNSOUND QSBR advance: unconditional increment lets racing \
         advancers skip a grace period; kept as a demonstration oracle"
      let advance epoch ~expected:_ = Epoch.advance epoch
    end)
end
