(** Off-critical-path reclamation (DESIGN.md §9): per-thread handoff
    queues in front of one service-owned {!Reclaimer}, drained by a
    dedicated reclaimer thread, so a mutator's [retire] is one queue
    append and sweeps run concurrently with operations. *)

type 'a t

val create : producers:int -> ?batch:int -> 'a Reclaimer.t -> 'a t
(** One single-producer queue segment per thread id in
    [0 .. producers-1]; [rc] is the service-owned reclaimer every
    drain feeds (its sweep cadence runs on the draining thread).

    [batch] (default 1): with [k > 1], each producer retires into a
    plain thread-local buffer appended to its queue as one CAS every
    [k] pushes, amortizing the queue traffic.  Buffered blocks count
    in {!queued}; {!path_drain} flushes the caller's own buffer, and
    the shutdown {!flush} collects every buffer (sound because
    producers have quiesced by then).  [batch = 1] is the original
    one-CAS-per-retire path, bit-for-bit. *)

val reclaimer : 'a t -> 'a Reclaimer.t

val push : 'a t -> tid:int -> 'a Block.t -> unit
(** Queue one retired block (retire epoch already set).  Only thread
    [tid] may push to its own segment.  With [batch > 1] the block may
    sit in the producer's local buffer until the batch fills. *)

val flush_own : 'a t -> tid:int -> unit
(** Append producer [tid]'s private batch buffer to its queue (one
    CAS); no-op when the buffer is empty.  Normally called by the
    producer itself; a tracker's [eject] may call it for a {e dead,
    parked, or suspended} victim — the same single-writer condition
    under which ejection is sound at all — so a neutralized or
    crashed thread's buffered retires reach the drainer instead of
    stranding until detach. *)

val drain : 'a t -> int
(** Take-all exchange of every segment into the reclaimer; returns
    the number of blocks moved.  Serialised against {!pressure} and
    {!flush} by an internal spin lock. *)

val pressure : 'a t -> unit
(** Synchronous fallback for {!Alloc.set_pressure_hook}: drain and run
    a pressure sweep now, unless a drain is already in progress (then
    the caller's backoff ladder yields to it). *)

val flush : 'a t -> unit
(** Shutdown: drain until every segment is empty, then run a final
    pressure sweep.  Blocks still conflicting stay in the store. *)

val shutdown_flush : 'a t -> unit
(** {!flush}, seizing the drain lock first.  Only sound once the
    machine is single-threaded again (post-run): a crash that
    abandoned a fiber mid-drain leaves the lock held forever. *)

val queued : 'a t -> int
(** Blocks pushed (including batch-buffered) but not yet drained
    (exact once producers quiesce). *)

(** Monomorphic view for runners and data-structure wrappers.
    [shutdown_flush] is {!flush} that first *seizes* the drain lock:
    only sound once the machine is single-threaded again (post-run),
    where a lock abandoned by a crashed fiber would otherwise spin
    forever. *)
type service = {
  drain : unit -> int;
  flush : unit -> unit;
  shutdown_flush : unit -> unit;
  pending : unit -> int;  (* queued + still held by the reclaimer *)
}

val service : 'a t -> service

(** What a tracker handle retires into: its own reclaimer inline, or
    the handoff queue.  The helpers keep per-tracker wiring mechanical
    and time the retire path into the [retire_cost] histogram. *)
type 'a path =
  | Direct of 'a Reclaimer.t
  | Queued of 'a t

val path_reclaimer : 'a path -> 'a Reclaimer.t
val path_add : 'a path -> tid:int -> 'a Block.t -> unit
val path_count : 'a path -> int
val path_drain : 'a path -> tid:int -> unit
(** Pre-force drain so a forced sweep sees queued blocks ([Direct]:
    no-op).  Flushes the calling thread's batch buffer first, so a
    detaching thread cannot strand buffered retirements. *)

val path_pressure : 'a path -> unit

(** Global handoff telemetry, registered as metric counters
    ([handoff_pushed], [handoff_drained], [handoff_batches],
    [handoff_syncs]). *)
module Stats : sig
  val pushed : int Atomic.t
  val drained : int Atomic.t
  val batches : int Atomic.t
  val syncs : int Atomic.t
  val reset : unit -> unit
end
