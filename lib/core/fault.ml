(* Memory-fault detection policy.

   In C, a use-after-free or double-free is undefined behaviour.  In
   this reproduction both are *defined, detectable events*: the
   allocator and block accessors funnel every violation through this
   module.  Tests run in [Raise] mode (a violation fails the test);
   experiment harnesses demonstrating broken schemes run in [Count]
   mode so a run survives long enough to accumulate statistics. *)

type kind =
  | Use_after_free   (* payload accessed after reclamation *)
  | Double_free      (* block reclaimed twice *)
  | Double_retire    (* block retired twice *)
  | Retire_unpublished (* block retired while never published / not live *)
  | Alloc_exhausted  (* capped allocator still full after backpressure *)

exception Memory_fault of kind * string

exception Neutralized = Ibr_runtime.Hooks.Neutralized
(* Re-export of the runtime's restart signal under the fault
   namespace, so tracker / DS code can catch or raise it without
   naming the runtime layer.  Not a memory fault: delivery is part of
   normal (healed) operation under the DEBRA+ protocol. *)

type mode = Raise | Count

let mode : mode Atomic.t = Atomic.make Raise

let use_after_free = Atomic.make 0
let double_free = Atomic.make 0
let double_retire = Atomic.make 0
let retire_unpublished = Atomic.make 0
let alloc_exhausted = Atomic.make 0

let counter = function
  | Use_after_free -> use_after_free
  | Double_free -> double_free
  | Double_retire -> double_retire
  | Retire_unpublished -> retire_unpublished
  | Alloc_exhausted -> alloc_exhausted

let kind_to_string = function
  | Use_after_free -> "use-after-free"
  | Double_free -> "double-free"
  | Double_retire -> "double-retire"
  | Retire_unpublished -> "retire-unpublished"
  | Alloc_exhausted -> "alloc-exhausted"

let report kind detail =
  match Atomic.get mode with
  | Raise -> raise (Memory_fault (kind, detail))
  | Count -> Atomic.incr (counter kind)

let count kind = Atomic.get (counter kind)

let all_kinds =
  [ Use_after_free; Double_free; Double_retire; Retire_unpublished;
    Alloc_exhausted ]

let total () =
  List.fold_left (fun n k -> n + count k) 0 all_kinds

(* Read-backed counter: runs report the delta across their measured
   phase (the registry diffs against a start-of-run baseline). *)
let () = Ibr_obs.Metrics.register_counter ~name:"faults" ~order:300 total

let reset () = List.iter (fun k -> Atomic.set (counter k) 0) all_kinds

let set_mode m = Atomic.set mode m

(* A point-in-time copy of every counter, so a delta survives whatever
   the measured code does — including raising. *)
type snapshot = {
  use_after_free : int;
  double_free : int;
  double_retire : int;
  retire_unpublished : int;
  alloc_exhausted : int;
}

let snapshot () = {
  use_after_free = Atomic.get use_after_free;
  double_free = Atomic.get double_free;
  double_retire = Atomic.get double_retire;
  retire_unpublished = Atomic.get retire_unpublished;
  alloc_exhausted = Atomic.get alloc_exhausted;
}

(* Counters observed since [before] (counters are monotone between
   resets, so the componentwise difference is the events in between). *)
let diff (after : snapshot) (before : snapshot) = {
  use_after_free = after.use_after_free - before.use_after_free;
  double_free = after.double_free - before.double_free;
  double_retire = after.double_retire - before.double_retire;
  retire_unpublished = after.retire_unpublished - before.retire_unpublished;
  alloc_exhausted = after.alloc_exhausted - before.alloc_exhausted;
}

let snapshot_total s =
  s.use_after_free + s.double_free + s.double_retire + s.retire_unpublished
  + s.alloc_exhausted

(* Run [f] in [Count] mode; the tally is computed from snapshots so it
   survives [f] raising (the old success-path-only subtraction lost the
   count of a crashing run). *)
let with_counting_result f =
  let old = Atomic.get mode in
  Atomic.set mode Count;
  let before = snapshot () in
  let result =
    Fun.protect ~finally:(fun () -> Atomic.set mode old) (fun () ->
      match f () with
      | v -> Ok v
      | exception e -> Error e)
  in
  (result, snapshot_total (diff (snapshot ()) before))

let with_counting f =
  match with_counting_result f with
  | Ok result, n -> (result, n)
  | Error e, _ -> raise e
