(* The global epoch counter (paper §2.2, §3).

   A single fetch-and-increment counter.  All schemes that use epochs
   (EBR, HE, POIBR, TagIBR*, 2GEIBR) advance it from [alloc] every
   [epoch_freq] allocations per thread, which bounds the number of
   blocks born in any one epoch — the key ingredient of the
   robustness proof (Theorem 2). *)

type t = { value : int Atomic.t }

(* Start at 1 so that 0 can mean "before any epoch" in tests. *)
let create () = { value = Atomic.make 1 }

let read t = Prim.hot_read t.value

(* Non-charged read for assertions and metrics. *)
let peek t = Atomic.get t.value

let advance t =
  let old = Prim.faa t.value 1 in
  Ibr_obs.Probe.epoch_advance ~epoch:(old + 1)

(* Conditional advance: exactly [expected] -> [expected + 1].  Used by
   QSBR, where an unconditional increment by racing advancers would
   skip a grace period. *)
let advance_cas t ~expected =
  let ok = Prim.cas t.value expected (expected + 1) in
  if ok then Ibr_obs.Probe.epoch_advance ~epoch:(expected + 1);
  ok

(* Per-thread allocation-driven advance: thread-local counter, bump
   the global epoch every [freq] calls.  Matches Fig. 2 lines 15–17 /
   Fig. 5 lines 31–33.  The counter is reset on advance so it cannot
   grow without bound over a long run; a non-positive [freq] is a
   configuration error (a silently-never-advancing epoch breaks every
   epoch-based scheme's bound), rejected here and at tracker config
   validation. *)
let tick t ~counter ~freq =
  if freq <= 0 then invalid_arg "Epoch.tick: epoch_freq must be positive";
  incr counter;
  if !counter >= freq then begin
    counter := 0;
    advance t
  end

(* The final epoch value is instance-scoped: a gauge the harness
   publishes at end of run. *)
let gauge = Ibr_obs.Metrics.register_gauge ~name:"epoch" ~order:200
let publish v = gauge := v
