(** Simulated manual allocator (the jemalloc stand-in; DESIGN.md §1).

    Per-thread magazine caches make allocation contention-free, as
    jemalloc's tcache does: each thread holds a loaded magazine plus a
    spare, and whole full magazines overflow to / refill from a shared
    depot in one CAS per [magazine_size] blocks.  Two modes:
    - [reuse = true] (benchmark mode): freed blocks are reincarnated
      by later allocations.  Type-preserving by construction — an
      ['a t] only recycles ['a Block.t]s — which is exactly the
      guarantee TagIBR-TPA requires.
    - [reuse = false] (checker mode): reclaimed blocks stay reclaimed,
      so every dangling access is detected with certainty.

    An optional [capacity] bounds the footprint (Live + Retired
    blocks).  Admission is a reservation on an atomic footprint
    counter (fetch-and-add, undone on overshoot), so the bound is
    strict even under concurrent admitters.  A full heap applies
    backpressure: {!alloc} invokes the caller's registered
    memory-pressure hook and backs off exponentially in virtual time;
    once the retry budget is spent it reports
    {!Fault.Alloc_exhausted} and raises {!Exhausted} so the operation
    can abort gracefully. *)

exception Exhausted
(** Raised by {!alloc} (after reporting [Fault.Alloc_exhausted]) when
    the heap is still at capacity after the backpressure ladder. *)

type 'a t

val create :
  ?reuse:bool -> ?capacity:int -> ?retry_budget:int ->
  ?magazine_size:int -> threads:int -> unit -> 'a t
(** [reuse] defaults to [true]; [capacity] to unbounded;
    [retry_budget] (pressure-hook/backoff rounds per full-heap
    allocation) to 8; [magazine_size] (blocks per magazine) to 64.
    @raise Invalid_argument if [threads < 1], [capacity < 1] or
    [magazine_size < 1]. *)

val threads : 'a t -> int

val magazine_size : 'a t -> int

val capacity : 'a t -> int option

val set_capacity : 'a t -> int option -> unit
(** Install or lift the footprint bound (harnesses size the cap from
    the post-prefill working set, which is only known after prefill
    allocations have happened). *)

val footprint : 'a t -> int
(** Current Live + Retired blocks; cached free blocks have been
    returned to the arena and do not count. *)

val set_pressure_hook : 'a t -> tid:int -> (unit -> unit) -> unit
(** Register thread [tid]'s memory-pressure hook, invoked by {!alloc}
    between backoff rounds when the heap is at capacity (trackers
    register a forced reclamation sweep). *)

val alloc : 'a t -> tid:int -> 'a -> 'a Block.t
(** Serve from thread [tid]'s magazines (falling back to the depot) or
    make a fresh block.
    @raise Exhausted if a capacity is set and no reservation succeeds
    after the backpressure ladder (in [Fault.Raise] mode the fault
    report raises {!Fault.Memory_fault} first). *)

val free : 'a t -> tid:int -> 'a Block.t -> unit
(** Reclaim a retired block (fault on double free / free of a live
    block). *)

val free_unpublished : 'a t -> tid:int -> 'a Block.t -> unit
(** Reclaim a block that was never published. *)

val flush_magazines : 'a t -> tid:int -> unit
(** Return thread [tid]'s cached free blocks (both magazines, partial
    or full) to the shared depot.  Called by the tracker detach path:
    only the magazine owner may walk its lists, so a departing thread
    must flush them itself or its cached blocks stay stranded until
    the slot is reused. *)

type stats = {
  allocated : int;  (** total alloc calls *)
  fresh : int;      (** served by fresh blocks *)
  reused : int;     (** served from a cache *)
  freed : int;      (** total frees *)
  live : int;       (** allocated - freed (Live or Retired) *)
  cached : int;     (** blocks sitting in magazines and the depot *)
  peak_footprint : int;   (** high-water mark of [live] *)
  pressure_retries : int; (** backpressure rounds taken by {!alloc} *)
  oom_events : int;       (** allocations aborted with {!Exhausted} *)
  mag_hits : int;         (** allocs served from loaded/previous *)
  mag_misses : int;       (** allocs that fell through to depot/fresh *)
  depot_refills : int;    (** full magazines taken from the depot *)
  depot_flushes : int;    (** full magazines pushed to the depot *)
}

val stats : 'a t -> stats
val pp_stats : Format.formatter -> stats -> unit

val publish_stats : stats -> unit
(** Publish a stats record to the registry gauges ([allocated], [freed],
    [live], [cached], [oom_events], [pressure_retries],
    [peak_footprint], [mag_hits], [mag_misses], [depot_refills],
    [depot_flushes]); called by runners at end of run. *)
