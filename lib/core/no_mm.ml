(* The "No MM" baseline of §5: retire is recorded but nothing is ever
   reclaimed.  Fastest possible (zero instrumentation), leaks
   everything — the throughput ceiling in Fig. 8. *)

let name = "NoMM"

let props = {
  Tracker_intf.robust = false;
  needs_unreserve = false;
  mutable_pointers = true;
  bounded_slots = false;
  pointer_tag_words = 0;
  fence_per_read = false;
  summary = "never reclaims; throughput ceiling, unbounded space";
}

type 'a t = {
  alloc : 'a Alloc.t;
  cfg : Tracker_intf.config;
  census : 'a Reclaimer.t Tracker_common.Census.t;
}

type 'a handle = {
  t : 'a t;
  tid : int;
  rc : 'a Reclaimer.t;
}

type 'a ptr = 'a Plain_ptr.t

let create ~threads (cfg : Tracker_intf.config) =
  Tracker_intf.validate ~threads cfg;
  (* Nothing ever sweeps, so a background reclaimer has no work:
     [background_reclaim] is ignored and [reclaim_service] is [None]. *)
  { alloc =
      Alloc.create ~reuse:cfg.reuse ~magazine_size:cfg.magazine_size
        ~threads ();
    cfg;
    census = Tracker_common.Census.create threads }

(* empty_freq:0 — the reclaimer only stores; nothing ever sweeps. *)
let make_rc t ~tid =
  Reclaimer.create ~backend:t.cfg.Tracker_intf.retire_backend
    ~empty_freq:0
    ~current_epoch:(fun () -> 0)
    ~source:(fun () -> Reclaimer.Predicate (fun _ -> true))
    ~free:(fun b -> Alloc.free t.alloc ~tid b)
    ()

let register t ~tid = { t; tid; rc = make_rc t ~tid }

(* Dynamic registration: only the census slot and the slot's retired
   store matter — there are no reservations to initialize. *)
let attach t =
  match Tracker_common.Census.try_attach t.census ~make:(fun tid ->
    make_rc t ~tid)
  with
  | None -> None
  | Some (tid, rc) -> Some { t; tid; rc }

let handle_tid h = h.tid

let alloc h payload = Alloc.alloc h.t.alloc ~tid:h.tid payload

let dealloc h b = Alloc.free_unpublished h.t.alloc ~tid:h.tid b

let retire h b =
  Block.transition_retire b;
  Reclaimer.add h.rc b

let start_op _ = ()
let end_op _ = ()

let make_ptr _ ?tag target = Plain_ptr.make ?tag target
let read _ ~slot:_ p = Plain_ptr.read p
let read_root h p = read h ~slot:0 p
let write _ p ?tag target = Plain_ptr.write p ?tag target
let cas _ p ~expected ?tag target = Plain_ptr.cas p ~expected ?tag target
let unreserve _ ~slot:_ = ()
let reassign _ ~src:_ ~dst:_ = ()

let retired_count h = Reclaimer.count h.rc
let force_empty _ = ()
let allocator t = t.alloc
let epoch_value _ = 0
let reclaim_service _ = None

(* Holds no reservations: nothing to expire. *)
let eject _ ~tid:_ = ()

(* Nothing to drop, nothing to re-protect. *)
let recover _ = ()

(* Dynamic deregistration: the slot's retired store keeps the leaked
   blocks (that is the scheme); only the magazines and the slot are
   released. *)
let detach h =
  Alloc.flush_magazines h.t.alloc ~tid:h.tid;
  Tracker_common.Census.detach h.t.census ~tid:h.tid
