(* Shared chassis for the interval-based schemes of §3.2–3.3.

   TagIBR (CAS and FAA flavours), TagIBR-WCAS, TagIBR-TPA and 2GEIBR
   all keep a per-thread [lower, upper] epoch interval, advance the
   epoch on allocation, tag blocks with birth/retire epochs, and
   reclaim by interval intersection.  They differ only in the shared
   pointer representation and in how a read extends the upper
   endpoint — which is what the [POINTER_OPS] parameter captures. *)

module type POINTER_OPS = sig
  val name : string
  val props : Tracker_intf.properties

  type 'a ptr

  val make_ptr : ?tag:int -> 'a Block.t option -> 'a ptr

  val read :
    epoch:Epoch.t -> upper:int Atomic.t -> 'a ptr -> 'a View.t
  (* Must return a view only once the thread's upper endpoint
     provably covers the target's birth epoch *and* that reservation
     was visible when the returned view was (re-)read. *)

  val write : 'a ptr -> ?tag:int -> 'a Block.t option -> unit
  val cas :
    'a ptr -> expected:'a View.t -> ?tag:int -> 'a Block.t option -> bool
end

module Make (P : POINTER_OPS) : Tracker_intf.TRACKER = struct
  let name = P.name
  let props = P.props

  type 'a t = {
    epoch : Epoch.t;
    res : Tracker_common.Interval_res.t;
    alloc : 'a Alloc.t;
    cfg : Tracker_intf.config;
    census : 'a Handoff.path Tracker_common.Census.t;
    mutable handoff : 'a Handoff.t option;
  }

  type 'a handle = {
    t : 'a t;
    tid : int;
    alloc_counter : int ref;
    path : 'a Handoff.path;
  }

  type 'a ptr = 'a P.ptr

  (* Fig. 5 lines 22–29: interval-intersection sweep.  The table is
     digested once into a sorted snapshot; each block then pays
     O(log T) instead of a rescan of every thread's endpoints.  The
     legacy path keeps the per-block rescan as a differential oracle. *)
  let make_reclaimer t ~tid =
    let source () =
      if !Tracker_common.legacy_sweep then
        Reclaimer.Predicate
          (Tracker_common.Interval_res.conflict_with_snapshot t.res)
      else
        Reclaimer.Shape
          (Tracker_common.Conflict.Intervals
             (Tracker_common.Interval_res.sweep_snapshot t.res))
    in
    Reclaimer.create ~backend:t.cfg.Tracker_intf.retire_backend
      ~empty_freq:t.cfg.Tracker_intf.empty_freq
      ~current_epoch:(fun () -> Epoch.peek t.epoch)
      ~source
      ~free:(fun b -> Alloc.free t.alloc ~tid b)
      ()

  let create ~threads (cfg : Tracker_intf.config) =
    Tracker_intf.validate ~threads cfg;
    let t = {
      epoch = Epoch.create ();
      res = Tracker_common.Interval_res.create threads;
      alloc =
        Alloc.create ~reuse:cfg.reuse ~magazine_size:cfg.magazine_size
          ~threads:(threads + if cfg.background_reclaim then 1 else 0) ();
      cfg;
      census = Tracker_common.Census.create threads;
      handoff = None;
    } in
    if cfg.background_reclaim then
      t.handoff <-
        Some
          (Handoff.create ~producers:threads ~batch:cfg.handoff_batch
             (make_reclaimer t ~tid:threads));
    t

  let register t ~tid =
    let path =
      match t.handoff with
      | Some h -> Handoff.Queued h
      | None -> Handoff.Direct (make_reclaimer t ~tid)
    in
    Alloc.set_pressure_hook t.alloc ~tid (fun () ->
      Handoff.path_pressure path);
    { t; tid; alloc_counter = ref 0; path }

  (* Dynamic registration: claim a free census slot ([None] when all
     are taken); later occupants adopt the slot's reclaimer path and
     with it any retirements a departing thread could not yet free. *)
  let attach t =
    match
      Tracker_common.Census.try_attach t.census ~make:(fun tid ->
        match t.handoff with
        | Some h -> Handoff.Queued h
        | None -> Handoff.Direct (make_reclaimer t ~tid))
    with
    | None -> None
    | Some (tid, path) ->
      Alloc.set_pressure_hook t.alloc ~tid (fun () ->
        Handoff.path_pressure path);
      Some { t; tid; alloc_counter = ref 0; path }

  let handle_tid h = h.tid

  (* Fig. 5 lines 30–36: epoch tick on allocation, tag birth epoch. *)
  let alloc h payload =
    Epoch.tick h.t.epoch ~counter:h.alloc_counter ~freq:h.t.cfg.epoch_freq;
    let b = Alloc.alloc h.t.alloc ~tid:h.tid payload in
    Block.set_birth_epoch b (Epoch.read h.t.epoch);
    b

  let dealloc h b = Alloc.free_unpublished h.t.alloc ~tid:h.tid b

  let retire h b =
    Block.transition_retire b;
    Block.set_retire_epoch b (Epoch.read h.t.epoch);
    Handoff.path_add h.path ~tid:h.tid b

  let start_op h =
    let e = Epoch.read h.t.epoch in
    Tracker_common.Interval_res.start h.t.res ~tid:h.tid e;
    Ibr_obs.Probe.reserve ~slot:0

  let end_op h =
    Tracker_common.Interval_res.clear h.t.res ~tid:h.tid;
    Ibr_obs.Probe.unreserve ~slot:0

  let make_ptr _ ?tag target = P.make_ptr ?tag target

  let read h ~slot:_ p =
    let upper = Tracker_common.Interval_res.upper_cell h.t.res ~tid:h.tid in
    P.read ~epoch:h.t.epoch ~upper p

  let read_root h p = read h ~slot:0 p

  let write _ p ?tag target = P.write p ?tag target
  let cas _ p ~expected ?tag target = P.cas p ~expected ?tag target
  let unreserve _ ~slot:_ = ()
  let reassign _ ~src:_ ~dst:_ = ()

  let retired_count h = Handoff.path_count h.path

  let force_empty h =
    Handoff.path_drain h.path ~tid:h.tid;
    Reclaimer.force (Handoff.path_reclaimer h.path)

  let allocator t = t.alloc
  let epoch_value t = Epoch.peek t.epoch
  let reclaim_service t = Option.map Handoff.service t.handoff

  (* Neutralize a dead thread: clearing its [lower, upper] interval
     unpins every block whose lifetime it intersected.  The scratch
     flush unstrands batched handoff retires. *)
  let eject t ~tid =
    (match t.handoff with Some h -> Handoff.flush_own h ~tid | None -> ());
    Tracker_common.Interval_res.clear t.res ~tid

  (* Neutralization recovery: drop the interval, then open a fresh one
     at the current epoch as [start_op] does; the retried traversal
     re-extends the upper endpoint read by read. *)
  let recover h =
    eject h.t ~tid:h.tid;
    start_op h

  (* Dynamic deregistration: final drain-and-sweep, clear the
     interval, flush the magazines, then release the slot (see
     DESIGN.md §10 for why this order is what makes reuse safe). *)
  let detach h =
    force_empty h;
    eject h.t ~tid:h.tid;
    Alloc.flush_magazines h.t.alloc ~tid:h.tid;
    Tracker_common.Census.detach h.t.census ~tid:h.tid
end
