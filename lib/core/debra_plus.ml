(* DEBRA+ (Brown, PODC 2015): DEBRA plus neutralization.  The scheme
   itself is byte-identical to DEBRA — same amortized announcements,
   same limbo bags; what changes is the failure remedy.  Where the
   plain watchdog's only cure for a stalled thread is permanent
   ejection, DEBRA+ sends the victim a restart signal
   ([Fault.Neutralized]): the thread's reservations are dropped, its
   in-flight operation unwinds to the [Ds_common.with_op] checkpoint,
   [recover] re-protects, and the operation retries — the thread
   keeps serving.  Here [recover] additionally forgets the cached
   announcement so the retry posts a *fresh* epoch: the stale one is
   exactly what the stall made dangerous to keep pinning.

   [Norestart] is the deliberately unsound oracle for the protocol:
   recovery drops the reservations but resumes without re-protecting,
   so the retried operation runs quiescent ([max_int] announcement)
   while dereferencing shared blocks — the bounded model checker
   exhibits its use-after-free as a minimal schedule witness
   (test/traces). *)

include Debra.Make (struct
    let name = "DEBRA+"
    let summary =
      "DEBRA plus neutralization: a signalled thread drops its \
       reservations, restarts from the op checkpoint with a fresh \
       announcement, and keeps serving; robust under the neutralizing \
       watchdog"
    let invalidate_cache_on_recover = true
    let reprotect_on_recover = true
  end)

module Norestart = Debra.Make (struct
    let name = "DEBRA-norestart"
    let summary =
      "INCORRECT neutralization oracle: recovery drops reservations \
       but resumes without re-protecting, so the retry runs quiescent"
    let invalidate_cache_on_recover = true
    let reprotect_on_recover = false
  end)
