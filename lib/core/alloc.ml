(* Simulated manual allocator.

   Stands in for jemalloc in the paper's setup: per-thread magazine
   caches (so allocation is contention-free, as jemalloc's tcache
   makes it), explicit [free] with poisoning, and full statistics.
   Two operating modes:

   - [reuse = true]  (default; benchmark mode): freed blocks go to the
     freeing thread's magazine and are reincarnated by later
     allocations.  The allocator is type-preserving by construction —
     an ['a t] only ever recycles ['a Block.t]s — which is precisely
     the guarantee the TagIBR-TPA variant requires (§3.2.1).
   - [reuse = false] (checker mode): blocks are never reused, so a
     reclaimed block stays [Reclaimed] forever and every dangling
     access is detected with certainty.  Tests run in this mode.

   Free-block caching is the Bonwick magazine design jemalloc's tcache
   descends from: each thread holds a [loaded] magazine and a spare
   [previous]; frees fill [loaded], and when both are full a whole
   magazine of [magazine_size] blocks is flushed to a shared depot (a
   Treiber stack of full magazines) in one CAS.  Allocation pops
   [loaded], falls back to swapping in [previous], then to refilling a
   whole magazine from the depot, then to a fresh block.  Cross-thread
   block flow costs O(1/magazine_size) CASes per block instead of a
   shared free-list CAS per block, and every cache keeps a counted
   size so [stats] never walks another thread's lists.

   An optional [capacity] turns the arena into a bounded heap: the
   footprint (Live + Retired blocks; cached free blocks have been
   returned to the arena and do not count) may not exceed it.
   Admission is a *reservation* on an atomic footprint counter —
   fetch-and-add then undo on overshoot — so the bound is strict even
   under concurrent admitters (a plain check-then-increment lets N
   racing threads overshoot by N).  An allocation failing to reserve
   applies backpressure — it invokes the caller's registered
   memory-pressure hook (the tracker's forced sweep) and backs off
   exponentially in virtual time, giving other threads' reclamation a
   chance to land — and only after the retry budget is spent reports
   [Fault.Alloc_exhausted] and aborts the operation by raising
   [Exhausted].

   Statistics are atomics so the real-domains backend can share an
   allocator across domains. *)

exception Exhausted

(* A per-thread cache: the loaded magazine, a spare that is always
   either full or empty, and an atomic count of blocks across both so
   other threads can read the cache size without touching the lists
   (only the owner writes them). *)
type 'a cache = {
  mutable loaded : 'a Block.t list;
  mutable loaded_n : int;
  mutable previous : 'a Block.t list;
  mutable previous_n : int;
  count : int Atomic.t;
}

type 'a t = {
  reuse : bool;
  magazine_size : int;
  caches : 'a cache array;                  (* per-thread magazines *)
  (* Stack of size-tagged magazines.  The overflow path only ever
     pushes full ones; [flush_magazines] (the detach path) pushes
     partials, so each entry carries its block count. *)
  depot : (int * 'a Block.t list) list Atomic.t;
  depot_count : int Atomic.t;               (* blocks in the depot *)
  next_id : int Atomic.t;
  allocated : int Atomic.t;   (* total alloc calls *)
  fresh : int Atomic.t;       (* allocations served by new blocks *)
  reused : int Atomic.t;      (* allocations served from a cache *)
  freed : int Atomic.t;       (* total free calls *)
  footprint : int Atomic.t;   (* live+retired; admission reserves here *)
  mutable capacity : int option;       (* max live+retired blocks *)
  pressure : (unit -> unit) option array; (* per-thread pressure hooks *)
  retry_budget : int;
  peak_footprint : int Atomic.t;
  pressure_retries : int Atomic.t;
  oom_events : int Atomic.t;
  mag_hits : int Atomic.t;      (* allocs served from loaded/previous *)
  mag_misses : int Atomic.t;    (* allocs that went to depot or fresh *)
  depot_refills : int Atomic.t; (* magazines taken from the depot *)
  depot_flushes : int Atomic.t; (* magazines pushed to the depot *)
}

let create ?(reuse = true) ?capacity ?(retry_budget = 8)
    ?(magazine_size = 64) ~threads () =
  if threads < 1 then invalid_arg "Alloc.create: threads must be >= 1";
  if magazine_size < 1 then
    invalid_arg "Alloc.create: magazine_size must be >= 1";
  (match capacity with
   | Some c when c < 1 -> invalid_arg "Alloc.create: capacity must be >= 1"
   | _ -> ());
  {
    reuse;
    magazine_size;
    caches =
      Array.init threads (fun _ ->
          { loaded = []; loaded_n = 0; previous = []; previous_n = 0;
            count = Atomic.make 0 });
    depot = Atomic.make [];
    depot_count = Atomic.make 0;
    next_id = Atomic.make 0;
    allocated = Atomic.make 0;
    fresh = Atomic.make 0;
    reused = Atomic.make 0;
    freed = Atomic.make 0;
    footprint = Atomic.make 0;
    capacity;
    pressure = Array.make threads None;
    retry_budget;
    peak_footprint = Atomic.make 0;
    pressure_retries = Atomic.make 0;
    oom_events = Atomic.make 0;
    mag_hits = Atomic.make 0;
    mag_misses = Atomic.make 0;
    depot_refills = Atomic.make 0;
    depot_flushes = Atomic.make 0;
  }

let threads t = Array.length t.caches
let magazine_size t = t.magazine_size

let check_tid t tid =
  if tid < 0 || tid >= Array.length t.caches then
    invalid_arg "Alloc: thread id out of range"

let footprint t = Atomic.get t.footprint

let capacity t = t.capacity

let set_capacity t capacity =
  (match capacity with
   | Some c when c < 1 ->
     invalid_arg "Alloc.set_capacity: capacity must be >= 1"
   | _ -> ());
  t.capacity <- capacity

let set_pressure_hook t ~tid hook =
  check_tid t tid;
  t.pressure.(tid) <- Some hook

(* Base of the exponential backoff ladder, in cycles.  Doubling from
   here over the default 8-retry budget spends ~one scheduling quantum
   in total — long enough for every other thread to get a sweep in. *)
let backoff_base = 64

let note_peak t fp =
  let rec go () =
    let peak = Atomic.get t.peak_footprint in
    if fp > peak && not (Atomic.compare_and_set t.peak_footprint peak fp)
    then go ()
  in
  go ()

(* Admission by reservation: fetch-and-add the footprint, undo if that
   overshot the cap.  The peak is taken from the *successful*
   reservation's value, so undone reservations can never inflate it
   past the cap.  On reservation failure, the backpressure ladder
   alternates the caller's pressure hook (the tracker's forced sweep)
   with an exponentially growing virtual-time backoff — each
   [Hooks.step] is a preemption point, so other threads' frees can
   land between attempts.  Admission failure is a reported fault plus
   a graceful abort. *)
let admit t ~tid =
  match t.capacity with
  | None ->
    note_peak t (Atomic.fetch_and_add t.footprint 1 + 1)
  | Some cap ->
    let try_reserve () =
      let f = Atomic.fetch_and_add t.footprint 1 + 1 in
      if f <= cap then Some f
      else begin
        Atomic.decr t.footprint;
        None
      end
    in
    let attempt = ref 0 in
    let rec go () =
      match try_reserve () with
      | Some f -> note_peak t f
      | None ->
        if !attempt < t.retry_budget then begin
          Atomic.incr t.pressure_retries;
          Ibr_obs.Probe.pressure ();
          (match t.pressure.(tid) with Some hook -> hook () | None -> ());
          Ibr_runtime.Hooks.step (backoff_base lsl !attempt);
          incr attempt;
          go ()
        end
        else begin
          Atomic.incr t.oom_events;
          Fault.report Alloc_exhausted
            (Printf.sprintf
               "alloc: %d live+retired blocks at capacity %d after %d \
                pressure retries (tid %d)"
               (footprint t) cap t.retry_budget tid);
          raise Exhausted
        end
    in
    go ()

(* -- magazine machinery (owner-thread only, except the depot) -- *)

let depot_push t ~n mag =
  let rec loop () =
    let cur = Atomic.get t.depot in
    if not (Atomic.compare_and_set t.depot cur ((n, mag) :: cur)) then
      loop ()
  in
  loop ();
  ignore (Atomic.fetch_and_add t.depot_count n);
  Atomic.incr t.depot_flushes

let depot_pop t =
  let rec loop () =
    match Atomic.get t.depot with
    | [] -> None
    (* CAS against the value read, not a reconstruction: a fresh cons
       cell is never physically equal to the stored list. *)
    | ((n, mag) :: rest) as cur ->
      if Atomic.compare_and_set t.depot cur rest then begin
        ignore (Atomic.fetch_and_add t.depot_count (-n));
        Atomic.incr t.depot_refills;
        Some (n, mag)
      end
      else loop ()
  in
  loop ()

(* Pop the head of [loaded] (which the caller has ensured is
   non-empty). *)
let pop_loaded c =
  match c.loaded with
  | [] -> assert false
  | b :: rest ->
    c.loaded <- rest;
    c.loaded_n <- c.loaded_n - 1;
    Atomic.decr c.count;
    b

(* Pop one cached block, or None.  Order: loaded, then swap in the
   full previous, then refill a whole magazine from the depot. *)
let cache_pop t c =
  if c.loaded_n > 0 then begin
    Atomic.incr t.mag_hits;
    Some (pop_loaded c)
  end
  else if c.previous_n > 0 then begin
    c.loaded <- c.previous;
    c.loaded_n <- c.previous_n;
    c.previous <- [];
    c.previous_n <- 0;
    Atomic.incr t.mag_hits;
    Some (pop_loaded c)
  end
  else begin
    Atomic.incr t.mag_misses;
    match depot_pop t with
    | Some (n, mag) ->
      c.loaded <- mag;
      c.loaded_n <- n;
      ignore (Atomic.fetch_and_add c.count n);
      Some (pop_loaded c)
    | None -> None
  end

(* Push one freed block.  When [loaded] is full, rotate it to
   [previous]; when both are full, flush the (full) [previous] to the
   depot first — one CAS moves [magazine_size] blocks. *)
let cache_push t c b =
  if c.loaded_n >= t.magazine_size then begin
    if c.previous_n > 0 then begin
      depot_push t ~n:c.previous_n c.previous;
      ignore (Atomic.fetch_and_add c.count (-c.previous_n))
    end;
    c.previous <- c.loaded;
    c.previous_n <- c.loaded_n;
    c.loaded <- [];
    c.loaded_n <- 0
  end;
  c.loaded <- b :: c.loaded;
  c.loaded_n <- c.loaded_n + 1;
  Atomic.incr c.count

let alloc t ~tid payload =
  check_tid t tid;
  admit t ~tid;
  Atomic.incr t.allocated;
  (* The probe fires before [Prim.charge_alloc]: the charge's
     [Hooks.step] is a preemption point where the horizon can unwind
     the fiber, and the event must stay atomic with the counter
     increments above (probes never step). *)
  match if t.reuse then cache_pop t t.caches.(tid) else None with
  | Some b ->
    Block.reincarnate b payload;
    Atomic.incr t.reused;
    Ibr_obs.Probe.alloc ~block:(Block.id b) ~reused:true;
    Prim.charge_alloc ~reused:true;
    b
  | None ->
    Atomic.incr t.fresh;
    let b = Block.make ~id:(Atomic.fetch_and_add t.next_id 1) payload in
    Ibr_obs.Probe.alloc ~block:(Block.id b) ~reused:false;
    Prim.charge_alloc ~reused:false;
    b

(* Reclaim a retired block: poison it and (in reuse mode) cache it. *)
let free t ~tid b =
  check_tid t tid;
  Block.transition_reclaim b;
  Atomic.incr t.freed;
  Atomic.decr t.footprint;
  Ibr_obs.Probe.reclaim ~block:(Block.id b) ~unpublished:false;
  Prim.charge_free ();
  if t.reuse then cache_push t t.caches.(tid) b

(* Reclaim a block that was never published (lost install CAS). *)
let free_unpublished t ~tid b =
  check_tid t tid;
  Block.transition_reclaim_unpublished b;
  Atomic.incr t.freed;
  Atomic.decr t.footprint;
  Ibr_obs.Probe.reclaim ~block:(Block.id b) ~unpublished:true;
  Prim.charge_free ();
  if t.reuse then cache_push t t.caches.(tid) b

(* Detach path: return thread [tid]'s cached free blocks to the shared
   depot so they stay allocatable after the thread leaves.  Only the
   magazine owner may walk its lists, so a departing thread must do
   this itself — otherwise its cached blocks are stranded until (and
   unless) the census slot is reused.  Partial magazines are pushed
   as-is; the depot's size tags exist for exactly this call. *)
let flush_magazines t ~tid =
  check_tid t tid;
  let c = t.caches.(tid) in
  let flush blocks n =
    if n > 0 then begin
      depot_push t ~n blocks;
      ignore (Atomic.fetch_and_add c.count (-n))
    end
  in
  flush c.loaded c.loaded_n;
  c.loaded <- [];
  c.loaded_n <- 0;
  flush c.previous c.previous_n;
  c.previous <- [];
  c.previous_n <- 0

type stats = {
  allocated : int;
  fresh : int;
  reused : int;
  freed : int;
  live : int;       (* allocated - freed: Live or Retired blocks *)
  cached : int;     (* blocks sitting in magazines and the depot *)
  peak_footprint : int;  (* high-water mark of live *)
  pressure_retries : int;
  oom_events : int;
  mag_hits : int;
  mag_misses : int;
  depot_refills : int;
  depot_flushes : int;
}

let stats t =
  (* Counted at push/pop: no walks over other threads' lists. *)
  let cached =
    Array.fold_left (fun n c -> n + Atomic.get c.count) 0 t.caches
    + Atomic.get t.depot_count
  in
  let allocated = Atomic.get t.allocated in
  let freed = Atomic.get t.freed in
  {
    allocated;
    fresh = Atomic.get t.fresh;
    reused = Atomic.get t.reused;
    freed;
    live = allocated - freed;
    cached;
    peak_footprint = Atomic.get t.peak_footprint;
    pressure_retries = Atomic.get t.pressure_retries;
    oom_events = Atomic.get t.oom_events;
    mag_hits = Atomic.get t.mag_hits;
    mag_misses = Atomic.get t.mag_misses;
    depot_refills = Atomic.get t.depot_refills;
    depot_flushes = Atomic.get t.depot_flushes;
  }

(* Metric registration: allocator stats are instance-scoped, so they
   are gauges the harness publishes at end of run (see Ibr_obs.Metrics
   for the order-key scheme; these orders pin the legacy CSV layout). *)
let m_allocated = Ibr_obs.Metrics.register_gauge ~name:"allocated" ~order:100
let m_freed = Ibr_obs.Metrics.register_gauge ~name:"freed" ~order:110
let m_live = Ibr_obs.Metrics.register_gauge ~name:"live" ~order:120
let m_cached = Ibr_obs.Metrics.register_gauge ~name:"cached" ~order:130
let m_oom = Ibr_obs.Metrics.register_gauge ~name:"oom_events" ~order:600

let m_retries =
  Ibr_obs.Metrics.register_gauge ~name:"pressure_retries" ~order:610

let m_peak = Ibr_obs.Metrics.register_gauge ~name:"peak_footprint" ~order:620
let m_hits = Ibr_obs.Metrics.register_gauge ~name:"mag_hits" ~order:630
let m_misses = Ibr_obs.Metrics.register_gauge ~name:"mag_misses" ~order:640

let m_refills =
  Ibr_obs.Metrics.register_gauge ~name:"depot_refills" ~order:650

let m_flushes =
  Ibr_obs.Metrics.register_gauge ~name:"depot_flushes" ~order:660

let publish_stats (s : stats) =
  m_allocated := s.allocated;
  m_freed := s.freed;
  m_live := s.live;
  m_cached := s.cached;
  m_oom := s.oom_events;
  m_retries := s.pressure_retries;
  m_peak := s.peak_footprint;
  m_hits := s.mag_hits;
  m_misses := s.mag_misses;
  m_refills := s.depot_refills;
  m_flushes := s.depot_flushes

let pp_stats ppf s =
  Fmt.pf ppf
    "alloc=%d (fresh=%d reused=%d) freed=%d live=%d cached=%d peak=%d \
     mag=%d/%d depot=%d/%d%s"
    s.allocated s.fresh s.reused s.freed s.live s.cached s.peak_footprint
    s.mag_hits s.mag_misses s.depot_refills s.depot_flushes
    (if s.pressure_retries = 0 && s.oom_events = 0 then ""
     else Printf.sprintf " retries=%d oom=%d" s.pressure_retries
            s.oom_events)
