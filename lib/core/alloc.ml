(* Simulated manual allocator.

   Stands in for jemalloc in the paper's setup: per-thread free-list
   caches (so allocation is contention-free, as jemalloc's arenas
   make it), explicit [free] with poisoning, and full statistics.  Two
   operating modes:

   - [reuse = true]  (default; benchmark mode): freed blocks go to the
     freeing thread's cache and are reincarnated by later allocations.
     The allocator is type-preserving by construction — an ['a t] only
     ever recycles ['a Block.t]s — which is precisely the guarantee
     the TagIBR-TPA variant requires (§3.2.1).
   - [reuse = false] (checker mode): blocks are never reused, so a
     reclaimed block stays [Reclaimed] forever and every dangling
     access is detected with certainty.  Tests run in this mode.

   An optional [capacity] turns the arena into a bounded heap: the
   footprint (Live + Retired blocks; cached free-list blocks have been
   returned to the arena and do not count) may not exceed it.  An
   allocation finding the heap full applies backpressure — it invokes
   the caller's registered memory-pressure hook (the tracker's forced
   sweep) and backs off exponentially in virtual time, giving other
   threads' reclamation a chance to land — and only after the retry
   budget is spent reports [Fault.Alloc_exhausted] and aborts the
   operation by raising [Exhausted].

   Statistics are atomics so the real-domains backend can share an
   allocator across domains. *)

exception Exhausted

type 'a t = {
  reuse : bool;
  caches : 'a Block.t list ref array;  (* per-thread free lists *)
  next_id : int Atomic.t;
  allocated : int Atomic.t;   (* total alloc calls *)
  fresh : int Atomic.t;       (* allocations served by new blocks *)
  reused : int Atomic.t;      (* allocations served from a cache *)
  freed : int Atomic.t;       (* total free calls *)
  mutable capacity : int option;       (* max live+retired blocks *)
  pressure : (unit -> unit) option array; (* per-thread pressure hooks *)
  retry_budget : int;
  peak_footprint : int Atomic.t;
  pressure_retries : int Atomic.t;
  oom_events : int Atomic.t;
}

let create ?(reuse = true) ?capacity ?(retry_budget = 8) ~threads () =
  if threads < 1 then invalid_arg "Alloc.create: threads must be >= 1";
  (match capacity with
   | Some c when c < 1 -> invalid_arg "Alloc.create: capacity must be >= 1"
   | _ -> ());
  {
    reuse;
    caches = Array.init threads (fun _ -> ref []);
    next_id = Atomic.make 0;
    allocated = Atomic.make 0;
    fresh = Atomic.make 0;
    reused = Atomic.make 0;
    freed = Atomic.make 0;
    capacity;
    pressure = Array.make threads None;
    retry_budget;
    peak_footprint = Atomic.make 0;
    pressure_retries = Atomic.make 0;
    oom_events = Atomic.make 0;
  }

let threads t = Array.length t.caches

let check_tid t tid =
  if tid < 0 || tid >= Array.length t.caches then
    invalid_arg "Alloc: thread id out of range"

let footprint t = Atomic.get t.allocated - Atomic.get t.freed

let capacity t = t.capacity

let set_capacity t capacity =
  (match capacity with
   | Some c when c < 1 ->
     invalid_arg "Alloc.set_capacity: capacity must be >= 1"
   | _ -> ());
  t.capacity <- capacity

let set_pressure_hook t ~tid hook =
  check_tid t tid;
  t.pressure.(tid) <- Some hook

(* Base of the exponential backoff ladder, in cycles.  Doubling from
   here over the default 8-retry budget spends ~one scheduling quantum
   in total — long enough for every other thread to get a sweep in. *)
let backoff_base = 64

(* Backpressure ladder: while the heap is at capacity, alternate the
   caller's pressure hook (the tracker's forced sweep) with an
   exponentially growing virtual-time backoff — each [Hooks.step] is a
   preemption point, so other threads' frees can land between checks.
   Admission failure is a reported fault plus a graceful abort. *)
let admit t ~tid =
  match t.capacity with
  | None -> ()
  | Some cap ->
    let attempt = ref 0 in
    while footprint t >= cap && !attempt < t.retry_budget do
      Atomic.incr t.pressure_retries;
      Ibr_obs.Probe.pressure ();
      (match t.pressure.(tid) with Some hook -> hook () | None -> ());
      Ibr_runtime.Hooks.step (backoff_base lsl !attempt);
      incr attempt
    done;
    if footprint t >= cap then begin
      Atomic.incr t.oom_events;
      Fault.report Alloc_exhausted
        (Printf.sprintf
           "alloc: %d live+retired blocks at capacity %d after %d \
            pressure retries (tid %d)"
           (footprint t) cap t.retry_budget tid);
      raise Exhausted
    end

let note_peak t =
  let fp = footprint t in
  let rec go () =
    let peak = Atomic.get t.peak_footprint in
    if fp > peak && not (Atomic.compare_and_set t.peak_footprint peak fp)
    then go ()
  in
  go ()

let alloc t ~tid payload =
  check_tid t tid;
  admit t ~tid;
  Atomic.incr t.allocated;
  note_peak t;
  let cache = t.caches.(tid) in
  (* The probe fires before [Prim.charge_alloc]: the charge's
     [Hooks.step] is a preemption point where the horizon can unwind
     the fiber, and the event must stay atomic with the counter
     increments above (probes never step). *)
  match !cache with
  | b :: rest when t.reuse ->
    cache := rest;
    Block.reincarnate b payload;
    Atomic.incr t.reused;
    Ibr_obs.Probe.alloc ~block:(Block.id b) ~reused:true;
    Prim.charge_alloc ~reused:true;
    b
  | _ ->
    Atomic.incr t.fresh;
    let b = Block.make ~id:(Atomic.fetch_and_add t.next_id 1) payload in
    Ibr_obs.Probe.alloc ~block:(Block.id b) ~reused:false;
    Prim.charge_alloc ~reused:false;
    b

(* Reclaim a retired block: poison it and (in reuse mode) cache it. *)
let free t ~tid b =
  check_tid t tid;
  Block.transition_reclaim b;
  Atomic.incr t.freed;
  Ibr_obs.Probe.reclaim ~block:(Block.id b) ~unpublished:false;
  Prim.charge_free ();
  if t.reuse then begin
    let cache = t.caches.(tid) in
    cache := b :: !cache
  end

(* Reclaim a block that was never published (lost install CAS). *)
let free_unpublished t ~tid b =
  check_tid t tid;
  Block.transition_reclaim_unpublished b;
  Atomic.incr t.freed;
  Ibr_obs.Probe.reclaim ~block:(Block.id b) ~unpublished:true;
  Prim.charge_free ();
  if t.reuse then begin
    let cache = t.caches.(tid) in
    cache := b :: !cache
  end

type stats = {
  allocated : int;
  fresh : int;
  reused : int;
  freed : int;
  live : int;       (* allocated - freed: Live or Retired blocks *)
  cached : int;     (* blocks sitting in free lists *)
  peak_footprint : int;  (* high-water mark of live *)
  pressure_retries : int;
  oom_events : int;
}

let stats t =
  let cached = Array.fold_left (fun n c -> n + List.length !c) 0 t.caches in
  let allocated = Atomic.get t.allocated in
  let freed = Atomic.get t.freed in
  {
    allocated;
    fresh = Atomic.get t.fresh;
    reused = Atomic.get t.reused;
    freed;
    live = allocated - freed;
    cached;
    peak_footprint = Atomic.get t.peak_footprint;
    pressure_retries = Atomic.get t.pressure_retries;
    oom_events = Atomic.get t.oom_events;
  }

(* Metric registration: allocator stats are instance-scoped, so they
   are gauges the harness publishes at end of run (see Ibr_obs.Metrics
   for the order-key scheme; these orders pin the legacy CSV layout). *)
let m_allocated = Ibr_obs.Metrics.register_gauge ~name:"allocated" ~order:100
let m_freed = Ibr_obs.Metrics.register_gauge ~name:"freed" ~order:110
let m_live = Ibr_obs.Metrics.register_gauge ~name:"live" ~order:120
let m_cached = Ibr_obs.Metrics.register_gauge ~name:"cached" ~order:130
let m_oom = Ibr_obs.Metrics.register_gauge ~name:"oom_events" ~order:600

let m_retries =
  Ibr_obs.Metrics.register_gauge ~name:"pressure_retries" ~order:610

let m_peak = Ibr_obs.Metrics.register_gauge ~name:"peak_footprint" ~order:620

let publish_stats (s : stats) =
  m_allocated := s.allocated;
  m_freed := s.freed;
  m_live := s.live;
  m_cached := s.cached;
  m_oom := s.oom_events;
  m_retries := s.pressure_retries;
  m_peak := s.peak_footprint

let pp_stats ppf s =
  Fmt.pf ppf
    "alloc=%d (fresh=%d reused=%d) freed=%d live=%d cached=%d peak=%d%s"
    s.allocated s.fresh s.reused s.freed s.live s.cached s.peak_footprint
    (if s.pressure_retries = 0 && s.oom_events = 0 then ""
     else Printf.sprintf " retries=%d oom=%d" s.pressure_retries
            s.oom_events)
