(** Quiescent-state-based reclamation (RCU-style; paper §2.2):
    threads announce quiescent states at operation end; a block is
    reclaimed two grace periods after retirement.  Zero read overhead;
    not robust.

    Sealed to the common memory-manager signature of Fig. 1. *)

include Tracker_intf.TRACKER

module Noncas : Tracker_intf.TRACKER
(** The grace-period-skip oracle (DESIGN.md §5a.3): identical to QSBR
    except the epoch advance is an unconditional increment, so two
    racing advancers that validated against the same epoch skip a
    grace period.  Demonstration only — the bounded model checker
    produces its use-after-free as a minimal schedule witness. *)
