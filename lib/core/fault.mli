(** Memory-fault detection policy.

    In C a use-after-free or double-free is undefined behaviour; in
    this reproduction both are {e defined, detectable events}.  Tests
    run in [Raise] mode; demonstrations of broken schemes run in
    [Count] mode so a run survives to accumulate statistics. *)

type kind =
  | Use_after_free       (** payload accessed after reclamation *)
  | Double_free          (** block reclaimed twice *)
  | Double_retire        (** block retired twice *)
  | Retire_unpublished   (** retire of a block not in the Live state *)
  | Alloc_exhausted      (** capped allocator still at capacity after
                             the backpressure retry budget *)

exception Memory_fault of kind * string

exception Neutralized
(** The DEBRA+ restart signal — the {e same} exception as
    {!Ibr_runtime.Hooks.Neutralized} (rebound, so either name catches
    it), re-exported so reclamation code need not name the runtime
    layer.  Not a memory fault: a neutralized thread drops its
    reservations, re-protects, and retries — see
    [Ds_common.with_op]. *)

type mode = Raise | Count

val set_mode : mode -> unit

val report : kind -> string -> unit
(** Raise or count, per the current mode. *)

val count : kind -> int
val total : unit -> int
val reset : unit -> unit

val all_kinds : kind list

val kind_to_string : kind -> string

(** A point-in-time copy of every counter. *)
type snapshot = {
  use_after_free : int;
  double_free : int;
  double_retire : int;
  retire_unpublished : int;
  alloc_exhausted : int;
}

val snapshot : unit -> snapshot

val diff : snapshot -> snapshot -> snapshot
(** [diff after before]: events observed between the two snapshots
    (componentwise difference; counters are monotone between
    {!reset}s). *)

val snapshot_total : snapshot -> int

val with_counting : (unit -> 'a) -> 'a * int
(** Run in [Count] mode; return the result and the number of faults
    observed during the call.  Restores the previous mode.  If [f]
    raises, the exception propagates — use {!with_counting_result}
    when the tally of a raising run is needed. *)

val with_counting_result : (unit -> 'a) -> ('a, exn) result * int
(** Like {!with_counting} but never loses the tally: a raising [f]
    yields [Error e] alongside the faults it reported before dying. *)
