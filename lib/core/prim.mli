(** Cost-charged shared-memory primitives.

    All tracker and data-structure code performs shared accesses
    through these wrappers so that (a) the simulator charges each
    primitive its modelled latency and gains a preemption point, and
    (b) the per-scheme instruction mix — where the paper's throughput
    differences come from — is faithfully accounted. *)

val costs : Ibr_runtime.Cost.t ref
(** The active cost model (global; experiments set it once per run). *)

val set_costs : Ibr_runtime.Cost.t -> unit

val read : 'a Atomic.t -> 'a
val hot_read : 'a Atomic.t -> 'a
(** Load of a read-mostly global (epoch counter, born_before);
    cheaper per {!Ibr_runtime.Cost.t.hot_read}. *)

val write : 'a Atomic.t -> 'a -> unit

val cas : 'a Atomic.t -> 'a -> 'a -> bool
(** Physical-equality compare-and-set; charges success or failure
    cost accordingly. *)

val charge_cas : ok:bool -> unit
(** Charge for a CAS the caller performed raw with
    [Atomic.compare_and_set].  Use when bookkeeping must stay atomic
    with the CAS: the charge's step is a preemption point where the
    horizon can unwind the fiber, and {!cas} steps after its atomic
    op. *)

val faa : int Atomic.t -> int -> int

val fence : unit -> unit
(** Write-read fence.  OCaml atomics are already sequentially
    consistent, so only the cost matters (the simulator does not
    reorder). *)

val local : int -> unit
(** [n] thread-local bookkeeping steps. *)

val charge_deref : unit -> unit
(** Payload dereference: read-class latency and — crucially for fault
    detection — a preemption point between reading a pointer and
    touching its target. *)

val charge_alloc : reused:bool -> unit
val charge_free : unit -> unit
val charge_scan : unit -> unit
