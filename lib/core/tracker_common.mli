(** Pieces shared by all trackers: the flat retired list and its
    sweep, reservation-table snapshots, the structured conflict test,
    and the global sweep telemetry the harness reports.

    The sweep path is the hot loop of every scheme's reclamation: one
    conflict test per retired block.  {!Sweep_snapshot} sorts and
    merges the reservations once per sweep so each block's test is a
    binary search (O(retired x log T)); the linear predicates survive
    behind {!legacy_sweep} as differential-testing oracles. *)

val legacy_sweep : bool ref
(** Debug/ablation flag: route sweeps through the original
    O(retired x threads) linear-scan predicates instead of the sorted
    snapshot.  Flipped by the `ablation:sweep` bench and the
    differential tests; production paths leave it [false]. *)

(** Global sweep telemetry, accumulated by every tracker instance
    (atomics: the domains backend sweeps in parallel).  Harness
    runners snapshot before/after a run and report the difference. *)
module Sweep_stats : sig
  type snap = {
    sweeps : int;           (** sweeps actually run *)
    examined : int;         (** blocks conflict-tested one by one *)
    freed : int;            (** blocks handed to free *)
    snapshot_entries : int; (** reservation cells read for snapshots *)
    snapshot_cycles : int;  (** modelled cycles building snapshots *)
    skipped : int;          (** sweep attempts skipped by Gated *)
    buckets : int;          (** limbo buckets occupied, at sweep time *)
  }

  val note_sweep : examined:int -> freed:int -> unit
  val note_snapshot : entries:int -> cycles:int -> unit
  val note_skip : unit -> unit
  val note_buckets : int -> unit

  val snap : unit -> snap
  val diff : snap -> snap -> snap
  val reset : unit -> unit
end

(** Thread-local list of retired-but-unreclaimed blocks (the flat
    [List] store of {!Reclaimer}).  Only its owning thread touches it,
    so no atomics; the count is sampled from the same simulated
    thread. *)
module Retired : sig
  type 'a t = {
    mutable blocks : 'a Block.t list;
    mutable count : int;
    mutable total_retired : int;
    mutable total_reclaimed : int;
  }

  val create : unit -> 'a t
  val add : 'a t -> 'a Block.t -> unit
  val count : 'a t -> int

  val sweep :
    'a t -> conflict:('a Block.t -> bool) -> free:('a Block.t -> unit) ->
    unit
  (** Keep blocks satisfying [conflict]; hand the rest to [free].
      Charges one local step per examined block and records the sweep
      in {!Sweep_stats}. *)

  val iter : 'a t -> ('a Block.t -> unit) -> unit
  (** Observational iterator, most-recently-retired first. *)
end

val snapshot_reservations : int Atomic.t array -> int array
(** Snapshot a reservation table, charging the cross-thread scan cost
    per entry and recording it in {!Sweep_stats}. *)

(** A once-per-sweep digest of a reservation table: reserved
    intervals, sorted by lower endpoint and merged into disjoint runs,
    so a block's conflict test is one binary search. *)
module Sweep_snapshot : sig
  type t

  val length : t -> int

  val min_lower : t -> int
  (** Smallest reserved lower endpoint ([max_int] when nothing is
      reserved).  A block whose retire epoch precedes it cannot
      conflict with any interval — the bucket-wholesale test of
      {!Reclaimer}. *)

  val of_pairs : int array -> int array -> int -> t
  (** [of_pairs los his n] digests the first [n] (lo, hi) pairs.
      Destructive on the input arrays (sorted in place). *)

  val of_intervals : lower:int array -> upper:int array -> t
  (** Build from parallel endpoint arrays; [max_int] lowers mark
      unreserved slots and are dropped. *)

  val of_points : none:int -> int array -> t
  (** Build from single-epoch reservations (HE eras, POIBR epochs):
      each reserved value [e] is the degenerate interval [e, e];
      [none] is the scheme's empty-slot sentinel. *)

  val conflict : t -> birth:int -> retire:int -> bool
  (** Is [birth, retire] intersected by any reserved interval?
      O(log T). *)
end

(** What a sweep tests each retired block against: nothing, a single
    epoch threshold (the epoch-family schemes), or the sorted interval
    digest. *)
module Conflict : sig
  type t =
    | Never                          (** no reservations: free everything *)
    | Threshold of int               (** conflict iff retire_epoch >= n *)
    | Intervals of Sweep_snapshot.t  (** conflict iff lifetime intersects *)

  val pred : t -> 'a Block.t -> bool
end

(** Per-thread [lower, upper] interval reservations, shared by the
    TagIBR variants and 2GEIBR (Fig. 5 lines 1–2, 16–17). *)
module Interval_res : sig
  type t = {
    lower : int Atomic.t array;
    upper : int Atomic.t array;
  }

  val create : int -> t
  val start : t -> tid:int -> int -> unit
  val clear : t -> tid:int -> unit
  val upper_cell : t -> tid:int -> int Atomic.t

  val conflict_with_snapshot : t -> 'a Block.t -> bool
  (** Legacy linear-scan predicate, O(threads) per block — the
      differential-testing oracle for the sorted path. *)

  val sweep_snapshot : t -> Sweep_snapshot.t
  (** Sorted-snapshot digest of the table (one O(T log T) build, then
      O(log T) per block). *)

  val conflict_fast : t -> 'a Block.t -> bool
  (** The production conflict predicate; obeys {!legacy_sweep}. *)
end

(** Dynamic thread census: slot occupancy manager behind every
    tracker's [attach]/[detach] (DESIGN.md §10).  Reservation tables
    stay sized at the tracker's creation [threads]; the census tracks
    which slots belong to a live thread, hands the lowest free slot
    to a joiner with a charged CAS, and lets a leaver release its slot
    after the tracker has published a quiescent reservation for it.
    The per-slot ['p] payload (the tracker's reclaimer path) is
    created on first occupancy and adopted by later occupants, so
    retired blocks a departing thread could not yet free stay owned
    by the slot. *)
module Census : sig
  type 'p t

  val create : int -> 'p t
  (** [create capacity] — all slots free.
      @raise Invalid_argument if [capacity < 1]. *)

  val capacity : 'p t -> int

  val is_active : 'p t -> tid:int -> bool

  val active_count : 'p t -> int

  val attaches : 'p t -> int
  (** Successful attaches ever (monotone). *)

  val detaches : 'p t -> int
  (** Detaches ever (monotone). *)

  val generation : 'p t -> tid:int -> int
  (** How many times slot [tid] has been attached; a handle from an
      earlier generation must never coexist with a later one. *)

  val try_attach : 'p t -> make:(int -> 'p) -> (int * 'p) option
  (** Claim the lowest free slot, running [make tid] only on a slot's
      first-ever occupancy (later occupants adopt the stored payload).
      [None] when every slot is taken. *)

  val detach : 'p t -> tid:int -> unit
  (** Release slot [tid].  Caller must have published a quiescent
      reservation for the slot first.
      @raise Invalid_argument if the slot is not active. *)
end
