(** DEBRA (Brown, PODC 2015): epoch-based reclamation with amortized
    epoch announcements (a fresh shared-epoch read only every
    [announce_freq] operations; the cached value is re-published in
    between, which errs conservative) and per-thread epoch-bucketed
    limbo bags.  Fast — the hot path drops the shared epoch load —
    but not robust alone; the neutralization that heals stalled
    threads is {!Debra_plus}.

    Sealed to the common memory-manager signature of Fig. 1. *)

include Tracker_intf.TRACKER

(** The recovery policy distinguishing DEBRA, DEBRA+ and the unsound
    norestart oracle; see the [.ml] for the soundness notes. *)
module type POLICY = sig
  val name : string
  val summary : string

  val invalidate_cache_on_recover : bool
  (** forget the cached epoch on neutralization (DEBRA+ promptness) *)

  val reprotect_on_recover : bool
  (** re-run [start_op] before the retry ([false] = the unsound
      debra-norestart oracle) *)
end

module Make (P : POLICY) : Tracker_intf.TRACKER
