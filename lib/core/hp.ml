(* Hazard pointers (Michael [20]; paper §2.3).

   One block-granularity reservation per slot.  The protect protocol:
   read the cell, publish the target to a hazard slot, fence, re-read
   the cell; only if unchanged may the block be dereferenced.  The
   per-read fence is the scheme's defining cost; precision (exactly
   the in-use blocks are reserved) is its defining benefit. *)

let name = "HP"

let props = {
  Tracker_intf.robust = true;
  needs_unreserve = true;
  mutable_pointers = true;
  bounded_slots = true;
  pointer_tag_words = 0;
  fence_per_read = true;
  summary =
    "copy of every active pointer; precise but fence per read and \
     explicit unreserve";
}

(* A hazard slot holds a raw block reference (not a view): marks need
   no protection, only the block does. *)
type 'a slot_table = 'a Block.t option Atomic.t array array

type 'a t = {
  slots : 'a slot_table;
  alloc : 'a Alloc.t;
  cfg : Tracker_intf.config;
  threads : int;
  census : 'a Handoff.path Tracker_common.Census.t;
  mutable handoff : 'a Handoff.t option;
}

type 'a handle = {
  t : 'a t;
  tid : int;
  mutable hwm : int;   (* highest slot used this op, for cheap end_op *)
  path : 'a Handoff.path;
}

type 'a ptr = 'a Plain_ptr.t

(* Michael's scan: snapshot all hazard slots into an id set, then
   sweep the local retired store against membership.  An opaque
   predicate — blocks carry no retire epochs here, so the bucketed
   backends degenerate to per-block tests (and, with the epoch peek
   pinned at 0, Gated never gates). *)
let make_reclaimer t ~tid =
  (* Reused across sweeps so a scan does not allocate (and regrow) a
     fresh table; cleared, not reset, to keep its buckets.  One per
     reclaimer: the background service sweeps with its own scratch. *)
  let hazard_scratch : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  let source () =
    Hashtbl.clear hazard_scratch;
    let entries = ref 0 in
    Array.iter (fun row ->
      Array.iter (fun slot ->
        Prim.charge_scan ();
        incr entries;
        match Atomic.get slot with
        | None -> ()
        | Some b -> Hashtbl.replace hazard_scratch (Block.id b) ())
        row)
      t.slots;
    Tracker_common.Sweep_stats.note_snapshot ~entries:!entries
      ~cycles:(!entries * !Prim.costs.Ibr_runtime.Cost.scan_reservation);
    Reclaimer.Predicate (fun b -> Hashtbl.mem hazard_scratch (Block.id b))
  in
  Reclaimer.create ~backend:t.cfg.Tracker_intf.retire_backend
    ~empty_freq:t.cfg.Tracker_intf.empty_freq
    ~current_epoch:(fun () -> 0)
    ~source
    ~free:(fun b -> Alloc.free t.alloc ~tid b)
    ()

let create ~threads (cfg : Tracker_intf.config) =
  Tracker_intf.validate ~threads cfg;
  let t = {
    slots =
      Array.init threads (fun _ ->
        Array.init cfg.slots (fun _ -> Atomic.make None));
    alloc =
      Alloc.create ~reuse:cfg.reuse ~magazine_size:cfg.magazine_size
        ~threads:(threads + if cfg.background_reclaim then 1 else 0) ();
    cfg;
    threads;
    census = Tracker_common.Census.create threads;
    handoff = None;
  } in
  if cfg.background_reclaim then
    t.handoff <-
      Some
        (Handoff.create ~producers:threads ~batch:cfg.handoff_batch
           (make_reclaimer t ~tid:threads));
  t

let register t ~tid =
  let path =
    match t.handoff with
    | Some h -> Handoff.Queued h
    | None -> Handoff.Direct (make_reclaimer t ~tid)
  in
  Alloc.set_pressure_hook t.alloc ~tid (fun () -> Handoff.path_pressure path);
  { t; tid; hwm = -1; path }

(* Dynamic registration.  A released row was cleared by the leaver's
   detach, which is exactly a fresh row's state: no hazard published
   until the first protected read. *)
let attach t =
  match
    Tracker_common.Census.try_attach t.census ~make:(fun tid ->
      match t.handoff with
      | Some h -> Handoff.Queued h
      | None -> Handoff.Direct (make_reclaimer t ~tid))
  with
  | None -> None
  | Some (tid, path) ->
    Alloc.set_pressure_hook t.alloc ~tid (fun () ->
      Handoff.path_pressure path);
    Some { t; tid; hwm = -1; path }

let handle_tid h = h.tid

let alloc h payload = Alloc.alloc h.t.alloc ~tid:h.tid payload
let dealloc h b = Alloc.free_unpublished h.t.alloc ~tid:h.tid b

let retire h b =
  Block.transition_retire b;
  Handoff.path_add h.path ~tid:h.tid b

let start_op h = h.hwm <- -1

(* Clear only the slots this operation actually used. *)
let end_op h =
  let row = h.t.slots.(h.tid) in
  for i = 0 to h.hwm do
    if Prim.read row.(i) <> None then begin
      Prim.write row.(i) None;
      Ibr_obs.Probe.unreserve ~slot:i
    end
  done;
  h.hwm <- -1

let make_ptr _ ?tag target = Plain_ptr.make ?tag target

let read h ~slot p =
  if h.hwm < slot then h.hwm <- slot;
  let cell = h.t.slots.(h.tid).(slot) in
  let rec loop () =
    let v = Plain_ptr.read p in
    (match View.target v with
     | None -> v   (* null needs no protection *)
     | Some b ->
       Prim.write cell (Some b);
       Ibr_obs.Probe.reserve ~slot;
       Prim.fence ();
       let v' = Plain_ptr.read p in
       if v == v' then v else loop ())
  in
  loop ()

let read_root h p = read h ~slot:0 p
let write _ p ?tag target = Plain_ptr.write p ?tag target
let cas _ p ~expected ?tag target = Plain_ptr.cas p ~expected ?tag target

let unreserve h ~slot =
  Prim.write h.t.slots.(h.tid).(slot) None;
  Ibr_obs.Probe.unreserve ~slot

(* Copy a protection between slots: the target is already protected by
   [src], so no fence or re-validation is needed. *)
let reassign h ~src ~dst =
  if h.hwm < dst then h.hwm <- dst;
  let row = h.t.slots.(h.tid) in
  Prim.local 1;
  Prim.write row.(dst) (Prim.read row.(src));
  Ibr_obs.Probe.reserve ~slot:dst

let retired_count h = Handoff.path_count h.path

let force_empty h =
  Handoff.path_drain h.path ~tid:h.tid;
  Reclaimer.force (Handoff.path_reclaimer h.path)

let allocator t = t.alloc
let epoch_value _ = 0
let reclaim_service t = Option.map Handoff.service t.handoff

(* Neutralize a dead thread: clear every hazard slot in its row.  The
   scratch flush unstrands batched handoff retires. *)
let eject t ~tid =
  (match t.handoff with Some h -> Handoff.flush_own h ~tid | None -> ());
  Array.iter (fun slot -> Prim.write slot None) t.slots.(tid)

(* Neutralization recovery: hazard pointers are per-read, so dropping
   the row plus a fresh [start_op] suffices — the retried traversal
   re-publishes each hazard as it reads. *)
let recover h =
  eject h.t ~tid:h.tid;
  start_op h

(* Dynamic deregistration: final sweep, clear the hazard row, flush
   the magazines, release the slot. *)
let detach h =
  force_empty h;
  eject h.t ~tid:h.tid;
  Alloc.flush_magazines h.t.alloc ~tid:h.tid;
  Tracker_common.Census.detach h.t.census ~tid:h.tid
