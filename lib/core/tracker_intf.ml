(* The memory-manager API of the paper's Fig. 1, as an OCaml module
   type, plus tuning knobs and capability metadata (used to pair
   schemes with data structures and to regenerate the Fig. 7 table). *)

type config = {
  epoch_freq : int;
  (* Advance the global epoch every [epoch_freq] allocations per
     thread.  The paper uses n_threads * k so the wall-clock epoch
     rate is independent of thread count (§5); their k = 150 makes
     the epoch period ~100us — hundreds of ops, far below a preemption
     slice, with ~10^5 periods per 10-second run.  Our simulated runs
     are ~10^5..10^6 cycles, so k is scaled down to preserve the
     ordering op length < epoch period << block lifetime << stall
     length *and* keep many epoch periods per run.  (A k so large that
     per-thread counters never reach n*k would freeze the epoch and
     spuriously pin everything.) *)
  empty_freq : int;
  (* Attempt reclamation every [empty_freq] retirements (the paper's
     k; k = 30 in their experiments). *)
  slots : int;
  (* Hazard slots per thread for pointer-based schemes (HP, HE). *)
  max_cas_failures : int;
  (* Data-structure operations restart with a fresh reservation after
     this many failed CASes — the starvation bound of §4.3.1.
     0 disables restarting. *)
  reuse : bool;
  (* Allocator reuse (benchmark mode) vs. precise-UAF mode (tests). *)
  retire_backend : Reclaimer.backend;
  (* How each handle stores and sweeps its retired blocks: the flat
     [List] (the differential oracle), epoch-bucketed limbo lists
     ([Buckets]), or buckets plus sweep gating ([Gated]).  See
     [Reclaimer]. *)
  background_reclaim : bool;
  (* Route retirements through per-thread handoff queues drained by a
     dedicated reclaimer thread (DEBRA-style decoupling) instead of
     sweeping inline on the mutator.  The runner owns the drain loop;
     under allocator backpressure mutators fall back to a synchronous
     drain+sweep so the robustness bounds still hold.  Off by default:
     inline sweeping is the paper's configuration and keeps traced
     runs bit-identical with earlier PRs. *)
  magazine_size : int;
  (* Capacity of each per-thread allocator magazine (jemalloc
     tcache-style free-block caching; see [Alloc]). *)
  handoff_batch : int;
  (* Background reclamation only: retire into a thread-local buffer
     flushed as one handoff-queue append every [handoff_batch]
     retirements, amortizing the queue CAS.  1 (the default) takes the
     original one-CAS-per-retire path bit-for-bit; see [Handoff]. *)
  announce_freq : int;
  (* DEBRA-family amortization: re-read the global epoch only every
     [announce_freq] operations, re-publishing a cached (possibly
     stale, hence conservative) announcement in between.  Brown's
     "check the epoch every ~100 operations"; scaled down like
     [epoch_freq] so several announcement periods fit one simulated
     run.  1 = announce-per-op (classic EBR behaviour).  Ignored by
     non-DEBRA schemes. *)
}

let default_config ?(threads = 1) () = {
  epoch_freq = 2 * threads;
  empty_freq = 30;
  slots = 8;
  max_cas_failures = 128;
  reuse = true;
  retire_backend = Reclaimer.List;
  background_reclaim = false;
  magazine_size = 64;
  handoff_batch = 1;
  announce_freq = 8;
}

(* Reject configurations that would silently disable a scheme's
   safety argument rather than merely tune it.  Called by every
   tracker's [create].  Threads first: a zero-thread census makes the
   derived epoch_freq zero too, and the root cause is the better
   error. *)
let validate ~threads cfg =
  if threads < 1 then
    invalid_arg "Tracker config: threads must be >= 1";
  if cfg.epoch_freq <= 0 then
    invalid_arg "Tracker config: epoch_freq must be positive";
  if cfg.magazine_size < 1 then
    invalid_arg "Tracker config: magazine_size must be >= 1";
  if cfg.handoff_batch < 1 then
    invalid_arg "Tracker config: handoff_batch must be >= 1";
  if cfg.announce_freq < 1 then
    invalid_arg "Tracker config: announce_freq must be >= 1"

(* Fig. 7 row: qualitative properties of a scheme. *)
type properties = {
  robust : bool;           (* stalled thread blocks only bounded memory *)
  needs_unreserve : bool;  (* programmer must release reservations *)
  mutable_pointers : bool; (* arbitrary nonblocking structures supported *)
  bounded_slots : bool;    (* needs a per-read slot budget (HP/HE) *)
  pointer_tag_words : int; (* extra words per shared pointer *)
  fence_per_read : bool;   (* write-read fence on (almost) every read *)
  summary : string;        (* prose for the Fig. 7 table *)
}

module type TRACKER = sig
  val name : string
  val props : properties

  type 'a t
  (* A manager instance: global epoch, reservation table, allocator. *)

  type 'a handle
  (* Per-thread session: reservation slots, retired list, counters. *)

  type 'a ptr
  (* A shared mutable pointer cell holding an ['a View.t]. *)

  val create : threads:int -> config -> 'a t
  val register : 'a t -> tid:int -> 'a handle
  (* Fixed-census registration: the caller owns slot assignment.
     Do not mix with [attach]/[detach] on the same instance. *)

  val attach : 'a t -> 'a handle option
  (* Dynamic registration: claim the lowest free census slot, or
     [None] when all [threads] slots are occupied.  The slot's
     reclaimer path is created on first occupancy and adopted by
     later occupants, so retirements a departing thread could not yet
     free stay owned by the slot.  See DESIGN.md §10. *)

  val detach : 'a handle -> unit
  (* Release an [attach]ed handle.  The caller must be between
     operations (no reservation held).  Order inside: final
     drain-and-sweep of the handle's retired blocks, publish a
     quiescent reservation, flush the allocator magazines, then free
     the census slot — so a joiner that reuses the slot can never
     alias a reservation the leaver still held.  The handle must not
     be used afterwards. *)

  val handle_tid : 'a handle -> int
  (* The census slot this handle occupies (stable for its lifetime). *)

  (* Fig. 1 API *)
  val alloc : 'a handle -> 'a -> 'a Block.t
  val dealloc : 'a handle -> 'a Block.t -> unit
  (* Free a block that was never published (lost its install CAS). *)

  val retire : 'a handle -> 'a Block.t -> unit
  val start_op : 'a handle -> unit
  val end_op : 'a handle -> unit

  val make_ptr : 'a t -> ?tag:int -> 'a Block.t option -> 'a ptr
  val read : 'a handle -> slot:int -> 'a ptr -> 'a View.t
  (* Protected pointer read.  [slot] is meaningful only for schemes
     with per-pointer reservations (HP, HE); others ignore it. *)

  val read_root : 'a handle -> 'a ptr -> 'a View.t
  (* POIBR's guarded root read (Fig. 4); for every other scheme this
     is [read ~slot:0]. *)

  val write : 'a handle -> 'a ptr -> ?tag:int -> 'a Block.t option -> unit
  val cas :
    'a handle -> 'a ptr -> expected:'a View.t -> ?tag:int ->
    'a Block.t option -> bool

  val unreserve : 'a handle -> slot:int -> unit
  (* Release a per-pointer reservation (no-op unless HP/HE). *)

  val reassign : 'a handle -> src:int -> dst:int -> unit
  (* Move a reservation between slots without re-validation (hand-
     over-hand traversal); no-op unless HP/HE. *)

  (* Observability *)
  val retired_count : 'a handle -> int
  val force_empty : 'a handle -> unit
  val allocator : 'a t -> 'a Alloc.t
  val epoch_value : 'a t -> int   (* 0 for epoch-less schemes *)

  val reclaim_service : 'a t -> Handoff.service option
  (* The background-reclamation service when [background_reclaim] is
     set: the runner's reclaimer thread calls [drain] in a loop and
     [flush] at shutdown.  [None] when the feature is off or the
     scheme never sweeps (NoMM, UnsafeFree). *)

  val eject : 'a t -> tid:int -> unit
  (* DEBRA+/NBR-style neutralization: expire thread [tid]'s
     reservations so they no longer pin retired blocks, restoring
     reclamation after the thread crash-faulted, and flush any
     producer-private handoff scratch the victim still buffered
     (batched handoff would otherwise strand those retires until
     detach).  SOUND ONLY for a dead, parked, or suspended thread —
     ejecting a running thread that still dereferences its protected
     blocks readmits use-after-free (the watchdog's progress heuristic
     is the caller's responsibility; see DESIGN.md §7).  A victim that
     is *neutralized* rather than crashed may run again afterwards,
     but only through [recover], which re-establishes protection
     before the operation retries.  No-op for schemes that hold
     nothing between operations. *)

  val recover : 'a handle -> unit
  (* Neutralization recovery (DEBRA+, DESIGN.md §12): called by
     [Ds_common.with_op] after [Fault.Neutralized] unwound the
     current attempt.  Contract: drop every reservation the handle
     holds (an [eject]-style self-expiry, including the handoff
     scratch flush) and then re-establish protection exactly as if
     [start_op] had just run, so the retried attempt starts from a
     clean, protected state.  The deliberately unsound
     [debra-norestart] variant omits the re-protect step — that is
     the bug class this API exists to make impossible to write by
     accident elsewhere. *)
end

type packed = (module TRACKER)
