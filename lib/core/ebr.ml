(* Epoch-based reclamation (paper §2.2, Fig. 2).

   One epoch reservation per thread, posted at [start_op], cleared
   (to MAX) at [end_op].  A retired block is reclaimable once its
   retire epoch precedes every posted reservation.  Fast — no per-read
   instrumentation at all — but not robust: one stalled thread pins
   every block retired after its start epoch. *)

let name = "EBR"

let props = {
  Tracker_intf.robust = false;
  needs_unreserve = false;
  mutable_pointers = true;
  bounded_slots = false;
  pointer_tag_words = 0;
  fence_per_read = false;
  summary =
    "start epoch reserves everything not retired before it; \
     unbounded reservation for a stalled thread";
}

type 'a t = {
  epoch : Epoch.t;
  reservations : int Atomic.t array;
  alloc : 'a Alloc.t;
  cfg : Tracker_intf.config;
}

type 'a handle = {
  t : 'a t;
  tid : int;
  mutable alloc_counter : int;
  rc : 'a Reclaimer.t;
}

type 'a ptr = 'a Plain_ptr.t

let create ~threads (cfg : Tracker_intf.config) = {
  epoch = Epoch.create ();
  reservations = Array.init threads (fun _ -> Atomic.make max_int);
  alloc = Alloc.create ~reuse:cfg.reuse ~threads ();
  cfg;
}

(* A single-threshold conflict: reclaim every block retired before the
   oldest reservation (O(1) per block under any backend). *)
let register t ~tid =
  let rc =
    Reclaimer.create ~backend:t.cfg.Tracker_intf.retire_backend
      ~empty_freq:t.cfg.Tracker_intf.empty_freq
      ~current_epoch:(fun () -> Epoch.peek t.epoch)
      ~source:(fun () ->
        let reservations =
          Tracker_common.snapshot_reservations t.reservations in
        let max_safe = Array.fold_left min max_int reservations in
        Reclaimer.Shape (Tracker_common.Conflict.Threshold max_safe))
      ~free:(fun b -> Alloc.free t.alloc ~tid b)
      ()
  in
  Alloc.set_pressure_hook t.alloc ~tid (fun () -> Reclaimer.pressure rc);
  { t; tid; alloc_counter = 0; rc }

let alloc h payload =
  (* Fig. 2 ties epoch advancement to retirement; we tie it to
     allocation as §3 does for all schemes (one convention across the
     board makes the robustness bound uniform). *)
  h.alloc_counter <- h.alloc_counter + 1;
  if h.t.cfg.epoch_freq > 0 && h.alloc_counter mod h.t.cfg.epoch_freq = 0
  then Epoch.advance h.t.epoch;
  let b = Alloc.alloc h.t.alloc ~tid:h.tid payload in
  Block.set_birth_epoch b (Epoch.peek h.t.epoch);
  b

let dealloc h b = Alloc.free_unpublished h.t.alloc ~tid:h.tid b

let retire h b =
  Block.transition_retire b;
  Block.set_retire_epoch b (Epoch.read h.t.epoch);
  Reclaimer.add h.rc b

let start_op h =
  let e = Epoch.read h.t.epoch in
  Prim.write h.t.reservations.(h.tid) e;
  Ibr_obs.Probe.reserve ~slot:0

let end_op h =
  Prim.write h.t.reservations.(h.tid) max_int;
  Ibr_obs.Probe.unreserve ~slot:0

let make_ptr _ ?tag target = Plain_ptr.make ?tag target
let read _ ~slot:_ p = Plain_ptr.read p
let read_root h p = read h ~slot:0 p
let write _ p ?tag target = Plain_ptr.write p ?tag target
let cas _ p ~expected ?tag target = Plain_ptr.cas p ~expected ?tag target
let unreserve _ ~slot:_ = ()
let reassign _ ~src:_ ~dst:_ = ()

let retired_count h = Reclaimer.count h.rc
let force_empty h = Reclaimer.force h.rc
let allocator t = t.alloc
let epoch_value t = Epoch.peek t.epoch

(* Neutralize a dead thread: clearing its epoch reservation unpins
   everything it held. *)
let eject t ~tid = Prim.write t.reservations.(tid) max_int
