(* Epoch-based reclamation (paper §2.2, Fig. 2).

   One epoch reservation per thread, posted at [start_op], cleared
   (to MAX) at [end_op].  A retired block is reclaimable once its
   retire epoch precedes every posted reservation.  Fast — no per-read
   instrumentation at all — but not robust: one stalled thread pins
   every block retired after its start epoch. *)

let name = "EBR"

let props = {
  Tracker_intf.robust = false;
  needs_unreserve = false;
  mutable_pointers = true;
  bounded_slots = false;
  pointer_tag_words = 0;
  fence_per_read = false;
  summary =
    "start epoch reserves everything not retired before it; \
     unbounded reservation for a stalled thread";
}

type 'a t = {
  epoch : Epoch.t;
  reservations : int Atomic.t array;
  alloc : 'a Alloc.t;
  cfg : Tracker_intf.config;
}

type 'a handle = {
  t : 'a t;
  tid : int;
  mutable alloc_counter : int;
  mutable retire_counter : int;
  retired : 'a Tracker_common.Retired.t;
}

type 'a ptr = 'a Plain_ptr.t

let create ~threads (cfg : Tracker_intf.config) = {
  epoch = Epoch.create ();
  reservations = Array.init threads (fun _ -> Atomic.make max_int);
  alloc = Alloc.create ~reuse:cfg.reuse ~threads ();
  cfg;
}

let register t ~tid =
  { t; tid; alloc_counter = 0; retire_counter = 0;
    retired = Tracker_common.Retired.create () }

let alloc h payload =
  (* Fig. 2 ties epoch advancement to retirement; we tie it to
     allocation as §3 does for all schemes (one convention across the
     board makes the robustness bound uniform). *)
  h.alloc_counter <- h.alloc_counter + 1;
  if h.t.cfg.epoch_freq > 0 && h.alloc_counter mod h.t.cfg.epoch_freq = 0
  then Epoch.advance h.t.epoch;
  let b = Alloc.alloc h.t.alloc ~tid:h.tid payload in
  Block.set_birth_epoch b (Epoch.peek h.t.epoch);
  b

let dealloc h b = Alloc.free_unpublished h.t.alloc ~tid:h.tid b

(* Reclaim every block retired before the oldest reservation: a
   single-threshold conflict, already O(1) per block. *)
let empty h =
  let reservations = Tracker_common.snapshot_reservations h.t.reservations in
  let max_safe = Array.fold_left min max_int reservations in
  Tracker_common.Retired.sweep h.retired
    ~conflict:(Tracker_common.Conflict.pred
                 (Tracker_common.Conflict.Threshold max_safe))
    ~free:(fun b -> Alloc.free h.t.alloc ~tid:h.tid b)

let retire h b =
  Block.transition_retire b;
  Block.set_retire_epoch b (Epoch.read h.t.epoch);
  Tracker_common.Retired.add h.retired b;
  h.retire_counter <- h.retire_counter + 1;
  if h.t.cfg.empty_freq > 0 && h.retire_counter mod h.t.cfg.empty_freq = 0
  then empty h

let start_op h =
  let e = Epoch.read h.t.epoch in
  Prim.write h.t.reservations.(h.tid) e

let end_op h = Prim.write h.t.reservations.(h.tid) max_int

let make_ptr _ ?tag target = Plain_ptr.make ?tag target
let read _ ~slot:_ p = Plain_ptr.read p
let read_root h p = read h ~slot:0 p
let write _ p ?tag target = Plain_ptr.write p ?tag target
let cas _ p ~expected ?tag target = Plain_ptr.cas p ~expected ?tag target
let unreserve _ ~slot:_ = ()
let reassign _ ~src:_ ~dst:_ = ()

let retired_count h = Tracker_common.Retired.count h.retired
let force_empty h = empty h
let allocator t = t.alloc
let epoch_value t = Epoch.peek t.epoch
