(* Hazard eras (Ramalhete & Correia [25]; paper §2.3).

   HP's slot discipline with epochs as the reservation currency: a
   slot holds the era in which a pointer was read, and a block is
   reclaimable only when no reserved era falls within its
   [birth, retire] lifetime.  The protect loop publishes the current
   era and fences only when the era has changed since the slot's last
   publication — eras change rarely, so the amortized per-read cost is
   far below HP's. *)

let name = "HE"

let props = {
  Tracker_intf.robust = true;
  needs_unreserve = true;
  mutable_pointers = true;
  bounded_slots = true;
  pointer_tag_words = 0;
  fence_per_read = false;
  summary =
    "era per active pointer; less precise than HP, far fewer fences";
}

(* Era 0 = empty slot (global era starts at 1). *)
let no_era = 0

type 'a t = {
  epoch : Epoch.t;
  eras : int Atomic.t array array;   (* eras.(tid).(slot) *)
  alloc : 'a Alloc.t;
  cfg : Tracker_intf.config;
  census : 'a Handoff.path Tracker_common.Census.t;
  mutable handoff : 'a Handoff.t option;
}

type 'a handle = {
  t : 'a t;
  tid : int;
  alloc_counter : int ref;
  mutable hwm : int;
  path : 'a Handoff.path;
}

type 'a ptr = 'a Plain_ptr.t

(* A block survives if any reserved era intersects its lifetime.  The
   era table is read once into a flat array, then digested into a
   sorted snapshot so each block's test is a binary search rather than
   a walk of every reserved era. *)
let scan_eras t =
  let threads = Array.length t.eras in
  let slots = t.cfg.Tracker_intf.slots in
  let eras = Array.make (threads * slots) no_era in
  Array.iteri (fun i row ->
    Array.iteri (fun j slot ->
      Prim.charge_scan ();
      eras.((i * slots) + j) <- Atomic.get slot)
      row)
    t.eras;
  Tracker_common.Sweep_stats.note_snapshot ~entries:(threads * slots)
    ~cycles:
      (threads * slots * !Prim.costs.Ibr_runtime.Cost.scan_reservation);
  eras

let source_of_eras eras =
  if !Tracker_common.legacy_sweep then begin
    (* Oracle path: linear scan of the reserved eras per block. *)
    let reserved =
      Array.to_list eras |> List.filter (fun e -> e <> no_era) in
    Reclaimer.Predicate
      (fun b ->
         List.exists
           (fun e -> Block.birth_epoch b <= e && e <= Block.retire_epoch b)
           reserved)
  end else
    Reclaimer.Shape
      (Tracker_common.Conflict.Intervals
         (Tracker_common.Sweep_snapshot.of_points ~none:no_era eras))

let make_reclaimer t ~tid =
  Reclaimer.create ~backend:t.cfg.Tracker_intf.retire_backend
    ~empty_freq:t.cfg.Tracker_intf.empty_freq
    ~current_epoch:(fun () -> Epoch.peek t.epoch)
    ~source:(fun () -> source_of_eras (scan_eras t))
    ~free:(fun b -> Alloc.free t.alloc ~tid b)
    ()

let create ~threads (cfg : Tracker_intf.config) =
  Tracker_intf.validate ~threads cfg;
  let t = {
    epoch = Epoch.create ();
    eras =
      Array.init threads (fun _ ->
        Array.init cfg.slots (fun _ -> Atomic.make no_era));
    alloc =
      Alloc.create ~reuse:cfg.reuse ~magazine_size:cfg.magazine_size
        ~threads:(threads + if cfg.background_reclaim then 1 else 0) ();
    cfg;
    census = Tracker_common.Census.create threads;
    handoff = None;
  } in
  if cfg.background_reclaim then
    t.handoff <-
      Some
        (Handoff.create ~producers:threads ~batch:cfg.handoff_batch
           (make_reclaimer t ~tid:threads));
  t

let register t ~tid =
  let path =
    match t.handoff with
    | Some h -> Handoff.Queued h
    | None -> Handoff.Direct (make_reclaimer t ~tid)
  in
  Alloc.set_pressure_hook t.alloc ~tid (fun () -> Handoff.path_pressure path);
  { t; tid; alloc_counter = ref 0; hwm = -1; path }

(* Dynamic registration.  A released era row was cleared to [no_era]
   by the leaver's detach — a fresh row's state. *)
let attach t =
  match
    Tracker_common.Census.try_attach t.census ~make:(fun tid ->
      match t.handoff with
      | Some h -> Handoff.Queued h
      | None -> Handoff.Direct (make_reclaimer t ~tid))
  with
  | None -> None
  | Some (tid, path) ->
    Alloc.set_pressure_hook t.alloc ~tid (fun () ->
      Handoff.path_pressure path);
    Some { t; tid; alloc_counter = ref 0; hwm = -1; path }

let handle_tid h = h.tid

let alloc h payload =
  Epoch.tick h.t.epoch ~counter:h.alloc_counter ~freq:h.t.cfg.epoch_freq;
  let b = Alloc.alloc h.t.alloc ~tid:h.tid payload in
  Block.set_birth_epoch b (Epoch.read h.t.epoch);
  b

let dealloc h b = Alloc.free_unpublished h.t.alloc ~tid:h.tid b

let retire h b =
  Block.transition_retire b;
  Block.set_retire_epoch b (Epoch.read h.t.epoch);
  Handoff.path_add h.path ~tid:h.tid b

let start_op h = h.hwm <- -1

let end_op h =
  let row = h.t.eras.(h.tid) in
  for i = 0 to h.hwm do
    if Prim.read row.(i) <> no_era then begin
      Prim.write row.(i) no_era;
      Ibr_obs.Probe.unreserve ~slot:i
    end
  done;
  h.hwm <- -1

let make_ptr _ ?tag target = Plain_ptr.make ?tag target

(* get_protected: return a pointer only if it was read while the
   current era was already published in [slot]; otherwise publish the
   new era, fence, and re-read. *)
let read h ~slot p =
  if h.hwm < slot then h.hwm <- slot;
  let cell = h.t.eras.(h.tid).(slot) in
  let rec loop prev_era =
    let v = Plain_ptr.read p in
    let era = Epoch.read h.t.epoch in
    if era = prev_era then v
    else begin
      Prim.write cell era;
      Ibr_obs.Probe.reserve ~slot;
      Prim.fence ();
      loop era
    end
  in
  loop (Prim.read cell)

let read_root h p = read h ~slot:0 p
let write _ p ?tag target = Plain_ptr.write p ?tag target
let cas _ p ~expected ?tag target = Plain_ptr.cas p ~expected ?tag target

let unreserve h ~slot =
  Prim.write h.t.eras.(h.tid).(slot) no_era;
  Ibr_obs.Probe.unreserve ~slot

let reassign h ~src ~dst =
  if h.hwm < dst then h.hwm <- dst;
  let row = h.t.eras.(h.tid) in
  Prim.local 1;
  Prim.write row.(dst) (Prim.read row.(src));
  Ibr_obs.Probe.reserve ~slot:dst

let retired_count h = Handoff.path_count h.path

let force_empty h =
  Handoff.path_drain h.path ~tid:h.tid;
  Reclaimer.force (Handoff.path_reclaimer h.path)

let allocator t = t.alloc
let epoch_value t = Epoch.peek t.epoch
let reclaim_service t = Option.map Handoff.service t.handoff

(* Neutralize a dead thread: clear every era slot in its row.  The
   scratch flush unstrands batched handoff retires. *)
let eject t ~tid =
  (match t.handoff with Some h -> Handoff.flush_own h ~tid | None -> ());
  Array.iter (fun slot -> Prim.write slot no_era) t.eras.(tid)

(* Neutralization recovery: era slots are per-read; drop the row and
   re-protect as a fresh [start_op]. *)
let recover h =
  eject h.t ~tid:h.tid;
  start_op h

(* Dynamic deregistration: final sweep, clear the era row, flush the
   magazines, release the slot. *)
let detach h =
  force_empty h;
  eject h.t ~tid:h.tid;
  Alloc.flush_magazines h.t.alloc ~tid:h.tid;
  Tracker_common.Census.detach h.t.census ~tid:h.tid
