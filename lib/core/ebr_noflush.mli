(** Intentionally unsound EBR variant whose [detach] frees its pending
    retirements without the final guarded sweep — the detach-without-
    flush lifecycle bug the [thread_churn] scenario exists to catch.
    Demonstration oracle only; not in {!Registry.all}.

    Sealed to the common memory-manager signature of Fig. 1; see
    {!Tracker_intf.TRACKER} for the operations. *)

include Tracker_intf.TRACKER
