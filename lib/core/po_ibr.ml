(* Persistent-object IBR (paper §3.1, Fig. 4).

   For data structures where every pointer except the root is
   immutable.  A single reserved epoch per thread, posted with the
   snapshot idiom when the root is read: because the root is the
   newest block and all interior pointers are immutable, an epoch that
   intersects the root's lifetime intersects the lifetime of
   everything reachable from it.  Interior reads are completely
   uninstrumented — cheaper even than EBR's reads. *)

let name = "POIBR"

let props = {
  Tracker_intf.robust = true;
  needs_unreserve = false;
  mutable_pointers = false;
  bounded_slots = false;
  pointer_tag_words = 0;
  fence_per_read = false;
  summary =
    "start epoch covers everything reachable from the root at start \
     time; all pointers but the root must be immutable";
}

type 'a t = {
  epoch : Epoch.t;
  reservations : int Atomic.t array;
  alloc : 'a Alloc.t;
  cfg : Tracker_intf.config;
  census : 'a Handoff.path Tracker_common.Census.t;
  mutable handoff : 'a Handoff.t option;
}

type 'a handle = {
  t : 'a t;
  tid : int;
  alloc_counter : int ref;
  path : 'a Handoff.path;
}

type 'a ptr = 'a Plain_ptr.t

(* Fig. 4 lines 1–8: a block is protected iff some reserved epoch lies
   within its lifetime.  The snapshot is sorted once so each block's
   test is a binary search, not a scan of every thread's slot. *)
let source t =
  let reservations = Tracker_common.snapshot_reservations t.reservations in
  if !Tracker_common.legacy_sweep then
    Reclaimer.Predicate
      (fun b ->
         let birth = Block.birth_epoch b and retire = Block.retire_epoch b in
         Array.exists (fun res -> birth <= res && res <= retire) reservations)
  else
    Reclaimer.Shape
      (Tracker_common.Conflict.Intervals
         (Tracker_common.Sweep_snapshot.of_points ~none:max_int
            reservations))

let make_reclaimer t ~tid =
  Reclaimer.create ~backend:t.cfg.Tracker_intf.retire_backend
    ~empty_freq:t.cfg.Tracker_intf.empty_freq
    ~current_epoch:(fun () -> Epoch.peek t.epoch)
    ~source:(fun () -> source t)
    ~free:(fun b -> Alloc.free t.alloc ~tid b)
    ()

let create ~threads (cfg : Tracker_intf.config) =
  Tracker_intf.validate ~threads cfg;
  let t = {
    epoch = Epoch.create ();
    reservations = Array.init threads (fun _ -> Atomic.make max_int);
    alloc =
      Alloc.create ~reuse:cfg.reuse ~magazine_size:cfg.magazine_size
        ~threads:(threads + if cfg.background_reclaim then 1 else 0) ();
    cfg;
    census = Tracker_common.Census.create threads;
    handoff = None;
  } in
  if cfg.background_reclaim then
    t.handoff <-
      Some
        (Handoff.create ~producers:threads ~batch:cfg.handoff_batch
           (make_reclaimer t ~tid:threads));
  t

let register t ~tid =
  let path =
    match t.handoff with
    | Some h -> Handoff.Queued h
    | None -> Handoff.Direct (make_reclaimer t ~tid)
  in
  Alloc.set_pressure_hook t.alloc ~tid (fun () -> Handoff.path_pressure path);
  { t; tid; alloc_counter = ref 0; path }

(* Dynamic registration.  A released slot reads [max_int]
   (unreserved), which is a joiner's correct state until its first
   guarded root read. *)
let attach t =
  match
    Tracker_common.Census.try_attach t.census ~make:(fun tid ->
      match t.handoff with
      | Some h -> Handoff.Queued h
      | None -> Handoff.Direct (make_reclaimer t ~tid))
  with
  | None -> None
  | Some (tid, path) ->
    Alloc.set_pressure_hook t.alloc ~tid (fun () ->
      Handoff.path_pressure path);
    Some { t; tid; alloc_counter = ref 0; path }

let handle_tid h = h.tid

(* Fig. 4 lines 9–15: epoch tick on allocation, tag the birth epoch. *)
let alloc h payload =
  Epoch.tick h.t.epoch ~counter:h.alloc_counter ~freq:h.t.cfg.epoch_freq;
  let b = Alloc.alloc h.t.alloc ~tid:h.tid payload in
  Block.set_birth_epoch b (Epoch.read h.t.epoch);
  b

let dealloc h b = Alloc.free_unpublished h.t.alloc ~tid:h.tid b

let retire h b =
  Block.transition_retire b;
  Block.set_retire_epoch b (Epoch.read h.t.epoch);
  Handoff.path_add h.path ~tid:h.tid b

let start_op h =
  let e = Epoch.read h.t.epoch in
  Prim.write h.t.reservations.(h.tid) e;
  Ibr_obs.Probe.reserve ~slot:0

let end_op h =
  Prim.write h.t.reservations.(h.tid) max_int;
  Ibr_obs.Probe.unreserve ~slot:0

let make_ptr _ ?tag target = Plain_ptr.make ?tag target

(* Interior pointers are immutable, so a plain read is already safe:
   the root reservation covers the whole reachable set. *)
let read _ ~slot:_ p = Plain_ptr.read p

(* Fig. 4 lines 25–30: reserve the epoch, fence, read the root, and
   verify the epoch is unchanged — the "snapshot" idiom that pins the
   root's contents inside the reserved epoch. *)
let read_root h p =
  let cell = h.t.reservations.(h.tid) in
  let rec loop () =
    let e = Epoch.read h.t.epoch in
    Prim.write cell e;
    Prim.fence ();
    let v = Plain_ptr.read p in
    let e' = Epoch.read h.t.epoch in
    if e = e' then v else loop ()
  in
  loop ()

let write _ p ?tag target = Plain_ptr.write p ?tag target
let cas _ p ~expected ?tag target = Plain_ptr.cas p ~expected ?tag target
let unreserve _ ~slot:_ = ()
let reassign _ ~src:_ ~dst:_ = ()

let retired_count h = Handoff.path_count h.path

let force_empty h =
  Handoff.path_drain h.path ~tid:h.tid;
  Reclaimer.force (Handoff.path_reclaimer h.path)

let allocator t = t.alloc
let epoch_value t = Epoch.peek t.epoch
let reclaim_service t = Option.map Handoff.service t.handoff

(* Neutralize a dead thread: clearing its epoch reservation unpins
   everything reachable from the root it had snapshotted.  The scratch
   flush unstrands batched handoff retires (see [Tracker_intf]). *)
let eject t ~tid =
  (match t.handoff with Some h -> Handoff.flush_own h ~tid | None -> ());
  Prim.write t.reservations.(tid) max_int

(* Neutralization recovery: self-expire, then re-protect as a fresh
   [start_op]; the retried traversal re-guards from the root. *)
let recover h =
  eject h.t ~tid:h.tid;
  start_op h

(* Dynamic deregistration: final sweep, clear the reservation, flush
   the magazines, release the slot. *)
let detach h =
  force_empty h;
  eject h.t ~tid:h.tid;
  Alloc.flush_magazines h.t.alloc ~tid:h.tid;
  Tracker_common.Census.detach h.t.census ~tid:h.tid
