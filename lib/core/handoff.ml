(* Off-critical-path reclamation: per-thread handoff queues in front
   of one service-owned [Reclaimer] (DEBRA's decoupling of retirement
   from reclamation; see DESIGN.md §9).

   Mutator [retire] becomes a single CAS append onto the caller's own
   queue segment; a dedicated reclaimer thread (a fiber under the
   simulator, a domain on the real backend) drains all segments with
   take-all exchanges and runs the sweep cadence on its own budget, so
   the O(retired) sweep cost leaves the mutators' critical path.

   Each segment is single-producer: only thread [tid] pushes to
   [queues.(tid)], so a producer's CAS can fail only against the
   consumer's exchange and retries at most once per drain.  Drains are
   serialised by a spin lock because two paths reach them — the
   service loop, and the synchronous fallback a mutator takes under
   allocator backpressure (the robustness bounds of DESIGN.md §7 must
   not depend on the service thread being scheduled).  The fallback
   uses [try_lock]: if the service is already mid-drain, the mutator's
   backoff ladder simply yields to it.

   A producer can additionally batch: with [batch = k > 1], retires
   accumulate in a plain thread-local buffer and are appended as one
   CAS every k retirements, amortizing the queue traffic.  The buffer
   is only ever touched by its owner (and by the quiesced shutdown
   flush), so it needs no synchronization; [path_drain] — the hook a
   detaching or force-sweeping caller already goes through — flushes
   the caller's own buffer first, so no block can be stranded behind a
   departed thread.  [batch = 1] (the default) takes the original
   push path bit-for-bit. *)

type 'a t = {
  queues : 'a Block.t list Atomic.t array;
  rc : 'a Reclaimer.t;       (* service-owned; sweeps run here *)
  lock : bool Atomic.t;      (* serialises drain vs. sync fallback *)
  batch : int;               (* producer-side buffer size; 1 = none *)
  bufs : 'a Block.t list array;   (* per-producer, owner-only *)
  buf_n : int array;
}

(* Global handoff telemetry (atomics: the domains backend pushes and
   drains in parallel), surfaced as read-backed registry counters like
   [Tracker_common.Sweep_stats].  The quiescence test leans on
   pushed = drained after a shutdown flush. *)
module Stats = struct
  let pushed = Atomic.make 0      (* blocks appended to a queue *)
  let drained = Atomic.make 0     (* blocks moved into the reclaimer *)
  let batches = Atomic.make 0     (* non-empty drain batches *)
  let syncs = Atomic.make 0       (* synchronous fallback drains *)

  let reset () =
    Atomic.set pushed 0;
    Atomic.set drained 0;
    Atomic.set batches 0;
    Atomic.set syncs 0

  let () =
    let reg name order a =
      Ibr_obs.Metrics.register_counter ~name ~order (fun () -> Atomic.get a)
    in
    reg "handoff_pushed" 470 pushed;
    reg "handoff_drained" 475 drained;
    reg "handoff_batches" 480 batches;
    reg "handoff_syncs" 485 syncs
end

let create ~producers ?(batch = 1) rc =
  if batch < 1 then invalid_arg "Handoff.create: batch < 1";
  {
    queues = Array.init producers (fun _ -> Atomic.make []);
    rc;
    lock = Atomic.make false;
    batch;
    bufs = Array.make producers [];
    buf_n = Array.make producers 0;
  }

let reclaimer t = t.rc

(* Blocks queued but not yet handed to the reclaimer.  Each segment is
   read with one atomic load (the list itself is immutable), so this
   is safe from any thread, though the total is only exact once
   producers have quiesced. *)
let queued t =
  Array.fold_left (fun n q -> n + List.length (Atomic.get q)) 0 t.queues
  + Array.fold_left ( + ) 0 t.buf_n

(* Append the caller's whole buffer as one CAS.  Caller is the buffer
   owner (or the quiesced shutdown flush), so taking the buffer with
   plain reads/writes is race-free; the CAS races only the consumer's
   exchange.  Buffer and queue are both newest-first, so the
   concatenation preserves retirement order end to end. *)
let flush_own t ~tid =
  match t.bufs.(tid) with
  | [] -> ()
  | chunk ->
    t.bufs.(tid) <- [];
    t.buf_n.(tid) <- 0;
    let q = t.queues.(tid) in
    let k = List.length chunk in
    let rec loop () =
      let cur = Atomic.get q in
      let ok = Atomic.compare_and_set q cur (chunk @ cur) in
      (* Count before the cost charge, as in [push]. *)
      if ok then begin
        ignore (Atomic.fetch_and_add Stats.pushed k);
        List.iter (fun b -> Ibr_obs.Probe.handoff ~block:(Block.id b)) chunk
      end;
      Prim.charge_cas ~ok;
      if not ok then loop ()
    in
    loop ()

let push t ~tid b =
  if t.batch > 1 then begin
    (* Buffer first, then charge: if the charge unwinds the fiber at
       the horizon the block is already buffered, and the shutdown
       flush collects buffers, so nothing is lost or double-counted. *)
    t.bufs.(tid) <- b :: t.bufs.(tid);
    t.buf_n.(tid) <- t.buf_n.(tid) + 1;
    Prim.local 1;
    if t.buf_n.(tid) >= t.batch then flush_own t ~tid
  end
  else
    let q = t.queues.(tid) in
    let rec loop () =
      let cur = Atomic.get q in
      let ok = Atomic.compare_and_set q cur (b :: cur) in
      (* Count before the cost charge: the charge's step can unwind the
         fiber at the horizon, and a queued-but-uncounted block would
         break the shutdown invariant (drained = pushed). *)
      if ok then begin
        Atomic.incr Stats.pushed;
        Ibr_obs.Probe.handoff ~block:(Block.id b)
      end;
      Prim.charge_cas ~ok;
      if not ok then loop ()
    in
    loop ()

(* -- drains (caller must hold [lock]) -- *)

let drain_locked t =
  let n = ref 0 in
  Array.iter
    (fun q ->
       match Atomic.exchange q [] with
       | [] -> ()
       | batch ->
         (* Count at the exchange, before any cost charge: a drain
            "removes from the queues", and the reclaimer adds below
            step — at the horizon one could unwind the fiber with the
            batch already taken, which must not leave the counters
            claiming the blocks are still queued. *)
         let k = List.length batch in
         n := !n + k;
         ignore (Atomic.fetch_and_add Stats.drained k);
         Ibr_obs.Probe.drain ~drained:k;
         Prim.local 1;
         (* Reverse to retirement order so the reclaimer's epoch
            buckets see monotone retire epochs (O(1) head inserts). *)
         List.iter (fun b -> Reclaimer.add t.rc b) (List.rev batch))
    t.queues;
  if !n > 0 then Atomic.incr Stats.batches;
  !n

let unlock t = Atomic.set t.lock false

let with_lock t f =
  (* Spin with a stepped backoff: under the simulator the step is the
     preemption point that lets the lock holder run. *)
  while not (Prim.cas t.lock false true) do
    Ibr_runtime.Hooks.step 8
  done;
  Fun.protect ~finally:(fun () -> unlock t) f

let drain t = with_lock t (fun () -> drain_locked t)

(* Synchronous fallback under allocator backpressure: drain whatever
   is queued and run a pressure sweep on the spot, unless the service
   is already mid-drain (then its sweep is the rescue and the caller's
   backoff ladder yields to it). *)
let pressure t =
  Atomic.incr Stats.syncs;
  if Prim.cas t.lock false true then
    Fun.protect ~finally:(fun () -> unlock t)
      (fun () ->
         ignore (drain_locked t);
         Reclaimer.pressure t.rc)

(* Shutdown: move everything queued into the reclaimer and sweep.
   Producers must have quiesced (joined domains / unwound fibers), so
   collecting their batch buffers with plain reads is sound — a crash
   or horizon unwind mid-batch leaves its buffer here, not leaked.
   The drain loop still tolerates a straggling exchange race. *)
let flush t =
  with_lock t (fun () ->
    Array.iteri (fun tid _ -> flush_own t ~tid) t.queues;
    while drain_locked t > 0 do () done;
    Reclaimer.pressure t.rc)

(* Post-run flush: the machine is single-threaded again (every fiber
   unwound or crashed), so a lock abandoned by a crash mid-drain can
   be seized rather than spun on — spinning would hang, since no other
   thread exists to release it. *)
let shutdown_flush t =
  Atomic.set t.lock false;
  flush t

(* Monomorphic closure record so runners and data structures can hold
   the service without a type parameter. *)
type service = {
  drain : unit -> int;
  flush : unit -> unit;
  shutdown_flush : unit -> unit;
  pending : unit -> int;
}

let service t = {
  drain = (fun () -> drain t);
  flush = (fun () -> flush t);
  shutdown_flush = (fun () -> shutdown_flush t);
  pending = (fun () -> queued t + Reclaimer.count t.rc);
}

(* -- retirement path: what a tracker handle retires into -- *)

type 'a path =
  | Direct of 'a Reclaimer.t   (* inline: per-handle reclaimer *)
  | Queued of 'a t             (* handoff to the service reclaimer *)

let path_reclaimer = function Direct rc -> rc | Queued h -> h.rc

let path_add p ~tid b =
  if Ibr_obs.Probe.hist_enabled () then begin
    let t0 = Ibr_runtime.Hooks.now () in
    (match p with
     | Direct rc -> Reclaimer.add rc b
     | Queued h -> push h ~tid b);
    Ibr_obs.Probe.note_retire_cost (Ibr_runtime.Hooks.now () - t0)
  end
  else
    match p with
    | Direct rc -> Reclaimer.add rc b
    | Queued h -> push h ~tid b

let path_count = function
  | Direct rc -> Reclaimer.count rc
  | Queued h -> queued h + Reclaimer.count h.rc

(* Before a caller's own prepare + force: flush the caller's batch
   buffer and make sure queued blocks are in the store so the forced
   sweep can see them.  Detach runs through here, so a departing
   thread can never strand buffered retirements behind its slot. *)
let path_drain p ~tid =
  match p with
  | Direct _ -> ()
  | Queued h ->
    flush_own h ~tid;
    ignore (drain h)

let path_pressure = function
  | Direct rc -> Reclaimer.pressure rc
  | Queued h -> pressure h
