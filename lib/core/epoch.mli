(** The global epoch counter (paper §2.2, §3).

    All epoch-based schemes advance it from [alloc] every
    [epoch_freq] allocations per thread, which bounds the number of
    blocks born in any one epoch — the key ingredient of the
    robustness theorem (Thm. 2). *)

type t

val create : unit -> t
(** Starts at 1 (0 means "before any epoch" in tests). *)

val read : t -> int
(** Cost-charged read (hot-read class). *)

val peek : t -> int
(** Uncharged read for assertions and metrics. *)

val advance : t -> unit
(** Atomic increment (fetch-and-add). *)

val advance_cas : t -> expected:int -> bool
(** Advance exactly [expected] to [expected + 1]; fails if the epoch
    moved.  (QSBR's grace periods need the conditional form: racing
    unconditional increments would skip one.) *)

val tick : t -> counter:int ref -> freq:int -> unit
(** Allocation-driven advance: bump [counter]; advance the epoch and
    reset the counter every [freq] calls.  Raises [Invalid_argument]
    if [freq <= 0] — a never-advancing epoch is a config error, not a
    mode. *)

val publish : int -> unit
(** Publish a run's final epoch value to the ["epoch"] metric gauge. *)
