(* Name-indexed registry of every reclamation scheme, mirroring the
   artifact's tracker menu.  Experiments and the CLI select schemes by
   these names; [paper_set] is the lineup of §5's figures. *)

type entry = {
  name : string;
  tracker : Tracker_intf.packed;
}

let pack (module T : Tracker_intf.TRACKER) = { name = T.name; tracker = (module T) }

let no_mm = pack (module No_mm)
let ebr = pack (module Ebr)
let hp = pack (module Hp)
let he = pack (module He)
let po_ibr = pack (module Po_ibr)
let tag_ibr = pack (module Tag_ibr.Cas)
let tag_ibr_faa = pack (module Tag_ibr.Faa)
let tag_ibr_wcas = pack (module Tag_ibr_wcas)
let tag_ibr_tpa = pack (module Tag_ibr_tpa)
let two_ge_ibr = pack (module Two_ge_ibr)
let qsbr = pack (module Qsbr)
let fraser_ebr = pack (module Fraser_ebr)
let debra = pack (module Debra)
let debra_plus = pack (module Debra_plus)
let unsafe_free = pack (module Unsafe_free)
let two_ge_unfenced = pack (module Two_ge_unfenced)
let qsbr_noncas = pack (module Qsbr.Noncas)
let ebr_noflush = pack (module Ebr_noflush)
let debra_norestart = pack (module Debra_plus.Norestart)

(* The census slot manager behind every tracker's attach/detach,
   re-exported so harness and test code can model it without
   depending on tracker internals. *)
module Census = Tracker_common.Census

(* Every correct scheme. *)
let all = [
  no_mm; ebr; fraser_ebr; qsbr; debra; debra_plus; hp; he; po_ibr;
  tag_ibr; tag_ibr_faa; tag_ibr_wcas; tag_ibr_tpa; two_ge_ibr;
]

(* Demonstration oracles: deliberately broken schemes used to prove
   the fault checker works.  Not in [all]. *)
let oracles =
  [ unsafe_free; two_ge_unfenced; qsbr_noncas; ebr_noflush;
    debra_norestart ]

(* The lineup measured in Fig. 8–10 (TagIBR-TPA is described but not
   plotted in the paper; we include it in our extended runs). *)
let paper_set = [
  no_mm; ebr; hp; he; po_ibr;
  tag_ibr; tag_ibr_faa; tag_ibr_wcas; two_ge_ibr;
]

(* The robust interval-based family introduced by the paper. *)
let ibr_family = [
  po_ibr; tag_ibr; tag_ibr_faa; tag_ibr_wcas; tag_ibr_tpa; two_ge_ibr;
]

let find name =
  let target = String.lowercase_ascii name in
  List.find_opt
    (fun e -> String.lowercase_ascii e.name = target)
    (all @ oracles)

let find_exn name =
  match find name with
  | Some e -> e
  | None ->
    (* [find] matches oracles too, so the error must list them. *)
    invalid_arg
      (Printf.sprintf "Registry.find_exn: unknown tracker %S (known: %s)"
         name
         (String.concat ", " (List.map (fun e -> e.name) (all @ oracles))))

let props { tracker = (module T : Tracker_intf.TRACKER); _ } = T.props

(* The Fig. 7 tradeoff table, one row per scheme. *)
let fig7_rows () =
  List.map (fun e ->
    let p = props e in
    (e.name, p))
    (List.filter (fun e -> e.name <> "NoMM") all)
