(** DEBRA+ (Brown, PODC 2015): {!Debra} whose recovery posts a fresh
    epoch announcement after a neutralization signal — the healing
    counterpart of the watchdog's permanent ejection.  See
    [Ds_common.with_op] for the restart checkpoint and
    [Watchdog] for the signal source.

    Sealed to the common memory-manager signature of Fig. 1. *)

include Tracker_intf.TRACKER

module Norestart : Tracker_intf.TRACKER
(** The unsound neutralization oracle (DESIGN.md §12): recovery drops
    the victim's reservations but resumes {e without} re-protecting,
    so the retried operation dereferences shared blocks while its
    announcement reads quiescent.  Demonstration only — the bounded
    model checker pins its use-after-free as a replayable minimal
    witness. *)
