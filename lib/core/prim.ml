(* Cost-charged shared-memory primitives.

   All tracker and data-structure code performs its shared accesses
   through these wrappers so that (a) the simulator charges each
   primitive its modelled latency and gets a preemption point, and
   (b) the per-scheme instruction mix — the thing the paper's
   throughput differences come from — is faithfully accounted: an HP
   read pays a fence, a TagIBR write pays an extra CAS, an EBR read
   pays nothing extra.

   Each wrapper also attributes its charge to the matching
   [Ibr_obs.Probe] cost bucket; when probes are disabled the
   attribution call is one branch.

   The active cost model is a global; experiments set it once before a
   run (the simulator is single-domain, and the real-domains backend
   ignores costs). *)

open Ibr_runtime

let costs = ref Cost.default

let set_costs c = costs := c

let read a =
  (* Guard-path neutralization poll (domains backend; no-op on the
     sim, which delivers at scheduling points): a pending restart
     signal must land before the value read here can be trusted for a
     dereference. *)
  Hooks.poll_neutralize ();
  let c = !costs.Cost.read in
  Ibr_obs.Probe.charge Ibr_obs.Probe.K_read c;
  Hooks.step c;
  Atomic.get a

(* Read of a read-mostly global (epoch counter, born_before tag):
   cheaper than a general shared load — see Cost.hot_read. *)
let hot_read a =
  let c = !costs.Cost.hot_read in
  Ibr_obs.Probe.charge Ibr_obs.Probe.K_hot_read c;
  Hooks.step c;
  Atomic.get a

let write a v =
  let c = !costs.Cost.write in
  Ibr_obs.Probe.charge Ibr_obs.Probe.K_write c;
  Hooks.step c;
  Atomic.set a v

(* Charge for a CAS the caller already performed raw.  For callers
   that must do bookkeeping between the CAS landing and the preemption
   point: the step below can unwind the fiber at the horizon, and
   [cas] steps after its atomic op, so state that must stay atomic
   with the CAS has to be written before this charge. *)
let charge_cas ~ok =
  let c = if ok then !costs.Cost.cas else !costs.Cost.cas_fail in
  Ibr_obs.Probe.charge
    (if ok then Ibr_obs.Probe.K_cas else Ibr_obs.Probe.K_cas_fail) c;
  Hooks.step c

let cas a expected desired =
  let ok = Atomic.compare_and_set a expected desired in
  charge_cas ~ok;
  ok

let faa a n =
  let c = !costs.Cost.faa in
  Ibr_obs.Probe.charge Ibr_obs.Probe.K_faa c;
  Hooks.step c;
  Atomic.fetch_and_add a n

(* Write-read (store-load) fence.  On the real-domains backend OCaml's
   seq-cst atomics already order everything, so only the cost matters. *)
let fence () =
  let c = !costs.Cost.fence in
  Ibr_obs.Probe.charge Ibr_obs.Probe.K_fence c;
  Hooks.step c

(* Thread-local bookkeeping of [n] conceptual steps. *)
let local n =
  let c = n * !costs.Cost.local in
  Ibr_obs.Probe.charge Ibr_obs.Probe.K_local c;
  Hooks.step c

(* Payload dereference: same latency class as a read, and — crucially
   for fault detection — a preemption point between reading a pointer
   and touching what it points to. *)
let charge_deref () =
  Hooks.poll_neutralize ();
  let c = !costs.Cost.read in
  Ibr_obs.Probe.charge Ibr_obs.Probe.K_read c;
  Hooks.step c

let charge_alloc ~reused =
  let c =
    if reused then !costs.Cost.alloc_reuse else !costs.Cost.alloc_fresh
  in
  Ibr_obs.Probe.charge
    (if reused then Ibr_obs.Probe.K_alloc_reuse
     else Ibr_obs.Probe.K_alloc_fresh)
    c;
  Hooks.step c

let charge_free () =
  let c = !costs.Cost.free in
  Ibr_obs.Probe.charge Ibr_obs.Probe.K_free c;
  Hooks.step c

let charge_scan () =
  let c = !costs.Cost.scan_reservation in
  Ibr_obs.Probe.charge Ibr_obs.Probe.K_scan_reservation c;
  Hooks.step c
