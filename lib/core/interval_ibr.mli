(** Shared chassis for the interval-based schemes of §3.2–3.3.

    TagIBR (CAS and FAA flavours), TagIBR-WCAS, TagIBR-TPA and 2GEIBR
    all keep a per-thread [lower, upper] epoch interval, advance the
    global epoch on allocation ([epoch_freq]), tag blocks with
    birth/retire epochs, and reclaim by interval intersection against
    a sorted reservation snapshot.  They differ only in the shared
    pointer representation and in how a read extends the reader's
    upper endpoint — the [POINTER_OPS] parameter. *)

module type POINTER_OPS = sig
  val name : string
  val props : Tracker_intf.properties

  type 'a ptr

  val make_ptr : ?tag:int -> 'a Block.t option -> 'a ptr

  val read : epoch:Epoch.t -> upper:int Atomic.t -> 'a ptr -> 'a View.t
  (** Must return a view only once the calling thread's upper endpoint
      provably covers the target's birth epoch {e and} that
      reservation was visible when the returned view was (re-)read.
      [Two_ge_unfenced] deliberately violates this contract (the
      literal Fig. 6 ordering); the model checker exhibits the
      resulting use-after-free as a minimal schedule witness
      (DESIGN.md §6). *)

  val write : 'a ptr -> ?tag:int -> 'a Block.t option -> unit

  val cas :
    'a ptr -> expected:'a View.t -> ?tag:int -> 'a Block.t option -> bool
end

module Make (P : POINTER_OPS) : Tracker_intf.TRACKER
