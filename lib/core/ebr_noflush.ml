(* An intentionally *unsound* EBR variant: its [detach] skips the
   final guarded sweep and frees every block it still holds retired,
   without testing them against other threads' reservations — the
   classic broken lifecycle shortcut ("my thread is leaving, so its
   garbage must be droppable") that per-thread registration papers
   (DEBRA, Stamp-it) warn about.  A reader mid-interval that still
   guards one of those blocks dereferences freed memory.

   Exists only so the [thread_churn] scenario has a bug to find: the
   shrunk UnsafeFree witness for this scheme is pinned under
   test/traces/.  Everything except [detach] is the sound [Ebr]. *)

let name = "EBR-noflush"

let props = {
  Tracker_intf.robust = false;
  needs_unreserve = false;
  mutable_pointers = true;
  bounded_slots = false;
  pointer_tag_words = 0;
  fence_per_read = false;
  summary =
    "UNSOUND detach: frees pending retirements without a final \
     guarded sweep; kept as a demonstration oracle for thread churn";
}

type 'a t = {
  epoch : Epoch.t;
  reservations : int Atomic.t array;
  alloc : 'a Alloc.t;
  cfg : Tracker_intf.config;
  census : 'a Handoff.path Tracker_common.Census.t;
  mutable handoff : 'a Handoff.t option;
}

type 'a handle = {
  t : 'a t;
  tid : int;
  alloc_counter : int ref;
  path : 'a Handoff.path;
}

type 'a ptr = 'a Plain_ptr.t

let make_reclaimer t ~tid =
  Reclaimer.create ~backend:t.cfg.Tracker_intf.retire_backend
    ~empty_freq:t.cfg.Tracker_intf.empty_freq
    ~current_epoch:(fun () -> Epoch.peek t.epoch)
    ~source:(fun () ->
      let reservations =
        Tracker_common.snapshot_reservations t.reservations in
      let max_safe = Array.fold_left min max_int reservations in
      Reclaimer.Shape (Tracker_common.Conflict.Threshold max_safe))
    ~free:(fun b -> Alloc.free t.alloc ~tid b)
    ()

let create ~threads (cfg : Tracker_intf.config) =
  Tracker_intf.validate ~threads cfg;
  let t = {
    epoch = Epoch.create ();
    reservations = Array.init threads (fun _ -> Atomic.make max_int);
    alloc =
      Alloc.create ~reuse:cfg.reuse ~magazine_size:cfg.magazine_size
        ~threads:(threads + if cfg.background_reclaim then 1 else 0) ();
    cfg;
    census = Tracker_common.Census.create threads;
    handoff = None;
  } in
  if cfg.background_reclaim then
    t.handoff <-
      Some
        (Handoff.create ~producers:threads ~batch:cfg.handoff_batch
           (make_reclaimer t ~tid:threads));
  t

let register t ~tid =
  let path =
    match t.handoff with
    | Some h -> Handoff.Queued h
    | None -> Handoff.Direct (make_reclaimer t ~tid)
  in
  Alloc.set_pressure_hook t.alloc ~tid (fun () -> Handoff.path_pressure path);
  { t; tid; alloc_counter = ref 0; path }

let attach t =
  match
    Tracker_common.Census.try_attach t.census ~make:(fun tid ->
      match t.handoff with
      | Some h -> Handoff.Queued h
      | None -> Handoff.Direct (make_reclaimer t ~tid))
  with
  | None -> None
  | Some (tid, path) ->
    Alloc.set_pressure_hook t.alloc ~tid (fun () ->
      Handoff.path_pressure path);
    Some { t; tid; alloc_counter = ref 0; path }

let handle_tid h = h.tid

let alloc h payload =
  Epoch.tick h.t.epoch ~counter:h.alloc_counter ~freq:h.t.cfg.epoch_freq;
  let b = Alloc.alloc h.t.alloc ~tid:h.tid payload in
  Block.set_birth_epoch b (Epoch.peek h.t.epoch);
  b

let dealloc h b = Alloc.free_unpublished h.t.alloc ~tid:h.tid b

let retire h b =
  Block.transition_retire b;
  Block.set_retire_epoch b (Epoch.read h.t.epoch);
  Handoff.path_add h.path ~tid:h.tid b

let start_op h =
  let e = Epoch.read h.t.epoch in
  Prim.write h.t.reservations.(h.tid) e;
  Ibr_obs.Probe.reserve ~slot:0

let end_op h =
  Prim.write h.t.reservations.(h.tid) max_int;
  Ibr_obs.Probe.unreserve ~slot:0

let make_ptr _ ?tag target = Plain_ptr.make ?tag target
let read _ ~slot:_ p = Plain_ptr.read p
let read_root h p = read h ~slot:0 p
let write _ p ?tag target = Plain_ptr.write p ?tag target
let cas _ p ~expected ?tag target = Plain_ptr.cas p ~expected ?tag target
let unreserve _ ~slot:_ = ()
let reassign _ ~src:_ ~dst:_ = ()

let retired_count h = Handoff.path_count h.path

let force_empty h =
  Handoff.path_drain h.path ~tid:h.tid;
  Reclaimer.force (Handoff.path_reclaimer h.path)

let allocator t = t.alloc
let epoch_value t = Epoch.peek t.epoch
let reclaim_service t = Option.map Handoff.service t.handoff

let eject t ~tid =
  (match t.handoff with Some h -> Handoff.flush_own h ~tid | None -> ());
  Prim.write t.reservations.(tid) max_int

(* Recovery itself is the sound EBR one — this oracle's bug is in
   [detach], not the restart path. *)
let recover h =
  eject h.t ~tid:h.tid;
  start_op h

(* THE BUG: the leaver frees its pending retirements unconditionally
   ([Reclaimer.drain_all]), skipping the conflict test a sound
   detach's final guarded sweep performs while still registered.  Any
   block another thread still guards is freed under that reader's
   feet. *)
let detach h =
  Handoff.path_drain h.path ~tid:h.tid;
  let rc = Handoff.path_reclaimer h.path in
  Reclaimer.drain_all rc (fun b -> Alloc.free h.t.alloc ~tid:h.tid b);
  eject h.t ~tid:h.tid;
  Alloc.flush_magazines h.t.alloc ~tid:h.tid;
  Tracker_common.Census.detach h.t.census ~tid:h.tid
