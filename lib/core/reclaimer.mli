(** Pluggable retirement backends: the per-thread retired store, the
    [empty_freq] countdown, and the sweep invocation that every
    tracker used to hand-roll, extracted into one layer.

    A tracker builds one [t] per handle, passing its conflict source
    as closures; {!add} records a retirement and runs the countdown;
    the backend decides how the limbo blocks are stored and how much
    of a sweep can be skipped:

    - [List]: one flat list, every sweep examines every block (the
      original behaviour; differential oracle and ablation baseline).
    - [Buckets]: limbo lists bucketed by retire epoch, sorted.  A
      [Threshold] conflict frees/keeps whole buckets without touching
      their blocks — O(freed + buckets) rather than O(retired); an
      [Intervals] conflict frees wholesale every bucket below the
      smallest reserved lower endpoint, then tests the rest per block.
    - [Gated]: [Buckets] plus sweep gating — after a sweep that freed
      nothing, sweeps (including the reservation snapshot) are skipped
      until the global epoch moves.  Gating only defers frees; {!force}
      bypasses it, and epoch-less schemes (whose [current_epoch]
      returns 0) never gate. *)

type backend = List | Buckets | Gated

val backend_name : backend -> string
val backend_of_string : string -> backend option

val all_backends : backend list
(** In ablation order: [[List; Buckets; Gated]]. *)

(** A sweep's conflict test: a structured {!Tracker_common.Conflict.t}
    (which the bucket walk exploits for wholesale decisions) or an
    opaque predicate (HP's hazard set, legacy linear-scan oracles)
    that forces per-block examination. *)
type 'a test =
  | Shape of Tracker_common.Conflict.t
  | Predicate of ('a Block.t -> bool)

type 'a t

val create :
  backend:backend ->
  empty_freq:int ->
  ?prepare:(unit -> unit) ->
  current_epoch:(unit -> int) ->
  source:(unit -> 'a test) ->
  free:('a Block.t -> unit) ->
  unit ->
  'a t
(** [prepare] runs at every retire-cadence sweep attempt before the
    gate is consulted (QSBR/Fraser put their epoch advancement here so
    a closed gate cannot freeze the epoch).  [current_epoch] is an
    uncharged peek — return 0 for epoch-less schemes, which disables
    gating.  [source] builds the conflict test, paying the reservation
    snapshot; [free] releases one block. *)

val add : 'a t -> 'a Block.t -> unit
(** Record a retirement (the block's retire epoch must already be
    set); every [empty_freq] retirements triggers {!sweep}. *)

val sweep : 'a t -> unit
(** One gated sweep attempt: run [prepare], then either skip (gate
    closed) or build the test and sweep the store. *)

val force : 'a t -> unit
(** Sweep now, bypassing and clearing the gate, without [prepare]
    (callers of [force_empty] do their own preparation). *)

val pressure : 'a t -> unit
(** Memory-pressure sweep ({!Alloc.set_pressure_hook}): [prepare]
    (epoch advancement must keep moving under a capped heap) then an
    unconditional, gate-bypassing sweep. *)

val count : 'a t -> int
(** Retired-but-unreclaimed blocks currently held. *)

val total_retired : 'a t -> int
val total_reclaimed : 'a t -> int

val gate : 'a t -> (int * int) option
(** [Some (epoch, bound)] while the gate is closed: the global epoch
    at the zero-free sweep that armed it and the conflict bound that
    sweep tested against. *)

val bucket_count : 'a t -> int
(** Occupied limbo buckets (0 for the [List] backend). *)

val iter : 'a t -> ('a Block.t -> unit) -> unit
(** Observational walk over the still-retired blocks. *)

val drain_all : 'a t -> ('a Block.t -> unit) -> unit
(** Remove {e every} block from the store and hand it to the callback
    — no conflict test, no gate.  The
    "free your limbo list on exit without consulting reservations"
    mistake, kept only so the [Ebr_noflush] demonstration oracle can
    model a broken detach precisely; sound code paths never call
    it. *)
