(* A deliberately *incorrect* scheme: retire frees immediately,
   without waiting for readers.  It exists to validate the fault
   checker — under adversarial schedules it must produce
   use-after-free faults where every correct scheme produces none —
   and to demonstrate in examples what reclamation safety buys. *)

let name = "UnsafeFree"

let props = {
  Tracker_intf.robust = true;  (* vacuously: it never defers anything *)
  needs_unreserve = false;
  mutable_pointers = true;
  bounded_slots = false;
  pointer_tag_words = 0;
  fence_per_read = false;
  summary = "INCORRECT test oracle: frees on retire, no reader protection";
}

type 'a t = {
  alloc : 'a Alloc.t;
  census : unit Tracker_common.Census.t;
}

type 'a handle = { t : 'a t; tid : int }

type 'a ptr = 'a Plain_ptr.t

let create ~threads (cfg : Tracker_intf.config) =
  Tracker_intf.validate ~threads cfg;
  (* Frees on retire: there is no deferred work to hand off, so
     [background_reclaim] is ignored and [reclaim_service] is [None]. *)
  { alloc =
      Alloc.create ~reuse:cfg.reuse ~magazine_size:cfg.magazine_size
        ~threads ();
    census = Tracker_common.Census.create threads }

let register t ~tid = { t; tid }

(* Dynamic registration: no reservations, no retired store — only the
   census slot itself. *)
let attach t =
  match Tracker_common.Census.try_attach t.census ~make:(fun _ -> ()) with
  | None -> None
  | Some (tid, ()) -> Some { t; tid }

let handle_tid h = h.tid

let alloc h payload = Alloc.alloc h.t.alloc ~tid:h.tid payload
let dealloc h b = Alloc.free_unpublished h.t.alloc ~tid:h.tid b

let retire h b =
  (* No Reclaimer here: emit the retire probe directly, so the traced
     retire→reclaim interval exists (and is zero-length, which is the
     whole point of this deliberately unsafe scheme). *)
  Ibr_obs.Probe.retire ~block:(Block.id b);
  Block.transition_retire b;
  Alloc.free h.t.alloc ~tid:h.tid b

let start_op _ = ()
let end_op _ = ()

let make_ptr _ ?tag target = Plain_ptr.make ?tag target
let read _ ~slot:_ p = Plain_ptr.read p
let read_root h p = read h ~slot:0 p
let write _ p ?tag target = Plain_ptr.write p ?tag target
let cas _ p ~expected ?tag target = Plain_ptr.cas p ~expected ?tag target
let unreserve _ ~slot:_ = ()
let reassign _ ~src:_ ~dst:_ = ()

let retired_count _ = 0
let force_empty _ = ()
let allocator t = t.alloc
let epoch_value _ = 0
let reclaim_service _ = None

(* Holds no reservations: nothing to expire. *)
let eject _ ~tid:_ = ()

(* Nothing to drop, nothing to re-protect (nothing was protected to
   begin with — that is this oracle's bug). *)
let recover _ = ()

(* Dynamic deregistration: nothing deferred to flush. *)
let detach h =
  Alloc.flush_magazines h.t.alloc ~tid:h.tid;
  Tracker_common.Census.detach h.t.census ~tid:h.tid
