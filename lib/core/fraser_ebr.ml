(* Fraser's original epoch-based reclamation [12] (paper §2.2).

   Where our [Ebr] advances the global epoch on an allocation cadence
   (the §3 convention), Fraser's scheme advances it only when *every*
   active thread has been observed in the current epoch: a thread
   posts the epoch at operation start, and a would-be advancer CASes
   e -> e+1 once all posted reservations equal e.  Blocks retired in
   epoch x become reclaimable at epoch x+2 — by then every thread has
   begun a fresh operation since the retirement.

   Properties are EBR's: zero per-read cost, not robust (one thread
   parked mid-operation freezes the epoch and with it all
   reclamation). *)

let name = "EBR-Fraser"

let props = {
  Tracker_intf.robust = false;
  needs_unreserve = false;
  mutable_pointers = true;
  bounded_slots = false;
  pointer_tag_words = 0;
  fence_per_read = false;
  summary =
    "Fraser's EBR: epoch advances only when all active threads have \
     observed it; two-epoch lag, frozen by any stalled thread";
}

(* Reservation values: the observed epoch, or [inactive]. *)
let inactive = max_int

type 'a t = {
  epoch : Epoch.t;
  reservations : int Atomic.t array;
  alloc : 'a Alloc.t;
  cfg : Tracker_intf.config;
  census : 'a Handoff.path Tracker_common.Census.t;
  mutable handoff : 'a Handoff.t option;
}

type 'a handle = {
  t : 'a t;
  tid : int;
  path : 'a Handoff.path;
}

type 'a ptr = 'a Plain_ptr.t

(* Advance e -> e+1 iff every active thread has posted e (or later —
   possible when it raced past us). *)
let try_advance t =
  let e = Epoch.read t.epoch in
  let all_observed =
    Array.for_all
      (fun slot ->
         Prim.charge_scan ();
         let r = Atomic.get slot in
         r = inactive || r >= e)
      t.reservations
  in
  if all_observed then ignore (Epoch.advance_cas t.epoch ~expected:e)

(* retire_epoch > e - 2, i.e. the two-epoch-lag threshold.  The
   advance attempt is the reclaimer's [prepare] hook so it still runs
   when the Gated backend skips the sweep itself — otherwise a closed
   gate would freeze the epoch it is waiting on. *)
let make_reclaimer t ~tid =
  Reclaimer.create ~backend:t.cfg.Tracker_intf.retire_backend
    ~empty_freq:t.cfg.Tracker_intf.empty_freq
    ~prepare:(fun () -> try_advance t)
    ~current_epoch:(fun () -> Epoch.peek t.epoch)
    ~source:(fun () ->
      let e = Epoch.read t.epoch in
      Reclaimer.Shape (Tracker_common.Conflict.Threshold (e - 1)))
    ~free:(fun b -> Alloc.free t.alloc ~tid b)
    ()

let create ~threads (cfg : Tracker_intf.config) =
  Tracker_intf.validate ~threads cfg;
  let t = {
    epoch = Epoch.create ();
    reservations = Array.init threads (fun _ -> Atomic.make inactive);
    alloc =
      Alloc.create ~reuse:cfg.reuse ~magazine_size:cfg.magazine_size
        ~threads:(threads + if cfg.background_reclaim then 1 else 0) ();
    cfg;
    census = Tracker_common.Census.create threads;
    handoff = None;
  } in
  if cfg.background_reclaim then
    t.handoff <-
      Some
        (Handoff.create ~producers:threads ~batch:cfg.handoff_batch
           (make_reclaimer t ~tid:threads));
  t

let register t ~tid =
  let path =
    match t.handoff with
    | Some h -> Handoff.Queued h
    | None -> Handoff.Direct (make_reclaimer t ~tid)
  in
  Alloc.set_pressure_hook t.alloc ~tid (fun () -> Handoff.path_pressure path);
  { t; tid; path }

(* Dynamic registration.  A free slot reads [inactive], which is also
   the correct state for a joiner between operations — it only posts
   an epoch at [start_op] — so attach needs no reservation write. *)
let attach t =
  match
    Tracker_common.Census.try_attach t.census ~make:(fun tid ->
      match t.handoff with
      | Some h -> Handoff.Queued h
      | None -> Handoff.Direct (make_reclaimer t ~tid))
  with
  | None -> None
  | Some (tid, path) ->
    Alloc.set_pressure_hook t.alloc ~tid (fun () ->
      Handoff.path_pressure path);
    Some { t; tid; path }

let handle_tid h = h.tid

let alloc h payload =
  let b = Alloc.alloc h.t.alloc ~tid:h.tid payload in
  Block.set_birth_epoch b (Epoch.peek h.t.epoch);
  b

let dealloc h b = Alloc.free_unpublished h.t.alloc ~tid:h.tid b

let retire h b =
  Block.transition_retire b;
  Block.set_retire_epoch b (Epoch.read h.t.epoch);
  Handoff.path_add h.path ~tid:h.tid b

let start_op h =
  let e = Epoch.read h.t.epoch in
  Prim.write h.t.reservations.(h.tid) e;
  Ibr_obs.Probe.reserve ~slot:0

let end_op h =
  Prim.write h.t.reservations.(h.tid) inactive;
  Ibr_obs.Probe.unreserve ~slot:0

let make_ptr _ ?tag target = Plain_ptr.make ?tag target
let read _ ~slot:_ p = Plain_ptr.read p
let read_root h p = read h ~slot:0 p
let write _ p ?tag target = Plain_ptr.write p ?tag target
let cas _ p ~expected ?tag target = Plain_ptr.cas p ~expected ?tag target
let unreserve _ ~slot:_ = ()
let reassign _ ~src:_ ~dst:_ = ()

let retired_count h = Handoff.path_count h.path

(* Caller is between operations: help the epoch forward two steps so
   blocks retired before its last operation become reclaimable. *)
let force_empty h =
  Handoff.path_drain h.path ~tid:h.tid;
  try_advance h.t;
  try_advance h.t;
  Reclaimer.force (Handoff.path_reclaimer h.path)

let allocator t = t.alloc
let epoch_value t = Epoch.peek t.epoch
let reclaim_service t = Option.map Handoff.service t.handoff

(* Neutralize a dead thread: marking it inactive both unpins its
   reservation and lets the all-observed advance proceed again.  The
   scratch flush unstrands batched handoff retires. *)
let eject t ~tid =
  (match t.handoff with Some h -> Handoff.flush_own h ~tid | None -> ());
  Prim.write t.reservations.(tid) inactive

(* Neutralization recovery: self-expire, then re-announce as a fresh
   [start_op]. *)
let recover h =
  eject h.t ~tid:h.tid;
  start_op h

(* Dynamic deregistration: a parked slot reads [inactive], so a free
   slot never blocks the all-observed epoch advance. *)
let detach h =
  force_empty h;
  eject h.t ~tid:h.tid;
  Alloc.flush_magazines h.t.alloc ~tid:h.tid;
  Tracker_common.Census.detach h.t.census ~tid:h.tid
