(* Pieces shared by all trackers: the per-thread retired list and its
   sweep, the reservation-table snapshots used by [empty], and the
   sweep telemetry the harness reports.

   The sweep path is the hot loop of every scheme's [empty]: one
   conflict test per retired block.  A naive test re-scans the whole
   reservation table per block, making a sweep O(retired x threads).
   [Sweep_snapshot] instead sorts and merges the reservations once per
   sweep, so each block's test is a binary search — O(retired x log T)
   — which is what keeps reclamation cheap at the 72+ thread counts
   the paper's Fig. 8/9 stress.  The linear predicates are kept (and
   selectable via [legacy_sweep]) as differential-testing oracles and
   for the old-vs-new ablation bench. *)

(* Debug/ablation flag: route [empty] through the original
   O(retired x threads) linear-scan predicates instead of the sorted
   snapshot.  Flipped by the `ablation:sweep` bench and the
   differential tests; production paths leave it false. *)
let legacy_sweep = ref false

(* Global sweep telemetry, accumulated by every tracker instance
   (atomics: the domains backend sweeps in parallel).  Harness runners
   snapshot before/after a run and report the difference, mirroring
   how [Fault.total] is consumed. *)
module Sweep_stats = struct
  type snap = {
    sweeps : int;           (* sweeps actually run *)
    examined : int;         (* retired blocks conflict-tested one by one *)
    freed : int;            (* blocks handed to free *)
    snapshot_entries : int; (* reservation cells read building snapshots *)
    snapshot_cycles : int;  (* modelled cycles spent building snapshots *)
    skipped : int;          (* sweep attempts skipped by the Gated backend *)
    buckets : int;          (* limbo buckets occupied, summed at sweep time *)
  }

  let sweeps = Atomic.make 0
  let examined = Atomic.make 0
  let freed = Atomic.make 0
  let snapshot_entries = Atomic.make 0
  let snapshot_cycles = Atomic.make 0
  let skipped = Atomic.make 0
  let buckets = Atomic.make 0

  let note_sweep ~examined:e ~freed:f =
    Atomic.incr sweeps;
    ignore (Atomic.fetch_and_add examined e);
    ignore (Atomic.fetch_and_add freed f)

  let note_snapshot ~entries ~cycles =
    ignore (Atomic.fetch_and_add snapshot_entries entries);
    ignore (Atomic.fetch_and_add snapshot_cycles cycles)

  let note_skip () = Atomic.incr skipped

  let note_buckets n = ignore (Atomic.fetch_and_add buckets n)

  let snap () = {
    sweeps = Atomic.get sweeps;
    examined = Atomic.get examined;
    freed = Atomic.get freed;
    snapshot_entries = Atomic.get snapshot_entries;
    snapshot_cycles = Atomic.get snapshot_cycles;
    skipped = Atomic.get skipped;
    buckets = Atomic.get buckets;
  }

  let diff a b = {
    sweeps = b.sweeps - a.sweeps;
    examined = b.examined - a.examined;
    freed = b.freed - a.freed;
    snapshot_entries = b.snapshot_entries - a.snapshot_entries;
    snapshot_cycles = b.snapshot_cycles - a.snapshot_cycles;
    skipped = b.skipped - a.skipped;
    buckets = b.buckets - a.buckets;
  }

  let reset () =
    Atomic.set sweeps 0;
    Atomic.set examined 0;
    Atomic.set freed 0;
    Atomic.set snapshot_entries 0;
    Atomic.set snapshot_cycles 0;
    Atomic.set skipped 0;
    Atomic.set buckets 0

  (* Read-backed registry counters over the same atomics; runs report
     the delta across their measured phase. *)
  let () =
    let reg name order a =
      Ibr_obs.Metrics.register_counter ~name ~order (fun () -> Atomic.get a)
    in
    reg "sweeps" 400 sweeps;
    reg "sweep_examined" 410 examined;
    reg "sweep_freed" 420 freed;
    reg "sweep_snapshot_entries" 430 snapshot_entries;
    reg "sweep_snapshot_cycles" 440 snapshot_cycles;
    reg "sweeps_skipped" 450 skipped;
    reg "sweep_buckets" 460 buckets
end

module Retired = struct
  (* Thread-local list of retired-but-unreclaimed blocks.  Only its
     owning thread touches it, so no atomics are needed; the count is
     sampled by the harness from the same simulated thread. *)
  type 'a t = {
    mutable blocks : 'a Block.t list;
    mutable count : int;
    mutable total_retired : int;
    mutable total_reclaimed : int;
  }

  let create () =
    { blocks = []; count = 0; total_retired = 0; total_reclaimed = 0 }

  let add t b =
    t.blocks <- b :: t.blocks;
    t.count <- t.count + 1;
    t.total_retired <- t.total_retired + 1

  let count t = t.count

  (* Keep blocks satisfying [conflict]; hand the rest to [free].
     Charges one local step per examined block (list walk).  The
     store is committed before any free runs: the examination steps
     are preemption points, so an abort (horizon stop, crash) inside
     the walk must leave every block still stored, and one inside the
     free loop may leak condemned blocks but can never leave a freed
     block where a later sweep would double-free it. *)
  let sweep t ~conflict ~free =
    let examined = t.count in
    let kept = ref [] and doomed = ref [] and n = ref 0 in
    List.iter (fun b ->
      Prim.local 1;
      if conflict b then begin kept := b :: !kept; incr n end
      else doomed := b :: !doomed)
      t.blocks;
    t.blocks <- !kept;
    t.count <- !n;
    Sweep_stats.note_sweep ~examined ~freed:(examined - !n);
    List.iter
      (fun b ->
         t.total_reclaimed <- t.total_reclaimed + 1;
         free b)
      (List.rev !doomed)

  (* Plain iterator over the still-retired blocks, in most-recently-
     retired-first order.  Purely observational (diagnostics and
     leak accounting); it does not free or drop anything. *)
  let iter t f = List.iter f t.blocks
end

(* Snapshot an [int Atomic.t array] reservation table, charging the
   cross-thread scan cost per entry. *)
let snapshot_reservations (arr : int Atomic.t array) =
  let r = Array.map (fun a -> Prim.charge_scan (); Atomic.get a) arr in
  Sweep_stats.note_snapshot ~entries:(Array.length arr)
    ~cycles:(Array.length arr * !Prim.costs.Ibr_runtime.Cost.scan_reservation);
  r

(* A once-per-sweep digest of a reservation table: the reserved
   intervals, sorted by lower endpoint and merged into disjoint runs,
   so a block's conflict test is one binary search instead of a scan
   of every thread's slot. *)
module Sweep_snapshot = struct
  type t = {
    los : int array;  (* merged interval lower endpoints, ascending *)
    his : int array;  (* matching upper endpoints; also ascending *)
  }

  let length t = Array.length t.los

  (* Smallest reserved lower endpoint ([max_int] when nothing is
     reserved).  A block whose retire epoch precedes it cannot conflict
     with any interval — the bucket-wholesale test of [Reclaimer]. *)
  let min_lower t = if Array.length t.los = 0 then max_int else t.los.(0)

  (* Merge a sorted-by-lower array of [n] (lo, hi) pairs in place;
     adjacent integer intervals ([1,2] and [3,4]) merge too, which is
     sound because block lifetimes are integer intervals.  Returns the
     merged prefix length. *)
  let merge_sorted los his n =
    if n = 0 then 0
    else begin
      let m = ref 0 in
      for i = 1 to n - 1 do
        let hi = his.(!m) in
        if hi = max_int || los.(i) <= hi + 1 then begin
          if his.(i) > hi then his.(!m) <- his.(i)
        end else begin
          incr m;
          los.(!m) <- los.(i);
          his.(!m) <- his.(i)
        end
      done;
      !m + 1
    end

  (* Sort the parallel endpoint arrays by lower endpoint (ties in any
     order: equal lowers always merge).  Insertion sort for the common
     small tables — straight-line int code, no closure calls or
     boxing — falling back to an index heapsort when the table is big
     enough for O(k^2) to lose. *)
  let insertion_cutoff = 96

  let sort_pairs los his n =
    if n <= insertion_cutoff then
      for i = 1 to n - 1 do
        let lo = los.(i) and hi = his.(i) in
        let j = ref (i - 1) in
        while !j >= 0 && los.(!j) > lo do
          los.(!j + 1) <- los.(!j);
          his.(!j + 1) <- his.(!j);
          decr j
        done;
        los.(!j + 1) <- lo;
        his.(!j + 1) <- hi
      done
    else begin
      let idx = Array.init n (fun i -> i) in
      Array.sort (fun i j -> Int.compare los.(i) los.(j)) idx;
      let slos = Array.init n (fun i -> los.(idx.(i))) in
      let shis = Array.init n (fun i -> his.(idx.(i))) in
      Array.blit slos 0 los 0 n;
      Array.blit shis 0 his 0 n
    end

  let of_pairs los his n =
    (* The cost model charges one local step per reserved entry for
       the sort+merge. *)
    Prim.local n;
    sort_pairs los his n;
    let m = merge_sorted los his n in
    { los = Array.sub los 0 m; his = Array.sub his 0 m }

  (* Build from parallel endpoint arrays already read out of the
     table.  A lower endpoint of [max_int] marks an unreserved slot
     (or one caught mid-[clear]); such a slot cannot protect any block
     with a real retire epoch, so it is dropped here. *)
  let of_intervals ~lower ~upper =
    let n = Array.length lower in
    let los = Array.make n 0 and his = Array.make n 0 in
    let k = ref 0 in
    for i = 0 to n - 1 do
      if lower.(i) <> max_int then begin
        los.(!k) <- lower.(i);
        (* A slot caught between [start]'s two writes shows the fresh
           lower with a stale (cleared) upper; widen rather than
           invert the interval. *)
        his.(!k) <- (if upper.(i) < lower.(i) then lower.(i) else upper.(i));
        incr k
      end
    done;
    of_pairs los his !k

  (* Build from single-epoch reservations (HE eras, POIBR epochs):
     each reserved value [e] is the degenerate interval [e, e]; [none]
     is the scheme's empty-slot sentinel.  No pairing needed — sort
     the reserved values flat, then merge. *)
  let of_points ~none values =
    let n = Array.length values in
    let pts = Array.make n 0 in
    let k = ref 0 in
    for i = 0 to n - 1 do
      if values.(i) <> none then begin
        pts.(!k) <- values.(i);
        incr k
      end
    done;
    let k = !k in
    Prim.local k;
    let los = Array.sub pts 0 k in
    Array.sort Int.compare los;
    let his = Array.copy los in
    let m = merge_sorted los his k in
    { los = Array.sub los 0 m; his = Array.sub his 0 m }

  (* Is [birth, retire] intersected by any reserved interval?  The
     merged intervals are disjoint and sorted, so both endpoint arrays
     ascend: binary-search the first interval whose upper endpoint
     reaches [birth], then a single lower-endpoint comparison
     decides.  O(log T) per block. *)
  let conflict t ~birth ~retire =
    let n = Array.length t.los in
    if n = 0 then false
    else begin
      (* smallest i with his.(i) >= birth *)
      let lo = ref 0 and hi = ref n in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if t.his.(mid) >= birth then hi := mid else lo := mid + 1
      done;
      !lo < n && t.los.(!lo) <= retire
    end
end

(* What a sweep tests each retired block against: nothing, a single
   epoch threshold (the epoch-family schemes), or the sorted interval
   digest.  Having one type here lets every tracker's [empty] build
   its predicate the same way and keeps the O(log T) path shared. *)
module Conflict = struct
  type t =
    | Never                          (* no reservations: free everything *)
    | Threshold of int               (* conflict iff retire_epoch >= n *)
    | Intervals of Sweep_snapshot.t  (* conflict iff lifetime intersects *)

  let pred c =
    match c with
    | Never -> fun _ -> false
    | Threshold n -> fun b -> Block.retire_epoch b >= n
    | Intervals s ->
      fun b ->
        Sweep_snapshot.conflict s ~birth:(Block.birth_epoch b)
          ~retire:(Block.retire_epoch b)
end

(* Per-thread [lower, upper] interval reservations, shared by the
   TagIBR variants and 2GEIBR (Fig. 5 lines 1–2, 16–17). *)
module Interval_res = struct
  type t = {
    lower : int Atomic.t array;
    upper : int Atomic.t array;
  }

  let create threads = {
    lower = Array.init threads (fun _ -> Atomic.make max_int);
    upper = Array.init threads (fun _ -> Atomic.make max_int);
  }

  (* start_op: lower = upper = current epoch (Fig. 5 line 43). *)
  let start t ~tid e =
    Prim.write t.lower.(tid) e;
    Prim.write t.upper.(tid) e

  let clear t ~tid =
    Prim.write t.lower.(tid) max_int;
    Prim.write t.upper.(tid) max_int

  let upper_cell t ~tid = t.upper.(tid)

  (* Legacy linear-scan predicate: snapshot both endpoint arrays and
     test each block against every slot (Fig. 5 line 26, inclusive
     endpoints for safety).  O(threads) per block — kept as the
     differential-testing oracle for [conflict_fast] and for the
     `ablation:sweep` old-vs-new bench. *)
  let conflict_with_snapshot t =
    let lower = snapshot_reservations t.lower in
    let upper = snapshot_reservations t.upper in
    fun b ->
      let birth = Block.birth_epoch b and retire = Block.retire_epoch b in
      let n = Array.length lower in
      let rec check i =
        i < n && ((birth <= upper.(i) && retire >= lower.(i)) || check (i + 1))
      in
      check 0

  (* Sorted-snapshot digest of the table (one O(T log T) build, then
     O(log T) per block).  Reads each thread's endpoint pair in one
     fused pass — same scan charges as the two-array snapshot, fewer
     intermediate arrays and a more consistent pair per slot. *)
  let sweep_snapshot t =
    let n = Array.length t.lower in
    let los = Array.make n 0 and his = Array.make n 0 in
    let k = ref 0 in
    for i = 0 to n - 1 do
      Prim.charge_scan ();
      let lo = Atomic.get t.lower.(i) in
      Prim.charge_scan ();
      let hi = Atomic.get t.upper.(i) in
      if lo <> max_int then begin
        los.(!k) <- lo;
        (* Mid-[start] slots show a fresh lower with a cleared upper;
           widen rather than invert the interval. *)
        his.(!k) <- (if hi < lo then lo else hi);
        incr k
      end
    done;
    Sweep_stats.note_snapshot ~entries:(2 * n)
      ~cycles:(2 * n * !Prim.costs.Ibr_runtime.Cost.scan_reservation);
    Sweep_snapshot.of_pairs los his !k

  (* The production conflict predicate; obeys [legacy_sweep]. *)
  let conflict_fast t =
    if !legacy_sweep then conflict_with_snapshot t
    else Conflict.pred (Conflict.Intervals (sweep_snapshot t))
end

(* Dynamic thread census: the slot manager behind every tracker's
   [attach]/[detach].  The fixed reservation tables stay fixed-size
   (capacity = the [threads] the tracker was created with); what
   becomes dynamic is *occupancy* — which slots currently belong to a
   live thread.  A joiner claims the lowest free slot with a CAS; a
   leaver releases its slot only after the tracker has published a
   quiescent reservation for it, so the release doubles as the
   happens-before edge that makes slot reuse safe: the next occupant
   can never alias a reservation the previous one still held.

   Each slot also carries a persistent payload ['p] (the tracker's
   per-slot reclaimer path), created on first occupancy and *adopted*
   by later occupants.  Retired blocks a departing thread could not
   yet free therefore stay owned by the slot — swept by whoever
   occupies it next — instead of leaking into a structure nobody
   sweeps.

   The claim CAS and the release write go through [Prim] so they are
   charged and preemptible: under [Ibr_check], attach/detach races
   are explored like any other shared access. *)
module Census = struct
  type 'p t = {
    active : bool Atomic.t array;
    generation : int array;     (* attaches ever seen, per slot *)
    paths : 'p option array;    (* owner-written after a claim *)
    attaches : int Atomic.t;
    detaches : int Atomic.t;
  }

  let create capacity =
    if capacity < 1 then invalid_arg "Census.create: capacity must be >= 1";
    {
      active = Array.init capacity (fun _ -> Atomic.make false);
      generation = Array.make capacity 0;
      paths = Array.make capacity None;
      attaches = Atomic.make 0;
      detaches = Atomic.make 0;
    }

  let capacity t = Array.length t.active

  let check_tid t tid =
    if tid < 0 || tid >= capacity t then
      invalid_arg "Census: thread id out of range"

  let is_active t ~tid =
    check_tid t tid;
    Atomic.get t.active.(tid)

  let active_count t =
    Array.fold_left (fun n a -> if Atomic.get a then n + 1 else n) 0 t.active

  let attaches t = Atomic.get t.attaches
  let detaches t = Atomic.get t.detaches

  let generation t ~tid =
    check_tid t tid;
    t.generation.(tid)

  (* Claim the lowest free slot.  The CAS is charged (a preemption
     point), so two racing joiners resolve like any other contended
     claim: the loser moves on to the next slot.  [make] runs only on
     a slot's first-ever occupancy. *)
  let try_attach t ~make =
    let n = capacity t in
    let rec go i =
      if i >= n then None
      else if Prim.cas t.active.(i) false true then begin
        t.generation.(i) <- t.generation.(i) + 1;
        Atomic.incr t.attaches;
        let p =
          match t.paths.(i) with
          | Some p -> p
          | None ->
            let p = make i in
            t.paths.(i) <- Some p;
            p
        in
        Some (i, p)
      end
      else go (i + 1)
    in
    go 0

  (* Release a slot.  Only the occupant may call this, and only after
     publishing a quiescent reservation for [tid] — the write below
     is what makes that publication visible to the next claimant. *)
  let detach t ~tid =
    check_tid t tid;
    if not (Atomic.get t.active.(tid)) then
      invalid_arg "Census.detach: slot is not active";
    Atomic.incr t.detaches;
    Prim.write t.active.(tid) false
end
