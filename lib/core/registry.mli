(** Name-indexed registry of the reclamation schemes, mirroring the
    artifact's tracker menu.  [paper_set] is the lineup of §5's
    figures. *)

type entry = {
  name : string;
  tracker : Tracker_intf.packed;
}

val no_mm : entry
val ebr : entry
val hp : entry
val he : entry
val po_ibr : entry
val tag_ibr : entry
val tag_ibr_faa : entry
val tag_ibr_wcas : entry
val tag_ibr_tpa : entry
val two_ge_ibr : entry
val qsbr : entry
val fraser_ebr : entry
val debra : entry
val debra_plus : entry

val unsafe_free : entry
(** The deliberately broken oracle (free on retire); not in {!all}. *)

val two_ge_unfenced : entry
(** The literal (unsound) Fig. 6 read ordering; demonstration only. *)

val qsbr_noncas : entry
(** QSBR with an unconditional (non-CAS) epoch advance — the
    grace-period-skip bug of DESIGN.md §5a.3; demonstration only. *)

val ebr_noflush : entry
(** EBR whose [detach] frees its pending retirements without a final
    guarded sweep — the detach-without-flush lifecycle bug the
    [thread_churn] scenario catches; demonstration only. *)

val debra_norestart : entry
(** DEBRA+ whose neutralization recovery resumes without
    re-protecting — the restart-protocol bug the [neutralize_mid_op]
    scenario catches; demonstration only. *)

(** The census slot manager behind every tracker's attach/detach
    (see {!Tracker_common.Census}), re-exported for harness and test
    code. *)
module Census = Tracker_common.Census

val oracles : entry list
(** The deliberately broken demonstration schemes. *)

val all : entry list
(** Every correct scheme. *)

val paper_set : entry list
(** The schemes plotted in Fig. 8–10. *)

val ibr_family : entry list
(** The interval-based schemes the paper introduces. *)

val find : string -> entry option
(** Case-insensitive lookup (includes [unsafe_free]). *)

val find_exn : string -> entry
(** @raise Invalid_argument on unknown names. *)

val props : entry -> Tracker_intf.properties

val fig7_rows : unit -> (string * Tracker_intf.properties) list
(** One row per scheme for the Fig. 7 tradeoff table (NoMM omitted). *)
