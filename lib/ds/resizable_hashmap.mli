(** Resizable split-ordered hash map (Shalev & Shavit) — the
    bulk-retirement rideable.

    One globally sorted lock-free list in recursive-split key order,
    plus a bucket array of shortcut pointers that lives in a tracker
    block.  Growing the table publishes a doubled shortcut array and
    retires the *entire superseded array* through the tracker as one
    block — the BULK capability ([bulk.migrate] forces one doubling;
    the map also grows itself at load factor {!val-load_factor}).

    Capabilities: [map] + [bulk].  Keys must lie in
    [0, 2{^30}) (the split-order bit-reversal needs the word's low
    bit free). *)

open Ibr_core

val rev31 : int -> int
(** Reverse the low 31 bits — the split-order position function,
    exposed for the registry qcheck tests. *)

module Make (T : Tracker_intf.TRACKER) : sig
  include Ds_intf.RIDEABLE

  val create_sized :
    ?lg:int -> ?max_lg:int -> threads:int -> Tracker_intf.config -> t
  (** [create_sized ~lg ~max_lg ~threads cfg] starts with [2^lg]
      buckets (default [2^6]) and refuses to grow past [2^max_lg]
      (default [2^18]). *)
end
