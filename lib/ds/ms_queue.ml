(* The Michael & Scott lock-free FIFO queue [21] — the retire-at-head
   churn rideable: every dequeue retires the node the whole consumer
   side is spinning on, so the reclamation scheme is stressed exactly
   where contention concentrates (Hart et al.'s canonical workload).

   Representation: a dummy-headed singly linked list.  [head] points
   at the current dummy; the front element lives in the dummy's
   successor, and a dequeue swings [head] to that successor (which
   becomes the new dummy) and retires the old one.  [tail] may lag by
   at most one node; both enqueuers and dequeuers help it forward.

   Reclamation-safety detail: a dequeue must help [tail] past the old
   dummy *before* swinging [head].  Otherwise [tail] could be left
   pointing at a retired node, and a later enqueue's tail read would
   dereference freed memory — the head-of-queue UAF the
   [queue_dequeue_churn] model-check scenario certifies. *)

open Ibr_core

module Make (T : Tracker_intf.TRACKER) = struct
  let name = "michael-scott-queue"
  let compatible (p : Tracker_intf.properties) = p.mutable_pointers
  let slots_needed = 3

  type node = {
    value : int;
    next : node T.ptr;
  }

  type t = {
    tracker : node T.t;
    head : node T.ptr;    (* current dummy *)
    tail : node T.ptr;    (* last or second-to-last node *)
    cfg : Tracker_intf.config;
  }

  type handle = {
    queue : t;
    th : node T.handle;
    stats : Ds_common.op_stats;
  }

  (* Hazard-slot roles. *)
  let slot_node = 0     (* the head/tail node an attempt anchors on *)
  let slot_next = 1     (* its successor *)
  let slot_tail = 2     (* tail snapshot during a dequeue's help *)

  let create ~threads cfg =
    let tracker = T.create ~threads cfg in
    (* The initial dummy needs an allocating handle; tid 0 is
       re-registered by the first worker, which is fine (same pattern
       as the NM tree's sentinel setup). *)
    let h0 = T.register tracker ~tid:0 in
    let dummy = T.alloc h0 { value = 0; next = T.make_ptr tracker None } in
    {
      tracker;
      head = T.make_ptr tracker (Some dummy);
      tail = T.make_ptr tracker (Some dummy);
      cfg;
    }

  let register queue ~tid =
    { queue; th = T.register queue.tracker ~tid;
      stats = Ds_common.make_op_stats () }

  let attach queue =
    match T.attach queue.tracker with
    | None -> None
    | Some th -> Some { queue; th; stats = Ds_common.make_op_stats () }

  let detach h = T.detach h.th
  let handle_tid h = T.handle_tid h.th

  let wrap h f =
    Ds_common.with_op ~stats:h.stats
      ~start_op:(fun () -> T.start_op h.th)
      ~end_op:(fun () -> T.end_op h.th)
      ~on_neutralize:(fun () -> T.recover h.th)
      ~max_cas_failures:h.queue.cfg.max_cas_failures
      f

  let enqueue h value =
    wrap h (fun () ->
      let rec attempt () =
        let tailv = T.read h.th ~slot:slot_node h.queue.tail in
        match View.target tailv with
        | None -> assert false    (* tail never goes null *)
        | Some tb ->
          let tn = Block.get tb in
          let nextv = T.read h.th ~slot:slot_next tn.next in
          (match View.target nextv with
           | Some nb ->
             (* Tail lagging: help it forward, then retry. *)
             ignore (T.cas h.th h.queue.tail ~expected:tailv (Some nb));
             attempt ()
           | None ->
             (* Mask allocation through the linearizing link CAS (and
                the loser's dealloc): a restart signal inside would
                leak the fresh node or re-enqueue a landed one.  The
                best-effort tail swing rides inside too — it touches
                only pointer cells, no dereference. *)
             let ok =
               Ds_common.committed (fun () ->
                 let b =
                   T.alloc h.th
                     { value; next = T.make_ptr h.queue.tracker None }
                 in
                 if T.cas h.th tn.next ~expected:nextv (Some b) then begin
                   ignore
                     (T.cas h.th h.queue.tail ~expected:tailv (Some b));
                   true
                 end
                 else begin
                   T.dealloc h.th b;
                   false
                 end)
             in
             if not ok then attempt ())
      in
      attempt ())

  let dequeue h =
    wrap h (fun () ->
      let rec attempt () =
        let headv = T.read h.th ~slot:slot_node h.queue.head in
        match View.target headv with
        | None -> assert false    (* head never goes null *)
        | Some hb ->
          let hn = Block.get hb in
          let nextv = T.read h.th ~slot:slot_next hn.next in
          let head_still_at hb =
            match View.target (T.read h.th ~slot:slot_tail h.queue.head) with
            | Some hb' -> hb' == hb
            | None -> false
          in
          (match View.target nextv with
           | None -> None          (* dummy has no successor: empty *)
           | Some _ when not (head_still_at hb) ->
             (* Head moved between the two reads: [hn.next] was a
                retired dummy's stale field, so its target may already
                be reclaimed — dereferencing it would be the queue's
                use-after-free (the queue_dequeue_churn scenario's
                witness shape).  Head still at [hb] proves neither
                [hb] nor its successor has been retired yet. *)
             attempt ()
           | Some nb ->
             (* Help tail past the old dummy BEFORE swinging head:
                once head moves, the dummy is retired, and a lagging
                tail would hand the next enqueuer a freed node. *)
             let tailv = T.read h.th ~slot:slot_tail h.queue.tail in
             (match View.target tailv with
              | Some tb when tb == hb ->
                ignore (T.cas h.th h.queue.tail ~expected:tailv (Some nb))
              | _ -> ());
             (* The element rides in the new dummy; read it while
                slot_next protects [nb] (the field is immutable). *)
             let v = (Block.get nb).value in
             (* Mask the linearizing swing and the winner's retire as
                one unit: a restarted successful dequeue would pop a
                second element, and a signal between CAS and retire
                would leak the dummy.  No dereference inside. *)
             if
               Ds_common.committed (fun () ->
                 if
                   T.cas h.th h.queue.head ~expected:headv
                     (View.target nextv)
                 then begin
                   T.retire h.th hb;
                   true
                 end
                 else false)
             then Some v
             else attempt ())
      in
      attempt ())

  let peek h =
    wrap h (fun () ->
      let rec attempt () =
        let headv = T.read h.th ~slot:slot_node h.queue.head in
        match View.target headv with
        | None -> assert false
        | Some hb ->
          let hn = Block.get hb in
          let nextv = T.read h.th ~slot:slot_next hn.next in
          (* Same head re-validation as dequeue before touching the
             successor. *)
          let fresh =
            match View.target (T.read h.th ~slot:slot_tail h.queue.head) with
            | Some hb' -> hb' == hb
            | None -> false
          in
          (match View.target nextv with
           | None -> None
           | Some _ when not fresh -> attempt ()
           | Some nb -> Some (Block.get nb).value)
      in
      attempt ())

  let is_empty h = peek h = None

  let retired_count h = T.retired_count h.th
  let force_empty h = T.force_empty h.th
  let allocator_stats t = Alloc.stats (T.allocator t.tracker)
  let reclaim_service t = T.reclaim_service t.tracker
  let epoch_value t = T.epoch_value t.tracker
  let set_capacity t cap = Alloc.set_capacity (T.allocator t.tracker) cap
  let eject t ~tid = T.eject t.tracker ~tid

  (* Sequential-context dump, front (next-out) first: the dummy's
     value is dead, everything after it is live. *)
  let to_list t =
    let th = T.register t.tracker ~tid:0 in
    T.start_op th;
    let rec go acc v =
      match View.target v with
      | None -> List.rev acc
      | Some b ->
        let n = Block.get b in
        go (n.value :: acc) (T.read th ~slot:slot_next n.next)
    in
    let r =
      match View.target (T.read th ~slot:slot_node t.head) with
      | None -> []
      | Some dummy -> go [] (T.read th ~slot:slot_next (Block.get dummy).next)
    in
    T.end_op th;
    r

  (* Quiescent structural check: the chain from [head] is acyclic
     (bounded by the live count), touches no reclaimed block, and
     [tail] points at a node still on the chain. *)
  let check_invariants t =
    let th = T.register t.tracker ~tid:0 in
    T.start_op th;
    let limit = (Alloc.stats (T.allocator t.tracker)).live + 1 in
    let tail_b = View.target (T.read th ~slot:slot_tail t.tail) in
    let rec go n ~seen_tail b =
      if n > limit then
        failwith "ms-queue invariant: chain longer than live count";
      if Block.is_reclaimed b then
        failwith "ms-queue invariant: reachable reclaimed block";
      let seen_tail =
        seen_tail || (match tail_b with Some tb -> tb == b | None -> false)
      in
      match View.target (T.read th ~slot:slot_next (Block.get b).next) with
      | Some nxt -> go (n + 1) ~seen_tail nxt
      | None ->
        if not seen_tail then
          failwith "ms-queue invariant: tail not reachable from head"
    in
    (match View.target (T.read th ~slot:slot_node t.head) with
     | None -> failwith "ms-queue invariant: null head"
     | Some dummy -> go 0 ~seen_tail:false dummy);
    T.end_op th

  let map = None

  let queue =
    Some
      {
        Ds_intf.enqueue;
        dequeue;
        peek;
        order = Ds_intf.Fifo;
        to_seq_list = to_list;
      }

  let range = None
  let bulk = None
end
