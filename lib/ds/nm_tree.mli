(** Natarajan–Mittal external (leaf-oriented) binary search tree (the
    paper's Fig. 8c structure): keys live in leaves, internal nodes
    route; deletion flags and tags edges before unlinking a leaf and
    its parent.

    Capabilities: [map] + [range] (bounded scans by repeated ceiling
    descent, one reservation across the whole scan).  Exposes exactly
    the {!Ds_intf.RIDEABLE} surface; the seek-record machinery and the
    edge flag/tag bits are internal. *)

open Ibr_core

module Make (T : Tracker_intf.TRACKER) : Ds_intf.RIDEABLE
