(* The ordered lock-free linked list of Harris [14] as refined by
   Michael [20] — the refinement matters here because Michael's
   version is compatible with hazard pointers: instead of Harris'
   batched physical deletion, marked nodes are unlinked one at a time
   during traversal, so a traversal holds at most three protected
   references (prev-node, cur, next).

   Marking: tag bit 1 on a node's [next] pointer marks the node as
   logically deleted.  A node is retired by whichever thread performs
   its physical unlink, after the unlink — satisfying the §4.1 proviso
   (all shared pointers to a block are overwritten before retire).

   The [Raw] operations take an explicit head cell so that Michael's
   hash map can reuse them per bucket. *)

open Ibr_core

let marked = 1

module Make (T : Tracker_intf.TRACKER) = struct
  let name = "harris-michael-list"
  let compatible (p : Tracker_intf.properties) = p.mutable_pointers
  let slots_needed = 3

  type node = {
    key : int;
    mutable value : int;
    next : node T.ptr;
  }

  type t = {
    tracker : node T.t;
    head : node T.ptr;
    cfg : Tracker_intf.config;
  }

  type handle = {
    list : t;
    th : node T.handle;
    stats : Ds_common.op_stats;
  }

  let create ~threads cfg =
    let tracker = T.create ~threads cfg in
    { tracker; head = T.make_ptr tracker None; cfg }

  let register list ~tid =
    { list; th = T.register list.tracker ~tid;
      stats = Ds_common.make_op_stats () }

  let attach list =
    match T.attach list.tracker with
    | None -> None
    | Some th -> Some { list; th; stats = Ds_common.make_op_stats () }

  let detach h = T.detach h.th
  let handle_tid h = T.handle_tid h.th

  (* Hazard-slot roles during traversal. *)
  let slot_prev = 0   (* node containing the [prev] cell *)
  let slot_cur = 1
  let slot_next = 2

  (* Michael's find: position (prev, cur) such that cur is the first
     node with key >= [key]; unlinks marked nodes encountered on the
     way.  Returns the prev cell, the view of cur stored in it, and,
     when cur is a real node, its block, payload and next-view. *)
  let find th head key =
    let rec walk prev curv =
      (* A marked box read from [prev] means prev's own node was
         logically deleted under us: its next pointer is frozen and
         must never be CASed back to an unmarked value (doing so would
         resurrect a dead path and permit double unlinks).  Restart
         from the head, as Michael's algorithm does. *)
      if View.tag curv = marked then raise Ds_common.Restart;
      match View.target curv with
      | None -> (prev, curv, None)
      | Some bcur ->
        let n = Block.get bcur in
        let nextv = T.read th ~slot:slot_next n.next in
        if View.tag nextv = marked then begin
          (* cur is logically deleted: unlink it before moving on.
             The helping CAS is idempotent, but the unlink-winner owes
             the retire — mask the pair so a neutralization cannot
             separate them (an unlinked-never-retired node would leak;
             no dereference happens inside). *)
          if
            Ds_common.committed (fun () ->
              if T.cas th prev ~expected:curv (View.target nextv) then begin
                !Ds_common.unlink_trace "helper" (Obj.repr prev)
                  (Obj.repr curv) (Block.id bcur) (Block.incarnation bcur);
                !Ds_common.retire_trace "find-helper" (Block.id bcur)
                  (Block.incarnation bcur);
                T.retire th bcur;
                true
              end
              else false)
          then walk prev (T.read th ~slot:slot_cur prev)
          else raise Ds_common.Restart
        end
        else if n.key >= key then (prev, curv, Some (bcur, n, nextv))
        else begin
          (* Advance hand over hand: cur's protection becomes prev's,
             next's becomes cur's. *)
          T.reassign th ~src:slot_cur ~dst:slot_prev;
          T.reassign th ~src:slot_next ~dst:slot_cur;
          walk n.next nextv
        end
    in
    walk head (T.read th ~slot:slot_cur head)

  module Raw = struct
    let insert tracker th head ~key ~value =
      let prev, curv, found = find th head key in
      match found with
      | Some (_, n, _) when n.key = key -> false
      | Some _ | None ->
        (* Mask from the allocation through the linearizing install
           CAS (and the loser's dealloc): a restart signal landing
           inside would either leak the fresh block or re-apply a
           successful insert.  No dereference happens inside. *)
        Ds_common.committed (fun () ->
          let b =
            T.alloc th
              { key; value; next = T.make_ptr tracker (View.target curv) }
          in
          if T.cas th prev ~expected:curv (Some b) then true
          else begin
            T.dealloc th b;
            raise Ds_common.Restart
          end)

    let remove _tracker th head ~key =
      let prev, curv, found = find th head key in
      match found with
      | Some (bcur, n, nextv) when n.key = key ->
        (* Mask from the linearizing mark CAS through the unlink and
           retire tail: once the mark lands the remove has happened,
           and a restart would remove a second key.  No dereference
           happens inside (the tail touches only pointer cells and
           blocks this thread owns-to-retire). *)
        Ds_common.committed (fun () ->
          (* Logical deletion: set the mark on cur's next pointer. *)
          if
            not
              (T.cas th n.next ~expected:nextv ~tag:marked
                 (View.target nextv))
          then raise Ds_common.Restart
          else begin
            (* Physical unlink; if it fails a later traversal helps. *)
            (if T.cas th prev ~expected:curv (View.target nextv) then begin
               !Ds_common.retire_trace "list-unlink" (Block.id bcur)
                 (Block.incarnation bcur);
               T.retire th bcur
             end);
            true
          end)
      | Some _ | None -> false

    let get _tracker th head ~key =
      let _, _, found = find th head key in
      match found with
      | Some (_, n, _) when n.key = key -> Some n.value
      | Some _ | None -> None
  end

  let wrap h f =
    Ds_common.with_op ~stats:h.stats
      ~start_op:(fun () -> T.start_op h.th)
      ~end_op:(fun () -> T.end_op h.th)
      ~on_neutralize:(fun () -> T.recover h.th)
      ~max_cas_failures:h.list.cfg.max_cas_failures
      f

  let insert h ~key ~value =
    wrap h (fun () -> Raw.insert h.list.tracker h.th h.list.head ~key ~value)

  let remove h ~key =
    wrap h (fun () -> Raw.remove h.list.tracker h.th h.list.head ~key)

  let get h ~key =
    wrap h (fun () -> Raw.get h.list.tracker h.th h.list.head ~key)

  let contains h ~key = get h ~key <> None

  (* Bounded ordered scan: one hand-over-hand traversal from the head,
     collecting unmarked keys in [lo, hi] and stopping at the first
     key past [hi].  The whole scan runs inside one operation bracket,
     so the reservation spans the full traversal — the long reader
     interval the RANGE capability exists to stress. *)
  let range_scan h ~lo ~hi =
    wrap h (fun () ->
      let th = h.th in
      let rec walk acc v =
        match View.target v with
        | None -> List.rev acc
        | Some b ->
          let n = Block.get b in
          if n.key > hi then List.rev acc
          else begin
            let nextv = T.read th ~slot:slot_next n.next in
            let acc =
              if n.key >= lo && View.tag nextv <> marked then
                (n.key, n.value) :: acc
              else acc
            in
            T.reassign th ~src:slot_cur ~dst:slot_prev;
            T.reassign th ~src:slot_next ~dst:slot_cur;
            walk acc nextv
          end
      in
      walk [] (T.read th ~slot:slot_cur h.list.head))

  (* For rigs (robustness demo) that stage a stalled or crashed reader
     by driving the tracker handle around the [with_op] bracket. *)
  let tracker_handle h = h.th
  let head t = t.head

  let retired_count h = T.retired_count h.th
  let force_empty h = T.force_empty h.th
  let allocator_stats t = Alloc.stats (T.allocator t.tracker)
  let reclaim_service t = T.reclaim_service t.tracker
  let epoch_value t = T.epoch_value t.tracker
  let set_capacity t cap = Alloc.set_capacity (T.allocator t.tracker) cap
  let eject t ~tid = T.eject t.tracker ~tid

  (* Sequential-context walk over a single chain; shared with the
     hash map's per-bucket dumps. *)
  let dump_chain tracker head =
    let th = T.register tracker ~tid:0 in
    T.start_op th;
    let rec walk acc v =
      match View.target v with
      | None -> List.rev acc
      | Some b ->
        let n = Block.get b in
        let nextv = T.read th ~slot:slot_next n.next in
        let acc =
          if View.tag nextv = marked then acc
          else (n.key, n.value) :: acc
        in
        walk acc nextv
    in
    let result = walk [] (T.read th ~slot:slot_cur head) in
    T.end_op th;
    result

  let check_chain tracker head =
    let th = T.register tracker ~tid:0 in
    T.start_op th;
    let rec walk last v =
      match View.target v with
      | None -> ()
      | Some b ->
        if Block.is_reclaimed b then
          failwith "harris-list invariant: reachable reclaimed block";
        let n = Block.get b in
        if n.key <= last then
          failwith "harris-list invariant: keys not strictly increasing";
        walk n.key (T.read th ~slot:slot_next n.next)
    in
    walk min_int (T.read th ~slot:slot_cur head);
    T.end_op th

  let to_sorted_list t = dump_chain t.tracker t.head
  let check_invariants t = check_chain t.tracker t.head

  let map =
    Some { Ds_intf.insert; remove; get; contains; to_sorted_list }

  let queue = None
  let range = Some { Ds_intf.range = range_scan }
  let bulk = None
end
