(** Michael's lock-free hash map (the paper's Fig. 8b structure): a
    fixed power-of-two bucket array of Harris–Michael chains sharing
    one tracker, with Fibonacci hashing to spread clustered keys. *)

open Ibr_core

module Make (T : Tracker_intf.TRACKER) : sig
  include Ds_intf.RIDEABLE

  val default_buckets : int

  val create_sized : ?buckets:int -> threads:int -> Tracker_intf.config -> t
  (** [create] with an explicit bucket count.  Raises
      [Invalid_argument] unless [buckets] is a positive power of two
      (the hash is masked, not reduced modulo). *)
end
