(* The operation wrapper shared by all structures.

   A data-structure method raises [Restart] when a CAS loses a race
   and the traversal must begin again.  The wrapper counts restarts
   and, after [max_cas_failures] of them, ends and re-starts the
   operation at the tracker level — refreshing the reservation's
   lower endpoint.  This is the paper's §4.3.1 fix: without it a
   *starving* (not stalled) thread could reserve an unbounded number
   of blocks. *)

exception Restart

type op_stats = {
  mutable ops : int;
  mutable restarts : int;
  mutable reservation_refreshes : int;
}

let make_op_stats () = { ops = 0; restarts = 0; reservation_refreshes = 0 }

let with_op ~stats ~start_op ~end_op ~max_cas_failures f =
  Ibr_obs.Probe.op_begin ();
  let rec attempt fails =
    match f () with
    | result -> result
    | exception Restart ->
      stats.restarts <- stats.restarts + 1;
      let fails = fails + 1 in
      if max_cas_failures > 0 && fails >= max_cas_failures then begin
        (* Starvation bound: drop and re-acquire the reservation. *)
        end_op ();
        start_op ();
        stats.reservation_refreshes <- stats.reservation_refreshes + 1;
        attempt 0
      end
      else attempt fails
  in
  (* [op_end] fires before [end_op] on both arms: [end_op] charges
     virtual time, i.e. a preemption point where the horizon can
     unwind the fiber a second time, and the span must already be
     closed by then (probes never step).  For the same reason
     [start_op] sits inside the match, so an unwind during it still
     reaches the closing probe.  Crashed fibers never reach either
     arm: their op span stays open in the trace, which the exporter
     and validator tolerate. *)
  match
    start_op ();
    stats.ops <- stats.ops + 1;
    attempt 0
  with
  | result ->
    Ibr_obs.Probe.op_end ();
    end_op ();
    result
  | exception e ->
    Ibr_obs.Probe.op_end ();
    end_op ();
    raise e

(* Debug hook: invoked before every retire a data structure performs,
   with (site, block id, incarnation).  Used by fault-diagnosis tests;
   a no-op in production. *)
let retire_trace : (string -> int -> int -> unit) ref = ref (fun _ _ _ -> ())

(* Companion debug hook passing the raw prev cell and expected box. *)
let unlink_trace : (string -> Obj.t -> Obj.t -> int -> int -> unit) ref =
  ref (fun _ _ _ _ _ -> ())
