(* The operation wrapper shared by all structures.

   A data-structure method raises [Restart] when a CAS loses a race
   and the traversal must begin again.  The wrapper counts restarts
   and, after [max_cas_failures] of them, ends and re-starts the
   operation at the tracker level — refreshing the reservation's
   lower endpoint.  This is the paper's §4.3.1 fix: without it a
   *starving* (not stalled) thread could reserve an unbounded number
   of blocks.

   The wrapper is also the neutralization checkpoint (DEBRA+,
   DESIGN.md §12).  A watchdog may deliver [Fault.Neutralized] into a
   thread mid-operation; the attempt unwinds to here, [on_neutralize]
   re-establishes protection (the tracker's [recover]: drop
   reservations, flush handoff scratch, re-protect), and the attempt
   retries from scratch — the thread keeps working.

   Delivery is gated on a per-thread *restart window*
   ([Hooks.restart_window]), open exactly while an attempt body runs.
   The window is what makes restart-from-scratch sound: an operation
   that has passed its linearization point but still has charged
   steps left (e.g. Harris remove's unlink-and-retire tail) masks the
   window with [committed], so the signal stays pending and lands at
   the next attempt boundary instead of double-applying the op. *)

exception Restart

type op_stats = {
  mutable ops : int;
  mutable restarts : int;
  mutable reservation_refreshes : int;
  mutable neutralizations : int;
}

let make_op_stats () =
  { ops = 0; restarts = 0; reservation_refreshes = 0; neutralizations = 0 }

(* Mask the caller's restart window across [f]: any neutralization
   signal stays pending rather than unwinding [f].  Data structures
   wrap every linearizing CAS *and the rest of the operation after
   it* in this bracket — once the op has logically happened, a
   restart would apply it twice.  Masked sections must not perform
   guarded dereferences ([Block.get]): a pending signal means the
   thread's reservations may already be expired. *)
let committed f =
  let open Ibr_runtime in
  let prev = Hooks.restart_window false in
  Fun.protect ~finally:(fun () -> ignore (Hooks.restart_window prev)) f

let with_op ~stats ~start_op ~end_op ~on_neutralize ~max_cas_failures f =
  let open Ibr_runtime in
  Ibr_obs.Probe.op_begin ();
  (* Open the restart window for exactly the attempt body; [end_op] /
     [start_op] bookkeeping between attempts runs masked. *)
  let guarded_f () =
    let prev = Hooks.restart_window true in
    Fun.protect ~finally:(fun () -> ignore (Hooks.restart_window prev)) f
  in
  let rec attempt fails =
    match guarded_f () with
    | result -> result
    | exception Restart ->
      stats.restarts <- stats.restarts + 1;
      let fails = fails + 1 in
      if max_cas_failures > 0 && fails >= max_cas_failures then begin
        (* Starvation bound: drop and re-acquire the reservation. *)
        end_op ();
        start_op ();
        stats.reservation_refreshes <- stats.reservation_refreshes + 1;
        attempt 0
      end
      else attempt fails
    | exception Hooks.Neutralized ->
      (* The restart signal: recovery re-protects (tracker [recover]
         — NOT a plain [start_op], which would leak the dropped
         state), then the attempt re-runs from scratch.  The fail
         budget resets: a neutralization already refreshed the
         reservation. *)
      stats.neutralizations <- stats.neutralizations + 1;
      on_neutralize ();
      attempt 0
  in
  (* [op_end] fires before [end_op] on both arms: [end_op] charges
     virtual time, i.e. a preemption point where the horizon can
     unwind the fiber a second time, and the span must already be
     closed by then (probes never step).  For the same reason
     [start_op] sits inside the match, so an unwind during it still
     reaches the closing probe.  Crashed fibers never reach either
     arm: their op span stays open in the trace, which the exporter
     and validator tolerate. *)
  match
    start_op ();
    stats.ops <- stats.ops + 1;
    attempt 0
  with
  | result ->
    Ibr_obs.Probe.op_end ();
    end_op ();
    result
  | exception e ->
    Ibr_obs.Probe.op_end ();
    end_op ();
    raise e

(* Debug hook: invoked before every retire a data structure performs,
   with (site, block id, incarnation).  Used by fault-diagnosis tests;
   a no-op in production. *)
let retire_trace : (string -> int -> int -> unit) ref = ref (fun _ _ _ -> ())

(* Companion debug hook passing the raw prev cell and expected box. *)
let unlink_trace : (string -> Obj.t -> Obj.t -> int -> int -> unit) ref =
  ref (fun _ _ _ _ _ -> ())
