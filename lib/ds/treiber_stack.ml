(* Treiber's lock-free stack [26] — the paper's §3.1 example of a
   persistent structure (immutable [next] pointers, all mutation
   through the top-of-stack pointer), and the simplest illustration
   of the reclamation problem: a pop must not free a node another
   thread's pop is still inspecting.

   Not part of the figure lineup (the paper benchmarks maps); used by
   the quickstart, the POIBR examples, and the tests. *)

open Ibr_core

module Make (T : Tracker_intf.TRACKER) = struct
  let name = "treiber-stack"
  let compatible (_ : Tracker_intf.properties) = true
  let slots_needed = 2

  type node = {
    value : int;
    next : node T.ptr;    (* immutable after construction *)
  }

  type t = {
    tracker : node T.t;
    top : node T.ptr;
    cfg : Tracker_intf.config;
  }

  type handle = {
    stack : t;
    th : node T.handle;
    stats : Ds_common.op_stats;
  }

  let create ~threads cfg =
    let tracker = T.create ~threads cfg in
    { tracker; top = T.make_ptr tracker None; cfg }

  let register stack ~tid =
    { stack; th = T.register stack.tracker ~tid;
      stats = Ds_common.make_op_stats () }

  let attach stack =
    match T.attach stack.tracker with
    | None -> None
    | Some th -> Some { stack; th; stats = Ds_common.make_op_stats () }

  let detach h = T.detach h.th
  let handle_tid h = T.handle_tid h.th

  let wrap h f =
    Ds_common.with_op ~stats:h.stats
      ~start_op:(fun () -> T.start_op h.th)
      ~end_op:(fun () -> T.end_op h.th)
      ~on_neutralize:(fun () -> T.recover h.th)
      ~max_cas_failures:h.stack.cfg.max_cas_failures
      f

  let push h value =
    wrap h (fun () ->
      let rec attempt () =
        let topv = T.read_root h.th h.stack.top in
        (* Mask allocation through the linearizing CAS (and the
           loser's dealloc): a restart signal inside would leak the
           fresh node or re-push a landed one.  The top re-read on
           failure stays outside, restartable. *)
        let ok =
          Ds_common.committed (fun () ->
            let b =
              T.alloc h.th
                { value;
                  next = T.make_ptr h.stack.tracker (View.target topv) }
            in
            if T.cas h.th h.stack.top ~expected:topv (Some b) then true
            else begin
              T.dealloc h.th b;
              false
            end)
        in
        if not ok then attempt ()
      in
      attempt ())

  let pop h =
    wrap h (fun () ->
      let rec attempt () =
        let topv = T.read_root h.th h.stack.top in
        match View.target topv with
        | None -> None
        | Some b ->
          let n = Block.get b in
          (* Slot 1: slot 0 still protects [b] (its cell is read during
             validation of this next-read). *)
          let nextv = T.read h.th ~slot:1 n.next in
          (* Mask the linearizing swing and the winner's retire as one
             unit: a restarted successful pop would pop twice, and a
             neutralization between CAS and retire would leak the
             node.  No dereference inside ([n] is already loaded). *)
          if
            Ds_common.committed (fun () ->
              if T.cas h.th h.stack.top ~expected:topv (View.target nextv)
              then begin
                T.retire h.th b;
                true
              end
              else false)
          then Some n.value
          else attempt ()
      in
      attempt ())

  let peek h =
    wrap h (fun () ->
      let topv = T.read_root h.th h.stack.top in
      match View.target topv with
      | None -> None
      | Some b -> Some (Block.get b).value)

  let is_empty h = peek h = None

  let retired_count h = T.retired_count h.th
  let force_empty h = T.force_empty h.th
  let allocator_stats t = Alloc.stats (T.allocator t.tracker)
  let reclaim_service t = T.reclaim_service t.tracker
  let epoch_value t = T.epoch_value t.tracker
  let set_capacity t cap = Alloc.set_capacity (T.allocator t.tracker) cap
  let eject t ~tid = T.eject t.tracker ~tid

  (* Sequential-context dump, top first. *)
  let to_list t =
    let th = T.register t.tracker ~tid:0 in
    T.start_op th;
    let rec go acc v =
      match View.target v with
      | None -> List.rev acc
      | Some b ->
        let n = Block.get b in
        go (n.value :: acc) (T.read th ~slot:0 n.next)
    in
    let r = go [] (T.read th ~slot:0 t.top) in
    T.end_op th;
    r

  (* Quiescent structural check: the chain from [top] is acyclic
     (bounded by the allocator's live count) and touches no reclaimed
     block. *)
  let check_invariants t =
    let th = T.register t.tracker ~tid:0 in
    T.start_op th;
    let limit = (Alloc.stats (T.allocator t.tracker)).live + 1 in
    let rec go n v =
      match View.target v with
      | None -> ()
      | Some b ->
        if n > limit then
          failwith "treiber-stack invariant: chain longer than live count";
        if Block.is_reclaimed b then
          failwith "treiber-stack invariant: reachable reclaimed block";
        go (n + 1) (T.read th ~slot:0 (Block.get b).next)
    in
    go 0 (T.read th ~slot:0 t.top);
    T.end_op th

  let map = None

  let queue =
    Some
      {
        Ds_intf.enqueue = push;
        dequeue = pop;
        peek;
        order = Ds_intf.Lifo;
        to_seq_list = to_list;
      }

  let range = None
  let bulk = None
end
