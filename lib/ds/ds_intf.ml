(* Capability-based interface of the benchmark data structures
   ("rideables").

   The paper's four structures are all key-value maps, but the
   workloads that separate the scheme families are not map-shaped:
   retire-at-head queue churn, wholesale bucket-array retirement, and
   long-interval range scans.  So the rideable surface is split in
   two: a core [RIDEABLE] signature carrying everything tracker-facing
   (lifecycle, census churn, observability, fault hooks), plus
   optional capability records — [map_ops], [queue_ops], [range_ops],
   [bulk_ops] — each exposed as an [option] so the workload driver,
   the model-based tests, and the figure harness select operations by
   capability instead of assuming a map. *)

open Ibr_core

type caps = {
  map : bool;  (* keyed insert/remove/get/contains *)
  queue : bool;  (* enqueue/dequeue (FIFO or LIFO) *)
  range : bool;  (* bounded ordered scans *)
  bulk : bool;  (* operations that retire whole arrays *)
}

let no_caps = { map = false; queue = false; range = false; bulk = false }

let caps_to_string c =
  let flag b name = if b then [ name ] else [] in
  match
    flag c.map "map" @ flag c.queue "queue" @ flag c.range "range"
    @ flag c.bulk "bulk"
  with
  | [] -> "-"
  | l -> String.concat "+" l

(* Keyed-map operations.  Each call is one application operation: it
   brackets itself in start_op/end_op and restarts with a fresh
   reservation after [max_cas_failures] failed CASes (§4.3.1).
   [to_sorted_list] is a sequential-context helper (quiescent
   structure only). *)
type ('t, 'h) map_ops = {
  insert : 'h -> key:int -> value:int -> bool;
  remove : 'h -> key:int -> bool;
  get : 'h -> key:int -> int option;
  contains : 'h -> key:int -> bool;
  to_sorted_list : 't -> (int * int) list;
}

(* Producer/consumer operations.  [order] names the discipline the
   structure honors ([Fifo] for the Michael-Scott queue, [Lifo] for
   the Treiber stack) so oracles know what sequence to check.
   [to_seq_list] dumps front-first (next-out first), sequential
   context only. *)
type order = Fifo | Lifo

type ('t, 'h) queue_ops = {
  enqueue : 'h -> int -> unit;
  dequeue : 'h -> int option;
  peek : 'h -> int option;
  order : order;
  to_seq_list : 't -> int list;
}

(* Bounded ordered scan: every (key, value) with [lo <= key <= hi],
   ascending, linearized at some point during the call.  Scans hold
   their reservation across the whole traversal — the long reader
   interval that is the interval family's worst case. *)
type 'h range_ops = { range : 'h -> lo:int -> hi:int -> (int * int) list }

(* Bulk retirement: [migrate] forces one structural migration that
   retires a whole backing array through the tracker (returns [false]
   when the structure is already at its growth cap); [table_length]
   reports the current backing-array length, sequential context. *)
type ('t, 'h) bulk_ops = {
  migrate : 'h -> bool;
  table_length : 't -> int;
}

module type RIDEABLE = sig
  val name : string

  val compatible : Tracker_intf.properties -> bool
  (* Whether this structure can run under a scheme with the given
     properties (e.g. the Bonsai tree excludes HP/HE because
     rebalancing needs unboundedly many reservations — the same
     exclusion as the paper's Fig. 8d). *)

  val slots_needed : int

  type t
  type handle

  val create : threads:int -> Tracker_intf.config -> t
  val register : t -> tid:int -> handle

  (* Dynamic thread churn (DESIGN.md §10): claim a free census slot /
     release it again.  [attach] returns [None] when every slot is
     taken; [detach]'s caller must be between operations; do not mix
     with fixed-census [register] on the same instance. *)
  val attach : t -> handle option
  val detach : handle -> unit
  val handle_tid : handle -> int

  (* Observability for the harness and tests. *)
  val retired_count : handle -> int
  val force_empty : handle -> unit
  val allocator_stats : t -> Alloc.stats
  val epoch_value : t -> int

  val reclaim_service : t -> Handoff.service option
  (* The underlying tracker's background-reclaim service, when the
     tracker was created with [background_reclaim = true]; the runner
     drives it from a dedicated fiber/domain. *)

  (* Fault-injection hooks (see DESIGN.md §7): cap the underlying
     allocator's footprint, and expire a dead thread's reservations. *)
  val set_capacity : t -> int option -> unit
  val eject : t -> tid:int -> unit

  val check_invariants : t -> unit
  (* Sequential-context structural check (quiescent structure only). *)

  (* The capability surface: [None] = the structure cannot express
     the operation family, and the registry advertises the absence. *)
  val map : (t, handle) map_ops option
  val queue : (t, handle) queue_ops option
  val range : handle range_ops option
  val bulk : (t, handle) bulk_ops option
end

module type MAKER = functor (T : Tracker_intf.TRACKER) -> RIDEABLE

(* Capability flags derived from the module's exports; the registry's
   declared flags are qcheck'd against this. *)
let caps_of (module S : RIDEABLE) =
  {
    map = Option.is_some S.map;
    queue = Option.is_some S.queue;
    range = Option.is_some S.range;
    bulk = Option.is_some S.bulk;
  }

(* [subsumes have need]: every capability [need] asks for, [have]
   provides. *)
let subsumes have need =
  (have.map || not need.map)
  && (have.queue || not need.queue)
  && (have.range || not need.range)
  && (have.bulk || not need.bulk)
