(* A lock-free variant of the Bonsai tree [6]: a *persistent*
   weight-balanced binary search tree under a single mutable root
   pointer, the paper's fourth rideable (Fig. 8d/9d).

   Persistence discipline (§3.1): every pointer except the root is
   immutable — an update builds a new path (plus rebalancing copies)
   that shares everything else with the old version, then CASes the
   root.  On success the superseded nodes are retired; on failure the
   speculative nodes are deallocated unpublished.  This is exactly the
   structure POIBR exploits: one guarded root read covers everything
   reachable.

   Balancing is Adams' weight-balanced scheme (the one in Haskell's
   Data.Map): subtree sizes are stored in nodes; a node is rebuilt
   with single/double rotations when one side outweighs the other by
   more than [delta].

   HP and HE are excluded, as in the paper: a lookup or rebuild
   traverses an unbounded number of nodes, which per-pointer schemes
   cannot cover with a fixed slot budget. *)

open Ibr_core

let delta = 3    (* imbalance trigger *)
let ratio = 2    (* single vs. double rotation *)

module Make (T : Tracker_intf.TRACKER) = struct
  let name = "bonsai-tree"
  let compatible (p : Tracker_intf.properties) = not p.bounded_slots
  let slots_needed = 1

  type node = {
    key : int;
    value : int;
    size : int;                (* nodes in this subtree, self included *)
    left : node T.ptr;         (* immutable after construction *)
    right : node T.ptr;
  }

  type t = {
    tracker : node T.t;
    root : node T.ptr;         (* the only mutable pointer *)
    cfg : Tracker_intf.config;
  }

  type handle = {
    tree : t;
    th : node T.handle;
    stats : Ds_common.op_stats;
  }

  let create ~threads cfg =
    let tracker = T.create ~threads cfg in
    { tracker; root = T.make_ptr tracker None; cfg }

  let register tree ~tid =
    { tree; th = T.register tree.tracker ~tid;
      stats = Ds_common.make_op_stats () }

  let attach tree =
    match T.attach tree.tracker with
    | None -> None
    | Some th -> Some { tree; th; stats = Ds_common.make_op_stats () }

  let detach h = T.detach h.th
  let handle_tid h = T.handle_tid h.th

  (* Per-operation rewrite context: which blocks were allocated by
     this attempt, which existing blocks it supersedes, and which of
     its own allocations it consumed while rebalancing. *)
  type ctx = {
    mutable created : node Block.t list;
    mutable replaced : node Block.t list;
    mutable discarded : node Block.t list;
  }

  let size_of = function
    | None -> 0
    | Some b -> (Block.get b).size

  let child h edge = View.target (T.read h.th ~slot:0 edge)

  (* Consume [b] during a rotation: a node of ours is discarded, an
     original is superseded. *)
  let consume ctx b =
    if List.memq b ctx.created then ctx.discarded <- b :: ctx.discarded
    else ctx.replaced <- b :: ctx.replaced

  let mk h ctx ~left ~key ~value ~right =
    let size = 1 + size_of left + size_of right in
    let b =
      T.alloc h.th
        { key; value; size;
          left = T.make_ptr h.tree.tracker left;
          right = T.make_ptr h.tree.tracker right }
    in
    ctx.created <- b :: ctx.created;
    b

  (* Rebuild a node from parts, restoring the weight invariant.  The
     shapes follow Adams: rotate toward the light side; double-rotate
     when the inner grandchild is the heavy one. *)
  let balance h ctx ~left ~key ~value ~right =
    let ls = size_of left and rs = size_of right in
    if ls + rs <= 1 then mk h ctx ~left ~key ~value ~right
    else if rs > delta * ls then begin
      let rb = Option.get right in
      let rn = Block.get rb in
      let rl = child h rn.left and rr = child h rn.right in
      consume ctx rb;
      if size_of rl < ratio * size_of rr then
        (* single left rotation *)
        let inner = mk h ctx ~left ~key ~value ~right:rl in
        mk h ctx ~left:(Some inner) ~key:rn.key ~value:rn.value ~right:rr
      else begin
        (* double left rotation through rl *)
        let rlb = Option.get rl in
        let rln = Block.get rlb in
        let rll = child h rln.left and rlr = child h rln.right in
        consume ctx rlb;
        let a = mk h ctx ~left ~key ~value ~right:rll in
        let b = mk h ctx ~left:rlr ~key:rn.key ~value:rn.value ~right:rr in
        mk h ctx ~left:(Some a) ~key:rln.key ~value:rln.value ~right:(Some b)
      end
    end
    else if ls > delta * rs then begin
      let lb = Option.get left in
      let ln = Block.get lb in
      let ll = child h ln.left and lr = child h ln.right in
      consume ctx lb;
      if size_of lr < ratio * size_of ll then
        let inner = mk h ctx ~left:lr ~key ~value ~right in
        mk h ctx ~left:ll ~key:ln.key ~value:ln.value ~right:(Some inner)
      else begin
        let lrb = Option.get lr in
        let lrn = Block.get lrb in
        let lrl = child h lrn.left and lrr = child h lrn.right in
        consume ctx lrb;
        let a = mk h ctx ~left:ll ~key:ln.key ~value:ln.value ~right:lrl in
        let b = mk h ctx ~left:lrr ~key ~value ~right in
        mk h ctx ~left:(Some a) ~key:lrn.key ~value:lrn.value ~right:(Some b)
      end
    end
    else mk h ctx ~left ~key ~value ~right

  exception Unchanged
  (* The operation is a no-op (insert of a present key / remove of an
     absent one); raised before anything is allocated. *)

  let rec insert_at h ctx key value = function
    | None -> mk h ctx ~left:None ~key ~value ~right:None
    | Some b ->
      let n = Block.get b in
      if key = n.key then raise Unchanged
      else begin
        consume ctx b;
        if key < n.key then
          let l' = insert_at h ctx key value (child h n.left) in
          balance h ctx ~left:(Some l') ~key:n.key ~value:n.value
            ~right:(child h n.right)
        else
          let r' = insert_at h ctx key value (child h n.right) in
          balance h ctx ~left:(child h n.left) ~key:n.key ~value:n.value
            ~right:(Some r')
      end

  (* Remove and return the minimum of a non-empty subtree. *)
  let rec take_min h ctx b =
    let n = Block.get b in
    consume ctx b;
    match child h n.left with
    | None -> ((n.key, n.value), child h n.right)
    | Some lb ->
      let (kv, l') = take_min h ctx lb in
      (kv, Some (balance h ctx ~left:l' ~key:n.key ~value:n.value
                   ~right:(child h n.right)))

  let rec remove_at h ctx key = function
    | None -> raise Unchanged
    | Some b ->
      let n = Block.get b in
      if key = n.key then begin
        consume ctx b;
        match child h n.left, child h n.right with
        | None, r -> r
        | l, None -> l
        | l, Some rb ->
          let ((k, v), r') = take_min h ctx rb in
          Some (balance h ctx ~left:l ~key:k ~value:v ~right:r')
      end
      else begin
        consume ctx b;
        if key < n.key then
          let l' = remove_at h ctx key (child h n.left) in
          Some (balance h ctx ~left:l' ~key:n.key ~value:n.value
                  ~right:(child h n.right))
        else
          let r' = remove_at h ctx key (child h n.right) in
          Some (balance h ctx ~left:(child h n.left) ~key:n.key
                  ~value:n.value ~right:r')
      end

  let wrap h f =
    Ds_common.with_op ~stats:h.stats
      ~start_op:(fun () -> T.start_op h.th)
      ~end_op:(fun () -> T.end_op h.th)
      ~on_neutralize:(fun () -> T.recover h.th)
      ~max_cas_failures:h.tree.cfg.max_cas_failures
      f

  (* Run one copy-and-swing-root update. *)
  let update h rewrite =
    let ctx = { created = []; replaced = []; discarded = [] } in
    let rootv = T.read_root h.th h.tree.root in
    match rewrite ctx (View.target rootv) with
    | exception Unchanged -> false
    | exception Fault.Neutralized ->
      (* The rewrite traverses the shared version, so it cannot be
         masked; instead free the speculative (still-private) nodes
         before the attempt unwinds.  Masked, so a second signal
         cannot land mid-cleanup; touches only blocks we own. *)
      Ds_common.committed (fun () ->
        List.iter (fun b -> T.dealloc h.th b) ctx.created);
      raise Fault.Neutralized
    | new_root ->
      (* Mask the linearizing root swing together with its tail: a
         restart after the CAS would re-apply the update, and a signal
         between the CAS and the retires would leak the superseded
         version.  No dereference happens inside. *)
      Ds_common.committed (fun () ->
        if T.cas h.th h.tree.root ~expected:rootv new_root then begin
          List.iter (fun b -> T.retire h.th b) ctx.replaced;
          List.iter (fun b -> T.dealloc h.th b) ctx.discarded;
          true
        end
        else begin
          List.iter (fun b -> T.dealloc h.th b) ctx.created;
          raise Ds_common.Restart
        end)

  let insert h ~key ~value =
    wrap h (fun () ->
      update h (fun ctx root ->
        Some (insert_at h ctx key value root)))

  let remove h ~key =
    wrap h (fun () -> update h (fun ctx root -> remove_at h ctx key root))

  let get h ~key =
    wrap h (fun () ->
      let rootv = T.read_root h.th h.tree.root in
      let rec go = function
        | None -> None
        | Some b ->
          let n = Block.get b in
          if key = n.key then Some n.value
          else if key < n.key then go (child h n.left)
          else go (child h n.right)
      in
      go (View.target rootv))

  let contains h ~key = get h ~key <> None

  (* Bounded ordered scan: one guarded root read pins the whole
     version (persistence — everything reachable is immutable), then a
     pure pruned in-order descent collects [lo, hi].  The reservation
     spans the whole scan, and under POIBR the single root read is all
     the protection the traversal needs. *)
  let range_scan h ~lo ~hi =
    wrap h (fun () ->
      let rootv = T.read_root h.th h.tree.root in
      let rec go acc = function
        | None -> acc
        | Some b ->
          let n = Block.get b in
          let acc =
            if n.key < hi then go acc (child h n.right) else acc in
          let acc =
            if lo <= n.key && n.key <= hi then (n.key, n.value) :: acc
            else acc
          in
          if n.key > lo then go acc (child h n.left) else acc
      in
      go [] (View.target rootv))

  let retired_count h = T.retired_count h.th
  let force_empty h = T.force_empty h.th
  let allocator_stats t = Alloc.stats (T.allocator t.tracker)
  let reclaim_service t = T.reclaim_service t.tracker
  let epoch_value t = T.epoch_value t.tracker
  let set_capacity t cap = Alloc.set_capacity (T.allocator t.tracker) cap
  let eject t ~tid = T.eject t.tracker ~tid

  let with_temp_handle t f =
    let h = register t ~tid:0 in
    T.start_op h.th;
    let r = f h in
    T.end_op h.th;
    r

  let to_sorted_list t =
    with_temp_handle t (fun h ->
      (* Right-to-left in-order with an accumulator yields ascending
         key order directly. *)
      let rec go acc = function
        | None -> acc
        | Some b ->
          let n = Block.get b in
          let acc = go acc (child h n.right) in
          go ((n.key, n.value) :: acc) (child h n.left)
      in
      go [] (View.target (T.read_root h.th t.root)))

  (* BST order, size bookkeeping, weight balance, and liveness of the
     whole reachable version. *)
  let check_invariants t =
    with_temp_handle t (fun h ->
      let rec go ~lo ~hi = function
        | None -> 0
        | Some b ->
          if Block.is_reclaimed b then
            failwith "bonsai invariant: reachable reclaimed block";
          let n = Block.get b in
          if not (lo < n.key && n.key < hi) then
            failwith "bonsai invariant: keys out of order";
          let ls = go ~lo ~hi:n.key (child h n.left) in
          let rs = go ~lo:n.key ~hi (child h n.right) in
          if n.size <> ls + rs + 1 then
            failwith "bonsai invariant: size field wrong";
          if ls + rs > 1 && (ls > delta * rs || rs > delta * ls) then
            failwith "bonsai invariant: weight balance violated";
          n.size
      in
      ignore (go ~lo:min_int ~hi:max_int
                (View.target (T.read_root h.th t.root))))

  let map =
    Some { Ds_intf.insert; remove; get; contains; to_sorted_list }

  let queue = None
  let range = Some { Ds_intf.range = range_scan }
  let bulk = None
end
