(* Michael's lock-free hash map [20]: a fixed array of buckets, each
   an ordered lock-free list.  All buckets share one tracker instance
   (one epoch, one reservation table, one allocator), exactly as one
   memory manager serves a whole structure in the paper's framework.

   The bucket count is fixed at creation (Michael's original design;
   resizing is out of scope for the paper's benchmark, which uses a
   fixed key range). *)

open Ibr_core

module Make (T : Tracker_intf.TRACKER) = struct
  module L = Harris_list.Make (T)

  let name = "michael-hashmap"
  let compatible (p : Tracker_intf.properties) = p.mutable_pointers
  let slots_needed = L.slots_needed

  (* Power of two sized table; the paper's key range is 2^16 and its
     load factor is modest, so default to 2^12 buckets. *)
  let default_buckets = 4096

  type t = {
    tracker : L.node T.t;
    buckets : L.node T.ptr array;
    mask : int;
    cfg : Tracker_intf.config;
  }

  type handle = {
    map : t;
    th : L.node T.handle;
    stats : Ds_common.op_stats;
  }

  let create_sized ?(buckets = default_buckets) ~threads cfg =
    if buckets land (buckets - 1) <> 0 || buckets <= 0 then
      invalid_arg "Michael_hashmap.create: buckets must be a power of two";
    let tracker = T.create ~threads cfg in
    {
      tracker;
      buckets = Array.init buckets (fun _ -> T.make_ptr tracker None);
      mask = buckets - 1;
      cfg;
    }

  let create ~threads cfg = create_sized ~threads cfg

  let register map ~tid =
    { map; th = T.register map.tracker ~tid;
      stats = Ds_common.make_op_stats () }

  let attach map =
    match T.attach map.tracker with
    | None -> None
    | Some th -> Some { map; th; stats = Ds_common.make_op_stats () }

  let detach h = T.detach h.th
  let handle_tid h = T.handle_tid h.th

  (* Fibonacci hashing: spreads the benchmark's uniform keys and, more
     importantly, adversarially clustered keys across buckets. *)
  let bucket_of t key =
    let h = key * 0x2545F4914F6CDD1D in
    (h lsr 11) land t.mask

  (* The linearization-point masking lives in the bucket operations
     ([Harris_list.Raw]); this wrapper only owes the recovery hook. *)
  let wrap h f =
    Ds_common.with_op ~stats:h.stats
      ~start_op:(fun () -> T.start_op h.th)
      ~end_op:(fun () -> T.end_op h.th)
      ~on_neutralize:(fun () -> T.recover h.th)
      ~max_cas_failures:h.map.cfg.max_cas_failures
      f

  let insert h ~key ~value =
    let head = h.map.buckets.(bucket_of h.map key) in
    wrap h (fun () -> L.Raw.insert h.map.tracker h.th head ~key ~value)

  let remove h ~key =
    let head = h.map.buckets.(bucket_of h.map key) in
    wrap h (fun () -> L.Raw.remove h.map.tracker h.th head ~key)

  let get h ~key =
    let head = h.map.buckets.(bucket_of h.map key) in
    wrap h (fun () -> L.Raw.get h.map.tracker h.th head ~key)

  let contains h ~key = get h ~key <> None

  let retired_count h = T.retired_count h.th
  let force_empty h = T.force_empty h.th
  let allocator_stats t = Alloc.stats (T.allocator t.tracker)
  let reclaim_service t = T.reclaim_service t.tracker
  let epoch_value t = T.epoch_value t.tracker
  let set_capacity t cap = Alloc.set_capacity (T.allocator t.tracker) cap
  let eject t ~tid = T.eject t.tracker ~tid

  let to_sorted_list t =
    Array.to_list t.buckets
    |> List.concat_map (fun head -> L.dump_chain t.tracker head)
    |> List.sort (fun (a, _) (b, _) -> compare a b)

  let check_invariants t =
    Array.iter (fun head -> L.check_chain t.tracker head) t.buckets

  let map =
    Some { Ds_intf.insert; remove; get; contains; to_sorted_list }

  let queue = None
  let range = None
  let bulk = None
end
