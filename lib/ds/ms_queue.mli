(** Michael–Scott lock-free FIFO queue — the retire-at-head churn
    rideable: every dequeue retires the node the whole consumer side
    is spinning on.

    Capabilities: [queue] with [Fifo] order.  A dequeue helps [tail]
    past the outgoing dummy before swinging [head], so a lagging tail
    can never be left pointing at a retired node (the UAF the
    [queue_dequeue_churn] model-check scenario certifies).  The
    queue-shaped surface is also exported directly for tests. *)

open Ibr_core

module Make (T : Tracker_intf.TRACKER) : sig
  include Ds_intf.RIDEABLE

  val enqueue : handle -> int -> unit
  val dequeue : handle -> int option
  val peek : handle -> int option
  val is_empty : handle -> bool

  val to_list : t -> int list
  (** Sequential-context dump, front (next-out) first (quiescent
      structure only). *)
end
