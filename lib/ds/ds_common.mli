(** The operation wrapper shared by all structures: restart counting
    and the §4.3.1 starvation bound (reservation refresh after
    [max_cas_failures] lost CASes). *)

exception Restart
(** Raised by a data-structure method when a CAS loses a race and the
    traversal must begin again. *)

type op_stats = {
  mutable ops : int;
  mutable restarts : int;
  mutable reservation_refreshes : int;
  mutable neutralizations : int;
}

val make_op_stats : unit -> op_stats

val committed : (unit -> 'a) -> 'a
(** Mask the caller's restart window across [f] (DESIGN.md §12): a
    neutralization signal delivered meanwhile stays pending instead
    of unwinding [f].  Data structures wrap every linearizing CAS and
    the remainder of the operation after it in this bracket — once
    the operation has logically happened, restarting would apply it
    twice.  Masked code must not perform guarded dereferences
    ([Block.get]). *)

val with_op :
  stats:op_stats -> start_op:(unit -> unit) -> end_op:(unit -> unit) ->
  on_neutralize:(unit -> unit) ->
  max_cas_failures:int -> (unit -> 'a) -> 'a
(** Run one application operation, re-entering [f] on {!Restart} and
    dropping/re-acquiring the reservation after [max_cas_failures]
    consecutive restarts (0 disables the bound).  [end_op] runs on
    both normal and exceptional exit.

    [f] runs with the restart window open: {!Fault.Neutralized}
    delivered inside it unwinds the attempt, [on_neutralize] runs
    (pass the tracker's [recover] for the operating handle — it must
    drop {e and re-establish} protection), and the attempt retries
    from scratch.  Restartability up to the first linearization point
    is [f]'s obligation; from there on it must mask with
    {!committed}. *)

val retire_trace : (string -> int -> int -> unit) ref
(** Debug hook invoked before every retire a data structure performs,
    with (site, block id, incarnation).  A no-op in production. *)

val unlink_trace : (string -> Obj.t -> Obj.t -> int -> int -> unit) ref
(** Companion debug hook passing the raw prev cell and expected box. *)
