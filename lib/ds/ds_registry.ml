(* Instantiate rideables over reclamation schemes by name — the OCaml
   analogue of the artifact's rideable menu.  A [maker] closes over a
   functor application and advertises the rideable's capability set,
   so the harness can pick operations (and reject mixes) by capability
   without instantiating anything. *)

open Ibr_core

type maker = {
  ds_name : string;
  caps : Ds_intf.caps;
  instantiate : Tracker_intf.packed -> (module Ds_intf.RIDEABLE);
}

let list_maker = {
  ds_name = "list";
  caps = { Ds_intf.no_caps with map = true; range = true };
  instantiate =
    (fun (module T : Tracker_intf.TRACKER) ->
       (module Harris_list.Make (T) : Ds_intf.RIDEABLE));
}

let hashmap_maker = {
  ds_name = "hashmap";
  caps = { Ds_intf.no_caps with map = true };
  instantiate =
    (fun (module T : Tracker_intf.TRACKER) ->
       (module Michael_hashmap.Make (T) : Ds_intf.RIDEABLE));
}

let rhashmap_maker = {
  ds_name = "rhashmap";
  caps = { Ds_intf.no_caps with map = true; bulk = true };
  instantiate =
    (fun (module T : Tracker_intf.TRACKER) ->
       (module Resizable_hashmap.Make (T) : Ds_intf.RIDEABLE));
}

let nm_tree_maker = {
  ds_name = "nmtree";
  caps = { Ds_intf.no_caps with map = true; range = true };
  instantiate =
    (fun (module T : Tracker_intf.TRACKER) ->
       (module Nm_tree.Make (T) : Ds_intf.RIDEABLE));
}

let bonsai_maker = {
  ds_name = "bonsai";
  caps = { Ds_intf.no_caps with map = true; range = true };
  instantiate =
    (fun (module T : Tracker_intf.TRACKER) ->
       (module Bonsai_tree.Make (T) : Ds_intf.RIDEABLE));
}

let stack_maker = {
  ds_name = "stack";
  caps = { Ds_intf.no_caps with queue = true };
  instantiate =
    (fun (module T : Tracker_intf.TRACKER) ->
       (module Treiber_stack.Make (T) : Ds_intf.RIDEABLE));
}

let msqueue_maker = {
  ds_name = "msqueue";
  caps = { Ds_intf.no_caps with queue = true };
  instantiate =
    (fun (module T : Tracker_intf.TRACKER) ->
       (module Ms_queue.Make (T) : Ds_intf.RIDEABLE));
}

(* The paper's four rideables in Fig. 8 order, then the riders added
   for workload diversity. *)
let all =
  [
    list_maker;
    hashmap_maker;
    nm_tree_maker;
    bonsai_maker;
    rhashmap_maker;
    stack_maker;
    msqueue_maker;
  ]

let find name =
  let target = String.lowercase_ascii name in
  List.find_opt (fun m -> String.lowercase_ascii m.ds_name = target) all

let find_exn name =
  match find name with
  | Some m -> m
  | None ->
    invalid_arg
      (Printf.sprintf "Ds_registry.find_exn: unknown rideable %S (known: %s)"
         name (String.concat ", " (List.map (fun m -> m.ds_name) all)))

(* Can [ds] run under [tracker]?  (Checked via the instantiated
   module's own [compatible] predicate.) *)
let compatible maker (module T : Tracker_intf.TRACKER) =
  let (module S : Ds_intf.RIDEABLE) = maker.instantiate (module T) in
  S.compatible T.props

let supporting need =
  List.filter (fun m -> Ds_intf.subsumes m.caps need) all
