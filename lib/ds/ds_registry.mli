(** Instantiate rideables over reclamation schemes by name — the OCaml
    analogue of the artifact's rideable menu.  A {!maker} closes over
    a functor application; the harness composes it with a tracker from
    [Ibr_core.Registry]. *)

open Ibr_core

type maker = {
  ds_name : string;
  instantiate : Tracker_intf.packed -> (module Ds_intf.SET);
}

val list_maker : maker
val hashmap_maker : maker
val nm_tree_maker : maker
val bonsai_maker : maker

val all : maker list
(** The paper's four rideables, in Fig. 8 order. *)

val find : string -> maker option
(** Case-insensitive lookup by rideable name. *)

val find_exn : string -> maker
(** Like {!find} but raises [Invalid_argument] listing the known
    rideables. *)

val compatible : maker -> Tracker_intf.packed -> bool
(** Can this rideable run under this tracker?  (Checked via the
    instantiated module's own [compatible] predicate.) *)
