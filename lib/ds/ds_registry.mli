(** Instantiate rideables over reclamation schemes by name — the OCaml
    analogue of the artifact's rideable menu.  A {!maker} closes over
    a functor application and advertises the rideable's capability
    set; the harness composes it with a tracker from
    [Ibr_core.Registry] and selects operations by capability. *)

open Ibr_core

type maker = {
  ds_name : string;
  caps : Ds_intf.caps;
  (** What the instantiated module exports ([Some] capability
      records); kept consistent with the modules by a registry qcheck
      test. *)
  instantiate : Tracker_intf.packed -> (module Ds_intf.RIDEABLE);
}

val list_maker : maker
val hashmap_maker : maker
val rhashmap_maker : maker
val nm_tree_maker : maker
val bonsai_maker : maker
val stack_maker : maker
val msqueue_maker : maker

val all : maker list
(** The paper's four rideables in Fig. 8 order, then the riders added
    for workload diversity (rhashmap, stack, msqueue). *)

val find : string -> maker option
(** Case-insensitive lookup by rideable name. *)

val find_exn : string -> maker
(** Like {!find} but raises [Invalid_argument] listing the known
    rideables. *)

val compatible : maker -> Tracker_intf.packed -> bool
(** Can this rideable run under this tracker?  (Checked via the
    instantiated module's own [compatible] predicate.) *)

val supporting : Ds_intf.caps -> maker list
(** The rideables whose capabilities subsume [need] — what a
    capability-mismatch error should suggest. *)
