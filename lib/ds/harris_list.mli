(** Harris–Michael lock-free sorted linked list (the paper's Fig. 8a
    structure): logical deletion by marking a node's [next] pointer,
    physical unlink by any traversal that encounters the mark.

    Capabilities: [map] + [range].  Beyond the {!Ds_intf.RIDEABLE}
    surface, [Raw] exposes the per-chain operations against a
    caller-owned head pointer so {!Michael_hashmap} can run one chain
    per bucket over a shared tracker, and the keyed operations are
    also exported directly for rigs that drive one list without going
    through the capability records. *)

open Ibr_core

module Make (T : Tracker_intf.TRACKER) : sig
  (** List node; abstract — callers only thread [node T.ptr] head
      cells through {!Raw}. *)
  type node

  include Ds_intf.RIDEABLE

  (** Direct keyed operations (the same functions the [map] capability
      record carries), for rigs and examples that hold this module
      concretely. *)

  val insert : handle -> key:int -> value:int -> bool
  val remove : handle -> key:int -> bool
  val get : handle -> key:int -> int option
  val contains : handle -> key:int -> bool
  val to_sorted_list : t -> (int * int) list

  (** Chain-level operations for structures embedding lists.  The head
      pointer is any [T.make_ptr]-created cell; the handle must be
      inside a start_op/end_op bracket (the rideable operations wrap
      this via {!Ds_common.with_op}).  All three may raise
      {!Ds_common.Restart} on CAS interference. *)
  module Raw : sig
    val insert :
      node T.t -> node T.handle -> node T.ptr -> key:int -> value:int -> bool

    val remove : node T.t -> node T.handle -> node T.ptr -> key:int -> bool

    val get : node T.t -> node T.handle -> node T.ptr -> key:int -> int option
  end

  (** Escape hatches for test rigs that stage a stalled or crashed
      reader by driving the tracker handle outside the operation
      bracket (see examples/robustness_demo.ml). *)

  val tracker_handle : handle -> node T.handle
  val head : t -> node T.ptr

  (** Sequential-context helpers against a caller-owned chain
      (quiescent structure only). *)

  val dump_chain : node T.t -> node T.ptr -> (int * int) list
  val check_chain : node T.t -> node T.ptr -> unit
end
