(* The lock-free external binary search tree of Natarajan & Mittal
   [23], the paper's third rideable.

   Shape: internal nodes route (key k: strictly-less goes left,
   greater-or-equal goes right); leaves carry the key-value pairs.
   Three sentinel leaves and two sentinel internals (R above S) frame
   the tree, using two infinity keys.

   Edge bits (view tags on child pointers):
   - FLAG (bit 0): set on the edge parent->leaf by a delete's
     *injection* step; promises the leaf will be removed.
   - TAG (bit 1): set on the parent's *other* edge by the cleanup
     step; freezes it so the sibling subtree can be spliced up.

   A delete first flags, then *cleanup* tags the sibling edge and
   CASes the ancestor's edge from the successor to the sibling
   subtree, physically removing parent and leaf at once.  Inserts
   blocked by a flagged/tagged edge help the cleanup along.

   Reclamation-safety refinement: after a successful splice we
   overwrite BOTH outgoing edges of the removed parent (null target,
   both bits set) *before* retiring the parent and leaf.  Without
   this, a reader paused inside a dead parent could later follow one
   of its frozen edges to a block retired after the parent's removal —
   the exact scenario §4.1's proviso outlaws.  (EBR happens to forgive
   it, because its one-sided reservation covers everything retired
   after the reader's start; robust interval reservations do not —
   which makes this tree an instructive stress for IBR.)  Readers
   treat a null edge as "node is dead" and restart.  When concurrent
   deletes chain (successor ≠ parent), the whole chain is leaked
   rather than retired — its nodes stay allocated with intact edges,
   so parked readers remain safe; this is rare and bounded (the
   paper's artifact likewise declines to reclaim chains). *)

open Ibr_core

let flag_bit = 1
let tag_bit = 2

(* Sentinel keys: every user key must be < inf1 < inf2. *)
let inf1 = max_int - 1
let inf2 = max_int

module Make (T : Tracker_intf.TRACKER) = struct
  let name = "natarajan-mittal-tree"
  let compatible (p : Tracker_intf.properties) = p.mutable_pointers
  let slots_needed = 4

  type node =
    | Leaf of leaf
    | Internal of internal
  and leaf = { key : int; mutable value : int }
  and internal = { ikey : int; left : node T.ptr; right : node T.ptr }

  type t = {
    tracker : node T.t;
    root : node Block.t;        (* R; never retired *)
    cfg : Tracker_intf.config;
  }

  type handle = {
    tree : t;
    th : node T.handle;
    stats : Ds_common.op_stats;
  }

  let create ~threads cfg =
    let tracker = T.create ~threads cfg in
    let h0 = T.register tracker ~tid:0 in
    let leaf k = T.alloc h0 (Leaf { key = k; value = 0 }) in
    let s =
      T.alloc h0
        (Internal {
           ikey = inf1;
           left = T.make_ptr tracker (Some (leaf inf1));
           right = T.make_ptr tracker (Some (leaf inf2));
         })
    in
    let r =
      T.alloc h0
        (Internal {
           ikey = inf2;
           left = T.make_ptr tracker (Some s);
           right = T.make_ptr tracker (Some (leaf inf2));
         })
    in
    { tracker; root = r; cfg }

  let register tree ~tid =
    { tree; th = T.register tree.tracker ~tid;
      stats = Ds_common.make_op_stats () }

  let attach tree =
    match T.attach tree.tracker with
    | None -> None
    | Some th -> Some { tree; th; stats = Ds_common.make_op_stats () }

  let detach h = T.detach h.th
  let handle_tid h = T.handle_tid h.th

  (* Hazard-slot roles. *)
  let slot_anc = 0
  let slot_parent = 1
  let slot_cur = 2
  let slot_scratch = 3

  type seek_record = {
    sr_ancestor : node Block.t;      (* internal; anc_edge lives in it *)
    sr_anc_edge : node T.ptr;        (* ancestor's child cell on the path *)
    sr_succ_view : node View.t;      (* view of anc_edge read at seek *)
    sr_parent : node Block.t;        (* the terminal leaf's parent *)
    sr_leaf_edge : node T.ptr;       (* parent's child cell to the leaf *)
    sr_leaf_view : node View.t;      (* view of leaf_edge (carries FLAG) *)
    sr_leaf : node Block.t;
  }

  (* Descend from R, maintaining (ancestor, successor-edge) as the
     deepest *untagged* edge above (parent, leaf). *)
  let seek h key =
    let th = h.th in
    let root_node = Block.get h.tree.root in
    let root_edge =
      match root_node with
      | Internal i -> i.left   (* all keys < inf2 route left at R *)
      | Leaf _ -> assert false
    in
    let rec descend ~ancestor ~anc_edge ~succ_view ~parent ~leaf_edge
        ~leaf_view =
      match View.target leaf_view with
      | None ->
        (* Dead parent (edges nulled after a splice): retry. *)
        raise Ds_common.Restart
      | Some b ->
        (match Block.get b with
         | Leaf _ ->
           { sr_ancestor = ancestor; sr_anc_edge = anc_edge;
             sr_succ_view = succ_view; sr_parent = parent;
             sr_leaf_edge = leaf_edge; sr_leaf_view = leaf_view;
             sr_leaf = b }
         | Internal inode ->
           let ancestor, anc_edge, succ_view =
             if View.tag leaf_view land tag_bit = 0 then begin
               (* Edge into this internal node is untagged: it becomes
                  the new (ancestor, successor). *)
               T.reassign th ~src:slot_parent ~dst:slot_anc;
               (parent, leaf_edge, leaf_view)
             end
             else (ancestor, anc_edge, succ_view)
           in
           T.reassign th ~src:slot_cur ~dst:slot_parent;
           let leaf_edge' =
             if key < inode.ikey then inode.left else inode.right in
           let leaf_view' = T.read th ~slot:slot_cur leaf_edge' in
           descend ~ancestor ~anc_edge ~succ_view ~parent:b
             ~leaf_edge:leaf_edge' ~leaf_view:leaf_view')
    in
    let first_view = T.read th ~slot:slot_cur root_edge in
    descend ~ancestor:h.tree.root ~anc_edge:root_edge ~succ_view:first_view
      ~parent:h.tree.root ~leaf_edge:root_edge ~leaf_view:first_view

  (* Cleanup (Algorithm 4): tag the sibling edge, splice the sibling
     subtree into the ancestor, retire the removed parent and leaf.
     Returns true iff this call performed the splice. *)
  let cleanup h key sr =
    let th = h.th in
    let pnode =
      match Block.get sr.sr_parent with
      | Internal i -> i
      | Leaf _ -> raise Ds_common.Restart
    in
    (* Identify the flagged edge: normally the key's side, but when
       helping a delete of the *other* child it is the other side. *)
    let primary, secondary =
      if key < pnode.ikey then (pnode.left, pnode.right)
      else (pnode.right, pnode.left)
    in
    let pv = T.read th ~slot:slot_scratch primary in
    (match View.target pv with
     | None -> raise Ds_common.Restart
     | Some _ -> ());
    let child_edge, cv, sibling_edge =
      if View.tag pv land flag_bit <> 0 then (primary, pv, secondary)
      else begin
        let sv0 = T.read th ~slot:slot_scratch secondary in
        match View.target sv0 with
        | None -> raise Ds_common.Restart
        | Some _ ->
          if View.tag sv0 land flag_bit <> 0 then (secondary, sv0, primary)
          else
            (* No flag in sight: the removal we meant to help already
               finished (or never started here) — re-seek. *)
            raise Ds_common.Restart
      end
    in
    (* Freeze the sibling edge (preserving any pending FLAG on it). *)
    let rec tag_sibling () =
      let sv = T.read th ~slot:slot_scratch sibling_edge in
      if View.target sv = None then raise Ds_common.Restart
      else if View.tag sv land tag_bit <> 0 then sv
      else if
        T.cas th sibling_edge ~expected:sv
          ~tag:(View.tag sv lor tag_bit) (View.target sv)
      then T.read th ~slot:slot_scratch sibling_edge
      else tag_sibling ()
    in
    let sv = tag_sibling () in
    (match View.target sv with
     | None -> raise Ds_common.Restart
     | Some _ -> ());
    (* Splice: ancestor's edge moves from the successor to the sibling
       subtree; a pending FLAG on the sibling edge survives the move. *)
    let promoted_tag = View.tag sv land flag_bit in
    (* Mask the splice CAS together with its edge-overwrite and retire
       tail: a restart signal between them would leave the dead parent
       with live frozen edges and nothing retired.  No dereference
       happens inside (only pointer cells and physical compares). *)
    Ds_common.committed (fun () ->
      if
        T.cas th sr.sr_anc_edge ~expected:sr.sr_succ_view ~tag:promoted_tag
          (View.target sv)
      then begin
        (* Physically removed.  Simple (and overwhelmingly common) case:
           the successor *is* the parent — retire parent and leaf, after
           overwriting the dead parent's edge to the leaf (proviso). *)
        (if
           match View.target sr.sr_succ_view with
           | Some b -> b == sr.sr_parent
           | None -> false
         then begin
           (* Overwrite *both* outgoing edges of the dead parent before
              retiring anything.  The child edge must go so the removed
              leaf has no incoming pointers; the sibling edge must go
              because it otherwise remains a frozen stale path into the
              live tree — a reader parked inside the dead parent could
              follow it much later to a node that has since been retired
              (the transitive violation of §4.1's proviso that interval
              reservations, unlike EBR's one-sided ones, do not
              forgive).  Readers treat a null edge as "node is dead" and
              restart. *)
           T.write th child_edge ~tag:(flag_bit lor tag_bit) None;
           T.write th sibling_edge ~tag:(flag_bit lor tag_bit) None;
           (match View.target cv with
            | Some leaf_b -> T.retire th leaf_b
            | None -> ());
           T.retire th sr.sr_parent
         end);
        true
      end
      else false)

  let wrap h f =
    Ds_common.with_op ~stats:h.stats
      ~start_op:(fun () -> T.start_op h.th)
      ~end_op:(fun () -> T.end_op h.th)
      ~on_neutralize:(fun () -> T.recover h.th)
      ~max_cas_failures:h.tree.cfg.max_cas_failures
      f

  let leaf_key sr =
    match Block.get sr.sr_leaf with
    | Leaf l -> l.key
    | Internal _ -> raise Ds_common.Restart

  let insert h ~key ~value =
    if key >= inf1 then invalid_arg "Nm_tree.insert: key too large";
    wrap h (fun () ->
      let sr = seek h key in
      let lk = leaf_key sr in
      if lk = key then false
      else if View.tag sr.sr_leaf_view <> 0 then begin
        (* Edge under deletion: help, then retry. *)
        ignore (cleanup h key sr);
        raise Ds_common.Restart
      end
      else
        (* Mask allocation through the linearizing install CAS (and
           the loser's deallocs): a restart signal inside would leak
           the fresh blocks or re-apply a landed insert.  No
           dereference happens inside ([lk] was read above). *)
        Ds_common.committed (fun () ->
          let new_leaf = T.alloc h.th (Leaf { key; value }) in
          let left, right =
            if key < lk then (new_leaf, sr.sr_leaf)
            else (sr.sr_leaf, new_leaf)
          in
          let new_internal =
            T.alloc h.th
              (Internal {
                 ikey = max key lk;
                 left = T.make_ptr h.tree.tracker (Some left);
                 right = T.make_ptr h.tree.tracker (Some right);
               })
          in
          if T.cas h.th sr.sr_leaf_edge ~expected:sr.sr_leaf_view
              (Some new_internal)
          then true
          else begin
            T.dealloc h.th new_internal;
            T.dealloc h.th new_leaf;
            raise Ds_common.Restart
          end))

  let remove h ~key =
    if key >= inf1 then invalid_arg "Nm_tree.remove: key too large";
    (* Injection-then-cleanup state persists across restarts. *)
    let injected = ref None in
    wrap h (fun () ->
      let sr = seek h key in
      match !injected with
      | None ->
        if leaf_key sr <> key then false
        else if View.tag sr.sr_leaf_view <> 0 then begin
          (* Another operation owns this edge: help it, then re-seek.
             If it is a concurrent delete of the same key, the re-seek
             will no longer find the key and we return false. *)
          ignore (cleanup h key sr);
          raise Ds_common.Restart
        end
        else if
          (* Injection is the delete's linearization point: mask it
             together with recording ownership, else a restart signal
             between the CAS and the assignment would make the retry
             treat our own flag as a foreign delete and answer
             [false] for a removal that happened. *)
          Ds_common.committed (fun () ->
            if
              T.cas h.th sr.sr_leaf_edge ~expected:sr.sr_leaf_view
                ~tag:flag_bit (Some sr.sr_leaf)
            then begin
              injected := Some sr.sr_leaf;
              true
            end
            else false)
        then begin
          if cleanup h key sr then true else raise Ds_common.Restart
        end
        else raise Ds_common.Restart
      | Some our_leaf ->
        (* We own the flag; finish the cleanup unless someone did. *)
        if sr.sr_leaf != our_leaf then true
        else if cleanup h key sr then true
        else raise Ds_common.Restart)

  let get h ~key =
    if key >= inf1 then None
    else
      wrap h (fun () ->
        let sr = seek h key in
        match Block.get sr.sr_leaf with
        | Leaf l when l.key = key -> Some l.value
        | Leaf _ | Internal _ -> None)

  let contains h ~key = get h ~key <> None

  (* Bounded ordered scan by repeated ceiling descent, all inside one
     operation bracket (the reservation spans the whole scan — the
     long reader interval the RANGE capability exists to stress).

     Ceiling(k): route for [k] from R, recording the ikey of the last
     internal where the search went left — that ikey is the least
     upper bound of the skipped right subtrees, i.e. the next slot to
     probe when the landed leaf's key falls short of [k].  The
     recursion terminates because the recorded bound is strictly
     greater than [k], and the sentinel frame guarantees a landing
     leaf (inf1/inf2) for every probe. *)
  let range_scan h ~lo ~hi =
    if lo >= inf1 then []
    else
      wrap h (fun () ->
        let th = h.th in
        let rec ceiling k =
          let rec descend b bound =
            match Block.get b with
            | Leaf l -> (l, bound)
            | Internal i ->
              let edge, bound =
                if k < i.ikey then (i.left, i.ikey) else (i.right, bound)
              in
              T.reassign th ~src:slot_cur ~dst:slot_parent;
              (match View.target (T.read th ~slot:slot_cur edge) with
               | None -> raise Ds_common.Restart (* dead node: retry *)
               | Some c -> descend c bound)
          in
          let l, bound = descend h.tree.root max_int in
          if l.key >= k then l else ceiling bound
        in
        let rec collect acc k =
          if k > hi then List.rev acc
          else
            let l = ceiling k in
            if l.key > hi || l.key >= inf1 then List.rev acc
            else collect ((l.key, l.value) :: acc) (l.key + 1)
        in
        collect [] lo)

  let retired_count h = T.retired_count h.th
  let force_empty h = T.force_empty h.th
  let allocator_stats t = Alloc.stats (T.allocator t.tracker)
  let reclaim_service t = T.reclaim_service t.tracker
  let epoch_value t = T.epoch_value t.tracker
  let set_capacity t cap = Alloc.set_capacity (T.allocator t.tracker) cap
  let eject t ~tid = T.eject t.tracker ~tid

  (* Sequential-context traversal (quiescent tree). *)
  let fold_leaves t f init =
    let th = T.register t.tracker ~tid:0 in
    T.start_op th;
    let rec go acc b =
      match Block.get b with
      | Leaf l -> if l.key < inf1 then f acc l.key l.value else acc
      | Internal i ->
        let lv = T.read th ~slot:slot_cur i.left in
        let acc =
          match View.target lv with None -> acc | Some lb -> go acc lb in
        let rv = T.read th ~slot:slot_cur i.right in
        (match View.target rv with None -> acc | Some rb -> go acc rb)
    in
    let result = go init t.root in
    T.end_op th;
    result

  let to_sorted_list t =
    fold_leaves t (fun acc k v -> (k, v) :: acc) []
    |> List.sort (fun (a, _) (b, _) -> compare a b)

  (* Invariants at quiescence:
     - no reachable reclaimed block, no reachable dead (nulled) edge;
     - routing bounds hold: left subtree keys <= m, right >= m
       (inclusive on both sides — the sentinel layout places an
       equal-keyed terminator leaf as the rightmost leaf of a left
       subtree, so strict bounds would be wrong);
     - no duplicate real keys;
     - every real key is actually reachable by routing search. *)
  let check_invariants t =
    let th = T.register t.tracker ~tid:0 in
    T.start_op th;
    let keys = ref [] in
    let rec go ~lo ~hi b =
      if Block.is_reclaimed b then
        failwith "nm-tree invariant: reachable reclaimed block";
      match Block.get b with
      | Leaf l ->
        if not (lo <= l.key && l.key <= hi) then
          failwith "nm-tree invariant: leaf key out of range";
        if l.key < inf1 then keys := l.key :: !keys
      | Internal i ->
        if not (lo <= i.ikey && i.ikey <= hi) then
          failwith "nm-tree invariant: internal key out of range";
        let child edge = match View.target (T.read th ~slot:slot_cur edge) with
          | None -> failwith "nm-tree invariant: reachable dead edge"
          | Some b -> b
        in
        go ~lo ~hi:i.ikey (child i.left);
        go ~lo:i.ikey ~hi (child i.right)
    in
    go ~lo:min_int ~hi:max_int t.root;
    let sorted = List.sort compare !keys in
    let rec dup = function
      | a :: (b :: _ as rest) -> a = b || dup rest
      | [_] | [] -> false
    in
    if dup sorted then failwith "nm-tree invariant: duplicate key";
    (* Routing search must find every key the traversal saw. *)
    let rec search b key =
      match Block.get b with
      | Leaf l -> l.key = key
      | Internal i ->
        let edge = if key < i.ikey then i.left else i.right in
        (match View.target (T.read th ~slot:slot_cur edge) with
         | None -> false
         | Some c -> search c key)
    in
    List.iter (fun k ->
      if not (search t.root k) then
        failwith "nm-tree invariant: key unreachable by routing search")
      sorted;
    T.end_op th

  let map =
    Some { Ds_intf.insert; remove; get; contains; to_sorted_list }

  let queue = None
  let range = Some { Ds_intf.range = range_scan }
  let bulk = None
end
