(** Treiber's lock-free stack — the paper's §3.1 example of a
    persistent structure (immutable [next] pointers, all mutation
    through the top-of-stack pointer).

    Not map-shaped, so not a {!Ds_intf.SET}: it keeps its own
    stack-shaped surface and is used by the quickstart, the POIBR
    examples, and the tests rather than the figure lineup. *)

open Ibr_core

module Make (T : Tracker_intf.TRACKER) : sig
  val name : string
  val compatible : Tracker_intf.properties -> bool
  val slots_needed : int

  type t
  type handle

  val create : threads:int -> Tracker_intf.config -> t
  val register : t -> tid:int -> handle

  val attach : t -> handle option
  (** Dynamic thread churn: claim a free census slot, or [None] when
      every slot is taken (see {!Ds_intf.SET}). *)

  val detach : handle -> unit
  val handle_tid : handle -> int

  (** Each operation brackets itself in start_op/end_op (see
      {!Ds_common.with_op}); a pop must not free a node another
      thread's pop is still inspecting — that is the whole point. *)

  val push : handle -> int -> unit
  val pop : handle -> int option
  val peek : handle -> int option
  val is_empty : handle -> bool

  (** Observability and fault hooks, mirroring {!Ds_intf.SET}. *)

  val retired_count : handle -> int
  val force_empty : handle -> unit
  val allocator_stats : t -> Alloc.stats
  val epoch_value : t -> int
  val reclaim_service : t -> Handoff.service option
  val set_capacity : t -> int option -> unit
  val eject : t -> tid:int -> unit

  val to_list : t -> int list
  (** Sequential-context dump, top first (quiescent structure only). *)
end
