(** Treiber's lock-free stack — the paper's §3.1 example of a
    persistent structure (immutable [next] pointers, all mutation
    through the top-of-stack pointer).

    Capabilities: [queue] with [Lifo] order — push/pop ride the
    enqueue/dequeue record.  The stack-shaped surface below is also
    exported directly for the quickstart, the POIBR examples, and the
    tests. *)

open Ibr_core

module Make (T : Tracker_intf.TRACKER) : sig
  include Ds_intf.RIDEABLE

  (** Each operation brackets itself in start_op/end_op (see
      {!Ds_common.with_op}); a pop must not free a node another
      thread's pop is still inspecting — that is the whole point. *)

  val push : handle -> int -> unit
  val pop : handle -> int option
  val peek : handle -> int option
  val is_empty : handle -> bool

  val to_list : t -> int list
  (** Sequential-context dump, top first (quiescent structure only). *)
end
