(* A resizable lock-free hash map in the split-ordered style of Shalev
   & Shavit: one globally sorted lock-free list (recursive-split key
   order), with a bucket array of shortcut pointers into it.  Growing
   the table never moves a node — doubling just publishes a bigger
   shortcut array whose new cells are initialized lazily.

   What this rideable exists to stress: the bucket array itself lives
   in a tracker [Block.t] (the [Table] payload below), and a migration
   retires the *whole superseded array* through the tracker as one
   block — the BULK capability.  Readers traverse the table they
   protected at operation start, so a migration racing a reader is
   exactly the wholesale-retirement scenario the [bucket_migrate]
   model-check scenario certifies.

   Split ordering in brief: the list is sorted by [so_key], the 31-bit
   reversal of the hash.  Regular nodes set the low bit after the
   reversal (odd [so_key]); bucket [b]'s sentinel dummy is the plain
   reversal of [b] (even).  All keys hashing to bucket [b] under a
   [2^lg] table sort between dummy [b] and the next dummy, so a bucket
   operation walks from its dummy regardless of table size — which is
   why doubling needs no rehash.  Dummies are immortal (never marked,
   never retired); the marked-bit deletion protocol below is
   Harris–Michael, identical to {!Harris_list}. *)

open Ibr_core

let marked = 1

(* Reverse the low 31 bits (the split-order key space).  Keys must be
   non-negative and below [2^30] so the reversal's low bit is free for
   the regular/dummy parity. *)
let rev31 x =
  let r = ref 0 and x = ref x in
  for _ = 0 to 30 do
    r := (!r lsl 1) lor (!x land 1);
    x := !x lsr 1
  done;
  !r

let max_key = 1 lsl 30

module Make (T : Tracker_intf.TRACKER) = struct
  let name = "resizable-hashmap"
  let compatible (p : Tracker_intf.properties) = p.mutable_pointers
  let slots_needed = 4

  (* One tracker serves both payload shapes: list nodes and the
     bucket-array table.  (Reusing {!Harris_list.Raw} is impossible
     here — its tracker is typed over list nodes only, leaving no
     same-tracker payload for the table block.) *)
  type nrec = {
    so_key : int;               (* split-order position *)
    key : int;                  (* original key (bucket index for dummies) *)
    mutable value : int;
    next : data T.ptr;
  }

  and trec = {
    lg : int;                   (* table size = 2^lg *)
    buckets : data T.ptr array; (* shortcut cells; shared across growths *)
  }

  and data = Node of nrec | Table of trec

  type t = {
    tracker : data T.t;
    table : data T.ptr;         (* the current Table block *)
    count : int Atomic.t;       (* regular-node population (resize trigger) *)
    max_lg : int;
    cfg : Tracker_intf.config;
  }

  type handle = {
    hm : t;
    th : data T.handle;
    stats : Ds_common.op_stats;
  }

  (* Hazard-slot roles.  The table slot is held across the whole
     operation; the other three are the Harris–Michael walk. *)
  let slot_table = 0
  let slot_prev = 1
  let slot_cur = 2
  let slot_next = 3

  let default_lg = 6
  let default_max_lg = 18
  let load_factor = 4           (* grow when count > load_factor * size *)

  let create_sized ?(lg = default_lg) ?(max_lg = default_max_lg) ~threads cfg
    =
    if lg < 1 || lg > max_lg then
      invalid_arg "Resizable_hashmap.create: need 1 <= lg <= max_lg";
    let tracker = T.create ~threads cfg in
    let h0 = T.register tracker ~tid:0 in
    (* Bucket 0's dummy anchors the whole list; every other bucket
       initializes lazily by splitting off its parent. *)
    let d0 =
      T.alloc h0
        (Node { so_key = 0; key = 0; value = 0;
                next = T.make_ptr tracker None })
    in
    let buckets =
      Array.init (1 lsl lg) (fun i ->
        T.make_ptr tracker (if i = 0 then Some d0 else None))
    in
    let tb = T.alloc h0 (Table { lg; buckets }) in
    {
      tracker;
      table = T.make_ptr tracker (Some tb);
      count = Atomic.make 0;
      max_lg;
      cfg;
    }

  let create ~threads cfg = create_sized ~threads cfg

  let register hm ~tid =
    { hm; th = T.register hm.tracker ~tid;
      stats = Ds_common.make_op_stats () }

  let attach hm =
    match T.attach hm.tracker with
    | None -> None
    | Some th -> Some { hm; th; stats = Ds_common.make_op_stats () }

  let detach h = T.detach h.th
  let handle_tid h = T.handle_tid h.th

  let node_of b =
    match Block.get b with
    | Node n -> n
    | Table _ -> assert false   (* tables are never linked into the list *)

  (* Harris–Michael find over split-order keys, starting from a bucket
     cell: position (prev, cur) with cur the first node whose [so_key]
     is >= the target; unlink marked nodes on the way. *)
  let find th start so_key =
    let rec walk prev curv =
      if View.tag curv = marked then raise Ds_common.Restart;
      match View.target curv with
      | None -> (prev, curv, None)
      | Some bcur ->
        let n = node_of bcur in
        let nextv = T.read th ~slot:slot_next n.next in
        if View.tag nextv = marked then begin
          (* cur is logically deleted: unlink before moving on; the
             unlink-winner owes the retire (masked as one unit, no
             dereference inside). *)
          if
            Ds_common.committed (fun () ->
              if T.cas th prev ~expected:curv (View.target nextv) then begin
                T.retire th bcur;
                true
              end
              else false)
          then walk prev (T.read th ~slot:slot_cur prev)
          else raise Ds_common.Restart
        end
        else if n.so_key >= so_key then (prev, curv, Some (bcur, n, nextv))
        else begin
          T.reassign th ~src:slot_cur ~dst:slot_prev;
          T.reassign th ~src:slot_next ~dst:slot_cur;
          walk n.next nextv
        end
    in
    walk start (T.read th ~slot:slot_cur start)

  (* Insert-or-find a dummy for split-order position [so]: used only
     by lazy bucket initialization, so an existing node at [so] (a
     racing initializer won) is a success. *)
  let insert_dummy h start ~so ~idx =
    let rec attempt () =
      let prev, curv, found = find h.th start so in
      match found with
      | Some (b, n, _) when n.so_key = so -> b
      | Some _ | None ->
        (match
           Ds_common.committed (fun () ->
             let b =
               T.alloc h.th
                 (Node { so_key = so; key = idx; value = 0;
                         next = T.make_ptr h.hm.tracker (View.target curv) })
             in
             if T.cas h.th prev ~expected:curv (Some b) then Some b
             else begin
               T.dealloc h.th b;
               None
             end)
         with
         | Some b -> b
         | None -> attempt ())
    in
    attempt ()

  (* Index of the parent bucket: clear the highest set bit. *)
  let parent_of idx =
    let p = ref 1 in
    while !p lsl 1 <= idx do p := !p lsl 1 done;
    idx - !p

  (* Make sure bucket [idx]'s shortcut cell points at its dummy,
     splitting recursively off the parent bucket.  The recursion depth
     is at most [lg] (one level per set bit). *)
  let rec ensure_bucket h (tr : trec) idx =
    let cell = tr.buckets.(idx) in
    let v = T.read h.th ~slot:slot_prev cell in
    match View.target v with
    | Some b -> b
    | None ->
      let pidx = parent_of idx in
      let pd = ensure_bucket h tr pidx in
      ignore pd;
      let d = insert_dummy h tr.buckets.(pidx) ~so:(rev31 idx) ~idx in
      (* Publish the shortcut; a racing initializer's loss is benign
         (both found-or-inserted the same immortal dummy). *)
      ignore (T.cas h.th cell ~expected:v (Some d));
      d

  (* Protect the current table for the whole operation and hand its
     payload to [f]. *)
  let with_table h f =
    let tv = T.read h.th ~slot:slot_table h.hm.table in
    match View.target tv with
    | None -> assert false      (* the table pointer is never null *)
    | Some tb ->
      (match Block.get tb with
       | Node _ -> assert false
       | Table tr -> f tv tb tr)

  let wrap h f =
    Ds_common.with_op ~stats:h.stats
      ~start_op:(fun () -> T.start_op h.th)
      ~end_op:(fun () -> T.end_op h.th)
      ~on_neutralize:(fun () -> T.recover h.th)
      ~max_cas_failures:h.hm.cfg.max_cas_failures
      f

  let so_regular key = rev31 key lor 1

  let check_key fn key =
    if key < 0 || key >= max_key then
      invalid_arg ("Resizable_hashmap." ^ fn ^ ": key out of range")

  let bucket_cell h tr key =
    let idx = key land ((1 lsl tr.lg) - 1) in
    ignore (ensure_bucket h tr idx);
    tr.buckets.(idx)

  (* Double the table: publish a twice-as-long shortcut array (old
     cells shared, new half lazily initialized) and retire the whole
     superseded Table block through the tracker — the bulk-retirement
     path.  Returns false at the growth cap or when a racing grower
     won (its table is at least as big). *)
  let grow h =
    with_table h (fun tv tb tr ->
      if tr.lg >= h.hm.max_lg then false
      else begin
        let size = 1 lsl tr.lg in
        (* Mask allocation through the linearizing swing and the
           winner's bulk retire: a restart inside would leak the new
           table or re-publish it; no dereference happens inside
           ([tr] was loaded under the table slot's protection). *)
        Ds_common.committed (fun () ->
          let buckets' =
            Array.init (2 * size) (fun i ->
              if i < size then tr.buckets.(i)
              else T.make_ptr h.hm.tracker None)
          in
          let ntb = T.alloc h.th (Table { lg = tr.lg + 1; buckets = buckets' })
          in
          if T.cas h.th h.hm.table ~expected:tv (Some ntb) then begin
            T.retire h.th tb;
            true
          end
          else begin
            T.dealloc h.th ntb;
            false
          end)
      end)

  let maybe_grow h (tr : trec) =
    if
      tr.lg < h.hm.max_lg
      && Atomic.get h.hm.count > load_factor * (1 lsl tr.lg)
    then ignore (grow h)

  let insert h ~key ~value =
    check_key "insert" key;
    let inserted =
      wrap h (fun () ->
        with_table h (fun _ _ tr ->
          let cell = bucket_cell h tr key in
          let so = so_regular key in
          let rec attempt () =
            let prev, curv, found = find h.th cell so in
            match found with
            | Some (_, n, _) when n.so_key = so -> false
            | Some _ | None ->
              (match
                 Ds_common.committed (fun () ->
                   let b =
                     T.alloc h.th
                       (Node { so_key = so; key; value;
                               next =
                                 T.make_ptr h.hm.tracker
                                   (View.target curv) })
                   in
                   if T.cas h.th prev ~expected:curv (Some b) then Some true
                   else begin
                     T.dealloc h.th b;
                     None
                   end)
               with
               | Some r -> r
               | None -> attempt ())
          in
          let r = attempt () in
          if r then begin
            Atomic.incr h.hm.count;
            maybe_grow h tr
          end;
          r))
    in
    inserted

  let remove h ~key =
    check_key "remove" key;
    wrap h (fun () ->
      with_table h (fun _ _ tr ->
        let cell = bucket_cell h tr key in
        let so = so_regular key in
        let prev, curv, found = find h.th cell so in
        match found with
        | Some (bcur, n, nextv) when n.so_key = so ->
          let r =
            (* Mask the linearizing mark CAS with the unlink+retire
               tail, exactly as the Harris list does. *)
            Ds_common.committed (fun () ->
              if
                not
                  (T.cas h.th n.next ~expected:nextv ~tag:marked
                     (View.target nextv))
              then raise Ds_common.Restart
              else begin
                (if T.cas h.th prev ~expected:curv (View.target nextv)
                 then T.retire h.th bcur);
                true
              end)
          in
          if r then Atomic.decr h.hm.count;
          r
        | Some _ | None -> false))

  let get h ~key =
    check_key "get" key;
    wrap h (fun () ->
      with_table h (fun _ _ tr ->
        let cell = bucket_cell h tr key in
        let so = so_regular key in
        let _, _, found = find h.th cell so in
        match found with
        | Some (_, n, _) when n.so_key = so -> Some n.value
        | Some _ | None -> None))

  let contains h ~key = get h ~key <> None

  let migrate h = wrap h (fun () -> grow h)

  let retired_count h = T.retired_count h.th
  let force_empty h = T.force_empty h.th
  let allocator_stats t = Alloc.stats (T.allocator t.tracker)
  let reclaim_service t = T.reclaim_service t.tracker
  let epoch_value t = T.epoch_value t.tracker
  let set_capacity t cap = Alloc.set_capacity (T.allocator t.tracker) cap
  let eject t ~tid = T.eject t.tracker ~tid

  let table_length t =
    let th = T.register t.tracker ~tid:0 in
    T.start_op th;
    let r =
      match View.target (T.read th ~slot:slot_table t.table) with
      | None -> 0
      | Some tb ->
        (match Block.get tb with
         | Table tr -> Array.length tr.buckets
         | Node _ -> assert false)
    in
    T.end_op th;
    r

  (* Sequential-context walk of the whole split-ordered list from
     bucket 0's dummy, collecting regular (odd so_key, unmarked)
     nodes; split order is not key order, so sort. *)
  let to_sorted_list t =
    let th = T.register t.tracker ~tid:0 in
    T.start_op th;
    let rec walk acc v =
      match View.target v with
      | None -> acc
      | Some b ->
        (match Block.get b with
         | Table _ -> assert false
         | Node n ->
           let nextv = T.read th ~slot:slot_next n.next in
           let acc =
             if n.so_key land 1 = 1 && View.tag nextv <> marked then
               (n.key, n.value) :: acc
             else acc
           in
           walk acc nextv)
    in
    let start =
      match View.target (T.read th ~slot:slot_table t.table) with
      | None -> assert false
      | Some tb ->
        (match Block.get tb with
         | Table tr -> tr.buckets.(0)
         | Node _ -> assert false)
    in
    let r = walk [] (T.read th ~slot:slot_cur start) in
    T.end_op th;
    List.sort (fun (a, _) (b, _) -> compare a b) r

  (* Invariants at quiescence: strictly increasing so_keys (so no
     duplicates), no reachable reclaimed block, every initialized
     bucket cell points at the dummy with that bucket's split-order
     position, and the live count matches the regular population. *)
  let check_invariants t =
    let th = T.register t.tracker ~tid:0 in
    T.start_op th;
    let tr =
      match View.target (T.read th ~slot:slot_table t.table) with
      | None -> failwith "rhashmap invariant: null table"
      | Some tb ->
        if Block.is_reclaimed tb then
          failwith "rhashmap invariant: reclaimed table";
        (match Block.get tb with
         | Table tr -> tr
         | Node _ -> failwith "rhashmap invariant: table points at a node")
    in
    let regular = ref 0 in
    let rec walk last v =
      match View.target v with
      | None -> ()
      | Some b ->
        if Block.is_reclaimed b then
          failwith "rhashmap invariant: reachable reclaimed block";
        (match Block.get b with
         | Table _ -> failwith "rhashmap invariant: table linked in list"
         | Node n ->
           if n.so_key <= last then
             failwith "rhashmap invariant: so_keys not strictly increasing";
           let nextv = T.read th ~slot:slot_next n.next in
           if n.so_key land 1 = 1 && View.tag nextv <> marked then
             incr regular;
           walk n.so_key nextv)
    in
    walk (-1) (T.read th ~slot:slot_cur tr.buckets.(0));
    Array.iteri
      (fun idx cell ->
         match View.target (T.read th ~slot:slot_prev cell) with
         | None -> ()
         | Some b ->
           (match Block.get b with
            | Table _ -> failwith "rhashmap invariant: bucket -> table"
            | Node n ->
              if n.so_key <> rev31 idx then
                failwith "rhashmap invariant: bucket dummy mismatch"))
      tr.buckets;
    T.end_op th

  let map =
    Some { Ds_intf.insert; remove; get; contains; to_sorted_list }

  let queue = None
  let range = None
  let bulk = Some { Ds_intf.migrate; table_length }
end
