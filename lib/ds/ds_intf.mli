(** Capability-based interface of the benchmark data structures
    ("rideables").

    The core {!RIDEABLE} signature carries everything tracker-facing —
    lifecycle, census churn, observability, fault hooks — and the
    operation families ride as optional capability records
    ({!map_ops}, {!queue_ops}, {!range_ops}, {!bulk_ops}), each
    exposed as an [option] so the workload driver, the model-based
    tests, and the figure harness select operations by capability
    instead of assuming a map. *)

open Ibr_core

type caps = {
  map : bool;  (** keyed insert/remove/get/contains *)
  queue : bool;  (** enqueue/dequeue (FIFO or LIFO) *)
  range : bool;  (** bounded ordered scans *)
  bulk : bool;  (** operations that retire whole arrays *)
}

val no_caps : caps

val caps_to_string : caps -> string
(** ["map+range"]-style summary; ["-"] when no capability is set. *)

(** Keyed-map operations.  Each call is one application operation: it
    brackets itself in start_op/end_op and restarts with a fresh
    reservation after [max_cas_failures] failed CASes (§4.3.1).
    [to_sorted_list] is a sequential-context helper (quiescent
    structure only). *)
type ('t, 'h) map_ops = {
  insert : 'h -> key:int -> value:int -> bool;
  remove : 'h -> key:int -> bool;
  get : 'h -> key:int -> int option;
  contains : 'h -> key:int -> bool;
  to_sorted_list : 't -> (int * int) list;
}

(** The discipline a {!queue_ops} structure honors, so oracles know
    what sequence to check. *)
type order = Fifo | Lifo

(** Producer/consumer operations.  [to_seq_list] dumps front-first
    (next-out first), sequential context only. *)
type ('t, 'h) queue_ops = {
  enqueue : 'h -> int -> unit;
  dequeue : 'h -> int option;
  peek : 'h -> int option;
  order : order;
  to_seq_list : 't -> int list;
}

(** Bounded ordered scan: every (key, value) with [lo <= key <= hi],
    ascending, linearized at some point during the call.  Scans hold
    their reservation across the whole traversal — the long reader
    interval that is the interval family's worst case. *)
type 'h range_ops = { range : 'h -> lo:int -> hi:int -> (int * int) list }

(** Bulk retirement: [migrate] forces one structural migration that
    retires a whole backing array through the tracker (returns [false]
    when the structure is already at its growth cap); [table_length]
    reports the current backing-array length, sequential context. *)
type ('t, 'h) bulk_ops = {
  migrate : 'h -> bool;
  table_length : 't -> int;
}

module type RIDEABLE = sig
  val name : string

  val compatible : Tracker_intf.properties -> bool
  (** Whether this structure can run under a scheme with the given
      properties (e.g. the Bonsai tree excludes HP/HE because
      rebalancing needs unboundedly many reservations — the same
      exclusion as the paper's Fig. 8d). *)

  val slots_needed : int

  type t
  type handle

  val create : threads:int -> Tracker_intf.config -> t
  val register : t -> tid:int -> handle

  val attach : t -> handle option
  (** Dynamic thread churn (DESIGN.md §10): claim a free census slot,
      or [None] when every slot is taken.  Do not mix with the
      fixed-census [register] on the same instance. *)

  val detach : handle -> unit
  (** Release an [attach]ed handle; the caller must be between
      operations.  The handle must not be used afterwards. *)

  val handle_tid : handle -> int
  (** The census slot this handle occupies. *)

  (** Observability for the harness and tests. *)

  val retired_count : handle -> int
  val force_empty : handle -> unit
  val allocator_stats : t -> Alloc.stats
  val epoch_value : t -> int

  val reclaim_service : t -> Handoff.service option
  (** The underlying tracker's background-reclaim service, when the
      tracker was created with [background_reclaim = true]; the runner
      drives it from a dedicated fiber/domain.  [None] when background
      reclamation is off or the scheme has no deferred work. *)

  (** Fault-injection hooks (see DESIGN.md §7). *)

  val set_capacity : t -> int option -> unit
  (** Cap (or uncap) the underlying allocator's live+retired
      footprint; see {!Alloc.set_capacity}. *)

  val eject : t -> tid:int -> unit
  (** Expire thread [tid]'s reservations.  Sound only for a dead
      thread; see {!Tracker_intf.TRACKER.eject}. *)

  val check_invariants : t -> unit
  (** Sequential-context structural check (quiescent structure
      only). *)

  (** The capability surface: [None] = the structure cannot express
      the operation family, and the registry advertises the absence. *)

  val map : (t, handle) map_ops option
  val queue : (t, handle) queue_ops option
  val range : handle range_ops option
  val bulk : (t, handle) bulk_ops option
end

module type MAKER = functor (T : Tracker_intf.TRACKER) -> RIDEABLE

val caps_of : (module RIDEABLE) -> caps
(** Capability flags derived from the module's exports; the registry's
    declared flags are qcheck'd against this. *)

val subsumes : caps -> caps -> bool
(** [subsumes have need]: every capability [need] asks for, [have]
    provides. *)
