(** Common interface of the benchmark data structures ("rideables").

    All four of the paper's structures are concurrent key-value maps
    over integer keys, so one signature serves: the workload driver,
    the model-based tests, and the figure harness are all written
    against {!SET} and work for any (structure x tracker) pairing. *)

open Ibr_core

module type SET = sig
  val name : string

  val compatible : Tracker_intf.properties -> bool
  (** Whether this structure can run under a scheme with the given
      properties (e.g. the Bonsai tree excludes HP/HE because
      rebalancing needs unboundedly many reservations — the same
      exclusion as the paper's Fig. 8d). *)

  val slots_needed : int

  type t
  type handle

  val create : threads:int -> Tracker_intf.config -> t
  val register : t -> tid:int -> handle

  val attach : t -> handle option
  (** Dynamic thread churn (DESIGN.md §10): claim a free census slot,
      or [None] when every slot is taken.  Do not mix with the
      fixed-census [register] on the same instance. *)

  val detach : handle -> unit
  (** Release an [attach]ed handle; the caller must be between
      operations.  The handle must not be used afterwards. *)

  val handle_tid : handle -> int
  (** The census slot this handle occupies. *)

  (** Each call is one application operation: it brackets itself in
      start_op/end_op and restarts with a fresh reservation after
      [max_cas_failures] failed CASes (§4.3.1). *)

  val insert : handle -> key:int -> value:int -> bool
  val remove : handle -> key:int -> bool
  val get : handle -> key:int -> int option
  val contains : handle -> key:int -> bool

  (** Observability for the harness and tests. *)

  val retired_count : handle -> int
  val force_empty : handle -> unit
  val allocator_stats : t -> Alloc.stats
  val epoch_value : t -> int

  val reclaim_service : t -> Handoff.service option
  (** The underlying tracker's background-reclaim service, when the
      tracker was created with [background_reclaim = true]; the runner
      drives it from a dedicated fiber/domain.  [None] when background
      reclamation is off or the scheme has no deferred work. *)

  (** Fault-injection hooks (see DESIGN.md §7). *)

  val set_capacity : t -> int option -> unit
  (** Cap (or uncap) the underlying allocator's live+retired
      footprint; see {!Alloc.set_capacity}. *)

  val eject : t -> tid:int -> unit
  (** Expire thread [tid]'s reservations.  Sound only for a dead
      thread; see {!Tracker_intf.TRACKER.eject}. *)

  (** Sequential-context helpers (quiescent structure only). *)

  val to_sorted_list : t -> (int * int) list
  val check_invariants : t -> unit
end

module type MAKER = functor (T : Tracker_intf.TRACKER) -> SET
