(** Bonsai tree (the paper's Fig. 8d structure): a persistent
    weight-balanced BST where every update copies the path to the root
    and retires the replaced nodes.

    Rebalancing pins an unbounded set of nodes, so [compatible]
    excludes bounded-slot schemes (HP, HE) — the same exclusion as the
    paper's Fig. 8d lineup.  Capabilities: [map] + [range] (scans run
    against the immutable snapshot reachable from one root read).
    Exposes exactly the {!Ds_intf.RIDEABLE} surface. *)

open Ibr_core

module Make (T : Tracker_intf.TRACKER) : Ds_intf.RIDEABLE
