(** The real-parallelism backend: the same tracker / data-structure
    code on OCaml 5 domains, timed with the monotonic wall clock in
    microsecond units, with the cost hooks inactive.  Used for race
    stress tests and as the hardware column of the robustness and
    service campaigns.

    Runs through the backend-shared {!Run_engine}.  Fault profiles
    this backend supports (["stall-storm"], ["stall+watchdog"]) are
    injected for real — sleeps and a wall-clock watchdog; profiles
    needing scheduler-injected crashes raise
    {!Runner_intf.Unsupported}. *)

type config = {
  threads : int;            (** domains *)
  duration_s : float;
  seed : int;
  tracker_cfg : Ibr_core.Tracker_intf.config;
  spec : Workload.spec;
  faults : Runner_intf.faults;
}

val default_config :
  ?threads:int -> ?duration_s:float -> ?seed:int ->
  ?faults:Runner_intf.faults -> spec:Workload.spec -> unit -> config

val run :
  tracker_name:string -> ds_name:string -> (module Ibr_ds.Ds_intf.RIDEABLE) ->
  config -> Stats.t

val run_named :
  tracker_name:string -> ds_name:string -> config -> Stats.t option
