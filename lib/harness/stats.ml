(* Result record for one benchmark run — the row the artifact's CSV
   output carried, extended with the allocator and fault telemetry our
   substrate provides. *)

open Ibr_core

type t = {
  tracker : string;
  ds : string;
  threads : int;
  mix : string;
  ops : int;
  makespan : int;              (* virtual ns (sim) or wall ns (domains) *)
  throughput : float;          (* ops per million time units *)
  avg_unreclaimed : float;     (* paper Fig. 9 metric *)
  peak_unreclaimed : int;
  samples : int;
  alloc : Alloc.stats;
  epoch : int;
  faults : int;
  sweep : Tracker_common.Sweep_stats.snap;
  (* Reclamation-sweep telemetry accumulated during the run: sweeps
     run, blocks examined/freed, and the reservation-snapshot cost. *)
  crashes : int;    (* crash faults delivered during the run *)
  ejections : int;  (* stale threads neutralized by the watchdog *)
}

let no_sweep : Tracker_common.Sweep_stats.snap =
  { sweeps = 0; examined = 0; freed = 0; snapshot_entries = 0;
    snapshot_cycles = 0; skipped = 0; buckets = 0 }

let throughput ~ops ~makespan =
  if makespan <= 0 then 0.0
  else float_of_int ops /. (float_of_int makespan /. 1_000_000.0)

let pp ppf r =
  Fmt.pf ppf
    "%-12s %-8s t=%-3d %-15s ops=%-8d thr=%8.3f Mops/Ms unrec=%8.1f \
     peak=%-6d live=%-7d epoch=%-6d faults=%d sweeps=%d swept=%d%s"
    r.tracker r.ds r.threads r.mix r.ops r.throughput r.avg_unreclaimed
    r.peak_unreclaimed r.alloc.live r.epoch r.faults r.sweep.sweeps
    r.sweep.examined
    (if r.crashes = 0 && r.ejections = 0 && r.alloc.oom_events = 0 then ""
     else
       Printf.sprintf " crashes=%d ejections=%d oom=%d" r.crashes
         r.ejections r.alloc.oom_events)

let csv_header =
  "tracker,ds,threads,mix,ops,makespan,throughput,avg_unreclaimed,\
   peak_unreclaimed,samples,allocated,freed,live,cached,epoch,faults,\
   sweeps,sweep_examined,sweep_freed,sweep_snapshot_entries,\
   sweep_snapshot_cycles,sweeps_skipped,sweep_buckets,crashes,ejections,\
   oom_events,pressure_retries,peak_footprint"

let to_csv_row r =
  Printf.sprintf
    "%s,%s,%d,%s,%d,%d,%.6f,%.3f,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,\
     %d,%d,%d,%d,%d,%d,%d"
    r.tracker r.ds r.threads r.mix r.ops r.makespan r.throughput
    r.avg_unreclaimed r.peak_unreclaimed r.samples r.alloc.allocated
    r.alloc.freed r.alloc.live r.alloc.cached r.epoch r.faults
    r.sweep.sweeps r.sweep.examined r.sweep.freed r.sweep.snapshot_entries
    r.sweep.snapshot_cycles r.sweep.skipped r.sweep.buckets r.crashes
    r.ejections r.alloc.oom_events r.alloc.pressure_retries
    r.alloc.peak_footprint

(* Incremental mean/peak accumulator for the unreclaimed metric. *)
type sampler = {
  mutable sum : float;
  mutable n : int;
  mutable peak : int;
}

let make_sampler () = { sum = 0.0; n = 0; peak = 0 }

let sample s v =
  s.sum <- s.sum +. float_of_int v;
  s.n <- s.n + 1;
  if v > s.peak then s.peak <- v

let merge_samplers ss =
  let m = make_sampler () in
  List.iter (fun s ->
    m.sum <- m.sum +. s.sum;
    m.n <- m.n + s.n;
    if s.peak > m.peak then m.peak <- s.peak)
    ss;
  m

let mean s = if s.n = 0 then 0.0 else s.sum /. float_of_int s.n
