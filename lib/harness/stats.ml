(* Result record for one benchmark run — the row the artifact's CSV
   output carried.

   The identity and figure fields (who ran, and the two quantities the
   paper's plots are made of) are ordinary record fields; everything
   else — allocator, epoch, fault, sweep, crash, pressure telemetry —
   is a snapshot of the [Ibr_obs.Metrics] registry, taken by the
   runner.  Adding a metric means registering it where it is measured;
   this record, the CSV header, and the writers follow automatically. *)

type t = {
  tracker : string;
  ds : string;
  threads : int;
  mix : string;
  backend : string;            (* provenance: "sim" | "domains" *)
  ops : int;
  makespan : int;              (* virtual ns (sim) or wall ns (domains) *)
  throughput : float;          (* ops per million time units *)
  avg_unreclaimed : float;     (* paper Fig. 9 metric *)
  peak_unreclaimed : int;
  samples : int;
  metrics : Ibr_obs.Metrics.snapshot;
}

let metric r name = Ibr_obs.Metrics.get r.metrics name

let throughput ~ops ~makespan =
  if makespan <= 0 then 0.0
  else float_of_int ops /. (float_of_int makespan /. 1_000_000.0)

let pp ppf r =
  let m = metric r in
  Fmt.pf ppf
    "%-12s %-8s t=%-3d %-15s ops=%-8d thr=%8.3f Mops/Ms unrec=%8.1f \
     peak=%-6d live=%-7d epoch=%-6d faults=%d sweeps=%d swept=%d%s"
    r.tracker r.ds r.threads r.mix r.ops r.throughput r.avg_unreclaimed
    r.peak_unreclaimed (m "live") (m "epoch") (m "faults") (m "sweeps")
    (m "sweep_examined")
    ((if m "crashes" = 0 && m "ejections" = 0 && m "oom_events" = 0 then ""
      else
        Printf.sprintf " crashes=%d ejections=%d oom=%d" (m "crashes")
          (m "ejections") (m "oom_events"))
     ^ if r.backend = "sim" then "" else Printf.sprintf " [%s]" r.backend)

(* The run-identity and figure columns; the rest of the header is the
   registry's column list, in registration-order-key order. *)
let identity_header =
  "tracker,ds,threads,mix,ops,makespan,throughput,avg_unreclaimed,\
   peak_unreclaimed,samples"

let csv_header () =
  String.concat "," (identity_header :: Ibr_obs.Metrics.columns ())

let to_csv_row r =
  let prefix =
    Printf.sprintf "%s,%s,%d,%s,%d,%d,%.6f,%.3f,%d,%d" r.tracker r.ds
      r.threads r.mix r.ops r.makespan r.throughput r.avg_unreclaimed
      r.peak_unreclaimed r.samples
  in
  String.concat ","
    (prefix :: List.map (fun (_, v) -> string_of_int v) r.metrics)

(* Backend-tagged variants for campaigns that mix sim and hardware
   rows in one table.  The untagged layout above is pinned by the
   golden CSV, so provenance rides as a leading column in a distinct
   schema instead of mutating the shared one. *)
let csv_header_tagged () = "backend," ^ csv_header ()
let to_csv_row_tagged r = r.backend ^ "," ^ to_csv_row r

(* Incremental mean/peak accumulator for the unreclaimed metric. *)
type sampler = {
  mutable sum : float;
  mutable n : int;
  mutable peak : int;
}

let make_sampler () = { sum = 0.0; n = 0; peak = 0 }

let sample s v =
  s.sum <- s.sum +. float_of_int v;
  s.n <- s.n + 1;
  if v > s.peak then s.peak <- v

let merge_samplers ss =
  let m = make_sampler () in
  List.iter (fun s ->
    m.sum <- m.sum +. s.sum;
    m.n <- m.n + s.n;
    if s.peak > m.peak then m.peak <- s.peak)
    ss;
  m

let mean s = if s.n = 0 then 0.0 else s.sum /. float_of_int s.n
