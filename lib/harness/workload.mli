(** Workload generation (paper §5, extended): fixed-time
    microbenchmarks of random operations with random keys, prefill of
    3/4 of the key range, the paper's write/read-dominated mixes plus
    YCSB-like profiles A–F spanning map, range, queue and bulk
    capabilities. *)

type op = Insert | Remove | Get | Scan | Enqueue | Dequeue | Migrate

type mix = {
  mix_label : string;  (** what {!mix_name} reports (the CSV column) *)
  insert_pct : int;
  remove_pct : int;
  scan_pct : int;
  enqueue_pct : int;
  dequeue_pct : int;
  migrate_pct : int;   (** remainder of 100 is [Get] *)
}

val write_dominated : mix
(** 50% insert / 50% remove (the paper's main workload). *)

val read_dominated : mix
(** 90% get / 5% insert / 5% remove (the Fig. 10 workload). *)

val profile_a : mix
(** Profile A, update-heavy: 50% insert / 50% remove. *)

val profile_b : mix
(** Profile B, read-heavy: 90% get / 5% insert / 5% remove. *)

val profile_c : mix
(** Profile C, read-only: 100% get. *)

val profile_d : mix
(** Profile D, queue churn: 50% enqueue / 50% dequeue. *)

val profile_e : mix
(** Profile E, scan-heavy: 90% scan / 5% insert / 5% remove. *)

val profile_f : mix
(** Profile F, migration-heavy: 60% insert / 10% remove / 2% migrate /
    28% get. *)

val profiles : mix list
(** Every named mix, legacy first. *)

val mix_name : mix -> string

val find_mix : string -> mix option
(** Case-insensitive lookup by {!field-mix_label}. *)

val get_pct : mix -> int
(** The [Get] remainder of the 100-point budget. *)

val required : mix -> Ibr_ds.Ds_intf.caps
(** The capabilities a rideable must export to run this mix. *)

type spec = {
  key_range : int;
  prefill_fraction : float;
  mix : mix;
}

val default_spec : spec
(** The paper's parameters: 2^16 keys, 3/4 prefilled, write-dominated. *)

val sim_key_range : string -> int
(** Simulator-scaled key range per rideable (see DESIGN.md §1). *)

val spec_for : ?mix:mix -> string -> spec
(** Simulator-scaled spec for a rideable name. *)

val pick_op : Ibr_runtime.Rng.t -> mix -> op
(** Exactly one [Rng.int rng 100] draw, thresholds in insert ->
    remove -> scan -> enqueue -> dequeue -> migrate order: legacy
    mixes keep their historical op streams bit-for-bit. *)

val pick_key : Ibr_runtime.Rng.t -> spec -> int

val scan_hi : spec -> int -> int
(** [scan_hi spec lo] — upper bound of a range scan starting at [lo]
    (~1/64th of the key range, clamped). *)

type zipf
(** Precomputed Zipfian CDF over a key range (hot keys at the low
    end); build once outside the simulated run. *)

val zipf : theta:float -> key_range:int -> zipf
(** [theta = 0] degenerates to uniform.
    @raise Invalid_argument if [key_range < 1] or [theta < 0]. *)

val zipf_pick : zipf -> Ibr_runtime.Rng.t -> int
(** One uniform draw plus a binary search; deterministic per seed. *)

val prefill :
  rng:Ibr_runtime.Rng.t -> spec:spec ->
  insert:(key:int -> value:int -> bool) -> unit
(** Insert each key with probability [prefill_fraction]. *)
