(** Workload generation (paper §5): fixed-time microbenchmarks of
    random operations with random keys, prefill of 3/4 of the key
    range, write-dominated or read-dominated mixes. *)

type op = Insert | Remove | Get

type mix = {
  insert_pct : int;
  remove_pct : int;   (** remainder of 100 is [Get] *)
}

val write_dominated : mix
(** 50% insert / 50% remove (the paper's main workload). *)

val read_dominated : mix
(** 90% get / 5% insert / 5% remove (the Fig. 10 workload). *)

val mix_name : mix -> string

type spec = {
  key_range : int;
  prefill_fraction : float;
  mix : mix;
}

val default_spec : spec
(** The paper's parameters: 2^16 keys, 3/4 prefilled, write-dominated. *)

val sim_key_range : string -> int
(** Simulator-scaled key range per rideable (see DESIGN.md §1). *)

val spec_for : ?mix:mix -> string -> spec
(** Simulator-scaled spec for a rideable name. *)

val pick_op : Ibr_runtime.Rng.t -> mix -> op
val pick_key : Ibr_runtime.Rng.t -> spec -> int

type zipf
(** Precomputed Zipfian CDF over a key range (hot keys at the low
    end); build once outside the simulated run. *)

val zipf : theta:float -> key_range:int -> zipf
(** [theta = 0] degenerates to uniform.
    @raise Invalid_argument if [key_range < 1] or [theta < 0]. *)

val zipf_pick : zipf -> Ibr_runtime.Rng.t -> int
(** One uniform draw plus a binary search; deterministic per seed. *)

val prefill :
  rng:Ibr_runtime.Rng.t -> spec:spec ->
  insert:(key:int -> value:int -> bool) -> unit
(** Insert each key with probability [prefill_fraction]. *)
