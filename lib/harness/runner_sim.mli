(** The simulator backend: run one (tracker x rideable x threads x
    workload) configuration on the discrete-event machine.

    Methodology follows §5: prefill, then a fixed-duration
    free-for-all in which each thread samples its local
    retired-but-unreclaimed count at every operation start (Fig. 9)
    while completions are counted for throughput (Fig. 8).  Threads
    beyond the core count queue for cores, reproducing the paper's
    oversubscription regime.

    A {!faults} profile layers crash faults, an allocator capacity
    sized from the post-prefill working set, and the ejection
    {!Watchdog} on top (DESIGN.md §7).  The run loop itself is the
    backend-shared {!Run_engine}; this module owns the scheduler knobs
    each profile implies and the machine construction. *)

type faults = Runner_intf.faults =
  | No_faults
  | Stall_storm of { stall_prob : float; stall_len : int }
      (** Amplified involuntary stalls (oversubscription regime). *)
  | Crash of { crash_prob : float; max_crashes : int }
      (** Probabilistic crash faults; a crashed thread's reservations
          stay pinned forever ({!Ibr_runtime.Sched.crash}). *)
  | Crash_capped of {
      crash_prob : float;
      max_crashes : int;
      slack_per_thread : int;
    }
      (** Crash faults plus a heap capacity of post-prefill live
          blocks + [threads * slack_per_thread]; exhausted operations
          abort gracefully and are counted, not completed. *)
  | Crash_watchdog of {
      crash_prob : float;
      max_crashes : int;
      period : int;
      grace : int;
    }
      (** Crash faults plus the ejection watchdog with the given check
          period (virtual cycles) and grace (checks with no progress
          before ejection). *)
  | Stall_watchdog of { period : int; grace : int }
      (** Watchdog detection without crash injection: the engine parks
          worker 0 between operations (holding no reservation, so its
          ejection is sound by construction) and the watchdog must
          notice and eject it.  Runs on both backends. *)
  | Stall_neutralize of {
      stall_prob : float;
      stall_len : int;
      period : int;
      grace : int;
    }
      (** Stall-storm injection with a {e neutralizing} watchdog
          (DEBRA+, DESIGN.md §12): a worker frozen for
          [period * grace] receives a restart signal instead of being
          ejected — it drops and re-establishes protection and keeps
          working.  Stall injection stays on, because neutralizing a
          live thread is sound where ejecting one is not.  Runs on
          both backends. *)

val fault_profiles : (string * faults) list
(** Named presets: ["none"], ["stall-storm"], ["crash"],
    ["crash+capped"], ["crash+watchdog"], ["stall+watchdog"],
    ["stall+neutralize"] (= {!Runner_intf.fault_profiles}). *)

val faults_of_string : string -> faults option

type config = {
  threads : int;
  horizon : int;                 (** virtual run length *)
  sched : Ibr_runtime.Sched.config;
  seed : int;
  tracker_cfg : Ibr_core.Tracker_intf.config;
  spec : Workload.spec;
  faults : faults;
}

val default_config :
  ?threads:int -> ?horizon:int -> ?seed:int -> ?cores:int ->
  ?faults:faults -> spec:Workload.spec -> unit -> config

val sched_config : config -> Ibr_runtime.Sched.config
(** The scheduler knobs the fault profile implies (crash profiles zero
    [stall_prob], etc.). *)

val run :
  tracker_name:string -> ds_name:string -> (module Ibr_ds.Ds_intf.RIDEABLE) ->
  config -> Stats.t

val run_named :
  tracker_name:string -> ds_name:string -> config -> Stats.t option
(** Resolve names through the registries; [None] if the pairing is
    incompatible (e.g. POIBR on a mutable-pointer structure). *)
