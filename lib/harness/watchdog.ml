(* Ejection watchdog (DEBRA+/NBR-style neutralization; DESIGN.md §7).

   A monitor thread wakes every [period] time units and compares each
   worker's operation counter against its last observation.  A worker
   that has completed at least one operation (so startup latency
   cannot be mistaken for death) and then shows no progress for
   [grace] consecutive checks is presumed crashed: its reservations
   are expired through the tracker's [eject] hook, unpinning every
   retired block it held.

   The monitoring state and per-check scan ([check_round]) are backend
   independent; two drivers exist.  [spawn] rides the simulated
   machine as one more fiber ([Hooks.step period] per round).
   [spawn_exec] runs the same scan on any {!Runner_intf.exec} — on
   domains that is a real monitor domain sleeping [period]
   microseconds of monotonic wall clock per round, reading the
   workers' progress counters racily (stale reads only delay an
   ejection by a round, which the grace budget absorbs).

   The progress heuristic is exactly that — a heuristic.  Ejecting a
   thread that is merely slow (deep oversubscription, a long injected
   stall, an OS-descheduled domain) readmits use-after-free, because
   the thread may still dereference blocks its reservation was
   protecting.  [grace * period] must therefore exceed the longest
   legitimate dispatch gap; fault profiles that arm the watchdog
   disable stall injection for the same reason, and the wall-clock
   default (15 ms x 3) dwarfs an OS scheduling quantum.  See the
   soundness caveat on {!Ibr_core.Tracker_intf}. *)

open Ibr_runtime

type t = {
  threads : int;
  grace : int;
  active : int -> bool;
  progress : int -> int;
  footprint : unit -> int;
  eject : int -> unit;
  last : int array;            (* min_int = not yet armed *)
  stale : int array;
  mutable ejections : int;
  mutable recovered : int;
  ejected : bool array;
  footprint_at_eject : int option array;
}

let ejections w = w.ejections
let recovered w = w.recovered
let ejected w tid = w.ejected.(tid)

(* Watchdog instances are per-run; the metric is published at end. *)
let gauge = Ibr_obs.Metrics.register_gauge ~name:"ejections" ~order:510
let publish w = gauge := w.ejections

let make ~period ~grace ~threads ~active ~progress ~footprint ~eject =
  if period < 1 then invalid_arg "Watchdog: period < 1";
  if grace < 1 then invalid_arg "Watchdog: grace < 1";
  {
    threads;
    grace;
    active;
    progress;
    footprint;
    eject;
    last = Array.make threads min_int;
    stale = Array.make threads 0;
    ejections = 0;
    recovered = 0;
    ejected = Array.make threads false;
    footprint_at_eject = Array.make threads None;
  }

(* One monitoring scan over every census slot. *)
let check_round w =
  for tid = 0 to w.threads - 1 do
    if not (w.active tid) then begin
      (* Detached slot (dynamic census): a free slot has no
         occupant to monitor.  Forget its history so a future
         occupant re-arms from scratch — ejecting a joiner
         against the leaver's counter would neutralize a live
         thread, which readmits use-after-free. *)
      w.last.(tid) <- min_int;
      w.stale.(tid) <- 0;
      w.ejected.(tid) <- false;
      w.footprint_at_eject.(tid) <- None
    end
    else if w.ejected.(tid) then begin
      (* Credit the footprint drop since ejection once, at the
         next check — by then the workers' sweeps have had a
         chance to reclaim what the dead reservation pinned. *)
      match w.footprint_at_eject.(tid) with
      | Some before ->
        let fp = w.footprint () in
        if fp < before then w.recovered <- w.recovered + (before - fp);
        w.footprint_at_eject.(tid) <- None
      | None -> ()
    end
    else begin
      let p = w.progress tid in
      if w.last.(tid) = min_int then begin
        (* Arm only after the first completed operation. *)
        if p > 0 then w.last.(tid) <- p
      end
      else if p = w.last.(tid) then begin
        w.stale.(tid) <- w.stale.(tid) + 1;
        if w.stale.(tid) >= w.grace then begin
          w.footprint_at_eject.(tid) <- Some (w.footprint ());
          w.eject tid;
          Ibr_obs.Probe.ejection ~victim:tid;
          w.ejected.(tid) <- true;
          w.ejections <- w.ejections + 1
        end
      end
      else begin
        w.stale.(tid) <- 0;
        w.last.(tid) <- p
      end
    end
  done

let spawn ~sched ~period ~grace ~threads ?(active = fun _ -> true)
    ~progress ~footprint ~eject () =
  let w = make ~period ~grace ~threads ~active ~progress ~footprint ~eject in
  ignore
    (Sched.spawn sched (fun _wtid ->
       let rec loop () =
         Hooks.step period;
         check_round w;
         loop ()
       in
       loop ()));
  w

let spawn_exec ~(exec : Runner_intf.exec) ~period ~grace ~threads
    ?(active = fun _ -> true) ~progress ~footprint ~eject () =
  Runner_intf.require_capability exec "watchdog";
  let w = make ~period ~grace ~threads ~active ~progress ~footprint ~eject in
  exec.spawn_aux (fun () ->
    let rec loop () =
      if exec.aux_running () then begin
        exec.wait period;
        check_round w;
        loop ()
      end
    in
    loop ());
  w
