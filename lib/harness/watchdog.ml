(* Ejection watchdog (DEBRA+/NBR-style neutralization; DESIGN.md §7).

   A monitor thread on the simulated machine wakes every [period]
   virtual cycles and compares each worker's operation counter against
   its last observation.  A worker that has completed at least one
   operation (so startup latency cannot be mistaken for death) and
   then shows no progress for [grace] consecutive checks is presumed
   crashed: its reservations are expired through the tracker's [eject]
   hook, unpinning every retired block it held.

   The progress heuristic is exactly that — a heuristic.  Ejecting a
   thread that is merely slow (deep oversubscription, a long injected
   stall) readmits use-after-free, because the thread may still
   dereference blocks its reservation was protecting.  [grace * period]
   must therefore exceed the longest legitimate dispatch gap; fault
   profiles that arm the watchdog disable stall injection for the same
   reason.  See the soundness caveat on {!Ibr_core.Tracker_intf}. *)

open Ibr_runtime

type t = {
  threads : int;
  mutable ejections : int;
  mutable recovered : int;
  ejected : bool array;
  footprint_at_eject : int option array;
}

let ejections w = w.ejections
let recovered w = w.recovered
let ejected w tid = w.ejected.(tid)

(* Watchdog instances are per-run; the metric is published at end. *)
let gauge = Ibr_obs.Metrics.register_gauge ~name:"ejections" ~order:510
let publish w = gauge := w.ejections

let spawn ~sched ~period ~grace ~threads ?(active = fun _ -> true)
    ~progress ~footprint ~eject () =
  if period < 1 then invalid_arg "Watchdog.spawn: period < 1";
  if grace < 1 then invalid_arg "Watchdog.spawn: grace < 1";
  let w = {
    threads;
    ejections = 0;
    recovered = 0;
    ejected = Array.make threads false;
    footprint_at_eject = Array.make threads None;
  } in
  let last = Array.make threads min_int in   (* min_int = not yet armed *)
  let stale = Array.make threads 0 in
  ignore
    (Sched.spawn sched (fun _wtid ->
       let rec loop () =
         Hooks.step period;
         for tid = 0 to threads - 1 do
           if not (active tid) then begin
             (* Detached slot (dynamic census): a free slot has no
                occupant to monitor.  Forget its history so a future
                occupant re-arms from scratch — ejecting a joiner
                against the leaver's counter would neutralize a live
                thread, which readmits use-after-free. *)
             last.(tid) <- min_int;
             stale.(tid) <- 0;
             w.ejected.(tid) <- false;
             w.footprint_at_eject.(tid) <- None
           end
           else if w.ejected.(tid) then begin
             (* Credit the footprint drop since ejection once, at the
                next check — by then the workers' sweeps have had a
                chance to reclaim what the dead reservation pinned. *)
             match w.footprint_at_eject.(tid) with
             | Some before ->
               let fp = footprint () in
               if fp < before then w.recovered <- w.recovered + (before - fp);
               w.footprint_at_eject.(tid) <- None
             | None -> ()
           end
           else begin
             let p = progress tid in
             if last.(tid) = min_int then begin
               (* Arm only after the first completed operation. *)
               if p > 0 then last.(tid) <- p
             end
             else if p = last.(tid) then begin
               stale.(tid) <- stale.(tid) + 1;
               if stale.(tid) >= grace then begin
                 w.footprint_at_eject.(tid) <- Some (footprint ());
                 eject tid;
                 Ibr_obs.Probe.ejection ~victim:tid;
                 w.ejected.(tid) <- true;
                 w.ejections <- w.ejections + 1
               end
             end
             else begin
               stale.(tid) <- 0;
               last.(tid) <- p
             end
           end
         done;
         loop ()
       in
       loop ()));
  w
