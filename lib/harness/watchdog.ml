(* Ejection/neutralization watchdog (DEBRA+/NBR-style; DESIGN.md §7,
   §12).

   A monitor thread wakes every [period] time units and compares each
   worker's operation counter against its last observation.  A worker
   that has completed at least one operation (so startup latency
   cannot be mistaken for death) and then shows no progress for
   [grace] consecutive checks is presumed crashed, and the configured
   {!remedy} is applied:

   - [Eject] (the default, DESIGN.md §7): the worker's reservations
     are expired through the tracker's [eject] hook, unpinning every
     retired block it held.  The worker is written off — but not
     forever: if its progress counter moves again (the "dead" thread
     was merely slow, or a joiner reuses the census slot), the slot is
     re-armed and monitored afresh rather than left in a blind spot.

   - [Neutralize deliver] (DEBRA+, DESIGN.md §12): [deliver tid]
     sends the victim a restart signal instead of writing it off.
     The victim unwinds its current attempt at the next delivery
     point, recovers (drops and re-establishes protection), and keeps
     working.  The slot stays monitored: when the counter moves again
     the thread is counted [recovered]; if it stays frozen for
     another [grace] checks the signal is delivered again.

   The monitoring state and per-check scan ([check_round]) are backend
   independent; two drivers exist.  [spawn] rides the simulated
   machine as one more fiber ([Hooks.step period] per round).
   [spawn_exec] runs the same scan on any {!Runner_intf.exec} — on
   domains that is a real monitor domain sleeping [period]
   microseconds of monotonic wall clock per round, reading the
   workers' progress counters racily (stale reads only delay an
   ejection by a round, which the grace budget absorbs).

   The progress heuristic is exactly that — a heuristic.  Ejecting a
   thread that is merely slow (deep oversubscription, a long injected
   stall, an OS-descheduled domain) readmits use-after-free, because
   the thread may still dereference blocks its reservation was
   protecting.  [grace * period] must therefore exceed the longest
   legitimate dispatch gap; fault profiles that arm an *ejecting*
   watchdog disable stall injection for the same reason, and the
   wall-clock default (15 ms x 3) dwarfs an OS scheduling quantum.
   Neutralization has no such caveat: signalling a live thread is
   sound (it restarts an attempt it could have lost to a CAS race
   anyway), which is why the stall+neutralize profile may keep stall
   injection on.  See the soundness caveat on
   {!Ibr_core.Tracker_intf}. *)

open Ibr_runtime

type remedy =
  | Eject
  | Neutralize of (int -> unit)

type t = {
  threads : int;
  grace : int;
  remedy : remedy;
  active : int -> bool;
  progress : int -> int;
  footprint : unit -> int;
  eject : int -> unit;
  last : int array;            (* min_int = not yet armed *)
  stale : int array;
  mutable ejections : int;
  mutable neutralizations : int;
  mutable recovered : int;     (* threads that resumed after a signal *)
  mutable footprint_recovered : int;
  ejected : bool array;
  neutralized : bool array;    (* signal delivered, recovery pending *)
  footprint_at_remedy : int option array;
}

let ejections w = w.ejections
let neutralizations w = w.neutralizations
let recovered w = w.recovered
let footprint_recovered w = w.footprint_recovered
let ejected w tid = w.ejected.(tid)
let neutralized w tid = w.neutralized.(tid)

(* Watchdog instances are per-run; the metric is published at end.
   The neutralization gauges are registered lazily, at the first
   Neutralize-watchdog creation, so runs that never neutralize keep
   the legacy CSV layout byte-for-byte (same precedent as the
   histogram columns; see Metrics). *)
let gauge = Ibr_obs.Metrics.register_gauge ~name:"ejections" ~order:510

let neutralize_gauges =
  lazy
    ( Ibr_obs.Metrics.register_gauge ~name:"neutralizations" ~order:511,
      Ibr_obs.Metrics.register_gauge ~name:"recovered" ~order:512 )

let publish w =
  gauge := w.ejections;
  match w.remedy with
  | Eject -> ()
  | Neutralize _ ->
    let ng, rg = Lazy.force neutralize_gauges in
    ng := w.neutralizations;
    rg := w.recovered

let make ~period ~grace ~threads ~remedy ~active ~progress ~footprint
    ~eject =
  if period < 1 then invalid_arg "Watchdog: period < 1";
  if grace < 1 then invalid_arg "Watchdog: grace < 1";
  (match remedy with
   | Eject -> ()
   | Neutralize _ -> ignore (Lazy.force neutralize_gauges));
  {
    threads;
    grace;
    remedy;
    active;
    progress;
    footprint;
    eject;
    last = Array.make threads min_int;
    stale = Array.make threads 0;
    ejections = 0;
    neutralizations = 0;
    recovered = 0;
    footprint_recovered = 0;
    ejected = Array.make threads false;
    neutralized = Array.make threads false;
    footprint_at_remedy = Array.make threads None;
  }

(* Credit the footprint drop since the last remedy on [tid] once, at
   the following check — by then the workers' sweeps have had a chance
   to reclaim what the stuck reservation pinned. *)
let credit_footprint w tid =
  match w.footprint_at_remedy.(tid) with
  | Some before ->
    let fp = w.footprint () in
    if fp < before then
      w.footprint_recovered <- w.footprint_recovered + (before - fp);
    w.footprint_at_remedy.(tid) <- None
  | None -> ()

(* One monitoring scan over every census slot. *)
let check_round w =
  for tid = 0 to w.threads - 1 do
    if not (w.active tid) then begin
      (* Detached slot (dynamic census): a free slot has no
         occupant to monitor.  Forget its history so a future
         occupant re-arms from scratch — ejecting a joiner
         against the leaver's counter would neutralize a live
         thread, which readmits use-after-free. *)
      w.last.(tid) <- min_int;
      w.stale.(tid) <- 0;
      w.ejected.(tid) <- false;
      w.neutralized.(tid) <- false;
      w.footprint_at_remedy.(tid) <- None
    end
    else if w.ejected.(tid) then begin
      credit_footprint w tid;
      (* Re-monitor: an ejected slot whose counter moves again hosts
         a live thread after all (a stall outlasting grace, or a
         re-attach into the same slot).  Re-arm instead of leaving
         the slot in a permanent blind spot. *)
      let p = w.progress tid in
      if p <> w.last.(tid) then begin
        w.ejected.(tid) <- false;
        w.stale.(tid) <- 0;
        w.last.(tid) <- p
      end
    end
    else begin
      credit_footprint w tid;
      let p = w.progress tid in
      if w.last.(tid) = min_int then begin
        (* Arm only after the first completed operation. *)
        if p > 0 then w.last.(tid) <- p
      end
      else if p = w.last.(tid) then begin
        w.stale.(tid) <- w.stale.(tid) + 1;
        if w.stale.(tid) >= w.grace then begin
          w.footprint_at_remedy.(tid) <- Some (w.footprint ());
          match w.remedy with
          | Eject ->
            w.eject tid;
            Ibr_obs.Probe.ejection ~victim:tid;
            w.ejected.(tid) <- true;
            w.ejections <- w.ejections + 1
          | Neutralize deliver ->
            (* Heal instead of writing off: send the restart signal
               and keep watching.  The stale budget resets so the
               victim gets a full grace window to act on the signal
               before it is delivered again. *)
            deliver tid;
            w.neutralized.(tid) <- true;
            w.neutralizations <- w.neutralizations + 1;
            w.stale.(tid) <- 0
        end
      end
      else begin
        if w.neutralized.(tid) then begin
          (* The signal worked: the victim restarted and is making
             progress again. *)
          w.neutralized.(tid) <- false;
          w.recovered <- w.recovered + 1
        end;
        w.stale.(tid) <- 0;
        w.last.(tid) <- p
      end
    end
  done

let spawn ~sched ~period ~grace ~threads ?(remedy = Eject)
    ?(active = fun _ -> true) ~progress ~footprint ~eject () =
  let w =
    make ~period ~grace ~threads ~remedy ~active ~progress ~footprint
      ~eject
  in
  ignore
    (Sched.spawn sched (fun _wtid ->
       let rec loop () =
         Hooks.step period;
         check_round w;
         loop ()
       in
       loop ()));
  w

let spawn_exec ~(exec : Runner_intf.exec) ~period ~grace ~threads
    ?(remedy = Eject) ?(active = fun _ -> true) ~progress ~footprint
    ~eject () =
  Runner_intf.require_capability exec "watchdog";
  (match remedy with
   | Eject -> ()
   | Neutralize _ -> Runner_intf.require_capability exec "neutralize");
  let w =
    make ~period ~grace ~threads ~remedy ~active ~progress ~footprint
      ~eject
  in
  exec.spawn_aux (fun () ->
    let rec loop () =
      if exec.aux_running () then begin
        exec.wait period;
        check_round w;
        loop ()
      end
    in
    loop ());
  w
