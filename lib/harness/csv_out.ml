(* CSV output, matching the artifact's workflow of dumping rows and
   post-processing externally.  The row header is derived from the
   metric registry (via [Stats.csv_header]), so new metrics appear
   here without touching this file. *)

let write_rows path rows =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
    output_string oc (Stats.csv_header ());
    output_char oc '\n';
    List.iter (fun r ->
      output_string oc (Stats.to_csv_row r);
      output_char oc '\n')
      rows)

let append_figure oc (fig : Chart.figure) =
  List.iter (fun (s : Chart.series) ->
    List.iter (fun (x, y) ->
      output_string oc
        (Printf.sprintf "%s,%s,%d,%.6f\n" fig.fig_id s.label x y))
      s.points)
    fig.series

let write_figures path figs =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
    output_string oc "fig,series,threads,value\n";
    List.iter (append_figure oc) figs)

(* A figure as tidy CSV: fig_id,series,x,y. *)
let write_figure path fig = write_figures path [ fig ]
