(* Workload generation (paper §5, extended).

   Fixed-time microbenchmark: threads call random operations with
   random keys on a shared structure.  The paper prefills three
   quarters of the key range, then runs either the write-dominated mix
   (50% insert / 50% remove) or the read-dominated mix (90% get / 5%
   insert / 5% remove).  On top of those two, this module names
   YCSB-like profiles A–F spanning the capability surface: map point
   ops, range scans, queue churn, and forced table migrations.

   Determinism contract: [pick_op] consumes exactly ONE [Rng.int rng
   100] draw per call, with thresholds tested in insert -> remove ->
   scan -> enqueue -> dequeue -> migrate order.  The legacy mixes keep
   every new percentage at zero, so their op streams (and the golden
   CSVs derived from them) are byte-identical to the pre-profile
   harness.

   Key ranges: the paper uses 2^16 for every structure.  Under the
   instruction-level simulator a 2^16-key ordered list would spend
   ~10^5 cycles per traversal, so per-structure ranges are scaled to
   keep per-op work in a realistic band while preserving structure
   size ratios; see DESIGN.md §1 and the [spec_for] table. *)

open Ibr_runtime

type op = Insert | Remove | Get | Scan | Enqueue | Dequeue | Migrate

type mix = {
  mix_label : string;
  insert_pct : int;
  remove_pct : int;
  scan_pct : int;
  enqueue_pct : int;
  dequeue_pct : int;
  migrate_pct : int;
  (* remainder = Get *)
}

let point_mix name ~insert ~remove = {
  mix_label = name;
  insert_pct = insert;
  remove_pct = remove;
  scan_pct = 0;
  enqueue_pct = 0;
  dequeue_pct = 0;
  migrate_pct = 0;
}

let write_dominated = point_mix "write-dominated" ~insert:50 ~remove:50
let read_dominated = point_mix "read-dominated" ~insert:5 ~remove:5

(* YCSB-like profiles.  A–C mirror the YCSB core point-op mixes; D–F
   exercise the queue, range and bulk capabilities. *)
let profile_a = point_mix "A" ~insert:50 ~remove:50
let profile_b = point_mix "B" ~insert:5 ~remove:5
let profile_c = point_mix "C" ~insert:0 ~remove:0

let profile_d = {
  (point_mix "D" ~insert:0 ~remove:0) with
  enqueue_pct = 50;
  dequeue_pct = 50;
}

let profile_e = {
  (point_mix "E" ~insert:5 ~remove:5) with
  scan_pct = 90;
}

let profile_f = {
  (point_mix "F" ~insert:60 ~remove:10) with
  migrate_pct = 2;
}

let profiles =
  [
    write_dominated;
    read_dominated;
    profile_a;
    profile_b;
    profile_c;
    profile_d;
    profile_e;
    profile_f;
  ]

let mix_name m = m.mix_label

let find_mix name =
  let target = String.lowercase_ascii name in
  List.find_opt
    (fun m -> String.lowercase_ascii m.mix_label = target)
    profiles

let get_pct m =
  100
  - (m.insert_pct + m.remove_pct + m.scan_pct + m.enqueue_pct
     + m.dequeue_pct + m.migrate_pct)

(* The capabilities a rideable must export to run this mix. *)
let required m =
  {
    Ibr_ds.Ds_intf.map =
      m.insert_pct + m.remove_pct + get_pct m > 0;
    queue = m.enqueue_pct + m.dequeue_pct > 0;
    range = m.scan_pct > 0;
    bulk = m.migrate_pct > 0;
  }

type spec = {
  key_range : int;
  prefill_fraction : float;
  mix : mix;
}

let default_spec = {
  key_range = 65536;
  prefill_fraction = 0.75;
  mix = write_dominated;
}

(* Simulator-scaled key ranges per rideable. *)
let sim_key_range = function
  | "list" -> 256
  | "hashmap" -> 16384
  | "rhashmap" -> 16384
  | "nmtree" -> 4096
  | "bonsai" -> 2048
  | "stack" | "msqueue" -> 4096
  | _ -> 4096

let spec_for ?(mix = write_dominated) ds_name =
  { default_spec with key_range = sim_key_range ds_name; mix }

(* Exactly one draw; legacy mixes hit only the first two thresholds,
   preserving their historical op streams bit-for-bit. *)
let pick_op rng mix =
  let r = Rng.int rng 100 in
  if r < mix.insert_pct then Insert
  else if r < mix.insert_pct + mix.remove_pct then Remove
  else if r < mix.insert_pct + mix.remove_pct + mix.scan_pct then Scan
  else if
    r < mix.insert_pct + mix.remove_pct + mix.scan_pct + mix.enqueue_pct
  then Enqueue
  else if
    r
    < mix.insert_pct + mix.remove_pct + mix.scan_pct + mix.enqueue_pct
      + mix.dequeue_pct
  then Dequeue
  else if
    r
    < mix.insert_pct + mix.remove_pct + mix.scan_pct + mix.enqueue_pct
      + mix.dequeue_pct + mix.migrate_pct
  then Migrate
  else Get

let pick_key rng spec = Rng.int rng spec.key_range

(* A scan covers ~1/64th of the key range starting at the drawn key —
   wide enough to traverse retire-heavy regions, narrow enough that a
   scan costs a bounded multiple of a point op. *)
let scan_hi spec lo =
  min (spec.key_range - 1) (lo + max 1 (spec.key_range / 64) - 1)

(* Zipfian key skew for the service simulation: P(k) proportional to
   1/(k+1)^theta over [0, key_range), hot keys at the low end.  The
   CDF is precomputed once (outside the simulated run — building it
   is setup, not workload); sampling is one uniform draw plus a
   binary search, deterministic for a given seed.  theta = 0
   degenerates to the uniform microbenchmark distribution. *)
type zipf = { cdf : float array }

let zipf ~theta ~key_range =
  if key_range < 1 then invalid_arg "Workload.zipf: key_range must be >= 1";
  if theta < 0.0 then invalid_arg "Workload.zipf: theta must be >= 0";
  let cdf = Array.make key_range 0.0 in
  let total = ref 0.0 in
  for k = 0 to key_range - 1 do
    total := !total +. (1.0 /. Float.pow (float_of_int (k + 1)) theta);
    cdf.(k) <- !total
  done;
  let norm = !total in
  for k = 0 to key_range - 1 do
    cdf.(k) <- cdf.(k) /. norm
  done;
  { cdf }

let zipf_pick z rng =
  let u = Rng.float rng in
  (* Smallest k with cdf.(k) > u. *)
  let lo = ref 0 and hi = ref (Array.length z.cdf - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if z.cdf.(mid) > u then hi := mid else lo := mid + 1
  done;
  !lo

(* Deterministic prefill: insert each key independently with
   probability [prefill_fraction], in shuffled order — sorted-order
   insertion would degenerate the unbalanced external BST into a
   spine and distort every figure it appears in. *)
let prefill ~rng ~spec ~insert =
  let keys = Array.init spec.key_range Fun.id in
  Rng.shuffle_in_place rng keys;
  Array.iter
    (fun key ->
       if Rng.chance rng spec.prefill_fraction then
         ignore (insert ~key ~value:key))
    keys
