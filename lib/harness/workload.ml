(* Workload generation (paper §5).

   Fixed-time microbenchmark: threads call random operations with
   random keys on a shared key-value structure.  The paper prefills
   three quarters of the key range, then runs either the
   write-dominated mix (50% insert / 50% remove) or the read-dominated
   mix (90% get / 5% insert / 5% remove).

   Key ranges: the paper uses 2^16 for every structure.  Under the
   instruction-level simulator a 2^16-key ordered list would spend
   ~10^5 cycles per traversal, so per-structure ranges are scaled to
   keep per-op work in a realistic band while preserving structure
   size ratios; see DESIGN.md §1 and the [spec_for] table. *)

open Ibr_runtime

type op = Insert | Remove | Get

type mix = {
  insert_pct : int;
  remove_pct : int;
  (* remainder = Get *)
}

let write_dominated = { insert_pct = 50; remove_pct = 50 }
let read_dominated = { insert_pct = 5; remove_pct = 5 }

let mix_name m =
  if m = write_dominated then "write-dominated"
  else if m = read_dominated then "read-dominated"
  else Printf.sprintf "%din/%drm" m.insert_pct m.remove_pct

type spec = {
  key_range : int;
  prefill_fraction : float;
  mix : mix;
}

let default_spec = {
  key_range = 65536;
  prefill_fraction = 0.75;
  mix = write_dominated;
}

(* Simulator-scaled key ranges per rideable. *)
let sim_key_range = function
  | "list" -> 256
  | "hashmap" -> 16384
  | "nmtree" -> 4096
  | "bonsai" -> 2048
  | _ -> 4096

let spec_for ?(mix = write_dominated) ds_name =
  { default_spec with key_range = sim_key_range ds_name; mix }

let pick_op rng mix =
  let r = Rng.int rng 100 in
  if r < mix.insert_pct then Insert
  else if r < mix.insert_pct + mix.remove_pct then Remove
  else Get

let pick_key rng spec = Rng.int rng spec.key_range

(* Zipfian key skew for the service simulation: P(k) proportional to
   1/(k+1)^theta over [0, key_range), hot keys at the low end.  The
   CDF is precomputed once (outside the simulated run — building it
   is setup, not workload); sampling is one uniform draw plus a
   binary search, deterministic for a given seed.  theta = 0
   degenerates to the uniform microbenchmark distribution. *)
type zipf = { cdf : float array }

let zipf ~theta ~key_range =
  if key_range < 1 then invalid_arg "Workload.zipf: key_range must be >= 1";
  if theta < 0.0 then invalid_arg "Workload.zipf: theta must be >= 0";
  let cdf = Array.make key_range 0.0 in
  let total = ref 0.0 in
  for k = 0 to key_range - 1 do
    total := !total +. (1.0 /. Float.pow (float_of_int (k + 1)) theta);
    cdf.(k) <- !total
  done;
  let norm = !total in
  for k = 0 to key_range - 1 do
    cdf.(k) <- cdf.(k) /. norm
  done;
  { cdf }

let zipf_pick z rng =
  let u = Rng.float rng in
  (* Smallest k with cdf.(k) > u. *)
  let lo = ref 0 and hi = ref (Array.length z.cdf - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if z.cdf.(mid) > u then hi := mid else lo := mid + 1
  done;
  !lo

(* Deterministic prefill: insert each key independently with
   probability [prefill_fraction], in shuffled order — sorted-order
   insertion would degenerate the unbalanced external BST into a
   spine and distort every figure it appears in. *)
let prefill ~rng ~spec ~insert =
  let keys = Array.init spec.key_range Fun.id in
  Rng.shuffle_in_place rng keys;
  Array.iter
    (fun key ->
       if Rng.chance rng spec.prefill_fraction then
         ignore (insert ~key ~value:key))
    keys
