(** Result record for one benchmark run, plus the sampling helpers
    used to compute the paper's Fig. 9 metric (average
    retired-but-unreclaimed blocks at operation start).

    Identity and figure quantities are record fields; all other
    telemetry is a {!Ibr_obs.Metrics} registry snapshot taken by the
    runner — look values up with {!metric}.  Rows built outside a
    runner use [Ibr_obs.Metrics.zero ()] for the snapshot. *)

type t = {
  tracker : string;
  ds : string;
  threads : int;
  mix : string;
  backend : string;         (** provenance: ["sim"] or ["domains"] *)
  ops : int;
  makespan : int;           (** virtual cycles (sim) or wall-clock
                                microseconds (domains) *)
  throughput : float;       (** ops per million time units *)
  avg_unreclaimed : float;  (** the Fig. 9 metric *)
  peak_unreclaimed : int;
  samples : int;
  metrics : Ibr_obs.Metrics.snapshot;
}

val metric : t -> string -> int
(** [metric r name] is the registry value for column [name] in this
    row (0 if absent — e.g. a column registered after the row was
    taken). *)

val throughput : ops:int -> makespan:int -> float

val pp : Format.formatter -> t -> unit

val csv_header : unit -> string
(** The identity/figure columns followed by every registered metric
    column, in order.  A function: the column set can grow when
    histogram metrics are enabled. *)

val to_csv_row : t -> string

val csv_header_tagged : unit -> string
val to_csv_row_tagged : t -> string
(** {!csv_header}/{!to_csv_row} with a leading [backend] provenance
    column, for campaigns that mix simulator and hardware rows in one
    table.  The untagged layout is pinned by the golden CSV and stays
    unchanged. *)

(** Incremental mean/peak accumulator. *)
type sampler = {
  mutable sum : float;
  mutable n : int;
  mutable peak : int;
}

val make_sampler : unit -> sampler
val sample : sampler -> int -> unit
val merge_samplers : sampler list -> sampler
val mean : sampler -> float
