(** Result record for one benchmark run, plus the sampling helpers
    used to compute the paper's Fig. 9 metric (average
    retired-but-unreclaimed blocks at operation start). *)

type t = {
  tracker : string;
  ds : string;
  threads : int;
  mix : string;
  ops : int;
  makespan : int;           (** virtual (sim) or wall (domains) time *)
  throughput : float;       (** ops per million time units *)
  avg_unreclaimed : float;  (** the Fig. 9 metric *)
  peak_unreclaimed : int;
  samples : int;
  alloc : Ibr_core.Alloc.stats;
  epoch : int;
  faults : int;
  sweep : Ibr_core.Tracker_common.Sweep_stats.snap;
  (** Reclamation-sweep telemetry accumulated during the run. *)

  crashes : int;    (** crash faults delivered during the run *)
  ejections : int;  (** stale threads neutralized by the watchdog *)
}

val no_sweep : Ibr_core.Tracker_common.Sweep_stats.snap
(** All-zero sweep telemetry, for rows built outside a runner. *)

val throughput : ops:int -> makespan:int -> float

val pp : Format.formatter -> t -> unit

val csv_header : string
val to_csv_row : t -> string

(** Incremental mean/peak accumulator. *)
type sampler = {
  mutable sum : float;
  mutable n : int;
  mutable peak : int;
}

val make_sampler : unit -> sampler
val sample : sampler -> int -> unit
val merge_samplers : sampler list -> sampler
val mean : sampler -> float
