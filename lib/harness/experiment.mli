(** The paper's evaluation, experiment by experiment (index in
    DESIGN.md §3). *)

val default_threads : int list
(** The full thread ladder, spanning both sides of the 72-core mark. *)

val quick_threads : int list
(** Coarse ladder for fast runs. *)

val horizon_for : ?cores:int -> int -> int
(** Run length per thread count: oversubscribed runs need several
    stall-lengths to reach the Fig. 9 steady state. *)

val lineup : string -> Ibr_core.Registry.entry list
(** Schemes plotted for a rideable (paper set filtered by
    compatibility). *)

type sweep_result = {
  throughput_fig : Chart.figure;
  space_fig : Chart.figure;
  rows : Stats.t list;
}

val sweep :
  ?threads_list:int list -> ?horizon:int -> ?seed:int ->
  ?mix:Workload.mix -> fig_thr:string -> fig_spc:string -> string ->
  sweep_result
(** One Fig. 8/9 panel: thread sweep of every compatible scheme on one
    rideable; one pass yields both the throughput and space curves. *)

val panel_ids : (string * string * string) list
(** rideable -> (Fig. 8 panel, Fig. 9 panel). *)

val fig8_9 :
  ?threads_list:int list -> ?horizon:int -> ?seed:int -> string ->
  sweep_result
(** The named panel for a rideable ("list" -> fig8a/fig9a, ...). *)

val fig10 :
  ?threads_list:int list -> ?horizon:int -> ?seed:int -> unit ->
  sweep_result
(** NM tree, read-dominated (space metric is the paper's Fig. 10). *)

val fig7_table : unit -> string
(** The qualitative tradeoff table. *)

val empty_freq_sweep :
  ?ks:int list -> ?threads:int -> ?horizon:int -> ?tracker_name:string ->
  ?ds_name:string -> unit -> Chart.figure * Chart.figure * Stats.t list
(** §5's tuning discussion: space grows ~linearly in k, throughput
    stays flat for small k. *)

val fence_cost_sweep :
  ?fences:int list -> ?threads:int -> ?horizon:int -> ?ds_name:string ->
  unit -> Chart.figure
(** Ablation: sensitivity of the HP-vs-IBR gap to the fence cost. *)

val tagibr_strategy_sweep :
  ?threads_list:int list -> ?horizon:int -> unit -> Chart.figure
(** Ablation: born_before update strategies under list contention. *)

val retire_backend_sweep :
  ?trackers:string list -> ?threads_list:int list -> ?horizon:int ->
  ?ds_name:string -> ?seed:int -> unit -> Stats.t list
(** Ablation: rerun the same seeded workload under each retirement
    backend (List / Buckets / Gated); rows are labelled
    "TRACKER/backend".  Epoch-family trackers should examine strictly
    fewer blocks under Buckets/Gated than List for the same frees. *)

val retire_backend_table : Stats.t list -> string
(** Aligned text table of [retire_backend_sweep] rows (throughput and
    sweep telemetry incl. skipped sweeps and bucket occupancy). *)

val robustness_profiles : string list
(** Default fault-profile ladder of the robustness campaign. *)

val robustness_profiles_hw : string list
(** The subset the domains backend can honor (no crash injection). *)

type backend = Sim | Domains
(** Which machine a campaign runs on: the deterministic simulator or
    real OCaml domains (wall-clock, 1 cycle ~ 1 us). *)

val backend_name : backend -> string

val run_profile :
  backend:backend -> tracker_name:string -> ds_name:string ->
  threads:int -> cores:int -> horizon:int -> seed:int ->
  faults:Runner_intf.faults -> spec:Workload.spec -> Stats.t option
(** One campaign run on either backend; on [Domains] the virtual
    horizon becomes a wall-clock duration in microseconds.
    @raise Runner_intf.Unsupported if the profile needs a capability
    the backend lacks. *)

val robustness_sweep :
  ?backend:backend ->
  ?trackers:string list -> ?profiles:string list -> ?threads:int ->
  ?cores:int -> ?horizons:int list -> ?ds_name:string -> ?seed:int ->
  unit -> Stats.t list
(** The fault-injection campaign (DESIGN.md §7): the same seeded
    workload under each named fault profile across a ladder of run
    lengths; rows are labelled "TRACKER/profile".  Runs are wrapped in
    {!Ibr_core.Fault.with_counting} so allocator exhaustion is counted
    rather than fatal.  With [~backend:Domains] pass a profile list
    from {!robustness_profiles_hw}: unsupported profiles raise
    {!Runner_intf.Unsupported}. *)

val robustness_table : Stats.t list -> string
(** Aligned text table of campaign rows (peak unreclaimed, peak
    footprint, oom events, pressure retries, crashes, ejections). *)

(** A mechanically checked acceptance claim (appendix A.6). *)
type check = { claim : string; holds : bool; detail : string }

val headline_checks : Stats.t list -> check list

val robustness_checks : Stats.t list -> check list
(** The campaign's acceptance claims: (a) under a crashed thread EBR's
    peak unreclaimed grows with run length while HP/HE/2GEIBR stay
    bounded; (b) under crash+capped the robust schemes never exhaust
    the allocator while EBR does; (c) the watchdog ejects the crashed
    thread and restores EBR's bound; (d) under stall+neutralize —
    the same stall regime as stall-storm plus a neutralizing
    watchdog — EBR's and DEBRA's peaks stay bounded with zero
    ejections: stalled workers are healed, not written off
    (DESIGN.md §12). *)

val profile_rideables : (string * string) list
(** YCSB-like profile letter -> the capability-matched rideable the
    campaign runs it on (A/B/C on the hashmap, D on the MS queue, E on
    the NM tree's range scans, F on the resizable hashmap's
    migrations). *)

val profile_sweep :
  ?threads:int -> ?horizon:int -> ?seed:int -> unit -> Stats.t list
(** The workload-diversity campaign: each profile on its rideable
    under every compatible paper-set scheme, deterministic sim rows at
    one fixed thread count. *)

val profile_table : Stats.t list -> string
(** Markdown scheme x profile table of [profile_sweep] rows; each cell
    is "throughput / avg-unreclaimed", "--" where the scheme cannot
    run the profile's rideable. *)
