(* The paper's evaluation, experiment by experiment (see DESIGN.md §3
   for the index).  Each entry produces [Chart.figure]s plus the raw
   [Stats.t] rows.

   Scaling knobs: [scale] multiplies the simulated run length; the
   default thread ladder spans both sides of the 72-core mark so the
   oversubscription regime of Fig. 9 is exercised. *)

open Ibr_core

let default_threads = [ 1; 2; 4; 8; 16; 24; 36; 48; 60; 72; 84; 96 ]
let quick_threads = [ 1; 4; 16; 36; 72; 96 ]

type sweep_result = {
  throughput_fig : Chart.figure;
  space_fig : Chart.figure;
  rows : Stats.t list;
}

(* Trackers plotted for a given rideable: the paper's lineup filtered
   by compatibility (no HP/HE on Bonsai, POIBR only on Bonsai). *)
let lineup ds_name =
  let maker = Ibr_ds.Ds_registry.find_exn ds_name in
  List.filter
    (fun (e : Registry.entry) -> Ibr_ds.Ds_registry.compatible maker e.tracker)
    Registry.paper_set

(* Oversubscribed runs need a horizon several stall-lengths long to
   reach the steady state Fig. 9 plots; undersubscribed runs converge
   much sooner. *)
let horizon_for ?(cores = 72) threads =
  if threads > cores then 600_000 else 130_000

(* One Fig. 8/9 panel: sweep thread counts for every tracker on one
   rideable; the same runs yield the throughput and space curves. *)
let sweep ?(threads_list = default_threads) ?horizon
    ?(seed = 0xf16) ?(mix = Workload.write_dominated) ~fig_thr ~fig_spc
    ds_name =
  let spec = Workload.spec_for ~mix ds_name in
  let rows = ref [] in
  let series_of metric =
    List.filter_map
      (fun (e : Registry.entry) ->
         let points =
           List.filter_map
             (fun threads ->
                let horizon =
                  match horizon with
                  | Some h -> h
                  | None -> horizon_for threads
                in
                let cfg =
                  Runner_sim.default_config ~threads ~horizon
                    ~seed:(seed + threads) ~spec ()
                in
                match
                  Runner_sim.run_named ~tracker_name:e.name ~ds_name cfg
                with
                | None -> None
                | Some r ->
                  rows := r :: !rows;
                  Some (threads, metric r))
             threads_list
         in
         if points = [] then None
         else Some { Chart.label = e.name; points })
      (lineup ds_name)
  in
  (* Run the sweep once; collect throughput, then reuse rows for the
     space metric to avoid a second pass. *)
  let thr_series = series_of (fun r -> r.Stats.throughput) in
  let collected = List.rev !rows in
  let spc_series =
    List.filter_map
      (fun (e : Registry.entry) ->
         if e.name = "NoMM" then None  (* Fig. 9 omits the leaking baseline *)
         else
           let points =
             List.filter_map
               (fun r ->
                  if r.Stats.tracker = e.name then
                    Some (r.Stats.threads, r.Stats.avg_unreclaimed)
                  else None)
               collected
           in
           if points = [] then None
           else Some { Chart.label = e.name; points })
      (lineup ds_name)
  in
  {
    throughput_fig =
      { Chart.fig_id = fig_thr;
        title =
          Printf.sprintf "throughput, %s, %s" ds_name (Workload.mix_name mix);
        ylabel = "ops per Mcycle";
        series = thr_series };
    space_fig =
      { Chart.fig_id = fig_spc;
        title =
          Printf.sprintf "retired-unreclaimed, %s, %s" ds_name
            (Workload.mix_name mix);
        ylabel = "avg blocks at op start";
        series = spc_series };
    rows = collected;
  }

let panel_ids =
  [ ("list", "8a", "9a"); ("hashmap", "8b", "9b"); ("nmtree", "8c", "9c");
    ("bonsai", "8d", "9d") ]

let fig8_9 ?threads_list ?horizon ?seed ds_name =
  let _, fig_thr, fig_spc =
    List.find (fun (d, _, _) -> d = ds_name) panel_ids in
  sweep ?threads_list ?horizon ?seed ~fig_thr:("fig" ^ fig_thr)
    ~fig_spc:("fig" ^ fig_spc) ds_name

(* Fig. 10: NM tree, read-dominated, space metric. *)
let fig10 ?threads_list ?horizon ?seed () =
  sweep ?threads_list ?horizon ?seed ~mix:Workload.read_dominated
    ~fig_thr:"fig10-thr" ~fig_spc:"fig10" "nmtree"

(* Fig. 7: the qualitative tradeoff table. *)
let fig7_table () =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "%-12s %-6s %-9s %-8s %-6s %-7s %s\n" "scheme" "robust"
       "unreserve" "mutable" "slots" "ptr+w" "fence/read");
  List.iter
    (fun (name, (p : Tracker_intf.properties)) ->
       Buffer.add_string b
         (Printf.sprintf "%-12s %-6b %-9b %-8b %-6b %-7d %b\n" name p.robust
            p.needs_unreserve p.mutable_pointers p.bounded_slots
            p.pointer_tag_words p.fence_per_read))
    (Registry.fig7_rows ());
  Buffer.contents b

(* §5 tuning discussion: sweep the empty_freq knob k — space should
   grow roughly linearly in k while throughput stays flat for small k. *)
let empty_freq_sweep ?(ks = [ 1; 5; 10; 20; 30; 40; 50 ]) ?(threads = 16)
    ?(horizon = 150_000) ?(tracker_name = "2GEIBR") ?(ds_name = "hashmap") ()
  =
  let spec = Workload.spec_for ds_name in
  let results =
    List.filter_map
      (fun k ->
         let base = Runner_sim.default_config ~threads ~horizon ~spec () in
         let cfg =
           { base with
             tracker_cfg = { base.tracker_cfg with empty_freq = k } }
         in
         Option.map (fun r -> (k, r))
           (Runner_sim.run_named ~tracker_name ~ds_name cfg))
      ks
  in
  let fig metric ylabel suffix =
    { Chart.fig_id = "k-sweep-" ^ suffix;
      title =
        Printf.sprintf "empty_freq sweep, %s on %s, %d threads" tracker_name
          ds_name threads;
      ylabel;
      series =
        [ { Chart.label = tracker_name;
            points = List.map (fun (k, r) -> (k, metric r)) results } ] }
  in
  ( fig (fun r -> r.Stats.throughput) "ops per Mcycle" "throughput",
    fig (fun r -> r.Stats.avg_unreclaimed) "avg unreclaimed" "space",
    List.map snd results )

(* Ablation: sensitivity of the HP-vs-IBR gap to the fence cost. *)
let fence_cost_sweep ?(fences = [ 5; 20; 55; 120; 250 ]) ?(threads = 16)
    ?(horizon = 120_000) ?(ds_name = "hashmap") () =
  let spec = Workload.spec_for ds_name in
  let saved = !Prim.costs in
  Fun.protect ~finally:(fun () -> Prim.set_costs saved) (fun () ->
    let series name =
      { Chart.label = name;
        points =
          List.filter_map
            (fun fence ->
               Prim.set_costs (Ibr_runtime.Cost.with_fence saved fence);
               let cfg =
                 Runner_sim.default_config ~threads ~horizon ~spec () in
               Option.map
                 (fun r -> (fence, r.Stats.throughput))
                 (Runner_sim.run_named ~tracker_name:name ~ds_name cfg))
            fences }
    in
    { Chart.fig_id = "ablation-fence";
      title =
        Printf.sprintf "fence-cost sensitivity, %s, %d threads" ds_name
          threads;
      ylabel = "ops per Mcycle (x = fence cost)";
      series = [ series "HP"; series "HE"; series "2GEIBR"; series "EBR" ] })

(* Ablation: born_before update strategy under list contention. *)
let tagibr_strategy_sweep ?(threads_list = [ 4; 16; 36; 72 ])
    ?(horizon = 120_000) () =
  let spec = { (Workload.spec_for "list") with key_range = 48 } in
  let series name =
    { Chart.label = name;
      points =
        List.filter_map
          (fun threads ->
             let cfg =
               Runner_sim.default_config ~threads ~horizon ~spec () in
             Option.map
               (fun r -> (threads, r.Stats.throughput))
               (Runner_sim.run_named ~tracker_name:name ~ds_name:"list" cfg))
          threads_list }
  in
  { Chart.fig_id = "ablation-tagibr";
    title = "born_before strategies on a contended 48-key list";
    ylabel = "ops per Mcycle";
    series =
      [ series "TagIBR"; series "TagIBR-FAA"; series "TagIBR-WCAS";
        series "TagIBR-TPA" ] }

(* Ablation: retirement backend (List / Buckets / Gated).  Each run is
   repeated with every backend under the same seed and workload; rows
   label the tracker "NAME/backend" so the unchanged CSV schema
   carries the comparison.  The claim under test: for epoch-family
   trackers at high thread counts, Buckets and Gated examine strictly
   fewer blocks than List while freeing the same count per sweep
   budget — the limbo lists stop at the first protected bucket instead
   of touching every retired block. *)
let retire_backend_sweep
    ?(trackers = [ "EBR"; "QSBR"; "2GEIBR"; "TagIBR" ])
    ?(threads_list = [ 16; 32; 48 ]) ?(horizon = 150_000)
    ?(ds_name = "hashmap") ?(seed = 0xf1e) () =
  let spec = Workload.spec_for ds_name in
  let rows = ref [] in
  List.iter
    (fun tracker_name ->
       List.iter
         (fun threads ->
            List.iter
              (fun backend ->
                 let base =
                   Runner_sim.default_config ~threads ~horizon
                     ~seed:(seed + threads) ~spec ()
                 in
                 let cfg =
                   { base with
                     tracker_cfg =
                       { base.tracker_cfg with retire_backend = backend } }
                 in
                 match
                   Runner_sim.run_named ~tracker_name ~ds_name cfg
                 with
                 | None -> ()
                 | Some r ->
                   rows :=
                     { r with
                       Stats.tracker =
                         tracker_name ^ "/" ^ Reclaimer.backend_name backend }
                     :: !rows)
              Reclaimer.all_backends)
         threads_list)
    trackers;
  List.rev !rows

(* Render the backend-ablation rows as an aligned text table. *)
let retire_backend_table (rows : Stats.t list) =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "%-16s %-7s %-4s %10s %8s %10s %8s %8s %8s\n"
       "tracker/backend" "machine" "thr" "ops/Mcyc" "sweeps" "examined"
       "freed" "skipped" "buckets");
  List.iter
    (fun (r : Stats.t) ->
       let m = Stats.metric r in
       Buffer.add_string b
         (Printf.sprintf "%-16s %-7s %-4d %10.2f %8d %10d %8d %8d %8d\n"
            r.tracker r.backend r.threads r.throughput (m "sweeps")
            (m "sweep_examined") (m "sweep_freed") (m "sweeps_skipped")
            (m "sweep_buckets")))
    rows;
  Buffer.contents b

(* The robustness campaign (DESIGN.md §7): the same seeded workload
   under each fault profile, across run lengths.  Rows are labelled
   "TRACKER/profile" so the unchanged CSV schema carries the
   comparison; the horizon ladder is what exposes the headline claim —
   under a crashed thread a non-robust scheme's peak unreclaimed count
   grows with run length while the robust family stays flat.  Each run
   is wrapped in [Fault.with_counting] so an exhausted allocator is a
   counted event, not a campaign abort. *)
let robustness_profiles =
  [ "none"; "stall-storm"; "crash"; "crash+capped"; "crash+watchdog";
    "stall+watchdog"; "stall+neutralize" ]

(* The subset the domains backend can honor: wall-clock stalls, the
   parked-victim watchdog profile, and the neutralizing watchdog
   (restart signals ride the per-worker rail flags).  Crash injection
   needs the simulator — asking for it on hardware raises
   [Runner_intf.Unsupported] rather than measuring nothing. *)
let robustness_profiles_hw =
  [ "none"; "stall-storm"; "stall+watchdog"; "stall+neutralize" ]

type backend = Sim | Domains

let backend_name = function Sim -> "sim" | Domains -> "domains"

(* One campaign run on either backend.  The 1 cycle ~ 1 us convention
   maps a virtual horizon to a wall-clock duration, so the same ladder
   drives both columns. *)
let run_profile ~backend ~tracker_name ~ds_name ~threads ~cores ~horizon
    ~seed ~faults ~spec =
  match backend with
  | Sim ->
    let cfg =
      Runner_sim.default_config ~threads ~cores ~horizon ~seed ~faults
        ~spec ()
    in
    Runner_sim.run_named ~tracker_name ~ds_name cfg
  | Domains ->
    let cfg =
      Runner_domains.default_config ~threads
        ~duration_s:(float_of_int horizon /. 1e6) ~seed ~faults ~spec ()
    in
    Runner_domains.run_named ~tracker_name ~ds_name cfg

let robustness_sweep
    ?(backend = Sim)
    ?(trackers = [ "EBR"; "QSBR"; "HP"; "HE"; "2GEIBR"; "DEBRA"; "DEBRA+" ])
    ?(profiles = robustness_profiles) ?(threads = 12) ?(cores = 8)
    ?(horizons = [ 60_000; 120_000; 240_000 ]) ?(ds_name = "hashmap")
    ?(seed = 0xfa17) () =
  (* A small, high-churn structure: a robust scheme's crashed interval
     pins at most the pre-crash working set, so a small one makes the
     pinned set saturate early — visibly flat next to EBR's
     linear-in-run-length growth. *)
  let spec = { (Workload.spec_for ds_name) with key_range = 1024 } in
  let rows = ref [] in
  List.iter
    (fun tracker_name ->
       List.iter
         (fun profile ->
            let faults =
              match Runner_sim.faults_of_string profile with
              | Some f -> f
              | None -> invalid_arg ("unknown fault profile: " ^ profile)
            in
            List.iter
              (fun horizon ->
                 let result, _ =
                   Fault.with_counting (fun () ->
                     run_profile ~backend ~tracker_name ~ds_name ~threads
                       ~cores ~horizon ~seed ~faults ~spec)
                 in
                 match result with
                 | None -> ()
                 | Some r ->
                   rows :=
                     { r with Stats.tracker = tracker_name ^ "/" ^ profile }
                     :: !rows)
              horizons)
         profiles)
    trackers;
  List.rev !rows

(* Render campaign rows as an aligned text table (the makespan column
   is the run length: fault runs are horizon-bound). *)
let robustness_table (rows : Stats.t list) =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "%-20s %-7s %8s %8s %9s %9s %7s %7s %4s %4s %4s %4s\n"
       "tracker/profile" "backend" "horizon" "ops" "peak-unr" "peak-fp"
       "oom" "retries" "crsh" "ejct" "ntrl" "rcvr");
  List.iter
    (fun (r : Stats.t) ->
       let m = Stats.metric r in
       Buffer.add_string b
         (Printf.sprintf
            "%-20s %-7s %8d %8d %9d %9d %7d %7d %4d %4d %4d %4d\n"
            r.tracker r.backend r.makespan r.ops r.peak_unreclaimed
            (m "peak_footprint") (m "oom_events") (m "pressure_retries")
            (m "crashes") (m "ejections") (m "neutralizations")
            (m "recovered")))
    rows;
  Buffer.contents b

(* A.6's acceptance claims, checked mechanically from sweep rows:
   (1) IBR throughput between HP-likes and EBR, within ~tens of
       percent of EBR;
   (2) when oversubscribed, IBR space sits above HP-likes and below
       EBR. *)
type check = { claim : string; holds : bool; detail : string }

let headline_checks (rows : Stats.t list) =
  let thr tracker threads =
    List.find_opt
      (fun r -> r.Stats.tracker = tracker && r.Stats.threads = threads)
      rows
    |> Option.map (fun r -> r.Stats.throughput)
  in
  let spc tracker threads =
    List.find_opt
      (fun r -> r.Stats.tracker = tracker && r.Stats.threads = threads)
      rows
    |> Option.map (fun r -> r.Stats.avg_unreclaimed)
  in
  let mid = 36 and over = 96 in
  let checks = ref [] in
  (match thr "EBR" mid, thr "2GEIBR" mid, thr "HP" mid with
   | Some ebr, Some ibr, Some hp ->
     checks :=
       { claim = "throughput: HP <= IBR <= ~EBR (36 threads)";
         holds = hp <= ibr && ibr <= ebr *. 1.15;
         detail =
           Printf.sprintf "HP=%.2f 2GEIBR=%.2f EBR=%.2f" hp ibr ebr }
       :: !checks
   | _ -> ());
  (match spc "EBR" over, spc "2GEIBR" over, spc "HP" over with
   | Some ebr, Some ibr, Some hp ->
     checks :=
       { claim =
           "space oversubscribed: HP-like <= IBR <= EBR (96 threads)";
         holds = hp <= ibr *. 1.05 && ibr <= ebr *. 1.05;
         detail =
           Printf.sprintf "HP=%.1f 2GEIBR=%.1f EBR=%.1f" hp ibr ebr }
       :: !checks
   | _ -> ());
  List.rev !checks

(* The robustness campaign's acceptance claims, from labelled rows:
   (a) under one crashed thread, EBR's peak unreclaimed grows with run
       length while the robust family stays bounded;
   (b) under crash + capped heap, robust schemes never exhaust the
       allocator while EBR does;
   (c) the watchdog ejects the crashed thread and brings EBR's peak
       back to bounded. *)
let robustness_checks (rows : Stats.t list) =
  let profile_rows tracker profile =
    List.filter
      (fun (r : Stats.t) -> r.Stats.tracker = tracker ^ "/" ^ profile)
      rows
  in
  (* Longest-run row for a (tracker, profile); campaigns order rows by
     ascending horizon but select by makespan to be safe. *)
  let longest tracker profile =
    match profile_rows tracker profile with
    | [] -> None
    | l ->
      Some
        (List.fold_left
           (fun a (b : Stats.t) ->
              if b.Stats.makespan > a.Stats.makespan then b else a)
           (List.hd l) l)
  in
  let shortest tracker profile =
    match profile_rows tracker profile with
    | [] -> None
    | l ->
      Some
        (List.fold_left
           (fun a (b : Stats.t) ->
              if b.Stats.makespan < a.Stats.makespan then b else a)
           (List.hd l) l)
  in
  (* Second-longest run: the robust schemes' pinned set grows until the
     pre-crash block population has churned through, so boundedness is
     a claim about the tail of the horizon ladder, not the whole of
     it.  EBR, by contrast, still climbs on the tail. *)
  let middle tracker profile =
    match longest tracker profile with
    | None -> None
    | Some l ->
      (match
         List.filter
           (fun (r : Stats.t) -> r.Stats.makespan < l.Stats.makespan)
           (profile_rows tracker profile)
       with
       | [] -> None
       | shorter ->
         Some
           (List.fold_left
              (fun a (b : Stats.t) ->
                 if b.Stats.makespan > a.Stats.makespan then b else a)
              (List.hd shorter) shorter))
  in
  let checks = ref [] in
  let add c = checks := c :: !checks in
  (* (a) growth vs boundedness under "crash". *)
  (match shortest "EBR" "crash", longest "EBR" "crash" with
   | Some s, Some l when l.Stats.makespan > s.Stats.makespan ->
     add
       { claim = "crash: EBR peak unreclaimed grows with run length";
         holds = l.Stats.peak_unreclaimed > 2 * s.Stats.peak_unreclaimed;
         detail =
           Printf.sprintf "peak %d @%d -> %d @%d" s.Stats.peak_unreclaimed
             s.Stats.makespan l.Stats.peak_unreclaimed l.Stats.makespan }
   | _ -> ());
  List.iter
    (fun tracker ->
       match middle tracker "crash", longest tracker "crash" with
       | Some m, Some l when l.Stats.makespan > m.Stats.makespan ->
         (* Flat tail: doubling the run adds at most 30% (plus a small
            additive floor for near-zero HP-like peaks), while EBR's
            tail keeps climbing linearly. *)
         let bound =
           max
             (m.Stats.peak_unreclaimed + (3 * m.Stats.peak_unreclaimed / 10))
             (m.Stats.peak_unreclaimed + 32)
         in
         add
           { claim =
               Printf.sprintf
                 "crash: %s peak unreclaimed saturates (flat tail)" tracker;
             holds = l.Stats.peak_unreclaimed <= bound;
             detail =
               Printf.sprintf "peak %d @%d -> %d @%d (bound %d)"
                 m.Stats.peak_unreclaimed m.Stats.makespan
                 l.Stats.peak_unreclaimed l.Stats.makespan bound }
       | _ -> ())
    [ "HP"; "HE"; "2GEIBR" ];
  (* EBR's tail is NOT flat: the same tail doubling grows its peak by
     at least 40%. *)
  (match middle "EBR" "crash", longest "EBR" "crash" with
   | Some m, Some l when l.Stats.makespan > m.Stats.makespan ->
     add
       { claim = "crash: EBR peak unreclaimed still climbing on the tail";
         holds =
           10 * l.Stats.peak_unreclaimed >= 14 * m.Stats.peak_unreclaimed;
         detail =
           Printf.sprintf "peak %d @%d -> %d @%d" m.Stats.peak_unreclaimed
             m.Stats.makespan l.Stats.peak_unreclaimed l.Stats.makespan }
   | _ -> ());
  (* (b) allocator exhaustion under "crash+capped". *)
  (match longest "EBR" "crash+capped" with
   | Some r ->
     add
       { claim = "crash+capped: EBR exhausts the capped allocator";
         holds = Stats.metric r "oom_events" > 0;
         detail =
           Printf.sprintf "oom_events=%d" (Stats.metric r "oom_events") }
   | None -> ());
  List.iter
    (fun tracker ->
       match longest tracker "crash+capped" with
       | Some r ->
         add
           { claim =
               Printf.sprintf "crash+capped: %s survives the capped heap"
                 tracker;
             holds = Stats.metric r "oom_events" = 0;
             detail =
               Printf.sprintf "oom_events=%d retries=%d"
                 (Stats.metric r "oom_events")
                 (Stats.metric r "pressure_retries") }
       | None -> ())
    [ "HP"; "HE"; "2GEIBR" ];
  (* (c) the watchdog rescue. *)
  (match longest "EBR" "crash+watchdog", longest "EBR" "crash" with
   | Some w, Some c ->
     add
       { claim = "crash+watchdog: ejection restores EBR's bound";
         holds =
           Stats.metric w "ejections" >= 1
           && 2 * w.Stats.peak_unreclaimed < c.Stats.peak_unreclaimed;
         detail =
           Printf.sprintf "ejections=%d peak %d (vs %d unwatched)"
             (Stats.metric w "ejections") w.Stats.peak_unreclaimed
             c.Stats.peak_unreclaimed }
   | _ -> ());
  (* (d) the neutralizing watchdog (DESIGN.md §12): same stall regime
     as stall-storm, but a stalled worker's reservation is expired at
     signal-delivery time and the worker restarts its attempt when it
     resumes — footprint stays bounded and nobody is written off. *)
  List.iter
    (fun tracker ->
       (match
          longest tracker "stall+neutralize", longest tracker "stall-storm"
        with
        | Some n, Some s ->
          add
            { claim =
                Printf.sprintf
                  "stall+neutralize: %s peak stays below the storm's" tracker;
              holds = 2 * n.Stats.peak_unreclaimed < s.Stats.peak_unreclaimed;
              detail =
                Printf.sprintf "peak %d (vs %d unwatched)"
                  n.Stats.peak_unreclaimed s.Stats.peak_unreclaimed }
        | _ -> ());
       (match longest tracker "stall+neutralize" with
        | Some n ->
          add
            { claim =
                Printf.sprintf
                  "stall+neutralize: %s healed, never ejected" tracker;
              holds =
                Stats.metric n "ejections" = 0
                && Stats.metric n "neutralizations" >= 1;
              detail =
                Printf.sprintf "neutralizations=%d recovered=%d ejections=%d"
                  (Stats.metric n "neutralizations")
                  (Stats.metric n "recovered")
                  (Stats.metric n "ejections") }
        | None -> ()))
    [ "EBR"; "DEBRA" ];
  List.rev !checks

(* The workload-diversity campaign (ISSUE 10): every YCSB-like profile
   on a capability-matched rideable, under every paper-set scheme that
   can run that rideable.  One fixed thread count — the axis here is
   the operation mix, not scaling — and deterministic sim rows, so the
   EXPERIMENTS.md table is byte-reproducible. *)
let profile_rideables =
  [ ("A", "hashmap"); ("B", "hashmap"); ("C", "hashmap");
    ("D", "msqueue"); ("E", "nmtree"); ("F", "rhashmap") ]

let profile_sweep ?(threads = 16) ?(horizon = 60_000) ?(seed = 0x9c5b) () =
  List.concat_map
    (fun (pname, ds_name) ->
       let mix =
         match Workload.find_mix pname with
         | Some m -> m
         | None -> invalid_arg ("unknown profile " ^ pname)
       in
       let spec = Workload.spec_for ~mix ds_name in
       List.filter_map
         (fun (e : Registry.entry) ->
            let cfg =
              Runner_sim.default_config ~threads ~horizon ~seed ~spec ()
            in
            Runner_sim.run_named ~tracker_name:e.name ~ds_name cfg)
         (lineup ds_name))
    profile_rideables

let profile_table (rows : Stats.t list) =
  let b = Buffer.create 2048 in
  let cell scheme pname =
    match
      List.find_opt
        (fun (r : Stats.t) -> r.Stats.tracker = scheme && r.Stats.mix = pname)
        rows
    with
    | None -> "--"
    | Some r ->
      Printf.sprintf "%.0f / %.0f" r.Stats.throughput r.Stats.avg_unreclaimed
  in
  Buffer.add_string b "| scheme |";
  List.iter
    (fun (p, ds) -> Buffer.add_string b (Printf.sprintf " %s (%s) |" p ds))
    profile_rideables;
  Buffer.add_string b "\n|---|";
  List.iter (fun _ -> Buffer.add_string b "---|") profile_rideables;
  Buffer.add_char b '\n';
  List.iter
    (fun (e : Registry.entry) ->
       Buffer.add_string b (Printf.sprintf "| %s |" e.name);
       List.iter
         (fun (p, _) ->
            Buffer.add_string b (Printf.sprintf " %s |" (cell e.name p)))
         profile_rideables;
       Buffer.add_char b '\n')
    Registry.paper_set;
  Buffer.contents b
