(** Open-loop service simulation with dynamic thread churn
    (DESIGN.md §10).

    Models a long-running service rather than a closed-loop
    microbenchmark: requests arrive on a precomputed Poisson or bursty
    schedule (diurnal ramp + load spikes), keys are Zipf-skewed, and a
    fleet of worker fibers join and leave the tracker census through
    {!Ibr_ds.Ds_intf.RIDEABLE.attach}/[detach] while serving.  Per-request
    latency is measured arrival-to-completion (queueing included) and
    the run ends with SLO pass/fail verdicts over p50/p99/p999 latency
    and peak allocator footprint.

    Same seed and profile ⇒ bit-identical {!to_csv_row} and verdicts
    (certified by [test_service]). *)

type arrival =
  | Poisson
  | Bursty of { burst : int; prob : float }
      (** Poisson base process; each base arrival additionally
          triggers a train of [burst] same-instant arrivals with
          probability [prob]. *)

val arrival_name : arrival -> string
val arrival_of_string : string -> arrival option
(** ["poisson"] or ["bursty"] (the default burst shape). *)

(** Latency targets in virtual cycles, footprint in blocks; [max_int]
    disables a check. *)
type slo = {
  p50 : int;
  p99 : int;
  p999 : int;
  peak_footprint : int;
}

val default_slo : slo

type verdict = {
  metric : string;
  target : int;
  actual : int;
  ok : bool;
}

type profile = {
  workers : int;       (** census capacity (tracker slot count) *)
  fleet : int;         (** worker fibers sharing the slots *)
  cores : int;
  horizon : int;
  seed : int;
  arrival : arrival;
  period : int;        (** base mean inter-arrival gap, cycles *)
  diurnal : bool;      (** ×0.6 rate at the edges, ×1.5 mid-run *)
  spikes : int;        (** evenly spaced ×3 windows, 2% of horizon *)
  zipf_theta : float;  (** 0 = uniform *)
  session_ops : int;   (** requests served per attached session *)
  away : int;          (** cycles detached between sessions *)
  watchdog : (int * int) option;  (** [(period, grace)] *)
  neutralize : bool;
  (** Watchdog remedy: [false] ejects a stalled worker (it is lost for
      the rest of its session), [true] delivers a restart signal and
      lets it recover in place (DESIGN.md §12). *)
  spec : Workload.spec;
  tracker_cfg : Ibr_core.Tracker_intf.config;
  slo : slo;
}

val default_profile :
  ?workers:int -> ?fleet:int -> ?cores:int -> ?horizon:int -> ?seed:int ->
  ?arrival:arrival -> ?period:int -> ?diurnal:bool -> ?spikes:int ->
  ?zipf_theta:float -> ?session_ops:int -> ?away:int ->
  ?watchdog:int * int -> ?neutralize:bool -> ?slo:slo ->
  spec:Workload.spec -> unit -> profile

val rate_permille : profile -> t:int -> int
(** Arrival-rate modulation at virtual time [t], in permille of the
    base rate — all-integer (diurnal tent and spike windows), exposed
    for tests. *)

val gen_arrivals : profile -> int array * bool
(** The precomputed arrival schedule (non-decreasing timestamps) and
    whether the safety cap truncated it.  Deterministic in
    [profile.seed] and the shape parameters. *)

type result = {
  tracker : string;
  ds : string;
  backend : string;     (** provenance: ["sim"] or ["domains"] *)
  workers : int;
  fleet : int;
  arrivals : int;
  arrivals_capped : bool;
  completed : int;
  aborted : int;        (** claimed, then died of allocator exhaustion *)
  unserved : int;       (** never claimed, or unwound mid-request *)
  attaches : int;
  detaches : int;
  attach_full : int;    (** attach attempts refused (census full) *)
  ejections : int;
  neutralizations : int;  (** restart signals delivered *)
  recovered : int;        (** neutralized workers that resumed progress *)
  p50 : int;
  p90 : int;
  p99 : int;
  p999 : int;
  max_latency : int;
  peak_footprint : int;
  makespan : int;
  throughput : float;   (** completed requests per Mcycle *)
  verdicts : verdict list;
  slo_pass : bool;
  metrics : Ibr_obs.Metrics.snapshot;
}

val run :
  tracker_name:string -> ds_name:string ->
  (module Ibr_ds.Ds_intf.RIDEABLE) -> profile -> result
(** One full service run on a fresh instance.  Prefills through a
    temporary attach/detach, spawns [fleet] workers plus the
    background reclaimer (if the tracker has one) and the optional
    watchdog, runs to [horizon], and digests latencies and verdicts.
    Service metrics ([svc_*]) are registered in the metric registry on
    first call — never at module init, so binaries that do not run a
    service keep their CSV layout.
    @raise Invalid_argument on non-positive [workers], [fleet],
    [period], or [session_ops]. *)

val run_exec :
  exec:Runner_intf.exec -> tracker_name:string -> ds_name:string ->
  (module Ibr_ds.Ds_intf.RIDEABLE) -> profile -> result
(** {!run} over an explicit backend.  On a {!Run_engine.sim_exec} this
    is exactly {!run}; on a {!Run_engine.domains_exec} the same
    precomputed arrival schedule plays out against the monotonic wall
    clock (microsecond units — [horizon], [period], [away] and the SLO
    targets carry over under the 1 cycle ~ 1 us convention) with real
    attach/detach churn across domains.
    @raise Runner_intf.Unsupported if the backend lacks the
    ["service"] capability. *)

val run_named :
  tracker_name:string -> ds_name:string -> profile -> result option
(** Resolve by registry names; [None] if the tracker cannot run this
    rideable (see {!Ibr_ds.Ds_intf.RIDEABLE.compatible}).
    @raise Not_found on unknown names. *)

val run_named_exec :
  exec:Runner_intf.exec -> tracker_name:string -> ds_name:string ->
  profile -> result option
(** {!run_named} over an explicit backend. *)

val csv_header : string
val to_csv_row : result -> string
(** Fixed-format row (integers plus one fixed-format float):
    bit-reproducible for a fixed seed. *)

val verdicts_csv : result -> string
(** Compact [metric:actual<=target:pass/FAIL] list, [;]-separated. *)

val pp : Format.formatter -> result -> unit
