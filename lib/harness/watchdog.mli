(** Ejection/neutralization watchdog (DEBRA+/NBR-style; DESIGN.md §7,
    §12).

    A monitor thread that detects workers making no progress and
    applies a {!remedy}: {!Eject} expires the victim's reservations
    through the tracker's [eject] hook so a crash-faulted thread stops
    pinning retired memory forever; {!Neutralize} instead delivers a
    restart signal that the victim acts on itself — it unwinds its
    current attempt, recovers its protection, and keeps working.  Two
    drivers share the scan: {!spawn} rides the simulated machine as a
    fiber; {!spawn_exec} runs on any {!Runner_intf.exec} — a real
    monitor domain with wall-clock periods on the domains backend.

    {b Soundness caveat (ejection only):} no-progress is a heuristic
    for death.  Ejecting a live thread readmits use-after-free;
    [grace * period] must exceed the longest legitimate dispatch gap,
    and profiles that arm an ejecting watchdog must not also inject
    stalls.  Neutralizing a live thread is sound — it merely restarts
    an attempt — so the neutralize profiles may keep stalls on.  See
    {!Ibr_core.Tracker_intf.TRACKER.eject}. *)

type t

type remedy =
  | Eject
      (** Expire the victim's reservations and write it off (it is
          re-armed if its counter ever moves again). *)
  | Neutralize of (int -> unit)
      (** [Neutralize deliver]: call [deliver tid] to send the victim
          a restart signal ({!Ibr_core.Fault.Neutralized} at its next
          delivery point); keep monitoring, count a recovery when its
          counter moves again, and re-deliver after another full
          grace window if it stays frozen. *)

val spawn :
  sched:Ibr_runtime.Sched.t ->
  period:int ->
  grace:int ->
  threads:int ->
  ?remedy:remedy ->
  ?active:(int -> bool) ->
  progress:(int -> int) ->
  footprint:(unit -> int) ->
  eject:(int -> unit) ->
  unit -> t
(** [spawn ~sched ~period ~grace ~threads ~progress ~footprint ~eject ()]
    registers the monitor thread on [sched] (must precede
    {!Ibr_runtime.Sched.run}).  Every [period] virtual cycles it polls
    [progress tid] (a monotone per-worker operation counter) for each
    of the [threads] workers; a worker that completed at least one
    operation and then stalls at the same count for [grace]
    consecutive checks receives the [remedy] (default {!Eject}).
    [footprint] (live+retired blocks) is sampled around each remedy to
    estimate the memory recovered.

    [active] (default: always true) reports whether a census slot
    currently has an occupant (dynamic churn, DESIGN.md §10): an
    inactive slot is not monitored and its arming/staleness/ejection
    state is reset, so a joiner that reuses the slot is watched from
    scratch instead of being ejected against the leaver's counter.
    @raise Invalid_argument if [period < 1] or [grace < 1]. *)

val spawn_exec :
  exec:Runner_intf.exec ->
  period:int ->
  grace:int ->
  threads:int ->
  ?remedy:remedy ->
  ?active:(int -> bool) ->
  progress:(int -> int) ->
  footprint:(unit -> int) ->
  eject:(int -> unit) ->
  unit -> t
(** {!spawn} over a backend {!Runner_intf.exec} (must precede its
    [launch]): the same scan every [period] backend time units —
    virtual cycles on the sim, microseconds of monotonic wall clock on
    domains, where progress counters are read racily (a stale read
    delays an ejection by one round, absorbed by the grace budget).
    @raise Runner_intf.Unsupported if the backend lacks the
    ["watchdog"] capability (or ["neutralize"], for a {!Neutralize}
    remedy). *)

val ejections : t -> int
(** Workers ejected so far. *)

val neutralizations : t -> int
(** Restart signals delivered so far. *)

val recovered : t -> int
(** Neutralized workers whose progress counter has moved again — the
    signals that demonstrably healed the thread instead of killing
    it. *)

val footprint_recovered : t -> int
(** Estimated blocks unpinned by remedies: the drop in allocator
    footprint between each ejection/neutralization and the following
    check, summed. *)

val ejected : t -> int -> bool
val neutralized : t -> int -> bool
(** A signal was delivered to this slot and its recovery is pending
    (the counter has not moved since). *)

val publish : t -> unit
(** Publish {!ejections} to the ["ejections"] metric gauge (end of
    run), plus ["neutralizations"]/["recovered"] for a {!Neutralize}
    watchdog (those gauges are registered lazily at the first
    neutralize-watchdog creation, so ejection-only runs keep the
    legacy CSV layout). *)
