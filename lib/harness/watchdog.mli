(** Ejection watchdog (DEBRA+/NBR-style neutralization; DESIGN.md §7).

    A monitor thread that detects workers making no progress and
    expires their reservations through the tracker's [eject] hook, so
    a crash-faulted thread stops pinning retired memory forever.  Two
    drivers share the scan: {!spawn} rides the simulated machine as a
    fiber; {!spawn_exec} runs on any {!Runner_intf.exec} — a real
    monitor domain with wall-clock periods on the domains backend.

    {b Soundness caveat:} no-progress is a heuristic for death.
    Ejecting a live thread readmits use-after-free; [grace * period]
    must exceed the longest legitimate dispatch gap, and profiles that
    arm the watchdog must not also inject stalls.  See
    {!Ibr_core.Tracker_intf.TRACKER.eject}. *)

type t

val spawn :
  sched:Ibr_runtime.Sched.t ->
  period:int ->
  grace:int ->
  threads:int ->
  ?active:(int -> bool) ->
  progress:(int -> int) ->
  footprint:(unit -> int) ->
  eject:(int -> unit) ->
  unit -> t
(** [spawn ~sched ~period ~grace ~threads ~progress ~footprint ~eject ()]
    registers the monitor thread on [sched] (must precede
    {!Ibr_runtime.Sched.run}).  Every [period] virtual cycles it polls
    [progress tid] (a monotone per-worker operation counter) for each
    of the [threads] workers; a worker that completed at least one
    operation and then stalls at the same count for [grace]
    consecutive checks is ejected (once).  [footprint] (live+retired
    blocks) is sampled around each ejection to estimate the memory
    recovered.

    [active] (default: always true) reports whether a census slot
    currently has an occupant (dynamic churn, DESIGN.md §10): an
    inactive slot is not monitored and its arming/staleness/ejection
    state is reset, so a joiner that reuses the slot is watched from
    scratch instead of being ejected against the leaver's counter.
    @raise Invalid_argument if [period < 1] or [grace < 1]. *)

val spawn_exec :
  exec:Runner_intf.exec ->
  period:int ->
  grace:int ->
  threads:int ->
  ?active:(int -> bool) ->
  progress:(int -> int) ->
  footprint:(unit -> int) ->
  eject:(int -> unit) ->
  unit -> t
(** {!spawn} over a backend {!Runner_intf.exec} (must precede its
    [launch]): the same scan every [period] backend time units —
    virtual cycles on the sim, microseconds of monotonic wall clock on
    domains, where progress counters are read racily (a stale read
    delays an ejection by one round, absorbed by the grace budget).
    @raise Runner_intf.Unsupported if the backend lacks the
    ["watchdog"] capability. *)

val ejections : t -> int
(** Workers ejected so far. *)

val recovered : t -> int
(** Estimated blocks unpinned by ejections: the drop in allocator
    footprint between each ejection and the following check, summed. *)

val ejected : t -> int -> bool

val publish : t -> unit
(** Publish {!ejections} to the ["ejections"] metric gauge (end of
    run). *)
