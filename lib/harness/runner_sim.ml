(* The simulator backend: runs one (tracker × rideable × threads ×
   workload) configuration on the discrete-event machine and returns a
   [Stats.t] row.

   The paper's methodology is followed exactly: prefill, then a
   fixed-duration free-for-all where each thread samples its local
   retired-but-unreclaimed count at the start of every operation
   (the Fig. 9 metric) and operation completions are counted for
   throughput (Fig. 8).  Threads beyond the simulated core count queue
   for cores, reproducing the oversubscription (stall) regime to the
   right of the 72-thread mark in the paper's plots.

   Since the engine extraction, this module only owns what is
   genuinely simulator-specific: the scheduler knobs a fault profile
   implies, and building the machine.  The run loop itself — prefill,
   capacity sizing, worker fleet, reclaimer, watchdog, shutdown,
   stats — lives in [Run_engine] and is shared with the domains
   backend; [Run_engine.sim_exec] is constructed so the engine replays
   the pre-extraction runner bit for bit. *)

open Ibr_runtime
open Ibr_ds

type faults = Runner_intf.faults =
  | No_faults
  | Stall_storm of { stall_prob : float; stall_len : int }
  | Crash of { crash_prob : float; max_crashes : int }
  | Crash_capped of {
      crash_prob : float;
      max_crashes : int;
      slack_per_thread : int;
    }
  | Crash_watchdog of {
      crash_prob : float;
      max_crashes : int;
      period : int;
      grace : int;
    }
  | Stall_watchdog of { period : int; grace : int }
  | Stall_neutralize of {
      stall_prob : float;
      stall_len : int;
      period : int;
      grace : int;
    }

let fault_profiles = Runner_intf.fault_profiles
let faults_of_string = Runner_intf.faults_of_string

type config = {
  threads : int;
  horizon : int;               (* virtual run length *)
  sched : Sched.config;
  seed : int;
  tracker_cfg : Ibr_core.Tracker_intf.config;
  spec : Workload.spec;
  faults : faults;
}

let default_config ?(threads = 8) ?(horizon = 200_000) ?(seed = 0xbeef)
    ?(cores = 72) ?(faults = No_faults) ~spec () =
  {
    threads;
    horizon;
    sched = { Sched.default_config with cores; seed };
    seed;
    tracker_cfg = Ibr_core.Tracker_intf.default_config ~threads ();
    spec;
    faults;
  }

(* Scheduler knobs implied by the fault profile. *)
let sched_config cfg =
  match cfg.faults with
  | No_faults -> cfg.sched
  | Stall_storm { stall_prob; stall_len } ->
    { cfg.sched with stall_prob; stall_len }
  | Crash { crash_prob; max_crashes }
  | Crash_capped { crash_prob; max_crashes; _ }
  | Crash_watchdog { crash_prob; max_crashes; _ } ->
    { cfg.sched with crash_prob; max_crashes; stall_prob = 0.0 }
  | Stall_watchdog _ ->
    (* The parked victim is the stall under study; injected stalls on
       the survivors would let the watchdog eject a live thread. *)
    { cfg.sched with stall_prob = 0.0 }
  | Stall_neutralize { stall_prob; stall_len; _ } ->
    (* Unlike the ejecting profiles, stall injection stays ON:
       neutralizing a live (merely stalled) thread is sound — it
       restarts its attempt and recovers — so the watchdog may fire
       into the storm. *)
    { cfg.sched with stall_prob; stall_len }

let engine_config cfg = {
  Run_engine.threads = cfg.threads;
  seed = cfg.seed;
  tracker_cfg = cfg.tracker_cfg;
  spec = cfg.spec;
  faults = cfg.faults;
}

let run ~tracker_name ~ds_name (module S : Ds_intf.RIDEABLE) (cfg : config) =
  let sched = Sched.create (sched_config cfg) in
  let exec = Run_engine.sim_exec ~sched ~horizon:cfg.horizon in
  Run_engine.run ~exec ~tracker_name ~ds_name (module S) (engine_config cfg)

(* Convenience: resolve names through the registries and run. *)
let run_named ~tracker_name ~ds_name cfg =
  let sched = Sched.create (sched_config cfg) in
  let exec = Run_engine.sim_exec ~sched ~horizon:cfg.horizon in
  Run_engine.run_named ~exec ~tracker_name ~ds_name (engine_config cfg)
