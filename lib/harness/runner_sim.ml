(* The simulator backend: runs one (tracker × rideable × threads ×
   workload) configuration on the discrete-event machine and returns a
   [Stats.t] row.

   The paper's methodology is followed exactly: prefill, then a
   fixed-duration free-for-all where each thread samples its local
   retired-but-unreclaimed count at the start of every operation
   (the Fig. 9 metric) and operation completions are counted for
   throughput (Fig. 8).  Threads beyond the simulated core count queue
   for cores, reproducing the oversubscription (stall) regime to the
   right of the 72-thread mark in the paper's plots.

   A fault profile layers crash faults, allocator capacity, and the
   ejection watchdog on top (DESIGN.md §7): crashes come from the
   scheduler's probabilistic injector, the capacity is sized from the
   post-prefill working set (the only time it is known), and an
   operation that dies of [Alloc.Exhausted] aborts gracefully —
   [Ds_common.with_op] releases its reservations on the way out — and
   is counted rather than completed. *)

open Ibr_runtime
open Ibr_ds

type faults =
  | No_faults
  | Stall_storm of { stall_prob : float; stall_len : int }
  | Crash of { crash_prob : float; max_crashes : int }
  | Crash_capped of {
      crash_prob : float;
      max_crashes : int;
      slack_per_thread : int;
    }
  | Crash_watchdog of {
      crash_prob : float;
      max_crashes : int;
      period : int;
      grace : int;
    }

(* Named presets for the CLI / campaign.  Crash profiles zero
   [stall_prob]: a crash is the fault under study, and (for the
   watchdog) a long stall is indistinguishable from death, so mixing
   the two would eject live threads (see [Watchdog]). *)
let fault_profiles = [
  ("none", No_faults);
  ("stall-storm", Stall_storm { stall_prob = 0.05; stall_len = 480_000 });
  (* crash_prob is per dispatched quantum: 0.25 lands the (single)
     crash within the first couple of scheduling rounds, so the
     pre-crash block population — the robust schemes' pinned-set bound
     — stays close to the prefill working set. *)
  ("crash", Crash { crash_prob = 0.25; max_crashes = 1 });
  ("crash+capped",
   (* Slack budget: per-thread limbo lists (a few empty_freq each) plus
      the set a robust scheme's crashed interval legitimately pins —
      up to the pre-crash block population (campaigns keep the
      structure small so this saturates early). *)
   Crash_capped { crash_prob = 0.25; max_crashes = 1; slack_per_thread = 320 });
  ("crash+watchdog",
   (* One check per watchdog quantum: a shorter period would fire
      several checks inside one quantum, during which no other fiber
      advances — every live thread would look stale.  grace = 3 then
      needs three full scheduling rounds of silence, which only a dead
      thread produces (profiles with the watchdog keep stalls off). *)
   Crash_watchdog
     { crash_prob = 0.25; max_crashes = 1; period = 15_000; grace = 3 });
]

let faults_of_string s = List.assoc_opt s fault_profiles

type config = {
  threads : int;
  horizon : int;               (* virtual run length *)
  sched : Sched.config;
  seed : int;
  tracker_cfg : Ibr_core.Tracker_intf.config;
  spec : Workload.spec;
  faults : faults;
}

let default_config ?(threads = 8) ?(horizon = 200_000) ?(seed = 0xbeef)
    ?(cores = 72) ?(faults = No_faults) ~spec () =
  {
    threads;
    horizon;
    sched = { Sched.default_config with cores; seed };
    seed;
    tracker_cfg = Ibr_core.Tracker_intf.default_config ~threads ();
    spec;
    faults;
  }

(* Scheduler knobs implied by the fault profile. *)
let sched_config cfg =
  match cfg.faults with
  | No_faults -> cfg.sched
  | Stall_storm { stall_prob; stall_len } ->
    { cfg.sched with stall_prob; stall_len }
  | Crash { crash_prob; max_crashes }
  | Crash_capped { crash_prob; max_crashes; _ }
  | Crash_watchdog { crash_prob; max_crashes; _ } ->
    { cfg.sched with crash_prob; max_crashes; stall_prob = 0.0 }

let run ~tracker_name ~ds_name (module S : Ds_intf.SET) (cfg : config) =
  let t = S.create ~threads:cfg.threads cfg.tracker_cfg in
  (* Prefill from a registration outside the measured run. *)
  let h0 = S.register t ~tid:0 in
  let prefill_rng = Rng.create (cfg.seed lxor 0x5eed) in
  Workload.prefill ~rng:prefill_rng ~spec:cfg.spec
    ~insert:(fun ~key ~value -> S.insert h0 ~key ~value);
  (* The capacity can only be sized now: the working set exists. *)
  (match cfg.faults with
   | Crash_capped { slack_per_thread; _ } ->
     let st = S.allocator_stats t in
     S.set_capacity t (Some (st.live + (cfg.threads * slack_per_thread)))
   | _ -> ());
  (* Measured phase. *)
  let sched = Sched.create (sched_config cfg) in
  let ops = Array.make cfg.threads 0 in
  let aborted = Array.make cfg.threads 0 in
  let samplers = Array.init cfg.threads (fun _ -> Stats.make_sampler ()) in
  for i = 0 to cfg.threads - 1 do
    ignore
      (Sched.spawn sched (fun tid ->
         let h = S.register t ~tid in
         let rng = Rng.stream ~seed:cfg.seed ~index:tid in
         (* Runs until the scheduler unwinds it at the horizon. *)
         let rec loop () =
           Stats.sample samplers.(tid) (S.retired_count h);
           let key = Workload.pick_key rng cfg.spec in
           (try
              (match Workload.pick_op rng cfg.spec.mix with
               | Workload.Insert -> ignore (S.insert h ~key ~value:key)
               | Workload.Remove -> ignore (S.remove h ~key)
               | Workload.Get -> ignore (S.get h ~key));
              ops.(tid) <- ops.(tid) + 1
            with
            | Ibr_core.Alloc.Exhausted
            | Ibr_core.Fault.Memory_fault (Ibr_core.Fault.Alloc_exhausted, _)
              ->
              (* Heap full after the backpressure ladder: the op
                 aborted (its reservations were released on unwind);
                 keep going — later sweeps may free room. *)
              aborted.(tid) <- aborted.(tid) + 1);
           loop ()
         in
         ignore i;
         loop ()))
  done;
  (* The background reclaimer (tracker cfg [background_reclaim]) rides
     on the machine as one more fiber: it drains the handoff queues
     and runs the sweep cadence on its own time budget, off the
     mutators' critical path.  An idle poll still steps — the step is
     both the livelock guard (a fiber that never steps can neither be
     preempted nor unwound at the horizon) and the polling period. *)
  let service = S.reclaim_service t in
  (match service with
   | Some svc ->
     ignore
       (Sched.spawn sched (fun _rtid ->
          let idle_poll = 128 in
          let rec loop () =
            if svc.Ibr_core.Handoff.drain () = 0 then Hooks.step idle_poll;
            loop ()
          in
          loop ()))
   | None -> ());
  (* The watchdog rides on the machine as one more thread.  Progress =
     attempts, not completions, so a live thread stuck aborting
     against a full heap is not mistaken for a dead one. *)
  let watchdog =
    match cfg.faults with
    | Crash_watchdog { period; grace; _ } ->
      Some
        (Watchdog.spawn ~sched ~period ~grace ~threads:cfg.threads
           ~progress:(fun tid -> ops.(tid) + aborted.(tid))
           ~footprint:(fun () -> (S.allocator_stats t).live)
           ~eject:(fun tid -> S.eject t ~tid)
           ())
    | _ -> None
  in
  (* Prefill replacements may have queued retirements; drain them now
     so the measured phase starts with empty queues and the shutdown
     invariant (drained = pushed within the run) is exact. *)
  (match service with
   | Some svc -> ignore (svc.Ibr_core.Handoff.drain ())
   | None -> ());
  (* Baseline the registry counters at the edge of the measured phase
     (gauges and histograms are zeroed here too). *)
  let baseline = Ibr_obs.Metrics.begin_run () in
  Sched.run ~horizon:cfg.horizon sched;
  (* Shutdown quiescence: every fiber is unwound (or crashed), so one
     final flush moves still-queued blocks into the reclaimer and
     sweeps.  The [Hooks] handler is back to the no-op default here —
     the flush costs no virtual time and cannot be unwound.  A crash
     that abandoned a fiber mid-drain leaves the handoff lock held;
     the run is single-threaded now, so seizing it is sound. *)
  (match service with
   | Some svc -> svc.Ibr_core.Handoff.shutdown_flush ()
   | None -> ());
  let total_ops = Array.fold_left ( + ) 0 ops in
  let merged = Stats.merge_samplers (Array.to_list samplers) in
  let makespan = min (Sched.makespan sched) cfg.horizon in
  (* Publish the instance-scoped gauges, then snapshot. *)
  Ibr_core.Alloc.publish_stats (S.allocator_stats t);
  Ibr_core.Epoch.publish (S.epoch_value t);
  Sched.publish_crashes sched;
  (match watchdog with Some w -> Watchdog.publish w | None -> ());
  {
    Stats.tracker = tracker_name;
    ds = ds_name;
    threads = cfg.threads;
    mix = Workload.mix_name cfg.spec.mix;
    ops = total_ops;
    makespan;
    throughput = Stats.throughput ~ops:total_ops ~makespan;
    avg_unreclaimed = Stats.mean merged;
    peak_unreclaimed = merged.peak;
    samples = merged.n;
    metrics = Ibr_obs.Metrics.collect baseline;
  }

(* Convenience: resolve names through the registries and run. *)
let run_named ~tracker_name ~ds_name cfg =
  let tracker = (Ibr_core.Registry.find_exn tracker_name).tracker in
  let maker = Ds_registry.find_exn ds_name in
  let (module S : Ds_intf.SET) = maker.instantiate tracker in
  let (module T : Ibr_core.Tracker_intf.TRACKER) = tracker in
  if not (S.compatible T.props) then None
  else Some (run ~tracker_name:T.name ~ds_name (module S) cfg)
