(* The simulator backend: runs one (tracker × rideable × threads ×
   workload) configuration on the discrete-event machine and returns a
   [Stats.t] row.

   The paper's methodology is followed exactly: prefill, then a
   fixed-duration free-for-all where each thread samples its local
   retired-but-unreclaimed count at the start of every operation
   (the Fig. 9 metric) and operation completions are counted for
   throughput (Fig. 8).  Threads beyond the simulated core count queue
   for cores, reproducing the oversubscription (stall) regime to the
   right of the 72-thread mark in the paper's plots. *)

open Ibr_runtime
open Ibr_ds

type config = {
  threads : int;
  horizon : int;               (* virtual run length *)
  sched : Sched.config;
  seed : int;
  tracker_cfg : Ibr_core.Tracker_intf.config;
  spec : Workload.spec;
}

let default_config ?(threads = 8) ?(horizon = 200_000) ?(seed = 0xbeef)
    ?(cores = 72) ~spec () =
  {
    threads;
    horizon;
    sched = { Sched.default_config with cores; seed };
    seed;
    tracker_cfg = Ibr_core.Tracker_intf.default_config ~threads ();
    spec;
  }

let run ~tracker_name ~ds_name (module S : Ds_intf.SET) (cfg : config) =
  let t = S.create ~threads:cfg.threads cfg.tracker_cfg in
  (* Prefill from a registration outside the measured run. *)
  let h0 = S.register t ~tid:0 in
  let prefill_rng = Rng.create (cfg.seed lxor 0x5eed) in
  Workload.prefill ~rng:prefill_rng ~spec:cfg.spec
    ~insert:(fun ~key ~value -> S.insert h0 ~key ~value);
  (* Measured phase. *)
  let sched = Sched.create cfg.sched in
  let ops = Array.make cfg.threads 0 in
  let samplers = Array.init cfg.threads (fun _ -> Stats.make_sampler ()) in
  for i = 0 to cfg.threads - 1 do
    ignore
      (Sched.spawn sched (fun tid ->
         let h = S.register t ~tid in
         let rng = Rng.stream ~seed:cfg.seed ~index:tid in
         (* Runs until the scheduler unwinds it at the horizon. *)
         let rec loop () =
           Stats.sample samplers.(tid) (S.retired_count h);
           let key = Workload.pick_key rng cfg.spec in
           (match Workload.pick_op rng cfg.spec.mix with
            | Workload.Insert -> ignore (S.insert h ~key ~value:key)
            | Workload.Remove -> ignore (S.remove h ~key)
            | Workload.Get -> ignore (S.get h ~key));
           ops.(tid) <- ops.(tid) + 1;
           loop ()
         in
         ignore i;
         loop ()))
  done;
  let faults_before = Ibr_core.Fault.total () in
  let sweep_before = Ibr_core.Tracker_common.Sweep_stats.snap () in
  Sched.run ~horizon:cfg.horizon sched;
  let total_ops = Array.fold_left ( + ) 0 ops in
  let merged = Stats.merge_samplers (Array.to_list samplers) in
  let makespan = min (Sched.makespan sched) cfg.horizon in
  {
    Stats.tracker = tracker_name;
    ds = ds_name;
    threads = cfg.threads;
    mix = Workload.mix_name cfg.spec.mix;
    ops = total_ops;
    makespan;
    throughput = Stats.throughput ~ops:total_ops ~makespan;
    avg_unreclaimed = Stats.mean merged;
    peak_unreclaimed = merged.peak;
    samples = merged.n;
    alloc = S.allocator_stats t;
    epoch = S.epoch_value t;
    faults = Ibr_core.Fault.total () - faults_before;
    sweep =
      Ibr_core.Tracker_common.Sweep_stats.diff sweep_before
        (Ibr_core.Tracker_common.Sweep_stats.snap ());
  }

(* Convenience: resolve names through the registries and run. *)
let run_named ~tracker_name ~ds_name cfg =
  let tracker = (Ibr_core.Registry.find_exn tracker_name).tracker in
  let maker = Ds_registry.find_exn ds_name in
  let (module S : Ds_intf.SET) = maker.instantiate tracker in
  let (module T : Ibr_core.Tracker_intf.TRACKER) = tracker in
  if not (S.compatible T.props) then None
  else Some (run ~tracker_name:T.name ~ds_name (module S) cfg)
