(* The capability surface shared by both execution backends.

   [Run_engine] owns the scaffolding every runner used to duplicate —
   create/prefill, capacity sizing, handoff pre-drain, metrics
   baseline, the background-reclaimer service, watchdog spawn,
   shutdown quiescence, stats assembly — parameterized over an [exec]:
   a first-class record of what a backend can do (spawn workers and
   service threads, launch, tell time, wait, report makespan) plus a
   [capabilities] declaration of what it supports.

   A fault profile or harness feature that needs a capability the
   backend does not declare fails fast with {!Unsupported} — never a
   silent no-op that measures nothing (the old domains runner kept
   crash gauges at zero and dropped every profile on the floor).

   Time units: one virtual cycle on the simulator, one microsecond of
   monotonic wall clock on domains.  The 1 cycle ~ 1 us convention
   makes every period-like knob (watchdog period/grace, stall length,
   service horizon and inter-arrival gap, SLO targets) meaningful on
   both backends without rescaling: the sim's crash+watchdog period of
   15_000 cycles is a 15 ms wall period on domains. *)

type capabilities = {
  deterministic : bool;   (* same seed => bit-identical run *)
  crash_faults : bool;    (* scheduler-injected thread death *)
  stall_faults : bool;    (* injected long stalls *)
  virtual_time : bool;    (* discrete-event clock (replay, traces) *)
  watchdog : bool;        (* ejection watchdog can ride along *)
  neutralize : bool;      (* restart signals deliverable to workers *)
  alloc_capacity : bool;  (* capped-allocator backpressure *)
  service : bool;         (* open-loop service runs with churn *)
}

let capability_names =
  [ "deterministic"; "crash_faults"; "stall_faults"; "virtual_time";
    "watchdog"; "neutralize"; "alloc_capacity"; "service" ]

let has caps = function
  | "deterministic" -> caps.deterministic
  | "crash_faults" -> caps.crash_faults
  | "stall_faults" -> caps.stall_faults
  | "virtual_time" -> caps.virtual_time
  | "watchdog" -> caps.watchdog
  | "neutralize" -> caps.neutralize
  | "alloc_capacity" -> caps.alloc_capacity
  | "service" -> caps.service
  | c -> invalid_arg ("Runner_intf.has: unknown capability " ^ c)

exception Unsupported of { backend : string; capability : string }

let () =
  Printexc.register_printer (function
    | Unsupported { backend; capability } ->
      Some
        (Printf.sprintf
           "Unsupported: the %s backend does not provide %S" backend
           capability)
    | _ -> None)

let unsupported ~backend ~capability =
  raise (Unsupported { backend; capability })

(* -- fault profiles (moved here from Runner_sim: both backends can
   now run the subset their capabilities cover) -- *)

type faults =
  | No_faults
  | Stall_storm of { stall_prob : float; stall_len : int }
  | Crash of { crash_prob : float; max_crashes : int }
  | Crash_capped of {
      crash_prob : float;
      max_crashes : int;
      slack_per_thread : int;
    }
  | Crash_watchdog of {
      crash_prob : float;
      max_crashes : int;
      period : int;
      grace : int;
    }
  | Stall_watchdog of { period : int; grace : int }
  | Stall_neutralize of {
      stall_prob : float;
      stall_len : int;
      period : int;
      grace : int;
    }

(* Named presets for the CLI / campaign.  Crash profiles zero
   [stall_prob]: a crash is the fault under study, and (for the
   watchdog) a long stall is indistinguishable from death, so mixing
   the two would eject live threads (see [Watchdog]). *)
let fault_profiles = [
  ("none", No_faults);
  ("stall-storm", Stall_storm { stall_prob = 0.05; stall_len = 480_000 });
  (* crash_prob is per dispatched quantum: 0.25 lands the (single)
     crash within the first couple of scheduling rounds, so the
     pre-crash block population — the robust schemes' pinned-set bound
     — stays close to the prefill working set. *)
  ("crash", Crash { crash_prob = 0.25; max_crashes = 1 });
  ("crash+capped",
   (* Slack budget: per-thread limbo lists (a few empty_freq each) plus
      the set a robust scheme's crashed interval legitimately pins —
      up to the pre-crash block population (campaigns keep the
      structure small so this saturates early). *)
   Crash_capped { crash_prob = 0.25; max_crashes = 1; slack_per_thread = 320 });
  ("crash+watchdog",
   (* One check per watchdog quantum: a shorter period would fire
      several checks inside one quantum, during which no other fiber
      advances — every live thread would look stale.  grace = 3 then
      needs three full scheduling rounds of silence, which only a dead
      thread produces (profiles with the watchdog keep stalls off). *)
   Crash_watchdog
     { crash_prob = 0.25; max_crashes = 1; period = 15_000; grace = 3 });
  ("stall+watchdog",
   (* The crash+watchdog-equivalent both backends support: the engine
      parks worker 0 between operations (holding no reservation, so
      ejecting it is sound by construction) and the watchdog must
      notice the frozen progress counter and eject within
      period * grace — 45 ms of wall clock on domains, 45k cycles on
      the sim. *)
   Stall_watchdog { period = 15_000; grace = 3 });
  ("stall+neutralize",
   (* The recovery counterpart of stall-storm: the same stall
      injection stays ON (unlike the ejecting watchdog profiles,
      which must disable it — neutralizing a live thread is sound,
      ejecting one is not).  A stalled worker that outlasts
      period * grace receives a restart signal instead of being
      written off: it drops and re-establishes protection, so the
      non-robust schemes' footprint stays flat without losing a
      single worker permanently. *)
   Stall_neutralize
     { stall_prob = 0.05; stall_len = 480_000;
       period = 15_000; grace = 3 });
]

let faults_of_string s = List.assoc_opt s fault_profiles

let faults_name f =
  match List.find_opt (fun (_, v) -> v = f) fault_profiles with
  | Some (n, _) -> n
  | None -> "custom"

(* Capabilities a fault profile draws on.  [Crash_capped] also sizes
   the allocator; the watchdog profiles spawn the monitor thread. *)
let required_caps = function
  | No_faults -> []
  | Stall_storm _ -> [ "stall_faults" ]
  | Crash _ -> [ "crash_faults" ]
  | Crash_capped _ -> [ "crash_faults"; "alloc_capacity" ]
  | Crash_watchdog _ -> [ "crash_faults"; "watchdog" ]
  | Stall_watchdog _ -> [ "stall_faults"; "watchdog" ]
  | Stall_neutralize _ -> [ "stall_faults"; "watchdog"; "neutralize" ]

(* Capabilities [caps] is missing for [faults] (empty = runnable). *)
let missing caps faults =
  List.filter (fun c -> not (has caps c)) (required_caps faults)

(* -- the backend surface the engine runs against -- *)

type exec = {
  backend : string;            (* "sim" | "domains" (provenance tag) *)
  caps : capabilities;
  spawn : (tid:int -> unit) -> unit;
  (* Register a worker; tids are assigned in spawn order from 0.
     Bodies run at [launch]. *)
  spawn_aux : (unit -> unit) -> unit;
  (* Register a service thread (reclaimer, watchdog): a fiber on the
     sim, a domain joined after the workers on domains. *)
  launch : unit -> unit;
  (* Run everything registered to completion/horizon and join. *)
  now : unit -> int;
  (* Caller time: the fiber's virtual clock on the sim, microseconds
     of monotonic wall clock since launch on domains. *)
  wait : int -> unit;
  (* Idle for n units ([Hooks.step] / sleep). *)
  worker_running : unit -> bool;
  (* Workers poll this in open-ended loops (park/backoff): true until
     the wall deadline on domains, always true on the sim (fibers are
     unwound at the horizon instead). *)
  aux_running : unit -> bool;
  (* Same, for service threads: false once every worker has joined on
     domains. *)
  worker_tick : tid:int -> bool;
  (* Per-operation backend hook for closed-loop workers: injects
     wall-clock stall faults and answers "keep going?".  Always true
     on the sim. *)
  neutralize : eject:(unit -> unit) -> tid:int -> unit;
  (* Deliver a restart signal to worker [tid] (watchdog Neutralize
     remedy).  [eject] expires the victim's reservations at the
     tracker; the backend decides when it is sound to call it: the
     sim calls it immediately (delivery-at-resumption guarantees the
     victim cannot dereference before it sees the signal), domains
     only raise a per-slot flag and let the victim expire itself
     inside [recover] (an external eject could race a dereference the
     victim is already committed to).  Backends without the
     "neutralize" capability raise [Unsupported]. *)
  makespan : unit -> int;
  (* After [launch]: run length in backend time units. *)
  publish_crashes : unit -> unit;
  (* Publish the crash-fault gauge (no-op where crashes cannot be
     injected — honest, because crash profiles raise Unsupported
     there). *)
}

let require exec faults =
  match missing exec.caps faults with
  | [] -> ()
  | capability :: _ -> unsupported ~backend:exec.backend ~capability

let require_capability exec capability =
  if not (has exec.caps capability) then
    unsupported ~backend:exec.backend ~capability

(* Markdown-ish capability table for docs and --menu output. *)
let caps_row caps =
  String.concat " "
    (List.map (fun c -> if has caps c then "+" ^ c else "-" ^ c)
       capability_names)
