(* Shared command-line vocabulary for bin/ and bench/.

   Both executables accept the same workload axes (rideable, tracker,
   threads, interval, mix, retire backend, fault profile); this module
   owns the string -> value parsers and the parharness-style [--meta]
   Cartesian expansion so the two front ends cannot drift apart.  The
   meta key table is the single source of truth: the per-key setters,
   the documentation string, and the expansion all derive from it. *)

type base = {
  rideable : string;
  tracker : string;
  threads : int;
  interval : int;
  mix : string;
  retire : string;
  faults : string;
}

let parse_mix s =
  match s with
  | "write" -> Workload.write_dominated
  | "read" -> Workload.read_dominated
  | _ ->
    (match Workload.find_mix s with
     | Some m -> m
     | None ->
       failwith
         (Printf.sprintf "unknown mix %S (write|read|%s)" s
            (String.concat "|"
               (List.map Workload.mix_name Workload.profiles))))

let parse_retire_backend s =
  match Ibr_core.Reclaimer.backend_of_string s with
  | Some b -> b
  | None ->
    failwith
      (Printf.sprintf "unknown retire backend %S (%s)" s
         (String.concat "|"
            (List.map Ibr_core.Reclaimer.backend_name
               Ibr_core.Reclaimer.all_backends)))

let parse_faults s =
  match Runner_sim.faults_of_string s with
  | Some f -> f
  | None ->
    failwith
      (Printf.sprintf "unknown fault profile %S (%s)" s
         (String.concat "|" (List.map fst Runner_sim.fault_profiles)))

(* The meta key table: key, human label, setter.  Integer-valued keys
   funnel through [int_of_meta] so a bad value names the key. *)
let int_of_meta key v =
  match int_of_string_opt v with
  | Some n -> n
  | None -> failwith (Printf.sprintf "--meta %s wants integers, got %S" key v)

let meta_keys :
  (string * string * (base -> string -> base)) list =
  [
    ("r", "rideable", fun c v -> { c with rideable = v });
    ("d", "tracker", fun c v -> { c with tracker = v });
    ("t", "threads", fun c v -> { c with threads = int_of_meta "t" v });
    ("i", "interval", fun c v -> { c with interval = int_of_meta "i" v });
    ("m", "mix", fun c v -> { c with mix = v });
    ("b", "retire backend", fun c v -> { c with retire = v });
    ("f", "fault profile", fun c v -> { c with faults = v });
  ]

(* "r (rideable), d (tracker), ..." — interpolated into --meta docs. *)
let meta_key_doc =
  String.concat ", "
    (List.map (fun (k, label, _) -> Printf.sprintf "%s (%s)" k label)
       meta_keys)

let apply_meta cfg (key, v) =
  match List.find_opt (fun (k, _, _) -> k = key) meta_keys with
  | Some (_, _, set) -> set cfg v
  | None ->
    failwith
      (Printf.sprintf "unknown meta key %S (%s)" key
         (String.concat "," (List.map (fun (k, _, _) -> k) meta_keys)))

(* parharness-style expansion: each --meta key:v1:v2 multiplies the
   configuration set. *)
let expand_metas metas base =
  List.fold_left
    (fun configs meta ->
       match String.split_on_char ':' meta with
       | key :: (_ :: _ as values) ->
         List.concat_map
           (fun cfg -> List.map (fun v -> apply_meta cfg (key, v)) values)
           configs
       | _ ->
         failwith (Printf.sprintf "bad --meta %S; want key:v1:v2:..." meta))
    [ base ] metas

(* Minimal argv helpers for the bechamel harness, which keeps plain
   Sys.argv scanning instead of cmdliner (bechamel owns most of its
   surface). *)
let has_flag argv name = Array.exists (( = ) name) argv

let find_value argv name =
  let n = Array.length argv in
  let rec go i =
    if i >= n then None
    else if argv.(i) = name && i + 1 < n then Some argv.(i + 1)
    else
      match String.length name, argv.(i) with
      | ln, a
        when String.length a > ln + 1
          && String.sub a 0 (ln + 1) = name ^ "=" ->
        Some (String.sub a (ln + 1) (String.length a - ln - 1))
      | _ -> go (i + 1)
  in
  go 1
