(** Shared command-line vocabulary for the benchmark front ends.

    [bin/] (cmdliner) and [bench/] (plain argv) accept the same
    workload axes; this module owns the parsers and the
    parharness-style [--meta] expansion so they cannot drift.  The
    {!meta_keys} table is the single source of truth: setters, docs
    ({!meta_key_doc}) and {!expand_metas} all derive from it. *)

(** One point in the sweep space, as raw CLI strings/ints (parsed
    lazily by the runner so error messages can name the axis). *)
type base = {
  rideable : string;
  tracker : string;
  threads : int;
  interval : int;
  mix : string;
  retire : string;
  faults : string;
}

val parse_mix : string -> Workload.mix
(** Accepts the legacy aliases [write]/[read], the full legacy names,
    and the YCSB-like profile letters [A]–[F] (case-insensitive).
    Raises [Failure] naming the valid mixes on unknown input. *)

val parse_retire_backend : string -> Ibr_core.Reclaimer.backend
(** Raises [Failure] listing the registered backends on unknown
    input. *)

val parse_faults : string -> Runner_sim.faults
(** Raises [Failure] listing the fault profiles on unknown input. *)

val meta_keys : (string * string * (base -> string -> base)) list
(** [(key, label, setter)] for every [--meta] axis. *)

val meta_key_doc : string
(** ["r (rideable), d (tracker), ..."] — for option documentation. *)

val expand_metas : string list -> base -> base list
(** [expand_metas metas base] Cartesian-expands parharness-style
    [key:v1:v2:...] specifications over [base].  Raises [Failure] on a
    malformed spec or unknown key. *)

val has_flag : string array -> string -> bool
(** [has_flag argv "--x"] — plain argv scan (bench front end). *)

val find_value : string array -> string -> string option
(** [find_value argv "--x"] accepts both ["--x" "v"] and ["--x=v"]. *)
