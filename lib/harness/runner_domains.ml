(* The real-parallelism backend: the same tracker / data-structure
   code on OCaml 5 domains with wall-clock timing and no cost
   accounting (the [Hooks] handler stays a no-op).

   On the evaluation container (1 hardware core) this measures the
   schemes' native instruction overhead under preemptive interleaving
   rather than parallel speedup; its role in the reproduction is race
   stress (tests run it with 2–4 domains) and a sanity check that the
   library is not simulator-bound. *)

open Ibr_ds

type config = {
  threads : int;               (* domains *)
  duration_s : float;
  seed : int;
  tracker_cfg : Ibr_core.Tracker_intf.config;
  spec : Workload.spec;
}

let default_config ?(threads = 4) ?(duration_s = 0.2) ?(seed = 0xd0e5) ~spec
    () =
  { threads; duration_s; seed;
    tracker_cfg = Ibr_core.Tracker_intf.default_config ~threads ();
    spec }

let now_ns () = Int64.to_int (Int64.of_float (Unix.gettimeofday () *. 1e9))

let run ~tracker_name ~ds_name (module S : Ds_intf.SET) (cfg : config) =
  let t = S.create ~threads:cfg.threads cfg.tracker_cfg in
  let h0 = S.register t ~tid:0 in
  let prefill_rng = Ibr_runtime.Rng.create (cfg.seed lxor 0x5eed) in
  Workload.prefill ~rng:prefill_rng ~spec:cfg.spec
    ~insert:(fun ~key ~value -> S.insert h0 ~key ~value);
  (* Prefill replacements may have queued retirements; drain them now
     so the run's shutdown invariant (drained = pushed) is exact. *)
  (match S.reclaim_service t with
   | Some svc -> ignore (svc.Ibr_core.Handoff.drain ())
   | None -> ());
  let baseline = Ibr_obs.Metrics.begin_run () in
  let start = now_ns () in
  let deadline = Unix.gettimeofday () +. cfg.duration_s in
  let worker tid () =
    let h = S.register t ~tid in
    let rng = Ibr_runtime.Rng.stream ~seed:cfg.seed ~index:tid in
    let sampler = Stats.make_sampler () in
    let ops = ref 0 in
    (* Check the clock every [batch] ops to keep Unix.gettimeofday off
       the hot path. *)
    let batch = 64 in
    let continue_ = ref true in
    while !continue_ do
      for _ = 1 to batch do
        Stats.sample sampler (S.retired_count h);
        let key = Workload.pick_key rng cfg.spec in
        (match Workload.pick_op rng cfg.spec.mix with
         | Workload.Insert -> ignore (S.insert h ~key ~value:key)
         | Workload.Remove -> ignore (S.remove h ~key)
         | Workload.Get -> ignore (S.get h ~key));
        incr ops
      done;
      if Unix.gettimeofday () >= deadline then continue_ := false
    done;
    (!ops, sampler)
  in
  (* The background reclaimer is a real domain here: it drains the
     handoff queues and runs the sweep cadence in parallel with the
     mutators until every worker has joined, then flushes.  The final
     flush runs on this domain while the main domain waits in join —
     still exclusive, so the plain [flush] (not [shutdown_flush])
     suffices: nothing can abandon the lock on this backend. *)
  let stop = Atomic.make false in
  let reclaimer =
    Option.map
      (fun (svc : Ibr_core.Handoff.service) ->
         Domain.spawn (fun () ->
           while not (Atomic.get stop) do
             if svc.drain () = 0 then Domain.cpu_relax ()
           done;
           svc.flush ()))
      (S.reclaim_service t)
  in
  let domains =
    List.init cfg.threads (fun tid -> Domain.spawn (worker tid)) in
  let results = List.map Domain.join domains in
  Atomic.set stop true;
  Option.iter Domain.join reclaimer;
  let makespan = now_ns () - start in
  let total_ops = List.fold_left (fun n (o, _) -> n + o) 0 results in
  let merged = Stats.merge_samplers (List.map snd results) in
  (* Crash/ejection gauges stay at the zero [begin_run] left them:
     fault injection is a simulator capability. *)
  Ibr_core.Alloc.publish_stats (S.allocator_stats t);
  Ibr_core.Epoch.publish (S.epoch_value t);
  {
    Stats.tracker = tracker_name;
    ds = ds_name;
    threads = cfg.threads;
    mix = Workload.mix_name cfg.spec.mix;
    ops = total_ops;
    makespan;
    throughput = Stats.throughput ~ops:total_ops ~makespan;
    avg_unreclaimed = Stats.mean merged;
    peak_unreclaimed = merged.peak;
    samples = merged.n;
    metrics = Ibr_obs.Metrics.collect baseline;
  }

let run_named ~tracker_name ~ds_name cfg =
  let tracker = (Ibr_core.Registry.find_exn tracker_name).tracker in
  let maker = Ds_registry.find_exn ds_name in
  let (module S : Ds_intf.SET) = maker.instantiate tracker in
  let (module T : Ibr_core.Tracker_intf.TRACKER) = tracker in
  if not (S.compatible T.props) then None
  else Some (run ~tracker_name:T.name ~ds_name (module S) cfg)
