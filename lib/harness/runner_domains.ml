(* The real-parallelism backend: the same tracker / data-structure
   code on OCaml 5 domains with monotonic wall-clock timing
   (microsecond units, the 1 cycle ~ 1 us convention) and no cost
   accounting (the [Hooks] handler stays a no-op).

   On the evaluation container (1 hardware core) this measures the
   schemes' native instruction overhead under preemptive interleaving
   rather than parallel speedup; its role in the reproduction is race
   stress (tests run it with 2–4 domains) and a hardware column for
   the robustness and service campaigns.

   The run loop is the backend-shared [Run_engine]; this module only
   carries the wall-clock configuration.  Fault profiles the backend
   can honor (stall storms, the parked-victim watchdog profile) run
   for real; profiles needing scheduler-injected crashes or virtual
   time raise [Runner_intf.Unsupported] instead of the old silent
   zeroed-gauge behavior. *)

open Ibr_ds

type config = {
  threads : int;               (* domains *)
  duration_s : float;
  seed : int;
  tracker_cfg : Ibr_core.Tracker_intf.config;
  spec : Workload.spec;
  faults : Runner_intf.faults;
}

let default_config ?(threads = 4) ?(duration_s = 0.2) ?(seed = 0xd0e5)
    ?(faults = Runner_intf.No_faults) ~spec () =
  { threads; duration_s; seed;
    tracker_cfg = Ibr_core.Tracker_intf.default_config ~threads ();
    spec; faults }

let exec_of_config (cfg : config) =
  Run_engine.domains_exec ~threads:cfg.threads ~duration_s:cfg.duration_s
    ~seed:cfg.seed ~faults:cfg.faults ()

let engine_config (cfg : config) = {
  Run_engine.threads = cfg.threads;
  seed = cfg.seed;
  tracker_cfg = cfg.tracker_cfg;
  spec = cfg.spec;
  faults = cfg.faults;
}

let run ~tracker_name ~ds_name (module S : Ds_intf.RIDEABLE) (cfg : config) =
  Run_engine.run ~exec:(exec_of_config cfg) ~tracker_name ~ds_name
    (module S) (engine_config cfg)

let run_named ~tracker_name ~ds_name cfg =
  Run_engine.run_named ~exec:(exec_of_config cfg) ~tracker_name ~ds_name
    (engine_config cfg)
