(** The shared run loop behind both runners (DESIGN.md §11).

    {!run} drives one closed-loop benchmark configuration —
    create/prefill, capacity sizing, worker fleet, background
    reclaimer, watchdog, shutdown quiescence, stats assembly — over a
    {!Runner_intf.exec} built by one of the two constructors here.
    Fault profiles whose required capabilities the backend lacks fail
    fast with {!Runner_intf.Unsupported}.

    Time units follow the 1 virtual cycle ~ 1 microsecond convention,
    so period-like knobs (watchdog period, stall length, service
    horizons) mean the same thing on either backend. *)

type config = {
  threads : int;
  seed : int;
  tracker_cfg : Ibr_core.Tracker_intf.config;
  spec : Workload.spec;
  faults : Runner_intf.faults;
}

val sim_caps : Runner_intf.capabilities
val domains_caps : Runner_intf.capabilities

val sim_exec : sched:Ibr_runtime.Sched.t -> horizon:int -> Runner_intf.exec
(** Wrap a discrete-event machine.  The engine's calls through this
    exec replay the original simulator runner exactly (same step and
    PRNG sequences), keeping traced runs and the golden CSV
    byte-identical. *)

val domains_exec :
  threads:int -> duration_s:float -> seed:int ->
  faults:Runner_intf.faults -> unit -> Runner_intf.exec
(** Real [Domain.t]s under monotonic wall-clock time (microsecond
    units).  [threads] sizes the per-worker tick state; [faults]
    selects the wall-clock fault injection [worker_tick] performs
    (stall storms as real sleeps).  Workers observe the [duration_s]
    deadline through [worker_tick]/[worker_running]; service threads
    run until every worker has joined. *)

val check_caps :
  ds_name:string -> (module Ibr_ds.Ds_intf.RIDEABLE) -> Workload.mix -> unit
(** Fail fast ([Invalid_argument]) when the mix draws on a capability
    the rideable does not export; the message names the missing
    capability and the rideables that could run the mix. *)

val run :
  exec:Runner_intf.exec ->
  tracker_name:string -> ds_name:string ->
  (module Ibr_ds.Ds_intf.RIDEABLE) -> config -> Stats.t
(** Run one configuration to completion and assemble its stats row
    ([backend] stamped from the exec).
    @raise Runner_intf.Unsupported if [config.faults] needs a
    capability the backend does not declare.
    @raise Invalid_argument if the mix draws on a capability the
    rideable does not export (the message lists capable rideables). *)

val run_named :
  exec:Runner_intf.exec ->
  tracker_name:string -> ds_name:string -> config -> Stats.t option
(** Resolve names through the tracker / data-structure registries;
    [None] if the pairing is incompatible. *)
