(* Open-loop service simulation (DESIGN.md §10).

   Where [Runner_sim] reproduces the paper's closed-loop
   microbenchmark — a fixed census of threads issuing operations
   back-to-back — this module models the ROADMAP's production-scale
   north star: requests *arrive* on their own schedule (Poisson or
   bursty, modulated by a diurnal ramp and load spikes), keys are
   Zipf-skewed, and workers join and leave the census mid-run through
   the tracker attach/detach protocol.  Per-request latency is
   arrival-to-completion, so queueing delay — the quantity a closed
   loop structurally cannot observe — is part of every percentile,
   and the run ends with SLO pass/fail verdicts over p50/p99/p999
   latency and peak allocator footprint.

   Determinism: the arrival schedule is precomputed outside the
   simulated machine from its own seeded stream (exponential gaps via
   inverse CDF; the diurnal ramp is an integer piecewise-linear tent
   and spike windows are integer arithmetic, so only the gap draw
   touches floating point).  Workers claim arrivals from a shared
   fetch-and-add cursor inside the simulation.  Same seed, same
   profile => the same arrivals, the same interleaving, bit-identical
   CSV and verdicts — the PR 4/6 reproducibility discipline extended
   to open-loop runs.

   Churn: [fleet] worker fibers share [workers] census slots.  Each
   worker loops attach -> serve a bounded session -> detach -> stay
   away, retrying with backoff when the census is full (fleet >
   workers keeps slots contended, so slot reuse — the dangerous part
   of the protocol — happens constantly, not incidentally). *)

open Ibr_runtime
open Ibr_ds

type arrival =
  | Poisson
  | Bursty of { burst : int; prob : float }

let arrival_name = function
  | Poisson -> "poisson"
  | Bursty { burst; prob } -> Printf.sprintf "bursty%d@%.2f" burst prob

let arrival_of_string s =
  match String.lowercase_ascii s with
  | "poisson" -> Some Poisson
  | "bursty" -> Some (Bursty { burst = 8; prob = 0.02 })
  | _ -> None

(* Latency targets in virtual cycles; footprint in blocks.  A target
   of [max_int] disables that check. *)
type slo = {
  p50 : int;
  p99 : int;
  p999 : int;
  peak_footprint : int;
}

type verdict = {
  metric : string;
  target : int;
  actual : int;
  ok : bool;
}

type profile = {
  workers : int;        (* census capacity (tracker [threads]) *)
  fleet : int;          (* worker fibers sharing the slots *)
  cores : int;
  horizon : int;
  seed : int;
  arrival : arrival;
  period : int;         (* base mean inter-arrival gap, cycles *)
  diurnal : bool;       (* x0.6 at the edges, x1.5 mid-run *)
  spikes : int;         (* evenly spaced x3 windows, 2% of horizon *)
  zipf_theta : float;   (* 0 = uniform *)
  session_ops : int;    (* ops per attached session *)
  away : int;           (* cycles detached between sessions *)
  watchdog : (int * int) option;   (* (period, grace) *)
  neutralize : bool;
  (* Remedy for the watchdog above: false = eject the stalled worker
     (loses it for the rest of its session), true = deliver a restart
     signal and let it recover (DESIGN.md §12) — the SLO comparison
     leg of the neutralization campaign. *)
  spec : Workload.spec;
  tracker_cfg : Ibr_core.Tracker_intf.config;
  slo : slo;
}

(* Default SLO: sized for the default profile below with roughly 2x
   headroom over the slowest paper-set scheme's measured tails (HP;
   see EXPERIMENTS.md), so every sound scheme passes and a regression
   that doubles a tail fails.  EXPERIMENTS.md also reports a tight SLO
   that discriminates between schemes. *)
let default_slo = {
  p50 = 25_000;
  p99 = 60_000;
  p999 = 120_000;
  peak_footprint = 40_000;
}

let default_profile ?(workers = 4) ?(fleet = 6) ?(cores = 8)
    ?(horizon = 150_000) ?(seed = 0xca11) ?(arrival = Poisson)
    ?(period = 60) ?(diurnal = true) ?(spikes = 2) ?(zipf_theta = 0.9)
    ?(session_ops = 40) ?(away = 2_000) ?watchdog ?(neutralize = false)
    ?(slo = default_slo) ~spec () =
  {
    workers;
    fleet;
    cores;
    horizon;
    seed;
    arrival;
    period;
    diurnal;
    spikes;
    zipf_theta;
    session_ops;
    away;
    watchdog;
    neutralize;
    spec;
    tracker_cfg = Ibr_core.Tracker_intf.default_config ~threads:workers ();
    slo;
  }

(* Rate modulation in permille of the base rate, all-integer so the
   schedule's shape is exactly reproducible.  Diurnal: a linear tent
   from 600 at the run's edges to 1500 mid-run ("overnight" to "peak
   hours").  Spikes: [spikes] evenly spaced windows of 2% of the
   horizon at 3x whatever the tent says. *)
let rate_permille p ~t =
  let base =
    if not p.diurnal then 1000
    else begin
      let half = max 1 (p.horizon / 2) in
      let x = if t <= half then t else max 0 (p.horizon - t) in
      600 + (900 * min x half) / half
    end
  in
  if p.spikes <= 0 then base
  else begin
    let width = max 1 (p.horizon / 50) in
    let gap = p.horizon / (p.spikes + 1) in
    let rec in_spike k =
      k <= p.spikes
      && ((t >= (k * gap) && t < (k * gap) + width) || in_spike (k + 1))
    in
    if in_spike 1 then base * 3 else base
  end

(* Precompute the arrival timestamps.  Gaps are exponential with mean
   [period * 1000 / rate_permille] (inverse-CDF sampling); a bursty
   process additionally emits a train of same-instant arrivals with
   probability [prob] per base arrival.  The safety cap bounds memory
   against pathological parameter choices; hitting it is reported in
   the result as [arrivals_capped]. *)
let arrival_cap p = 1024 + (16 * p.horizon / max 1 p.period)

let gen_arrivals p =
  let rng = Rng.stream ~seed:p.seed ~index:997 in
  let cap = arrival_cap p in
  let buf = ref [] and n = ref 0 in
  let push ti =
    if !n < cap then begin
      buf := ti :: !buf;
      incr n
    end
  in
  let t = ref 0.0 in
  while !t < float_of_int p.horizon && !n < cap do
    let ti = int_of_float !t in
    push ti;
    (match p.arrival with
     | Poisson -> ()
     | Bursty { burst; prob } ->
       if Rng.chance rng prob then
         for _ = 1 to burst do push ti done);
    let mean =
      float_of_int (p.period * 1000) /. float_of_int (rate_permille p ~t:ti)
    in
    let gap = -.mean *. log (1.0 -. Rng.float rng) in
    t := !t +. Float.max 1.0 gap
  done;
  (Array.of_list (List.rev !buf), !n >= cap)

type result = {
  tracker : string;
  ds : string;
  backend : string;
  workers : int;
  fleet : int;
  arrivals : int;
  arrivals_capped : bool;
  completed : int;
  aborted : int;          (* claimed but died of allocator exhaustion *)
  unserved : int;         (* never claimed / unwound mid-request *)
  attaches : int;
  detaches : int;
  attach_full : int;      (* attach attempts refused: census full *)
  ejections : int;
  neutralizations : int;
  recovered : int;        (* neutralized workers that resumed *)
  p50 : int;
  p90 : int;
  p99 : int;
  p999 : int;
  max_latency : int;
  peak_footprint : int;
  makespan : int;
  throughput : float;     (* completed requests per Mcycle *)
  verdicts : verdict list;
  slo_pass : bool;
  metrics : Ibr_obs.Metrics.snapshot;
}

(* Registered on first use, not at module init: these columns must
   not leak into the fixed-census CSV layout (test_obs pins it
   byte-for-byte) unless a service run actually happened. *)
let service_metrics =
  lazy
    (let open Ibr_obs.Metrics in
     let latency = register_histogram ~name:"svc_latency" ~order:900 in
     let arrivals = register_gauge ~name:"svc_arrivals" ~order:910 in
     let completed = register_gauge ~name:"svc_completed" ~order:911 in
     let aborted = register_gauge ~name:"svc_aborted" ~order:912 in
     let attaches = register_gauge ~name:"svc_attaches" ~order:913 in
     let detaches = register_gauge ~name:"svc_detaches" ~order:914 in
     let p999 = register_gauge ~name:"svc_p999" ~order:915 in
     (latency, arrivals, completed, aborted, attaches, detaches, p999))

(* Same index convention as [Ibr_obs.Metrics.percentile], so the p50
   and p99 published through the registry histogram and the p999
   computed here are one consistent family. *)
let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0
  else sorted.(min (n - 1) (int_of_float (float_of_int n *. p)))

let check ~metric ~target ~actual =
  { metric; target; actual; ok = target = max_int || actual <= target }

(* The run loop over a backend [exec] (same discipline as
   [Run_engine]): on the simulator — the [run] entry point below —
   [exec]'s closures make this identical, step for step and PRNG draw
   for PRNG draw, to the pre-extraction fiber runner, keeping service
   rows byte-reproducible.  On domains the arrival schedule is the
   same precomputed array, timestamps are microseconds of monotonic
   wall clock, and the deadline is observed through
   [exec.worker_running] (always true on the sim, where the horizon
   unwinds fibers instead). *)
let run_exec ~(exec : Runner_intf.exec) ~tracker_name ~ds_name
    (module S : Ds_intf.RIDEABLE) (p : profile) =
  Runner_intf.require_capability exec "service";
  Run_engine.check_caps ~ds_name (module S) p.spec.mix;
  if p.workers < 1 then invalid_arg "Service.run: workers must be >= 1";
  if p.fleet < 1 then invalid_arg "Service.run: fleet must be >= 1";
  if p.period < 1 then invalid_arg "Service.run: period must be >= 1";
  if p.session_ops < 1 then
    invalid_arg "Service.run: session_ops must be >= 1";
  (* Capability records, resolved once (the fail-fast above covers
     every op the mix can draw). *)
  let mops = S.map and qops = S.queue and rops = S.range and bops = S.bulk in
  let t = S.create ~threads:p.workers p.tracker_cfg in
  (* Prefill through an attached handle, detached before the run: the
     measured phase starts with a fully free census and a populated
     structure, and every service run exercises detach at least once
     even if churn parameters are degenerate. *)
  (match S.attach t with
   | None -> assert false   (* fresh census is never full *)
   | Some h0 ->
     let prefill_rng = Rng.create (p.seed lxor 0x5eed) in
     let prefill_insert =
       match mops with
       | Some m -> fun ~key ~value -> m.Ds_intf.insert h0 ~key ~value
       | None ->
         (match qops with
          | Some q ->
            fun ~key ~value:_ ->
              q.Ds_intf.enqueue h0 key;
              true
          | None -> fun ~key:_ ~value:_ -> false)
     in
     Workload.prefill ~rng:prefill_rng ~spec:p.spec ~insert:prefill_insert;
     S.detach h0);
  let arrivals, arrivals_capped = gen_arrivals p in
  let n_arr = Array.length arrivals in
  (* -1 = never served, -2 = aborted; single writer per index (the
     claiming worker), so a plain array is race-free in the sim. *)
  let lat = Array.make (max 1 n_arr) (-1) in
  let next = Atomic.make 0 in
  let zipf = Workload.zipf ~theta:p.zipf_theta ~key_range:p.spec.key_range in
  (* Atomics: on domains several workers race these counters; on the
     sim the plain increments they replace cost nothing either way
     (neither path goes through the cost hooks). *)
  let attaches = Atomic.make 0
  and detaches = Atomic.make 0
  and attach_full = Atomic.make 0 in
  (* Census mirror for the watchdog: which slots the service believes
     are occupied, and per-slot attempt counters (cumulative across
     occupants; the watchdog re-arms on each occupancy change).
     Distinct-index writes by the slot's occupant; the watchdog's
     cross-thread reads are racy by design (a stale read delays one
     check, inside the grace budget). *)
  let slot_active = Array.make p.workers false in
  let slot_attempts = Array.make p.workers 0 in
  let serve h slot i rng =
    slot_attempts.(slot) <- slot_attempts.(slot) + 1;
    let ta = arrivals.(i) in
    let now = exec.now () in
    if ta > now then exec.wait (ta - now);
    let key = Workload.zipf_pick zipf rng in
    try
      (match Workload.pick_op rng p.spec.mix with
       | Workload.Insert ->
         ignore ((Option.get mops).Ds_intf.insert h ~key ~value:key)
       | Workload.Remove ->
         ignore ((Option.get mops).Ds_intf.remove h ~key)
       | Workload.Get -> ignore ((Option.get mops).Ds_intf.get h ~key)
       | Workload.Scan ->
         ignore
           ((Option.get rops).Ds_intf.range h ~lo:key
              ~hi:(Workload.scan_hi p.spec key))
       | Workload.Enqueue -> (Option.get qops).Ds_intf.enqueue h key
       | Workload.Dequeue -> ignore ((Option.get qops).Ds_intf.dequeue h)
       | Workload.Migrate -> ignore ((Option.get bops).Ds_intf.migrate h));
      lat.(i) <- exec.now () - ta
    with
    | Ibr_core.Alloc.Exhausted
    | Ibr_core.Fault.Memory_fault (Ibr_core.Fault.Alloc_exhausted, _) ->
      lat.(i) <- -2
  in
  for w = 0 to p.fleet - 1 do
    exec.spawn (fun ~tid:_ ->
      let rng = Rng.stream ~seed:p.seed ~index:(0x1000 + w) in
      (* Stagger the fleet so sessions do not churn in lockstep. *)
      exec.wait (1 + (w * 131));
      let rec park () =
        exec.wait 4096;
        if exec.worker_running () then park ()
      and join () =
        match S.attach t with
        | None ->
          (* Census full: another worker holds every slot.  Back
             off and retry — this is the expected steady state
             when fleet > workers. *)
          Atomic.incr attach_full;
          exec.wait 512;
          if exec.worker_running () then join ()
        | Some h ->
          Atomic.incr attaches;
          let slot = S.handle_tid h in
          slot_active.(slot) <- true;
          session h slot p.session_ops
      and leave h slot =
        slot_active.(slot) <- false;
        S.detach h;
        Atomic.incr detaches
      and session h slot budget =
        if budget = 0 then begin
          leave h slot;
          exec.wait p.away;
          if exec.worker_running () then join ()
        end
        else begin
          let i = Ibr_core.Prim.faa next 1 in
          if i >= n_arr then begin
            (* Demand exhausted: leave properly and idle out the
               rest of the horizon. *)
            leave h slot;
            park ()
          end
          else begin
            serve h slot i rng;
            (* Wall deadline (domains only; always running on the
               sim): finish the request, then leave cleanly so the
               detach protocol runs even on a timed exit. *)
            if exec.worker_running () then session h slot (budget - 1)
            else leave h slot
          end
        end
      in
      join ())
  done;
  (* Background reclaimer service thread, as in [Run_engine]. *)
  let reclaim = S.reclaim_service t in
  (match reclaim with
   | Some svc ->
     exec.spawn_aux (fun () ->
       let rec loop () =
         if exec.aux_running () then begin
           if svc.Ibr_core.Handoff.drain () = 0 then exec.wait 128;
           loop ()
         end
       in
       loop ())
   | None -> ());
  let watchdog =
    match p.watchdog with
    | Some (period, grace) ->
      let remedy =
        if p.neutralize then
          Watchdog.Neutralize
            (fun tid ->
              exec.neutralize ~eject:(fun () -> S.eject t ~tid) ~tid)
        else Watchdog.Eject
      in
      Some
        (Watchdog.spawn_exec ~exec ~period ~grace ~threads:p.workers
           ~remedy
           ~active:(fun slot -> slot_active.(slot))
           ~progress:(fun slot -> slot_attempts.(slot))
           ~footprint:(fun () -> (S.allocator_stats t).live)
           ~eject:(fun tid -> S.eject t ~tid)
           ())
    | None -> None
  in
  let lat_h, m_arr, m_comp, m_ab, m_att, m_det, m_p999 =
    Lazy.force service_metrics
  in
  let baseline = Ibr_obs.Metrics.begin_run () in
  exec.launch ();
  (match reclaim with
   | Some svc -> svc.Ibr_core.Handoff.shutdown_flush ()
   | None -> ());
  (* Digest latencies: completed requests only. *)
  let completed = ref 0 and aborted = ref 0 in
  Array.iter
    (fun l ->
       if l >= 0 then incr completed else if l = -2 then incr aborted)
    lat;
  let sorted = Array.make !completed 0 in
  let k = ref 0 in
  Array.iter
    (fun l ->
       if l >= 0 then begin
         sorted.(!k) <- l;
         incr k
       end)
    lat;
  Array.sort compare sorted;
  Array.iter (fun l -> if l >= 0 then Ibr_obs.Metrics.observe lat_h l) lat;
  let p50 = percentile sorted 0.50 in
  let p90 = percentile sorted 0.90 in
  let p99 = percentile sorted 0.99 in
  let p999 = percentile sorted 0.999 in
  let max_latency =
    if !completed = 0 then 0 else sorted.(!completed - 1) in
  let st = S.allocator_stats t in
  let makespan = exec.makespan () in
  m_arr := n_arr;
  m_comp := !completed;
  m_ab := !aborted;
  m_att := Atomic.get attaches;
  m_det := Atomic.get detaches;
  m_p999 := p999;
  Ibr_core.Alloc.publish_stats st;
  Ibr_core.Epoch.publish (S.epoch_value t);
  exec.publish_crashes ();
  (match watchdog with Some w -> Watchdog.publish w | None -> ());
  let verdicts =
    [
      check ~metric:"p50" ~target:p.slo.p50 ~actual:p50;
      check ~metric:"p99" ~target:p.slo.p99 ~actual:p99;
      check ~metric:"p999" ~target:p.slo.p999 ~actual:p999;
      check ~metric:"peak_footprint" ~target:p.slo.peak_footprint
        ~actual:st.peak_footprint;
    ]
  in
  {
    tracker = tracker_name;
    ds = ds_name;
    backend = exec.backend;
    workers = p.workers;
    fleet = p.fleet;
    arrivals = n_arr;
    arrivals_capped;
    completed = !completed;
    aborted = !aborted;
    unserved = n_arr - !completed - !aborted;
    attaches = Atomic.get attaches;
    detaches = Atomic.get detaches;
    attach_full = Atomic.get attach_full;
    ejections =
      (match watchdog with Some w -> Watchdog.ejections w | None -> 0);
    neutralizations =
      (match watchdog with Some w -> Watchdog.neutralizations w | None -> 0);
    recovered =
      (match watchdog with Some w -> Watchdog.recovered w | None -> 0);
    p50;
    p90;
    p99;
    p999;
    max_latency;
    peak_footprint = st.peak_footprint;
    makespan;
    throughput = Stats.throughput ~ops:!completed ~makespan;
    verdicts;
    slo_pass = List.for_all (fun v -> v.ok) verdicts;
    metrics = Ibr_obs.Metrics.collect baseline;
  }

(* Simulator entry point (the historical API): build the machine from
   the profile and run through its exec. *)
let run ~tracker_name ~ds_name (module S : Ds_intf.RIDEABLE) (p : profile) =
  let sched =
    Sched.create { Sched.default_config with cores = p.cores; seed = p.seed }
  in
  let exec = Run_engine.sim_exec ~sched ~horizon:p.horizon in
  run_exec ~exec ~tracker_name ~ds_name (module S) p

let run_named_exec ~exec ~tracker_name ~ds_name p =
  let tracker = (Ibr_core.Registry.find_exn tracker_name).tracker in
  let maker = Ds_registry.find_exn ds_name in
  let (module S : Ds_intf.RIDEABLE) = maker.instantiate tracker in
  let (module T : Ibr_core.Tracker_intf.TRACKER) = tracker in
  if not (S.compatible T.props) then None
  else Some (run_exec ~exec ~tracker_name:T.name ~ds_name (module S) p)

let run_named ~tracker_name ~ds_name p =
  let sched =
    Sched.create { Sched.default_config with cores = p.cores; seed = p.seed }
  in
  let exec = Run_engine.sim_exec ~sched ~horizon:p.horizon in
  run_named_exec ~exec ~tracker_name ~ds_name p

(* CSV: identity + counts + tails + verdict, every field an integer
   except throughput (printed with a fixed format), so a fixed seed
   reproduces the row byte-for-byte. *)
let csv_header =
  "tracker,ds,workers,fleet,arrivals,completed,aborted,unserved,\
   attaches,detaches,attach_full,ejections,neutralizations,recovered,\
   p50,p90,p99,p999,\
   max_latency,peak_footprint,makespan,throughput,slo_pass,backend"

let to_csv_row r =
  Printf.sprintf
    "%s,%s,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%.6f,\
     %d,%s"
    r.tracker r.ds r.workers r.fleet r.arrivals r.completed r.aborted
    r.unserved r.attaches r.detaches r.attach_full r.ejections
    r.neutralizations r.recovered r.p50 r.p90
    r.p99 r.p999 r.max_latency r.peak_footprint r.makespan r.throughput
    (if r.slo_pass then 1 else 0)
    r.backend

let verdicts_csv r =
  String.concat ";"
    (List.map
       (fun v ->
          Printf.sprintf "%s:%d<=%d:%s" v.metric v.actual v.target
            (if v.ok then "pass" else "FAIL"))
       r.verdicts)

let pp ppf r =
  Fmt.pf ppf
    "@[<v>%s on %s%s: %d arrivals, %d completed, %d aborted, %d unserved@,\
     churn: %d attaches / %d detaches (%d refused full, %d ejections, \
     %d neutralized / %d recovered)@,\
     latency p50=%d p90=%d p99=%d p999=%d max=%d cycles@,\
     peak footprint %d blocks, makespan %d, %.2f req/Mcycle@,\
     SLO: %s%s@]"
    r.tracker r.ds
    (if r.backend = "sim" then "" else Printf.sprintf " [%s]" r.backend)
    r.arrivals r.completed r.aborted r.unserved r.attaches
    r.detaches r.attach_full r.ejections r.neutralizations r.recovered
    r.p50 r.p90 r.p99 r.p999
    r.max_latency r.peak_footprint r.makespan r.throughput
    (if r.slo_pass then "PASS" else "FAIL")
    (if r.slo_pass then ""
     else
       " [" ^
       String.concat "; "
         (List.filter_map
            (fun v ->
               if v.ok then None
               else
                 Some
                   (Printf.sprintf "%s %d > %d" v.metric v.actual v.target))
            r.verdicts)
       ^ "]")
