(* The one run loop both backends share (DESIGN.md §11).

   [run] owns every piece of scaffolding the two runners used to
   duplicate — create/prefill, capacity sizing from the post-prefill
   working set, the handoff pre-drain, the metrics baseline, the
   background-reclaimer service thread, the watchdog, shutdown
   quiescence, stats assembly — and drives it through a
   {!Runner_intf.exec}: the record of what a backend can do.  The two
   constructors here build that record.

   [sim_exec] wraps a discrete-event {!Sched.t}.  Its closures are
   chosen so the engine replays the old [Runner_sim.run] {e exactly}:
   [worker_running]/[aux_running]/[worker_tick] are constant [true]
   (fibers end by horizon unwinding, not polling), [wait] is
   [Hooks.step], and spawn order (workers, then reclaimer, then
   watchdog) fixes the same fiber tids — so the machine executes the
   same step sequence, draws the same PRNG stream, and the golden CSV
   stays byte-identical.

   [domains_exec] runs the registered bodies on real [Domain.t]s with
   monotonic wall-clock time at the 1 cycle ~ 1 us convention.
   Workers poll [worker_running] (every operation via [worker_tick]'s
   64-op cadence); service threads poll [aux_running], which goes
   false once every worker has joined.  Stall faults are injected as
   real [sleepf] stalls from a per-thread PRNG; crash faults cannot be
   injected into a domain from outside, so the capability is absent
   and crash profiles fail fast with [Unsupported] instead of the old
   silent zeroed gauges. *)

open Ibr_runtime
open Ibr_ds

type config = {
  threads : int;
  seed : int;
  tracker_cfg : Ibr_core.Tracker_intf.config;
  spec : Workload.spec;
  faults : Runner_intf.faults;
}

(* -- backend constructors -- *)

let sim_caps : Runner_intf.capabilities = {
  deterministic = true;
  crash_faults = true;
  stall_faults = true;
  virtual_time = true;
  watchdog = true;
  neutralize = true;
  alloc_capacity = true;
  service = true;
}

let sim_exec ~sched ~horizon : Runner_intf.exec =
  {
    backend = "sim";
    caps = sim_caps;
    spawn = (fun body -> ignore (Sched.spawn sched (fun tid -> body ~tid)));
    spawn_aux = (fun body -> ignore (Sched.spawn sched (fun _ -> body ())));
    launch = (fun () -> Sched.run ~horizon sched);
    now = Hooks.now;
    wait = Hooks.step;
    worker_running = (fun () -> true);
    aux_running = (fun () -> true);
    worker_tick = (fun ~tid:_ -> true);
    (* Eject first, then signal: the fiber cannot dereference before
       its next resumption, where the scheduler delivers [Neutralized]
       ahead of any further step (see the soundness note in Sched). *)
    neutralize =
      (fun ~eject ~tid ->
        eject ();
        Sched.neutralize sched tid);
    makespan = (fun () -> min (Sched.makespan sched) horizon);
    publish_crashes = (fun () -> Sched.publish_crashes sched);
  }

let domains_caps : Runner_intf.capabilities = {
  deterministic = false;
  crash_faults = false;
  stall_faults = true;
  virtual_time = false;
  watchdog = true;
  neutralize = true;
  alloc_capacity = true;
  service = true;
}

(* Sleep [n] microseconds.  Short waits spin on the monotonic clock:
   at this scale a nanosleep round-trip costs more than it waits. *)
let wait_us n =
  if n > 0 then begin
    if n < 50 then begin
      let until = Monotonic.now_ns () + (n * 1000) in
      while Monotonic.now_ns () < until do Domain.cpu_relax () done
    end
    else Unix.sleepf (float_of_int n /. 1e6)
  end

let domains_exec ~threads ~duration_s ~seed ~faults () : Runner_intf.exec =
  let duration_us = int_of_float (duration_s *. 1e6) in
  let workers : (unit -> unit) list ref = ref [] in
  let auxes : (unit -> unit) list ref = ref [] in
  let next_tid = ref 0 in
  let aux_stop = Atomic.make false in
  let start_ns = ref 0 in
  let end_ns = ref 0 in
  let now () = (Monotonic.now_ns () - !start_ns) / 1000 in
  let worker_running () = now () < duration_us in
  (* Per-worker op counters and fault PRNGs for [worker_tick].  The
     counters are distinct-index plain writes (no sharing); the PRNG
     seed is decorrelated from the workload stream. *)
  let ticks = Array.make (max threads 1) 0 in
  let fault_rngs =
    Array.init (max threads 1) (fun i ->
      Rng.stream ~seed:(seed lxor 0x57a11) ~index:i)
  in
  let worker_tick ~tid =
    let c = ticks.(tid) + 1 in
    ticks.(tid) <- c;
    if c land 63 <> 0 then true
    else begin
      (* Clock check and fault draw every 64 ops, keeping the
         syscall off the per-operation hot path (the old runner's
         batch=64 deadline check). *)
      (match (faults : Runner_intf.faults) with
       | Stall_storm { stall_prob; stall_len }
       | Stall_neutralize { stall_prob; stall_len; _ } ->
         if Rng.chance fault_rngs.(tid) stall_prob then wait_us stall_len
       | _ -> ());
      worker_running ()
    end
  in
  (* Neutralization rails: one flag per worker slot, raised by the
     watchdog and drained by the victim itself at its next guard-path
     poll ([Hooks.poll_neutralize] inside [Prim.read]) while its
     restart window is open.  Delivery is signal-only on this backend:
     an external eject could race a dereference the victim is already
     committed to, so the victim expires its own reservations inside
     [recover] after the raise. *)
  let rails = Array.init (max threads 1) (fun _ -> Atomic.make false) in
  {
    backend = "domains";
    caps = domains_caps;
    spawn =
      (fun body ->
        let tid = !next_tid in
        incr next_tid;
        workers :=
          (fun () ->
            (* Per-domain handler: track the restart window locally
               (DLS — no other thread reads it) and poll the rail. *)
            let win = ref false in
            Hooks.set
              { Hooks.default with
                restart_window =
                  (fun open_ ->
                    let prev = !win in
                    win := open_;
                    prev);
                poll_neutralize =
                  (fun () ->
                    if !win && Atomic.get rails.(tid) then begin
                      Atomic.set rails.(tid) false;
                      raise Hooks.Neutralized
                    end) };
            body ~tid)
          :: !workers);
    spawn_aux = (fun body -> auxes := body :: !auxes);
    launch =
      (fun () ->
        start_ns := Monotonic.now_ns ();
        let ws = List.rev_map Domain.spawn (List.rev !workers) in
        let axs = List.rev_map Domain.spawn (List.rev !auxes) in
        List.iter Domain.join ws;
        Atomic.set aux_stop true;
        List.iter Domain.join axs;
        end_ns := Monotonic.now_ns ());
    now;
    wait = wait_us;
    worker_running;
    aux_running = (fun () -> not (Atomic.get aux_stop));
    worker_tick;
    neutralize = (fun ~eject:_ ~tid -> Atomic.set rails.(tid) true);
    makespan = (fun () -> (!end_ns - !start_ns) / 1000);
    (* Honest no-op: crash profiles raise [Unsupported] on this
       backend, so the gauge's absence cannot be mistaken for a
       zero-crash measurement. *)
    publish_crashes = (fun () -> ());
  }

(* -- the shared run loop -- *)

(* Fail fast when the mix draws on a capability the rideable does not
   export, naming the rideables that could run it instead. *)
let check_caps ~ds_name (module S : Ds_intf.RIDEABLE) (mix : Workload.mix) =
  let need = Workload.required mix in
  let have = Ds_intf.caps_of (module S) in
  if not (Ds_intf.subsumes have need) then begin
    let missing =
      {
        Ds_intf.map = need.map && not have.map;
        queue = need.queue && not have.queue;
        range = need.range && not have.range;
        bulk = need.bulk && not have.bulk;
      }
    in
    let capable =
      match Ds_registry.supporting need with
      | [] -> "none"
      | ms -> String.concat ", " (List.map (fun m -> m.Ds_registry.ds_name) ms)
    in
    invalid_arg
      (Printf.sprintf
         "Run_engine: rideable %S lacks capability %s needed by mix %S \
          (capable rideables: %s)"
         ds_name
         (Ds_intf.caps_to_string missing)
         (Workload.mix_name mix) capable)
  end

let run ~(exec : Runner_intf.exec) ~tracker_name ~ds_name
    (module S : Ds_intf.RIDEABLE) (cfg : config) =
  Runner_intf.require exec cfg.faults;
  check_caps ~ds_name (module S) cfg.spec.mix;
  (* Resolve the capability records once; the fail-fast above
     guarantees every op the mix can draw has its record. *)
  let mops = S.map and qops = S.queue and rops = S.range and bops = S.bulk in
  let t = S.create ~threads:cfg.threads cfg.tracker_cfg in
  (* Prefill from a registration outside the measured run: through the
     map when there is one (byte-identical to the historical prefill),
     else by enqueueing the selected keys. *)
  let h0 = S.register t ~tid:0 in
  let prefill_rng = Rng.create (cfg.seed lxor 0x5eed) in
  let prefill_insert =
    match mops with
    | Some m -> fun ~key ~value -> m.Ds_intf.insert h0 ~key ~value
    | None ->
      (match qops with
       | Some q ->
         fun ~key ~value:_ ->
           q.Ds_intf.enqueue h0 key;
           true
       | None -> fun ~key:_ ~value:_ -> false)
  in
  Workload.prefill ~rng:prefill_rng ~spec:cfg.spec ~insert:prefill_insert;
  (* The capacity can only be sized now: the working set exists. *)
  (match cfg.faults with
   | Crash_capped { slack_per_thread; _ } ->
     let st = S.allocator_stats t in
     S.set_capacity t (Some (st.live + (cfg.threads * slack_per_thread)))
   | _ -> ());
  (* Measured phase. *)
  let ops = Array.make cfg.threads 0 in
  let aborted = Array.make cfg.threads 0 in
  let samplers = Array.init cfg.threads (fun _ -> Stats.make_sampler ()) in
  for _ = 0 to cfg.threads - 1 do
    exec.spawn (fun ~tid ->
      let h = S.register t ~tid in
      let rng = Rng.stream ~seed:cfg.seed ~index:tid in
      (* Stall_watchdog's victim parks here between operations —
         holding no reservation, so ejecting it is sound by
         construction (the profile tests detection, not rescue). *)
      let rec park () =
        exec.wait 4096;
        if exec.worker_running () then park ()
      in
      (* Runs until the scheduler unwinds it at the horizon (sim) or
         [worker_tick] reports the wall deadline (domains). *)
      let rec loop () =
        Stats.sample samplers.(tid) (S.retired_count h);
        let key = Workload.pick_key rng cfg.spec in
        (try
           (match Workload.pick_op rng cfg.spec.mix with
            | Workload.Insert ->
              ignore ((Option.get mops).Ds_intf.insert h ~key ~value:key)
            | Workload.Remove ->
              ignore ((Option.get mops).Ds_intf.remove h ~key)
            | Workload.Get -> ignore ((Option.get mops).Ds_intf.get h ~key)
            | Workload.Scan ->
              ignore
                ((Option.get rops).Ds_intf.range h ~lo:key
                   ~hi:(Workload.scan_hi cfg.spec key))
            | Workload.Enqueue -> (Option.get qops).Ds_intf.enqueue h key
            | Workload.Dequeue ->
              ignore ((Option.get qops).Ds_intf.dequeue h)
            | Workload.Migrate ->
              ignore ((Option.get bops).Ds_intf.migrate h));
           ops.(tid) <- ops.(tid) + 1
         with
         | Ibr_core.Alloc.Exhausted
         | Ibr_core.Fault.Memory_fault (Ibr_core.Fault.Alloc_exhausted, _)
           ->
           (* Heap full after the backpressure ladder: the op
              aborted (its reservations were released on unwind);
              keep going — later sweeps may free room. *)
           aborted.(tid) <- aborted.(tid) + 1);
        match cfg.faults with
        | Stall_watchdog _ when tid = 0 -> park ()
        | _ -> if exec.worker_tick ~tid then loop ()
      in
      loop ())
  done;
  (* The background reclaimer (tracker cfg [background_reclaim]) rides
     as one more service thread: it drains the handoff queues and runs
     the sweep cadence on its own time budget, off the mutators'
     critical path.  An idle poll still waits — on the sim the step is
     both the livelock guard and the polling period. *)
  let service = S.reclaim_service t in
  (match service with
   | Some svc ->
     exec.spawn_aux (fun () ->
       let idle_poll = 128 in
       let rec loop () =
         if exec.aux_running () then begin
           if svc.Ibr_core.Handoff.drain () = 0 then exec.wait idle_poll;
           loop ()
         end
       in
       loop ())
   | None -> ());
  (* The watchdog rides as one more service thread.  Progress =
     attempts, not completions, so a live thread stuck aborting
     against a full heap is not mistaken for a dead one. *)
  let watchdog =
    let spawn_dog ~period ~grace ~remedy =
      Watchdog.spawn_exec ~exec ~period ~grace ~threads:cfg.threads
        ~remedy
        ~progress:(fun tid -> ops.(tid) + aborted.(tid))
        ~footprint:(fun () -> (S.allocator_stats t).live)
        ~eject:(fun tid -> S.eject t ~tid)
        ()
    in
    match cfg.faults with
    | Crash_watchdog { period; grace; _ } | Stall_watchdog { period; grace }
      ->
      Some (spawn_dog ~period ~grace ~remedy:Watchdog.Eject)
    | Stall_neutralize { period; grace; _ } ->
      Some
        (spawn_dog ~period ~grace
           ~remedy:
             (Watchdog.Neutralize
                (fun tid ->
                  exec.neutralize ~eject:(fun () -> S.eject t ~tid) ~tid)))
    | _ -> None
  in
  (* Prefill replacements may have queued retirements; drain them now
     so the measured phase starts with empty queues and the shutdown
     invariant (drained = pushed within the run) is exact. *)
  (match service with
   | Some svc -> ignore (svc.Ibr_core.Handoff.drain ())
   | None -> ());
  (* Baseline the registry counters at the edge of the measured phase
     (gauges and histograms are zeroed here too). *)
  let baseline = Ibr_obs.Metrics.begin_run () in
  exec.launch ();
  (* Shutdown quiescence: every worker has unwound/crashed/joined, so
     one final flush moves still-queued blocks (including the batch
     buffers of departed producers) into the reclaimer and sweeps.  A
     crash that abandoned a fiber mid-drain leaves the handoff lock
     held; the run is exclusive again, so seizing it is sound. *)
  (match service with
   | Some svc -> svc.Ibr_core.Handoff.shutdown_flush ()
   | None -> ());
  let total_ops = Array.fold_left ( + ) 0 ops in
  let merged = Stats.merge_samplers (Array.to_list samplers) in
  let makespan = exec.makespan () in
  (* Publish the instance-scoped gauges, then snapshot. *)
  Ibr_core.Alloc.publish_stats (S.allocator_stats t);
  Ibr_core.Epoch.publish (S.epoch_value t);
  exec.publish_crashes ();
  (match watchdog with Some w -> Watchdog.publish w | None -> ());
  {
    Stats.tracker = tracker_name;
    ds = ds_name;
    threads = cfg.threads;
    mix = Workload.mix_name cfg.spec.mix;
    backend = exec.backend;
    ops = total_ops;
    makespan;
    throughput = Stats.throughput ~ops:total_ops ~makespan;
    avg_unreclaimed = Stats.mean merged;
    peak_unreclaimed = merged.peak;
    samples = merged.n;
    metrics = Ibr_obs.Metrics.collect baseline;
  }

(* Convenience: resolve names through the registries and run. *)
let run_named ~exec ~tracker_name ~ds_name cfg =
  let tracker = (Ibr_core.Registry.find_exn tracker_name).tracker in
  let maker = Ds_registry.find_exn ds_name in
  let (module S : Ds_intf.RIDEABLE) = maker.instantiate tracker in
  let (module T : Ibr_core.Tracker_intf.TRACKER) = tracker in
  if not (S.compatible T.props) then None
  else Some (run ~exec ~tracker_name:T.name ~ds_name (module S) cfg)
