(* Regenerate every table and figure of the paper's evaluation
   (DESIGN.md §3 maps them), print ASCII renderings, and write tidy
   CSVs under an output directory.  `--quick` trades thread-ladder
   resolution for speed; `--fig` selects one experiment. *)

open Cmdliner

let ensure_dir d = if not (Sys.file_exists d) then Unix.mkdir d 0o755

let render_and_save ~out_dir figs =
  List.iter
    (fun (fig : Ibr_harness.Chart.figure) ->
       print_string (Ibr_harness.Chart.to_string fig);
       let path = Filename.concat out_dir (fig.fig_id ^ ".csv") in
       Ibr_harness.Csv_out.write_figure path fig;
       Fmt.pr "wrote %s@." path)
    figs

let rows_csv ~out_dir name rows =
  let path = Filename.concat out_dir (name ^ "-rows.csv") in
  Ibr_harness.Csv_out.write_rows path rows;
  Fmt.pr "wrote %s@." path

let run_panel ~out_dir ~threads_list ds =
  let r = Ibr_harness.Experiment.fig8_9 ?threads_list ds in
  render_and_save ~out_dir [ r.throughput_fig; r.space_fig ];
  rows_csv ~out_dir ("fig8-9-" ^ ds) r.rows;
  r.rows

let run_fig10 ~out_dir ~threads_list () =
  let r = Ibr_harness.Experiment.fig10 ?threads_list () in
  render_and_save ~out_dir [ r.space_fig ];
  rows_csv ~out_dir "fig10" r.rows

let print_checks rows =
  let checks = Ibr_harness.Experiment.headline_checks rows in
  if checks <> [] then begin
    Fmt.pr "== A.6 acceptance checks ==@.";
    List.iter
      (fun (c : Ibr_harness.Experiment.check) ->
         Fmt.pr "%s: %s (%s)@."
           (if c.holds then "PASS" else "FAIL")
           c.claim c.detail)
      checks;
    Fmt.pr "@."
  end

let main fig quick out_dir =
  ensure_dir out_dir;
  let threads_list =
    if quick then Some Ibr_harness.Experiment.quick_threads else None in
  let do_fig7 () =
    Fmt.pr "== Fig. 7: scheme tradeoffs ==@.%s@."
      (Ibr_harness.Experiment.fig7_table ()) in
  let do_panel ds = print_checks (run_panel ~out_dir ~threads_list ds) in
  let do_ksweep () =
    let thr, spc, rows = Ibr_harness.Experiment.empty_freq_sweep () in
    render_and_save ~out_dir [ thr; spc ];
    rows_csv ~out_dir "k-sweep" rows in
  let do_fence () =
    render_and_save ~out_dir [ Ibr_harness.Experiment.fence_cost_sweep () ] in
  let do_tagibr () =
    render_and_save ~out_dir
      [ Ibr_harness.Experiment.tagibr_strategy_sweep () ] in
  match fig with
  | "7" -> do_fig7 ()
  | "8a" | "9a" -> do_panel "list"
  | "8b" | "9b" -> do_panel "hashmap"
  | "8c" | "9c" -> do_panel "nmtree"
  | "8d" | "9d" -> do_panel "bonsai"
  | "10" -> run_fig10 ~out_dir ~threads_list ()
  | "k-sweep" -> do_ksweep ()
  | "fence" -> do_fence ()
  | "tagibr" -> do_tagibr ()
  | "all" ->
    do_fig7 ();
    List.iter do_panel [ "list"; "hashmap"; "nmtree"; "bonsai" ];
    run_fig10 ~out_dir ~threads_list ();
    do_ksweep ();
    do_fence ();
    do_tagibr ()
  | s ->
    Fmt.epr
      "unknown figure %S (7, 8a-8d, 9a-9d, 10, k-sweep, fence, tagibr, all)@."
      s;
    exit 1

let fig =
  Arg.(value & opt string "all"
       & info [ "f"; "fig" ] ~docv:"ID"
           ~doc:"Experiment id: 7, 8a..8d, 9a..9d, 10, k-sweep, fence, \
                 tagibr, or all.")

let quick =
  Arg.(value & flag
       & info [ "quick" ] ~doc:"Coarser thread ladder (much faster).")

let out_dir =
  Arg.(value & opt string "data"
       & info [ "out-dir" ] ~docv:"DIR" ~doc:"Where to write CSVs.")

let cmd =
  let doc = "regenerate the paper's figures and tables" in
  Cmd.v (Cmd.info "ibr-figures" ~doc)
    Term.(const main $ fig $ quick $ out_dir)

let () = exit (Cmd.eval cmd)
