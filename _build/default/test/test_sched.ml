(* Discrete-event scheduler: determinism, preemption, horizon,
   stalls, queueing under oversubscription, unwinding. *)

open Ibr_runtime

let run_trace ?(cores = 3) ?(seed = 7) ?(threads = 5) ?(steps = 30) () =
  let t = Sched.create (Sched.test_config ~cores ~seed ()) in
  let buf = Buffer.create 128 in
  for _ = 1 to threads do
    ignore
      (Sched.spawn t (fun tid ->
         for j = 1 to steps do
           Hooks.step (1 + ((tid + j) mod 5));
           Buffer.add_string buf (string_of_int tid)
         done))
  done;
  Sched.run t;
  (t, Buffer.contents buf)

let test_determinism () =
  let _, a = run_trace () and _, b = run_trace () in
  Alcotest.(check string) "identical traces" a b

let test_all_threads_run () =
  let _, trace = run_trace () in
  for tid = 0 to 4 do
    Alcotest.(check bool)
      (Printf.sprintf "thread %d appears" tid)
      true
      (String.contains trace (Char.chr (Char.code '0' + tid)))
  done

let test_interleaving_happens () =
  let _, trace = run_trace () in
  (* With tiny quanta the trace must not be five solid blocks. *)
  let switches = ref 0 in
  String.iteri
    (fun i c -> if i > 0 && trace.[i - 1] <> c then incr switches)
    trace;
  Alcotest.(check bool) "many context switches" true (!switches > 10)

let test_vtime_accounting () =
  let t = Sched.create (Sched.test_config ~cores:1 ()) in
  let tid =
    Sched.spawn t (fun _ -> for _ = 1 to 10 do Hooks.step 7 done) in
  Sched.run t;
  Alcotest.(check int) "vtime = total cost" 70 (Sched.thread_vtime t tid)

let test_makespan_single_core () =
  (* One core: makespan is the sum of all thread work. *)
  let t = Sched.create { (Sched.test_config ~cores:1 ()) with ctx_switch = 0 } in
  for _ = 1 to 4 do
    ignore (Sched.spawn t (fun _ -> for _ = 1 to 10 do Hooks.step 5 done))
  done;
  Sched.run t;
  Alcotest.(check int) "makespan 4*50" 200 (Sched.makespan t)

let test_makespan_parallel () =
  (* Enough cores: makespan is one thread's work. *)
  let t = Sched.create { (Sched.test_config ~cores:4 ()) with ctx_switch = 0 } in
  for _ = 1 to 4 do
    ignore (Sched.spawn t (fun _ -> for _ = 1 to 10 do Hooks.step 5 done))
  done;
  Sched.run t;
  Alcotest.(check int) "makespan 50" 50 (Sched.makespan t)

let test_horizon_cuts () =
  let t = Sched.create (Sched.test_config ~cores:1 ()) in
  let count = ref 0 in
  ignore
    (Sched.spawn t (fun _ ->
       for _ = 1 to 1_000_000 do Hooks.step 10; incr count done));
  Sched.run ~horizon:500 t;
  Alcotest.(check bool) "stopped early" true (!count < 100);
  Alcotest.(check bool) "did some work" true (!count > 10)

let test_horizon_unwinds_protect () =
  let t = Sched.create (Sched.test_config ~cores:1 ()) in
  let cleaned = ref false in
  ignore
    (Sched.spawn t (fun _ ->
       Fun.protect
         ~finally:(fun () -> cleaned := true)
         (fun () -> for _ = 1 to 1_000_000 do Hooks.step 10 done)));
  Sched.run ~horizon:200 t;
  Alcotest.(check bool) "finally ran on unwind" true !cleaned

let test_stalled_thread_never_runs () =
  let t = Sched.create (Sched.test_config ~cores:2 ()) in
  let ran = Array.make 2 false in
  for i = 0 to 1 do
    ignore (Sched.spawn t (fun tid -> Hooks.step 1; ran.(tid) <- true; ignore i))
  done;
  Sched.stall t 1;
  Sched.run t;
  Alcotest.(check bool) "thread 0 ran" true ran.(0);
  Alcotest.(check bool) "stalled thread did not" false ran.(1)

let test_current_tid_inside_fiber () =
  let t = Sched.create (Sched.test_config ~cores:2 ()) in
  let seen = Array.make 3 (-1) in
  for _ = 0 to 2 do
    ignore
      (Sched.spawn t (fun tid ->
         Hooks.step 1;
         seen.(tid) <- Hooks.current_tid ()))
  done;
  Sched.run t;
  Alcotest.(check (array int)) "hooks report own tid" [| 0; 1; 2 |] seen

let test_now_monotone_in_fiber () =
  let t = Sched.create (Sched.test_config ~cores:2 ()) in
  let ok = ref true in
  ignore
    (Sched.spawn t (fun _ ->
       let last = ref (-1) in
       for _ = 1 to 50 do
         Hooks.step 3;
         let n = Hooks.now () in
         if n < !last then ok := false;
         last := n
       done));
  Sched.run t;
  Alcotest.(check bool) "thread-local time monotone" true !ok

let test_oversubscription_stretches_makespan () =
  let work () =
    fun _tid -> for _ = 1 to 100 do Hooks.step 5 done in
  let m cores threads =
    let t = Sched.create { (Sched.test_config ~cores ()) with ctx_switch = 0 } in
    for _ = 1 to threads do ignore (Sched.spawn t (work ())) done;
    Sched.run t;
    Sched.makespan t
  in
  let dedicated = m 8 8 and oversub = m 4 8 in
  Alcotest.(check bool) "8 threads on 4 cores take ~2x" true
    (oversub >= dedicated * 2)

let test_spawn_after_run_rejected () =
  let t = Sched.create (Sched.test_config ()) in
  ignore (Sched.spawn t (fun _ -> Hooks.step 1));
  Sched.run t;
  Alcotest.check_raises "no spawn after run"
    (Invalid_argument "Sched.spawn: scheduler already ran") (fun () ->
      ignore (Sched.spawn t (fun _ -> ())))

let test_exception_propagates () =
  let t = Sched.create (Sched.test_config ~cores:1 ()) in
  ignore (Sched.spawn t (fun _ -> Hooks.step 1; failwith "boom"));
  Alcotest.check_raises "body exception surfaces" (Failure "boom") (fun () ->
    Sched.run t)

let test_quanta_counted () =
  let t = Sched.create { (Sched.test_config ~cores:1 ()) with quantum = 10 } in
  let tid = Sched.spawn t (fun _ -> for _ = 1 to 10 do Hooks.step 10 done) in
  Sched.run t;
  Alcotest.(check bool) "multiple quanta" true (Sched.thread_quanta t tid >= 5)

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "all threads run" `Quick test_all_threads_run;
    Alcotest.test_case "interleaving happens" `Quick test_interleaving_happens;
    Alcotest.test_case "vtime accounting" `Quick test_vtime_accounting;
    Alcotest.test_case "makespan single core" `Quick test_makespan_single_core;
    Alcotest.test_case "makespan parallel" `Quick test_makespan_parallel;
    Alcotest.test_case "horizon cuts" `Quick test_horizon_cuts;
    Alcotest.test_case "horizon unwinds Fun.protect" `Quick test_horizon_unwinds_protect;
    Alcotest.test_case "stalled thread never runs" `Quick test_stalled_thread_never_runs;
    Alcotest.test_case "current tid" `Quick test_current_tid_inside_fiber;
    Alcotest.test_case "now monotone" `Quick test_now_monotone_in_fiber;
    Alcotest.test_case "oversubscription stretches makespan" `Quick
      test_oversubscription_stretches_makespan;
    Alcotest.test_case "spawn after run rejected" `Quick test_spawn_after_run_rejected;
    Alcotest.test_case "body exception propagates" `Quick test_exception_propagates;
    Alcotest.test_case "quanta counted" `Quick test_quanta_counted;
  ]
