(* PRNG: determinism, bounds, stream independence, shuffle. *)

let test_determinism () =
  let a = Ibr_runtime.Rng.create 42 and b = Ibr_runtime.Rng.create 42 in
  for _ = 1 to 1000 do
    Alcotest.(check int) "same stream" (Ibr_runtime.Rng.bits a)
      (Ibr_runtime.Rng.bits b)
  done

let test_seed_sensitivity () =
  let a = Ibr_runtime.Rng.create 1 and b = Ibr_runtime.Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 100 do
    if Ibr_runtime.Rng.bits a = Ibr_runtime.Rng.bits b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 5)

let test_int_bounds () =
  let r = Ibr_runtime.Rng.create 7 in
  for _ = 1 to 10_000 do
    let v = Ibr_runtime.Rng.int r 17 in
    Alcotest.(check bool) "in [0,17)" true (v >= 0 && v < 17)
  done

let test_int_rejects_nonpositive () =
  let r = Ibr_runtime.Rng.create 7 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Ibr_runtime.Rng.int r 0))

let test_int_in_range () =
  let r = Ibr_runtime.Rng.create 9 in
  for _ = 1 to 1000 do
    let v = Ibr_runtime.Rng.int_in_range r ~lo:(-5) ~hi:5 in
    Alcotest.(check bool) "in [-5,5]" true (v >= -5 && v <= 5)
  done

let test_float_unit_interval () =
  let r = Ibr_runtime.Rng.create 11 in
  for _ = 1 to 1000 do
    let v = Ibr_runtime.Rng.float r in
    Alcotest.(check bool) "in [0,1)" true (v >= 0.0 && v < 1.0)
  done

let test_chance_extremes () =
  let r = Ibr_runtime.Rng.create 13 in
  Alcotest.(check bool) "p=0 never" false (Ibr_runtime.Rng.chance r 0.0);
  Alcotest.(check bool) "p=1 always" true (Ibr_runtime.Rng.chance r 1.0)

let test_chance_rate () =
  let r = Ibr_runtime.Rng.create 15 in
  let hits = ref 0 in
  for _ = 1 to 10_000 do
    if Ibr_runtime.Rng.chance r 0.3 then incr hits
  done;
  Alcotest.(check bool) "about 30%" true (!hits > 2600 && !hits < 3400)

let test_streams_independent () =
  let a = Ibr_runtime.Rng.stream ~seed:5 ~index:0 in
  let b = Ibr_runtime.Rng.stream ~seed:5 ~index:1 in
  let same = ref 0 in
  for _ = 1 to 100 do
    if Ibr_runtime.Rng.bits a = Ibr_runtime.Rng.bits b then incr same
  done;
  Alcotest.(check bool) "indexed streams differ" true (!same < 5)

let test_stream_reproducible () =
  let a = Ibr_runtime.Rng.stream ~seed:5 ~index:3 in
  let b = Ibr_runtime.Rng.stream ~seed:5 ~index:3 in
  Alcotest.(check int) "same stream same draw" (Ibr_runtime.Rng.bits a)
    (Ibr_runtime.Rng.bits b)

let test_shuffle_is_permutation () =
  let r = Ibr_runtime.Rng.create 21 in
  let arr = Array.init 50 Fun.id in
  Ibr_runtime.Rng.shuffle_in_place r arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

let test_copy_diverges_nothing () =
  let a = Ibr_runtime.Rng.create 33 in
  ignore (Ibr_runtime.Rng.bits a);
  let b = Ibr_runtime.Rng.copy a in
  Alcotest.(check int) "copy continues identically" (Ibr_runtime.Rng.bits a)
    (Ibr_runtime.Rng.bits b)

let qcheck_bounds =
  QCheck.Test.make ~name:"rng int always within bound" ~count:500
    QCheck.(pair small_int (int_bound 1000))
    (fun (seed, bound) ->
       let bound = bound + 1 in
       let r = Ibr_runtime.Rng.create seed in
       let v = Ibr_runtime.Rng.int r bound in
       v >= 0 && v < bound)

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
    Alcotest.test_case "int bounds" `Quick test_int_bounds;
    Alcotest.test_case "int rejects nonpositive" `Quick test_int_rejects_nonpositive;
    Alcotest.test_case "int_in_range" `Quick test_int_in_range;
    Alcotest.test_case "float unit interval" `Quick test_float_unit_interval;
    Alcotest.test_case "chance extremes" `Quick test_chance_extremes;
    Alcotest.test_case "chance rate" `Quick test_chance_rate;
    Alcotest.test_case "streams independent" `Quick test_streams_independent;
    Alcotest.test_case "stream reproducible" `Quick test_stream_reproducible;
    Alcotest.test_case "shuffle permutation" `Quick test_shuffle_is_permutation;
    Alcotest.test_case "copy" `Quick test_copy_diverges_nothing;
    QCheck_alcotest.to_alcotest qcheck_bounds;
  ]
