(* Treiber stack: sequential LIFO semantics, concurrent conservation
   (every value pushed is popped at most once; pops+remaining = pushes),
   and reclamation under every scheme. *)

open Ibr_core
open Ibr_runtime

let cfg threads =
  { (Tracker_intf.default_config ~threads ()) with
    reuse = false; epoch_freq = 2; empty_freq = 4 }

let test_sequential_lifo (e : Registry.entry) () =
  let (module T : Tracker_intf.TRACKER) = e.tracker in
  let module S = Ibr_ds.Treiber_stack.Make (T) in
  let t = S.create ~threads:1 (cfg 1) in
  let h = S.register t ~tid:0 in
  Alcotest.(check (option int)) "empty pop" None (S.pop h);
  S.push h 1;
  S.push h 2;
  S.push h 3;
  Alcotest.(check (option int)) "peek" (Some 3) (S.peek h);
  Alcotest.(check (list int)) "dump top-first" [ 3; 2; 1 ] (S.to_list t);
  Alcotest.(check (option int)) "pop 3" (Some 3) (S.pop h);
  Alcotest.(check (option int)) "pop 2" (Some 2) (S.pop h);
  Alcotest.(check (option int)) "pop 1" (Some 1) (S.pop h);
  Alcotest.(check (option int)) "pop empty" None (S.pop h);
  Alcotest.(check bool) "is_empty" true (S.is_empty h)

let test_pop_reclaims (e : Registry.entry) () =
  let (module T : Tracker_intf.TRACKER) = e.tracker in
  let module S = Ibr_ds.Treiber_stack.Make (T) in
  let t = S.create ~threads:1 (cfg 1) in
  let h = S.register t ~tid:0 in
  for i = 1 to 100 do S.push h i done;
  for _ = 1 to 100 do ignore (S.pop h) done;
  S.force_empty h;
  let s = S.allocator_stats t in
  if e.name <> "NoMM" then
    Alcotest.(check int) "all popped nodes reclaimed" 100 s.freed

let test_concurrent_conservation (e : Registry.entry) () =
  let (module T : Tracker_intf.TRACKER) = e.tracker in
  let module S = Ibr_ds.Treiber_stack.Make (T) in
  Fault.set_mode Fault.Raise;
  let threads = 8 in
  let t = S.create ~threads (cfg threads) in
  let sched =
    Sched.create
      { (Sched.test_config ~cores:3 ~seed:17 ()) with
        stall_prob = 0.02; stall_len = 2000; quantum = 120 } in
  let popped = Array.make threads [] in
  let pushed = Array.make threads [] in
  for i = 0 to threads - 1 do
    ignore
      (Sched.spawn sched (fun tid ->
         let h = S.register t ~tid in
         let rng = Rng.stream ~seed:(900 + i) ~index:i in
         for j = 1 to 200 do
           if Rng.bool rng then begin
             let v = (tid * 1_000_000) + j in
             S.push h v;
             pushed.(tid) <- v :: pushed.(tid)
           end
           else
             match S.pop h with
             | Some v -> popped.(tid) <- v :: popped.(tid)
             | None -> ()
         done))
  done;
  Sched.run sched;
  let all_pushed =
    Array.to_list pushed |> List.concat |> List.sort compare in
  let all_popped =
    Array.to_list popped |> List.concat |> List.sort compare in
  let remaining = S.to_list t |> List.sort compare in
  (* No duplicates among pops (each push popped at most once). *)
  let rec no_dup = function
    | a :: (b :: _ as rest) -> a <> b && no_dup rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "no value popped twice" true (no_dup all_popped);
  (* Conservation: pushed = popped ∪ remaining (as multisets). *)
  Alcotest.(check (list int)) "conservation" all_pushed
    (List.sort compare (all_popped @ remaining))

let suite =
  List.concat_map
    (fun (e : Registry.entry) ->
       [
         Alcotest.test_case (e.name ^ ": LIFO") `Quick (test_sequential_lifo e);
         Alcotest.test_case (e.name ^ ": pop reclaims") `Quick
           (test_pop_reclaims e);
         Alcotest.test_case (e.name ^ ": concurrent conservation") `Slow
           (test_concurrent_conservation e);
       ])
    Registry.all
