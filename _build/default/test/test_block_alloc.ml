(* Block lifecycle and the simulated manual allocator. *)

open Ibr_core

let with_raise_mode f =
  Fault.set_mode Fault.Raise;
  Fun.protect ~finally:(fun () -> Fault.set_mode Fault.Raise) f

let test_block_lifecycle () =
  with_raise_mode (fun () ->
    let b = Block.make ~id:1 "hello" in
    Alcotest.(check bool) "live" true (Block.is_live b);
    Alcotest.(check string) "payload" "hello" (Block.get b);
    Block.transition_retire b;
    Alcotest.(check bool) "retired" true (Block.is_retired b);
    (* Retired blocks are still readable (references may be live). *)
    Alcotest.(check string) "payload after retire" "hello" (Block.get b);
    Block.transition_reclaim b;
    Alcotest.(check bool) "reclaimed" true (Block.is_reclaimed b))

let test_use_after_free_raises () =
  with_raise_mode (fun () ->
    let b = Block.make ~id:2 7 in
    Block.transition_retire b;
    Block.transition_reclaim b;
    match Block.get b with
    | exception Fault.Memory_fault (Fault.Use_after_free, _) -> ()
    | _ -> Alcotest.fail "expected use-after-free fault")

let test_use_after_free_counted () =
  let b = Block.make ~id:3 7 in
  Block.transition_retire b;
  Block.transition_reclaim b;
  let v, faults = Fault.with_counting (fun () -> Block.get b) in
  Alcotest.(check int) "stale payload returned" 7 v;
  Alcotest.(check int) "one fault" 1 faults

let test_double_retire_detected () =
  with_raise_mode (fun () ->
    let b = Block.make ~id:4 () in
    Block.transition_retire b;
    match Block.transition_retire b with
    | exception Fault.Memory_fault (Fault.Double_retire, _) -> ()
    | _ -> Alcotest.fail "expected double-retire fault")

let test_double_free_detected () =
  with_raise_mode (fun () ->
    let b = Block.make ~id:5 () in
    Block.transition_retire b;
    Block.transition_reclaim b;
    match Block.transition_reclaim b with
    | exception Fault.Memory_fault (Fault.Double_free, _) -> ()
    | _ -> Alcotest.fail "expected double-free fault")

let test_free_without_retire_detected () =
  with_raise_mode (fun () ->
    let b = Block.make ~id:6 () in
    match Block.transition_reclaim b with
    | exception Fault.Memory_fault (Fault.Double_free, _) -> ()
    | _ -> Alcotest.fail "expected fault on free of live block")

let test_peek_total () =
  let b = Block.make ~id:7 "x" in
  Alcotest.(check (option string)) "peek live" (Some "x") (Block.peek b);
  Block.transition_retire b;
  Block.transition_reclaim b;
  Alcotest.(check (option string)) "peek reclaimed" None (Block.peek b)

let test_reincarnation () =
  let b = Block.make ~id:8 "first" in
  Block.transition_retire b;
  Block.transition_reclaim b;
  Block.set_birth_epoch b 0;
  Block.reincarnate b "second";
  Alcotest.(check bool) "live again" true (Block.is_live b);
  Alcotest.(check string) "new payload" "second" (Block.get b);
  Alcotest.(check int) "incarnation bumped" 1 (Block.incarnation b);
  Alcotest.(check int) "retire epoch reset" max_int (Block.retire_epoch b)

let test_alloc_reuse_cycle () =
  let a = Alloc.create ~reuse:true ~threads:2 () in
  let b1 = Alloc.alloc a ~tid:0 "one" in
  Block.transition_retire b1;
  Alloc.free a ~tid:0 b1;
  let b2 = Alloc.alloc a ~tid:0 "two" in
  Alcotest.(check bool) "same block object reused" true (b1 == b2);
  Alcotest.(check string) "fresh payload" "two" (Block.get b2);
  let s = Alloc.stats a in
  Alcotest.(check int) "allocated" 2 s.allocated;
  Alcotest.(check int) "reused" 1 s.reused;
  Alcotest.(check int) "fresh" 1 s.fresh

let test_alloc_no_reuse () =
  let a = Alloc.create ~reuse:false ~threads:1 () in
  let b1 = Alloc.alloc a ~tid:0 1 in
  Block.transition_retire b1;
  Alloc.free a ~tid:0 b1;
  let b2 = Alloc.alloc a ~tid:0 2 in
  Alcotest.(check bool) "no reuse" true (b1 != b2);
  Alcotest.(check bool) "old stays reclaimed" true (Block.is_reclaimed b1)

let test_alloc_caches_per_thread () =
  let a = Alloc.create ~reuse:true ~threads:2 () in
  let b1 = Alloc.alloc a ~tid:0 0 in
  Block.transition_retire b1;
  Alloc.free a ~tid:0 b1;
  (* Thread 1 allocates: must not steal thread 0's cache. *)
  let b2 = Alloc.alloc a ~tid:1 0 in
  Alcotest.(check bool) "different block" true (b1 != b2)

let test_free_unpublished () =
  let a = Alloc.create ~reuse:true ~threads:1 () in
  let b = Alloc.alloc a ~tid:0 0 in
  Alloc.free_unpublished a ~tid:0 b;
  Alcotest.(check bool) "reclaimed directly" true (Block.is_reclaimed b);
  Alcotest.(check int) "freed counted" 1 (Alloc.stats a).freed

let test_stats_live () =
  let a = Alloc.create ~reuse:false ~threads:1 () in
  let bs = List.init 5 (fun i -> Alloc.alloc a ~tid:0 i) in
  List.iteri
    (fun i b ->
       if i < 2 then begin
         Block.transition_retire b;
         Alloc.free a ~tid:0 b
       end)
    bs;
  let s = Alloc.stats a in
  Alcotest.(check int) "live" 3 s.live;
  Alcotest.(check int) "freed" 2 s.freed

let test_tid_bounds () =
  let a = Alloc.create ~threads:2 () in
  Alcotest.check_raises "tid out of range"
    (Invalid_argument "Alloc: thread id out of range") (fun () ->
      ignore (Alloc.alloc a ~tid:5 ()))

let test_unique_ids () =
  let a = Alloc.create ~reuse:false ~threads:1 () in
  let ids = List.init 100 (fun _ -> Block.id (Alloc.alloc a ~tid:0 ())) in
  Alcotest.(check int) "all ids distinct" 100
    (List.length (List.sort_uniq compare ids))

let test_fault_reset () =
  Fault.reset ();
  let b = Block.make ~id:99 () in
  Block.transition_retire b;
  Block.transition_reclaim b;
  let (), n = Fault.with_counting (fun () -> ignore (Block.peek b)) in
  Alcotest.(check int) "peek is not a fault" 0 n;
  Fault.reset ();
  Alcotest.(check int) "counters cleared" 0 (Fault.total ())

let suite =
  [
    Alcotest.test_case "lifecycle" `Quick test_block_lifecycle;
    Alcotest.test_case "UAF raises" `Quick test_use_after_free_raises;
    Alcotest.test_case "UAF counted" `Quick test_use_after_free_counted;
    Alcotest.test_case "double retire" `Quick test_double_retire_detected;
    Alcotest.test_case "double free" `Quick test_double_free_detected;
    Alcotest.test_case "free live block" `Quick test_free_without_retire_detected;
    Alcotest.test_case "peek total" `Quick test_peek_total;
    Alcotest.test_case "reincarnation" `Quick test_reincarnation;
    Alcotest.test_case "alloc reuse cycle" `Quick test_alloc_reuse_cycle;
    Alcotest.test_case "alloc no reuse" `Quick test_alloc_no_reuse;
    Alcotest.test_case "per-thread caches" `Quick test_alloc_caches_per_thread;
    Alcotest.test_case "free unpublished" `Quick test_free_unpublished;
    Alcotest.test_case "stats live" `Quick test_stats_live;
    Alcotest.test_case "tid bounds" `Quick test_tid_bounds;
    Alcotest.test_case "unique ids" `Quick test_unique_ids;
    Alcotest.test_case "fault reset" `Quick test_fault_reset;
  ]
