test/test_stack.ml: Alcotest Array Fault Ibr_core Ibr_ds Ibr_runtime List Registry Rng Sched Tracker_intf
