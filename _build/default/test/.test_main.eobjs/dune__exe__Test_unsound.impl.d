test/test_unsound.ml: Alcotest Block Fault Fun Hooks Ibr_core Ibr_runtime List Prim Printf Registry Sched Tracker_intf View
