test/test_block_alloc.ml: Alcotest Alloc Block Fault Fun Ibr_core List
