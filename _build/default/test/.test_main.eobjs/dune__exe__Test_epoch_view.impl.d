test/test_epoch_view.ml: Alcotest Block Epoch Ibr_core Plain_ptr QCheck QCheck_alcotest View
