test/test_domains.ml: Alcotest Fault Ibr_core Ibr_harness List Printf Registry
