test/test_linearizability.ml: Alcotest Array Bool Ds_intf Ds_registry Hashtbl Hooks Ibr_core Ibr_ds Ibr_runtime List Printf Registry Rng Sched Tracker_intf
