test/test_safety.ml: Alcotest Fault Ibr_core Ibr_ds Ibr_runtime List Printf Registry Rng Sched Tracker_intf
