test/test_harness.ml: Alcotest Astring_contains Chart Experiment Ibr_core Ibr_harness Ibr_runtime List Option Runner_sim Stats String Workload
