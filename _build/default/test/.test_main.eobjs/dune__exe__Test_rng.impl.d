test/test_rng.ml: Alcotest Array Fun Ibr_runtime QCheck QCheck_alcotest
