test/test_more.ml: Alcotest Astring_contains Atomic Ebr Fmt Gen Hooks Ibr_core Ibr_ds Ibr_harness Ibr_runtime List Option Po_ibr Printf QCheck QCheck_alcotest Registry Rng Sched String Tracker_intf
