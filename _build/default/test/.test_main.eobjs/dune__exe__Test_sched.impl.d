test/test_sched.ml: Alcotest Array Buffer Char Fun Hooks Ibr_runtime Printf Sched String
