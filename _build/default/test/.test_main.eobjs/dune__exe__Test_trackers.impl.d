test/test_trackers.ml: Alcotest Block Hp Ibr_core List Po_ibr Printf Registry Tag_ibr Tag_ibr_wcas Tracker_intf View
