test/test_sets.ml: Alcotest Array Ds_intf Ds_registry Gen Hashtbl Ibr_core Ibr_ds Ibr_runtime List Printf QCheck QCheck_alcotest Registry Rng Sched Tracker_intf
