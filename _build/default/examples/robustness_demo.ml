(* Robustness (§4.3.1) made visible.

   Act 1 — a thread stalls forever in the middle of an operation while
   the others keep working.  Under EBR the stalled reservation pins
   every block retired from then on: dead memory grows without bound.
   Under the IBR schemes (and HP/HE) the stalled thread pins only a
   bounded set; reclamation keeps pace.

   Act 2 — what reclamation safety is *for*: the same workload under
   the deliberately broken UnsafeFree scheme (free on retire), with
   the fault checker in counting mode: dangling reads happen and are
   counted.  Under every real scheme the count is zero.

     dune exec examples/robustness_demo.exe
*)

open Ibr_core
open Ibr_runtime

let churn_with_stalled_reader tracker_name =
  let entry = Registry.find_exn tracker_name in
  let (module T : Tracker_intf.TRACKER) = entry.tracker in
  let module L = Ibr_ds.Harris_list.Make (T) in
  let threads = 9 in
  let cfg =
    { (Tracker_intf.default_config ~threads ()) with
      epoch_freq = 2 * threads; empty_freq = 8 } in
  let t = L.create ~threads cfg in
  (* Prefill. *)
  let h0 = L.register t ~tid:0 in
  for k = 0 to 63 do ignore (L.insert h0 ~key:k ~value:k) done;
  let sched = Sched.create (Sched.test_config ~cores:8 ~seed:3 ()) in
  (* Thread 0: posts a reservation at the tracker level and "stalls"
     by returning without end_op — exactly the state a preempted
     thread is in, held for the rest of the run. *)
  ignore
    (Sched.spawn sched (fun tid ->
       let h = L.register t ~tid in
       T.start_op h.th;
       ignore (T.read_root h.th t.head)));
  (* Eight workers churn. *)
  for i = 1 to 8 do
    ignore
      (Sched.spawn sched (fun tid ->
         let h = L.register t ~tid in
         let rng = Rng.stream ~seed:77 ~index:i in
         for _ = 1 to 1500 do
           let k = Rng.int rng 64 in
           if Rng.bool rng then ignore (L.insert h ~key:k ~value:k)
           else ignore (L.remove h ~key:k)
         done))
  done;
  Sched.run sched;
  let st = L.allocator_stats t in
  (st.allocated, st.live, st.freed)

let act1 () =
  Fmt.pr "== Act 1: one thread stalls mid-operation forever ==@.";
  Fmt.pr "   (8 workers churn a 64-key list; list itself holds ~48 nodes)@.@.";
  Fmt.pr "   %-12s %10s %10s %12s@." "scheme" "allocated" "freed"
    "dead+live";
  List.iter
    (fun name ->
       let allocated, live, freed = churn_with_stalled_reader name in
       Fmt.pr "   %-12s %10d %10d %12d%s@." name allocated freed live
         (if name = "EBR" then "   <- grows with run length" else ""))
    [ "EBR"; "HP"; "HE"; "TagIBR"; "2GEIBR" ];
  Fmt.pr "@."

let act2 () =
  Fmt.pr "== Act 2: why deferred reclamation matters at all ==@.";
  let run name =
    let entry = Registry.find_exn name in
    let (module T : Tracker_intf.TRACKER) = entry.tracker in
    let module L = Ibr_ds.Harris_list.Make (T) in
    let threads = 8 in
    let cfg =
      { (Tracker_intf.default_config ~threads ()) with
        reuse = false; epoch_freq = 2; empty_freq = 2 } in
    let t = L.create ~threads cfg in
    let sched =
      Sched.create
        { (Sched.test_config ~cores:4 ~seed:13 ()) with
          stall_prob = 0.05; stall_len = 2_000; quantum = 100 } in
    let (), faults =
      Fault.with_counting (fun () ->
        for i = 0 to threads - 1 do
          ignore
            (Sched.spawn sched (fun tid ->
               let h = L.register t ~tid in
               let rng = Rng.stream ~seed:1 ~index:i in
               for _ = 1 to 400 do
                 let k = Rng.int rng 16 in
                 if Rng.bool rng then ignore (L.insert h ~key:k ~value:k)
                 else ignore (L.remove h ~key:k)
               done))
        done;
        Sched.run sched)
    in
    Fmt.pr "   %-12s dangling-access faults: %d@." name faults
  in
  List.iter run [ "UnsafeFree"; "EBR"; "2GEIBR"; "HP" ];
  Fmt.pr
    "@.   UnsafeFree frees at retire — readers observe garbage; every real@.";
  Fmt.pr "   scheme defers until reservations allow, and the count is 0.@."

let () =
  act1 ();
  act2 ()
