(* Quickstart: the paper's Fig. 3 scenario, verbatim.

   A three-node linked list (values 0, 2, 4).  Thread A reads node n1
   while thread B replaces it with a new node (value 3) and retires
   the old one.  The memory manager (EBR here, swap in any scheme from
   Ibr_core.Registry) guarantees A's read stays valid even though B
   retired the node A is looking at.

     dune exec examples/quickstart.exe
*)

open Ibr_core
open Ibr_runtime

(* The node type: a value and a next pointer managed by the MM. *)
module Mm = Ebr (* <- try: Hp, He, Tag_ibr.Cas, Two_ge_ibr, ... *)

type node = { value : int; next : node Mm.ptr }

let () =
  (* -- set-up (Fig. 3 lines 1-6): nodes 0 -> 2 -> 4 ---------------- *)
  let mm = Mm.create ~threads:2 (Tracker_intf.default_config ~threads:2 ()) in
  let setup = Mm.register mm ~tid:0 in
  let n2 = Mm.alloc setup { value = 4; next = Mm.make_ptr mm None } in
  let n1 = Mm.alloc setup { value = 2; next = Mm.make_ptr mm (Some n2) } in
  let n0 = Mm.alloc setup { value = 0; next = Mm.make_ptr mm (Some n1) } in
  let head = Mm.make_ptr mm (Some n0) in
  ignore head;

  (* -- two worker threads, interleaved by the simulator ------------ *)
  let sched = Sched.create (Sched.test_config ~cores:2 ~seed:1 ()) in

  (* Thread A (Fig. 3 tA): read n1's value through the MM. *)
  ignore
    (Sched.spawn sched (fun tid ->
       let h = Mm.register mm ~tid in
       Mm.start_op h;
       let target = (Block.get n0).next in
       let p1 = Mm.read h ~slot:0 target in
       (match View.target p1 with
        | Some b ->
          let v = (Block.get b).value in
          Fmt.pr "thread A read value %d (node may be retired, never freed \
                  under us)@."
            v
        | None -> Fmt.pr "thread A found the node already detached@.");
       Mm.end_op h));

  (* Thread B (Fig. 3 tB): CAS n0.next from n1 to a new node 3, then
     retire n1. *)
  ignore
    (Sched.spawn sched (fun tid ->
       let h = Mm.register mm ~tid in
       let rec attempt () =
         Mm.start_op h;
         let new_n1 =
           Mm.alloc h { value = 3; next = Mm.make_ptr mm (Some n2) } in
         let target = (Block.get n0).next in
         let p1 = Mm.read h ~slot:0 target in
         match View.target p1 with
         | Some old when Mm.cas h target ~expected:p1 (Some new_n1) ->
           Mm.retire h old;
           Fmt.pr "thread B swapped in value 3 and retired the old node@.";
           Mm.end_op h
         | _ ->
           Mm.dealloc h new_n1;
           Mm.end_op h;
           attempt ()
       in
       attempt ()));

  Sched.run sched;

  (* -- aftermath ---------------------------------------------------- *)
  let h = Mm.register mm ~tid:0 in
  Mm.force_empty h;
  let stats = Alloc.stats (Mm.allocator mm) in
  Fmt.pr "final chain: %d -> %d -> %d@."
    (Block.get n0).value
    (match View.target (Mm.read h ~slot:0 (Block.get n0).next) with
     | Some b -> (Block.get b).value
     | None -> -1)
    4;
  Fmt.pr "allocator: %a@." Alloc.pp_stats stats;
  Fmt.pr "memory faults: %d (zero = reclamation was safe)@." (Fault.total ())
