examples/concurrent_cache.mli:
