examples/quickstart.mli:
