examples/concurrent_cache.ml: Fmt Ibr_harness Option
