examples/quickstart.ml: Alloc Block Ebr Fault Fmt Ibr_core Ibr_runtime Sched Tracker_intf View
