examples/persistent_snapshots.ml: Alloc Atomic Fault Fmt Ibr_core Ibr_ds Ibr_runtime List Po_ibr Rng Sched String Tracker_intf
