examples/persistent_snapshots.mli:
