examples/robustness_demo.ml: Fault Fmt Ibr_core Ibr_ds Ibr_runtime List Registry Rng Sched Tracker_intf
