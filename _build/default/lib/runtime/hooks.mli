(** Bridge between reclamation / data-structure code and the execution
    backend.

    The same tracker and data-structure code runs under the
    discrete-event simulator (where every shared-memory primitive
    charges a cost and yields a preemption point) and on real OCaml
    domains (where the hook is a no-op).  The active handler is
    domain-local state. *)

type handler = {
  step : int -> unit;        (** charge cycles; may deschedule the caller *)
  current_tid : unit -> int; (** logical thread id of the caller *)
  now : unit -> int;         (** caller's elapsed virtual time *)
  global_now : unit -> int;  (** machine-wide virtual wall-clock time *)
}

val default : handler
(** No-op handler (native execution). *)

val set : handler -> unit
val reset : unit -> unit

val step : int -> unit
(** Charge [cost] cycles through the current handler. *)

val current_tid : unit -> int
val now : unit -> int

val global_now : unit -> int
(** Machine-wide event-sequence timestamp, consistent with the order
    in which shared-memory effects execute (used to timestamp
    linearizability histories). *)

val with_handler : handler -> (unit -> 'a) -> 'a
(** Run with a handler installed; restores the previous one
    (exception-safe). *)
