lib/runtime/rng.mli:
