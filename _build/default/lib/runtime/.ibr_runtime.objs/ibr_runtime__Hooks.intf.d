lib/runtime/hooks.mli:
