lib/runtime/sched.ml: Array Effect Hooks List Rng
