lib/runtime/cost.mli: Format
