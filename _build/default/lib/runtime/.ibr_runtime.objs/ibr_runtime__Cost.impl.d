lib/runtime/cost.ml: Fmt
