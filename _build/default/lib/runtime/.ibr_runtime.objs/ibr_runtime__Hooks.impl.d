lib/runtime/hooks.ml: Domain Fun
