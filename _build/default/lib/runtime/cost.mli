(** Cost model for simulated shared-memory primitives.

    Units are abstract "cycles", calibrated so the {e relative}
    ordering of reclamation schemes matches the paper's x86
    measurements: a write-read fence is an order of magnitude more
    expensive than a cached load; CAS and FAA sit between; loads of
    read-mostly globals (the epoch counter, born_before words) are
    cheaper than general shared loads because an out-of-order core
    overlaps them with the dependent pointer loads. *)

type t = {
  read : int;          (** plain shared-memory load *)
  hot_read : int;      (** load of a read-mostly, cache-resident global *)
  write : int;         (** plain shared-memory store *)
  cas : int;           (** successful compare-and-swap *)
  cas_fail : int;      (** failed compare-and-swap *)
  faa : int;           (** fetch-and-add *)
  fence : int;         (** write-read (store-load) fence *)
  alloc_fresh : int;   (** allocation served by a fresh block *)
  alloc_reuse : int;   (** allocation served from a local free list *)
  free : int;          (** returning a block to the free list *)
  scan_reservation : int;  (** reading one other thread's reservation *)
  local : int;         (** thread-local bookkeeping step *)
}

val default : t
(** The calibrated model used by all experiments (see DESIGN.md §1). *)

val uniform : t
(** Every primitive costs one cycle; used by schedule-diversity tests. *)

val with_fence : t -> int -> t
(** [with_fence t f] overrides the fence cost (fence-sensitivity
    ablation). *)

val pp : Format.formatter -> t -> unit
