(* Cost model for simulated shared-memory primitives.

   Units are abstract "cycles".  The absolute values are calibrated so
   that the *relative* ordering of reclamation schemes matches the
   paper's x86 measurements: a write-read fence (mfence / seq-cst
   store-load) is an order of magnitude more expensive than a plain
   cached access; CAS and FAA sit in between; allocation from a
   thread-local free list is cheap, a fresh allocation slightly less so.

   The sensitivity of headline results to these constants is itself an
   ablation bench (see DESIGN.md §4): the HP-vs-IBR throughput gap
   scales with [fence], while the IBR-vs-EBR gap scales with
   [cas] (TagIBR) and [read] (2GEIBR). *)

type t = {
  read : int;          (* plain shared-memory load *)
  hot_read : int;      (* load of a read-mostly, cache-resident global
                          (epoch counter, born_before): overlaps with
                          dependent loads on an OOO core *)
  write : int;         (* plain shared-memory store *)
  cas : int;           (* successful compare-and-swap *)
  cas_fail : int;      (* failed compare-and-swap (no store, still RFO) *)
  faa : int;           (* fetch-and-add *)
  fence : int;         (* write-read (store-load) fence *)
  alloc_fresh : int;   (* allocation miss: fresh block from the arena *)
  alloc_reuse : int;   (* allocation hit: pop from local free list *)
  free : int;          (* returning a block to the free list *)
  scan_reservation : int; (* reading one other thread's reservation *)
  local : int;         (* thread-local bookkeeping step *)
}

let default = {
  read = 2;
  hot_read = 1;
  write = 3;
  cas = 14;
  cas_fail = 10;
  faa = 10;
  fence = 55;
  alloc_fresh = 30;
  alloc_reuse = 12;
  free = 8;
  scan_reservation = 4;
  local = 1;
}

(* A uniform-cost model: every primitive costs one cycle.  Used by
   tests that check schedule-independent properties, where we want
   maximal interleaving diversity rather than realism. *)
let uniform = {
  read = 1; hot_read = 1; write = 1; cas = 1; cas_fail = 1; faa = 1; fence = 1;
  alloc_fresh = 1; alloc_reuse = 1; free = 1; scan_reservation = 1; local = 1;
}

let with_fence t fence = { t with fence }

let pp ppf t =
  Fmt.pf ppf
    "{read=%d/%d; write=%d; cas=%d/%d; faa=%d; fence=%d; alloc=%d/%d; free=%d; scan=%d; local=%d}"
    t.read t.hot_read t.write t.cas t.cas_fail t.faa t.fence t.alloc_fresh
    t.alloc_reuse t.free t.scan_reservation t.local
