(** Deterministic splitmix64 pseudo-random number generator.

    Every randomized component of the simulator (schedules, workloads,
    stall injection) draws from an explicit [t], so whole experiments
    replay bit-identically from a seed. *)

type t
(** A generator; mutable state, not thread-safe — use one per
    simulated thread (see {!stream}). *)

val create : int -> t
(** [create seed] makes a generator from an integer seed. *)

val copy : t -> t
(** Independent copy continuing the same sequence. *)

val next_int64 : t -> int64
(** Next raw 64-bit draw. *)

val bits : t -> int
(** Next non-negative OCaml [int] (62 uniform bits). *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)

val int_in_range : t -> lo:int -> hi:int -> int
(** Uniform in the inclusive range [\[lo, hi\]].
    @raise Invalid_argument if [hi < lo]. *)

val float : t -> float
(** Uniform in [\[0, 1)] (53 bits). *)

val bool : t -> bool

val chance : t -> float -> bool
(** [chance t p] is [true] with probability [p] (clamped to [0, 1]). *)

val split : t -> t
(** Derive a decorrelated child generator (advances the parent). *)

val stream : seed:int -> index:int -> t
(** [stream ~seed ~index] is the [index]-th independent stream of the
    experiment [seed] — used to give each simulated thread its own
    reproducible randomness. *)

val shuffle_in_place : t -> 'a array -> unit
(** Fisher–Yates shuffle. *)
