(* Deterministic splitmix64 PRNG.

   Every randomized component of the simulator (schedules, workloads,
   stall injection) draws from an [Rng.t] seeded from the experiment
   seed, so whole experiments replay bit-identically.  splitmix64 is
   chosen for speed and for cheap stream splitting: each simulated
   thread gets an independent stream derived from the root seed. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* Core splitmix64 step: advance state, mix output. *)
let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* A non-negative OCaml int (62 significant bits on 64-bit systems). *)
let bits t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  bits t mod bound

let int_in_range t ~lo ~hi =
  if hi < lo then invalid_arg "Rng.int_in_range: hi < lo";
  lo + int t (hi - lo + 1)

let float t =
  (* 53 uniform bits mapped to [0, 1). *)
  let mask53 = (1 lsl 53) - 1 in
  float_of_int (Int64.to_int (Int64.logand (next_int64 t) (Int64.of_int mask53)))
  /. float_of_int (1 lsl 53)

let bool t = Int64.logand (next_int64 t) 1L = 1L

(* Probability check: true with probability [p]. *)
let chance t p = if p <= 0.0 then false else if p >= 1.0 then true else float t < p

(* Derive an independent stream; mixing with a large odd constant keeps
   child streams decorrelated from the parent and from each other. *)
let split t =
  let s = next_int64 t in
  { state = Int64.mul s 0xDA942042E4DD58B5L }

let stream ~seed ~index =
  let root = create seed in
  let rec skip i r = if i = 0 then r else (ignore (next_int64 r); skip (i - 1) r) in
  ignore (skip (index land 0xff) root);
  let r = split root in
  r.state <- Int64.logxor r.state (Int64.of_int ((index + 1) * 0x2545F491));
  ignore (next_int64 r);
  r

let shuffle_in_place t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
