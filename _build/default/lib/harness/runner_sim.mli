(** The simulator backend: run one (tracker x rideable x threads x
    workload) configuration on the discrete-event machine.

    Methodology follows §5: prefill, then a fixed-duration
    free-for-all in which each thread samples its local
    retired-but-unreclaimed count at every operation start (Fig. 9)
    while completions are counted for throughput (Fig. 8).  Threads
    beyond the core count queue for cores, reproducing the paper's
    oversubscription regime. *)

type config = {
  threads : int;
  horizon : int;                 (** virtual run length *)
  sched : Ibr_runtime.Sched.config;
  seed : int;
  tracker_cfg : Ibr_core.Tracker_intf.config;
  spec : Workload.spec;
}

val default_config :
  ?threads:int -> ?horizon:int -> ?seed:int -> ?cores:int ->
  spec:Workload.spec -> unit -> config

val run :
  tracker_name:string -> ds_name:string -> (module Ibr_ds.Ds_intf.SET) ->
  config -> Stats.t

val run_named :
  tracker_name:string -> ds_name:string -> config -> Stats.t option
(** Resolve names through the registries; [None] if the pairing is
    incompatible (e.g. POIBR on a mutable-pointer structure). *)
