(** Terminal rendering of figure data: a table per figure plus a
    sparkline per series, so curve shapes are visible straight from
    bench output. *)

type series = {
  label : string;
  points : (int * float) list;  (** x (e.g. thread count) -> y *)
}

type figure = {
  fig_id : string;
  title : string;
  ylabel : string;
  series : series list;
}

val sparkline : float list -> string
val xs_of : figure -> int list
val render : Format.formatter -> figure -> unit
val to_string : figure -> string
