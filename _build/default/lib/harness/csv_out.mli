(** CSV output, matching the artifact's dump-rows-then-post-process
    workflow. *)

val write_rows : string -> Stats.t list -> unit
(** Full result rows with header. *)

val write_figure : string -> Chart.figure -> unit
(** Tidy format: [fig,series,threads,value]. *)

val write_figures : string -> Chart.figure list -> unit
