lib/harness/workload.mli: Ibr_runtime
