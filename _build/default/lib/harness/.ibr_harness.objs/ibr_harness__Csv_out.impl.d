lib/harness/csv_out.ml: Chart Fun List Printf Stats
