lib/harness/chart.ml: Array Float Fmt List String
