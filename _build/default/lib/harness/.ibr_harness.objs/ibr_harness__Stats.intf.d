lib/harness/stats.mli: Format Ibr_core
