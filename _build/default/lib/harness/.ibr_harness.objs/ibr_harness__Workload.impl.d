lib/harness/workload.ml: Array Fun Ibr_runtime Printf Rng
