lib/harness/runner_domains.ml: Domain Ds_intf Ds_registry Ibr_core Ibr_ds Ibr_runtime Int64 List Stats Unix Workload
