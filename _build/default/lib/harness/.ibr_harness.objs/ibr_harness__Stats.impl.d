lib/harness/stats.ml: Alloc Fmt Ibr_core List Printf
