lib/harness/runner_sim.mli: Ibr_core Ibr_ds Ibr_runtime Stats Workload
