lib/harness/runner_sim.ml: Array Ds_intf Ds_registry Ibr_core Ibr_ds Ibr_runtime Rng Sched Stats Workload
