lib/harness/experiment.mli: Chart Ibr_core Stats Workload
