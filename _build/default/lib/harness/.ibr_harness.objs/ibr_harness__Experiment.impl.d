lib/harness/experiment.ml: Buffer Chart Fun Ibr_core Ibr_ds Ibr_runtime List Option Prim Printf Registry Runner_sim Stats Tracker_intf Workload
