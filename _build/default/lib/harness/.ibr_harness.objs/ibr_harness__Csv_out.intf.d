lib/harness/csv_out.mli: Chart Stats
