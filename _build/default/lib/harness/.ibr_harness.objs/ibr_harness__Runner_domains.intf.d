lib/harness/runner_domains.mli: Ibr_core Ibr_ds Stats Workload
