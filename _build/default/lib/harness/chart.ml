(* Terminal rendering for figure data: one table per figure (series ×
   thread counts) plus a sparkline so curve shapes — who wins, where
   the crossovers are — can be eyeballed straight from bench output. *)

type series = {
  label : string;
  points : (int * float) list;   (* x (thread count) -> y *)
}

type figure = {
  fig_id : string;
  title : string;
  ylabel : string;
  series : series list;
}

let sparkline values =
  let blocks = [| "\xe2\x96\x81"; "\xe2\x96\x82"; "\xe2\x96\x83";
                  "\xe2\x96\x84"; "\xe2\x96\x85"; "\xe2\x96\x86";
                  "\xe2\x96\x87"; "\xe2\x96\x88" |] in
  match values with
  | [] -> ""
  | vs ->
    let hi = List.fold_left max neg_infinity vs in
    let lo = 0.0 in
    let range = if hi -. lo <= 0.0 then 1.0 else hi -. lo in
    vs
    |> List.map (fun v ->
      let idx =
        int_of_float ((v -. lo) /. range *. 7.0) |> max 0 |> min 7 in
      blocks.(idx))
    |> String.concat ""

let xs_of fig =
  fig.series
  |> List.concat_map (fun s -> List.map fst s.points)
  |> List.sort_uniq compare

let render ppf fig =
  let xs = xs_of fig in
  Fmt.pf ppf "== %s: %s (%s) ==@." fig.fig_id fig.title fig.ylabel;
  Fmt.pf ppf "%-14s" "threads";
  List.iter (fun x -> Fmt.pf ppf "%9d" x) xs;
  Fmt.pf ppf "   shape@.";
  List.iter (fun s ->
    Fmt.pf ppf "%-14s" s.label;
    let values =
      List.map (fun x ->
        match List.assoc_opt x s.points with
        | Some v -> v
        | None -> nan)
        xs
    in
    List.iter (fun v ->
      if Float.is_nan v then Fmt.pf ppf "%9s" "-"
      else if v >= 1000.0 then Fmt.pf ppf "%9.0f" v
      else Fmt.pf ppf "%9.2f" v)
      values;
    let plottable = List.filter (fun v -> not (Float.is_nan v)) values in
    Fmt.pf ppf "   %s@." (sparkline plottable))
    fig.series;
  Fmt.pf ppf "@."

let to_string fig = Fmt.str "%a" render fig
