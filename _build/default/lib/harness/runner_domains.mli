(** The real-parallelism backend: the same tracker / data-structure
    code on OCaml 5 domains, wall-clock timed, with the cost hooks
    inactive.  Used for race stress tests and as a sanity check that
    the library is not simulator-bound. *)

type config = {
  threads : int;            (** domains *)
  duration_s : float;
  seed : int;
  tracker_cfg : Ibr_core.Tracker_intf.config;
  spec : Workload.spec;
}

val default_config :
  ?threads:int -> ?duration_s:float -> ?seed:int -> spec:Workload.spec ->
  unit -> config

val run :
  tracker_name:string -> ds_name:string -> (module Ibr_ds.Ds_intf.SET) ->
  config -> Stats.t

val run_named :
  tracker_name:string -> ds_name:string -> config -> Stats.t option
