lib/ds/treiber_stack.ml: Alloc Block Ds_common Ibr_core List Tracker_intf View
