lib/ds/ds_intf.ml: Alloc Ibr_core Tracker_intf
