lib/ds/ds_common.ml: Obj
