lib/ds/harris_list.ml: Alloc Block Ds_common Ibr_core List Obj Tracker_intf View
