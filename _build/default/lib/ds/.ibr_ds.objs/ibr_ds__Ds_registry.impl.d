lib/ds/ds_registry.ml: Bonsai_tree Ds_intf Harris_list Ibr_core List Michael_hashmap Nm_tree Printf String Tracker_intf
