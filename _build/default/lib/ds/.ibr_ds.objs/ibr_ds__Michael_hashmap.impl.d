lib/ds/michael_hashmap.ml: Alloc Array Ds_common Harris_list Ibr_core List Tracker_intf
