lib/ds/nm_tree.ml: Alloc Block Ds_common Ibr_core List Tracker_intf View
