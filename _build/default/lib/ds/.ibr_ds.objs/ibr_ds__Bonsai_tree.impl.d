lib/ds/bonsai_tree.ml: Alloc Block Ds_common Ibr_core List Option Tracker_intf View
