(* Instantiate rideables over reclamation schemes by name — the OCaml
   analogue of the artifact's rideable menu.  A [maker] closes over a
   functor application; the harness composes it with a tracker from
   [Ibr_core.Registry]. *)

open Ibr_core

type maker = {
  ds_name : string;
  instantiate : Tracker_intf.packed -> (module Ds_intf.SET);
}

let list_maker = {
  ds_name = "list";
  instantiate =
    (fun (module T : Tracker_intf.TRACKER) ->
       (module Harris_list.Make (T) : Ds_intf.SET));
}

let hashmap_maker = {
  ds_name = "hashmap";
  instantiate =
    (fun (module T : Tracker_intf.TRACKER) ->
       (module Michael_hashmap.Make (T) : Ds_intf.SET));
}

let nm_tree_maker = {
  ds_name = "nmtree";
  instantiate =
    (fun (module T : Tracker_intf.TRACKER) ->
       (module Nm_tree.Make (T) : Ds_intf.SET));
}

let bonsai_maker = {
  ds_name = "bonsai";
  instantiate =
    (fun (module T : Tracker_intf.TRACKER) ->
       (module Bonsai_tree.Make (T) : Ds_intf.SET));
}

(* The paper's four rideables, in Fig. 8 order. *)
let all = [ list_maker; hashmap_maker; nm_tree_maker; bonsai_maker ]

let find name =
  let target = String.lowercase_ascii name in
  List.find_opt (fun m -> String.lowercase_ascii m.ds_name = target) all

let find_exn name =
  match find name with
  | Some m -> m
  | None ->
    invalid_arg
      (Printf.sprintf "Ds_registry.find_exn: unknown rideable %S (known: %s)"
         name (String.concat ", " (List.map (fun m -> m.ds_name) all)))

(* Can [ds] run under [tracker]?  (Checked via the instantiated
   module's own [compatible] predicate.) *)
let compatible maker (module T : Tracker_intf.TRACKER) =
  let (module S : Ds_intf.SET) = maker.instantiate (module T) in
  S.compatible T.props
