(** The value stored in a shared pointer cell: a block reference plus
    tag bits (Harris marks, Natarajan–Mittal flag/tag).

    Views are compared {e physically} by CAS: every write allocates a
    fresh view box, so a CAS succeeds only against the exact value a
    thread previously read (cell-level ABA is impossible — see
    DESIGN.md §1). *)

type 'a t = {
  target : 'a Block.t option;
  tag : int;
}

val make : ?tag:int -> 'a Block.t option -> 'a t
(** [tag] defaults to [0]. *)

val target : 'a t -> 'a Block.t option
val tag : 'a t -> int
val is_null : 'a t -> bool

val deref_exn : 'a t -> 'a
(** Payload of the target (fault-checked).
    @raise Invalid_argument on a null view. *)

val equal_contents : 'a t -> 'a t -> bool
(** Same target block (physically) and same tag — regardless of box
    identity. *)

val pp : Format.formatter -> 'a t -> unit
