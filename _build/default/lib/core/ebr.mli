(** Epoch-based reclamation (paper §2.2, Fig. 2): one epoch reservation per thread; fast, not robust.

    Sealed to the common memory-manager signature of Fig. 1; see
    {!Tracker_intf.TRACKER} for the operations. *)

include Tracker_intf.TRACKER
