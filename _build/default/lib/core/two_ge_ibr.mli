(** Two-global-epochs IBR (§3.3, Fig. 6): interval reservations whose upper endpoint tracks the global epoch observed while reading.

    Sealed to the common memory-manager signature of Fig. 1; see
    {!Tracker_intf.TRACKER} for the operations. *)

include Tracker_intf.TRACKER
