(* Memory blocks with an explicit lifecycle.

   A block plays the role of a heap node in a manually managed
   language.  The header carries the interval metadata the paper's
   schemes rely on — the birth epoch (set at allocation, §3) and the
   retire epoch (set at retirement) — plus a state machine that stands
   in for actual deallocation:

       Live --retire--> Retired --free--> Reclaimed --(reuse)--> Live

   Accessing the payload of a [Reclaimed] block is the moral
   equivalent of dereferencing a dangling pointer and is reported via
   [Fault]; in counting mode the stale payload is returned, like the
   garbage a real dangling read would observe.  Header fields (state, epochs) remain readable after
   reclamation, which models a type-preserving allocator and is what
   the TagIBR-TPA variant depends on (§3.2.1). *)

type state = Live | Retired | Reclaimed

type 'a t = {
  id : int;                       (* unique per allocator, stable across reuse *)
  mutable incarnation : int;      (* bumped on reuse; detects stale refs *)
  mutable birth_epoch : int;
  mutable retire_epoch : int;
  state : state Atomic.t;
  mutable payload : 'a option;    (* kept after reclaim: stale reads see it *)
}

let make ~id payload = {
  id;
  incarnation = 0;
  birth_epoch = 0;
  retire_epoch = max_int;
  state = Atomic.make Live;
  payload = Some payload;
}

let id b = b.id
let state b = Atomic.get b.state
let birth_epoch b = b.birth_epoch
let retire_epoch b = b.retire_epoch
let incarnation b = b.incarnation

let set_birth_epoch b e = b.birth_epoch <- e
let set_retire_epoch b e = b.retire_epoch <- e

(* Payload access = pointer dereference.  The single point where
   use-after-free is detected. *)
let get b =
  Prim.charge_deref ();
  match Atomic.get b.state, b.payload with
  | Reclaimed, Some p ->
    Fault.report Fault.Use_after_free
      (Printf.sprintf "block %d (inc %d) accessed after reclamation"
         b.id b.incarnation);
    (* Count mode continues with the stale payload — exactly the
       garbage a real dangling read would observe.  (If the block was
       reused, [p] is the new occupant's payload.) *)
    p
  | _, None ->
    raise (Fault.Memory_fault (Fault.Use_after_free, "payload missing"))
  | (Live | Retired), Some p -> p

(* Like [get] but total: [None] instead of a fault.  Used by checkers
   and diagnostics, never by data-structure code. *)
let peek b = if Atomic.get b.state = Reclaimed then None else b.payload

let is_live b = Atomic.get b.state = Live
let is_retired b = Atomic.get b.state = Retired
let is_reclaimed b = Atomic.get b.state = Reclaimed

(* Lifecycle transitions; used by the allocator and by [retire]. *)
let transition_retire b =
  (* Live -> Retired.  CAS so that racing double-retires are caught. *)
  if not (Atomic.compare_and_set b.state Live Retired) then
    Fault.report
      (if Atomic.get b.state = Retired then Fault.Double_retire
       else Fault.Retire_unpublished)
      (Printf.sprintf "block %d retired in state %s" b.id
         (match Atomic.get b.state with
          | Live -> "live" | Retired -> "retired" | Reclaimed -> "reclaimed"))

let transition_reclaim b =
  if not (Atomic.compare_and_set b.state Retired Reclaimed) then
    Fault.report Fault.Double_free
      (Printf.sprintf "block %d freed in state %s" b.id
         (match Atomic.get b.state with
          | Live -> "live" | Retired -> "retired" | Reclaimed -> "reclaimed"))

(* Reclaim a block that was never published (speculative allocation
   that lost its install CAS).  Live -> Reclaimed directly. *)
let transition_reclaim_unpublished b =
  if not (Atomic.compare_and_set b.state Live Reclaimed) then
    Fault.report Fault.Double_free
      (Printf.sprintf "block %d dealloc'd in state %s" b.id
         (match Atomic.get b.state with
          | Live -> "live" | Retired -> "retired" | Reclaimed -> "reclaimed"))

(* Reuse: Reclaimed -> Live with a fresh payload and cleared header. *)
let reincarnate b payload =
  assert (Atomic.get b.state = Reclaimed);
  b.incarnation <- b.incarnation + 1;
  b.birth_epoch <- 0;
  b.retire_epoch <- max_int;
  b.payload <- Some payload;
  Atomic.set b.state Live

let pp ppf b =
  Fmt.pf ppf "#%d@inc%d[%s b=%d r=%s]" b.id b.incarnation
    (match Atomic.get b.state with
     | Live -> "L" | Retired -> "R" | Reclaimed -> "X")
    b.birth_epoch
    (if b.retire_epoch = max_int then "∞" else string_of_int b.retire_epoch)
