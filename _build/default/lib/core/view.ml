(* The value stored in a shared pointer cell: a block reference plus a
   small tag (Harris-style mark bits, Natarajan–Mittal flag/tag bits).

   In C these bits are stolen from pointer alignment; here they ride
   along in the cell value.  Views are *physically* compared by CAS:
   every write allocates a fresh view box, so a CAS succeeds only
   against the exact value a thread previously read.  (This makes
   cell-level ABA impossible — strictly stronger than C++; see
   DESIGN.md §1.) *)

type 'a t = {
  target : 'a Block.t option;
  tag : int;
}

let make ?(tag = 0) target = { target; tag }

let target v = v.target
let tag v = v.tag

let is_null v = v.target = None

(* Dereference: payload of the target, detecting use-after-free. *)
let deref_exn v =
  match v.target with
  | None -> invalid_arg "View.deref_exn: null pointer"
  | Some b -> Block.get b

let equal_contents a b =
  a.tag = b.tag
  && (match a.target, b.target with
      | None, None -> true
      | Some x, Some y -> x == y
      | None, Some _ | Some _, None -> false)

let pp ppf v =
  match v.target with
  | None -> Fmt.pf ppf "null/%d" v.tag
  | Some b -> Fmt.pf ppf "%a/%d" Block.pp b v.tag
