(* Pieces shared by all trackers: the per-thread retired list and its
   sweep, and the reservation-table snapshot used by [empty]. *)

module Retired = struct
  (* Thread-local list of retired-but-unreclaimed blocks.  Only its
     owning thread touches it, so no atomics are needed; the count is
     sampled by the harness from the same simulated thread. *)
  type 'a t = {
    mutable blocks : 'a Block.t list;
    mutable count : int;
    mutable total_retired : int;
    mutable total_reclaimed : int;
  }

  let create () =
    { blocks = []; count = 0; total_retired = 0; total_reclaimed = 0 }

  let add t b =
    t.blocks <- b :: t.blocks;
    t.count <- t.count + 1;
    t.total_retired <- t.total_retired + 1

  let count t = t.count

  (* Keep blocks satisfying [conflict]; hand the rest to [free].
     Charges one local step per examined block (list walk). *)
  let sweep t ~conflict ~free =
    let kept = ref [] and n = ref 0 in
    List.iter (fun b ->
      Prim.local 1;
      if conflict b then begin kept := b :: !kept; incr n end
      else begin free b; t.total_reclaimed <- t.total_reclaimed + 1 end)
      t.blocks;
    t.blocks <- !kept;
    t.count <- !n

  (* Drop everything without freeing (No-MM teardown). *)
  let iter t f = List.iter f t.blocks
end

(* Snapshot an [int Atomic.t array] reservation table, charging the
   cross-thread scan cost per entry. *)
let snapshot_reservations (arr : int Atomic.t array) =
  Array.map (fun a -> Prim.charge_scan (); Atomic.get a) arr

(* Per-thread [lower, upper] interval reservations, shared by the
   TagIBR variants and 2GEIBR (Fig. 5 lines 1–2, 16–17). *)
module Interval_res = struct
  type t = {
    lower : int Atomic.t array;
    upper : int Atomic.t array;
  }

  let create threads = {
    lower = Array.init threads (fun _ -> Atomic.make max_int);
    upper = Array.init threads (fun _ -> Atomic.make max_int);
  }

  (* start_op: lower = upper = current epoch (Fig. 5 line 43). *)
  let start t ~tid e =
    Prim.write t.lower.(tid) e;
    Prim.write t.upper.(tid) e

  let clear t ~tid =
    Prim.write t.lower.(tid) max_int;
    Prim.write t.upper.(tid) max_int

  let upper_cell t ~tid = t.upper.(tid)

  (* Snapshot both endpoint arrays and return a conflict predicate: a
     block is protected if some thread's reserved interval intersects
     its lifetime (Fig. 5 line 26, inclusive endpoints for safety). *)
  let conflict_with_snapshot t =
    let lower = snapshot_reservations t.lower in
    let upper = snapshot_reservations t.upper in
    fun b ->
      let birth = Block.birth_epoch b and retire = Block.retire_epoch b in
      let n = Array.length lower in
      let rec check i =
        i < n && ((birth <= upper.(i) && retire >= lower.(i)) || check (i + 1))
      in
      check 0
end
