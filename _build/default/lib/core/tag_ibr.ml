(* Tagged-pointer IBR (paper §3.2, Fig. 5) — the default CAS variant
   and the FAA variant of §3.2.1.

   Each shared pointer carries a [born_before] word: a monotonically
   increasing epoch no less than the birth epoch of the pointer's
   target.  Installing a pointer first raises born_before to the new
   target's birth epoch (the "two-step update"); reading a pointer
   extends the thread's upper reservation endpoint to cover
   born_before before trusting the target.

   The two strategies for raising born_before:
   - CAS: loop until the field covers the birth epoch — precise, but a
     second CAS on every write and O(n^2) steps under contention;
   - FAA: one wait-free fetch-and-add of the deficit — cheaper under
     contention but concurrent adds overshoot ("slack"), making
     reservations coarser.  (Fig. 7's TagIBR-FAA row.) *)

module type BB_STRATEGY = sig
  val name : string
  val summary : string
  val raise_bb : int Atomic.t -> int -> unit
  (* [raise_bb bb birth] ensures [bb >= birth] before returning. *)
end

module Cas_strategy = struct
  let name = "TagIBR"
  let summary =
    "start epoch + latest born-before seen; doubles pointer size, \
     extra CAS per write, slack from the 2-step update"

  (* Fig. 5 lines 7–9 / 12–14. *)
  let rec raise_bb bb birth =
    let ori = Prim.hot_read bb in
    if birth <= ori then ()
    else if Prim.cas bb ori birth then ()
    else raise_bb bb birth
end

module Faa_strategy = struct
  let name = "TagIBR-FAA"
  let summary =
    "TagIBR with wait-free FAA born-before updates; less contention, \
     more slack"

  let raise_bb bb birth =
    let ori = Prim.hot_read bb in
    if birth > ori then ignore (Prim.faa bb (birth - ori))
end

module Make_ops (S : BB_STRATEGY) = struct
  let name = S.name

  let props = {
    Tracker_intf.robust = true;
    needs_unreserve = false;
    mutable_pointers = true;
    bounded_slots = false;
    pointer_tag_words = 1;
    fence_per_read = false;
    summary = S.summary;
  }

  type 'a ptr = {
    born_before : int Atomic.t;   (* monotonically increasing *)
    cell : 'a View.t Atomic.t;
  }

  let make_ptr ?tag target =
    let birth = match target with
      | None -> 0
      | Some b -> Block.birth_epoch b
    in
    { born_before = Atomic.make birth;
      cell = Atomic.make (View.make ?tag target) }

  (* Protected read (Fig. 5 lines 46–51).  A view is returned only if
     it was read while the thread's published upper endpoint already
     covered the pointer's born_before field; otherwise we extend the
     reservation, fence, and re-read. *)
  let read ~epoch:_ ~upper p =
    let rec loop published =
      let v = Prim.read p.cell in
      let bb = Prim.hot_read p.born_before in
      if bb <= published then v
      else begin
        Prim.write upper bb;
        Prim.fence ();
        loop bb
      end
    in
    loop (Atomic.get upper)

  (* Fig. 5 lines 11–15: raise born_before, then store. *)
  let write p ?tag target =
    (match target with
     | None -> ()
     | Some b -> S.raise_bb p.born_before (Block.birth_epoch b));
    Prim.write p.cell (View.make ?tag target)

  (* Fig. 5 lines 6–10: raise born_before, then CAS the address. *)
  let cas p ~expected ?tag target =
    (match target with
     | None -> ()
     | Some b -> S.raise_bb p.born_before (Block.birth_epoch b));
    Prim.cas p.cell expected (View.make ?tag target)
end

module Cas = Interval_ibr.Make (Make_ops (Cas_strategy))
module Faa = Interval_ibr.Make (Make_ops (Faa_strategy))
