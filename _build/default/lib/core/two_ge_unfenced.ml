(* The *literal* Fig. 6 reading of 2GEIBR — deliberately kept as a
   separate, documented-unsound variant.

   Fig. 6's pseudocode reads the pointer (line 3), then extends the
   upper endpoint (line 4), then verifies the epoch is unchanged
   (line 5) and returns the pointer read *before* the reservation was
   published.  The window between line 3 and line 4 admits a race: a
   reclaimer can snapshot this thread's stale upper endpoint, decide a
   just-read young block is uncovered, and free it before the
   extension lands — even though the epoch never changes, so line 5
   passes.  (The sound implementation, [Two_ge_ibr], returns a pointer
   only when it was read under an already-published covering
   reservation, re-reading after publish+fence — the discipline of
   HE's protect and POIBR's Fig. 4.)

   This module exists so the failure is demonstrable rather than
   hypothetical: the simulator's fault checker catches it under
   adversarial schedules (see test_safety / EXPERIMENTS.md).  Never
   use it for real work. *)

module Ops = struct
  let name = "2GEIBR-unfenced"

  let props = {
    Tracker_intf.robust = true;
    needs_unreserve = false;
    mutable_pointers = true;
    bounded_slots = false;
    pointer_tag_words = 0;
    fence_per_read = false;
    summary =
      "UNSOUND literal Fig. 6 ordering: pointer read escapes before \
       its reservation publishes; kept as a demonstration oracle";
  }

  type 'a ptr = 'a Plain_ptr.t

  let make_ptr ?tag target = Plain_ptr.make ?tag target

  (* Fig. 6 lines 2-5, verbatim ordering. *)
  let read ~epoch ~upper p =
    let rec loop () =
      let v = Plain_ptr.read p in                         (* line 3 *)
      let e = Epoch.read epoch in
      let cur = Atomic.get upper in
      if e > cur then Prim.write upper e;                 (* line 4 *)
      let e' = Epoch.read epoch in
      if max cur e = e' then v                            (* line 5 *)
      else loop ()
    in
    loop ()

  let write p ?tag target = Plain_ptr.write p ?tag target
  let cas p ~expected ?tag target = Plain_ptr.cas p ~expected ?tag target
end

include Interval_ibr.Make (Ops)
