(* Memory-fault detection policy.

   In C, a use-after-free or double-free is undefined behaviour.  In
   this reproduction both are *defined, detectable events*: the
   allocator and block accessors funnel every violation through this
   module.  Tests run in [Raise] mode (a violation fails the test);
   experiment harnesses demonstrating broken schemes run in [Count]
   mode so a run survives long enough to accumulate statistics. *)

type kind =
  | Use_after_free   (* payload accessed after reclamation *)
  | Double_free      (* block reclaimed twice *)
  | Double_retire    (* block retired twice *)
  | Retire_unpublished (* block retired while never published / not live *)

exception Memory_fault of kind * string

type mode = Raise | Count

let mode : mode Atomic.t = Atomic.make Raise

let use_after_free = Atomic.make 0
let double_free = Atomic.make 0
let double_retire = Atomic.make 0
let retire_unpublished = Atomic.make 0

let counter = function
  | Use_after_free -> use_after_free
  | Double_free -> double_free
  | Double_retire -> double_retire
  | Retire_unpublished -> retire_unpublished

let kind_to_string = function
  | Use_after_free -> "use-after-free"
  | Double_free -> "double-free"
  | Double_retire -> "double-retire"
  | Retire_unpublished -> "retire-unpublished"

let report kind detail =
  match Atomic.get mode with
  | Raise -> raise (Memory_fault (kind, detail))
  | Count -> Atomic.incr (counter kind)

let count kind = Atomic.get (counter kind)

let total () =
  Atomic.get use_after_free + Atomic.get double_free
  + Atomic.get double_retire + Atomic.get retire_unpublished

let reset () =
  Atomic.set use_after_free 0;
  Atomic.set double_free 0;
  Atomic.set double_retire 0;
  Atomic.set retire_unpublished 0

let set_mode m = Atomic.set mode m

(* Run [f] in [Count] mode with fresh counters; restore previous mode
   and return (result, faults observed during f). *)
let with_counting f =
  let old = Atomic.get mode in
  Atomic.set mode Count;
  let before = total () in
  Fun.protect ~finally:(fun () -> Atomic.set mode old) (fun () ->
    let result = f () in
    (result, total () - before))
