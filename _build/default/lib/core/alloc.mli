(** Simulated manual allocator (the jemalloc stand-in; DESIGN.md §1).

    Per-thread free-list caches make allocation contention-free, as
    jemalloc's arenas do.  Two modes:
    - [reuse = true] (benchmark mode): freed blocks are reincarnated
      by later allocations.  Type-preserving by construction — an
      ['a t] only recycles ['a Block.t]s — which is exactly the
      guarantee TagIBR-TPA requires.
    - [reuse = false] (checker mode): reclaimed blocks stay reclaimed,
      so every dangling access is detected with certainty. *)

type 'a t

val create : ?reuse:bool -> threads:int -> unit -> 'a t
(** [reuse] defaults to [true].
    @raise Invalid_argument if [threads < 1]. *)

val threads : 'a t -> int

val alloc : 'a t -> tid:int -> 'a -> 'a Block.t
(** Serve from thread [tid]'s cache or make a fresh block. *)

val free : 'a t -> tid:int -> 'a Block.t -> unit
(** Reclaim a retired block (fault on double free / free of a live
    block). *)

val free_unpublished : 'a t -> tid:int -> 'a Block.t -> unit
(** Reclaim a block that was never published. *)

type stats = {
  allocated : int;  (** total alloc calls *)
  fresh : int;      (** served by fresh blocks *)
  reused : int;     (** served from a cache *)
  freed : int;      (** total frees *)
  live : int;       (** allocated - freed (Live or Retired) *)
  cached : int;     (** blocks sitting in free lists *)
}

val stats : 'a t -> stats
val pp_stats : Format.formatter -> stats -> unit
