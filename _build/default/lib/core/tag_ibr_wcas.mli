(** TagIBR-WCAS (§3.2.1): born_before and address updated together by a double-width CAS; exact birth epochs, wait-free writes.

    Sealed to the common memory-manager signature of Fig. 1; see
    {!Tracker_intf.TRACKER} for the operations. *)

include Tracker_intf.TRACKER
