(* TagIBR-WCAS (paper §3.2.1, "Using Wide or Double CAS").

   With a double-width CAS the born_before word and the address are
   updated together, atomically: the monotonic-increase convention is
   unnecessary, born_before is always the *exact* birth epoch of the
   current target (no slack), and writes/CASes are wait-free with a
   single atomic instruction.

   Substrate note: OCaml's [Atomic.t] on an immutable boxed pair
   replaces both words in one atomic step — the same atomicity
   granularity as cmpxchg16b (see DESIGN.md §1).  The cost model
   charges the [cas] price for it. *)

module Ops = struct
  let name = "TagIBR-WCAS"

  let props = {
    Tracker_intf.robust = true;
    needs_unreserve = false;
    mutable_pointers = true;
    bounded_slots = false;
    pointer_tag_words = 1;
    fence_per_read = false;
    summary =
      "TagIBR with double-width CAS: exact birth epochs, no slack, \
       wait-free writes; needs WCAS/DCAS hardware";
  }

  (* The pair is immutable; the view box inside is what [cas] expects
     to find (physical equality). *)
  type 'a packed = { bb : int; view : 'a View.t }
  type 'a ptr = 'a packed Atomic.t

  let pack ?tag target =
    let bb = match target with
      | None -> 0
      | Some b -> Block.birth_epoch b
    in
    { bb; view = View.make ?tag target }

  let make_ptr ?tag target = Atomic.make (pack ?tag target)

  (* born_before travels atomically with the view, so one read covers
     both; the publish-fence-reread discipline is as in TagIBR. *)
  let read ~epoch:_ ~upper p =
    let rec loop published =
      let pk = Prim.read p in
      if pk.bb <= published then pk.view
      else begin
        Prim.write upper pk.bb;
        Prim.fence ();
        loop pk.bb
      end
    in
    loop (Atomic.get upper)

  let write p ?tag target = Prim.write p (pack ?tag target)

  (* Wide CAS: succeed iff the *view* is the expected one; the paired
     born_before always matches it, so comparing the view suffices. *)
  let cas p ~expected ?tag target =
    let cur = Prim.read p in
    if cur.view != expected then begin
      Prim.local 1;
      false
    end
    else Prim.cas p cur (pack ?tag target)
end

include Interval_ibr.Make (Ops)
