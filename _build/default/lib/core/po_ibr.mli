(** Persistent-object IBR (§3.1, Fig. 4): one guarded root-read reservation covers the whole reachable (immutable) version.

    Sealed to the common memory-manager signature of Fig. 1; see
    {!Tracker_intf.TRACKER} for the operations. *)

include Tracker_intf.TRACKER
