(** Tagged-pointer IBR (paper §3.2, Fig. 5).

    Each shared pointer carries a monotonically increasing
    [born_before] word, no less than the birth epoch of the pointer's
    target; reads extend the thread's interval reservation to cover
    it.  Two strategies for raising the word (§3.2.1):

    - {!Cas}: CAS loop — precise, but a second CAS on every pointer
      write and quadratic steps under contention;
    - {!Faa}: one wait-free fetch-and-add of the deficit — cheaper
      under contention, but concurrent adds overshoot ("slack"),
      coarsening reservations. *)

module Cas : Tracker_intf.TRACKER
(** The paper's default TagIBR. *)

module Faa : Tracker_intf.TRACKER
(** TagIBR-FAA. *)
