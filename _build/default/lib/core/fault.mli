(** Memory-fault detection policy.

    In C a use-after-free or double-free is undefined behaviour; in
    this reproduction both are {e defined, detectable events}.  Tests
    run in [Raise] mode; demonstrations of broken schemes run in
    [Count] mode so a run survives to accumulate statistics. *)

type kind =
  | Use_after_free       (** payload accessed after reclamation *)
  | Double_free          (** block reclaimed twice *)
  | Double_retire        (** block retired twice *)
  | Retire_unpublished   (** retire of a block not in the Live state *)

exception Memory_fault of kind * string

type mode = Raise | Count

val set_mode : mode -> unit

val report : kind -> string -> unit
(** Raise or count, per the current mode. *)

val count : kind -> int
val total : unit -> int
val reset : unit -> unit

val kind_to_string : kind -> string

val with_counting : (unit -> 'a) -> 'a * int
(** Run in [Count] mode; return the result and the number of faults
    observed during the call.  Restores the previous mode. *)
