(** Quiescent-state-based reclamation (RCU-style; paper Â§2.2):
    threads announce quiescent states at operation end; a block is
    reclaimed two grace periods after retirement.  Zero read overhead;
    not robust.

    Sealed to the common memory-manager signature of Fig. 1. *)

include Tracker_intf.TRACKER
