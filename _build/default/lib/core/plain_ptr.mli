(** Untagged shared pointer cell: one atomic holding a {!View.t}.
    Used by every scheme except TagIBR (extra born_before word) and
    TagIBR-WCAS (packed cell). *)

type 'a t = 'a View.t Atomic.t

val make : ?tag:int -> 'a Block.t option -> 'a t
val read : 'a t -> 'a View.t
val write : 'a t -> ?tag:int -> 'a Block.t option -> unit

val cas : 'a t -> expected:'a View.t -> ?tag:int -> 'a Block.t option -> bool
(** Succeeds only against the physically identical expected view. *)

val peek : 'a t -> 'a View.t
(** Uncharged read, for constructors and assertions. *)
