lib/core/tag_ibr.ml: Atomic Block Interval_ibr Prim Tracker_intf View
