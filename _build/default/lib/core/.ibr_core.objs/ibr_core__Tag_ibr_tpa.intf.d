lib/core/tag_ibr_tpa.mli: Tracker_intf
