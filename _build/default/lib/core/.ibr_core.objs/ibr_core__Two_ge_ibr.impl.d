lib/core/two_ge_ibr.ml: Atomic Epoch Interval_ibr Plain_ptr Prim Tracker_intf
