lib/core/fault.ml: Atomic Fun
