lib/core/qsbr.mli: Tracker_intf
