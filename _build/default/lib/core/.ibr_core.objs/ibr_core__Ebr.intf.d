lib/core/ebr.mli: Tracker_intf
