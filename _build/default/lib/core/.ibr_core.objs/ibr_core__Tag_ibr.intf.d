lib/core/tag_ibr.mli: Tracker_intf
