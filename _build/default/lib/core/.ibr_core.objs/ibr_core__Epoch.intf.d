lib/core/epoch.mli:
