lib/core/two_ge_unfenced.mli: Tracker_intf
