lib/core/epoch.ml: Atomic Prim
