lib/core/two_ge_ibr.mli: Tracker_intf
