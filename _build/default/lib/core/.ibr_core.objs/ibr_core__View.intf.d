lib/core/view.mli: Block Format
