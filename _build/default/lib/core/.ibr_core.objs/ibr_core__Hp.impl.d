lib/core/hp.ml: Alloc Array Atomic Block Hashtbl Plain_ptr Prim Tracker_common Tracker_intf View
