lib/core/qsbr.ml: Alloc Array Atomic Block Epoch Plain_ptr Prim Tracker_common Tracker_intf
