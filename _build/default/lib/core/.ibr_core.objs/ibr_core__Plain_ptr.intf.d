lib/core/plain_ptr.mli: Atomic Block View
