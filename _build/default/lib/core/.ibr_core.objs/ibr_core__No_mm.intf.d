lib/core/no_mm.mli: Tracker_intf
