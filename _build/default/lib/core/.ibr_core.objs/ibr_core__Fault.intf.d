lib/core/fault.mli:
