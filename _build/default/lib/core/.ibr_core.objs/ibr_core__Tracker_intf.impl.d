lib/core/tracker_intf.ml: Alloc Block View
