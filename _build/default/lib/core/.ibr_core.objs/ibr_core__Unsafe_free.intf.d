lib/core/unsafe_free.mli: Tracker_intf
