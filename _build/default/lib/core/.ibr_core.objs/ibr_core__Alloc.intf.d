lib/core/alloc.mli: Block Format
