lib/core/tag_ibr_tpa.ml: Atomic Block Ibr_runtime Interval_ibr Plain_ptr Prim Tracker_intf View
