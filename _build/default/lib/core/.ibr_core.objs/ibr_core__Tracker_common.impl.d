lib/core/tracker_common.ml: Array Atomic Block List Prim
