lib/core/interval_ibr.ml: Alloc Atomic Block Epoch Tracker_common Tracker_intf View
