lib/core/tag_ibr_wcas.mli: Tracker_intf
