lib/core/block.ml: Atomic Fault Fmt Prim Printf
