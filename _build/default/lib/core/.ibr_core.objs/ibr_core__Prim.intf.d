lib/core/prim.mli: Atomic Ibr_runtime
