lib/core/unsafe_free.ml: Alloc Block Plain_ptr Tracker_intf
