lib/core/two_ge_unfenced.ml: Atomic Epoch Interval_ibr Plain_ptr Prim Tracker_intf
