lib/core/alloc.ml: Array Atomic Block Fmt List Prim
