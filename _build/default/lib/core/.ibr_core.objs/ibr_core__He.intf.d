lib/core/he.mli: Tracker_intf
