lib/core/plain_ptr.ml: Atomic Prim View
