lib/core/he.ml: Alloc Array Atomic Block Epoch List Plain_ptr Prim Tracker_common Tracker_intf
