lib/core/registry.mli: Tracker_intf
