lib/core/view.ml: Block Fmt
