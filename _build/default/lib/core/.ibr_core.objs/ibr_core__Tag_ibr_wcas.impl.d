lib/core/tag_ibr_wcas.ml: Atomic Block Interval_ibr Prim Tracker_intf View
