lib/core/hp.mli: Tracker_intf
