lib/core/prim.ml: Atomic Cost Hooks Ibr_runtime
