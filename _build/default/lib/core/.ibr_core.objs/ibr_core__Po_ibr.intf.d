lib/core/po_ibr.mli: Tracker_intf
