lib/core/no_mm.ml: Alloc Block Plain_ptr Tracker_common Tracker_intf
