lib/core/registry.ml: Ebr Fraser_ebr He Hp List No_mm Po_ibr Printf Qsbr String Tag_ibr Tag_ibr_tpa Tag_ibr_wcas Tracker_intf Two_ge_ibr Two_ge_unfenced Unsafe_free
