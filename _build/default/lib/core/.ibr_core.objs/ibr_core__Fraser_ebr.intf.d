lib/core/fraser_ebr.mli: Tracker_intf
