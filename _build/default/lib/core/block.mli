(** Memory blocks with an explicit lifecycle — the unit of manual
    memory management.

    The header carries the interval metadata the paper's schemes use
    (birth epoch, retire epoch) plus a state machine standing in for
    actual deallocation:

    {v Live --retire--> Retired --free--> Reclaimed --(reuse)--> Live v}

    Accessing the payload of a [Reclaimed] block is the moral
    equivalent of dereferencing a dangling pointer and is reported via
    {!Fault}.  Header fields remain readable after reclamation, which
    models a type-preserving allocator (what TagIBR-TPA needs,
    §3.2.1). *)

type state = Live | Retired | Reclaimed

type 'a t

val make : id:int -> 'a -> 'a t
(** Fresh [Live] block.  Normally called by {!Alloc}, not directly. *)

val id : 'a t -> int
(** Unique per allocator; stable across reuse. *)

val incarnation : 'a t -> int
(** Bumped each time the block is reused. *)

val state : 'a t -> state
val birth_epoch : 'a t -> int
val retire_epoch : 'a t -> int
val set_birth_epoch : 'a t -> int -> unit
val set_retire_epoch : 'a t -> int -> unit

val get : 'a t -> 'a
(** Payload dereference; the single point where use-after-free is
    detected (and, in the simulator, a preemption point). *)

val peek : 'a t -> 'a option
(** Total variant for checkers/diagnostics: [None] if reclaimed. *)

val is_live : 'a t -> bool
val is_retired : 'a t -> bool
val is_reclaimed : 'a t -> bool

val transition_retire : 'a t -> unit
(** Live -> Retired; reports a fault otherwise. *)

val transition_reclaim : 'a t -> unit
(** Retired -> Reclaimed; reports a fault otherwise. *)

val transition_reclaim_unpublished : 'a t -> unit
(** Live -> Reclaimed, for speculative blocks that lost their install
    CAS and were never visible to other threads. *)

val reincarnate : 'a t -> 'a -> unit
(** Reclaimed -> Live with a fresh payload and cleared header
    (allocator reuse). *)

val pp : Format.formatter -> 'a t -> unit
