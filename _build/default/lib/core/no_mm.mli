(** The No-MM baseline of §5: retire is recorded, nothing is reclaimed (throughput ceiling, unbounded space).

    Sealed to the common memory-manager signature of Fig. 1; see
    {!Tracker_intf.TRACKER} for the operations. *)

include Tracker_intf.TRACKER
