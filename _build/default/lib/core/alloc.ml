(* Simulated manual allocator.

   Stands in for jemalloc in the paper's setup: per-thread free-list
   caches (so allocation is contention-free, as jemalloc's arenas
   make it), explicit [free] with poisoning, and full statistics.  Two
   operating modes:

   - [reuse = true]  (default; benchmark mode): freed blocks go to the
     freeing thread's cache and are reincarnated by later allocations.
     The allocator is type-preserving by construction — an ['a t] only
     ever recycles ['a Block.t]s — which is precisely the guarantee
     the TagIBR-TPA variant requires (§3.2.1).
   - [reuse = false] (checker mode): blocks are never reused, so a
     reclaimed block stays [Reclaimed] forever and every dangling
     access is detected with certainty.  Tests run in this mode.

   Statistics are atomics so the real-domains backend can share an
   allocator across domains. *)

type 'a t = {
  reuse : bool;
  caches : 'a Block.t list ref array;  (* per-thread free lists *)
  next_id : int Atomic.t;
  allocated : int Atomic.t;   (* total alloc calls *)
  fresh : int Atomic.t;       (* allocations served by new blocks *)
  reused : int Atomic.t;      (* allocations served from a cache *)
  freed : int Atomic.t;       (* total free calls *)
}

let create ?(reuse = true) ~threads () =
  if threads < 1 then invalid_arg "Alloc.create: threads must be >= 1";
  {
    reuse;
    caches = Array.init threads (fun _ -> ref []);
    next_id = Atomic.make 0;
    allocated = Atomic.make 0;
    fresh = Atomic.make 0;
    reused = Atomic.make 0;
    freed = Atomic.make 0;
  }

let threads t = Array.length t.caches

let check_tid t tid =
  if tid < 0 || tid >= Array.length t.caches then
    invalid_arg "Alloc: thread id out of range"

let alloc t ~tid payload =
  check_tid t tid;
  Atomic.incr t.allocated;
  let cache = t.caches.(tid) in
  match !cache with
  | b :: rest when t.reuse ->
    cache := rest;
    Block.reincarnate b payload;
    Atomic.incr t.reused;
    Prim.charge_alloc ~reused:true;
    b
  | _ ->
    Atomic.incr t.fresh;
    Prim.charge_alloc ~reused:false;
    Block.make ~id:(Atomic.fetch_and_add t.next_id 1) payload

(* Reclaim a retired block: poison it and (in reuse mode) cache it. *)
let free t ~tid b =
  check_tid t tid;
  Block.transition_reclaim b;
  Atomic.incr t.freed;
  Prim.charge_free ();
  if t.reuse then begin
    let cache = t.caches.(tid) in
    cache := b :: !cache
  end

(* Reclaim a block that was never published (lost install CAS). *)
let free_unpublished t ~tid b =
  check_tid t tid;
  Block.transition_reclaim_unpublished b;
  Atomic.incr t.freed;
  Prim.charge_free ();
  if t.reuse then begin
    let cache = t.caches.(tid) in
    cache := b :: !cache
  end

type stats = {
  allocated : int;
  fresh : int;
  reused : int;
  freed : int;
  live : int;       (* allocated - freed: Live or Retired blocks *)
  cached : int;     (* blocks sitting in free lists *)
}

let stats t =
  let cached = Array.fold_left (fun n c -> n + List.length !c) 0 t.caches in
  let allocated = Atomic.get t.allocated in
  let freed = Atomic.get t.freed in
  {
    allocated;
    fresh = Atomic.get t.fresh;
    reused = Atomic.get t.reused;
    freed;
    live = allocated - freed;
    cached;
  }

let pp_stats ppf s =
  Fmt.pf ppf "alloc=%d (fresh=%d reused=%d) freed=%d live=%d cached=%d"
    s.allocated s.fresh s.reused s.freed s.live s.cached
