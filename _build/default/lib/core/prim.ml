(* Cost-charged shared-memory primitives.

   All tracker and data-structure code performs its shared accesses
   through these wrappers so that (a) the simulator charges each
   primitive its modelled latency and gets a preemption point, and
   (b) the per-scheme instruction mix — the thing the paper's
   throughput differences come from — is faithfully accounted: an HP
   read pays a fence, a TagIBR write pays an extra CAS, an EBR read
   pays nothing extra.

   The active cost model is a global; experiments set it once before a
   run (the simulator is single-domain, and the real-domains backend
   ignores costs). *)

open Ibr_runtime

let costs = ref Cost.default

let set_costs c = costs := c

let read a =
  Hooks.step !costs.Cost.read;
  Atomic.get a

(* Read of a read-mostly global (epoch counter, born_before tag):
   cheaper than a general shared load — see Cost.hot_read. *)
let hot_read a =
  Hooks.step !costs.Cost.hot_read;
  Atomic.get a

let write a v =
  Hooks.step !costs.Cost.write;
  Atomic.set a v

let cas a expected desired =
  let ok = Atomic.compare_and_set a expected desired in
  Hooks.step (if ok then !costs.Cost.cas else !costs.Cost.cas_fail);
  ok

let faa a n =
  Hooks.step !costs.Cost.faa;
  Atomic.fetch_and_add a n

(* Write-read (store-load) fence.  On the real-domains backend OCaml's
   seq-cst atomics already order everything, so only the cost matters. *)
let fence () = Hooks.step !costs.Cost.fence

(* Thread-local bookkeeping of [n] conceptual steps. *)
let local n = Hooks.step (n * !costs.Cost.local)

(* Payload dereference: same latency class as a read, and — crucially
   for fault detection — a preemption point between reading a pointer
   and touching what it points to. *)
let charge_deref () = Hooks.step !costs.Cost.read

let charge_alloc ~reused =
  Hooks.step (if reused then !costs.Cost.alloc_reuse else !costs.Cost.alloc_fresh)

let charge_free () = Hooks.step !costs.Cost.free
let charge_scan () = Hooks.step !costs.Cost.scan_reservation
