(** Deliberately INCORRECT oracle: frees on retire with no reader protection. Exists to prove the fault checker has teeth.

    Sealed to the common memory-manager signature of Fig. 1; see
    {!Tracker_intf.TRACKER} for the operations. *)

include Tracker_intf.TRACKER
