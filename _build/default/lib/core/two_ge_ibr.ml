(* Two-global-epochs IBR (paper §3.3, Fig. 6).

   Interval reservations like TagIBR, but the upper endpoint tracks
   the *global epoch* observed while reading rather than a per-pointer
   born_before tag: the target of a just-read pointer is alive in the
   current epoch, hence born no later than it.  Normal-sized pointers,
   no extra CAS on writes — at the cost of slightly coarser
   reservations.

   Note on the read loop: Fig. 6 compresses the snapshot idiom.  We
   return a pointer only if it was read while the covering upper
   endpoint was *already published* (the discipline of HE's protect
   and of POIBR's Fig. 4): publish the new epoch, fence, then re-read
   the pointer.  The paper's prose ("finally the global epoch is
   verified to be unchanged") demands exactly this visibility; the
   simulator's safety tests exercise the difference. *)

module Ops = struct
  let name = "2GEIBR"

  let props = {
    Tracker_intf.robust = true;
    needs_unreserve = false;
    mutable_pointers = true;
    bounded_slots = false;
    pointer_tag_words = 0;
    fence_per_read = false;
    summary =
      "start epoch + latest epoch seen while reading; TagIBR coverage \
       with plain pointers, slightly less precision";
  }

  type 'a ptr = 'a Plain_ptr.t

  let make_ptr ?tag target = Plain_ptr.make ?tag target

  let read ~epoch ~upper p =
    let rec loop published =
      let v = Plain_ptr.read p in
      let e = Epoch.read epoch in
      if e = published then v
      else begin
        (* Epoch moved: extend the reservation, make it visible, and
           re-read under its cover. *)
        Prim.write upper e;
        Prim.fence ();
        loop e
      end
    in
    loop (Atomic.get upper)

  let write p ?tag target = Plain_ptr.write p ?tag target
  let cas p ~expected ?tag target = Plain_ptr.cas p ~expected ?tag target
end

include Interval_ibr.Make (Ops)
