(* TagIBR-TPA (paper §3.2.1, "Using a Type Preserving Allocator").

   No born_before word at all: the birth epoch is read from the
   target block's own header.  This is safe only because the allocator
   is type-preserving — a reclaimed block's header stays readable and
   holds a valid epoch (our allocator guarantees both; see Alloc).

   The read protocol: read the pointer, read the target's birth epoch
   from its header, extend the reservation to cover it, then re-check
   that the birth epoch (and the cell) are unchanged.  If the block
   was reclaimed and reused in the window, its birth epoch will have
   moved to a newer epoch — the double-check fails and we retry, as
   the paper argues.  Wait-free writes, plain-sized pointers, zero
   extra CASes. *)

module Ops = struct
  let name = "TagIBR-TPA"

  let props = {
    Tracker_intf.robust = true;
    needs_unreserve = false;
    mutable_pointers = true;
    bounded_slots = false;
    pointer_tag_words = 0;
    fence_per_read = false;
    summary =
      "TagIBR with birth epochs read from block headers; no pointer \
       overhead, needs a type-preserving allocator";
  }

  type 'a ptr = 'a Plain_ptr.t

  let make_ptr ?tag target = Plain_ptr.make ?tag target

  (* Reading the header of a possibly-reclaimed block is exactly what
     type preservation licenses: the value is stale but well-typed. *)
  let birth_of v =
    match View.target v with
    | None -> 0
    | Some b ->
      Ibr_runtime.Hooks.step !Prim.costs.Ibr_runtime.Cost.hot_read;
      Block.birth_epoch b

  let read ~epoch:_ ~upper p =
    let rec loop published =
      let v = Plain_ptr.read p in
      let bb = birth_of v in
      if bb <= published then begin
        (* Covered when read; verify the birth epoch did not move
           under us (reuse would have bumped it past our cover). *)
        let bb' = birth_of v in
        if bb' = bb then v else loop published
      end
      else begin
        Prim.write upper bb;
        Prim.fence ();
        loop bb
      end
    in
    loop (Atomic.get upper)

  let write p ?tag target = Plain_ptr.write p ?tag target
  let cas p ~expected ?tag target = Plain_ptr.cas p ~expected ?tag target
end

include Interval_ibr.Make (Ops)
