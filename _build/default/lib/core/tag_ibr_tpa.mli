(** TagIBR-TPA (§3.2.1): birth epochs read from block headers under a type-preserving allocator; plain-sized pointers.

    Sealed to the common memory-manager signature of Fig. 1; see
    {!Tracker_intf.TRACKER} for the operations. *)

include Tracker_intf.TRACKER
