(** Hazard eras (Ramalhete & Correia; §2.3): HP's slot discipline with epochs as the currency; fences only when the era moves.

    Sealed to the common memory-manager signature of Fig. 1; see
    {!Tracker_intf.TRACKER} for the operations. *)

include Tracker_intf.TRACKER
