(** The literal Fig. 6 ordering of 2GEIBR â deliberately UNSOUND
    demonstration variant (the pointer read escapes before its
    reservation is published).  The fault checker catches it under
    adversarial schedules; see [Two_ge_ibr] for the sound version. *)

include Tracker_intf.TRACKER
