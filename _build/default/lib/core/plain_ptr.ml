(* Untagged shared pointer cell: a single atomic holding a view.
   Shared by every scheme except TagIBR (which adds a born_before
   word) and TagIBR-WCAS (which packs both into one cell). *)

type 'a t = 'a View.t Atomic.t

let make ?tag target = Atomic.make (View.make ?tag target)

let read (p : 'a t) = Prim.read p

let write (p : 'a t) ?tag target = Prim.write p (View.make ?tag target)

let cas (p : 'a t) ~expected ?tag target =
  Prim.cas p expected (View.make ?tag target)

(* Uncharged read for constructors and assertions. *)
let peek (p : 'a t) = Atomic.get p
