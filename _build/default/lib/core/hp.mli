(** Hazard pointers (Michael; §2.3): per-pointer reservations, fence per protected read, precise and robust.

    Sealed to the common memory-manager signature of Fig. 1; see
    {!Tracker_intf.TRACKER} for the operations. *)

include Tracker_intf.TRACKER
