(** Fraser's original epoch-based reclamation (paper §2.2): the epoch
    advances only once every active thread has posted a reservation in
    it; blocks free two epochs after retirement.  Zero read overhead;
    not robust.

    Sealed to the common memory-manager signature of Fig. 1. *)

include Tracker_intf.TRACKER
